// Wire-type surface of the client package. The daemon's v1 schema lives in
// gpurel/internal/service, which importers outside this module cannot name;
// these aliases re-export the exact types — same decoders, same strict
// unknown-field handling, same JSON — so an external program can build a
// JobSpec with a nested fault{model,stuck,width,lines} group or an
// AdviseSpec and get byte-identical wire behaviour to the server's own
// decode path.
package client

import (
	"gpurel/internal/faultmodel"
	"gpurel/internal/service"
)

// Job-spec wire types (POST /v1/jobs). JobSpec carries the nested v1 groups:
// sampling (adaptive stopping), checkpoint (fork-and-join snapshots), fault
// (fault model), plus the harden list for selectively hardened variants.
type (
	JobSpec      = service.JobSpec
	FaultSpec    = service.FaultSpec
	SamplingSpec = service.SamplingSpec
	SnapshotSpec = service.SnapshotSpec
	JobState     = service.JobState
	JobStatus    = service.JobStatus
	Event        = service.Event
)

// Advise wire types (POST /v1/advise): the selective-hardening advisor.
type (
	AdviseGroup  = service.AdviseGroup
	AdviseSpec   = service.AdviseSpec
	AdviseStatus = service.AdviseStatus
	AdviseEvent  = service.AdviseEvent
)

// Job lifecycle states, shared by campaign jobs and advise jobs.
const (
	StateQueued   = service.StateQueued
	StateRunning  = service.StateRunning
	StateDone     = service.StateDone
	StateFailed   = service.StateFailed
	StateCanceled = service.StateCanceled
)

// Fault-model names for FaultSpec.Model. An empty model string means
// ModelTransient (the legacy single-bit transient flip).
const (
	ModelTransient = faultmodel.ModelTransient
	ModelStuck     = faultmodel.ModelStuck
	ModelMBU       = faultmodel.ModelMBU
	ModelControl   = faultmodel.ModelControl
)
