// Selective-hardening advisor client: the /v1/advise half of the v1 API.
// The method set mirrors the campaign-job methods (Submit/Get/List/Cancel/
// Watch/Wait) so callers drive both job types the same way.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// SubmitAdvise enqueues a selective-hardening advise job.
func (c *Client) SubmitAdvise(ctx context.Context, spec AdviseSpec) (AdviseStatus, error) {
	var st AdviseStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/advise", spec, &st)
	return st, err
}

// GetAdvise fetches an advise job's status (phase, progress, and — once
// reached — the plan and its verification).
func (c *Client) GetAdvise(ctx context.Context, id string) (AdviseStatus, error) {
	var st AdviseStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/advise/"+id, nil, &st)
	return st, err
}

// ListAdvises fetches all advise jobs.
func (c *Client) ListAdvises(ctx context.Context) ([]AdviseStatus, error) {
	var out []AdviseStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/advise", nil, &out)
	return out, err
}

// CancelAdvise asks the daemon to stop an advise job at its next unit of
// work.
func (c *Client) CancelAdvise(ctx context.Context, id string) (AdviseStatus, error) {
	var st AdviseStatus
	_, err := c.do(ctx, http.MethodDelete, "/v1/advise/"+id, nil, &st)
	return st, err
}

// WatchAdviseEvents consumes an advise job's NDJSON event stream, invoking
// fn per event until the job reaches a terminal state, fn returns an error,
// or ctx ends.
func (c *Client) WatchAdviseEvents(ctx context.Context, id string, fn func(AdviseEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/advise/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("advise events %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev AdviseEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("advise events %s: bad line: %w", id, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Job.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("advise events %s: stream ended before advise finished", id)
}

// WaitAdvise blocks until the advise job is terminal, preferring the event
// stream and falling back to polling if streaming fails (e.g. across a
// daemon restart — journaled advises resume on the new process).
func (c *Client) WaitAdvise(ctx context.Context, id string) (AdviseStatus, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		var last AdviseStatus
		err := c.WatchAdviseEvents(ctx, id, func(ev AdviseEvent) error {
			last = ev.Job
			return nil
		})
		if err == nil && last.State.Terminal() {
			return last, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(poll):
		}
		st, gerr := c.GetAdvise(ctx, id)
		if gerr == nil && st.State.Terminal() {
			return st, nil
		}
	}
}

// RunAdvise submits an advise spec and waits for its plan and verification —
// the one-call remote analogue of advisor.Runner.Run.
func (c *Client) RunAdvise(ctx context.Context, spec AdviseSpec) (AdviseStatus, error) {
	st, err := c.SubmitAdvise(ctx, spec)
	if err != nil {
		return st, err
	}
	return c.WaitAdvise(ctx, st.ID)
}
