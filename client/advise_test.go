// End-to-end: the advise client methods against a live daemon handler
// wired exactly like cmd/gpureld — real study backend, small campaigns.
package client_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/service"
)

func newTestDaemon(t *testing.T) *client.Client {
	t.Helper()
	study := gpurel.NewStudy(0, 1)
	sched, err := service.NewScheduler(service.Config{Source: service.NewStudySource(study)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	adv, err := service.NewAdvisor(service.AdvisorConfig{
		Backend: service.NewStudyAdviseBackend(),
		Metrics: sched.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adv.Close() })
	srv := httptest.NewServer(service.NewServer(sched).Handler(adv.Mount))
	t.Cleanup(srv.Close)
	return client.New(srv.URL)
}

func TestAdviseClientEndToEnd(t *testing.T) {
	c := newTestDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A loose budget on a small app: the plan verifies quickly and the
	// client sees the full lifecycle through its own wire types.
	spec := client.AdviseSpec{
		Advise: client.AdviseGroup{App: "VA", Budget: 0.5},
		Runs:   10,
		Seed:   3,
	}
	st, err := c.SubmitAdvise(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitAdvise: %v", err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submit status: %+v", st)
	}

	var events []string
	if err := c.WatchAdviseEvents(ctx, st.ID, func(ev client.AdviseEvent) error {
		events = append(events, ev.Type)
		return nil
	}); err != nil {
		t.Fatalf("WatchAdviseEvents: %v", err)
	}
	if len(events) == 0 || events[0] != "status" || events[len(events)-1] != "done" {
		t.Fatalf("event stream %v, want status ... done", events)
	}

	final, err := c.WaitAdvise(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitAdvise: %v", err)
	}
	if final.State != client.StateDone {
		t.Fatalf("final state %s (%s)", final.State, final.Error)
	}
	if final.Plan == nil || final.Verification == nil {
		t.Fatalf("done advise missing plan/verification: %+v", final)
	}
	if !final.Verification.Pass || final.Verification.SDC > spec.Advise.Budget {
		t.Fatalf("verification %+v, want pass within budget %g", final.Verification, spec.Advise.Budget)
	}

	got, err := c.GetAdvise(ctx, st.ID)
	if err != nil || got.ID != st.ID {
		t.Fatalf("GetAdvise: %v (%+v)", err, got)
	}
	list, err := c.ListAdvises(ctx)
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("ListAdvises: %v (%+v)", err, list)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		`gpureld_advises_total{event="submitted"} 1`,
		`gpureld_advises_total{event="done"} 1`,
		`gpureld_advise_plans_total{result="verified"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAdviseClientValidationError(t *testing.T) {
	c := newTestDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.SubmitAdvise(ctx, client.AdviseSpec{
		Advise: client.AdviseGroup{App: "", Budget: 0.5}, Runs: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "advise.app is required") {
		t.Fatalf("want validation error surfaced through the client, got %v", err)
	}
}
