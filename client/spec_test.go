// The client package's wire types must be the server's wire types: every
// golden job-spec fixture the server decodes (nested fault group, harden
// list, legacy flat spellings) must decode as a client.JobSpec, survive an
// encode/decode round trip, and resolve to the identical campaign point.
package client_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpurel/client"
	"gpurel/internal/service"
)

const goldenDir = "../internal/service/testdata"

func TestJobSpecGoldenRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(goldenDir, "jobspec_*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("golden fixtures: %v (found %d)", err, len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var sp client.JobSpec
			if err := json.Unmarshal(data, &sp); err != nil {
				t.Fatalf("client decode: %v", err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("golden fixture does not validate: %v", err)
			}
			p, err := sp.Point()
			if err != nil {
				t.Fatalf("Point: %v", err)
			}
			// The client type IS the server type — same decoder, same point.
			var srv service.JobSpec
			if err := json.Unmarshal(data, &srv); err != nil {
				t.Fatalf("server decode: %v", err)
			}
			srvPoint, err := srv.Point()
			if err != nil {
				t.Fatalf("server Point: %v", err)
			}
			if !reflect.DeepEqual(p, srvPoint) {
				t.Fatalf("client and server decode diverge:\nclient %+v\nserver %+v", p, srvPoint)
			}
			// Encode/decode round trip: the re-emitted wire form (always the
			// v1 nested schema, even for legacy flat fixtures) must resolve
			// to the same point.
			out, err := json.Marshal(sp)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			var back client.JobSpec
			if err := json.Unmarshal(out, &back); err != nil {
				t.Fatalf("re-decode: %v (%s)", err, out)
			}
			bp, err := back.Point()
			if err != nil {
				t.Fatalf("re-decoded Point: %v (%s)", err, out)
			}
			if !reflect.DeepEqual(bp, p) {
				t.Fatalf("round trip changed the point:\nbefore %+v\nafter  %+v\nwire %s", p, bp, out)
			}
		})
	}
}

// The fault group's fields must survive the round trip spelled exactly as
// the server spells them — model/stuck/width/lines — so third-party tooling
// that templates raw JSON against the fixtures keeps working against specs
// the client emits.
func TestFaultGroupWireFields(t *testing.T) {
	stuck := 1
	sp := client.JobSpec{
		Layer: "micro", App: "VA", Kernel: "K1", Structure: "SMEM",
		Runs: 10, Seed: 7,
		Fault: &client.FaultSpec{Model: client.ModelMBU, Width: 2, Lines: 2},
	}
	out, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	var fg map[string]any
	if err := json.Unmarshal(raw["fault"], &fg); err != nil {
		t.Fatalf("no fault group in %s: %v", out, err)
	}
	want := map[string]any{"model": "mbu", "width": float64(2), "lines": float64(2)}
	if !reflect.DeepEqual(fg, want) {
		t.Fatalf("fault group wire form %v, want %v", fg, want)
	}

	sp.Structure = "SCHED"
	sp.Fault = &client.FaultSpec{Model: client.ModelControl, Stuck: &stuck}
	out, err = json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	raw, fg = nil, nil // Unmarshal merges into a non-nil map: start fresh
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw["fault"], &fg); err != nil {
		t.Fatalf("no fault group in %s: %v", out, err)
	}
	want = map[string]any{"model": "control", "stuck": float64(1)}
	if !reflect.DeepEqual(fg, want) {
		t.Fatalf("fault group wire form %v, want %v", fg, want)
	}
}

// AdviseSpec round-trips through the client alias with the same strict
// decoding as the server: unknown fields rejected, nested advise group
// preserved.
func TestAdviseSpecRoundTrip(t *testing.T) {
	wire := `{"advise":{"app":"SRADv1","budget":0.005},"runs":3000,"seed":42}`
	var sp client.AdviseSpec
	if err := json.Unmarshal([]byte(wire), &sp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sp.Advise.App != "SRADv1" || sp.Advise.Budget != 0.005 || sp.Runs != 3000 || sp.Seed != 42 {
		t.Fatalf("decoded %+v", sp)
	}
	out, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back client.AdviseSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("re-decode: %v (%s)", err, out)
	}
	if !reflect.DeepEqual(back, sp) {
		t.Fatalf("round trip changed the spec:\nbefore %+v\nafter  %+v", sp, back)
	}
	if err := json.Unmarshal([]byte(`{"advise":{"app":"VA","budget":0.1},"bogus":1}`), &sp); err == nil {
		t.Fatal("unknown field accepted by strict advise decoder")
	}
}
