package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"gpurel/internal/service"
)

// Fleet control-plane wire types (POST /v1/workers, GET /v1/fleet) —
// aliases of the server's own schema, like JobSpec/AdviseSpec in spec.go.
type (
	WorkerCaps   = service.WorkerCaps
	WorkerSpec   = service.WorkerSpec
	WorkerHealth = service.WorkerHealth
	WorkerStatus = service.WorkerStatus
	TenantStatus = service.TenantStatus
	LeaseStats   = service.LeaseStats
	FleetStatus  = service.FleetStatus
	LeaseRequest = service.LeaseRequest
	Lease        = service.Lease
	LeaseReport  = service.LeaseReport
	LeaseAck     = service.LeaseAck
)

// Worker health states as derived by the coordinator's registry.
const (
	HealthAvailable = service.HealthAvailable
	HealthBusy      = service.HealthBusy
	HealthDegraded  = service.HealthDegraded
	HealthDraining  = service.HealthDraining
)

// RegisterWorker announces a worker and its capability report to the
// coordinator's registry. Re-registration under the same name updates the
// caps and clears a draining mark.
func (c *Client) RegisterWorker(ctx context.Context, spec service.WorkerSpec) (service.WorkerStatus, error) {
	var st service.WorkerStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/workers", spec, &st)
	return st, err
}

// ListWorkers fetches the registry, sorted by worker name.
func (c *Client) ListWorkers(ctx context.Context) ([]service.WorkerStatus, error) {
	var out []service.WorkerStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out)
	return out, err
}

// GetWorker fetches one registry entry.
func (c *Client) GetWorker(ctx context.Context, name string) (service.WorkerStatus, error) {
	var st service.WorkerStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/workers/"+name, nil, &st)
	return st, err
}

// DrainWorker marks a worker draining: the coordinator grants it no further
// leases until it re-registers.
func (c *Client) DrainWorker(ctx context.Context, name string) (service.WorkerStatus, error) {
	var st service.WorkerStatus
	_, err := c.do(ctx, http.MethodDelete, "/v1/workers/"+name, nil, &st)
	return st, err
}

// FleetStatus fetches the control-plane summary: workers with derived
// health, per-tenant accounting, and the lease counters.
func (c *Client) FleetStatus(ctx context.Context) (service.FleetStatus, error) {
	var fs service.FleetStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &fs)
	return fs, err
}

// WatchFleet consumes the NDJSON fleet-status stream, invoking fn per
// snapshot (one immediately, then one per control-plane change) until fn
// returns an error, the stream ends, or ctx ends.
func (c *Client) WatchFleet(ctx context.Context, fn func(service.FleetStatus) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/fleet/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var fs service.FleetStatus
		if err := json.Unmarshal(line, &fs); err != nil {
			return fmt.Errorf("fleet events: bad line: %w", err)
		}
		if err := fn(fs); err != nil {
			return err
		}
	}
	return sc.Err()
}
