// Package client is the importable HTTP client for the gpureld v1 API:
// campaign-job submission and streaming for CLIs (avfsvf -daemon), and the
// lease protocol for fleet workers (gpureld -worker). Every method takes a
// context; none retries by itself — workers wrap calls with Retry and a
// jittered exponential Backoff.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gpurel"
	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

// ErrGone marks a lease the coordinator no longer tracks (expired and
// requeued, or returned): the worker must abandon it and request a new one.
var ErrGone = errors.New("lease gone")

// Client talks to one coordinator daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient). Do not
	// set a global timeout on it: event streams are long-lived.
	HTTP *http.Client
	// PollInterval is the status-poll fallback cadence used by WaitJob when
	// the event stream is unavailable (default 500ms).
	PollInterval time.Duration
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one JSON request and decodes the response into out (skipped when
// out is nil or the response has no content). Returns the status code.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// The v1 error envelope: {"error":{"code","message"}}.
		var env service.ErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return resp.StatusCode, fmt.Errorf("%s %s: %s: %s (HTTP %d)",
				method, path, env.Error.Code, env.Error.Message, resp.StatusCode)
		}
		// Pre-envelope daemons answered {"error":"..."}.
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// SubmitJob enqueues a campaign job.
func (c *Client) SubmitJob(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// GetJob fetches a job's status.
func (c *Client) GetJob(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// ListJobs fetches all jobs.
func (c *Client) ListJobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob asks the daemon to stop a job at its next chunk boundary.
func (c *Client) CancelJob(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// WatchEvents consumes a job's NDJSON event stream, invoking fn per event
// until the job reaches a terminal state, fn returns an error, or ctx ends.
func (c *Client) WatchEvents(ctx context.Context, id string, fn func(service.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("events %s: bad line: %w", id, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Job.State.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("events %s: stream ended before job finished", id)
}

// WaitJob blocks until the job is terminal, preferring the event stream and
// falling back to polling if streaming fails (e.g. across a daemon
// restart).
func (c *Client) WaitJob(ctx context.Context, id string) (service.JobStatus, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		var last service.JobStatus
		err := c.WatchEvents(ctx, id, func(ev service.Event) error {
			last = ev.Job
			return nil
		})
		if err == nil && last.State.Terminal() {
			return last, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		// Stream broke (daemon restarting, proxy hiccup): poll instead.
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(poll):
		}
		st, gerr := c.GetJob(ctx, id)
		if gerr == nil && st.State.Terminal() {
			return st, nil
		}
	}
}

// RunJob submits a spec and waits for its final tally — the one-call remote
// analogue of campaign.Run.
func (c *Client) RunJob(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		return st, err
	}
	return c.WaitJob(ctx, st.ID)
}

// RunPoint returns a Study.RunPoint hook that executes campaign points on
// the daemon:
//
//	s := gpurel.NewStudy(runs, seed)
//	s.RunPoint = client.New(url).RunPoint(ctx)
//
// The hook receives the fully derived point seed in opts, so the daemon's
// tally is bit-identical to a local campaign.Run.
func (c *Client) RunPoint(ctx context.Context) func(gpurel.PointSpec, campaign.Options) (campaign.Tally, error) {
	return func(p gpurel.PointSpec, opts campaign.Options) (campaign.Tally, error) {
		st, err := c.RunJob(ctx, service.SpecForPoint(p, opts))
		if err != nil {
			return campaign.Tally{}, err
		}
		if st.State != service.StateDone {
			return campaign.Tally{}, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		return st.Tally, nil
	}
}

// Lease requests a run-range lease from the coordinator. ok is false when
// the coordinator has no pending work (HTTP 204) — the worker sleeps and
// polls again.
func (c *Client) Lease(ctx context.Context, req service.LeaseRequest) (ls service.Lease, ok bool, err error) {
	code, err := c.do(ctx, http.MethodPost, "/v1/leases", req, &ls)
	if err != nil {
		return service.Lease{}, false, err
	}
	return ls, code == http.StatusOK, nil
}

// ReportLease streams one completed sub-range's tally back (doubling as a
// heartbeat). Returns ErrGone when the coordinator no longer tracks the
// lease.
func (c *Client) ReportLease(ctx context.Context, id string, rep service.LeaseReport) (service.LeaseAck, error) {
	var ack service.LeaseAck
	code, err := c.do(ctx, http.MethodPost, "/v1/leases/"+id+"/report", rep, &ack)
	if code == http.StatusGone {
		return ack, ErrGone
	}
	return ack, err
}

// HeartbeatLease extends the lease deadline without reporting progress.
// Returns ErrGone when the coordinator no longer tracks the lease.
func (c *Client) HeartbeatLease(ctx context.Context, id string) error {
	code, err := c.do(ctx, http.MethodPost, "/v1/leases/"+id+"/heartbeat", nil, nil)
	if code == http.StatusGone {
		return ErrGone
	}
	return err
}

// ReturnLease hands the unexecuted remainder of a lease back to the
// coordinator — the drain path of a worker shutting down.
func (c *Client) ReturnLease(ctx context.Context, id string) error {
	code, err := c.do(ctx, http.MethodDelete, "/v1/leases/"+id, nil, nil)
	if code == http.StatusGone {
		return nil // already expired and requeued: same outcome
	}
	return err
}
