package client

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is a jittered exponential retry schedule: attempt k sleeps a
// uniformly random duration in (0, min(Max, Base·2^k)] ("full jitter"), so a
// fleet of workers that lost their coordinator at the same instant does not
// reconnect in lockstep.
type Backoff struct {
	// Base is the cap of the first sleep (default 100ms).
	Base time.Duration
	// Max caps every sleep (default 5s).
	Max time.Duration
	// Tries bounds the attempts Retry makes (default 5; negative =
	// unlimited, until ctx ends).
	Tries int
	// rng, when set, replaces the global jitter source (tests).
	rng *rand.Rand
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Tries == 0 {
		b.Tries = 5
	}
	return b
}

// Delay returns the jittered sleep before retry attempt k (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	cap := b.Base << uint(attempt)
	if cap > b.Max || cap <= 0 { // <= 0: shift overflow
		cap = b.Max
	}
	var f float64
	if b.rng != nil {
		f = b.rng.Float64()
	} else {
		f = rand.Float64() //relint:allow — client jitter, not simulation state
	}
	return time.Duration(f * float64(cap))
}

// Retry runs fn until it succeeds, the attempt budget is spent, or ctx
// ends; between failures it sleeps per the jittered schedule. The last
// error is returned.
func Retry(ctx context.Context, b Backoff, fn func() error) error {
	b = b.withDefaults()
	var err error
	for attempt := 0; b.Tries < 0 || attempt < b.Tries; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = fn(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(b.Delay(attempt)):
		}
	}
	return err
}
