// The client's fleet types must be the server's fleet types: the golden
// worker-registration and fleet-status fixtures round-trip bit-identically
// through the client aliases, and the fleet helper methods work end to end
// against a live coordinator — register, lease, report, drain, status,
// watch.
package client_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWorkerSpecGoldenRoundTrip: the registration fixture decodes through
// the client alias, validates, and re-encodes to an equivalent document.
func TestWorkerSpecGoldenRoundTrip(t *testing.T) {
	data := readFixture(t, "workerspec.json")
	var spec client.WorkerSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Name != "rig-03" || spec.Caps.RunsPerSec != 118.5 || spec.Caps.SnapMB != 512 {
		t.Errorf("decoded spec %+v", spec)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("golden fixture invalid: %v", err)
	}
	// The client type IS the server type: same decode.
	var srv service.WorkerSpec
	if err := json.Unmarshal(data, &srv); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, srv) {
		t.Errorf("client and server decode diverge:\nclient %+v\nserver %+v", spec, srv)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"worker"`) {
		t.Errorf("re-encode lost the envelope: %s", out)
	}
	var back client.WorkerSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip drifted:\nbefore %+v\nafter  %+v", spec, back)
	}
}

// TestFleetStatusGoldenRoundTrip: the fleet-status document decodes through
// the client alias with every section intact and round-trips bit-identically.
func TestFleetStatusGoldenRoundTrip(t *testing.T) {
	data := readFixture(t, "fleetstatus.json")
	var fs client.FleetStatus
	if err := json.Unmarshal(data, &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Workers) != 2 || len(fs.Tenants) != 2 {
		t.Fatalf("decoded status %+v", fs)
	}
	if fs.Workers[0].Name != "rig-03" || fs.Workers[0].Health != client.HealthBusy ||
		fs.Workers[1].Health != client.HealthDegraded || fs.Workers[1].ExpiredLeases != 3 {
		t.Errorf("workers = %+v", fs.Workers)
	}
	if fs.Tenants[0].Tenant != "alice" || fs.Tenants[0].Weight != 4 || fs.Tenants[0].DoneRuns != 7000 {
		t.Errorf("tenants = %+v", fs.Tenants)
	}
	if fs.OpenLeases != 2 || fs.Leases.Granted != 64 || fs.Leases.Expired != 3 || !fs.Journaled {
		t.Errorf("counters = %+v", fs)
	}
	counts := fs.HealthCounts()
	if counts[client.HealthBusy] != 1 || counts[client.HealthDegraded] != 1 ||
		counts[client.HealthAvailable] != 0 || counts[client.HealthDraining] != 0 {
		t.Errorf("health counts = %v", counts)
	}
	out, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	var back client.FleetStatus
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, fs) {
		t.Errorf("round trip drifted:\nbefore %+v\nafter  %+v", fs, back)
	}
}

// newFleetClient wires a coordinator-only daemon (no local lanes) with a
// deterministic synthetic source, exactly like the fleet package's harness.
func newFleetClient(t *testing.T) *client.Client {
	t.Helper()
	source := func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			if rng.Intn(10) == 0 {
				return faults.Result{Outcome: faults.SDC}
			}
			return faults.Result{Outcome: faults.Masked}
		}, nil
	}
	sched, err := service.NewScheduler(service.Config{Source: source, DisableLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{LeaseRuns: 50, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { sched.Close() })
	t.Cleanup(func() { coord.Close() })
	return client.New(srv.URL)
}

// TestFleetClientEndToEnd drives the full fleet surface through the client:
// register, list, lease+report a two-tenant campaign, status, watch, drain.
func TestFleetClientEndToEnd(t *testing.T) {
	c := newFleetClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := c.RegisterWorker(ctx, client.WorkerSpec{Name: "e2e", Caps: client.WorkerCaps{RunsPerSec: 100}})
	if err != nil {
		t.Fatalf("RegisterWorker: %v", err)
	}
	if st.Health != client.HealthAvailable || !st.Registered || st.Caps.RunsPerSec != 100 {
		t.Fatalf("registered status %+v", st)
	}
	if list, err := c.ListWorkers(ctx); err != nil || len(list) != 1 || list[0].Name != "e2e" {
		t.Fatalf("ListWorkers: %v (%+v)", err, list)
	}

	// A two-tenant campaign executed entirely through client leases.
	jobs := map[string]client.JobSpec{}
	for _, spec := range []client.JobSpec{
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: 120, Seed: 7, Tenant: "alice", Priority: 3},
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: 80, Seed: 9, Tenant: "bob"},
	} {
		js, err := c.SubmitJob(ctx, spec)
		if err != nil {
			t.Fatalf("SubmitJob: %v", err)
		}
		jobs[js.ID] = spec
	}
	for {
		ls, ok, err := c.Lease(ctx, client.LeaseRequest{Worker: "e2e", RunsPerSec: 100})
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if !ok {
			break
		}
		exp := func(run int, rng *rand.Rand) faults.Result {
			if rng.Intn(10) == 0 {
				return faults.Result{Outcome: faults.SDC}
			}
			return faults.Result{Outcome: faults.Masked}
		}
		tl := campaign.RunRange(campaign.Options{Runs: ls.Spec.Runs, Seed: ls.Spec.Seed}, ls.From, ls.To, exp)
		ack, err := c.ReportLease(ctx, ls.ID, client.LeaseReport{Worker: "e2e", From: ls.From, To: ls.To, Tally: tl, Done: true})
		if err != nil {
			t.Fatalf("ReportLease: %v", err)
		}
		if !ack.Accepted {
			t.Fatalf("report rejected: %+v", ack)
		}
	}
	for id, spec := range jobs {
		js, err := c.WaitJob(ctx, id)
		if err != nil || js.State != client.StateDone || js.Done != spec.Runs {
			t.Fatalf("job %s: %v (%+v)", id, err, js)
		}
	}

	fs, err := c.FleetStatus(ctx)
	if err != nil {
		t.Fatalf("FleetStatus: %v", err)
	}
	if len(fs.Workers) != 1 || fs.Workers[0].Name != "e2e" || fs.Workers[0].RunsDone != 200 {
		t.Errorf("fleet workers = %+v, want e2e with 200 runs done", fs.Workers)
	}
	if len(fs.Tenants) != 2 || fs.Tenants[0].Tenant != "alice" || fs.Tenants[1].Tenant != "bob" {
		t.Errorf("fleet tenants = %+v, want [alice bob]", fs.Tenants)
	}
	if fs.Tenants[0].DoneRuns != 120 || fs.Tenants[1].DoneRuns != 80 {
		t.Errorf("tenant runs = %+v", fs.Tenants)
	}
	if fs.OpenLeases != 0 || fs.Leases.Granted == 0 || fs.Leases.Reported == 0 {
		t.Errorf("lease counters = %+v", fs)
	}

	// The watch stream opens with a snapshot matching GET /v1/fleet.
	var first client.FleetStatus
	stop := func(got client.FleetStatus) error { first = got; return context.Canceled }
	if err := c.WatchFleet(ctx, stop); err != nil && err != context.Canceled {
		t.Fatalf("WatchFleet: %v", err)
	}
	if !reflect.DeepEqual(first.Tenants, fs.Tenants) || first.Leases != fs.Leases {
		t.Errorf("watch snapshot diverges from GET:\nwatch %+v\nget   %+v", first, fs)
	}

	if st, err := c.DrainWorker(ctx, "e2e"); err != nil || st.Health != client.HealthDraining {
		t.Fatalf("DrainWorker: %v (%+v)", err, st)
	}
	if _, err := c.GetWorker(ctx, "ghost"); err == nil || !strings.Contains(err.Error(), service.ErrCodeNotFound) {
		t.Errorf("GetWorker(ghost) err = %v, want the envelope code surfaced", err)
	}
}
