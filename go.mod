module gpurel

go 1.22
