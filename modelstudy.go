// Cross-model outcome comparison: the fault-model extension of the paper's
// cross-layer methodology. Where the original study fixes the fault model
// (transient single-bit) and varies the abstraction layer, this table fixes
// the layer (microarchitectural) and varies the model — transient vs
// permanent stuck-at vs spatial multi-bit per storage array, and flip vs
// forced latch per control-state site — pooling outcome distributions
// (Masked/SDC/Timeout/DUE) over the Rodinia applications.
package gpurel

import (
	"fmt"

	"gpurel/internal/campaign"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/report"
)

// StorageFaultSpecs returns the fault-model set compared on every storage
// structure: the transient single-bit baseline, both stuck-at polarities,
// and a 2×2 spatial MBU cluster (2 adjacent bits in 2 adjacent rows — wide
// enough to escape SEC-DED, the pattern "The Anatomy of Silent Data
// Corruption" reports dominating field SDCs).
func StorageFaultSpecs() []faultmodel.Spec {
	return []faultmodel.Spec{
		{}, // transient single-bit (legacy default)
		{Model: faultmodel.ModelStuck, Stuck: faultmodel.Ptr(0)},
		{Model: faultmodel.ModelStuck, Stuck: faultmodel.Ptr(1)},
		{Model: faultmodel.ModelMBU, Width: 2, Lines: 2},
	}
}

// ControlFaultSpecs returns the model set compared on every control-state
// site: a transient latch flip and both permanently-forced polarities.
func ControlFaultSpecs() []faultmodel.Spec {
	return []faultmodel.Spec{
		{Model: faultmodel.ModelControl},
		{Model: faultmodel.ModelControl, Stuck: faultmodel.Ptr(0)},
		{Model: faultmodel.ModelControl, Stuck: faultmodel.Ptr(1)},
	}
}

// MicroTallyModel runs (or recalls) the microarchitecture-level campaign for
// one (app, kernel, structure) point under an explicit fault model. With the
// default spec it shares its memo entry — and its seed — with MicroTally.
func (s *Study) MicroTallyModel(appName, kernel string, st gpu.Structure, fault faultmodel.Spec) (campaign.Tally, error) {
	return s.microTallyModel(appName, kernel, st, fault, false)
}

// MicroTallyModelHardened is MicroTallyModel on the TMR-hardened variant of
// the application — the protection-effectiveness side of the cross-model
// table.
func (s *Study) MicroTallyModelHardened(appName, kernel string, st gpu.Structure, fault faultmodel.Spec) (campaign.Tally, error) {
	return s.microTallyModel(appName, kernel, st, fault, true)
}

func (s *Study) microTallyModel(appName, kernel string, st gpu.Structure, fault faultmodel.Spec, hardened bool) (campaign.Tally, error) {
	if _, err := s.Eval(appName); err != nil {
		return campaign.Tally{}, err
	}
	key := microKey{app: appName, kernel: kernel, structure: st, hardened: hardened, fault: fault.Canonical()}

	s.mu.Lock()
	tl, ok := s.micro[key]
	s.mu.Unlock()
	if !ok {
		f := fault
		var err error
		tl, err = s.runPoint(PointSpec{Layer: LayerMicro, App: appName, Kernel: kernel, Structure: st, Hardened: hardened, Fault: &f})
		if err != nil {
			return campaign.Tally{}, err
		}
		s.mu.Lock()
		s.micro[key] = tl
		s.mu.Unlock()
	}
	return tl, nil
}

// ModelOutcomeRow is one (structure, model) cell of the cross-model table:
// the outcome distributions pooled over the selected applications' kernels,
// on the unhardened (Tally) and TMR-hardened (Hardened) variants side by
// side, so cross-model results show protection effectiveness rather than
// raw outcome rates alone.
type ModelOutcomeRow struct {
	Structure string         `json:"structure"`
	Model     string         `json:"model"`
	Tally     campaign.Tally `json:"tally"`
	Hardened  campaign.Tally `json:"hardened"`
}

// FR returns the pooled failure rate of the row's unhardened campaigns.
func (r ModelOutcomeRow) FR() float64 { return r.Tally.FR() }

// FRHardened returns the pooled failure rate under TMR.
func (r ModelOutcomeRow) FRHardened() float64 { return r.Hardened.FR() }

// FaultModelTable measures the cross-model outcome table over the named
// applications (nil = all 11 benchmarks): every storage structure under
// StorageFaultSpecs and every control-state site under ControlFaultSpecs,
// each cell pooling the per-kernel campaigns of the selected apps. Row
// order is deterministic: structures in canonical order, models in spec
// order.
func (s *Study) FaultModelTable(appNames []string) ([]ModelOutcomeRow, error) {
	if appNames == nil {
		appNames = SortedAppNames()
	}
	var rows []ModelOutcomeRow
	pool := func(st gpu.Structure, fault faultmodel.Spec) error {
		var pooled, hardened campaign.Tally
		for _, app := range appNames {
			e, err := s.Eval(app)
			if err != nil {
				return err
			}
			for _, k := range e.App.Kernels {
				tl, err := s.MicroTallyModel(app, k, st, fault)
				if err != nil {
					return fmt.Errorf("%s/%s %v %s: %w", app, k, st, fault.Label(), err)
				}
				pooled.Merge(tl)
				th, err := s.MicroTallyModelHardened(app, k, st, fault)
				if err != nil {
					return fmt.Errorf("%s/%s %v %s (TMR): %w", app, k, st, fault.Label(), err)
				}
				hardened.Merge(th)
			}
		}
		rows = append(rows, ModelOutcomeRow{Structure: st.String(), Model: fault.Label(), Tally: pooled, Hardened: hardened})
		return nil
	}
	for _, st := range gpu.Structures {
		for _, fault := range StorageFaultSpecs() {
			if err := pool(st, fault); err != nil {
				return nil, err
			}
		}
	}
	for _, st := range gpu.ControlStructures {
		for _, fault := range ControlFaultSpecs() {
			if err := pool(st, fault); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// FaultModelFigure is FaultModelTable in the study's figure idiom: the rows
// plus a paper-style text table.
func (s *Study) FaultModelFigure(appNames []string) ([]ModelOutcomeRow, string, error) {
	rows, err := s.FaultModelTable(appNames)
	if err != nil {
		return nil, "", err
	}
	tbl := report.Table{
		Title:  "Cross-model outcome distributions (micro layer, pooled over apps)",
		Header: []string{"Structure", "Model", "n", "Masked", "SDC", "Timeout", "DUE", "FR", "TMR SDC", "TMR FR"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Structure, r.Model, fmt.Sprintf("%d", r.Tally.N),
			report.Pct(r.Tally.Pct(faults.Masked)), report.Pct(r.Tally.Pct(faults.SDC)),
			report.Pct(r.Tally.Pct(faults.Timeout)), report.Pct(r.Tally.Pct(faults.DUE)),
			report.Pct(r.Tally.FR()),
			report.Pct(r.Hardened.Pct(faults.SDC)), report.Pct(r.Hardened.FR()))
	}
	return rows, tbl.String(), nil
}
