package gpurel

import (
	"testing"

	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/softfi"
)

// TestPipelineVA runs small AVF and SVF campaigns on vectorAdd end to end.
func TestPipelineVA(t *testing.T) {
	s := NewStudy(40, 1)
	avf, structs, err := s.KernelAVF("VA", "K1", false)
	if err != nil {
		t.Fatal(err)
	}
	if avf.Total() < 0 || avf.Total() > 1 {
		t.Errorf("AVF out of range: %v", avf.Total())
	}
	if len(structs) != int(gpu.NumStructures) {
		t.Fatalf("expected %d structures, got %d", gpu.NumStructures, len(structs))
	}
	svf, err := s.KernelSVF("VA", "K1", false)
	if err != nil {
		t.Fatal(err)
	}
	if svf.Total() <= 0 {
		t.Errorf("SVF should be positive for VA (most register flips corrupt the sum), got %v", svf.Total())
	}
	// The paper's scale separation: full-system AVF well below SVF.
	if avf.Total() >= svf.Total() {
		t.Errorf("expected AVF (%v) < SVF (%v): hardware masking must dominate", avf.Total(), svf.Total())
	}
}

// TestTMREliminatesSDCsAtSVF reproduces the §IV headline at tiny scale: under
// software-level evaluation, TMR removes (nearly all) SDCs.
func TestTMREliminatesSDCsAtSVF(t *testing.T) {
	s := NewStudy(60, 2)
	plain, err := s.SoftTally("VA", "K1", softfi.SVF, false)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := s.SoftTally("VA", "K1", softfi.SVF, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counts[faults.SDC] == 0 {
		t.Skip("plain campaign produced no SDCs at this sample size")
	}
	if hard.Pct(faults.SDC) >= plain.Pct(faults.SDC) {
		t.Errorf("TMR did not reduce SVF SDCs: plain %.2f, hardened %.2f",
			plain.Pct(faults.SDC), hard.Pct(faults.SDC))
	}
}

// TestDeterministicCampaigns: identical seeds must reproduce tallies.
func TestDeterministicCampaigns(t *testing.T) {
	a := NewStudy(25, 7)
	b := NewStudy(25, 7)
	ta, _, err := a.MicroTally("SCP", "K1", gpu.RF, false)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := b.MicroTally("SCP", "K1", gpu.RF, false)
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Errorf("campaign not deterministic: %+v vs %+v", ta, tb)
	}
}
