package gpurel

import (
	"testing"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/gpu"
)

// TestPrunedPointEquivalence is the end-to-end bit-exactness property on a
// real kernel: a pruned campaign point classifies every run identically to
// the brute-force campaign over the same seeds, so the tallies match exactly
// — while actually skipping simulations (prune hits > 0).
func TestPrunedPointEquivalence(t *testing.T) {
	const runs = 60
	plain := NewStudy(runs, 5)
	pruned := NewStudy(runs, 5)
	pruned.Sampling = &SamplingPolicy{Prune: true}
	pruned.Counters = &adaptive.Counters{}

	for _, hardened := range []bool{false, true} {
		a, _, err := plain.MicroTally("VA", "K1", gpu.RF, hardened)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := pruned.MicroTally("VA", "K1", gpu.RF, hardened)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("hardened=%v: pruned tally %+v != brute-force tally %+v", hardened, b, a)
		}
	}
	if pruned.Counters.Pruned.Load() == 0 {
		t.Error("no injection was pruned — the liveness map did no work")
	}
	if pruned.Counters.Simulated.Load() == 0 {
		t.Error("no injection was simulated — suspicious for a live kernel")
	}
}

// TestStratifiedPointEquivalence: every per-structure tally of a stratified
// kernel campaign is a bit-identical prefix of the corresponding plain
// fixed-n campaign, and the stop rule never fires before the margin target
// is met on the executed prefix.
func TestStratifiedPointEquivalence(t *testing.T) {
	const runs = 80
	s := NewStudy(runs, 9)
	s.Sampling = &SamplingPolicy{Prune: true}
	s.Counters = &adaptive.Counters{}
	pol := adaptive.StratifiedPolicy{
		Policy: adaptive.Policy{Margin: 0.3, Batch: 20, MinRuns: 20},
		Pilot:  20,
		Budget: 3 * runs, // tighter than the 5·runs brute-force total
	}
	avf, structs, results, err := s.KernelAVFStratified("VA", "K1", false, pol)
	if err != nil {
		t.Fatal(err)
	}
	if avf.Total() < 0 || avf.Total() > 1 {
		t.Fatalf("stratified AVF out of range: %v", avf.Total())
	}
	if len(structs) != int(gpu.NumStructures) || len(results) != int(gpu.NumStructures) {
		t.Fatalf("expected %d strata, got %d/%d", gpu.NumStructures, len(structs), len(results))
	}

	ref := NewStudy(runs, 9)
	total := 0
	for i, st := range gpu.Structures {
		got := results[i].Tally
		total += got.N
		if got.N == 0 {
			t.Fatalf("stratum %v ran nothing", st)
		}
		// Prefix identity against the brute-force experiment over the same
		// derived point seed.
		spec := PointSpec{Layer: LayerMicro, App: "VA", Kernel: "K1", Structure: st}
		fn, err := ref.PointExperiment(spec)
		if err != nil {
			t.Fatal(err)
		}
		opts := campaign.Options{Runs: runs, Seed: PointSeed(ref.Seed, spec)}
		if want := campaign.RunRange(opts, 0, got.N, fn); want != got {
			t.Errorf("stratum %v: tally %+v != brute-force prefix %+v", st, got, want)
		}
		// A stratum that stopped short of its cap must have met the margin.
		if got.N < runs && got.Margin99() > pol.Margin && results[i].Allocated > 0 && !results[i].EarlyStopped {
			t.Errorf("stratum %v stopped at n=%d margin %.3f without meeting target %.3f",
				st, got.N, got.Margin99(), pol.Margin)
		}
	}
	if total > pol.Budget {
		t.Errorf("stratified campaign spent %d runs, budget %d", total, pol.Budget)
	}

	// The stratified tallies are cached: MicroTally must return them without
	// re-running (same tally, including the reduced N).
	for i, st := range gpu.Structures {
		tl, _, err := s.MicroTally("VA", "K1", st, false)
		if err != nil {
			t.Fatal(err)
		}
		if tl != results[i].Tally {
			t.Errorf("stratum %v not cached: %+v vs %+v", st, tl, results[i].Tally)
		}
	}
}

// TestAdaptivePointStopsHonestly: an adaptive (non-stratified) study point
// stops only at a batch boundary whose prefix meets the margin, and the
// resulting tally is a prefix of the fixed-n campaign.
func TestAdaptivePointStopsHonestly(t *testing.T) {
	const runs = 100
	s := NewStudy(runs, 3)
	s.Sampling = &SamplingPolicy{Margin: 0.25, Batch: 25}
	s.Counters = &adaptive.Counters{}
	tl, _, err := s.MicroTally("VA", "K1", gpu.L2, false)
	if err != nil {
		t.Fatal(err)
	}
	if tl.N%25 != 0 {
		t.Fatalf("stopped at n=%d, not a batch boundary", tl.N)
	}
	if tl.N < runs && tl.Margin99() > 0.25 {
		t.Fatalf("stopped early at margin %.3f > 0.25", tl.Margin99())
	}
	ref := NewStudy(runs, 3)
	want, _, err := ref.MicroTally("VA", "K1", gpu.L2, false)
	if err != nil {
		t.Fatal(err)
	}
	spec := PointSpec{Layer: LayerMicro, App: "VA", Kernel: "K1", Structure: gpu.L2}
	fn, err := ref.PointExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	prefix := campaign.RunRange(campaign.Options{Runs: runs, Seed: PointSeed(ref.Seed, spec)}, 0, tl.N, fn)
	if prefix != tl {
		t.Fatalf("adaptive tally %+v is not a prefix of the fixed campaign (want %+v)", tl, prefix)
	}
	if tl.N < want.N && s.Counters.Saved.Load() == 0 {
		t.Error("early stop saved runs but Counters.Saved was not credited")
	}
}
