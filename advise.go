// StudyBackend wires internal/advisor to the measurement stack: adaptive
// per-kernel campaigns for vulnerability, golden-run cycle counts for the
// cost model, flow liveness for static search hints, and a selective-job
// campaign for plan verification.
package gpurel

import (
	"context"
	"fmt"

	"gpurel/internal/advisor"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/metrics"
)

// StudyBackend implements advisor.Backend on top of a Study: every
// measurement is an ordinary study campaign (memoized, seeded, adaptive,
// fleet-distributable through Study.RunPoint), so advise runs inherit all
// execution policy — and determinism — from the study they wrap.
type StudyBackend struct {
	Study *Study
}

// Advise runs the full advisor loop for one app and budget on this study:
// measure, search, verify. The journaling hooks are exposed by using
// advisor.Runner directly; Advise is the plain blocking entry point the
// gpuharden CLI and tests use.
func (s *Study) Advise(appName string, budget float64) (*advisor.State, error) {
	r := &advisor.Runner{Backend: &StudyBackend{Study: s}, App: appName, Budget: budget}
	return r.Run(context.Background())
}

// Kernels lists the app's kernels in schedule order.
func (b *StudyBackend) Kernels(ctx context.Context, app string) ([]string, error) {
	e, err := b.Study.Eval(app)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), e.App.Kernels...), nil
}

// PreRank implements advisor.PreRanker: the flow interval engine's static
// RF AVF bracket per kernel, from one fault-free traced run of the plain
// job (cached on the AppEval) — no injection campaigns. The runner uses it
// to measure the statically most-exposed kernels first; it cannot change
// the plan, which is a pure function of the complete measurement maps.
func (b *StudyBackend) PreRank(ctx context.Context, app string) ([]advisor.StaticRank, error) {
	e, err := b.Study.Eval(app)
	if err != nil {
		return nil, err
	}
	si, err := e.staticIntervals(b.Study.Cfg)
	if err != nil {
		return nil, err
	}
	ranks := make([]advisor.StaticRank, 0, len(e.App.Kernels))
	for _, k := range e.App.Kernels {
		bd := si.Bounds(gpu.RF, k)
		ranks = append(ranks, advisor.StaticRank{Kernel: k, Lower: bd.Lower, Upper: bd.Upper})
	}
	return ranks, nil
}

// Measure runs the plain and hardened campaigns for one kernel and derives
// its weight and TMR cycle multiplier from the golden runs. The static hint
// is the kernel's mean live-register pressure from flow liveness: kernels
// holding more live state per instruction expose more architecturally
// correctable bits, so they are tried earlier on ties.
func (b *StudyBackend) Measure(ctx context.Context, app, kernel string) (advisor.KernelMeasure, error) {
	e, err := b.Study.Eval(app)
	if err != nil {
		return advisor.KernelMeasure{}, err
	}
	plain, _, err := b.Study.KernelAVF(app, kernel, false)
	if err != nil {
		return advisor.KernelMeasure{}, err
	}
	hard, _, err := b.Study.KernelAVF(app, kernel, true)
	if err != nil {
		return advisor.KernelMeasure{}, err
	}
	w := kernelCycles(e.MicroG, kernel)
	wh := kernelCycles(e.MicroGTMR, kernel)
	mult := 1.0
	if w > 0 && wh > 0 {
		mult = wh / w
	}
	return advisor.KernelMeasure{
		Kernel:      kernel,
		Weight:      w,
		HardMult:    mult,
		SDC:         plain.SDC,
		SDCHardened: hard.SDC,
		Hint:        kernelHint(e, kernel),
	}, nil
}

// kernelHint scores a kernel by its mean live-in register count per
// instruction (0 when the kernel is not found — hints only order the
// search, they never gate it).
func kernelHint(e *AppEval, kernel string) float64 {
	for _, st := range e.Job.Steps {
		if st.Launch == nil || st.Launch.Name() != kernel {
			continue
		}
		lv := flow.Build(st.Launch.Kernel).Liveness()
		n := len(st.Launch.Kernel.Code)
		if n == 0 {
			return 0
		}
		live := 0
		for pc := 0; pc < n; pc++ {
			live += len(lv.In(pc).Regs())
		}
		return float64(live) / float64(n)
	}
	return 0
}

// Cost prices protecting exactly one kernel: the golden-run cycle overhead
// of Selective({kernel}) minus one — replicated execution of that kernel
// plus the final output vote.
func (b *StudyBackend) Cost(ctx context.Context, app, kernel string) (float64, error) {
	o, err := b.Study.SelectiveOverhead(app, []string{kernel})
	if err != nil {
		return 0, err
	}
	return o - 1, nil
}

// FullOverhead measures the full-TMR cycle overhead of the app.
func (b *StudyBackend) FullOverhead(ctx context.Context, app string) (float64, error) {
	e, err := b.Study.Eval(app)
	if err != nil {
		return 0, err
	}
	return float64(e.MicroGTMR.Res.Cycles) / float64(e.MicroG.Res.Cycles), nil
}

// Verify runs the verification campaign on the selectively hardened job:
// per-kernel chip AVFs on the planned variant, weighted by the selective
// golden run — the same app-AVF methodology every other campaign uses, so
// all fault models and the fleet path apply unchanged.
func (b *StudyBackend) Verify(ctx context.Context, app string, protect []string) (advisor.Verification, error) {
	s := b.Study
	e, err := s.Eval(app)
	if err != nil {
		return advisor.Verification{}, err
	}
	_, g, err := s.SelectiveEval(app, protect)
	if err != nil {
		return advisor.Verification{}, err
	}
	v := advisor.Verification{PerKernel: map[string]float64{}}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		var structs []metrics.StructAVF
		for _, st := range gpu.Structures {
			tl, df, err := s.MicroTallySelective(app, k, st, protect)
			if err != nil {
				return advisor.Verification{}, fmt.Errorf("verify %s/%s/%s: %w", app, k, st, err)
			}
			structs = append(structs, metrics.NewStructAVF(st, tl, df))
			v.TotalRuns += tl.N
		}
		chip := metrics.ChipAVF(s.Cfg, structs)
		v.PerKernel[k] = chip.SDC
		parts = append(parts, chip)
		weights = append(weights, kernelCycles(g, k))
	}
	v.SDC = metrics.Weighted(parts, weights).SDC
	v.Overhead = float64(g.Res.Cycles) / float64(e.MicroG.Res.Cycles)
	return v, nil
}
