// Command nvbitfi runs a software-level fault-injection campaign on one
// benchmark — the NVBitFI workflow: inject n single-bit flips into the
// destination registers of uniformly chosen dynamic instructions and report
// the outcome distribution and SVF. Variants restrict injection to load
// instructions (SVF-LD) or flip a single operand use (the §V-B ablation).
//
// Usage:
//
//	nvbitfi -app HotSpot -kernel K1 -n 3000 [-mode svf|svf-ld|svf-use] [-tmr]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/harden"
	"gpurel/internal/kernels"
	"gpurel/internal/report"
	"gpurel/internal/softfi"
)

func main() {
	var (
		appName = flag.String("app", "VA", "benchmark application (see -list)")
		kernel  = flag.String("kernel", "", "kernel name (K1..Kn); empty = whole application")
		mode    = flag.String("mode", "svf", "svf, svf-ld or svf-use")
		n       = flag.Int("n", 3000, "injections per campaign")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		tmr     = flag.Bool("tmr", false, "harden the application with thread-level TMR first")
		list    = flag.Bool("list", false, "list benchmarks and kernels")
	)
	flag.Parse()

	if *list {
		for _, a := range kernels.All() {
			fmt.Printf("%-12s %s\n", a.Name, strings.Join(a.Kernels, " "))
		}
		return
	}

	app, err := kernels.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	job := app.Build()
	if *tmr {
		job = harden.TMR(job)
	}
	g, err := softfi.Golden(job)
	if err != nil {
		fatal(err)
	}

	var m softfi.Mode
	switch *mode {
	case "svf":
		m = softfi.SVF
	case "svf-ld":
		m = softfi.SVFLD
	case "svf-use":
		m = softfi.SVFUse
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	tgt := softfi.Target{Kernel: *kernel, Mode: m, IncludeVote: *tmr}
	fmt.Printf("golden run: %d dynamic instructions, %d injection candidates\n",
		g.Res.DynInstrs, tgt.Candidates(g))

	tl := campaign.Run(campaign.Options{Runs: *n, Seed: *seed, Workers: *workers},
		func(run int, rng *rand.Rand) faults.Result {
			return softfi.Inject(job, g, tgt, rng)
		})

	tbl := report.Table{
		Title:  fmt.Sprintf("NVBitFI campaign: %s %s, mode %s (n=%d, seed=%d, tmr=%v)", *appName, *kernel, m, *n, *seed, *tmr),
		Header: []string{"Masked", "SDC", "Timeout", "DUE", m.String(), "±99%"},
	}
	tbl.AddRow(
		report.Pct(tl.Pct(faults.Masked)), report.Pct(tl.Pct(faults.SDC)),
		report.Pct(tl.Pct(faults.Timeout)), report.Pct(tl.Pct(faults.DUE)),
		report.Pct(tl.FR()), report.Pct(tl.ErrMargin99()))
	fmt.Print(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvbitfi:", err)
	os.Exit(1)
}
