// Command nvbitfi runs a software-level fault-injection campaign on one
// benchmark — the NVBitFI workflow: inject n single-bit flips into the
// destination registers of uniformly chosen dynamic instructions and report
// the outcome distribution and SVF. Variants restrict injection to load
// instructions (SVF-LD) or flip a single operand use (the §V-B ablation).
//
// Usage:
//
//	nvbitfi -app HotSpot -kernel K1 -n 3000 [-mode svf|svf-ld|svf-use] [-tmr]
//	nvbitfi -app HotSpot -n 3000 -adaptive    # stop early at the ±2.35% target
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/harden"
	"gpurel/internal/kernels"
	"gpurel/internal/report"
	"gpurel/internal/softfi"
)

func main() {
	var (
		appName = flag.String("app", "VA", "benchmark application (see -list)")
		kernel  = flag.String("kernel", "", "kernel name (K1..Kn); empty = whole application")
		mode    = flag.String("mode", "svf", "svf, svf-ld or svf-use")
		n       = flag.Int("n", 3000, "injections per campaign")
		seed    = flag.Int64("seed", 1, "campaign seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		tmr     = flag.Bool("tmr", false, "harden the application with thread-level TMR first")
		adapt   = flag.Bool("adaptive", false, "stop the campaign early once the Wilson-score 99% CI half-width reaches the target margin")
		margin  = flag.Float64("margin", 0, "target 99% CI half-width for -adaptive (0 = the paper's ±2.35%); implies -adaptive")
		list    = flag.Bool("list", false, "list benchmarks and kernels")
	)
	flag.Parse()

	if *list {
		for _, a := range kernels.All() {
			fmt.Printf("%-12s %s\n", a.Name, strings.Join(a.Kernels, " "))
		}
		return
	}

	app, err := kernels.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	job := app.Build()
	if *tmr {
		job = harden.TMR(job)
	}
	g, err := softfi.Golden(job)
	if err != nil {
		fatal(err)
	}

	var m softfi.Mode
	switch *mode {
	case "svf":
		m = softfi.SVF
	case "svf-ld":
		m = softfi.SVFLD
	case "svf-use":
		m = softfi.SVFUse
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	tgt := softfi.Target{Kernel: *kernel, Mode: m, IncludeVote: *tmr}
	fmt.Printf("golden run: %d dynamic instructions, %d injection candidates\n",
		g.Res.DynInstrs, tgt.Candidates(g))

	target := *margin
	if *adapt && target == 0 {
		target = campaign.WorstCaseMargin99(3000) // the paper's ±2.35%
	}
	exp := func(run int, rng *rand.Rand) faults.Result {
		return softfi.Inject(job, g, tgt, rng)
	}
	opts := campaign.Options{Runs: *n, Seed: *seed, Workers: *workers}
	var tl campaign.Tally
	saved := 0
	if target > 0 {
		res := adaptive.Run(opts, adaptive.Policy{Margin: target}, exp)
		tl, saved = res.Tally, res.Saved
	} else {
		tl = campaign.Run(opts, exp)
	}

	tbl := report.Table{
		Title:  fmt.Sprintf("NVBitFI campaign: %s %s, mode %s (n=%d, seed=%d, tmr=%v)", *appName, *kernel, m, *n, *seed, *tmr),
		Header: []string{"n", "Masked", "SDC", "Timeout", "DUE", m.String(), "±99%"},
	}
	lo, hi := tl.CI99()
	tbl.AddRow(fmt.Sprintf("%d", tl.N),
		report.Pct(tl.Pct(faults.Masked)), report.Pct(tl.Pct(faults.SDC)),
		report.Pct(tl.Pct(faults.Timeout)), report.Pct(tl.Pct(faults.DUE)),
		report.Pct(tl.FR()), report.CI(lo, hi))
	if target > 0 {
		tbl.AddFooter("adaptive sampling: %d runs saved (early stop, target ±%.2f%%)", saved, 100*target)
	}
	fmt.Print(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvbitfi:", err)
	os.Exit(1)
}
