// Package sim is a relint test fixture: every banned construct appears once,
// plus allowed forms that must NOT be flagged.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the wall clock — banned.
func Stamp() int64 {
	return time.Now().UnixNano() // finding: wallclock
}

// Elapsed uses time.Since — banned.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // finding: wallclock
}

// Draw pulls from the global source — banned.
func Draw() int {
	return rand.Intn(10) // finding: global-rand
}

// DrawSeeded derives an explicit source — allowed.
func DrawSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// Tally iterates a map into an append — banned (order leaks into the slice).
func Tally(counts map[string]int) []string {
	var out []string
	for k := range counts { // finding: map-order
		out = append(out, k)
	}
	return out
}

// Dump prints while ranging a map literal — banned.
func Dump() {
	for k, v := range map[string]int{"a": 1} { // finding: map-order
		fmt.Println(k, v)
	}
}

// Count is order-insensitive map iteration — allowed.
func Count(counts map[string]int) int {
	n := 0
	for range counts {
		n++
	}
	return n
}

// Allowed is suppressed by the escape-hatch comment.
func Allowed(counts map[string]int) []string {
	var out []string
	//relint:allow — order does not matter here, the caller sorts
	for k := range counts {
		out = append(out, k)
	}
	return out
}

// Ticker only names the time package in a type — allowed (no clock read).
var Ticker time.Duration
