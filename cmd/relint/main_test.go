package main

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func parseAndCheck(t *testing.T, path string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f)
}

// TestFixtureFindings: the fixture exercises each rule once; the allowed
// forms (seeded rand, counting iteration, //relint:allow) produce nothing.
func TestFixtureFindings(t *testing.T) {
	got := parseAndCheck(t, filepath.Join("testdata", "fixture", "internal", "sim", "bad.go"))
	wantRules := []string{"wallclock", "wallclock", "global-rand", "map-order", "map-order"}
	if len(got) != len(wantRules) {
		for _, fd := range got {
			t.Logf("finding: %s: %s: %s", fd.pos, fd.rule, fd.msg)
		}
		t.Fatalf("got %d findings, want %d", len(got), len(wantRules))
	}
	for i, rule := range wantRules {
		if got[i].rule != rule {
			t.Errorf("finding %d: rule %q, want %q (%s)", i, got[i].rule, rule, got[i].msg)
		}
	}
}

// TestDeterministicCoreClean runs every rule over the real deterministic
// packages — the same set CI enforces. A finding here is a regression.
func TestDeterministicCoreClean(t *testing.T) {
	_, self, _, _ := runtime.Caller(0)
	root := filepath.Join(filepath.Dir(self), "..", "..")
	for _, pkg := range strings.Split(defaultPkgs, ",") {
		dir := filepath.Join(root, pkg)
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 {
			t.Fatalf("%s: no Go files — defaultPkgs is stale", pkg)
		}
		for _, path := range matches {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			for _, fd := range parseAndCheck(t, path) {
				t.Errorf("%s: %s: %s", fd.pos, fd.rule, fd.msg)
			}
		}
	}
}

// TestInPkgs pins the directory-matching rules used to scope enforcement.
func TestInPkgs(t *testing.T) {
	pkgs := []string{"internal/sim", "internal/exec"}
	cases := []struct {
		root, path string
		want       bool
	}{
		{".", "internal/sim/sim.go", true},
		{".", "internal/sim/sub/deep.go", true},
		{".", "internal/exec/exec.go", true},
		{".", "internal/isa/isa.go", false},
		{".", "cmd/relint/main.go", false},
		{"testdata/fixture", "testdata/fixture/internal/sim/bad.go", true},
	}
	for _, c := range cases {
		if got := inPkgs(c.root, c.path, pkgs); got != c.want {
			t.Errorf("inPkgs(%q, %q) = %v, want %v", c.root, c.path, got, c.want)
		}
	}
}
