// Command relint is a determinism linter for the simulation core. Fault
// injection campaigns must be bit-reproducible from a seed (checkpoints
// resume mid-campaign, property tests replay injections), so the packages on
// the simulation path may not consult wall-clock time, draw from the global
// math/rand source, or let Go's randomized map iteration order leak into
// anything order-sensitive.
//
// Rules (all syntactic, via go/ast):
//
//	wallclock    calls to time.Now / time.Since / time.Until
//	global-rand  draws on the math/rand package source (rand.Intn, rand.Seed,
//	             ...); rand.New and rand.NewSource are allowed — campaigns
//	             derive per-run *rand.Rand instances from explicit seeds
//	map-order    a `for range` over a map whose body feeds order-sensitive
//	             sinks (append, fmt printing, Write/WriteString methods)
//
// A finding is suppressed by a `//relint:allow` comment on the same or the
// preceding line.
//
// Usage:
//
//	relint [-pkgs=dir,dir,...] [roots...]
//
// Roots (default ".", "./..." accepted as an alias) are walked recursively;
// only files inside one of the -pkgs directories are checked, so running
// `relint ./...` from the repo root enforces the rules exactly on the
// deterministic core while leaving CLIs and services free to use the clock.
// Test files and testdata directories are skipped. Exits 1 when any finding
// survives, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// defaultPkgs is the deterministic core — every package whose behaviour must
// be a pure function of (job, seed) — plus the layers above it whose output
// must replay bit-identically (static dataflow analysis, the job service,
// which journals and resumes campaigns; its clock is injected via
// Config.Now; the harden transforms, whose output participates in point
// identity; and the advisor, whose journaled search must resume to a
// bit-identical plan). The fleet layer, the ACE liveness tracer, the shared
// CLI plumbing and the wire client ride along: their outputs feed the same
// deterministic pipelines, so wallclock or map-order dependence there is
// just as much a replay hazard.
const defaultPkgs = "internal/sim,internal/exec,internal/microfi,internal/faultmodel,internal/adaptive,internal/campaign,internal/flow,internal/service,internal/harden,internal/advisor,internal/fleet,internal/ace,internal/cliutil,internal/uop,client"

func main() {
	pkgsFlag := flag.String("pkgs", defaultPkgs,
		"comma-separated directories (relative to each root) to enforce the rules in")
	flag.Parse()

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	pkgs := strings.Split(*pkgsFlag, ",")

	var files []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			if inPkgs(root, path, pkgs) {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "relint: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var findings []finding
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, checkFile(fset, f)...)
	}
	for _, fd := range findings {
		fmt.Printf("%s: %s: %s\n", fd.pos, fd.rule, fd.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// inPkgs reports whether path (a file under root) lies inside one of the
// enforced package directories. Subdirectories of an enforced directory are
// enforced too.
func inPkgs(root, path string, pkgs []string) bool {
	rel, err := filepath.Rel(root, filepath.Dir(path))
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, p := range pkgs {
		p = strings.Trim(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if rel == p || strings.HasSuffix(rel, "/"+p) || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

// randAllowed are math/rand functions that construct seeded sources rather
// than draw from the global one.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallclockBanned are time-package functions that read the wall clock.
var wallclockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkFile runs all rules over one parsed file.
func checkFile(fset *token.FileSet, f *ast.File) []finding {
	var out []finding

	// Lines carrying (or directly preceding) a //relint:allow comment.
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "relint:allow") {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}
	emit := func(pos token.Pos, rule, format string, args ...any) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, finding{pos: p, rule: rule, msg: fmt.Sprintf(format, args...)})
	}

	// Local names of the time and math/rand imports (usually "time"/"rand",
	// but aliases count too).
	timeName, randName := "", ""
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			timeName = orDefault(name, "time")
		case "math/rand", "math/rand/v2":
			randName = orDefault(name, "rand")
		}
	}

	mapIdents := collectMapIdents(f)

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Obj != nil { // id.Obj != nil means a local shadows the package
				return true
			}
			if timeName != "" && id.Name == timeName && wallclockBanned[sel.Sel.Name] {
				emit(n.Pos(), "wallclock",
					"%s.%s breaks replayability; thread an explicit timestamp in", timeName, sel.Sel.Name)
			}
			if randName != "" && id.Name == randName && !randAllowed[sel.Sel.Name] {
				emit(n.Pos(), "global-rand",
					"%s.%s draws from the shared global source; use a *rand.Rand from rand.New(rand.NewSource(seed))", randName, sel.Sel.Name)
			}
		case *ast.RangeStmt:
			if !isMapExpr(n.X, mapIdents) {
				return true
			}
			if sink := orderSensitiveSink(n.Body); sink != "" {
				emit(n.Pos(), "map-order",
					"map iteration order is randomized but the loop body feeds %s; iterate sorted keys instead", sink)
			}
		}
		return true
	})
	return out
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// collectMapIdents gathers names syntactically known to hold maps: explicit
// map-typed declarations, parameters and results, and assignments from
// make(map...) or map composite literals. Purely lexical — a name declared a
// map anywhere in the file counts everywhere — which errs toward reporting;
// //relint:allow covers deliberate order-insensitive iteration.
func collectMapIdents(f *ast.File) map[string]bool {
	idents := map[string]bool{}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			if _, ok := fld.Type.(*ast.MapType); ok {
				for _, nm := range fld.Names {
					idents[nm.Name] = true
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, nm := range n.Names {
					idents[nm.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapRValue(v) {
					idents[n.Names[i].Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isMapRValue(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					idents[id.Name] = true
				}
			}
		case *ast.FuncType:
			addFieldList(n.Params)
			addFieldList(n.Results)
		case *ast.StructType:
			addFieldList(n.Fields)
		}
		return true
	})
	return idents
}

// isMapRValue reports whether the expression syntactically produces a map.
func isMapRValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// isMapExpr reports whether a range operand is syntactically a map: a literal
// map expression, or a bare identifier / trailing selector whose name was
// declared with map type somewhere in the file.
func isMapExpr(e ast.Expr, mapIdents map[string]bool) bool {
	if isMapRValue(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return mapIdents[e.Name]
	case *ast.SelectorExpr:
		return mapIdents[e.Sel.Name]
	}
	return false
}

// orderSensitiveSink scans a map-range body for constructs whose result
// depends on iteration order, returning a description of the first one.
func orderSensitiveSink(body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				sink = "append"
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok && id.Obj == nil && id.Name == "fmt" {
				sink = "fmt." + name
				return false
			}
			if strings.HasPrefix(name, "Write") { // Write, WriteString, WriteByte, ...
				sink = name
			}
		}
		return sink == ""
	})
	return sink
}
