package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
)

// TestEmitJSONRecord decodes one NDJSON line produced by the -json path and
// checks the campaign sizing fields (n, margin99) ride alongside the payload.
func TestEmitJSONRecord(t *testing.T) {
	var tl campaign.Tally
	tl.Add(faults.Result{Outcome: faults.Masked})
	tl.Add(faults.Result{Outcome: faults.SDC})

	var buf bytes.Buffer
	if err := emitJSON(&buf, "fig1", 300, tl); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	if err := emitJSON(&buf, "fig2", 300, tl); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no NDJSON line emitted")
	}
	var rec struct {
		Figure   string         `json:"figure"`
		N        int            `json:"n"`
		Margin99 float64        `json:"margin99"`
		Data     campaign.Tally `json:"data"`
	}
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("decoding NDJSON record: %v\nline: %s", err, sc.Bytes())
	}
	if rec.Figure != "fig1" {
		t.Errorf("figure = %q, want fig1", rec.Figure)
	}
	if rec.N != 300 {
		t.Errorf("n = %d, want 300", rec.N)
	}
	want := campaign.WorstCaseMargin99(300)
	if math.Abs(rec.Margin99-want) > 1e-12 {
		t.Errorf("margin99 = %v, want %v", rec.Margin99, want)
	}
	if rec.Data.N != 2 || rec.Data.Counts[faults.SDC] != 1 {
		t.Errorf("data payload did not round-trip: %+v", rec.Data)
	}

	// NDJSON means exactly one record per line.
	if !sc.Scan() {
		t.Fatal("second NDJSON line missing")
	}
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("decoding second record: %v", err)
	}
	if rec.Figure != "fig2" {
		t.Errorf("second figure = %q, want fig2", rec.Figure)
	}
	if sc.Scan() {
		t.Errorf("unexpected extra line: %s", sc.Bytes())
	}
}
