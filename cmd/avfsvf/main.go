// Command avfsvf regenerates the paper's tables and figures: the full
// cross-layer study over all 11 benchmarks / 23 kernels.
//
// Usage:
//
//	avfsvf -n 300                 # everything (campaign size 300/point)
//	avfsvf -fig 1 -n 3000         # one figure at the paper's sample size
//	avfsvf -table 1
//	avfsvf -fig 12                # no campaigns needed
//	avfsvf -speed                 # the §I footnote-1 speed comparison
//	avfsvf -faultmodels -n 100 -faultmodels-apps VA,BFS
//	                              # cross-model outcome table: transient vs
//	                              # stuck-at vs MBU vs control-state faults
//	avfsvf -fig 1 -json           # machine-readable NDJSON instead of tables
//	avfsvf -daemon http://host:8080 -fig 2
//	                              # campaigns run on a gpureld daemon
//
// Campaign cost scales linearly in -n; the defaults keep a laptop run in
// minutes. Figures 7-11 share the same hardened campaigns and are emitted
// together whenever any of them is requested.
//
// With -json, each requested figure prints one JSON line
// {"figure":"...","data":...} whose data payload reuses the library's
// result structs (gpurel.AppPoint, gpurel.KernelPoint, campaign.Tally, ...)
// — the same types the gpureld service API serves, so daemon and CLI output
// stay directly comparable.
//
// With -daemon, every campaign point is submitted to a running gpureld
// instead of being computed in-process. Seeds are derived identically on
// both paths (gpurel.PointSeed), so the numbers match bit for bit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/cliutil"
	"gpurel/internal/gpu"
	"gpurel/internal/microfi"
)

// emitJSON writes one NDJSON figure record with the campaign sizing fields
// (n, margin99) alongside the data payload.
func emitJSON(w io.Writer, name string, n int, data any) error {
	return json.NewEncoder(w).Encode(gpurel.NewRecord(name, n, data))
}

func main() {
	var (
		n       = flag.Int("n", 300, "injections per campaign point (paper: 3000)")
		seed    = flag.Int64("seed", 1, "base seed")
		fig     = flag.Int("fig", 0, "regenerate one figure (1-12); 0 = all")
		table   = flag.Int("table", 0, "regenerate one table (1); 0 with -fig 0 = all")
		speed   = flag.Bool("speed", false, "measure the AVF vs SVF assessment speed gap")
		jsonOut = flag.Bool("json", false, "emit machine-readable NDJSON figure results")
		daemon  = flag.String("daemon", "", "submit campaigns to a running gpureld at this base URL instead of computing locally")
		adapt   = flag.Bool("adaptive", false, "adaptive sampling: stop each campaign point early once its Wilson 99% CI half-width reaches the target margin")
		margin  = flag.Float64("margin", 0, "target 99% CI half-width for -adaptive (0 = the worst-case margin of -n); implies -adaptive")
		prune   = flag.Bool("prune", false, "liveness-guided pruning of RF injections (bit-identical to brute force)")
		ckpt    = flag.Int64("snap-stride", 0, "golden-run snapshot stride in cycles for fork-and-join injection (0 = off, -1 = auto)")
		ckMB    = flag.Int64("snap-mb", 0, "snapshot memory budget in MiB per golden run (0 = default 256, negative = unlimited)")
		conv    = flag.Bool("converge", false, "join faulty runs back to golden at the first matching checkpoint; implies -snap-stride -1 if unset")
		fmodels = flag.Bool("faultmodels", false, "emit the cross-model outcome table: transient vs stuck-at vs MBU per storage structure, flip vs forced latch per control-state site (heavy: ~29 campaign sets; pair with a small -n)")
		fmApps  = flag.String("faultmodels-apps", "", "comma-separated app subset for -faultmodels (empty = all 11 benchmarks)")
	)
	prof := cliutil.Profiling(flag.CommandLine)
	cliutil.Alias(flag.CommandLine, "snap-stride", "checkpoint")
	cliutil.Alias(flag.CommandLine, "snap-mb", "checkpoint-mb")
	cliutil.HideDeprecated(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfsvf:", err)
		os.Exit(1)
	}
	defer stopProf()

	s := gpurel.NewStudy(*n, *seed)
	if *daemon != "" {
		s.RunPoint = client.New(*daemon).RunPoint(context.Background())
	}
	if *adapt || *margin > 0 || *prune {
		target := *margin
		if *adapt && target == 0 {
			target = campaign.WorstCaseMargin99(*n)
		}
		s.Sampling = &gpurel.SamplingPolicy{Margin: target, Prune: *prune}
		s.Counters = &adaptive.Counters{}
	}
	if *conv && *ckpt == 0 {
		*ckpt = microfi.AutoStride
	}
	if *ckpt != 0 {
		s.Checkpoint = microfi.CheckpointSpec{Stride: *ckpt, BudgetBytes: *ckMB << 20, Converge: *conv}
	}
	all := *fig == 0 && *table == 0 && !*speed && !*fmodels

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "avfsvf:", err)
		os.Exit(1)
	}
	// emit prints one figure either as the paper-style table or as one
	// NDJSON line carrying the library result structs.
	emit := func(name string, data any, text string, err error) {
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			if err := emitJSON(os.Stdout, name, *n, data); err != nil {
				fail(err)
			}
			return
		}
		fmt.Println(text)
	}

	if all || *fig == 1 {
		pts, txt, err := s.Figure1()
		emit("fig1", pts, txt, err)
	}
	if all || *fig == 2 {
		pts, txt, err := s.Figure2()
		emit("fig2", pts, txt, err)
	}
	if all || *table == 1 {
		rows, txt, err := s.TableI()
		emit("table1", rows, txt, err)
	}
	if all || *fig == 3 {
		pts, txt, err := s.Figure3()
		emit("fig3", pts, txt, err)
	}
	if all || *fig == 4 {
		pts, txt, err := s.Figure4()
		emit("fig4", pts, txt, err)
	}
	if all || *fig == 5 {
		pts, txt, err := s.Figure5()
		emit("fig5", pts, txt, err)
	}
	if *fig == 6 {
		emit("fig6", nil, "Figure 6 is the TMR workflow diagram; see internal/harden (no data to regenerate).", nil)
	}
	if all || (*fig >= 7 && *fig <= 11) {
		pts, err := s.Hardened()
		if err != nil {
			fail(err)
		}
		if all || *fig == 7 {
			emit("fig7", pts, gpurel.Figure7(pts), nil)
		}
		if all || *fig == 8 {
			emit("fig8", pts, gpurel.Figure8(pts), nil)
		}
		if all || *fig == 9 {
			emit("fig9", pts, gpurel.Figure9(pts), nil)
		}
		if all || *fig == 10 {
			emit("fig10", pts, gpurel.Figure10(pts), nil)
		}
		if all || *fig == 11 {
			emit("fig11", pts, gpurel.Figure11(pts), nil)
		}
	}
	if all || *fig == 12 {
		a, txt := gpurel.Figure12()
		emit("fig12", a, txt, nil)
	}
	if *fmodels {
		var apps []string
		if *fmApps != "" {
			apps = strings.Split(*fmApps, ",")
		}
		rows, txt, err := s.FaultModelFigure(apps)
		emit("faultmodels", rows, txt, err)
	}
	if all || *speed {
		micro, soft, err := s.SpeedComparison("SRADv1", 5)
		if err != nil {
			fail(err)
		}
		emit("speed",
			map[string]any{"micro_ns_per_run": micro.Nanoseconds(), "soft_ns_per_run": soft.Nanoseconds()},
			fmt.Sprintf("Assessment speed (SRADv1): cross-layer %v/run, software-level %v/run → %.0f× gap\n"+
				"(the paper's footnote 1: 1258 vs 10 machine-days at full scale)",
				micro, soft, float64(micro)/float64(soft)),
			nil)
	}
	if all {
		ab, txt, err := s.MultiBitAblation("VA", "K1", gpu.RF, []int{1, 2, 4})
		emit("multibit", ab, txt, err)
	}
}
