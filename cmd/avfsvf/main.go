// Command avfsvf regenerates the paper's tables and figures: the full
// cross-layer study over all 11 benchmarks / 23 kernels.
//
// Usage:
//
//	avfsvf -n 300                 # everything (campaign size 300/point)
//	avfsvf -fig 1 -n 3000         # one figure at the paper's sample size
//	avfsvf -table 1
//	avfsvf -fig 12                # no campaigns needed
//	avfsvf -speed                 # the §I footnote-1 speed comparison
//
// Campaign cost scales linearly in -n; the defaults keep a laptop run in
// minutes. Figures 7-11 share the same hardened campaigns and are emitted
// together whenever any of them is requested.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpurel"
	"gpurel/internal/gpu"
)

func main() {
	var (
		n     = flag.Int("n", 300, "injections per campaign point (paper: 3000)")
		seed  = flag.Int64("seed", 1, "base seed")
		fig   = flag.Int("fig", 0, "regenerate one figure (1-12); 0 = all")
		table = flag.Int("table", 0, "regenerate one table (1); 0 with -fig 0 = all")
		speed = flag.Bool("speed", false, "measure the AVF vs SVF assessment speed gap")
	)
	flag.Parse()

	s := gpurel.NewStudy(*n, *seed)
	all := *fig == 0 && *table == 0 && !*speed

	emit := func(text string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "avfsvf:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	if all || *fig == 1 {
		_, txt, err := s.Figure1()
		emit(txt, err)
	}
	if all || *fig == 2 {
		_, txt, err := s.Figure2()
		emit(txt, err)
	}
	if all || *table == 1 {
		_, txt, err := s.TableI()
		emit(txt, err)
	}
	if all || *fig == 3 {
		_, txt, err := s.Figure3()
		emit(txt, err)
	}
	if all || *fig == 4 {
		_, txt, err := s.Figure4()
		emit(txt, err)
	}
	if all || *fig == 5 {
		_, txt, err := s.Figure5()
		emit(txt, err)
	}
	if *fig == 6 {
		fmt.Println("Figure 6 is the TMR workflow diagram; see internal/harden (no data to regenerate).")
	}
	if all || (*fig >= 7 && *fig <= 11) {
		pts, err := s.Hardened()
		if err != nil {
			fmt.Fprintln(os.Stderr, "avfsvf:", err)
			os.Exit(1)
		}
		if all || *fig == 7 {
			fmt.Println(gpurel.Figure7(pts))
		}
		if all || *fig == 8 {
			fmt.Println(gpurel.Figure8(pts))
		}
		if all || *fig == 9 {
			fmt.Println(gpurel.Figure9(pts))
		}
		if all || *fig == 10 {
			fmt.Println(gpurel.Figure10(pts))
		}
		if all || *fig == 11 {
			fmt.Println(gpurel.Figure11(pts))
		}
	}
	if all || *fig == 12 {
		_, txt := gpurel.Figure12()
		fmt.Println(txt)
	}
	if all || *speed {
		micro, soft, err := s.SpeedComparison("SRADv1", 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avfsvf:", err)
			os.Exit(1)
		}
		fmt.Printf("Assessment speed (SRADv1): cross-layer %v/run, software-level %v/run → %.0f× gap\n",
			micro, soft, float64(micro)/float64(soft))
		fmt.Println("(the paper's footnote 1: 1258 vs 10 machine-days at full scale)")
	}
	if all {
		ab, txt, err := s.MultiBitAblation("VA", "K1", gpu.RF, []int{1, 2, 4})
		_ = ab
		emit(txt, err)
	}
}
