// Command gpuharden is the selective-hardening advisor CLI: given a
// benchmark and an SDC budget, it measures per-kernel vulnerability and
// protection cost on the study stack, greedily searches for the cheapest
// protection set predicted to meet the budget, and verifies the plan with a
// real injection campaign on the selectively hardened job — refusing plans
// whose measured SDC misses the budget.
//
// Usage:
//
//	gpuharden -app SRADv1 -sdc-budget 0.005
//	gpuharden -app SRADv1 -sdc-budget 0.005 -n 3000 -seed 1 -json
//	gpuharden -app NW -sdc-budget 0.01 -journal nw.advise.json
//	                        # journaled: every completed unit of work is
//	                        # persisted; an interrupted run re-invoked with
//	                        # the same flags resumes and produces the
//	                        # bit-identical plan
//
// Exit status: 0 when a plan verifies within budget, 1 on refusal
// (unattainable budget or failed verification) or error, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"gpurel"
	"gpurel/internal/advisor"
	"gpurel/internal/kernels"
)

func main() {
	var (
		appName = flag.String("app", "", "benchmark application (required; see -list)")
		budget  = flag.Float64("sdc-budget", 0.005, "SDC AVF ceiling the plan must verifiably meet")
		n       = flag.Int("n", 3000, "injections per campaign point (paper: 3000 → ±2.35% at 99% confidence)")
		seed    = flag.Int64("seed", 1, "base study seed (campaign points derive their own seeds)")
		jsonOut = flag.Bool("json", false, "emit the final advisor state as JSON on stdout")
		journal = flag.String("journal", "", "journal path: state persists after every unit of work; re-running resumes from it")
		list    = flag.Bool("list", false, "list benchmarks and kernels")
	)
	flag.Parse()

	if *list {
		for _, a := range kernels.All() {
			fmt.Printf("%-8s %d kernel(s)\n", a.Name, len(a.Kernels))
		}
		return
	}
	if *appName == "" {
		fmt.Fprintln(os.Stderr, "gpuharden: -app is required (try -list)")
		os.Exit(2)
	}
	if *budget < 0 || *budget >= 1 {
		fmt.Fprintf(os.Stderr, "gpuharden: -sdc-budget must be an SDC AVF in [0, 1), got %g\n", *budget)
		os.Exit(2)
	}

	resume, err := loadJournal(*journal)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuharden: %v\n", err)
		os.Exit(1)
	}
	if resume != nil {
		fmt.Fprintf(os.Stderr, "gpuharden: resuming from %s (%d kernels measured, %d priced)\n",
			*journal, len(resume.Measures), len(resume.Costs))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	study := gpurel.NewStudy(*n, *seed)
	lastPhase := ""
	r := &advisor.Runner{
		Backend: &gpurel.StudyBackend{Study: study},
		App:     *appName,
		Budget:  *budget,
		Resume:  resume,
		OnState: func(st *advisor.State) {
			if *journal != "" {
				if err := saveJournal(*journal, st); err != nil {
					fmt.Fprintf(os.Stderr, "gpuharden: journal: %v\n", err)
				}
			}
			if st.Phase != lastPhase {
				fmt.Fprintf(os.Stderr, "gpuharden: phase %s\n", st.Phase)
				lastPhase = st.Phase
			}
			if st.Phase == advisor.PhaseMeasure {
				fmt.Fprintf(os.Stderr, "gpuharden:   %d measured, %d priced\n", len(st.Measures), len(st.Costs))
			}
		},
	}
	st, err := r.Run(ctx)
	if *journal != "" && st != nil {
		if jerr := saveJournal(*journal, st); jerr != nil {
			fmt.Fprintf(os.Stderr, "gpuharden: journal: %v\n", jerr)
		}
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gpuharden: interrupted; re-run with the same flags to resume")
		os.Exit(1)
	}

	if *jsonOut {
		out, merr := json.MarshalIndent(st, "", "  ")
		if merr != nil {
			fmt.Fprintf(os.Stderr, "gpuharden: %v\n", merr)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else if st != nil {
		printReport(st)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuharden: %v\n", err)
		os.Exit(1)
	}
}

// printReport renders the plan and verification as a human-readable table.
func printReport(st *advisor.State) {
	fmt.Printf("app %s, SDC budget %.5f\n", st.App, st.Budget)
	kernels := make([]string, 0, len(st.Measures))
	for k := range st.Measures { //relint:allow map-order: sorted immediately below
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	fmt.Printf("%-6s %10s %10s %10s %10s %8s\n", "kernel", "weight", "SDC", "SDC(TMR)", "cost", "hint")
	for _, k := range kernels {
		m := st.Measures[k]
		fmt.Printf("%-6s %10.0f %10.5f %10.5f %10.4f %8.2f\n",
			k, m.Weight, m.SDC, m.SDCHardened, st.Costs[k], m.Hint)
	}
	if st.Plan == nil {
		fmt.Println("no plan (search did not complete)")
		return
	}
	p := st.Plan
	fmt.Printf("\nplan: protect %v\n", p.Protect)
	for _, s := range p.Steps {
		fmt.Printf("  +%-5s predicted SDC %.5f, overhead %.4f (gain %.5f / cost %.4f)\n",
			s.Add, s.PredictedSDC, s.PredictedOverhead, s.Gain, s.Cost)
	}
	fmt.Printf("predicted: SDC %.5f, overhead %.4f (full TMR %.4f)\n",
		p.PredictedSDC, p.PredictedOverhead, p.FullOverhead)
	if v := st.Verification; v != nil {
		verdict := "PASS"
		if !v.Pass {
			verdict = "REFUSED"
		}
		fmt.Printf("verified:  SDC %.5f, overhead %.4f (full TMR %.4f), %d runs — %s\n",
			v.SDC, v.Overhead, v.FullOverhead, v.TotalRuns, verdict)
	}
}

// loadJournal reads a journaled advisor state; a missing file means a fresh
// run.
func loadJournal(path string) (*advisor.State, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st advisor.State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if st.Version != advisor.StateVersion {
		return nil, fmt.Errorf("journal %s: version %d, want %d", path, st.Version, advisor.StateVersion)
	}
	return &st, nil
}

// saveJournal persists the state atomically (temp + rename).
func saveJournal(path string, st *advisor.State) error {
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
