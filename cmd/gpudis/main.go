// Command gpudis disassembles the benchmark kernels into the repository's
// SASS-like assembly and optionally annotates register reuse — the static
// view behind Figure 12's analyzer.
//
// Usage:
//
//	gpudis -app SRADv1                 # list kernels with sizes
//	gpudis -app SRADv1 -kernel K4      # disassemble one kernel
//	gpudis -app VA -kernel K1 -reuse   # annotate destination-register fanout
//	gpudis -app HotSpot -kernel K1 -mix  # static instruction mix
//	gpudis -app LUD -kernel K2 -cfg    # basic-block CFG with dominators
//	gpudis -app LUD -kernel K2 -dot    # CFG in Graphviz dot syntax
//	gpudis -app BFS -lint              # lint every kernel of the app
//	gpudis -app LUD -sites             # injectable control-state sites per kernel
//	gpudis -app VA -avf-bounds         # static AVF bounds per kernel and structure
//
// -lint exits 2 when any kernel has error-severity findings, 1 when only
// warnings, 0 when clean. The lint pass includes the shared-memory sync
// checker: smem-sync (cross-thread shared-memory dependence with no barrier
// between store and load) is an error; bar-redundant (a barrier no shared
// memory access needs) is a warning.
//
// -avf-bounds traces the job fault-free with the flow interval engine and
// prints, per kernel, the static AVF bracket [lower, upper] for each
// hardware structure: RF and SMEM come from the dead/live intervals, while
// caches and control state are outside the engine's reach and report the
// trivial unsupported [0, 1].
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpurel/internal/device"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
	"gpurel/internal/microfi"
	"gpurel/internal/reuse"
	"gpurel/internal/sim"
)

func main() {
	var (
		appName = flag.String("app", "", "benchmark application")
		kernel  = flag.String("kernel", "", "kernel name (K1..Kn)")
		fanout  = flag.Bool("reuse", false, "annotate destination-register reuse fanout")
		mix     = flag.Bool("mix", false, "print the static instruction mix instead of the listing")
		lint    = flag.Bool("lint", false, "run the static kernel linter (all kernels when -kernel is empty)")
		cfg     = flag.Bool("cfg", false, "print the basic-block CFG with dominators")
		dot     = flag.Bool("dot", false, "print the CFG in Graphviz dot syntax")
		sites   = flag.Bool("sites", false, "list injectable control-state sites (SCHED/STACK/BARRIER) per kernel launch")
		bounds  = flag.Bool("avf-bounds", false, "print static AVF lower/upper bounds per kernel and structure from the interval engine")
		list    = flag.Bool("list", false, "list benchmarks")
	)
	flag.Parse()

	if *list || *appName == "" {
		for _, a := range kernels.All() {
			fmt.Printf("%-12s %v\n", a.Name, a.Kernels)
		}
		return
	}
	app, err := kernels.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	job := app.Build()

	progs := map[string]*isa.Program{}
	var order []string
	for _, st := range job.Steps {
		if st.Launch == nil {
			continue
		}
		name := st.Launch.Name()
		if _, ok := progs[name]; !ok {
			progs[name] = st.Launch.Kernel
			order = append(order, name)
		}
	}

	if *lint {
		exit := 0
		names := order
		if *kernel != "" {
			if _, ok := progs[*kernel]; !ok {
				fatal(fmt.Errorf("%s has no kernel %q", app.Name, *kernel))
			}
			names = []string{*kernel}
		}
		for _, name := range names {
			p := progs[name]
			diags := flow.Lint(p)
			if len(diags) == 0 {
				fmt.Printf("%s %s (%s): clean\n", app.Name, name, p.Name)
				continue
			}
			fmt.Printf("%s %s (%s): %d finding(s)\n", app.Name, name, p.Name, len(diags))
			for _, d := range diags {
				fmt.Printf("  %s\n", d)
				if d.Sev == flow.Error {
					exit = 2
				} else if exit == 0 {
					exit = 1
				}
			}
		}
		os.Exit(exit)
	}

	if *sites {
		printSites(app.Name, job, progs, *kernel)
		return
	}

	if *bounds {
		if *kernel != "" {
			if _, ok := progs[*kernel]; !ok {
				fatal(fmt.Errorf("%s has no kernel %q", app.Name, *kernel))
			}
		}
		printBounds(app.Name, job, order, *kernel)
		return
	}

	if *kernel == "" {
		fmt.Printf("%s: %d kernels\n", app.Name, len(order))
		for _, name := range order {
			p := progs[name]
			fmt.Printf("  %-4s %-24s %4d instructions, %3d registers/thread\n",
				name, p.Name, len(p.Code), p.NumRegs)
		}
		describeSchedule(job)
		return
	}
	p, ok := progs[*kernel]
	if !ok {
		fatal(fmt.Errorf("%s has no kernel %q", app.Name, *kernel))
	}
	fmt.Printf("// %s %s (%s): %d instructions, %d registers per thread\n",
		app.Name, *kernel, p.Name, len(p.Code), p.NumRegs)
	if *mix {
		printMix(p)
		return
	}
	if *cfg || *dot {
		g := flow.Build(p)
		if *dot {
			fmt.Print(g.Dot())
		} else {
			fmt.Print(g.String())
		}
		return
	}
	if !*fanout {
		fmt.Print(p.Disassemble())
		return
	}
	fan := reuse.Fanout(p)
	for pc, ins := range p.Code {
		note := ""
		if n, ok := fan[pc]; ok {
			note = fmt.Sprintf("  // %d later reads of R%d", n, ins.Dst)
		}
		fmt.Printf("#%-4d %-50s%s\n", pc, ins.String(), note)
	}
}

// printMix prints the static opcode histogram of a kernel — the
// "instruction types and counts" dimension the paper's §II-D controls for
// by benchmark diversity.
func printMix(p *isa.Program) {
	counts := map[isa.Op]int{}
	for _, ins := range p.Code {
		counts[ins.Op]++
	}
	type row struct {
		op isa.Op
		n  int
	}
	var rows []row
	for op, n := range counts {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	for _, r := range rows {
		fmt.Printf("  %-8s %4d  (%4.1f%%)\n", r.op, r.n, 100*float64(r.n)/float64(len(p.Code)))
	}
}

// printSites lists the control-state fault sites each kernel launch exposes
// to the "control" fault model (internal/faultmodel): warp-scheduler entry
// bits and barrier-arrival latches are fixed by the launch geometry, while
// SIMT-stack sites exist only while warps are diverged, so the static view
// reports the per-warp ceiling alongside the kernel's branch/barrier usage.
func printSites(appName string, job *device.Job, progs map[string]*isa.Program, only string) {
	warpsPerBlock := func(l *device.Launch) int {
		return (l.BlockX*l.BlockY + 31) / 32
	}
	found := false
	for _, st := range job.Steps {
		if st.Launch == nil {
			continue
		}
		l := st.Launch
		name := l.Name()
		if only != "" && name != only {
			continue
		}
		found = true
		p := progs[name]
		warps := l.GridX * l.GridY * warpsPerBlock(l)
		branches, bars := 0, 0
		for _, ins := range p.Code {
			switch ins.Op {
			case isa.OpBRA:
				branches++
			case isa.OpBAR:
				bars++
			}
		}
		fmt.Printf("%s %s (%s): %d warps (%d blocks × %d warps/block)\n",
			appName, name, p.Name, warps, l.GridX*l.GridY, warpsPerBlock(l))
		fmt.Printf("  SCHED    %6d bits  (%d warp-scheduler entries × %d bits: ready timestamp + done latch)\n",
			warps*sim.SchedEntryBits, warps, sim.SchedEntryBits)
		fmt.Printf("  STACK    dynamic       (%d words × 32 bits per live divergence entry; %d static branches%s)\n",
			sim.StackEntryWords, branches, map[bool]string{true: "", false: " — never diverges"}[branches > 0])
		fmt.Printf("  BARRIER  %6d bits  (1 arrival latch per warp; %d static BAR instructions%s)\n",
			warps, bars, map[bool]string{true: "", false: " — barrier faults cannot deadlock this kernel"}[bars > 0])
	}
	if only != "" && !found {
		fatal(fmt.Errorf("%s has no kernel %q", appName, only))
	}
}

// printBounds traces the job fault-free with the flow interval recorder and
// prints each kernel's static AVF bracket per hardware structure. The upper
// bound is the expected live fraction of allocated state over the kernel's
// injection windows; the lower bound is 0 (the engine proves deadness, not
// ACE-ness). Unsupported structures report the trivial [0, 1] bracket.
func printBounds(appName string, job *device.Job, order []string, only string) {
	si, err := microfi.TraceStatic(job, gpu.Volta())
	if err != nil {
		fatal(err)
	}
	names := order
	if only != "" {
		names = []string{only}
	}
	fmt.Printf("%s: static AVF bounds (%d traced cycles)\n", appName, si.Cycles)
	for _, name := range names {
		fmt.Printf("  %s:\n", name)
		for _, st := range gpu.Structures {
			b := si.Bounds(st, name)
			note := ""
			if !b.Supported {
				note = "  (unsupported: trivial bracket)"
			}
			fmt.Printf("    %-5s [%6.4f, %6.4f]%s\n", st, b.Lower, b.Upper, note)
		}
	}
}

func describeSchedule(job *device.Job) {
	fmt.Println("schedule:")
	for i, st := range job.Steps {
		switch {
		case st.Launch != nil:
			l := st.Launch
			fmt.Printf("  %2d: launch %-4s grid %d×%d, block %d×%d, smem %dB\n",
				i, l.Name(), l.GridX, l.GridY, l.BlockX, l.BlockY, l.SmemBytes)
		case st.Host != nil:
			fmt.Printf("  %2d: host step\n", i)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpudis:", err)
	os.Exit(1)
}
