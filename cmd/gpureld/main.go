// Command gpureld is the campaign daemon: a long-running fault-injection
// job server over the study's simulators. It accepts AVF/SVF campaign specs
// on an HTTP API, executes them on a bounded sharded worker pool with
// shared golden-run memoisation, journals progress to a checkpoint file,
// and resumes incomplete jobs bit-identically after a restart.
//
// Usage:
//
//	gpureld -addr :8080 -checkpoint gpureld.ckpt.json
//
// API (see docs/service.md):
//
//	POST   /v1/jobs             {"layer":"micro","app":"VA","kernel":"K1","structure":"RF","runs":3000,"seed":1}
//	GET    /v1/jobs/{id}        status + partial tally + live ErrMargin99
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             Prometheus text format
//
// On SIGINT/SIGTERM the daemon drains: in-flight run-range chunks finish,
// incomplete jobs are parked and checkpointed, and the HTTP listener shuts
// down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpurel"
	"gpurel/internal/adaptive"
	"gpurel/internal/microfi"
	"gpurel/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		ckpt     = flag.String("checkpoint", "gpureld.ckpt.json", "checkpoint journal path ('' disables persistence)")
		interval = flag.Duration("checkpoint-interval", 2*time.Second, "periodic checkpoint flush cadence")
		shards   = flag.Int("shards", 1, "concurrent job lanes")
		workers  = flag.Int("workers", 0, "campaign workers per lane (0 = GOMAXPROCS)")
		chunk    = flag.Int("chunk", 100, "runs per checkpointable chunk")
		seed     = flag.Int64("seed", 1, "base seed of the shared study (golden-run cache)")
		// Machine-snapshot knobs (fork-and-join injection); named snap-* to
		// stay clear of -checkpoint, the job-journal path above.
		snapStride = flag.Int64("snap-stride", 0, "default golden-run snapshot stride in cycles for jobs that don't set snap_stride (0 = off, -1 = auto)")
		snapMB     = flag.Int64("snap-mb", 0, "snapshot memory budget in MiB per golden run (0 = default 256, negative = unlimited)")
		converge   = flag.Bool("converge", false, "default convergence joining for jobs that don't set converge; implies -snap-stride -1 if unset")
	)
	flag.Parse()

	// The daemon's study exists for its golden-run memoisation; campaign
	// sizing and seeds come from each job spec. The adaptive counters are
	// shared between the study (which increments them as experiments run)
	// and the scheduler's /metrics exporter.
	counters := &adaptive.Counters{}
	study := gpurel.NewStudy(0, *seed)
	study.Counters = counters
	if *converge && *snapStride == 0 {
		*snapStride = microfi.AutoStride
	}
	if *snapStride != 0 {
		study.Checkpoint = microfi.CheckpointSpec{Stride: *snapStride, BudgetBytes: *snapMB << 20, Converge: *converge}
	}
	sched, err := service.NewScheduler(service.Config{
		Source:             service.NewStudySource(study),
		Shards:             *shards,
		WorkersPerShard:    *workers,
		ChunkSize:          *chunk,
		CheckpointPath:     *ckpt,
		CheckpointInterval: *interval,
		Counters:           counters,
		CheckpointStats:    study.CheckpointCounts,
	})
	if err != nil {
		log.Fatalf("gpureld: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gpureld: listening on %s (checkpoint %q, %d lane(s) × %d worker(s), chunk %d)",
			*addr, *ckpt, *shards, *workers, *chunk)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			sched.Close()
			log.Fatalf("gpureld: %v", err)
		}
	case <-ctx.Done():
		log.Printf("gpureld: signal received, draining (in-flight chunks finish, then checkpoint flush)")
	}

	// Drain the scheduler first (finishes in-flight chunks, parks the
	// rest, flushes the checkpoint, and unblocks open event streams), then
	// shut the listener down gracefully.
	closeErr := sched.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("gpureld: http shutdown: %v", err)
	}
	if closeErr != nil {
		log.Printf("gpureld: checkpoint flush: %v", closeErr)
		os.Exit(1)
	}
	fmt.Println("gpureld: drained and checkpointed, bye")
}
