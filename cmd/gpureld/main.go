// Command gpureld is the campaign daemon: a long-running fault-injection
// job server over the study's simulators. It accepts AVF/SVF campaign specs
// on an HTTP API, executes them on a bounded sharded worker pool with
// shared golden-run memoisation, journals progress to a checkpoint file,
// and resumes incomplete jobs bit-identically after a restart.
//
// The same binary is both halves of a worker fleet. As a coordinator it
// additionally serves run-range leases (POST /v1/leases) that remote
// workers pull and execute; with no workers joined it simply executes
// everything in-process. As a worker it joins a coordinator and executes
// leases through the identical deterministic campaign path:
//
//	gpureld -addr :8080 -checkpoint gpureld.ckpt.json   # coordinator (and local executor)
//	gpureld -addr :8080 -no-local                       # coordinator only: fleet does the work
//	gpureld -worker -join http://coord:8080             # worker: pull leases until SIGTERM
//
// API (see docs/service.md):
//
//	POST   /v1/jobs             {"layer":"micro","app":"VA","kernel":"K1","structure":"RF","runs":3000,"seed":1}
//	                            micro jobs take a nested "fault" group selecting
//	                            the fault model (transient/stuck/mbu/control);
//	                            absent = transient single-bit
//	GET    /v1/jobs/{id}        status + partial tally + live ErrMargin99
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/advise           {"advise":{"app":"SRADv1","budget":0.005},"runs":3000,"seed":1}
//	                            selective-hardening advisor: measure, search,
//	                            verify; status carries the plan + verification
//	GET    /v1/advise/{id}/events NDJSON advisor progress stream
//	POST   /v1/leases           worker lease grant (coordinator); adaptively
//	                            sized from the worker's measured runs/sec
//	POST   /v1/workers          worker registration with capability report
//	GET    /v1/workers          registry listing with derived health states
//	DELETE /v1/workers/{name}   mark a worker draining (no further leases)
//	GET    /v1/fleet            control-plane summary: workers, tenants, leases
//	GET    /v1/fleet/events     NDJSON fleet-status stream
//	GET    /metrics             Prometheus text format (incl. per-worker fleet counters)
//
// Errors on every /v1 route share one envelope: {"error":{"code","message"}}.
//
// Campaign jobs may carry "tenant" and "priority": the scheduler hands out
// work (to local lanes and fleet leases alike) by deterministic weighted
// fair-share across tenants, so no tenant starves and single-tenant
// workloads schedule exactly as before.
//
// The coordinator journals its lease ledger and worker registry to
// -fleet-checkpoint with the same atomic write-rename discipline as the job
// checkpoint, so a killed coordinator resumes mid-campaign with
// bit-identical final tallies.
//
// On SIGINT/SIGTERM a coordinator drains: in-flight run-range chunks
// finish, incomplete jobs are parked and checkpointed, and the HTTP
// listener shuts down gracefully. A worker drains by returning the
// unexecuted remainder of its open lease to the coordinator, which requeues
// it immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/adaptive"
	"gpurel/internal/cliutil"
	"gpurel/internal/fleet"
	"gpurel/internal/microfi"
	"gpurel/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (coordinator mode)")
		ckpt     = flag.String("checkpoint", "gpureld.ckpt.json", "checkpoint journal path ('' disables persistence)")
		interval = flag.Duration("checkpoint-interval", 2*time.Second, "periodic checkpoint flush cadence")
		shards   = flag.Int("shards", 1, "concurrent job lanes")
		workers  = flag.Int("workers", 0, "campaign workers per lane (0 = GOMAXPROCS)")
		chunk    = flag.Int("chunk", 100, "runs per checkpointable chunk")
		seed     = flag.Int64("seed", 1, "base seed of the shared study (golden-run cache)")
		// Machine-snapshot knobs (fork-and-join injection); named snap-* to
		// stay clear of -checkpoint, the job-journal path above.
		snapStride = flag.Int64("snap-stride", 0, "default golden-run snapshot stride in cycles for jobs that don't set checkpoint.stride (0 = off, -1 = auto)")
		snapMB     = flag.Int64("snap-mb", 0, "snapshot memory budget in MiB per golden run (0 = default 256, negative = unlimited)")
		converge   = flag.Bool("converge", false, "default convergence joining for jobs that don't set checkpoint.converge; implies -snap-stride -1 if unset")
		// Fleet knobs.
		workerMode = flag.Bool("worker", false, "run as a fleet worker: pull run-range leases from -join instead of serving HTTP")
		join       = flag.String("join", "", "coordinator base URL for -worker, e.g. http://coord:8080")
		workerID   = flag.String("worker-id", "", "worker name in coordinator metrics (default random)")
		noLocal    = flag.Bool("no-local", false, "coordinator only: disable in-process execution, jobs progress solely through worker leases")
		leaseRuns  = flag.Int("lease-runs", 500, "max runs granted per worker lease (adaptive sizing never exceeds this)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "lease heartbeat deadline; expired leases are requeued")
		leaseSec   = flag.Float64("lease-sec", 2, "adaptive lease horizon: seconds of work granted per lease to workers with a measured throughput")
		fleetCkpt  = flag.String("fleet-checkpoint", "gpureld.fleet.json", "fleet journal path: leases + worker registry survive a coordinator restart ('' disables)")
		calibrate  = flag.Int("calibrate-runs", -1, "worker calibration micro-burst size measuring runs/sec (0 disables, negative = default)")
		snapBudget = flag.Int("worker-snap-mb", 0, "worker capability report: snapshot memory budget in MiB")
		adviseCkpt = flag.String("advise-checkpoint", "gpureld.advise.json", "selective-hardening advise journal path ('' disables persistence)")
	)
	prof := cliutil.Profiling(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatalf("gpureld: %v", err)
	}
	defer stopProf()

	// The daemon's study exists for its golden-run memoisation; campaign
	// sizing and seeds come from each job spec. The adaptive counters are
	// shared between the study (which increments them as experiments run)
	// and the scheduler's /metrics exporter.
	counters := &adaptive.Counters{}
	study := gpurel.NewStudy(0, *seed)
	study.Counters = counters
	if *converge && *snapStride == 0 {
		*snapStride = microfi.AutoStride
	}
	if *snapStride != 0 {
		study.Checkpoint = microfi.CheckpointSpec{Stride: *snapStride, BudgetBytes: *snapMB << 20, Converge: *converge}
	}
	source := service.NewStudySource(study)

	if *workerMode {
		runWorker(source, *join, *workerID, *chunk, *workers, *leaseRuns, *calibrate, *snapBudget)
		return
	}

	sched, err := service.NewScheduler(service.Config{
		Source:             source,
		Shards:             *shards,
		WorkersPerShard:    *workers,
		ChunkSize:          *chunk,
		DisableLocalExec:   *noLocal,
		CheckpointPath:     *ckpt,
		CheckpointInterval: *interval,
		Counters:           counters,
		CheckpointStats:    study.CheckpointCounts,
	})
	if err != nil {
		log.Fatalf("gpureld: %v", err)
	}
	coord, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{
		LeaseRuns:      *leaseRuns,
		LeaseTTL:       *leaseTTL,
		TargetLeaseSec: *leaseSec,
		JournalPath:    *fleetCkpt,
	})
	if err != nil {
		sched.Close()
		log.Fatalf("gpureld: %v", err)
	}
	sched.Metrics().AddCollector(coord.WriteMetrics)

	// The advise subsystem runs each advise job on its own study sized by
	// the spec's runs/seed, so plans are reproducible across daemons.
	adv, err := service.NewAdvisor(service.AdvisorConfig{
		Backend:     service.NewStudyAdviseBackend(),
		JournalPath: *adviseCkpt,
		Metrics:     sched.Metrics(),
	})
	if err != nil {
		log.Fatalf("gpureld: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched).Handler(coord.Mount, adv.Mount)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mode := "local+fleet"
		if *noLocal {
			mode = "fleet-only"
		}
		log.Printf("gpureld: listening on %s (checkpoint %q, %d lane(s) × %d worker(s), chunk %d, exec %s)",
			*addr, *ckpt, *shards, *workers, *chunk, mode)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			adv.Close()
			coord.Close()
			sched.Close()
			log.Fatalf("gpureld: %v", err)
		}
	case <-ctx.Done():
		log.Printf("gpureld: signal received, draining (in-flight chunks finish, then checkpoint flush)")
	}

	// Drain order: stop granting leases (journaled coordinators flush the
	// lease ledger for the next process; unjournaled ones requeue it), park
	// in-flight advise jobs (journaled non-terminal, so the next process
	// resumes them), drain the scheduler (finishes in-flight chunks, parks
	// the rest, flushes the checkpoint, unblocks open event streams), then
	// shut the listener down gracefully.
	adv.Close()
	if err := coord.Close(); err != nil {
		log.Printf("gpureld: fleet journal flush: %v", err)
	}
	closeErr := sched.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("gpureld: http shutdown: %v", err)
	}
	if closeErr != nil {
		log.Printf("gpureld: checkpoint flush: %v", closeErr)
		os.Exit(1)
	}
	fmt.Println("gpureld: drained and checkpointed, bye")
}

// runWorker joins a coordinator and executes leases until SIGINT/SIGTERM;
// the drain path returns the open lease's unexecuted remainder so the
// coordinator requeues it without waiting out the TTL.
func runWorker(source service.SourceFunc, join, id string, chunk, campaignWorkers, maxRuns, calibrateRuns, snapMB int) {
	if join == "" {
		log.Fatal("gpureld: -worker requires -join <coordinator URL>")
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		ID:            id,
		Client:        client.New(join),
		Source:        source,
		Chunk:         chunk,
		Workers:       campaignWorkers,
		MaxRuns:       maxRuns,
		CalibrateRuns: calibrateRuns,
		Caps:          service.WorkerCaps{SnapMB: snapMB},
	})
	if err != nil {
		log.Fatalf("gpureld: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("gpureld: worker %s joined %s (chunk %d)", w.ID(), join, chunk)
	if err := w.Run(ctx); err != nil {
		log.Fatalf("gpureld: %v", err)
	}
	log.Printf("gpureld: worker %s drained after %d runs, bye", w.ID(), w.Runs())
}
