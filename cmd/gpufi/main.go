// Command gpufi runs a microarchitecture-level fault-injection campaign on
// one benchmark — the gpuFI-4 workflow: pick an application, a kernel and a
// hardware structure, inject n uniformly random single-bit flips, and report
// the outcome distribution, failure rate, derating factor and AVF.
//
// Usage:
//
//	gpufi -app SRADv1 -kernel K4 -structure RF -n 3000 [-seed 1] [-tmr] [-burst 1]
//	gpufi -app VA -structure all -n 1000
//	gpufi -app VA -structure all -n 3000 -adaptive -prune
//	                        # adaptive sampling: stop each campaign at ±2.35%,
//	                        # skip provably-dead RF sites via the liveness map
//	gpufi -app VA -structure RF -n 3000 -static-prune
//	                        # like -prune, but the dead set comes from static
//	                        # dataflow analysis — no golden liveness trace
//	gpufi -app VA -structure RF -n 3000 -snap-stride -1 -converge
//	                        # checkpointed fork-and-join: faulty runs resume
//	                        # from golden snapshots and rejoin golden early,
//	                        # bit-identically to brute force
//	gpufi -app VA -structure RF -n 3000 -model stuck -stuck 0
//	                        # permanent stuck-at-0 cell defects instead of
//	                        # transient flips
//	gpufi -app VA -structure SMEM -n 3000 -model mbu -burst 2 -lines 2
//	                        # spatial multi-bit upsets: 2 adjacent bits in 2
//	                        # adjacent rows
//	gpufi -app VA -structure ctrl -n 1000
//	                        # control-state faults: warp-scheduler entries,
//	                        # the SIMT divergence stack, barrier state
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gpurel/internal/ace"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/cliutil"
	"gpurel/internal/faultmodel"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
	"gpurel/internal/kernels"
	"gpurel/internal/metrics"
	"gpurel/internal/microfi"
	"gpurel/internal/report"
)

func main() {
	var (
		appName     = flag.String("app", "VA", "benchmark application (see -list)")
		kernel      = flag.String("kernel", "", "kernel name (K1..Kn); empty = whole application")
		structure   = flag.String("structure", "RF", "RF, SMEM, L1D, L1T, L2 or all")
		n           = flag.Int("n", 3000, "injections per campaign (paper: 3000 → ±2.35% at 99% confidence)")
		seed        = flag.Int64("seed", 1, "campaign seed")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		tmr         = flag.Bool("tmr", false, "harden the application with thread-level TMR first")
		burst       = flag.Int("burst", 1, "adjacent multi-bit burst width (1 = single-bit)")
		model       = flag.String("model", "", "fault model: transient (default), stuck, mbu or control (implied by control structures)")
		stuck       = flag.Int("stuck", -1, "stuck-at polarity 0 or 1 for -model stuck, or forced-latch polarity for control faults")
		lines       = flag.Int("lines", 1, "adjacent rows/lines an MBU cluster spans (-model mbu)")
		adaptiveOn  = flag.Bool("adaptive", false, "stop each campaign early once the Wilson-score 99% CI half-width reaches the target margin")
		margin      = flag.Float64("margin", 0, "target 99% CI half-width for -adaptive (0 = the paper's ±2.35%); implies -adaptive")
		prune       = flag.Bool("prune", false, "classify provably-dead RF injection sites as Masked from the golden run's liveness map, without simulating")
		staticPrune = flag.Bool("static-prune", false, "classify RF/SMEM injections landing in statically-dead cycle intervals as Masked (no liveness trace needed); ignored when -prune is set")
		ckStride    = flag.Int64("snap-stride", 0, "golden-run snapshot stride in cycles for fork-and-join injection (0 = off, -1 = auto)")
		ckMB        = flag.Int64("snap-mb", 0, "snapshot memory budget in MiB (0 = default 256, negative = unlimited)")
		converge    = flag.Bool("converge", false, "join faulty runs back to golden at the first matching checkpoint; implies -snap-stride -1 if unset")
		list        = flag.Bool("list", false, "list benchmarks and kernels")
	)
	prof := cliutil.Profiling(flag.CommandLine)
	cliutil.Alias(flag.CommandLine, "snap-stride", "checkpoint")
	cliutil.Alias(flag.CommandLine, "snap-mb", "checkpoint-mb")
	cliutil.HideDeprecated(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		for _, a := range kernels.All() {
			fmt.Printf("%-12s %s\n", a.Name, strings.Join(a.Kernels, " "))
		}
		return
	}

	target := *margin
	if *adaptiveOn && target == 0 {
		target = campaign.WorstCaseMargin99(3000) // the paper's ±2.35%
	}

	app, err := kernels.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	job := app.Build()
	if *tmr {
		job = harden.TMR(job)
	}
	cfg := gpu.Volta()
	if *converge && *ckStride == 0 {
		*ckStride = microfi.AutoStride
	}
	ckSpec := microfi.CheckpointSpec{Stride: *ckStride, BudgetBytes: *ckMB << 20, Converge: *converge}
	g, err := microfi.GoldenCheckpointed(job, cfg, ckSpec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("golden run: %d cycles, %d launches\n", g.Res.Cycles, len(g.Res.Spans))

	var lv *ace.Liveness
	if *prune {
		if lv, err = ace.TraceRF(job, cfg); err != nil {
			fatal(err)
		}
	}
	var static *microfi.StaticIntervals
	if *staticPrune && lv == nil {
		if static, err = microfi.TraceStatic(job, cfg); err != nil {
			fatal(err)
		}
	}

	var structures []gpu.Structure
	switch *structure {
	case "all":
		structures = gpu.Structures[:]
	case "ctrl":
		structures = gpu.ControlStructures[:]
	default:
		found := false
		for _, s := range gpu.Structures {
			if s.String() == *structure {
				structures = append(structures, s)
				found = true
			}
		}
		for _, s := range gpu.ControlStructures {
			if s.String() == *structure {
				structures = append(structures, s)
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown structure %q", *structure))
		}
	}

	fspec := faultmodel.Spec{Model: *model, Width: *burst, Lines: *lines}
	if *stuck >= 0 {
		fspec.Stuck = faultmodel.Ptr(*stuck)
	}
	// A structure selection is either all-storage or all-control, so the
	// control model can be implied once rather than spelled out per flag.
	if fspec.Model == "" && structures[0].IsControl() {
		fspec.Model = faultmodel.ModelControl
	}

	faultNote := ""
	if !fspec.IsDefault() {
		faultNote = ", fault=" + fspec.Label()
	}
	tbl := report.Table{
		Title:  fmt.Sprintf("gpuFI campaign: %s %s (n=%d, seed=%d, tmr=%v%s)", *appName, *kernel, *n, *seed, *tmr, faultNote),
		Header: []string{"Structure", "n", "Masked", "SDC", "Timeout", "DUE", "FR", "±99%", "DF", "AVF"},
	}
	counters := &adaptive.Counters{}
	var structAVFs []metrics.StructAVF
	for _, st := range structures {
		if err := fspec.ValidateFor(st); err != nil {
			fatal(err)
		}
		mdl, err := fspec.Build()
		if err != nil {
			fatal(err)
		}
		tgt := microfi.Target{Structure: st, Kernel: *kernel, IncludeVote: *tmr}
		var exp campaign.Experiment
		if lv != nil && st == gpu.RF {
			exp = counters.Instrument(func(run int, rng *rand.Rand) (faults.Result, bool) {
				return microfi.InjectPrunedModel(job, g, lv, tgt, mdl, rng)
			})
		} else if static != nil && (st == gpu.RF || st == gpu.SMEM) {
			exp = counters.Instrument(func(run int, rng *rand.Rand) (faults.Result, bool) {
				return microfi.InjectStaticModel(job, g, static, tgt, mdl, rng)
			})
		} else {
			exp = counters.Count(func(run int, rng *rand.Rand) faults.Result {
				return microfi.InjectModel(job, g, tgt, mdl, rng)
			})
		}
		opts := campaign.Options{Runs: *n, Seed: *seed, Workers: *workers}
		var tl campaign.Tally
		if target > 0 {
			res := adaptive.Run(opts, adaptive.Policy{Margin: target}, exp)
			tl = res.Tally
			counters.Saved.Add(int64(res.Saved))
		} else {
			tl = campaign.Run(opts, exp)
		}
		df := tgt.DF(g)
		sa := metrics.NewStructAVF(st, tl, df)
		structAVFs = append(structAVFs, sa)
		lo, hi := tl.CI99()
		tbl.AddRow(st.String(), fmt.Sprintf("%d", tl.N),
			report.Pct(tl.Pct(faults.Masked)), report.Pct(tl.Pct(faults.SDC)),
			report.Pct(tl.Pct(faults.Timeout)), report.Pct(tl.Pct(faults.DUE)),
			report.Pct(tl.FR()), report.CI(lo, hi),
			fmt.Sprintf("%.4f", df), report.Pct(sa.AVF.Total()))
	}
	if len(structAVFs) == int(gpu.NumStructures) {
		chip := metrics.ChipAVF(cfg, structAVFs)
		tbl.AddFooter("full-chip AVF (size-weighted): %s  [SDC %s, Timeout %s, DUE %s]",
			report.Pct(chip.Total()), report.Pct(chip.SDC), report.Pct(chip.Timeout), report.Pct(chip.DUE))
	}
	if target > 0 || *prune || static != nil {
		how := "liveness"
		if static != nil {
			how = "static"
		}
		tbl.AddFooter("adaptive sampling: %d simulated, %d pruned (%s), %d saved (early stop, target ±%.2f%%)",
			counters.Simulated.Load(), counters.Pruned.Load(), how, counters.Saved.Load(), 100*target)
	}
	if ckSpec.Enabled() {
		ck := g.CheckpointCounts()
		tbl.AddFooter("checkpointing: %d snapshots (%.1f MiB, %d evicted), %d fork resumes (%d cycles skipped), %d converge joins (%d cycles skipped)",
			ck.Snapshots, float64(ck.SnapshotBytes)/(1<<20), ck.Evictions,
			ck.ForkResumes, ck.ForkCyclesSaved, ck.ConvergeHits, ck.ConvergeCyclesSaved)
	}
	fmt.Print(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpufi:", err)
	os.Exit(1)
}
