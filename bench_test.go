// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure (printing the rows
// and series the paper reports) and measures the cost of doing so.
//
// Campaign sizing: GPUREL_RUNS sets the injections per campaign point
// (default 60 here; the paper uses 3000 for ±2.35% at 99% confidence —
// expect proportionally longer runs). GPUREL_SEED sets the base seed.
// Campaigns are memoised across benchmarks in this process, exactly like
// figures share campaigns in the paper's study, so the full suite costs one
// study, not thirteen.
//
// Recommended: go test -bench=. -benchtime=1x -benchmem
package gpurel

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
	"gpurel/internal/softfi"
)

var (
	benchStudyOnce sync.Once
	benchStudy     *Study
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func study() *Study {
	benchStudyOnce.Do(func() {
		runs := envInt("GPUREL_RUNS", 60)
		seed := int64(envInt("GPUREL_SEED", 1))
		benchStudy = NewStudy(runs, seed)
	})
	return benchStudy
}

var printed sync.Map

// emit prints a figure's text exactly once per process.
func emit(key, text string) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkFig1_ApplicationAVFvsSVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().Figure1()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig1", txt)
	}
}

func BenchmarkFig2_KernelAVFvsSVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().Figure2()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig2", txt)
	}
}

func BenchmarkTableI_TrendPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, txt, err := study().TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("Table I must have 4 rows, got %d", len(rows))
		}
		emit("table1", txt)
	}
}

func BenchmarkFig3_ResourceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().Figure3()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig3", txt)
	}
}

func BenchmarkFig4_AVFRFvsSVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().Figure4()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig4", txt)
	}
}

func BenchmarkFig5_AVFCachevsSVFLD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().Figure5()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig5", txt)
	}
}

var (
	hardenedOnce sync.Once
	hardenedPts  []HardenedPoint
	hardenedErr  error
)

func hardened(b *testing.B) []HardenedPoint {
	hardenedOnce.Do(func() {
		hardenedPts, hardenedErr = study().Hardened()
	})
	if hardenedErr != nil {
		b.Fatal(hardenedErr)
	}
	return hardenedPts
}

func BenchmarkFig7_HardenedAVFSVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("fig7", Figure7(hardened(b)))
	}
}

func BenchmarkFig8_SDCHardening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("fig8", Figure8(hardened(b)))
	}
}

func BenchmarkFig9_TimeoutDUEHardening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("fig9", Figure9(hardened(b)))
	}
}

func BenchmarkFig10_ComponentAVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("fig10", Figure10(hardened(b)))
	}
}

func BenchmarkFig11_ControlPathMasked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit("fig11", Figure11(hardened(b)))
	}
}

func BenchmarkFig12_RegisterReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, txt := Figure12()
		if len(a.Uses) != 2 {
			b.Fatal("Figure 12 analysis changed")
		}
		emit("fig12", txt)
	}
}

// BenchmarkSpeed_AVFvsSVFThroughput is the paper's footnote-1 comparison:
// the cost of one cross-layer assessment run vs one software-level run.
func BenchmarkSpeed_AVFvsSVFThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		micro, soft, err := study().SpeedComparison("SRADv1", 3)
		if err != nil {
			b.Fatal(err)
		}
		emit("speed", fmt.Sprintf(
			"Assessment speed (SRADv1): cross-layer %v/run vs software-level %v/run (%.0f× gap; paper fn.1: 1258 vs 10 machine-days)",
			micro, soft, float64(micro)/float64(soft)))
	}
}

// BenchmarkAblation_MultiBit exercises the §II-A multi-bit fault model:
// burst widths 1, 2 and 4 on the register file.
func BenchmarkAblation_MultiBit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, txt, err := study().MultiBitAblation("VA", "K1", gpu.RF, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		emit("multibit", txt)
	}
}

// BenchmarkAblation_TransientUse contrasts persistent destination-register
// corruption (NVBitFI's model) with transient single-operand corruption —
// the blind spot the §V-B register reuse analyzer addresses.
func BenchmarkAblation_TransientUse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := study()
		p, err := s.SoftTally("SCP", "K1", softfi.SVF, false)
		if err != nil {
			b.Fatal(err)
		}
		u, err := s.SoftTally("SCP", "K1", softfi.SVFUse, false)
		if err != nil {
			b.Fatal(err)
		}
		emit("transient", fmt.Sprintf(
			"SCP K1: SVF (persistent dst) = %.2f%%, transient single-use = %.2f%%",
			100*p.FR(), 100*u.FR()))
	}
}

// --- engine micro-benchmarks: the cost drivers behind every table ---

func BenchmarkEngineMicroarchSim(b *testing.B) {
	app, _ := kernels.ByName("HotSpot")
	job := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := sim.Run(job, gpu.Volta(), sim.Options{}); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkEngineFunctionalSim(b *testing.B) {
	app, _ := kernels.ByName("HotSpot")
	job := app.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := funcsim.Run(job, funcsim.Options{}); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkEngineTMRSim(b *testing.B) {
	s := study()
	e, err := s.Eval("VA")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := sim.Run(e.JobTMR, gpu.Volta(), sim.Options{}); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkAblation_ACEvsFI contrasts statistical AVF-RF with single-run
// analytical ACE and PVF estimates (the accuracy/speed spectrum of §I).
func BenchmarkAblation_ACEvsFI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, txt, err := study().CompareACE("SCP")
		if err != nil {
			b.Fatal(err)
		}
		if c.AVFACE <= 0 || c.PVF <= 0 {
			b.Fatal("analytical estimates must be positive")
		}
		emit("ace", txt)
	}
}

// BenchmarkAblation_ECC sweeps SEC-DED protection choices over the chip
// structures — the targeted-protection design question of §II-A. Run with a
// width-2 burst mix so detected-uncorrectable outcomes appear.
func BenchmarkAblation_ECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		txt, err := study().ECCAblation("HotSpot", "K1", 1)
		if err != nil {
			b.Fatal(err)
		}
		emit("ecc", txt)
	}
}

// BenchmarkAblation_ErrorPropagation runs the §VI future-work experiment:
// taint-based SDC prediction validated against real injections.
func BenchmarkAblation_ErrorPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, txt, err := study().RunPropagationStudy("HotSpot", 40)
		if err != nil {
			b.Fatal(err)
		}
		if ps.Sites != 40 {
			b.Fatalf("lost sites: %+v", ps)
		}
		emit("prop", txt)
	}
}

// BenchmarkAblation_InputSize sweeps vectorAdd input sizes — the SUGAR
// (ref. [48]) observation that resilience estimates shift with input size.
func BenchmarkAblation_InputSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		txt, err := study().InputSizeAblation([]int{512, 2048, 8192})
		if err != nil {
			b.Fatal(err)
		}
		emit("inputsize", txt)
	}
}

// BenchmarkAblation_BudgetedProtection evaluates the §III-A budgeted
// protection pitfall: protect k apps by SVF ranking vs by AVF ranking and
// compare the residual mean AVF.
func BenchmarkAblation_BudgetedProtection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bp, txt, err := study().RunBudgetedProtection([]string{"VA", "SCP", "HotSpot", "LUD"}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(bp.ChosenByAVF) != 2 {
			b.Fatal("policy broken")
		}
		emit("budget", txt)
	}
}
