// Selective-hardening measurement entry points: the study-level API over
// harden.Selective that the advisor (internal/advisor) drives. The boundary
// sets normalize onto the legacy campaigns — an empty protection set is the
// plain job and a set covering every kernel is Hardened=true — so boundary
// points share seeds and memo entries with MicroTally, which is what makes
// the harden.Selective bit-identity property observable at the tally level.
package gpurel

import (
	"gpurel/internal/campaign"
	"gpurel/internal/device"
	"gpurel/internal/faultmodel"
	"gpurel/internal/gpu"
	"gpurel/internal/harden"
	"gpurel/internal/metrics"
	"gpurel/internal/microfi"
)

// normalizeSelective canonicalizes a selective point against the app's
// kernel set: the empty set drops to the plain point and a covering set
// becomes the legacy Hardened point, so the boundary cases reuse legacy
// seeds and memo slots bit for bit.
func normalizeSelective(e *AppEval, spec PointSpec) PointSpec {
	if len(spec.Harden) == 0 {
		return spec
	}
	set := harden.NewSet(spec.Harden...)
	switch {
	case set.Empty():
		spec.Harden = nil
	case set.Covers(e.Job):
		spec.Harden = nil
		spec.Hardened = true
	default:
		spec.Harden = set.Names()
	}
	return spec
}

// MicroTallySelectiveModel runs (or recalls) the microarchitecture-level
// campaign for one (app, kernel, structure) point on the selectively
// hardened variant of the application, under an explicit fault model. The
// returned derating factor is measured on the selective golden run. The
// empty protection set is the plain campaign and a covering set the legacy
// Hardened campaign — same seeds, same memo slots, same tallies.
func (s *Study) MicroTallySelectiveModel(appName, kernel string, st gpu.Structure, fault faultmodel.Spec, protect []string) (campaign.Tally, float64, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return campaign.Tally{}, 0, err
	}
	spec := normalizeSelective(e, PointSpec{
		Layer: LayerMicro, App: appName, Kernel: kernel, Structure: st, Harden: protect,
	})
	if !fault.IsDefault() {
		f := fault
		spec.Fault = &f
	}

	_, g, err := s.selectiveState(e, spec)
	if err != nil {
		return campaign.Tally{}, 0, err
	}
	includeVote := spec.Hardened || spec.hardenSet().Has(kernel)
	t := microfi.Target{Structure: st, Kernel: kernel, IncludeVote: includeVote}

	key := microKey{
		app: appName, kernel: kernel, structure: st,
		hardened: spec.Hardened, fault: fault.Canonical(), harden: spec.hardenSet().Canonical(),
	}
	s.mu.Lock()
	tl, ok := s.micro[key]
	s.mu.Unlock()
	if !ok {
		tl, err = s.runPoint(spec)
		if err != nil {
			return campaign.Tally{}, 0, err
		}
		s.mu.Lock()
		s.micro[key] = tl
		s.mu.Unlock()
	}
	return tl, t.DF(g), nil
}

// MicroTallySelective is MicroTallySelectiveModel under the default
// transient single-bit model.
func (s *Study) MicroTallySelective(appName, kernel string, st gpu.Structure, protect []string) (campaign.Tally, float64, error) {
	return s.MicroTallySelectiveModel(appName, kernel, st, faultmodel.Spec{}, protect)
}

// selectiveState resolves a normalized selective point to its job and
// golden run (plain / TMR / cached selective variant).
func (s *Study) selectiveState(e *AppEval, spec PointSpec) (*device.Job, *microfi.GoldenRun, error) {
	switch {
	case len(spec.Harden) > 0:
		se, err := e.selective(s.Cfg, s.Checkpoint, spec.hardenSet())
		if err != nil {
			return nil, nil, err
		}
		return se.Job, se.G, nil
	case spec.Hardened:
		return e.JobTMR, e.MicroGTMR, nil
	default:
		return e.Job, e.MicroG, nil
	}
}

// SelectiveEval returns (building and caching on first use) the selectively
// hardened job and its golden run for a protection set, normalized at the
// boundaries: the empty set yields the plain state and a covering set the
// TMR state of the app's evaluation.
func (s *Study) SelectiveEval(appName string, protect []string) (*device.Job, *microfi.GoldenRun, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return nil, nil, err
	}
	spec := normalizeSelective(e, PointSpec{Layer: LayerMicro, App: appName, Harden: protect})
	return s.selectiveState(e, spec)
}

// SelectiveOverhead measures the golden-run cycle overhead of protecting
// the given kernel subset: cycles(Selective(job, set)) / cycles(job). The
// empty set returns exactly 1; a covering set returns the full-TMR
// overhead.
func (s *Study) SelectiveOverhead(appName string, protect []string) (float64, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return 0, err
	}
	_, g, err := s.SelectiveEval(appName, protect)
	if err != nil {
		return 0, err
	}
	return float64(g.Res.Cycles) / float64(e.MicroG.Res.Cycles), nil
}

// KernelAVFSelective measures the full-chip AVF of one kernel on the
// selectively hardened variant: one campaign per hardware structure,
// derated against the selective golden run, consolidated by structure bit
// counts — KernelAVF generalized over protection sets.
func (s *Study) KernelAVFSelective(appName, kernel string, protect []string) (metrics.Breakdown, error) {
	var structs []metrics.StructAVF
	for _, st := range gpu.Structures {
		tl, df, err := s.MicroTallySelective(appName, kernel, st, protect)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		structs = append(structs, metrics.NewStructAVF(st, tl, df))
	}
	return metrics.ChipAVF(s.Cfg, structs), nil
}

// AppAVFSelective measures the application AVF of the selectively hardened
// variant: per-kernel chip AVFs weighted by the kernels' cycle shares of
// the selective golden run — the quantity the advisor verifies against the
// SDC budget (its SDC component).
func (s *Study) AppAVFSelective(appName string, protect []string) (metrics.Breakdown, error) {
	e, err := s.Eval(appName)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	_, g, err := s.SelectiveEval(appName, protect)
	if err != nil {
		return metrics.Breakdown{}, err
	}
	var parts []metrics.Breakdown
	var weights []float64
	for _, k := range e.App.Kernels {
		b, err := s.KernelAVFSelective(appName, k, protect)
		if err != nil {
			return metrics.Breakdown{}, err
		}
		parts = append(parts, b)
		weights = append(weights, kernelCycles(g, k))
	}
	return metrics.Weighted(parts, weights), nil
}
