// Package mem models the GPU cache hierarchy: per-SM L1 data and texture
// caches and a chip-wide L2, all holding real data bytes so that injected
// bit flips propagate (or are masked) exactly as they would in hardware.
//
// Policies follow the Volta arrangement modelled by GPGPU-Sim: L1D is
// write-through/no-write-allocate (so it never holds dirty lines and a
// corrupted line can be silently masked by eviction), the texture cache is
// read-only, and L2 is write-back/write-allocate (so corrupted dirty lines
// reach DRAM on eviction or at the end-of-job flush).
package mem

import (
	"fmt"

	"gpurel/internal/device"
)

// Line is one cache line with real data storage.
type Line struct {
	Addr  uint32 // line-aligned base address (serves as the tag)
	Valid bool
	Dirty bool
	LRU   int64
	Data  []byte
}

// Stats counts the cache events surfaced in Figure 3 of the paper.
type Stats struct {
	Accesses    int64
	Misses      int64
	PendingHits int64
	ReservFails int64
}

type inflight struct {
	addr  uint32
	ready int64
}

// Cache is a set-associative cache with an MSHR-like in-flight fill tracker
// used for pending-hit and reservation-fail accounting.
type Cache struct {
	Name     string
	lineSize uint32
	sets     int
	ways     int
	lines    []Line // sets*ways, set-major
	mshrs    int
	fills    []inflight
	lruTick  int64

	Stats Stats
}

// NewCache builds a cache of totalBytes capacity.
func NewCache(name string, totalBytes, lineSize, ways, mshrs int) *Cache {
	nLines := totalBytes / lineSize
	if nLines == 0 || nLines%ways != 0 {
		panic(fmt.Sprintf("mem: bad cache geometry for %s: %d bytes, %d-byte lines, %d ways", name, totalBytes, lineSize, ways))
	}
	c := &Cache{
		Name:     name,
		lineSize: uint32(lineSize),
		sets:     nLines / ways,
		ways:     ways,
		lines:    make([]Line, nLines),
		mshrs:    mshrs,
	}
	for i := range c.lines {
		c.lines[i].Data = make([]byte, lineSize)
	}
	return c
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint32 { return c.lineSize }

// NumLines returns the total number of lines.
func (c *Cache) NumLines() int { return len(c.lines) }

// LineAt exposes line i for fault injection.
func (c *Cache) LineAt(i int) *Line { return &c.lines[i] }

// DataBits returns the total number of data bits, the injection target space.
func (c *Cache) DataBits() int64 { return int64(len(c.lines)) * int64(c.lineSize) * 8 }

// FlipBit flips one bit of the data array: bit b of byte off of line i.
// It mirrors a particle strike on the SRAM array; tag/state bits are out of
// scope (as in gpuFI-4).
func (c *Cache) FlipBit(i int, off uint32, b uint8) {
	c.lines[i].Data[off] ^= 1 << (b & 7)
}

func (c *Cache) setOf(lineAddr uint32) int {
	return int(lineAddr/c.lineSize) % c.sets
}

// lookup returns the way holding lineAddr, or nil.
func (c *Cache) lookup(lineAddr uint32) *Line {
	set := c.setOf(lineAddr)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if ln.Valid && ln.Addr == lineAddr {
			return ln
		}
	}
	return nil
}

// victim picks the LRU way of the set for lineAddr.
func (c *Cache) victim(lineAddr uint32) *Line {
	set := c.setOf(lineAddr)
	best := &c.lines[set*c.ways]
	for w := 1; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if !ln.Valid {
			return ln
		}
		if ln.LRU < best.LRU {
			best = ln
		}
	}
	return best
}

func (c *Cache) touch(ln *Line) {
	c.lruTick++
	ln.LRU = c.lruTick
}

// trackFill records an in-flight fill and returns (extraLatency, pendingHit).
// A fill already in flight for the same line is a pending hit whose latency
// is the remaining fill time. A full MSHR is a reservation failure with a
// stall penalty.
func (c *Cache) trackFill(lineAddr uint32, now, fillLat int64) (int64, bool) {
	// prune completed fills
	live := c.fills[:0]
	for _, f := range c.fills {
		if f.ready > now {
			live = append(live, f)
		}
	}
	c.fills = live
	for _, f := range c.fills {
		if f.addr == lineAddr {
			c.Stats.PendingHits++
			return f.ready - now, true
		}
	}
	if len(c.fills) >= c.mshrs {
		c.Stats.ReservFails++
		// stall until the earliest fill retires, then start ours
		earliest := c.fills[0].ready
		for _, f := range c.fills {
			if f.ready < earliest {
				earliest = f.ready
			}
		}
		wait := earliest - now
		c.fills = append(c.fills, inflight{addr: lineAddr, ready: earliest + fillLat})
		return wait + fillLat, false
	}
	c.fills = append(c.fills, inflight{addr: lineAddr, ready: now + fillLat})
	return fillLat, false
}

// InvalidateAll drops every line. Dirty data is lost, so only call it on
// write-through caches or after FlushTo.
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i].Valid = false
		c.lines[i].Dirty = false
	}
	c.fills = c.fills[:0]
}

// FlushTo writes every dirty line back to DRAM and cleans it.
func (c *Cache) FlushTo(dram *device.Memory) {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.Valid && ln.Dirty {
			copy(dram.Raw()[ln.Addr:], ln.Data)
			ln.Dirty = false
		}
	}
}

// Hierarchy wires one SM's L1D/L1T to the shared L2 and DRAM and implements
// the access protocol. Latencies are supplied by the caller (the simulator's
// config) at construction.
type Hierarchy struct {
	L1D *Cache
	L1T *Cache
	L2  *Cache // shared; aliased across SM hierarchies
	// DRAM-level byte counters (the paper's "Memory Read"/"Memory Write").
	DRAMRead  *int64
	DRAMWrite *int64

	L1Lat, L2Lat, DRAMLat int64
}

// readLineL2 ensures lineAddr is present in L2 and returns (line, latency).
func (h *Hierarchy) readLineL2(dram *device.Memory, lineAddr uint32, now int64) (*Line, int64) {
	h.L2.Stats.Accesses++
	if ln := h.L2.lookup(lineAddr); ln != nil {
		h.L2.touch(ln)
		return ln, h.L2Lat
	}
	h.L2.Stats.Misses++
	lat, _ := h.L2.trackFill(lineAddr, now, h.DRAMLat)
	v := h.L2.victim(lineAddr)
	if v.Valid && v.Dirty {
		copy(dram.Raw()[v.Addr:], v.Data)
		*h.DRAMWrite += int64(h.L2.lineSize)
	}
	copy(v.Data, dram.Raw()[lineAddr:lineAddr+h.L2.lineSize])
	*h.DRAMRead += int64(h.L2.lineSize)
	v.Addr, v.Valid, v.Dirty = lineAddr, true, false
	h.L2.touch(v)
	return v, h.L2Lat + lat
}

// Load reads a 4-byte word through L1D (or L1T when tex) backed by L2 and
// DRAM. first reports whether this is the first access to the line within
// the current warp instruction (set by the coalescer); only first accesses
// contribute stats and latency.
func (h *Hierarchy) Load(dram *device.Memory, addr uint32, tex bool, first bool, now int64) (uint32, int64) {
	l1 := h.L1D
	if tex {
		l1 = h.L1T
	}
	lineAddr := addr &^ (l1.lineSize - 1)
	off := addr - lineAddr
	if !first {
		if ln := l1.lookup(lineAddr); ln != nil {
			return le32(ln.Data[off:]), 0
		}
		// The line was filled and already evicted within one instruction
		// (pathological); fall through as a counted access.
	}
	l1.Stats.Accesses++
	if ln := l1.lookup(lineAddr); ln != nil {
		l1.touch(ln)
		return le32(ln.Data[off:]), h.L1Lat
	}
	l1.Stats.Misses++
	l2ln, lat := h.readLineL2(dram, lineAddr, now)
	fillLat, pending := l1.trackFill(lineAddr, now, lat)
	v := l1.victim(lineAddr)
	// L1 lines are never dirty (write-through), so eviction is silent.
	copy(v.Data, l2ln.Data)
	v.Addr, v.Valid, v.Dirty = lineAddr, true, false
	l1.touch(v)
	_ = pending
	return le32(v.Data[off:]), h.L1Lat + fillLat
}

// Store writes a 4-byte word: write-through L1D (update on hit, no
// allocate), write-back write-allocate L2.
func (h *Hierarchy) Store(dram *device.Memory, addr uint32, val uint32, first bool, now int64) int64 {
	lineAddr := addr &^ (h.L1D.lineSize - 1)
	off := addr - lineAddr
	var lat int64
	if first {
		h.L1D.Stats.Accesses++
		lat = h.L1Lat
	}
	if ln := h.L1D.lookup(lineAddr); ln != nil {
		putLE32(ln.Data[off:], val)
		h.L1D.touch(ln)
	} else if first {
		h.L1D.Stats.Misses++
	}
	// L2 write-allocate
	var l2ln *Line
	var l2lat int64
	if first {
		l2ln, l2lat = h.readLineL2(dram, lineAddr, now)
	} else {
		if l2ln = h.L2.lookup(lineAddr); l2ln == nil {
			l2ln, _ = h.readLineL2(dram, lineAddr, now)
		}
	}
	putLE32(l2ln.Data[off:], val)
	l2ln.Dirty = true
	return lat + l2lat
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
