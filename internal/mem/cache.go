// Package mem models the GPU cache hierarchy: per-SM L1 data and texture
// caches and a chip-wide L2, all holding real data bytes so that injected
// bit flips propagate (or are masked) exactly as they would in hardware.
//
// Policies follow the Volta arrangement modelled by GPGPU-Sim: L1D is
// write-through/no-write-allocate (so it never holds dirty lines and a
// corrupted line can be silently masked by eviction), the texture cache is
// read-only, and L2 is write-back/write-allocate (so corrupted dirty lines
// reach DRAM on eviction or at the end-of-job flush).
package mem

import (
	"fmt"

	"gpurel/internal/device"
)

// Line is one cache line with real data storage.
type Line struct {
	Addr  uint32 // line-aligned base address (serves as the tag)
	Valid bool
	Dirty bool
	LRU   int64
	Data  []byte
}

// Stats counts the cache events surfaced in Figure 3 of the paper.
type Stats struct {
	Accesses    int64
	Misses      int64
	PendingHits int64
	ReservFails int64
}

type inflight struct {
	addr  uint32
	ready int64
}

// Cache is a set-associative cache with an MSHR-like in-flight fill tracker
// used for pending-hit and reservation-fail accounting.
type Cache struct {
	Name     string
	lineSize uint32
	sets     int
	ways     int
	lines    []Line // sets*ways, set-major
	mshrs    int
	fills    []inflight
	lruTick  int64

	// MemoLookup enables a memoized last-hit way in lookup. Coalesced warp
	// accesses hit the same line 32 times in a row, so remembering the last
	// matching way skips the set scan on all but the first. The memo is a
	// pure cache (re-validated against tag and valid bit on every use) and
	// is never saved, restored or compared. Off by default so the
	// simulator's legacy core keeps the baseline per-access cost.
	MemoLookup bool
	lastWay    int

	Stats Stats
}

// NewCache builds a cache of totalBytes capacity.
func NewCache(name string, totalBytes, lineSize, ways, mshrs int) *Cache {
	nLines := totalBytes / lineSize
	if nLines == 0 || nLines%ways != 0 {
		panic(fmt.Sprintf("mem: bad cache geometry for %s: %d bytes, %d-byte lines, %d ways", name, totalBytes, lineSize, ways))
	}
	c := &Cache{
		Name:     name,
		lineSize: uint32(lineSize),
		sets:     nLines / ways,
		ways:     ways,
		lines:    make([]Line, nLines),
		mshrs:    mshrs,
	}
	for i := range c.lines {
		c.lines[i].Data = make([]byte, lineSize)
	}
	return c
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint32 { return c.lineSize }

// NumLines returns the total number of lines.
func (c *Cache) NumLines() int { return len(c.lines) }

// LineAt exposes line i for fault injection.
func (c *Cache) LineAt(i int) *Line { return &c.lines[i] }

// DataBits returns the total number of data bits, the injection target space.
func (c *Cache) DataBits() int64 { return int64(len(c.lines)) * int64(c.lineSize) * 8 }

// FlipBit flips one bit of the data array: bit b of byte off of line i.
// It mirrors a particle strike on the SRAM array; tag/state bits are out of
// scope (as in gpuFI-4).
func (c *Cache) FlipBit(i int, off uint32, b uint8) {
	c.lines[i].Data[off] ^= 1 << (b & 7)
}

// SetBit forces one data-array bit to v, regardless of its current value.
// Permanent stuck-at faults use it to re-assert the defective cell every
// cycle; unlike FlipBit it is idempotent.
func (c *Cache) SetBit(i int, off uint32, b uint8, v bool) {
	if v {
		c.lines[i].Data[off] |= 1 << (b & 7)
	} else {
		c.lines[i].Data[off] &^= 1 << (b & 7)
	}
}

func (c *Cache) setOf(lineAddr uint32) int {
	return int(lineAddr/c.lineSize) % c.sets
}

// lookup returns the way holding lineAddr, or nil. At most one way can
// hold a given line address, so serving from the memoized last hit is
// identical to the set scan.
func (c *Cache) lookup(lineAddr uint32) *Line {
	if c.MemoLookup {
		if ln := &c.lines[c.lastWay]; ln.Valid && ln.Addr == lineAddr {
			return ln
		}
	}
	set := c.setOf(lineAddr)
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		ln := &c.lines[i]
		if ln.Valid && ln.Addr == lineAddr {
			c.lastWay = i
			return ln
		}
	}
	return nil
}

// victim picks the LRU way of the set for lineAddr.
func (c *Cache) victim(lineAddr uint32) *Line {
	set := c.setOf(lineAddr)
	best := &c.lines[set*c.ways]
	for w := 1; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if !ln.Valid {
			return ln
		}
		if ln.LRU < best.LRU {
			best = ln
		}
	}
	return best
}

func (c *Cache) touch(ln *Line) {
	c.lruTick++
	ln.LRU = c.lruTick
}

// trackFill records an in-flight fill and returns (extraLatency, pendingHit).
// A fill already in flight for the same line is a pending hit whose latency
// is the remaining fill time. A full MSHR is a reservation failure with a
// stall penalty.
func (c *Cache) trackFill(lineAddr uint32, now, fillLat int64) (int64, bool) {
	// prune completed fills
	live := c.fills[:0]
	for _, f := range c.fills {
		if f.ready > now {
			live = append(live, f)
		}
	}
	c.fills = live
	for _, f := range c.fills {
		if f.addr == lineAddr {
			c.Stats.PendingHits++
			return f.ready - now, true
		}
	}
	if len(c.fills) >= c.mshrs {
		c.Stats.ReservFails++
		// stall until the earliest fill retires, then start ours
		earliest := c.fills[0].ready
		for _, f := range c.fills {
			if f.ready < earliest {
				earliest = f.ready
			}
		}
		wait := earliest - now
		c.fills = append(c.fills, inflight{addr: lineAddr, ready: earliest + fillLat})
		return wait + fillLat, false
	}
	c.fills = append(c.fills, inflight{addr: lineAddr, ready: now + fillLat})
	return fillLat, false
}

// CacheState is a deep copy of a cache's mutable state — lines (tags,
// valid/dirty bits, LRU stamps, data bytes), in-flight fills, the LRU clock
// and the event counters. The checkpoint engine in internal/sim embeds one
// per cache in its machine snapshots.
type CacheState struct {
	lines   []Line
	fills   []inflight
	lruTick int64
	stats   Stats
}

// SaveState deep-copies the cache's mutable state into st, reusing st's
// buffers when they have the right shape (snapshot sets hold many of these,
// so avoiding reallocation matters on the golden run's capture path).
func (c *Cache) SaveState(st *CacheState) {
	if len(st.lines) != len(c.lines) {
		st.lines = make([]Line, len(c.lines))
		for i := range st.lines {
			st.lines[i].Data = make([]byte, c.lineSize)
		}
	}
	for i := range c.lines {
		src, dst := &c.lines[i], &st.lines[i]
		data := dst.Data
		copy(data, src.Data)
		*dst = *src
		dst.Data = data
	}
	st.fills = append(st.fills[:0], c.fills...)
	st.lruTick = c.lruTick
	st.stats = c.Stats
}

// LoadState restores state saved from a geometrically identical cache,
// overwriting every line, the fill tracker, the LRU clock and the counters.
func (c *Cache) LoadState(st *CacheState) {
	if len(st.lines) != len(c.lines) {
		panic(fmt.Sprintf("mem: LoadState geometry mismatch on %s: %d lines, snapshot has %d", c.Name, len(c.lines), len(st.lines)))
	}
	for i := range c.lines {
		src, dst := &st.lines[i], &c.lines[i]
		data := dst.Data
		copy(data, src.Data)
		*dst = *src
		dst.Data = data
	}
	c.fills = append(c.fills[:0], st.fills...)
	c.lruTick = st.lruTick
	c.Stats = st.stats
}

// StateEqual reports whether the cache's current state is identical to st.
// Data bytes of invalid lines are excluded from the comparison: they are
// architecturally unobservable (lookup and dirty writeback both require
// Valid, and a fill overwrites the whole line), so two states differing only
// there have identical continuations.
func (c *Cache) StateEqual(st *CacheState) bool {
	if len(st.lines) != len(c.lines) || c.lruTick != st.lruTick || c.Stats != st.stats {
		return false
	}
	if len(c.fills) != len(st.fills) {
		return false
	}
	for i := range c.fills {
		if c.fills[i] != st.fills[i] {
			return false
		}
	}
	for i := range c.lines {
		a, b := &c.lines[i], &st.lines[i]
		if a.Valid != b.Valid {
			return false
		}
		if !a.Valid {
			continue
		}
		if a.Addr != b.Addr || a.Dirty != b.Dirty || a.LRU != b.LRU {
			return false
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				return false
			}
		}
	}
	return true
}

// StateBytes returns the retained size of a saved state (data array plus
// per-line metadata), used for snapshot memory budgeting.
func (st *CacheState) StateBytes() int64 {
	var n int64
	for i := range st.lines {
		n += int64(len(st.lines[i].Data)) + 24
	}
	return n + int64(len(st.fills))*16
}

// Reset returns the cache to its post-NewCache state: every line invalid
// with zeroed data, no in-flight fills, LRU clock and counters at zero. The
// run pool uses it so a recycled cache is indistinguishable from a fresh one.
func (c *Cache) Reset() {
	for i := range c.lines {
		ln := &c.lines[i]
		data := ln.Data
		for j := range data {
			data[j] = 0
		}
		*ln = Line{Data: data}
	}
	c.fills = c.fills[:0]
	c.lruTick = 0
	c.Stats = Stats{}
}

// InvalidateAll drops every line. Dirty data is lost, so only call it on
// write-through caches or after FlushTo.
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i].Valid = false
		c.lines[i].Dirty = false
	}
	c.fills = c.fills[:0]
}

// FlushTo writes every dirty line back to DRAM and cleans it.
func (c *Cache) FlushTo(dram *device.Memory) {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.Valid && ln.Dirty {
			dram.WriteAt(ln.Addr, ln.Data)
			ln.Dirty = false
		}
	}
}

// Hierarchy wires one SM's L1D/L1T to the shared L2 and DRAM and implements
// the access protocol. Latencies are supplied by the caller (the simulator's
// config) at construction.
type Hierarchy struct {
	L1D *Cache
	L1T *Cache
	L2  *Cache // shared; aliased across SM hierarchies
	// DRAM-level byte counters (the paper's "Memory Read"/"Memory Write").
	DRAMRead  *int64
	DRAMWrite *int64

	L1Lat, L2Lat, DRAMLat int64
}

// readLineL2 ensures lineAddr is present in L2 and returns (line, latency).
func (h *Hierarchy) readLineL2(dram *device.Memory, lineAddr uint32, now int64) (*Line, int64) {
	h.L2.Stats.Accesses++
	if ln := h.L2.lookup(lineAddr); ln != nil {
		h.L2.touch(ln)
		return ln, h.L2Lat
	}
	h.L2.Stats.Misses++
	lat, _ := h.L2.trackFill(lineAddr, now, h.DRAMLat)
	v := h.L2.victim(lineAddr)
	if v.Valid && v.Dirty {
		dram.WriteAt(v.Addr, v.Data)
		*h.DRAMWrite += int64(h.L2.lineSize)
	}
	copy(v.Data, dram.PeekBytes(lineAddr, h.L2.lineSize))
	*h.DRAMRead += int64(h.L2.lineSize)
	v.Addr, v.Valid, v.Dirty = lineAddr, true, false
	h.L2.touch(v)
	return v, h.L2Lat + lat
}

// Load reads a 4-byte word through L1D (or L1T when tex) backed by L2 and
// DRAM. first reports whether this is the first access to the line within
// the current warp instruction (set by the coalescer); only first accesses
// contribute stats and latency.
func (h *Hierarchy) Load(dram *device.Memory, addr uint32, tex bool, first bool, now int64) (uint32, int64) {
	l1 := h.L1D
	if tex {
		l1 = h.L1T
	}
	lineAddr := addr &^ (l1.lineSize - 1)
	off := addr - lineAddr
	if !first {
		if ln := l1.lookup(lineAddr); ln != nil {
			return le32(ln.Data[off:]), 0
		}
		// The line was filled and already evicted within one instruction
		// (pathological); fall through as a counted access.
	}
	l1.Stats.Accesses++
	if ln := l1.lookup(lineAddr); ln != nil {
		l1.touch(ln)
		return le32(ln.Data[off:]), h.L1Lat
	}
	l1.Stats.Misses++
	l2ln, lat := h.readLineL2(dram, lineAddr, now)
	fillLat, pending := l1.trackFill(lineAddr, now, lat)
	v := l1.victim(lineAddr)
	// L1 lines are never dirty (write-through), so eviction is silent.
	copy(v.Data, l2ln.Data)
	v.Addr, v.Valid, v.Dirty = lineAddr, true, false
	l1.touch(v)
	_ = pending
	return le32(v.Data[off:]), h.L1Lat + fillLat
}

// Store writes a 4-byte word: write-through L1D (update on hit, no
// allocate), write-back write-allocate L2.
func (h *Hierarchy) Store(dram *device.Memory, addr uint32, val uint32, first bool, now int64) int64 {
	lineAddr := addr &^ (h.L1D.lineSize - 1)
	off := addr - lineAddr
	var lat int64
	if first {
		h.L1D.Stats.Accesses++
		lat = h.L1Lat
	}
	if ln := h.L1D.lookup(lineAddr); ln != nil {
		putLE32(ln.Data[off:], val)
		h.L1D.touch(ln)
	} else if first {
		h.L1D.Stats.Misses++
	}
	// L2 write-allocate
	var l2ln *Line
	var l2lat int64
	if first {
		l2ln, l2lat = h.readLineL2(dram, lineAddr, now)
	} else {
		if l2ln = h.L2.lookup(lineAddr); l2ln == nil {
			l2ln, _ = h.readLineL2(dram, lineAddr, now)
		}
	}
	putLE32(l2ln.Data[off:], val)
	l2ln.Dirty = true
	return lat + l2lat
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
