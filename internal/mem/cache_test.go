package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpurel/internal/device"
)

func newHier() (*Hierarchy, *device.Memory, *int64, *int64) {
	dram := device.NewMemory(1 << 20)
	l1d := NewCache("L1D", 1024, 64, 4, 8)
	l1t := NewCache("L1T", 512, 64, 4, 8)
	l2 := NewCache("L2", 4096, 64, 8, 32)
	var rd, wr int64
	h := &Hierarchy{L1D: l1d, L1T: l1t, L2: l2, DRAMRead: &rd, DRAMWrite: &wr,
		L1Lat: 32, L2Lat: 190, DRAMLat: 420}
	return h, dram, &rd, &wr
}

func TestLoadMissThenHit(t *testing.T) {
	h, dram, rd, _ := newHier()
	dram.PokeU32(0x1000, 0xDEADBEEF)
	v, lat1 := h.Load(dram, 0x1000, false, true, 0)
	if v != 0xDEADBEEF {
		t.Fatalf("load = %#x", v)
	}
	if lat1 <= h.L1Lat {
		t.Errorf("cold miss latency %d should exceed L1 hit latency", lat1)
	}
	if *rd != 64 {
		t.Errorf("DRAM read = %d, want one line (64)", *rd)
	}
	v, lat2 := h.Load(dram, 0x1004, false, true, 100)
	if v != 0 || lat2 != h.L1Lat {
		t.Errorf("same-line hit: v=%d lat=%d", v, lat2)
	}
	if h.L1D.Stats.Accesses != 2 || h.L1D.Stats.Misses != 1 {
		t.Errorf("stats = %+v", h.L1D.Stats)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	h, dram, _, _ := newHier()
	h.Store(dram, 0x2000, 7, true, 0)
	// L1D must not allocate on a store miss
	if ln := h.L1D.lookup(0x2000); ln != nil {
		t.Error("L1D allocated a line on store miss (should be no-write-allocate)")
	}
	// but L2 must hold the dirty line
	ln := h.L2.lookup(0x2000)
	if ln == nil || !ln.Dirty {
		t.Fatal("L2 must write-allocate and mark dirty")
	}
	// DRAM is stale until writeback
	if dram.PeekU32(0x2000) == 7 {
		t.Error("write-back L2 must not eagerly update DRAM")
	}
	h.L2.FlushTo(dram)
	if dram.PeekU32(0x2000) != 7 {
		t.Error("flush must write the dirty line back")
	}
	if ln.Dirty {
		t.Error("flush must clean the line")
	}
}

func TestStoreUpdatesL1OnHit(t *testing.T) {
	h, dram, _, _ := newHier()
	dram.PokeU32(0x3000, 1)
	h.Load(dram, 0x3000, false, true, 0) // fill L1
	h.Store(dram, 0x3000, 99, true, 10)
	v, _ := h.Load(dram, 0x3000, false, true, 20)
	if v != 99 {
		t.Errorf("load after store = %d, want 99", v)
	}
}

// TestCorruptedCleanLineMasking is the §V-B masking scenario: a bit flip in
// a clean (write-through) L1 line is silently discarded on eviction and the
// next load refetches the correct value from L2.
func TestCorruptedCleanLineMasking(t *testing.T) {
	h, dram, _, _ := newHier()
	dram.PokeU32(0x4000, 0x55)
	h.Load(dram, 0x4000, false, true, 0)
	// flip a bit in the L1 copy
	for i := 0; i < h.L1D.NumLines(); i++ {
		ln := h.L1D.LineAt(i)
		if ln.Valid && ln.Addr == 0x4000 {
			h.L1D.FlipBit(i, 0, 1)
		}
	}
	v, _ := h.Load(dram, 0x4000, false, true, 10)
	if v != 0x55^0x02 {
		t.Fatalf("corrupted hit should observe the flip, got %#x", v)
	}
	// evict by invalidation (write-through lines are never dirty)
	h.L1D.InvalidateAll()
	v, _ = h.Load(dram, 0x4000, false, true, 20)
	if v != 0x55 {
		t.Errorf("after eviction the corruption must be masked, got %#x", v)
	}
}

// TestCorruptedDirtyL2Propagates: a flip in a dirty L2 line reaches DRAM on
// writeback — the unmaskable case behind residual TMR SDCs (§IV-B).
func TestCorruptedDirtyL2Propagates(t *testing.T) {
	h, dram, _, _ := newHier()
	h.Store(dram, 0x5000, 0x0F, true, 0)
	for i := 0; i < h.L2.NumLines(); i++ {
		ln := h.L2.LineAt(i)
		if ln.Valid && ln.Addr == 0x5000 {
			h.L2.FlipBit(i, 0, 7)
		}
	}
	h.L2.FlushTo(dram)
	if dram.PeekU32(0x5000) != 0x0F^0x80 {
		t.Errorf("dirty corrupted line must propagate to DRAM, got %#x", dram.PeekU32(0x5000))
	}
}

func TestLRUEviction(t *testing.T) {
	h, dram, _, _ := newHier()
	// L1D: 1024 B / 64 B = 16 lines, 4 ways → 4 sets. Fill one set 5×.
	// addresses mapping to set 0: multiples of 64*4=256
	addrs := []uint32{0x1000, 0x1100, 0x1200, 0x1300, 0x1400}
	for i, a := range addrs {
		h.Load(dram, a, false, true, int64(i))
	}
	if h.L1D.lookup(0x1000) != nil {
		t.Error("LRU line must have been evicted")
	}
	if h.L1D.lookup(0x1400) == nil || h.L1D.lookup(0x1100) == nil {
		t.Error("recently used lines must survive")
	}
}

func TestTexturePathSeparate(t *testing.T) {
	h, dram, _, _ := newHier()
	dram.PokeU32(0x6000, 11)
	h.Load(dram, 0x6000, true, true, 0)
	if h.L1T.Stats.Accesses != 1 || h.L1D.Stats.Accesses != 0 {
		t.Errorf("texture load must use L1T: L1T=%+v L1D=%+v", h.L1T.Stats, h.L1D.Stats)
	}
}

func TestPendingHitsAndReservFails(t *testing.T) {
	c := NewCache("c", 1024, 64, 4, 2)
	lat, pending := c.trackFill(0x100, 0, 100)
	if pending || lat != 100 {
		t.Fatalf("first fill: lat=%d pending=%v", lat, pending)
	}
	lat, pending = c.trackFill(0x100, 10, 100)
	if !pending || lat != 90 {
		t.Errorf("pending hit: lat=%d pending=%v", lat, pending)
	}
	c.trackFill(0x200, 10, 100)
	// MSHRs (2) now full → reservation fail
	_, _ = c.trackFill(0x300, 20, 100)
	if c.Stats.ReservFails != 1 {
		t.Errorf("reservation fails = %d, want 1", c.Stats.ReservFails)
	}
	if c.Stats.PendingHits != 1 {
		t.Errorf("pending hits = %d, want 1", c.Stats.PendingHits)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry must panic")
		}
	}()
	NewCache("bad", 100, 64, 3, 4)
}

// TestCoherenceProperty: any random sequence of loads and stores through the
// hierarchy must read the same values as a flat reference memory.
func TestCoherenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, dram, _, _ := newHier()
		ref := map[uint32]uint32{}
		const base, span = 0x1000, 0x2000
		for i := 0; i < 500; i++ {
			addr := base + uint32(rng.Intn(span/4))*4
			if rng.Intn(2) == 0 {
				v := rng.Uint32()
				h.Store(dram, addr, v, true, int64(i))
				ref[addr] = v
			} else {
				got, _ := h.Load(dram, addr, false, true, int64(i))
				if got != ref[addr] {
					return false
				}
			}
		}
		// after a full flush, DRAM must agree with the reference
		h.L2.FlushTo(dram)
		for a, v := range ref {
			if dram.PeekU32(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDataBitsAndFlip(t *testing.T) {
	c := NewCache("c", 1024, 64, 4, 4)
	if c.DataBits() != 1024*8 {
		t.Errorf("DataBits = %d", c.DataBits())
	}
	before := c.LineAt(3).Data[5]
	c.FlipBit(3, 5, 2)
	if c.LineAt(3).Data[5] != before^4 {
		t.Error("FlipBit must XOR the selected bit")
	}
	c.FlipBit(3, 5, 2)
	if c.LineAt(3).Data[5] != before {
		t.Error("double flip must restore the byte")
	}
}
