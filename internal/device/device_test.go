package device

import (
	"bytes"
	"testing"
	"testing/quick"

	"gpurel/internal/isa"
)

func TestAllocAlignmentAndBounds(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("a", 10)
	b := m.Alloc("b", 100)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations must be 256-byte aligned: %#x %#x", a, b)
	}
	if a < NullGuard {
		t.Errorf("allocations must avoid the null guard page: %#x", a)
	}
	if b <= a {
		t.Error("allocator must move forward")
	}
}

func TestAllocOOMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-memory")
		}
	}()
	m := NewMemory(1 << 14)
	m.Alloc("big", 1<<14) // null guard + 16 KiB cannot fit in 16 KiB
}

func TestLoadStoreValidity(t *testing.T) {
	m := NewMemory(1 << 16)
	a := m.Alloc("buf", 64)
	if err := m.Store4(a, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load4(a)
	if err != nil || v != 42 {
		t.Fatalf("roundtrip failed: %v %v", v, err)
	}
	// misaligned
	if _, err := m.Load4(a + 2); err == nil {
		t.Error("misaligned load must fail")
	}
	// out of any allocation
	if _, err := m.Load4(0); err == nil {
		t.Error("null load must fail")
	}
	if err := m.Store4(a+64, 1); err == nil {
		t.Error("store past the end of the buffer must fail")
	}
	// straddling the end
	if _, err := m.Load4(a + 62); err == nil {
		t.Error("load straddling the allocation must fail")
	}
	var ae *AccessError
	if err := m.Store4(0x10, 1); err != nil {
		var ok bool
		ae, ok = err.(*AccessError)
		if !ok || !ae.Write {
			t.Errorf("store error should be a write AccessError, got %v", err)
		}
	}
}

func TestSliceHelpersRoundtrip(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) > 1000 {
			vals = vals[:1000]
		}
		m := NewMemory(1 << 20)
		a := m.Alloc("v", 4*len(vals)+4)
		m.WriteU32s(a, vals)
		got := m.ReadU32s(a, len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFloatHelpers(t *testing.T) {
	m := NewMemory(1 << 14)
	a := m.Alloc("f", 16)
	m.WriteF32s(a, []float32{1.5, -2.25})
	got := m.ReadF32s(a, 2)
	if got[0] != 1.5 || got[1] != -2.25 {
		t.Errorf("float roundtrip = %v", got)
	}
	m.WriteI32s(a, []int32{-7, 9})
	ig := m.ReadI32s(a, 2)
	if ig[0] != -7 || ig[1] != 9 {
		t.Errorf("int roundtrip = %v", ig)
	}
}

func TestClone(t *testing.T) {
	m := NewMemory(1 << 14)
	a := m.Alloc("x", 8)
	m.PokeU32(a, 1)
	c := m.Clone()
	c.PokeU32(a, 2)
	if m.PeekU32(a) != 1 {
		t.Error("clone must not share storage")
	}
	if !c.Valid(a, 4) {
		t.Error("clone must keep the allocation table")
	}
}

func TestReplicate(t *testing.T) {
	m := NewMemory(1 << 14)
	a := m.Alloc("x", 8)
	m.PokeU32(a, 0xAB)
	r, stride := m.Replicate(3, 1024)
	if stride%256 != 0 {
		t.Errorf("stride must stay aligned: %d", stride)
	}
	for c := uint32(0); c < 3; c++ {
		if r.PeekU32(a+c*stride) != 0xAB {
			t.Errorf("copy %d missing data", c)
		}
		if !r.Valid(a+c*stride, 4) {
			t.Errorf("copy %d missing allocation", c)
		}
	}
	// extra headroom must be allocatable
	f := r.Alloc("flag", 4)
	if !r.Valid(f, 4) {
		t.Error("post-replication allocation invalid")
	}
	// copies must be independent
	r.PokeU32(a, 1)
	if r.PeekU32(a+stride) != 0xAB {
		t.Error("copies must not alias")
	}
}

func TestJobHelpers(t *testing.T) {
	m := NewMemory(1 << 14)
	a := m.Alloc("out", 8)
	m.PokeU32(a, 7)
	m.PokeU32(a+4, 8)
	prog := &isa.Program{Name: "k", NumRegs: 1, Code: []isa.Instr{{Op: isa.OpEXIT}}}
	j := &Job{
		Mem: m,
		Steps: []Step{
			{Launch: &Launch{Kernel: prog, KernelName: "K1", GridX: 1, GridY: 1, BlockX: 1, BlockY: 1}},
			{Launch: &Launch{Kernel: prog, KernelName: "K2", GridX: 1, GridY: 1, BlockX: 1, BlockY: 1}},
			{Launch: &Launch{Kernel: prog, KernelName: "K1", GridX: 1, GridY: 1, BlockX: 1, BlockY: 1}},
		},
		Outputs: []Output{{Name: "out", Addr: a, Size: 8}},
	}
	names := j.KernelNames()
	if len(names) != 2 || names[0] != "K1" || names[1] != "K2" {
		t.Errorf("KernelNames = %v", names)
	}
	out := j.ReadOutputs(m)
	want := []byte{7, 0, 0, 0, 8, 0, 0, 0}
	if !bytes.Equal(out, want) {
		t.Errorf("ReadOutputs = %v", out)
	}
	if j.MaxScheduleSteps() < len(j.Steps) {
		t.Error("default step budget too small")
	}
}

func TestLaunchReplicaParams(t *testing.T) {
	l := &Launch{Params: []uint32{1, 2}}
	if l.NumReplicas() != 1 {
		t.Error("default replicas = 1")
	}
	if got := l.ParamsFor(0); got[0] != 1 {
		t.Error("ParamsFor(0) must return Params when not replicated")
	}
	l.Replicas = 3
	l.ReplicaParams = [][]uint32{{1}, {2}, {3}}
	if l.NumReplicas() != 3 || l.ParamsFor(2)[0] != 3 {
		t.Error("replica params not resolved")
	}
	l.GridX, l.GridY, l.BlockX, l.BlockY = 2, 2, 8, 4
	if l.ThreadsPerCTA() != 32 || l.NumCTAs() != 12 {
		t.Errorf("geometry: threads=%d ctas=%d", l.ThreadsPerCTA(), l.NumCTAs())
	}
}
