// Package device models the GPU device side visible to the host: global
// memory with an allocation table (the basis for illegal-access DUE
// detection), kernel launch descriptors, and multi-kernel jobs with host
// steps in between — the moral equivalent of a CUDA host program.
package device

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"gpurel/internal/isa"
)

// NullGuard is the size of the unmapped region at address zero; accesses
// below it always fault, catching null-pointer dereferences from corrupted
// address registers.
const NullGuard = 0x1000

// Alloc records one device allocation.
type Alloc struct {
	Name string
	Addr uint32
	Size uint32
}

// pageBytes is the copy-on-write snapshot page size. Device memory dwarfs
// every other array in a machine snapshot, so the checkpoint engine tracks
// writes per page and shares untouched pages between consecutive snapshots.
const pageBytes = 4096

// Memory is the device global memory image plus its allocation table.
// Accesses outside an allocation (or misaligned) produce errors that the
// simulators classify as DUEs.
type Memory struct {
	data   []byte
	next   uint32
	allocs []Alloc
	// dirty tracks whether any (potentially) mutating access happened since
	// the last ResetDirty. The timing simulator brackets host steps with it
	// to decide whether GPU caches must be invalidated afterward: read-only
	// host access (D2H) leaves them warm.
	dirty bool
	// lastHit memoizes the alloc index of the last successful Valid check:
	// warp accesses are heavily clustered within one buffer, so this turns
	// the per-lane validity scan into a single range test. Pure cache —
	// never part of snapshotted or compared state.
	lastHit int
	// pdirty is the per-page write bitset backing copy-on-write snapshots:
	// bit p set means page p may have diverged from the provenance snapshot
	// the checkpoint engine last synced against. Every mutating accessor
	// marks the pages it touches; Raw marks all of them (the caller can
	// write anywhere).
	pdirty []uint64
}

// NewMemory creates a device memory of the given capacity in bytes.
func NewMemory(capacity int) *Memory {
	m := &Memory{data: make([]byte, capacity), next: NullGuard}
	m.pdirty = make([]uint64, (m.numPages()+63)/64)
	m.markAllPages()
	return m
}

func (m *Memory) numPages() int { return (len(m.data) + pageBytes - 1) / pageBytes }

func (m *Memory) pageDirty(p int) bool { return m.pdirty[p>>6]&(1<<(p&63)) != 0 }

func (m *Memory) markAllPages() {
	for i := range m.pdirty {
		m.pdirty[i] = ^uint64(0)
	}
}

// markPages marks the write-tracking state for [addr, addr+n): the host
// dirty flag and the snapshot page bits.
func (m *Memory) markPages(addr, n uint32) {
	m.dirty = true
	if n == 0 || int(addr) >= len(m.data) {
		return
	}
	lo := int(addr) / pageBytes
	hi := int(addr+n-1) / pageBytes
	if last := m.numPages() - 1; hi > last {
		hi = last
	}
	for p := lo; p <= hi; p++ {
		m.pdirty[p>>6] |= 1 << (p & 63)
	}
}

// ClearPageDirty clears the per-page snapshot bits (not the host dirty
// flag). Only the checkpoint engine calls it, at provenance sync points.
func (m *Memory) ClearPageDirty() {
	clear(m.pdirty)
}

// Alloc reserves size bytes (zeroed) and returns the device address.
// Allocations are 256-byte aligned like cudaMalloc.
func (m *Memory) Alloc(name string, size int) uint32 {
	const align = 256
	addr := (m.next + align - 1) &^ uint32(align-1)
	if int(addr)+size > len(m.data) {
		panic(fmt.Sprintf("device: out of memory allocating %q (%d bytes)", name, size))
	}
	m.allocs = append(m.allocs, Alloc{Name: name, Addr: addr, Size: uint32(size)})
	m.next = addr + uint32(size)
	return addr
}

// Allocs returns the allocation table.
func (m *Memory) Allocs() []Alloc { return m.allocs }

// Size returns the capacity of the memory in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Used returns the high-water mark of allocated memory.
func (m *Memory) Used() uint32 { return m.next }

// Clone returns a deep copy, used to reset state between injection runs.
func (m *Memory) Clone() *Memory {
	c := &Memory{data: make([]byte, len(m.data)), next: m.next}
	copy(c.data, m.data)
	c.allocs = append([]Alloc(nil), m.allocs...)
	c.pdirty = make([]uint64, (c.numPages()+63)/64)
	c.markAllPages()
	return c
}

// CloneInto deep-copies m into dst, reusing dst's backing array when the
// capacities match (the run pool recycles memories this way to avoid a
// large allocation per injection run). Returns dst, or a fresh Clone when
// the capacities differ.
func (m *Memory) CloneInto(dst *Memory) *Memory {
	if dst == nil || len(dst.data) != len(m.data) {
		return m.Clone()
	}
	copy(dst.data, m.data)
	dst.next = m.next
	dst.allocs = append(dst.allocs[:0], m.allocs...)
	dst.markAllPages()
	return dst
}

// MemState is a deep copy of a Memory's mutable state, used by the
// checkpoint engine in internal/sim.
type MemState struct {
	data   []byte
	next   uint32
	allocs []Alloc
}

// SaveState deep-copies the memory's state into st, reusing st's buffers.
func (m *Memory) SaveState(st *MemState) {
	if len(st.data) != len(m.data) {
		st.data = make([]byte, len(m.data))
	}
	copy(st.data, m.data)
	st.next = m.next
	st.allocs = append(st.allocs[:0], m.allocs...)
}

// LoadState restores state saved from a memory of the same capacity.
func (m *Memory) LoadState(st *MemState) {
	if len(st.data) != len(m.data) {
		panic(fmt.Sprintf("device: LoadState capacity mismatch: %d bytes, snapshot has %d", len(m.data), len(st.data)))
	}
	copy(m.data, st.data)
	m.next = st.next
	m.allocs = append(m.allocs[:0], st.allocs...)
	m.markAllPages()
}

// PagedState is a structurally shared snapshot of a Memory: pages untouched
// since the previous snapshot alias the previous snapshot's page slices
// instead of being copied. Immutable once saved.
type PagedState struct {
	pages  [][]byte
	next   uint32
	allocs []Alloc
}

// Pages exposes the page slices for retained-byte accounting (a shared page
// appears in multiple PagedStates with the same backing array). Callers
// must treat the pages as read-only.
func (st *PagedState) Pages() [][]byte { return st.pages }

// StateBytes returns the standalone (sharing-ignored) size of the state.
func (st *PagedState) StateBytes() int64 {
	var n int64
	for _, pg := range st.pages {
		n += int64(len(pg))
	}
	return n + int64(len(st.allocs))*24
}

func samePage(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// SavePaged snapshots the memory into st. Pages whose dirty bit is clear are
// shared with prev — the caller guarantees prev is the provenance base the
// dirty bits are relative to (every clean page is bit-identical to prev's).
// prev nil forces a full copy. Dirty bits are left untouched; the caller
// clears them when it re-bases its provenance on the new snapshot.
func (m *Memory) SavePaged(st, prev *PagedState) {
	np := m.numPages()
	st.pages = make([][]byte, np)
	for p := 0; p < np; p++ {
		if prev != nil && !m.pageDirty(p) {
			st.pages[p] = prev.pages[p]
			continue
		}
		lo := p * pageBytes
		hi := min(lo+pageBytes, len(m.data))
		st.pages[p] = append([]byte(nil), m.data[lo:hi]...)
	}
	st.next = m.next
	st.allocs = append([]Alloc(nil), m.allocs...)
}

// LoadPaged restores st into the memory. base is the provenance snapshot the
// memory's dirty bits are relative to: a page that is clean and shares its
// backing array between st and base is already bit-identical and is skipped.
// base nil forces a full copy. The caller re-bases provenance afterwards.
func (m *Memory) LoadPaged(st, base *PagedState) {
	np := m.numPages()
	if len(st.pages) != np {
		panic(fmt.Sprintf("device: LoadPaged page-count mismatch: %d pages, snapshot has %d", np, len(st.pages)))
	}
	for p := 0; p < np; p++ {
		if base != nil && !m.pageDirty(p) && samePage(st.pages[p], base.pages[p]) {
			continue
		}
		copy(m.data[p*pageBytes:], st.pages[p])
	}
	m.next = st.next
	m.allocs = append(m.allocs[:0], st.allocs...)
}

// PagedEqual reports whether the memory's current state equals st, using the
// same clean-and-shared fast path as LoadPaged.
func (m *Memory) PagedEqual(st, base *PagedState) bool {
	if m.next != st.next || len(m.allocs) != len(st.allocs) || len(st.pages) != m.numPages() {
		return false
	}
	for i := range m.allocs {
		if m.allocs[i] != st.allocs[i] {
			return false
		}
	}
	for p := range st.pages {
		if base != nil && !m.pageDirty(p) && samePage(st.pages[p], base.pages[p]) {
			continue
		}
		lo := p * pageBytes
		if !bytes.Equal(m.data[lo:lo+len(st.pages[p])], st.pages[p]) {
			return false
		}
	}
	return true
}

// StateEqual reports whether the memory's current state is identical to st.
func (m *Memory) StateEqual(st *MemState) bool {
	if len(m.data) != len(st.data) || m.next != st.next || len(m.allocs) != len(st.allocs) {
		return false
	}
	for i := range m.allocs {
		if m.allocs[i] != st.allocs[i] {
			return false
		}
	}
	return bytes.Equal(m.data, st.data)
}

// StateBytes returns the retained size of a saved state.
func (st *MemState) StateBytes() int64 {
	return int64(len(st.data)) + int64(len(st.allocs))*24
}

// Replicate builds a new memory holding `copies` replicas of this memory's
// allocated image at a fixed stride, plus extra bytes of headroom for
// additional allocations. It returns the new memory and the replica stride:
// an address a of copy 0 maps to a + c*stride in copy c. The allocation
// table is replicated so validity checks accept every copy.
func (m *Memory) Replicate(copies, extra int) (*Memory, uint32) {
	const align = 256
	stride := (m.next + align - 1) &^ uint32(align-1)
	capacity := int(stride)*copies + extra
	n := &Memory{data: make([]byte, capacity), next: stride*uint32(copies-1) + m.next}
	n.pdirty = make([]uint64, (n.numPages()+63)/64)
	n.markAllPages()
	for c := 0; c < copies; c++ {
		off := uint32(c) * stride
		copy(n.data[off:], m.data[:m.next])
		for _, a := range m.allocs {
			n.allocs = append(n.allocs, Alloc{
				Name: fmt.Sprintf("%s#%d", a.Name, c),
				Addr: a.Addr + off,
				Size: a.Size,
			})
		}
	}
	return n, stride
}

// AccessError describes an illegal device memory access.
type AccessError struct {
	Addr  uint32
	Write bool
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("illegal global memory %s at 0x%x", kind, e.Addr)
}

// Valid reports whether [addr, addr+n) lies inside some allocation and is
// n-aligned.
func (m *Memory) Valid(addr uint32, n uint32) bool {
	if addr%n != 0 {
		return false
	}
	if i := m.lastHit; i < len(m.allocs) {
		if a := &m.allocs[i]; addr >= a.Addr && addr+n <= a.Addr+a.Size {
			return true
		}
	}
	for i := range m.allocs {
		if a := &m.allocs[i]; addr >= a.Addr && addr+n <= a.Addr+a.Size {
			m.lastHit = i
			return true
		}
	}
	return false
}

// ValidUncached is Valid without the last-hit memo: a plain scan over the
// allocation table. The simulator's reference (legacy) core uses it so its
// per-access cost matches the pre-memoization baseline.
func (m *Memory) ValidUncached(addr uint32, n uint32) bool {
	if addr%n != 0 {
		return false
	}
	for i := range m.allocs {
		if a := &m.allocs[i]; addr >= a.Addr && addr+n <= a.Addr+a.Size {
			return true
		}
	}
	return false
}

// Load4 reads a 4-byte word, checking validity.
func (m *Memory) Load4(addr uint32) (uint32, error) {
	if !m.Valid(addr, 4) {
		return 0, &AccessError{Addr: addr}
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// Store4 writes a 4-byte word, checking validity.
func (m *Memory) Store4(addr uint32, v uint32) error {
	if !m.Valid(addr, 4) {
		return &AccessError{Addr: addr, Write: true}
	}
	m.markPages(addr, 4)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// Raw exposes the backing bytes for direct host-step access. Callers must
// stay in bounds. The returned slice is mutable, so taking it counts as a
// write to every page for dirty tracking; code on the simulator's hot path
// (cache fills and writebacks) uses PeekBytes/WriteAt instead, which track
// precisely.
func (m *Memory) Raw() []byte {
	m.dirty = true
	m.markAllPages()
	return m.data
}

// PeekBytes returns a read-only view of [addr, addr+n) without touching the
// write-tracking state. Mutating the returned slice corrupts snapshot
// provenance; writers must use WriteAt or Raw.
func (m *Memory) PeekBytes(addr, n uint32) []byte {
	return m.data[addr : addr+n]
}

// WriteAt copies b into the memory at addr with precise write tracking (the
// cache model's line-writeback path).
func (m *Memory) WriteAt(addr uint32, b []byte) {
	m.markPages(addr, uint32(len(b)))
	copy(m.data[addr:], b)
}

// ResetDirty clears the write-tracking flag; Dirty reports whether any
// possibly-mutating access happened since.
func (m *Memory) ResetDirty() { m.dirty = false }

// Dirty reports whether the memory may have been written since ResetDirty.
func (m *Memory) Dirty() bool { return m.dirty }

// PeekU32 reads a word without validity checking (host-side access).
func (m *Memory) PeekU32(addr uint32) uint32 {
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// PokeU32 writes a word without validity checking (host-side access).
func (m *Memory) PokeU32(addr uint32, v uint32) {
	m.markPages(addr, 4)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// PeekF32 reads a float32 (host-side).
func (m *Memory) PeekF32(addr uint32) float32 {
	return math.Float32frombits(m.PeekU32(addr))
}

// PokeF32 writes a float32 (host-side).
func (m *Memory) PokeF32(addr uint32, v float32) {
	m.PokeU32(addr, math.Float32bits(v))
}

// WriteU32s copies a word slice to device memory at addr.
func (m *Memory) WriteU32s(addr uint32, vals []uint32) {
	for i, v := range vals {
		m.PokeU32(addr+uint32(4*i), v)
	}
}

// ReadU32s copies n words from device memory at addr.
func (m *Memory) ReadU32s(addr uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.PeekU32(addr + uint32(4*i))
	}
	return out
}

// WriteF32s copies a float slice to device memory at addr.
func (m *Memory) WriteF32s(addr uint32, vals []float32) {
	for i, v := range vals {
		m.PokeF32(addr+uint32(4*i), v)
	}
}

// ReadF32s copies n floats from device memory at addr.
func (m *Memory) ReadF32s(addr uint32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.PeekF32(addr + uint32(4*i))
	}
	return out
}

// WriteI32s copies an int slice to device memory at addr.
func (m *Memory) WriteI32s(addr uint32, vals []int32) {
	for i, v := range vals {
		m.PokeU32(addr+uint32(4*i), uint32(v))
	}
}

// ReadI32s copies n ints from device memory at addr.
func (m *Memory) ReadI32s(addr uint32, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(m.PeekU32(addr + uint32(4*i)))
	}
	return out
}

// Launch describes one kernel launch. When Replicas > 1 (TMR hardening) the
// grid is replicated and each replica r executes with Params resolved through
// ReplicaParams[r]; replica 0 uses Params itself when ReplicaParams is nil.
type Launch struct {
	Kernel     *isa.Program
	KernelName string // defaults to Kernel.Name
	GridX      int
	GridY      int
	BlockX     int
	BlockY     int
	SmemBytes  int

	Params []uint32
	// ParamIsPtr marks parameter words that are device pointers; the TMR
	// transform rebases these per replica.
	ParamIsPtr []bool

	Replicas      int        // 0 or 1 = no replication
	ReplicaParams [][]uint32 // length Replicas when replicated
}

// Name returns the kernel name used for per-kernel campaigns.
func (l *Launch) Name() string {
	if l.KernelName != "" {
		return l.KernelName
	}
	return l.Kernel.Name
}

// NumReplicas normalises Replicas.
func (l *Launch) NumReplicas() int {
	if l.Replicas <= 1 {
		return 1
	}
	return l.Replicas
}

// ParamsFor returns the parameter bank for replica r.
func (l *Launch) ParamsFor(r int) []uint32 {
	if l.ReplicaParams != nil {
		return l.ReplicaParams[r]
	}
	return l.Params
}

// ThreadsPerCTA returns the CTA size in threads.
func (l *Launch) ThreadsPerCTA() int { return l.BlockX * l.BlockY }

// NumCTAs returns the total CTA count including replicas.
func (l *Launch) NumCTAs() int { return l.GridX * l.GridY * l.NumReplicas() }

// Step is one element of a job schedule: either a kernel launch or a host
// step. Host steps model CPU-side code between kernels (reductions of
// partial sums, convergence checks); they are never fault-injected. A host
// step receives the device-buffer offset of the data copy it operates on
// (always 0 for unhardened jobs; the TMR transform invokes it once per
// replica with that replica's offset) and returns the index of the next
// step to run, or -1 to continue with the following step — this supports
// data-dependent kernel loops like BFS.
type Step struct {
	Launch *Launch
	Host   func(m *Memory, off uint32) int
}

// Output names a device buffer whose final contents define program output
// for SDC classification.
type Output struct {
	Name string
	Addr uint32
	Size uint32 // bytes
}

// Job is a complete application run: pristine memory image, schedule, and
// output buffers.
type Job struct {
	Name    string
	Mem     *Memory
	Steps   []Step
	Outputs []Output
	// MaxSteps bounds schedule execution (host-step loops under faults may
	// never converge); exceeding it classifies the run as a Timeout. Zero
	// means 4× the schedule length.
	MaxSteps int
	// DUEFlag, when nonzero, is the address of a word that the application
	// sets to signal a detected unrecoverable error (the TMR voter writes it
	// on three-way disagreement). A nonzero value at job end classifies the
	// run as a DUE.
	DUEFlag uint32
}

// MaxScheduleSteps returns the effective schedule-step budget.
func (j *Job) MaxScheduleSteps() int {
	if j.MaxSteps > 0 {
		return j.MaxSteps
	}
	n := 4 * len(j.Steps)
	if n < 16 {
		n = 16
	}
	return n
}

// KernelNames returns the distinct kernel names in schedule order.
func (j *Job) KernelNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, s := range j.Steps {
		if s.Launch == nil {
			continue
		}
		n := s.Launch.Name()
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	return names
}

// ReadOutputs concatenates the bytes of all output buffers from m, in
// declaration order. Two runs produced the same output iff these byte slices
// are equal.
func (j *Job) ReadOutputs(m *Memory) []byte {
	var total int
	for _, o := range j.Outputs {
		total += int(o.Size)
	}
	out := make([]byte, 0, total)
	for _, o := range j.Outputs {
		out = append(out, m.PeekBytes(o.Addr, o.Size)...)
	}
	return out
}
