package flow

// Dominator and post-dominator trees, computed with the iterative bitset
// algorithm — programs are tens to a few hundred instructions, so the O(n²)
// worst case is irrelevant and the implementation stays obviously correct.

// bitset over block IDs.
type blockSet []uint64

func newBlockSet(n int) blockSet { return make(blockSet, (n+63)/64) }

func (s blockSet) has(i int) bool { return s[i>>6]&(1<<(i&63)) != 0 }
func (s blockSet) add(i int)      { s[i>>6] |= 1 << (i & 63) }

func (s blockSet) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// intersect sets s = s ∩ t.
func (s blockSet) intersect(t blockSet) {
	for i := range s {
		s[i] &= t[i]
	}
}

func (s blockSet) equal(t blockSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

func (s blockSet) count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// domSets runs the iterative dataflow dom(b) = {b} ∪ ∩_{p ∈ edges(b)} dom(p)
// where edges are preds (forward dominators) or succs (post-dominators).
// roots are the nodes whose set is initialised to {root}. Nodes with no
// in-edges and not a root keep the full set (unreachable: dominated by all).
func domSets(n int, roots []int, edges func(int) []int) []blockSet {
	sets := make([]blockSet, n)
	isRoot := make([]bool, n)
	for i := range sets {
		sets[i] = newBlockSet(n)
		sets[i].fill()
	}
	for _, r := range roots {
		isRoot[r] = true
		for i := range sets[r] {
			sets[r][i] = 0
		}
		sets[r].add(r)
	}
	tmp := newBlockSet(n)
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if isRoot[b] {
				continue
			}
			tmp.fill()
			for _, p := range edges(b) {
				tmp.intersect(sets[p])
			}
			tmp.add(b)
			if !tmp.equal(sets[b]) {
				copy(sets[b], tmp)
				changed = true
			}
		}
	}
	return sets
}

// extractIdom picks, for every node, the strictly-dominating node with the
// largest dominator set — the immediate dominator. Roots and nodes not
// reachable from any root (reach[b] == false) get -1.
func extractIdom(sets []blockSet, roots, reach []bool) []int {
	n := len(sets)
	idom := make([]int, n)
	for b := range idom {
		idom[b] = -1
		if roots[b] || !reach[b] {
			continue
		}
		best, bestSize := -1, -1
		for d := 0; d < n; d++ {
			if d == b || !reach[d] || !sets[b].has(d) {
				continue
			}
			if sz := sets[d].count(); sz > bestSize {
				best, bestSize = d, sz
			}
		}
		idom[b] = best
	}
	return idom
}

// reachFrom marks nodes reachable from the roots along edges.
func reachFrom(n int, roots []int, edges func(int) []int) []bool {
	seen := make([]bool, n)
	stack := append([]int(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range edges(b) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominators returns the immediate dominator of every block (-1 for the
// entry block and for blocks unreachable from the entry).
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	if n == 0 {
		return nil
	}
	sets := domSets(n, []int{0}, func(b int) []int { return g.Blocks[b].Preds })
	isRoot := make([]bool, n)
	isRoot[0] = true
	return extractIdom(sets, isRoot, g.Reachable())
}

// PostDominators returns the immediate post-dominator of every block. Blocks
// that terminate the program (no successors) and blocks that cannot reach an
// exit get -1 (their post-dominator is the virtual exit).
func (g *Graph) PostDominators() []int {
	n := len(g.Blocks)
	if n == 0 {
		return nil
	}
	var roots []int
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			roots = append(roots, b.ID)
		}
	}
	if len(roots) == 0 {
		// No exit at all (e.g. a single infinite loop): everything is its
		// own post-dominator frontier; report none.
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out
	}
	sets := domSets(n, roots, func(b int) []int { return g.Blocks[b].Succs })
	isRoot := make([]bool, n)
	for _, r := range roots {
		isRoot[r] = true
	}
	// "reachable" in the post-dominance direction = can reach an exit.
	reach := reachFrom(n, roots, func(b int) []int { return g.Blocks[b].Preds })
	return extractIdom(sets, isRoot, reach)
}

// Dominates reports whether block a dominates block b under the immediate
// dominator tree idom (as returned by Dominators or PostDominators). Every
// block dominates itself.
func Dominates(idom []int, a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = idom[b]
	}
	return false
}
