package flow

import "gpurel/internal/isa"

// Variance is a thread-variance ("divergence") analysis: which values may
// differ between lanes of one warp. Sources of variance are the
// lane-distinguishing special registers (SR_TID.*, SR_LANEID); everything
// derived from them — including values merged under a variant guard and loads
// through variant addresses — is variant. A branch guarded by a variant
// predicate may split the warp; one guarded by a uniform predicate cannot.
//
// Register variance is flow-insensitive (one bit per register for the whole
// program): kernels allocate result registers SSA-style, so reuse-induced
// imprecision is rare. Predicate variance is per-definition, joined through
// reaching pred-defs — the seven predicate registers are recycled constantly
// (a uniform loop guard and a variant bounds check often share a name), so a
// flow-insensitive bit would poison every loop head. Both directions
// over-approximate, which is the safe side: the linter only *excuses* a
// barrier when the enclosing branches are provably uniform.
type Variance struct {
	g   *Graph
	reg [isa.MaxRegs + 1]bool

	defPC      []int // pred-def id -> pc
	defIDAt    []int // pc -> pred-def id, -1 when no predicate is defined
	defVariant []bool
	reachIn    []blockSet // per pc: pred-def ids reaching just before it
}

// predDef returns the predicate the instruction defines, if any. PT writes
// are discarded by the hardware and define nothing.
func predDef(ins *isa.Instr) (isa.Pred, bool) {
	switch ins.Op {
	case isa.OpISETP, isa.OpFSETP:
		if !neverExec(ins) && ins.PDst != isa.PT && int(ins.PDst) <= isa.NumPreds {
			return ins.PDst, true
		}
	}
	return isa.PT, false
}

// VariantReg reports whether the register may differ across lanes.
func (v *Variance) VariantReg(r isa.Reg) bool {
	if r == isa.RZ || int(r) > isa.MaxRegs {
		return false
	}
	return v.reg[r]
}

// VariantPredAt reports whether predicate p, read just before pc, may differ
// across lanes: some reaching definition of it is variant. PT is always
// uniform, as is a predicate with no reaching definition (predicate registers
// power on uniformly zero).
func (v *Variance) VariantPredAt(pc int, p isa.Pred) bool {
	if p == isa.PT || int(p) > isa.NumPreds {
		return false
	}
	for _, id := range v.defsOf(pc, p) {
		if v.defVariant[id] {
			return true
		}
	}
	return false
}

func (v *Variance) defsOf(pc int, p isa.Pred) []int {
	var out []int
	for id, dpc := range v.defPC {
		if v.g.Prog.Code[dpc].PDst == p && v.reachIn[pc].has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Divergent reports whether the guarded branch at pc may make lanes of one
// warp disagree on the direction.
func (v *Variance) Divergent(pc int) bool {
	ins := &v.g.Prog.Code[pc]
	if ins.Op != isa.OpBRA || neverExec(ins) || alwaysExec(ins) {
		return false
	}
	return v.VariantPredAt(pc, ins.Pred)
}

// Variance computes the analysis to fixpoint over the CFG.
func (g *Graph) Variance() *Variance {
	n := len(g.Prog.Code)
	v := &Variance{g: g, defIDAt: make([]int, n), reachIn: make([]blockSet, n)}

	for pc := range g.Prog.Code {
		v.defIDAt[pc] = -1
		if _, ok := predDef(&g.Prog.Code[pc]); ok {
			v.defIDAt[pc] = len(v.defPC)
			v.defPC = append(v.defPC, pc)
		}
	}
	nd := len(v.defPC)
	v.defVariant = make([]bool, nd)
	nb := len(g.Blocks)
	for pc := range v.reachIn {
		v.reachIn[pc] = newBlockSet(nd)
	}
	if nb == 0 {
		return v
	}

	// Forward reaching pred-defs. An unguarded pred write kills the other
	// defs of the same predicate; a guarded one may leave the old value on
	// some lanes, so it only generates.
	transfer := func(b *Block, in blockSet) blockSet {
		out := newBlockSet(nd)
		copy(out, in)
		for pc := b.Start; pc < b.End; pc++ {
			ins := &g.Prog.Code[pc]
			if p, ok := predDef(ins); ok {
				if alwaysExec(ins) {
					for id, dpc := range v.defPC {
						if g.Prog.Code[dpc].PDst == p {
							out[id>>6] &^= 1 << (id & 63)
						}
					}
				}
				out.add(v.defIDAt[pc])
			}
		}
		return out
	}
	blockIn := make([]blockSet, nb)
	for i := range blockIn {
		blockIn[i] = newBlockSet(nd)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < nb; i++ {
			in := newBlockSet(nd)
			for _, p := range g.Blocks[i].Preds {
				po := transfer(&g.Blocks[p], blockIn[p])
				for w := range in {
					in[w] |= po[w]
				}
			}
			for w := range blockIn[i] {
				if blockIn[i][w]|in[w] != blockIn[i][w] {
					blockIn[i][w] |= in[w]
					changed = true
				}
			}
		}
	}
	for i := range g.Blocks {
		b := &g.Blocks[i]
		cur := newBlockSet(nd)
		copy(cur, blockIn[i])
		for pc := b.Start; pc < b.End; pc++ {
			copy(v.reachIn[pc], cur)
			ins := &g.Prog.Code[pc]
			if p, ok := predDef(ins); ok {
				if alwaysExec(ins) {
					for id, dpc := range v.defPC {
						if g.Prog.Code[dpc].PDst == p {
							cur[id>>6] &^= 1 << (id & 63)
						}
					}
				}
				cur.add(v.defIDAt[pc])
			}
		}
	}

	// Joint fixpoint on register variance and per-definition predicate
	// variance.
	var srcs []isa.Reg
	for changed := true; changed; {
		changed = false
		for pc := range g.Prog.Code {
			ins := &g.Prog.Code[pc]
			if neverExec(ins) {
				continue
			}
			// A write under a variant guard lands on some lanes and not
			// others, so the destination is variant even when the value
			// written is uniform.
			in := v.VariantPredAt(pc, ins.Pred)
			srcs = ins.SrcRegs(srcs[:0])
			for _, r := range srcs {
				in = in || v.VariantReg(r)
			}
			switch ins.Op {
			case isa.OpS2R:
				switch ins.Special {
				case isa.SRTidX, isa.SRTidY, isa.SRLaneID:
					in = true
				}
			case isa.OpSEL:
				in = in || v.VariantPredAt(pc, ins.SelPred)
			case isa.OpISETP, isa.OpFSETP:
				in = in || v.VariantPredAt(pc, ins.CPred)
				if id := v.defIDAt[pc]; id >= 0 && in && !v.defVariant[id] {
					v.defVariant[id] = true
					changed = true
				}
				continue
			}
			if ins.Writing() {
				r := ins.Dst
				if r != isa.RZ && int(r) <= isa.MaxRegs && in && !v.reg[r] {
					v.reg[r] = true
					changed = true
				}
			}
		}
	}
	return v
}
