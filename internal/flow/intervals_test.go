package flow_test

import (
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

// traceIntervals runs the job fault-free with a Recorder attached and
// returns the finalized interval map plus the run's launch spans.
func traceIntervals(t *testing.T, app kernels.App, cfg gpu.Config) (*flow.Intervals, []sim.LaunchSpan) {
	t.Helper()
	job := app.Build()
	rec := flow.NewRecorder()
	res := sim.Run(job, cfg, sim.Options{SchedTrace: rec})
	if res.Err != nil || res.TimedOut {
		t.Fatalf("%s: golden trace failed: err=%v timedOut=%v", app.Name, res.Err, res.TimedOut)
	}
	iv := rec.Finalize(res.Cycles)
	if err := iv.Check(); err != nil {
		t.Fatalf("%s: interval invariants violated: %v", app.Name, err)
	}
	return iv, res.Spans
}

// TestIntervalsSoundVsDynamic proves the soundness direction on every app:
// any site the dynamic ace tracer saw as live must be live in the static
// interval map (the Recorder applies *static* instruction effects, e.g. SEL
// reads both sources, so it can only over-approximate liveness — never
// under). It also pins the allocation timelines bit-compatible: the blocks
// the injector would enumerate agree exactly between the two tracers.
func TestIntervalsSoundVsDynamic(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			iv, spans := traceIntervals(t, app, cfg)
			lv, err := ace.TraceRF(app.Build(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if iv.NumSMs() > cfg.NumSMs || lv.NumSMs() > cfg.NumSMs {
				t.Fatalf("tracer touched %d/%d SMs, config has %d", iv.NumSMs(), lv.NumSMs(), cfg.NumSMs)
			}
			liveDyn, liveStatic, checked := 0, 0, 0
			for _, span := range spans {
				for s := 0; s < 16; s++ {
					cycle := span.Start + 1 + (span.End-span.Start-1)*int64(s)/16
					for sm := 0; sm < cfg.NumSMs; sm++ {
						want := lv.RFBlocksAt(sm, cycle, nil)
						got := iv.RFBlocksAt(sm, cycle, nil)
						if len(want) != len(got) {
							t.Fatalf("cycle %d sm %d: allocation timeline diverged: %v vs %v", cycle, sm, got, want)
						}
						for i := range want {
							if got[i].Base != want[i].Base || got[i].Size != want[i].Size {
								t.Fatalf("cycle %d sm %d: block %d mismatch: %+v vs %+v", cycle, sm, i, got[i], want[i])
							}
							for k := 0; k < want[i].Size; k++ {
								phys := want[i].Base + k
								checked++
								dyn := lv.Live(sm, phys, cycle)
								st := iv.LiveRF(sm, phys, cycle)
								if dyn {
									liveDyn++
								}
								if st {
									liveStatic++
								}
								if dyn && !st {
									t.Fatalf("unsound: sm %d phys %d cycle %d dynamically live but statically dead", sm, phys, cycle)
								}
							}
						}
					}
				}
			}
			if liveDyn == 0 || checked == 0 {
				t.Fatalf("degenerate sample: %d sites, %d dynamically live", checked, liveDyn)
			}
			t.Logf("%s: %d sites, %d dyn-live <= %d static-live", app.Name, checked, liveDyn, liveStatic)
		})
	}
}

// TestIntervalsRFBoundsSane checks the static AVF bracket over the full run
// of every app: well-formed (0 <= lower <= upper <= 1), supported for RF
// and SMEM, and nontrivial (some register is live at some cycle, so the RF
// upper bound cannot be zero).
func TestIntervalsRFBoundsSane(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			iv, spans := traceIntervals(t, app, cfg)
			var ws []flow.Window
			for _, s := range spans {
				ws = append(ws, flow.Window{Start: s.Start, End: s.End})
			}
			rf := iv.RFBounds(ws)
			if !rf.Supported || rf.Lower < 0 || rf.Upper > 1 || rf.Lower > rf.Upper {
				t.Fatalf("malformed RF bounds %+v", rf)
			}
			if rf.Upper == 0 {
				t.Fatalf("RF upper bound is zero on a run with register traffic")
			}
			sm := iv.SmemBounds(ws)
			if !sm.Supported || sm.Lower < 0 || sm.Upper > 1 || sm.Lower > sm.Upper {
				t.Fatalf("malformed SMEM bounds %+v", sm)
			}
			t.Logf("%s: RF upper %.4f, SMEM upper %.4f", app.Name, rf.Upper, sm.Upper)
		})
	}
}

// TestIntervalsSmemTracked proves shared-memory liveness is actually
// recorded for a smem-using app: some byte of some allocated block must be
// live at some sampled cycle, and the SMEM upper bound must be positive.
func TestIntervalsSmemTracked(t *testing.T) {
	cfg := gpu.Volta()
	for _, name := range []string{"SRADv1", "PathFinder", "BackProp"} {
		var app kernels.App
		for _, a := range kernels.All() {
			if a.Name == name {
				app = a
			}
		}
		t.Run(name, func(t *testing.T) {
			iv, spans := traceIntervals(t, app, cfg)
			var ws []flow.Window
			for _, s := range spans {
				ws = append(ws, flow.Window{Start: s.Start, End: s.End})
			}
			if b := iv.SmemBounds(ws); b.Upper <= 0 {
				t.Fatalf("%s uses shared memory but SMEM upper bound is %v", name, b)
			}
			foundLive := false
			for _, s := range spans {
				for c := s.Start + 1; c <= s.End && !foundLive; c += 1 + (s.End-s.Start)/64 {
					for sm := 0; sm < cfg.NumSMs && !foundLive; sm++ {
						for _, blk := range iv.SmemBlocksAt(sm, c, nil) {
							for b := 0; b < blk.Size; b += 4 {
								if iv.LiveSmem(sm, blk.Base+b, c) {
									foundLive = true
									break
								}
							}
						}
					}
				}
			}
			if !foundLive {
				t.Fatalf("no live shared-memory byte found in any sampled cycle")
			}
		})
	}
}

// TestIntervalsDeadWindowIsDead spot-checks the meaning of an interval gap:
// pick a register with at least one live interval that ends before the run
// does; the cycle right after Hi must be dead until the next interval.
// Exercised indirectly through LiveRF on synthetic queries.
func TestIntervalsQueryEdges(t *testing.T) {
	cfg := gpu.Volta()
	iv, spans := traceIntervals(t, kernels.All()[0], cfg)
	if len(spans) == 0 {
		t.Fatal("no launch spans")
	}
	// Out-of-range queries must be dead, not panic.
	if iv.LiveRF(99, 0, 1) || iv.LiveRF(0, 1<<30, 1) || iv.LiveSmem(99, 0, 1) {
		t.Fatal("out-of-range site reported live")
	}
	if got := iv.RFBlocksAt(99, 1, nil); len(got) != 0 {
		t.Fatal("out-of-range SM has blocks")
	}
	// Cycle 0 precedes every allocation (alloc < c required).
	for sm := 0; sm < cfg.NumSMs; sm++ {
		if got := iv.RFBlocksAt(sm, 0, nil); len(got) != 0 {
			t.Fatalf("blocks allocated at cycle 0: %v", got)
		}
	}
}
