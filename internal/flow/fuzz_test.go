package flow_test

import (
	"testing"

	"gpurel/internal/ace"
	"gpurel/internal/device"
	"gpurel/internal/flow"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
)

// FuzzIntervals throws arbitrary valid programs at the interval builder:
// whatever the fuzzer constructs, the recorded interval map must satisfy
// its structural invariants (well-formed, sorted, non-overlapping
// intervals inside the traced run) and the soundness property — any site
// the dynamic ace tracer saw live is live statically, i.e. statically-dead
// ⊆ dynamically-not-live. Faulting or timing-out programs still must
// produce well-formed (if truncated) intervals.
func FuzzIntervals(f *testing.F) {
	seed := func(p *isa.Program) { f.Add(p.Marshal()) }
	seed(&isa.Program{Name: "seed", NumRegs: 4, Code: []isa.Instr{
		{Op: isa.OpMOVI, Dst: 1, Imm: 42},
		{Op: isa.OpIADD, Dst: 2, SrcA: 1, SrcB: 1},
		{Op: isa.OpSTG, SrcA: 1, SrcB: 2},
		{Op: isa.OpEXIT},
	}})
	seed(&isa.Program{Name: "smem", NumRegs: 5, Code: []isa.Instr{
		{Op: isa.OpS2R, Dst: 1, Special: isa.SRTidX},
		{Op: isa.OpSHL, Dst: 2, SrcA: 1, BImm: true, Imm: 2},
		{Op: isa.OpMOVI, Dst: 3, Imm: 7},
		{Op: isa.OpSTS, SrcA: 2, SrcB: 3},
		{Op: isa.OpBAR},
		{Op: isa.OpLDS, Dst: 4, SrcA: 2},
		{Op: isa.OpSTG, SrcA: 2, SrcB: 4},
		{Op: isa.OpEXIT},
	}})
	seed(&isa.Program{Name: "diverge", NumRegs: 4, Code: []isa.Instr{
		{Op: isa.OpS2R, Dst: 1, Special: isa.SRLaneID},
		{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, BImm: true, Imm: 16},
		{Op: isa.OpBRA, Pred: isa.P0, PredNeg: true, Target: 4, Reconv: 5},
		{Op: isa.OpMOVI, Dst: 2, Imm: 1},
		{Op: isa.OpMOVI, Dst: 3, Imm: 2},
		{Op: isa.OpSTG, SrcA: 2, SrcB: 3},
		{Op: isa.OpEXIT},
	}})

	cfg := gpu.Volta()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := isa.UnmarshalProgram(data)
		if err != nil || p.Validate() != nil {
			return
		}
		// The interval engine's alloc-kill is only sound for programs that
		// never read uninitialized state; Lint's error rules enforce exactly
		// the validity contract shipped kernels satisfy.
		if flow.HasErrors(flow.Lint(p)) {
			return
		}
		mem := device.NewMemory(1 << 16)
		buf := mem.Alloc("scratch", 4096)
		params := make([]uint32, 8)
		for i := range params {
			params[i] = buf
		}
		job := &device.Job{Name: "fuzz", Mem: mem, Steps: []device.Step{{
			Launch: &device.Launch{Kernel: p, KernelName: "K1",
				GridX: 2, GridY: 1, BlockX: 33, BlockY: 1,
				SmemBytes: 256, Params: params},
		}}}
		rec := flow.NewRecorder()
		lv := ace.NewLiveness(cfg)
		res := sim.Run(job, cfg, sim.Options{MaxCycles: 20000, SchedTrace: rec, RFTrace: lv})
		iv := rec.Finalize(res.Cycles)
		if err := iv.Check(); err != nil {
			t.Fatalf("interval invariants violated: %v\nprogram:\n%v", err, p.Code)
		}
		lv.Cycles = res.Cycles
		for c := int64(1); c <= res.Cycles; c += 1 + res.Cycles/64 {
			for sm := 0; sm < cfg.NumSMs; sm++ {
				for _, blk := range lv.RFBlocksAt(sm, c, nil) {
					for k := 0; k < blk.Size; k++ {
						if lv.Live(sm, blk.Base+k, c) && !iv.LiveRF(sm, blk.Base+k, c) {
							t.Fatalf("unsound: sm %d phys %d cycle %d dynamically live, statically dead\nprogram:\n%v",
								sm, blk.Base+k, c, p.Code)
						}
					}
				}
			}
		}
	})
}
