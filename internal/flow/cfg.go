// Package flow implements static program analysis over isa.Program: basic
// block control-flow graphs, dominator and post-dominator trees, backward
// liveness, reaching definitions with def-use chains, and a thread-variance
// (divergence) analysis. On top of these it provides a kernel linter (Lint)
// and statically-provable dead-register sets (AlwaysDead) that let the
// fault-injection layers classify injections into never-again-read registers
// as Masked without tracing a golden run.
//
// All analyses are pure functions of the instruction stream; they tolerate
// malformed programs (out-of-range branches, bad register indices) so the
// linter can describe them instead of crashing.
package flow

import (
	"fmt"
	"strings"

	"gpurel/internal/isa"
)

// Block is one basic block: the half-open instruction range [Start, End) and
// its CFG edges, both as block IDs.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of a program.
type Graph struct {
	Prog    *isa.Program
	Blocks  []Block
	blockOf []int // pc -> block ID
}

// neverExec reports whether the instruction can never execute: a guard of
// @!PT is constant-false, so the instruction is an elaborate NOP.
func neverExec(ins *isa.Instr) bool {
	return ins.Pred == isa.PT && ins.PredNeg
}

// alwaysExec reports whether the guard is constant-true (@PT), i.e. the
// instruction executes on every active lane.
func alwaysExec(ins *isa.Instr) bool {
	return ins.Pred == isa.PT && !ins.PredNeg
}

// terminates reports whether the instruction ends a basic block.
func terminates(ins *isa.Instr) bool {
	return ins.Op == isa.OpBRA || ins.Op == isa.OpEXIT
}

// Build constructs the CFG. Branch targets and reconvergence points are block
// leaders; BRA and EXIT terminate blocks. Out-of-range targets simply
// produce no edge (the linter reports them separately).
func Build(p *isa.Program) *Graph {
	n := len(p.Code)
	g := &Graph{Prog: p, blockOf: make([]int, n)}
	if n == 0 {
		return g
	}

	leader := make([]bool, n)
	leader[0] = true
	for pc := range p.Code {
		ins := &p.Code[pc]
		if ins.Op == isa.OpBRA {
			if ins.Target >= 0 && ins.Target < n {
				leader[ins.Target] = true
			}
			if ins.Reconv >= 0 && ins.Reconv < n {
				leader[ins.Reconv] = true
			}
		}
		if terminates(ins) && pc+1 < n {
			leader[pc+1] = true
		}
	}

	for pc := 0; pc < n; {
		start := pc
		id := len(g.Blocks)
		for {
			g.blockOf[pc] = id
			pc++
			if pc >= n || leader[pc] || terminates(&p.Code[pc-1]) {
				break
			}
		}
		g.Blocks = append(g.Blocks, Block{ID: id, Start: start, End: pc})
	}

	addEdge := func(from, toPC int) {
		if toPC < 0 || toPC >= n {
			return // escapes the program; lint reports it
		}
		to := g.blockOf[toPC]
		b := &g.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}

	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := &p.Code[b.End-1]
		switch {
		case last.Op == isa.OpBRA:
			switch {
			case alwaysExec(last): // unconditional: taken by every lane
				addEdge(i, last.Target)
			case neverExec(last): // @!PT: never taken
				addEdge(i, b.End)
			default: // guarded: both legs are possible
				addEdge(i, last.Target)
				addEdge(i, b.End)
			}
		case last.Op == isa.OpEXIT:
			if !alwaysExec(last) {
				// A guarded EXIT retires only the lanes whose guard holds;
				// the rest continue at the next instruction.
				addEdge(i, b.End)
			}
		default:
			addEdge(i, b.End)
		}
	}
	return g
}

// BlockOf returns the ID of the block containing pc.
func (g *Graph) BlockOf(pc int) int { return g.blockOf[pc] }

// Entry returns the entry block ID (0), or -1 for an empty program.
func (g *Graph) Entry() int {
	if len(g.Blocks) == 0 {
		return -1
	}
	return 0
}

// Reachable returns, per block, whether it is reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the block structure, one block per line with successors —
// the textual form behind `gpudis -cfg`.
func (g *Graph) String() string {
	idom := g.Dominators()
	ipdom := g.PostDominators()
	name := func(id int) string {
		if id < 0 {
			return "-"
		}
		return fmt.Sprintf("B%d", id)
	}
	var sb strings.Builder
	for _, b := range g.Blocks {
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = name(s)
		}
		sl := strings.Join(succs, " ")
		if sl == "" {
			sl = "exit"
		}
		fmt.Fprintf(&sb, "B%-3d #%d..#%d  -> %-12s idom %-4s ipdom %s\n",
			b.ID, b.Start, b.End-1, sl, name(idom[b.ID]), name(ipdom[b.ID]))
	}
	return sb.String()
}

// Dot renders the CFG in Graphviz dot syntax, one node per basic block with
// its disassembly as the label.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", g.Prog.Name)
	for _, b := range g.Blocks {
		var label strings.Builder
		fmt.Fprintf(&label, "B%d\\n", b.ID)
		for pc := b.Start; pc < b.End; pc++ {
			ins := g.Prog.Code[pc].String()
			ins = strings.ReplaceAll(ins, `"`, `\"`)
			fmt.Fprintf(&label, "#%d %s\\l", pc, ins)
		}
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"];\n", b.ID, label.String())
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "  b%d -> b%d;\n", b.ID, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
