package flow

import (
	"fmt"

	"gpurel/internal/isa"
)

// CheckSync is the shared-memory synchronization checker. Two rules:
//
//   - smem-sync (error): a shared-memory load can observe a store issued by
//     a *different* thread with no BAR on some path in between. The rule is
//     an under-approximating prover: it flags only pairs whose addresses it
//     can resolve to affine functions of the thread id with identical
//     strides and symbolic parts and a nonzero stride-divisible constant
//     offset of at most maxSyncDist threads — a provable neighbor-class
//     collision (e.g. a stencil reading smem[tid-1] that a barrier should
//     order against the smem[tid] store). Pairs it cannot prove — loop-
//     carried offsets, multiple reaching definitions, differing symbolic
//     bases, or offsets beyond the neighbor distance (indistinguishable
//     from multi-array carve-outs like base+4*blockDim without value-range
//     information) — stay silent, so barrier-correct kernels with same-
//     thread smem reuse or packed multi-array layouts never false-positive.
//   - bar-redundant (warning): a BAR that cannot order any shared-memory
//     traffic — no LDS/STS on any path since the previous barrier (or
//     entry), or none until the next barrier (or exit). The classic double
//     barrier trips the first half.
//
// CheckSync runs as part of Lint (so kasm.Build and gpudis -lint inherit
// it); the standalone entry point lints one rule family in isolation.
func CheckSync(p *isa.Program) []Diag {
	g := Build(p)
	diags := checkSync(g, g.DefUse())
	sortDiags(diags)
	return diags
}

func checkSync(g *Graph, du *DefUse) []Diag {
	var diags []Diag
	diags = append(diags, checkSmemRaces(g, du)...)
	diags = append(diags, checkRedundantBars(g)...)
	return diags
}

// checkSmemRaces runs the unsynced-store dataflow: forward over the CFG,
// each block's in-set is the union (any-path) of store PCs that can reach
// it without crossing a BAR; a BAR kills everything, an STS adds itself,
// and an LDS is checked against every reaching store.
func checkSmemRaces(g *Graph, du *DefUse) []Diag {
	n := len(g.Prog.Code)
	nb := len(g.Blocks)
	if nb == 0 {
		return nil
	}
	newSet := func() []bool { return make([]bool, n) }
	blockIn := make([][]bool, nb)
	for i := range blockIn {
		blockIn[i] = newSet()
	}
	transfer := func(b *Block, set []bool) {
		for pc := b.Start; pc < b.End; pc++ {
			switch g.Prog.Code[pc].Op {
			case isa.OpBAR:
				for i := range set {
					set[i] = false
				}
			case isa.OpSTS:
				if !neverExec(&g.Prog.Code[pc]) {
					set[pc] = true
				}
			}
		}
	}
	scratch := newSet()
	for changed := true; changed; {
		changed = false
		for i := range g.Blocks {
			b := &g.Blocks[i]
			copy(scratch, blockIn[i])
			transfer(b, scratch)
			for _, s := range b.Succs {
				for pc, v := range scratch {
					if v && !blockIn[s][pc] {
						blockIn[s][pc] = true
						changed = true
					}
				}
			}
		}
	}

	// Final pass: at each LDS, test every reaching unsynced STS.
	var diags []Diag
	cur := newSet()
	for i := range g.Blocks {
		b := &g.Blocks[i]
		copy(cur, blockIn[i])
		for pc := b.Start; pc < b.End; pc++ {
			ins := &g.Prog.Code[pc]
			switch ins.Op {
			case isa.OpBAR:
				for j := range cur {
					cur[j] = false
				}
			case isa.OpSTS:
				if !neverExec(ins) {
					cur[pc] = true
				}
			case isa.OpLDS:
				if neverExec(ins) {
					continue
				}
				for sts := 0; sts < n; sts++ {
					if !cur[sts] || sts == pc {
						continue
					}
					if off, ok := crossThreadCollision(g, du, sts, pc); ok {
						diags = append(diags, Diag{PC: pc, Rule: RuleSmemSync, Sev: Error,
							Msg: fmt.Sprintf("shared-memory read may observe the store at #%d from another thread (tid-strided addresses %+d bytes apart) with no intervening BAR", sts, off)})
					}
				}
			}
		}
	}
	return diags
}

// maxSyncDist is the largest cross-thread distance (in threads) the
// smem-sync rule reports. Neighbor/halo exchanges — the canonical
// missing-barrier bug — sit 1-2 threads apart; constant offsets much
// larger than that are how kernels pack several logical arrays into one
// shared allocation (base + 4*blockDim), which affine forms alone cannot
// tell apart from a genuine far collision.
const maxSyncDist = 2

// crossThreadCollision proves (or fails to prove) that the store at stsPC
// and the load at ldsPC touch the same shared word from different nearby
// threads. Both addresses must resolve to affine forms c_x·tid.x +
// c_y·tid.y + syms + const with equal strides and equal symbolic parts; a
// nonzero stride-divisible constant difference of at most maxSyncDist
// threads then pins a neighbor collision. off is the byte offset (load
// minus store).
func crossThreadCollision(g *Graph, du *DefUse, stsPC, ldsPC int) (off int64, ok bool) {
	w := addrAffine(g, du, stsPC)
	r := addrAffine(g, du, ldsPC)
	if !w.ok || !r.ok || !sameShape(w, r) {
		return 0, false
	}
	d := r.c - w.c
	if d == 0 {
		// Same address per thread: same-thread reuse, not provably racy.
		return 0, false
	}
	stride := w.cx
	if stride == 0 {
		stride = w.cy
	}
	if stride == 0 || d%stride != 0 {
		return 0, false
	}
	if dist := d / stride; dist > maxSyncDist || dist < -maxSyncDist {
		return 0, false
	}
	return d, true // threads t and t + d/stride collide on one word
}

// lin is an affine form over the thread id: cx·tid.x + cy·tid.y + Σ syms +
// c. Symbolic terms are launch-uniform values (block/grid dimensions, CTA
// ids, kernel parameters) identified by their source.
type lin struct {
	cx, cy, c int64
	syms      map[symKey]int64
	ok        bool
}

// symKey identifies one launch-uniform symbolic term.
type symKey struct {
	s2r  isa.SReg // uniform special register, or
	ldc  int32    // parameter word index
	kind uint8    // 0 = s2r, 1 = ldc
}

func (l lin) addSym(k symKey, coeff int64) lin {
	if l.syms == nil {
		l.syms = map[symKey]int64{}
	}
	l.syms[k] += coeff
	if l.syms[k] == 0 {
		delete(l.syms, k)
	}
	return l
}

func linFail() lin { return lin{} }

func linConst(c int64) lin { return lin{c: c, ok: true} }

// isConst reports whether the form is a plain constant.
func (l lin) isConst() bool { return l.ok && l.cx == 0 && l.cy == 0 && len(l.syms) == 0 }

func linAdd(a, b lin, sign int64) lin {
	if !a.ok || !b.ok {
		return linFail()
	}
	out := lin{cx: a.cx + sign*b.cx, cy: a.cy + sign*b.cy, c: a.c + sign*b.c, ok: true}
	for k, v := range a.syms { //relint:allow map-order: commutative accumulation
		out = out.addSym(k, v)
	}
	for k, v := range b.syms { //relint:allow map-order: commutative accumulation
		out = out.addSym(k, sign*v)
	}
	return out
}

func linScale(a lin, m int64) lin {
	if !a.ok {
		return linFail()
	}
	out := lin{cx: a.cx * m, cy: a.cy * m, c: a.c * m, ok: true}
	for k, v := range a.syms { //relint:allow map-order: independent per-key scaling
		out = out.addSym(k, v*m)
	}
	return out
}

// sameShape reports whether two forms have identical strides and symbolic
// parts (so their difference is the constant offset alone).
func sameShape(a, b lin) bool {
	if a.cx != b.cx || a.cy != b.cy || len(a.syms) != len(b.syms) {
		return false
	}
	for k, v := range a.syms { //relint:allow map-order: pure membership comparison
		if b.syms[k] != v {
			return false
		}
	}
	return true
}

// addrAffine resolves the address expression of the LDS/STS at pc:
// R[SrcA] + Imm.
func addrAffine(g *Graph, du *DefUse, pc int) lin {
	ins := &g.Prog.Code[pc]
	base := regAffine(g, du, pc, ins.SrcA, 0)
	return linAdd(base, linConst(int64(ins.Imm)), 1)
}

// regAffine chases the single reaching definition of r at usePC through the
// affine-friendly opcode subset. Anything it cannot prove — multiple or
// guarded reaching definitions, variant specials, non-constant multipliers
// — fails, keeping the checker silent rather than wrong.
func regAffine(g *Graph, du *DefUse, usePC int, r isa.Reg, depth int) lin {
	if r == isa.RZ {
		return linConst(0)
	}
	if depth > 32 {
		return linFail()
	}
	defs := du.Defs(usePC, r)
	if len(defs) != 1 {
		return linFail()
	}
	d := &g.Prog.Code[defs[0]]
	if !alwaysExec(d) {
		return linFail()
	}
	dp := defs[0]
	operand := func(reg isa.Reg) lin { return regAffine(g, du, dp, reg, depth+1) }
	srcB := func() lin {
		if d.BImm {
			return linConst(int64(d.Imm))
		}
		return operand(d.SrcB)
	}
	switch d.Op {
	case isa.OpMOVI:
		return linConst(int64(d.Imm))
	case isa.OpMOV:
		return operand(d.SrcA)
	case isa.OpLDC:
		return linConst(0).addSym(symKey{kind: 1, ldc: d.Imm}, 1)
	case isa.OpS2R:
		switch d.Special {
		case isa.SRTidX:
			return lin{cx: 1, ok: true}
		case isa.SRTidY:
			return lin{cy: 1, ok: true}
		case isa.SRCtaIDX, isa.SRCtaIDY, isa.SRNTidX, isa.SRNTidY, isa.SRNCtaX, isa.SRNCtaY:
			return linConst(0).addSym(symKey{kind: 0, s2r: d.Special}, 1)
		}
		return linFail() // lane id and anything else: not affine in tid
	case isa.OpIADD:
		return linAdd(operand(d.SrcA), srcB(), 1)
	case isa.OpISUB:
		return linAdd(operand(d.SrcA), srcB(), -1)
	case isa.OpSHL:
		b := srcB()
		if !b.isConst() || b.c < 0 || b.c > 30 {
			return linFail()
		}
		return linScale(operand(d.SrcA), 1<<uint(b.c))
	case isa.OpIMUL:
		a, b := operand(d.SrcA), srcB()
		if a.isConst() {
			return linScale(b, a.c)
		}
		if b.isConst() {
			return linScale(a, b.c)
		}
		return linFail()
	case isa.OpISCADD:
		return linAdd(linScale(operand(d.SrcA), 1<<uint(d.Imm2)), operand(d.SrcB), 1)
	case isa.OpIMAD:
		a, b := operand(d.SrcA), srcB()
		var prod lin
		switch {
		case a.isConst():
			prod = linScale(b, a.c)
		case b.isConst():
			prod = linScale(a, b.c)
		default:
			return linFail()
		}
		return linAdd(prod, operand(d.SrcC), 1)
	}
	return linFail()
}

// checkRedundantBars flags barriers that cannot order any shared-memory
// traffic: no LDS/STS on any path from the previous barrier (or entry), or
// none on any path to the next barrier (or exit).
func checkRedundantBars(g *Graph) []Diag {
	nb := len(g.Blocks)
	if nb == 0 {
		return nil
	}
	isSmem := func(pc int) bool {
		op := g.Prog.Code[pc].Op
		return (op == isa.OpLDS || op == isa.OpSTS) && !neverExec(&g.Prog.Code[pc])
	}
	isBar := func(pc int) bool { return g.Prog.Code[pc].Op == isa.OpBAR }

	// Forward: fwd[b] = some path into block b carries a smem access since
	// the last BAR. Any-path (OR) merge.
	fwd := make([]bool, nb)
	for changed := true; changed; {
		changed = false
		for i := range g.Blocks {
			b := &g.Blocks[i]
			flag := fwd[i]
			for pc := b.Start; pc < b.End; pc++ {
				if isBar(pc) {
					flag = false
				} else if isSmem(pc) {
					flag = true
				}
			}
			for _, s := range b.Succs {
				if flag && !fwd[s] {
					fwd[s] = true
					changed = true
				}
			}
		}
	}
	// Backward: bwd[b] = some path out of block b reaches a smem access
	// before the next BAR.
	bwd := make([]bool, nb)
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := &g.Blocks[i]
			flag := false
			for _, s := range b.Succs {
				if bwd[s] {
					flag = true
				}
			}
			for pc := b.End - 1; pc >= b.Start; pc-- {
				if isBar(pc) {
					flag = false
				} else if isSmem(pc) {
					flag = true
				}
			}
			if flag && !bwd[i] {
				bwd[i] = true
				changed = true
			}
		}
	}

	var diags []Diag
	for i := range g.Blocks {
		b := &g.Blocks[i]
		before := fwd[i]
		for pc := b.Start; pc < b.End; pc++ {
			if isSmem(pc) {
				before = true
				continue
			}
			if !isBar(pc) {
				continue
			}
			// after: smem reachable from the successor position of this BAR
			// before the next BAR.
			after := false
			for p2 := pc + 1; p2 < b.End && !after; p2++ {
				if isBar(p2) {
					break
				}
				if isSmem(p2) {
					after = true
				}
			}
			if !after && !barBlocksAfter(g, b, pc) {
				for _, s := range b.Succs {
					if bwd[s] {
						after = true
						break
					}
				}
			}
			switch {
			case !before:
				diags = append(diags, Diag{PC: pc, Rule: RuleBarRedundant, Sev: Warn,
					Msg: "BAR orders nothing: no shared-memory access on any path since the previous barrier"})
			case !after:
				diags = append(diags, Diag{PC: pc, Rule: RuleBarRedundant, Sev: Warn,
					Msg: "BAR orders nothing: no shared-memory access on any path before the next barrier"})
			}
			before = false
		}
	}
	return diags
}

// barBlocksAfter reports whether another BAR follows pc inside its block —
// in that case the successor blocks' backward flags do not apply to pc.
func barBlocksAfter(g *Graph, b *Block, pc int) bool {
	for p := pc + 1; p < b.End; p++ {
		if g.Prog.Code[p].Op == isa.OpBAR {
			return true
		}
	}
	return false
}
