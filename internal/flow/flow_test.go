package flow_test

import (
	"strings"
	"testing"

	"gpurel/internal/flow"
	"gpurel/internal/isa"
)

// prog builds a Program directly from instructions; NumRegs is sized to the
// highest register mentioned unless overridden.
func prog(numRegs int, code ...isa.Instr) *isa.Program {
	return &isa.Program{Name: "t", Code: code, NumRegs: numRegs}
}

func mov(dst isa.Reg, src isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.OpMOV, Dst: dst, SrcA: src}
}

func movi(dst isa.Reg, v int32) isa.Instr {
	return isa.Instr{Op: isa.OpMOVI, Dst: dst, Imm: v}
}

func iadd(dst, a, b isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.OpIADD, Dst: dst, SrcA: a, SrcB: b}
}

func bra(target, reconv int, p isa.Pred, neg bool) isa.Instr {
	return isa.Instr{Op: isa.OpBRA, Target: target, Reconv: reconv, Pred: p, PredNeg: neg}
}

func exit() isa.Instr { return isa.Instr{Op: isa.OpEXIT} }

// diamond is the canonical if/else shape:
//
//	#0 MOVI R0, 1
//	#1 ISETP P0 = R0 < R0
//	#2 @!P0 BRA #5 (reconv #6)
//	#3 MOVI R1, 2     ; then
//	#4 BRA #6 (reconv #6)
//	#5 MOVI R1, 3     ; else
//	#6 STG [R0], R1
//	#7 EXIT
func diamond() *isa.Program {
	return prog(4,
		movi(1, 1),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, SrcB: 1},
		bra(5, 6, isa.P0, true),
		movi(2, 2),
		bra(6, 6, isa.PT, false),
		movi(2, 3),
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 2},
		exit(),
	)
}

func TestCFGDiamond(t *testing.T) {
	g := flow.Build(diamond())
	// B0=[#0..#2] header, B1=[#3..#4] then, B2=[#5] else, B3=[#6..#7] join.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4:\n%s", len(g.Blocks), g)
	}
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, b := range g.Blocks {
		if len(b.Succs) != len(wantSuccs[i]) {
			t.Errorf("B%d succs = %v, want %v", i, b.Succs, wantSuccs[i])
			continue
		}
		for j, s := range wantSuccs[i] {
			if b.Succs[j] != s {
				t.Errorf("B%d succs = %v, want %v", i, b.Succs, wantSuccs[i])
				break
			}
		}
	}
	if got := g.BlockOf(6); got != 3 {
		t.Errorf("BlockOf(6) = %d, want 3", got)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := flow.Build(diamond())
	idom := g.Dominators()
	// Both legs and the join are dominated by the header B0 only.
	want := []int{-1, 0, 0, 0}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[B%d] = %d, want %d\n%s", i, idom[i], w, g)
		}
	}
	ipdom := g.PostDominators()
	// The join block B3 post-dominates both legs and the header.
	wantP := []int{3, 3, 3, -1}
	for i, w := range wantP {
		if ipdom[i] != w {
			t.Errorf("ipdom[B%d] = %d, want %d", i, ipdom[i], w)
		}
	}
	if !flow.Dominates(idom, 0, 3) {
		t.Error("entry should dominate exit block")
	}
	if flow.Dominates(idom, 1, 3) {
		t.Error("then-leg must not dominate the join")
	}
}

func TestLivenessDiamond(t *testing.T) {
	p := diamond()
	lv := flow.Build(p).Liveness()
	// R1 (addr) and R2 (value) are live into the STG at #6.
	in := lv.In(6)
	if !in.Has(1) || !in.Has(2) {
		t.Errorf("In(6) = %v, want R1 and R2 live", in.Regs())
	}
	// Before #0, nothing is live: R1 is must-defined at #0 first.
	if got := lv.In(0).Regs(); len(got) != 0 {
		t.Errorf("In(0) = %v, want empty", got)
	}
	// R2 is live out of the then-def #3 (read at #6).
	if !lv.Out(3).Has(2) {
		t.Errorf("Out(3) should contain R2")
	}
}

func TestPredicatedWriteDoesNotKill(t *testing.T) {
	// #0 MOVI R1, 7
	// #1 @P0 MOVI R1, 9   ; guarded: may not land on every lane
	// #2 STG [R1], R1
	// #3 EXIT
	p := prog(2,
		movi(1, 7),
		isa.Instr{Op: isa.OpMOVI, Dst: 1, Imm: 9, Pred: isa.P0},
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 1},
		exit(),
	)
	lv := flow.Build(p).Liveness()
	// R1 must be live across the guarded write: lanes where P0 is false still
	// read the value from #0.
	if !lv.In(1).Has(1) {
		t.Errorf("In(1) = %v, want R1 live across the predicated write", lv.In(1).Regs())
	}
}

func TestAlwaysDead(t *testing.T) {
	// R3 is written but never read anywhere -> statically dead. R1, R2 are
	// used. R0 is never mentioned -> dead.
	p := prog(4,
		movi(1, 1),
		movi(3, 99),
		mov(2, 1),
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 2},
		exit(),
	)
	dead := flow.AlwaysDead(p)
	want := []bool{true, false, false, true}
	for r, w := range want {
		if dead[r] != w {
			t.Errorf("dead[R%d] = %v, want %v", r, dead[r], w)
		}
	}
}

func TestDefUseChains(t *testing.T) {
	p := diamond()
	du := flow.Build(p).DefUse()
	// The then-def (#3) and else-def (#5) of R2 both reach the STG use at #6.
	defs := du.Defs(6, 2)
	if len(defs) != 2 || !(defs[0] == 3 && defs[1] == 5 || defs[0] == 5 && defs[1] == 3) {
		t.Errorf("Defs(6, R2) = %v, want {3, 5}", defs)
	}
	if got := du.Uses(3); len(got) != 1 || got[0] != 6 {
		t.Errorf("Uses(3) = %v, want [6]", got)
	}
	// R1's def at #0 reaches #1, #2 is a branch (no reg uses), #6 addr use.
	if got := du.Uses(0); len(got) != 2 {
		t.Errorf("Uses(0) = %v, want two uses (#1 and #6)", got)
	}
}

func TestMaybeUndef(t *testing.T) {
	// R2 defined only on the then-leg; the join reads it on both paths.
	p := prog(4,
		movi(1, 1),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, SrcB: 1},
		bra(4, 4, isa.P0, true), // skip the then-leg when !P0
		movi(2, 5),              // then only
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 2}, // join: R2 maybe-undef
		exit(),
	)
	du := flow.Build(p).DefUse()
	if !du.MaybeUndef(4).Has(2) {
		t.Error("R2 should be maybe-undef at the join")
	}
	if du.MaybeUndef(4).Has(1) {
		t.Error("R1 is defined on every path; must not be maybe-undef")
	}
}

func TestVariance(t *testing.T) {
	// R0 = tid (variant), R1 = constant (uniform), R2 = R0+R1 (variant),
	// P0 = R2 < R1 (variant), P1 = R1 < R1 (uniform).
	p := prog(4,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRTidX},
		movi(1, 10),
		iadd(2, 0, 1),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 2, SrcB: 1},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P1, Cmp: isa.CmpLT, SrcA: 1, SrcB: 1},
		exit(),
	)
	v := flow.Build(p).Variance()
	for r, want := range []bool{true, false, true} {
		if got := v.VariantReg(isa.Reg(r)); got != want {
			t.Errorf("VariantReg(R%d) = %v, want %v", r, got, want)
		}
	}
	if !v.VariantPredAt(5, isa.P0) {
		t.Error("P0 derives from tid; should be variant")
	}
	if v.VariantPredAt(5, isa.P1) {
		t.Error("P1 derives from constants; should be uniform")
	}
}

func TestVarianceCtaUniform(t *testing.T) {
	// CTA index is uniform within a warp (all lanes share the CTA).
	p := prog(2,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRCtaIDX},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 0, SrcB: 0},
		exit(),
	)
	v := flow.Build(p).Variance()
	if v.VariantReg(0) || v.VariantPredAt(2, isa.P0) {
		t.Error("CTA-index-derived values must be warp-uniform")
	}
}

func diagRules(diags []flow.Diag) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

func hasRule(diags []flow.Diag, rule string, pc int) bool {
	for _, d := range diags {
		if d.Rule == rule && d.PC == pc {
			return true
		}
	}
	return false
}

func TestLintCleanProgram(t *testing.T) {
	if diags := flow.Lint(diamond()); len(diags) != 0 {
		t.Fatalf("clean program flagged: %v", diags)
	}
}

func TestLintStructural(t *testing.T) {
	p := prog(2,
		isa.Instr{Op: isa.Op(250)}, // bad opcode
		bra(99, 0, isa.P0, false),  // escaped target
		movi(7, 0),                 // reg >= NumRegs
		isa.Instr{Op: isa.OpMOV, Dst: 1, SrcA: 0, Pred: isa.Pred(9)}, // bad pred
		movi(1, 0), // not EXIT at the end
	)
	diags := flow.Lint(p)
	for _, want := range []struct {
		rule string
		pc   int
	}{
		{flow.RuleBadOpcode, 0},
		{flow.RuleBadBranch, 1},
		{flow.RuleRegOverflow, 2},
		{flow.RuleBadPred, 3},
		{flow.RuleMissingExit, 4},
	} {
		if !hasRule(diags, want.rule, want.pc) {
			t.Errorf("missing %s at #%d in %v", want.rule, want.pc, diagRules(diags))
		}
	}
	if !flow.HasErrors(diags) {
		t.Error("structural defects must be errors")
	}
}

func TestLintUninitRead(t *testing.T) {
	p := prog(4,
		movi(1, 1),
		iadd(2, 1, 3), // R3 never written
		isa.Instr{Op: isa.OpSTG, SrcA: 2, SrcB: 1},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleUninitRead, 1) {
		t.Fatalf("R3 read-before-def not flagged: %v", diags)
	}
}

func TestLintUninitAddressRead(t *testing.T) {
	// Loading through a never-defined address register gets the pointed
	// message naming the op.
	p := prog(4,
		isa.Instr{Op: isa.OpLDG, Dst: 1, SrcA: 3},
		isa.Instr{Op: isa.OpSTG, SrcA: 3, SrcB: 1},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleUninitRead, 0) {
		t.Fatalf("uninitialized address not flagged: %v", diags)
	}
	found := false
	for _, d := range diags {
		if d.PC == 0 && strings.Contains(d.Msg, "address register R3") {
			found = true
		}
	}
	if !found {
		t.Errorf("address-register message missing: %v", diags)
	}
}

func TestLintDeadWrite(t *testing.T) {
	p := prog(4,
		movi(1, 1),
		movi(3, 42), // dead: R3 never read
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 1},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleDeadWrite, 1) {
		t.Fatalf("dead write not flagged: %v", diags)
	}
}

func TestLintOverwrittenWriteIsDead(t *testing.T) {
	// A def killed by an unguarded redefinition before any use is dead too.
	p := prog(4,
		movi(1, 1),
		movi(1, 2),
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 1},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleDeadWrite, 0) {
		t.Fatalf("overwritten write not flagged: %v", diags)
	}
	if hasRule(diags, flow.RuleDeadWrite, 1) {
		t.Fatalf("live write wrongly flagged: %v", diags)
	}
}

func TestLintUnreachable(t *testing.T) {
	p := prog(2,
		movi(1, 1),
		bra(3, 3, isa.PT, false), // unconditional jump over #2
		movi(1, 2),               // unreachable
		isa.Instr{Op: isa.OpSTG, SrcA: 1, SrcB: 1},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleUnreachable, 2) {
		t.Fatalf("unreachable block not flagged: %v", diags)
	}
}

func TestLintBarDivergence(t *testing.T) {
	// tid-guarded branch around a BAR: classic divergent-barrier hang.
	p := prog(4,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRTidX},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 0, BImm: true, Imm: 16},
		bra(4, 4, isa.P0, true), // @!P0 skip
		isa.Instr{Op: isa.OpBAR},
		exit(),
	)
	diags := flow.Lint(p)
	if !hasRule(diags, flow.RuleBarDiverge, 3) {
		t.Fatalf("divergent barrier not flagged: %v", diags)
	}
	for _, d := range diags {
		if d.Rule == flow.RuleBarDiverge && d.Sev != flow.Warn {
			t.Errorf("bar-divergence must be warning-severity, got %v", d.Sev)
		}
	}
}

func TestLintUniformBarNotFlagged(t *testing.T) {
	// Same shape, but the guard derives from the CTA index: uniform within
	// the warp, so every lane takes the same leg.
	p := prog(4,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRCtaIDX},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 0, BImm: true, Imm: 16},
		bra(4, 4, isa.P0, true),
		isa.Instr{Op: isa.OpBAR},
		exit(),
	)
	for _, d := range flow.Lint(p) {
		if d.Rule == flow.RuleBarDiverge {
			t.Fatalf("uniform-guard barrier wrongly flagged: %v", d)
		}
	}
}

func TestLintPredReuseNotFlagged(t *testing.T) {
	// The SCP/NW reduction shape: a uniform loop guard shares its predicate
	// register with a later tid-dependent compare. Per-definition predicate
	// variance must keep the loop head uniform — a flow-insensitive bit would
	// flag the barrier and poison every shipped reduction kernel.
	//
	// #0 S2R R0, SR_TID.X
	// #1 MOVI R1, 32            ; stride
	// #2 ISETP P0 = R1 > 0      ; uniform loop guard
	// #3 @!P0 BRA #8 (reconv 8)
	// #4 BAR                    ; safe: warp re-formed at loop head
	// #5 SHR R1 = R1 >> 1
	// #6 BRA #2 (reconv 8)
	// #7 NOP                    ; unreachable filler (skipped by backedge)
	// #8 ISETP P0 = R0 == 0     ; variant reuse of P0, after the loop
	// #9 EXIT
	p := prog(2,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRTidX},
		movi(1, 32),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpGT, SrcA: 1, BImm: true, Imm: 0},
		bra(8, 8, isa.P0, true),
		isa.Instr{Op: isa.OpBAR},
		isa.Instr{Op: isa.OpSHR, Dst: 1, SrcA: 1, BImm: true, Imm: 1},
		bra(2, 8, isa.PT, false),
		isa.Instr{Op: isa.OpNOP},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpEQ, SrcA: 0, BImm: true, Imm: 0},
		exit(),
	)
	for _, d := range flow.Lint(p) {
		if d.Rule == flow.RuleBarDiverge {
			t.Fatalf("uniform loop guard poisoned by predicate reuse: %v", d)
		}
	}
	v := flow.Build(p).Variance()
	if v.VariantPredAt(3, isa.P0) {
		t.Error("loop-head P0 must be uniform (only the uniform def reaches #3)")
	}
	if !v.VariantPredAt(9, isa.P0) {
		t.Error("post-loop P0 must be variant (tid def reaches #9)")
	}
}

func TestLintBarAfterReconvNotFlagged(t *testing.T) {
	// A BAR at the reconvergence point is safe: the warp has re-formed.
	p := prog(4,
		isa.Instr{Op: isa.OpS2R, Dst: 0, Special: isa.SRTidX},
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 0, BImm: true, Imm: 16},
		bra(4, 4, isa.P0, true),
		movi(1, 1),               // divergent region
		isa.Instr{Op: isa.OpBAR}, // reconverged
		exit(),
	)
	for _, d := range flow.Lint(p) {
		if d.Rule == flow.RuleBarDiverge {
			t.Fatalf("post-reconvergence barrier wrongly flagged: %v", d)
		}
	}
}

func TestLintDiagStringStable(t *testing.T) {
	d := flow.Diag{PC: 3, Rule: flow.RuleDeadWrite, Sev: flow.Error, Msg: "R1 is written here but the value is never read"}
	want := "#3 error dead-write: R1 is written here but the value is never read"
	if got := d.String(); got != want {
		t.Errorf("Diag.String() = %q, want %q", got, want)
	}
}

func TestLoopLiveness(t *testing.T) {
	// while (R1 < 10) { R1++ }  — R1 live around the backedge.
	//
	// #0 MOVI R1, 0
	// #1 ISETP P0 = R1 < 10
	// #2 @!P0 BRA #5 (exit loop, reconv #5)
	// #3 IADD R1 = R1 + 1    (BImm)
	// #4 BRA #1 (backedge)
	// #5 EXIT
	p := prog(2,
		movi(1, 0),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpLT, SrcA: 1, BImm: true, Imm: 10},
		bra(5, 5, isa.P0, true),
		isa.Instr{Op: isa.OpIADD, Dst: 1, SrcA: 1, BImm: true, Imm: 1},
		bra(1, 5, isa.PT, false),
		exit(),
	)
	g := flow.Build(p)
	lv := g.Liveness()
	if !lv.In(1).Has(1) || !lv.Out(3).Has(1) {
		t.Error("loop counter must stay live around the backedge")
	}
	if diags := flow.Lint(p); len(diags) != 0 {
		t.Errorf("well-formed loop flagged: %v", diags)
	}
	dead := flow.AlwaysDead(p)
	if dead[1] {
		t.Error("loop counter cannot be statically dead")
	}
	if !dead[0] {
		t.Error("R0 is unmentioned and must be statically dead")
	}
}

func TestCFGStringAndDot(t *testing.T) {
	g := flow.Build(diamond())
	s := g.String()
	if !strings.Contains(s, "B0") || !strings.Contains(s, "idom") {
		t.Errorf("String() missing structure:\n%s", s)
	}
	dot := g.Dot()
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "b0 -> b1") && !strings.Contains(dot, "b0 -> b3") {
		t.Errorf("Dot() missing edges:\n%s", dot)
	}
}

func TestEmptyProgram(t *testing.T) {
	p := prog(1)
	diags := flow.Lint(p)
	if len(diags) != 1 || diags[0].Rule != flow.RuleMissingExit {
		t.Fatalf("empty program: %v", diags)
	}
	g := flow.Build(p)
	if len(g.Blocks) != 0 {
		t.Fatal("empty program should have no blocks")
	}
	g.Liveness()
	g.DefUse()
	g.Dominators()
	g.PostDominators()
}
