package flow

import "gpurel/internal/isa"

// RegSet is a bitset over the architectural general-purpose registers
// R0..R255. RZ is never a member (it is not storage).
type RegSet [4]uint64

func regIndex(r isa.Reg) (int, bool) {
	if r == isa.RZ || int(r) > isa.MaxRegs {
		return 0, false
	}
	return int(r), true
}

func (s *RegSet) add(r isa.Reg) {
	if i, ok := regIndex(r); ok {
		s[i>>6] |= 1 << (i & 63)
	}
}

func (s *RegSet) remove(r isa.Reg) {
	if i, ok := regIndex(r); ok {
		s[i>>6] &^= 1 << (i & 63)
	}
}

// Has reports whether the register is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	i, ok := regIndex(r)
	return ok && s[i>>6]&(1<<(i&63)) != 0
}

// union sets s |= t and reports whether s changed.
func (s *RegSet) union(t RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Regs lists the members in ascending order.
func (s RegSet) Regs() []isa.Reg {
	var out []isa.Reg
	for w := 0; w < len(s); w++ {
		for bits := s[w]; bits != 0; bits &= bits - 1 {
			tz := 0
			for b := bits; b&1 == 0; b >>= 1 {
				tz++
			}
			out = append(out, isa.Reg(w*64+tz))
		}
	}
	return out
}

// uses appends the GPR sources the instruction may read at runtime. A
// constant-false guard (@!PT) means the instruction never executes and so
// never reads.
func uses(ins *isa.Instr, dst []isa.Reg) []isa.Reg {
	if neverExec(ins) {
		return dst
	}
	return ins.SrcRegs(dst)
}

// def returns the GPR the instruction writes (ok=false when it writes none
// or can never execute), and whether the write is a *must* write — an
// unguarded write that overwrites the old value on every lane, killing
// liveness. Guarded writes may leave the old value intact on some lanes, so
// they define without killing.
func def(ins *isa.Instr) (r isa.Reg, ok, must bool) {
	if neverExec(ins) || !ins.Writing() {
		return 0, false, false
	}
	return ins.Dst, true, alwaysExec(ins)
}

// Liveness holds per-PC live-register sets: In(pc) is live just before the
// instruction executes, Out(pc) just after. A register is live when some
// path from that point reads it before any unguarded overwrite.
type Liveness struct {
	g   *Graph
	in  []RegSet // per pc
	out []RegSet // per pc
}

// Liveness runs backward liveness to fixpoint over the CFG.
func (g *Graph) Liveness() *Liveness {
	n := len(g.Prog.Code)
	lv := &Liveness{g: g, in: make([]RegSet, n), out: make([]RegSet, n)}
	nb := len(g.Blocks)
	if nb == 0 {
		return lv
	}

	// Block-level fixpoint on live-in sets.
	blockIn := make([]RegSet, nb)
	var scratch []isa.Reg
	transfer := func(b *Block, live RegSet) RegSet {
		for pc := b.End - 1; pc >= b.Start; pc-- {
			ins := &g.Prog.Code[pc]
			if r, ok, must := def(ins); ok && must {
				live.remove(r)
			}
			scratch = uses(ins, scratch[:0])
			for _, r := range scratch {
				live.add(r)
			}
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := &g.Blocks[i]
			var liveOut RegSet
			for _, s := range b.Succs {
				liveOut.union(blockIn[s])
			}
			in := transfer(b, liveOut)
			if blockIn[i].union(in) {
				changed = true
			}
		}
	}

	// Final per-PC pass.
	for i := range g.Blocks {
		b := &g.Blocks[i]
		var live RegSet
		for _, s := range b.Succs {
			live.union(blockIn[s])
		}
		for pc := b.End - 1; pc >= b.Start; pc-- {
			lv.out[pc] = live
			ins := &g.Prog.Code[pc]
			if r, ok, must := def(ins); ok && must {
				live.remove(r)
			}
			scratch = uses(ins, scratch[:0])
			for _, r := range scratch {
				live.add(r)
			}
			lv.in[pc] = live
		}
	}
	return lv
}

// In returns the registers live immediately before pc.
func (l *Liveness) In(pc int) RegSet { return l.in[pc] }

// Out returns the registers live immediately after pc.
func (l *Liveness) Out(pc int) RegSet { return l.out[pc] }

// AlwaysDead returns, per architectural register R0..NumRegs-1, whether the
// register is statically dead at every program point: no instruction
// anywhere (reachable or not — deliberately conservative) can observe a
// value stored in it. A bit flip in such a register can never change
// architecturally correct execution, so an injection there is provably
// Masked — the static counterpart of the dynamic liveness map in
// internal/ace, and always a subset of it.
func (l *Liveness) AlwaysDead() []bool {
	dead := make([]bool, l.g.Prog.NumRegs)
	for i := range dead {
		dead[i] = true
	}
	for pc := range l.in {
		for _, r := range l.in[pc].Regs() {
			if int(r) < len(dead) {
				dead[r] = false
			}
		}
	}
	return dead
}

// AlwaysDead is the convenience form: CFG + liveness + dead-set in one call.
func AlwaysDead(p *isa.Program) []bool {
	return Build(p).Liveness().AlwaysDead()
}
