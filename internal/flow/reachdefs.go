package flow

import "gpurel/internal/isa"

// DefUse holds reaching-definition results: which writes can supply the
// value read by each use, and the dual def→uses chains. It also tracks the
// synthetic "entry" definition, whose reach at a use means the register may
// still hold its undefined power-on value there.
type DefUse struct {
	g *Graph

	defPC  []int   // def id -> pc
	defOf  []int   // pc -> def id, -1 when the instruction defines nothing
	uses   [][]int // def id -> sorted use pcs
	defsAt [][]int // pc -> reaching def ids for each source reg read there

	undefIn []RegSet // per pc: regs with a def-free path from entry
}

// defSet is a bitset over definition IDs.
type defSet = blockSet

// DefUse computes reaching definitions and def-use chains to fixpoint.
func (g *Graph) DefUse() *DefUse {
	n := len(g.Prog.Code)
	du := &DefUse{
		g:       g,
		defOf:   make([]int, n),
		defsAt:  make([][]int, n),
		undefIn: make([]RegSet, n),
	}

	// Number the definitions.
	for pc := range g.Prog.Code {
		du.defOf[pc] = -1
		if r, ok, _ := def(&g.Prog.Code[pc]); ok {
			if _, inRange := regIndex(r); inRange {
				du.defOf[pc] = len(du.defPC)
				du.defPC = append(du.defPC, pc)
			}
		}
	}
	nd := len(du.defPC)
	du.uses = make([][]int, nd)
	nb := len(g.Blocks)
	if nb == 0 {
		return du
	}

	// defsOfReg[r] lists def ids writing register r, for kill sets.
	defsOfReg := map[isa.Reg][]int{}
	for id, pc := range du.defPC {
		defsOfReg[g.Prog.Code[pc].Dst] = append(defsOfReg[g.Prog.Code[pc].Dst], id)
	}

	// Forward fixpoint on block-in sets. undef tracks registers that still
	// have a def-free path from the entry; a textual write (guarded or not)
	// removes the register from undef — path-sensitivity on guards is out of
	// scope, so guarded writes count as initialisation.
	blockIn := make([]defSet, nb)
	undefBlockIn := make([]RegSet, nb)
	for i := range blockIn {
		blockIn[i] = newBlockSet(nd)
	}
	var allRegs RegSet
	for r := 0; r < g.Prog.NumRegs && r <= isa.MaxRegs; r++ {
		allRegs.add(isa.Reg(r))
	}
	undefBlockIn[0] = allRegs

	transfer := func(b *Block, in defSet, undef RegSet) (defSet, RegSet) {
		out := newBlockSet(nd)
		copy(out, in)
		for pc := b.Start; pc < b.End; pc++ {
			ins := &g.Prog.Code[pc]
			if r, ok, must := def(ins); ok {
				if must {
					for _, k := range defsOfReg[r] {
						out[k>>6] &^= 1 << (k & 63)
					}
				}
				if id := du.defOf[pc]; id >= 0 {
					out.add(id)
				}
				undef.remove(r)
			}
		}
		return out, undef
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < nb; i++ {
			b := &g.Blocks[i]
			in := newBlockSet(nd)
			var undef RegSet
			if i == 0 {
				undef = allRegs
			}
			for _, p := range b.Preds {
				po, pu := transfer(&g.Blocks[p], blockIn[p], undefBlockIn[p])
				for w := range in {
					in[w] |= po[w]
				}
				undef.union(pu)
			}
			for w := range blockIn[i] {
				if blockIn[i][w]|in[w] != blockIn[i][w] {
					blockIn[i][w] |= in[w]
					changed = true
				}
			}
			if undefBlockIn[i].union(undef) {
				changed = true
			}
		}
	}

	// Per-PC pass: record undef-in, reaching defs per use, and def→uses.
	var scratch []isa.Reg
	for i := range g.Blocks {
		b := &g.Blocks[i]
		cur := newBlockSet(nd)
		copy(cur, blockIn[i])
		undef := undefBlockIn[i]
		for pc := b.Start; pc < b.End; pc++ {
			ins := &g.Prog.Code[pc]
			du.undefIn[pc] = undef
			scratch = uses(ins, scratch[:0])
			for _, r := range scratch {
				for _, id := range defsOfReg[r] {
					if cur.has(id) {
						du.defsAt[pc] = append(du.defsAt[pc], id)
						du.uses[id] = appendUnique(du.uses[id], pc)
					}
				}
			}
			if r, ok, must := def(ins); ok {
				if must {
					for _, k := range defsOfReg[r] {
						cur[k>>6] &^= 1 << (k & 63)
					}
				}
				if id := du.defOf[pc]; id >= 0 {
					cur.add(id)
				}
				undef.remove(r)
			}
		}
	}
	return du
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Uses returns the PCs whose reads the definition at defPC can reach, or nil
// when the instruction defines nothing or the value is never read.
func (d *DefUse) Uses(defPC int) []int {
	id := d.defOf[defPC]
	if id < 0 {
		return nil
	}
	return d.uses[id]
}

// Defs returns the PCs of the definitions of r that reach the use at usePC.
func (d *DefUse) Defs(usePC int, r isa.Reg) []int {
	var out []int
	for _, id := range d.defsAt[usePC] {
		pc := d.defPC[id]
		if d.g.Prog.Code[pc].Dst == r {
			out = appendUnique(out, pc)
		}
	}
	return out
}

// MaybeUndef returns the registers that, just before pc, may still hold
// their undefined initial value: some path from the entry reaches pc without
// any textual write to the register.
func (d *DefUse) MaybeUndef(pc int) RegSet { return d.undefIn[pc] }
