package flow

import (
	"fmt"
	"math/bits"
	"sort"

	"gpurel/internal/isa"
)

// This file is the cycle-interval ACE engine: it turns the deterministic
// scheduler's execution order into per-physical-register and per-shared-
// memory-word dead/live intervals, and derives static AVF bounds from them.
//
// The Recorder implements sim.SchedTracer structurally (the signatures use
// only basic types and *isa.Program), so flow stays decoupled from sim. Per
// issued instruction it applies the instruction's *static* effects — source
// registers read, destination killed, shared-memory words read or
// overwritten — to the lanes of the post-predication active mask, which
// makes the intervals reconvergence- and predication-aware: a lane outside
// the mask executed nothing and gets no events.
//
// Interval semantics match ace.Liveness (and the injector's hook position):
// a value's live interval (Lo, Hi] marks injection cycles c with
// Lo < c <= Hi as observable; everything outside every live interval of an
// allocated site is provably dead — the corrupted value is overwritten or
// deallocated before anything reads it. Like the ace tracer, allocation
// kills leftover values of the previous occupant, which is sound for
// kernels that never consume uninitialized state (flow.Lint's uninit-read
// rule enforces this for registers; shipped kernels write shared memory
// before reading it).
//
// Shared memory is tracked at two granularities per allocated block:
// LDS/STS addresses are register-held in general, so an LDS with an unknown
// address conservatively reads the whole block, while RZ-based addresses
// (addr = Imm) read or overwrite exactly one word. An unknown-address STS
// kills nothing (the overwritten word is unknown).

// Recorder accumulates scheduled-trace events. Create with NewRecorder,
// pass as sim.Options.SchedTrace on a fault-free run, then call Finalize.
type Recorder struct {
	effects map[*isa.Program]*progEffects
	ctas    map[int]*ctaRec
	sms     []*smRecord
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		effects: map[*isa.Program]*progEffects{},
		ctas:    map[int]*ctaRec{},
	}
}

// Iv is a live interval: injections at cycles c with Lo < c <= Hi can reach
// a future read of the stored value.
type Iv struct{ Lo, Hi int64 }

// Blk is a contiguous allocated region of a storage array (registers or
// shared-memory bytes), mirroring sim.RFBlock.
type Blk struct{ Base, Size int }

// track is one site's recording state: the cycle of the most recent event
// and the merged live intervals so far.
type track struct {
	last int64
	ivs  []Iv
}

// read exposes the stored value: any injection after the previous event and
// at or before this read would have been consumed.
func (t *track) read(cycle int64) {
	if cycle > t.last {
		if n := len(t.ivs); n > 0 && t.ivs[n-1].Hi == t.last {
			t.ivs[n-1].Hi = cycle
		} else {
			t.ivs = append(t.ivs, Iv{Lo: t.last, Hi: cycle})
		}
		t.last = cycle
	}
}

// live reports whether an injection at cycle lands inside a live interval.
func (t *track) live(cycle int64) bool {
	i := sort.Search(len(t.ivs), func(i int) bool { return t.ivs[i].Hi >= cycle })
	return i < len(t.ivs) && t.ivs[i].Lo < cycle
}

// span is one CTA's allocated region with its visibility window
// (release = -1 while open).
type span struct {
	base, size     int
	alloc, release int64
}

// smemSpan is one CTA's shared-memory block: the span, a block-level track
// fed by unknown-address reads, and (lazily) per-word tracks fed by
// known-address accesses.
type smemSpan struct {
	span
	block track
	words []track // nil until the first known-address access
}

func (s *smemSpan) ensureWords() {
	if s.words == nil {
		s.words = make([]track, s.size/4)
		for i := range s.words {
			s.words[i].last = s.alloc
		}
	}
}

// smRecord is the per-SM recording state.
type smRecord struct {
	regs    []track // per physical register
	rfSpans []span  // CTA placement order
	rfOpen  map[int]int
	smSpans []*smemSpan // CTA placement order
}

// ctaRec is one resident CTA's placement, keyed by the tracer's CTA id.
type ctaRec struct {
	sm, rfBase, smBase, threads int
	eff                         *progEffects
	rfSpan                      int       // index into sms[sm].rfSpans, -1 if rfSize == 0
	smem                        *smemSpan // nil if smSize == 0
}

// pcEffect is the static effect of one instruction: registers read,
// register killed, and shared-memory access shape.
type pcEffect struct {
	reads     []isa.Reg
	kill      isa.Reg
	hasKill   bool
	smemRead  bool
	smemWrite bool
	addrKnown bool // SrcA == RZ: every lane accesses word addrImm
	addrImm   int32
}

type progEffects struct {
	numRegs int
	pcs     []pcEffect
}

func (r *Recorder) effectsOf(p *isa.Program) *progEffects {
	if e, ok := r.effects[p]; ok {
		return e
	}
	e := &progEffects{numRegs: p.NumRegs, pcs: make([]pcEffect, len(p.Code))}
	var srcs []isa.Reg
	for pc := range p.Code {
		ins := &p.Code[pc]
		pe := &e.pcs[pc]
		srcs = ins.SrcRegs(srcs[:0])
		for _, s := range srcs {
			if s != isa.RZ && int(s) < p.NumRegs {
				pe.reads = append(pe.reads, s)
			}
		}
		if ins.Writing() && int(ins.Dst) < p.NumRegs {
			pe.kill, pe.hasKill = ins.Dst, true
		}
		switch ins.Op {
		case isa.OpLDS:
			pe.smemRead = true
		case isa.OpSTS:
			pe.smemWrite = true
		}
		if (pe.smemRead || pe.smemWrite) && ins.SrcA == isa.RZ {
			pe.addrKnown, pe.addrImm = true, ins.Imm
		}
	}
	r.effects[p] = e
	return e
}

func (r *Recorder) sm(id int) *smRecord {
	for len(r.sms) <= id {
		r.sms = append(r.sms, &smRecord{rfOpen: map[int]int{}})
	}
	return r.sms[id]
}

// OnCTAPlace implements the sim.SchedTracer shape.
func (r *Recorder) OnCTAPlace(cta, sm, rfBase, rfSize, smBase, smSize, threads int, prog *isa.Program, cycle int64) {
	s := r.sm(sm)
	rec := &ctaRec{sm: sm, rfBase: rfBase, smBase: smBase, threads: threads, eff: r.effectsOf(prog), rfSpan: -1}
	if rfSize > 0 {
		for len(s.regs) < rfBase+rfSize {
			s.regs = append(s.regs, track{})
		}
		rec.rfSpan = len(s.rfSpans)
		s.rfOpen[rfBase] = rec.rfSpan
		s.rfSpans = append(s.rfSpans, span{base: rfBase, size: rfSize, alloc: cycle, release: -1})
		// Allocation kills leftover values of the previous occupant.
		for i := rfBase; i < rfBase+rfSize; i++ {
			s.regs[i].last = cycle
		}
	}
	if smSize > 0 {
		rec.smem = &smemSpan{span: span{base: smBase, size: smSize, alloc: cycle, release: -1}}
		rec.smem.block.last = cycle
		s.smSpans = append(s.smSpans, rec.smem)
	}
	r.ctas[cta] = rec
}

// OnIssue implements the sim.SchedTracer shape: it applies pc's static
// effects to every lane of the active mask.
func (r *Recorder) OnIssue(cta, warp, pc int, mask uint32, cycle int64) {
	rec := r.ctas[cta]
	if rec == nil || pc < 0 || pc >= len(rec.eff.pcs) {
		return
	}
	pe := &rec.eff.pcs[pc]
	if len(pe.reads) > 0 || pe.hasKill {
		s := r.sms[rec.sm]
		numRegs := rec.eff.numRegs
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			base := rec.rfBase + (warp*32+lane)*numRegs
			for _, reg := range pe.reads {
				s.regs[base+int(reg)].read(cycle)
			}
			if pe.hasKill {
				s.regs[base+int(pe.kill)].last = cycle
			}
		}
	}
	if (pe.smemRead || pe.smemWrite) && mask != 0 && rec.smem != nil {
		sp := rec.smem
		w := int(pe.addrImm) / 4
		switch {
		case pe.smemRead && pe.addrKnown && w >= 0 && w < sp.size/4:
			sp.ensureWords()
			sp.words[w].read(cycle)
		case pe.smemRead:
			// Unknown address: conservatively the whole block is read.
			sp.block.read(cycle)
		case pe.smemWrite && pe.addrKnown && w >= 0 && w < sp.size/4:
			// Every active lane overwrites word w: the previous value dies.
			sp.ensureWords()
			sp.words[w].last = cycle
		}
		// Unknown-address STS: the overwritten word is unknown, kill nothing.
	}
}

// OnCTARetire implements the sim.SchedTracer shape: values die with the
// CTA's allocations.
func (r *Recorder) OnCTARetire(cta int, cycle int64) {
	rec := r.ctas[cta]
	if rec == nil {
		return
	}
	s := r.sms[rec.sm]
	if rec.rfSpan >= 0 {
		sp := &s.rfSpans[rec.rfSpan]
		sp.release = cycle
		delete(s.rfOpen, sp.base)
		for i := sp.base; i < sp.base+sp.size; i++ {
			s.regs[i].last = cycle
		}
	}
	if rec.smem != nil {
		rec.smem.release = cycle
	}
	delete(r.ctas, cta)
}

// Intervals is the finalized interval map of one traced run.
type Intervals struct {
	sms    []*smRecord
	Cycles int64 // traced run length
}

// Finalize freezes the recording into a queryable interval map. cycles is
// the traced run's total cycle count.
func (r *Recorder) Finalize(cycles int64) *Intervals {
	return &Intervals{sms: r.sms, Cycles: cycles}
}

// NumSMs returns the number of SMs the trace touched.
func (iv *Intervals) NumSMs() int { return len(iv.sms) }

// LiveRF reports whether an injection into physical register (sm, phys) at
// the cycle can reach a future read — false means provably dead.
func (iv *Intervals) LiveRF(sm, phys int, cycle int64) bool {
	if sm >= len(iv.sms) || phys >= len(iv.sms[sm].regs) {
		return false
	}
	return iv.sms[sm].regs[phys].live(cycle)
}

// LiveSmem reports whether an injection into shared-memory byte (sm, idx)
// at the cycle can reach a future read. A byte is live when its allocated
// block was conservatively read (unknown-address LDS) or its word's
// known-address interval covers the cycle.
func (iv *Intervals) LiveSmem(sm, idx int, cycle int64) bool {
	if sm >= len(iv.sms) {
		return false
	}
	for _, sp := range iv.sms[sm].smSpans {
		if idx < sp.base || idx >= sp.base+sp.size {
			continue
		}
		if !(sp.alloc < cycle && (sp.release < 0 || cycle <= sp.release)) {
			continue
		}
		if sp.block.live(cycle) {
			return true
		}
		if w := (idx - sp.base) / 4; sp.words != nil && w < len(sp.words) {
			return sp.words[w].live(cycle)
		}
		return false
	}
	return false
}

// RFBlocksAt appends the register blocks an injection at cycle would find
// allocated on the SM, in CTA placement order — bit-compatible with the
// simulator's AllocatedRF enumeration and ace.Liveness.RFBlocksAt.
func (iv *Intervals) RFBlocksAt(sm int, cycle int64, dst []Blk) []Blk {
	if sm >= len(iv.sms) {
		return dst
	}
	for _, sp := range iv.sms[sm].rfSpans {
		if sp.alloc < cycle && (sp.release < 0 || cycle <= sp.release) {
			dst = append(dst, Blk{Base: sp.base, Size: sp.size})
		}
	}
	return dst
}

// SmemBlocksAt is RFBlocksAt for the shared-memory allocation timeline
// (sizes in bytes), bit-compatible with AllocatedSmem.
func (iv *Intervals) SmemBlocksAt(sm int, cycle int64, dst []Blk) []Blk {
	if sm >= len(iv.sms) {
		return dst
	}
	for _, sp := range iv.sms[sm].smSpans {
		if sp.alloc < cycle && (sp.release < 0 || cycle <= sp.release) {
			dst = append(dst, Blk{Base: sp.base, Size: sp.size})
		}
	}
	return dst
}

// Check validates the structural invariants of the interval map: every
// interval is non-empty (Lo < Hi) and within the traced run, intervals of
// one site are sorted and non-overlapping, and allocation spans are in
// chronological placement order with sane visibility windows. It returns
// the first violation found, or nil. Fuzzing and property tests call this;
// a violation means the Recorder itself is broken, not the traced program.
func (iv *Intervals) Check() error {
	checkTrack := func(sm int, what string, idx int, t *track) error {
		for i, v := range t.ivs {
			if v.Lo >= v.Hi {
				return fmt.Errorf("sm%d %s %d: interval %d is empty or inverted: (%d, %d]", sm, what, idx, i, v.Lo, v.Hi)
			}
			if v.Lo < 0 || (iv.Cycles > 0 && v.Hi > iv.Cycles) {
				return fmt.Errorf("sm%d %s %d: interval %d (%d, %d] escapes the traced run of %d cycles", sm, what, idx, i, v.Lo, v.Hi, iv.Cycles)
			}
			if i > 0 && v.Lo < t.ivs[i-1].Hi {
				return fmt.Errorf("sm%d %s %d: intervals %d and %d overlap: (%d, %d] then (%d, %d]",
					sm, what, idx, i-1, i, t.ivs[i-1].Lo, t.ivs[i-1].Hi, v.Lo, v.Hi)
			}
		}
		return nil
	}
	checkSpan := func(sm int, what string, i int, sp span, prevAlloc int64) error {
		if sp.size <= 0 || sp.base < 0 {
			return fmt.Errorf("sm%d %s span %d: bad extent base=%d size=%d", sm, what, i, sp.base, sp.size)
		}
		if sp.release >= 0 && sp.release < sp.alloc {
			return fmt.Errorf("sm%d %s span %d: released at %d before allocation at %d", sm, what, i, sp.release, sp.alloc)
		}
		if sp.alloc < prevAlloc {
			return fmt.Errorf("sm%d %s span %d: allocation at %d precedes span %d's at %d", sm, what, i, sp.alloc, i-1, prevAlloc)
		}
		return nil
	}
	for smID, s := range iv.sms {
		for i := range s.regs {
			if err := checkTrack(smID, "reg", i, &s.regs[i]); err != nil {
				return err
			}
		}
		prev := int64(-1)
		for i, sp := range s.rfSpans {
			if err := checkSpan(smID, "rf", i, sp, prev); err != nil {
				return err
			}
			prev = sp.alloc
		}
		prev = -1
		for i, sp := range s.smSpans {
			if err := checkSpan(smID, "smem", i, sp.span, prev); err != nil {
				return err
			}
			prev = sp.alloc
			if err := checkTrack(smID, "smem-block", i, &sp.block); err != nil {
				return err
			}
			for w := range sp.words {
				if err := checkTrack(smID, "smem-word", sp.base/4+w, &sp.words[w]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Window is a half-open injection-cycle range: cycles c with
// Start < c <= End (the sim.LaunchSpan convention).
type Window struct{ Start, End int64 }

// Bounds is a static AVF bracket for one structure. Lower <= AVF <= Upper
// for the AVF measured by uniform injection over the same windows.
// Supported is false for structures the interval engine cannot analyze
// (caches, control state), where the trivial [0, 1] bracket is returned.
type Bounds struct {
	Supported bool
	Lower     float64
	Upper     float64
}

// delta is one step of a piecewise-constant function: at cycle c the
// allocated mass (alloc=true) or live mass (alloc=false) changes by v.
type delta struct {
	c     int64
	v     int64
	alloc bool
}

// RFBounds derives the static AVF bracket for the register file over the
// windows: Upper is the expected live fraction of allocated registers at a
// uniform injection cycle — every dead draw is provably Masked, so measured
// AVF cannot exceed it. The engine proves deadness, not ACE-ness (a live
// value may still be logically masked downstream), so Lower is 0.
func (iv *Intervals) RFBounds(ws []Window) Bounds {
	var ds []delta
	for _, s := range iv.sms {
		for _, sp := range s.rfSpans {
			ds = appendSpanDeltas(ds, sp)
		}
		for i := range s.regs {
			for _, v := range s.regs[i].ivs {
				ds = append(ds, delta{v.Lo + 1, 1, false}, delta{v.Hi + 1, -1, false})
			}
		}
	}
	return sweepBounds(ds, ws)
}

// SmemBounds is RFBounds for shared memory, in bytes. Per allocated block
// the live mass at a cycle is the whole block when an unknown-address read
// covers it, else 4 bytes per live known-address word.
func (iv *Intervals) SmemBounds(ws []Window) Bounds {
	var ds []delta
	for _, s := range iv.sms {
		for _, sp := range s.smSpans {
			ds = appendSpanDeltas(ds, sp.span)
			ds = appendSmemLiveDeltas(ds, sp)
		}
	}
	return sweepBounds(ds, ws)
}

// appendSpanDeltas emits the allocation-mass steps of one span: +size for
// cycles > alloc, -size after release (visible through release inclusive).
func appendSpanDeltas(ds []delta, sp span) []delta {
	ds = append(ds, delta{sp.alloc + 1, int64(sp.size), true})
	if sp.release >= 0 {
		ds = append(ds, delta{sp.release + 1, -int64(sp.size), true})
	}
	return ds
}

// smemEvent is a local event of one shared-memory span's segment walk.
type smemEvent struct {
	c     int64
	v     int64
	block bool
}

// appendSmemLiveDeltas emits the live-byte steps of one shared-memory span:
// the pointwise maximum of the block-level track (whole block live) and the
// per-word tracks (4 bytes per live word), computed by a local segment walk.
func appendSmemLiveDeltas(ds []delta, sp *smemSpan) []delta {
	var local []smemEvent
	for _, v := range sp.block.ivs {
		local = append(local, smemEvent{v.Lo + 1, 1, true}, smemEvent{v.Hi + 1, -1, true})
	}
	for i := range sp.words {
		for _, v := range sp.words[i].ivs {
			local = append(local, smemEvent{v.Lo + 1, 4, false}, smemEvent{v.Hi + 1, -4, false})
		}
	}
	if len(local) == 0 {
		return ds
	}
	sort.Slice(local, func(i, j int) bool { return local[i].c < local[j].c })
	var blockDepth, wordMass, prev int64
	for i := 0; i < len(local); {
		c := local[i].c
		for i < len(local) && local[i].c == c {
			if local[i].block {
				blockDepth += local[i].v
			} else {
				wordMass += local[i].v
			}
			i++
		}
		cur := wordMass
		if blockDepth > 0 {
			cur = int64(sp.size)
		}
		if cur != prev {
			ds = append(ds, delta{c, cur - prev, false})
			prev = cur
		}
	}
	return ds
}

// sweepBounds walks the merged event streams and integrates the live
// fraction of the allocated mass over the windows.
func sweepBounds(ds []delta, ws []Window) Bounds {
	var total int64
	for _, w := range ws {
		total += w.End - w.Start
	}
	if total <= 0 || len(ds) == 0 {
		return Bounds{Supported: true, Lower: 0, Upper: 0}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].c < ds[j].c })
	var sum float64 // Σ over window cycles of live/alloc
	var alloc, live int64
	prev := ds[0].c
	add := func(from, to int64) { // cycles [from, to)
		if to <= from || alloc <= 0 || live <= 0 {
			return
		}
		var overlap int64
		for _, w := range ws {
			lo, hi := from, to
			if lo < w.Start+1 {
				lo = w.Start + 1
			}
			if hi > w.End+1 {
				hi = w.End + 1
			}
			if hi > lo {
				overlap += hi - lo
			}
		}
		frac := float64(live) / float64(alloc)
		if frac > 1 {
			frac = 1
		}
		sum += float64(overlap) * frac
	}
	for i := 0; i < len(ds); {
		c := ds[i].c
		add(prev, c)
		prev = c
		for i < len(ds) && ds[i].c == c {
			if ds[i].alloc {
				alloc += ds[i].v
			} else {
				live += ds[i].v
			}
			i++
		}
	}
	// After the last event live mass is zero by construction; nothing to add.
	return Bounds{Supported: true, Lower: 0, Upper: sum / float64(total)}
}
