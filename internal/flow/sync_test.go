package flow_test

import (
	"testing"

	"gpurel/internal/flow"
	"gpurel/internal/isa"
)

func s2r(dst isa.Reg, sr isa.SReg) isa.Instr {
	return isa.Instr{Op: isa.OpS2R, Dst: dst, Special: sr}
}

func shli(dst, a isa.Reg, sh int32) isa.Instr {
	return isa.Instr{Op: isa.OpSHL, Dst: dst, SrcA: a, BImm: true, Imm: sh}
}

func sts(addr isa.Reg, off int32, val isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.OpSTS, SrcA: addr, SrcB: val, Imm: off}
}

func lds(dst, addr isa.Reg, off int32) isa.Instr {
	return isa.Instr{Op: isa.OpLDS, Dst: dst, SrcA: addr, Imm: off}
}

func stg(addr, val isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.OpSTG, SrcA: addr, SrcB: val}
}

func bar() isa.Instr { return isa.Instr{Op: isa.OpBAR} }

// neighborRace stores at smem[tid*4] and reads smem[tid*4 + 4·dist] with no
// barrier between — the canonical stencil missing-BAR bug when dist != 0.
func neighborRace(dist int32) *isa.Program {
	return prog(5,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 7),
		sts(2, 0, 3),
		lds(4, 2, 4*dist),
		stg(2, 4),
		exit(),
	)
}

func rulesOf(diags []flow.Diag) map[string]int {
	m := map[string]int{}
	for _, d := range diags {
		m[d.Rule]++
	}
	return m
}

func TestSyncNeighborRaceFires(t *testing.T) {
	diags := flow.CheckSync(neighborRace(1))
	if len(diags) != 1 || diags[0].Rule != flow.RuleSmemSync || diags[0].Sev != flow.Error || diags[0].PC != 4 {
		t.Fatalf("want one smem-sync error at #4, got %v", diags)
	}
	// The negative-offset neighbor (read smem[tid-2]) is the same bug.
	diags = flow.CheckSync(neighborRace(-2))
	if len(diags) != 1 || diags[0].Rule != flow.RuleSmemSync {
		t.Fatalf("want one smem-sync error for dist=-2, got %v", diags)
	}
}

func TestSyncLintIntegration(t *testing.T) {
	diags := flow.Lint(neighborRace(1))
	if rulesOf(diags)[flow.RuleSmemSync] != 1 {
		t.Fatalf("Lint must include the smem-sync finding, got %v", diags)
	}
	if !flow.HasErrors(diags) {
		t.Fatal("smem-sync must be error-severity")
	}
}

func TestSyncBarrierSilencesRace(t *testing.T) {
	// Same pattern with a BAR between store and load: properly synchronized.
	p := prog(5,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 7),
		sts(2, 0, 3),
		bar(),
		lds(4, 2, 4),
		stg(2, 4),
		exit(),
	)
	if diags := flow.CheckSync(p); len(diags) != 0 {
		t.Fatalf("barrier-ordered neighbor exchange must be clean, got %v", diags)
	}
}

func TestSyncSameThreadReuseSilent(t *testing.T) {
	// Δ = 0: each thread reads back its own store; no barrier required.
	if diags := flow.CheckSync(neighborRace(0)); len(diags) != 0 {
		t.Fatalf("same-thread smem reuse must be clean, got %v", diags)
	}
}

func TestSyncFarOffsetSilent(t *testing.T) {
	// Δ = 256 threads: indistinguishable from a second array packed at
	// base + 4*blockDim; the prover must stay silent past maxSyncDist.
	if diags := flow.CheckSync(neighborRace(256)); len(diags) != 0 {
		t.Fatalf("multi-array carve-out offset must be clean, got %v", diags)
	}
}

func TestSyncStrideMismatchSilent(t *testing.T) {
	// Store at tid*4, load at tid*8+4: different strides, nothing provable.
	p := prog(6,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		shli(5, 1, 3),
		movi(3, 7),
		sts(2, 0, 3),
		lds(4, 5, 4),
		stg(2, 4),
		exit(),
	)
	if diags := flow.CheckSync(p); len(diags) != 0 {
		t.Fatalf("stride mismatch must be clean, got %v", diags)
	}
}

func TestSyncSymbolicBaseMismatchSilent(t *testing.T) {
	// Store at tid*4, load at tid*4 + blockDim.x + 4: the symbolic parts
	// differ, so the constant offset proves nothing.
	p := prog(7,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		s2r(5, isa.SRNTidX),
		iadd(6, 2, 5),
		movi(3, 7),
		sts(2, 0, 3),
		lds(4, 6, 4),
		stg(2, 4),
		exit(),
	)
	if diags := flow.CheckSync(p); len(diags) != 0 {
		t.Fatalf("symbolic base mismatch must be clean, got %v", diags)
	}
}

func TestSyncDoubleBarrierWarns(t *testing.T) {
	p := prog(5,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 1),
		sts(2, 0, 3),
		bar(),
		bar(), // nothing between the two barriers
		lds(4, 2, 0),
		stg(2, 4),
		exit(),
	)
	diags := flow.CheckSync(p)
	if got := rulesOf(diags)[flow.RuleBarRedundant]; got != 2 {
		t.Fatalf("double barrier must flag both BARs (one per direction), got %v", diags)
	}
	for _, d := range diags {
		if d.Sev != flow.Warn {
			t.Fatalf("bar-redundant must be warning-severity, got %v", d)
		}
		if d.PC != 4 && d.PC != 5 {
			t.Fatalf("finding anchored off the barriers: %v", d)
		}
	}
}

func TestSyncTrailingBarrierWarns(t *testing.T) {
	// A BAR with no shared-memory access anywhere after it orders nothing.
	p := prog(5,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 1),
		sts(2, 0, 3),
		bar(),
		exit(),
	)
	diags := flow.CheckSync(p)
	if got := rulesOf(diags)[flow.RuleBarRedundant]; got != 1 {
		t.Fatalf("trailing barrier must warn, got %v", diags)
	}
}

func TestSyncUsefulBarrierSilent(t *testing.T) {
	// STS → BAR → LDS: the barrier orders real traffic on both sides.
	p := prog(5,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 1),
		sts(2, 0, 3),
		bar(),
		lds(4, 2, 0),
		stg(2, 4),
		exit(),
	)
	if diags := flow.CheckSync(p); len(diags) != 0 {
		t.Fatalf("useful barrier must be clean, got %v", diags)
	}
}

func TestSyncLoopBarrierSilent(t *testing.T) {
	// A barrier inside a smem-using loop: the back edge carries accesses to
	// both sides of the BAR, so neither redundancy direction fires; the LDS
	// at tid*4 reads the same thread's slot, so no race fires either.
	//
	//	#0 S2R R1, tid
	//	#1 SHL R2 = R1 << 2
	//	#2 MOVI R3, 4        ; loop counter
	//	#3 MOVI R4, 1
	//	#4 STS [R2], R4      ; loop head
	//	#5 BAR
	//	#6 LDS R4, [R2]
	//	#7 ISETP P0 = R3 > 0
	//	#8 ISUB R3 = R3 - 1
	//	#9 @P0 BRA #4 (reconv #10)
	//	#10 STG [R2], R4
	//	#11 EXIT
	p := prog(6,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 4),
		movi(4, 1),
		sts(2, 0, 4),
		bar(),
		lds(4, 2, 0),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpGT, SrcA: 3, BImm: true},
		isa.Instr{Op: isa.OpISUB, Dst: 3, SrcA: 3, BImm: true, Imm: 1},
		bra(4, 10, isa.P0, false),
		stg(2, 4),
		exit(),
	)
	diags := flow.CheckSync(p)
	for _, d := range diags {
		if d.Rule == flow.RuleBarRedundant {
			t.Fatalf("loop barrier must not be flagged redundant, got %v", diags)
		}
		if d.Rule == flow.RuleSmemSync {
			t.Fatalf("same-slot loop reuse must not race, got %v", diags)
		}
	}
}

func TestSyncLoopCarriedOffsetSilent(t *testing.T) {
	// The reduction shape: LDS [(tid+s)*4] where s is a loop variable with
	// two reaching definitions — the prover must give up, not guess.
	//
	//	#0 S2R R1, tid
	//	#1 SHL R2 = R1 << 2
	//	#2 MOVI R3, 8        ; s
	//	#3 MOVI R4, 1
	//	#4 STS [R2], R4
	//	#5 IADD R5 = R1 + R3 ; loop head
	//	#6 SHL R5 = R5 << 2
	//	#7 LDS R4, [R5]      ; reads (tid+s)*4 — s not single-def
	//	#8 ISETP P0 = R3 > 1
	//	#9 SHR R3 = R3 >> 1
	//	#10 @P0 BRA #5 (reconv #11)
	//	#11 STG [R2], R4
	//	#12 EXIT
	p := prog(6,
		s2r(1, isa.SRTidX),
		shli(2, 1, 2),
		movi(3, 8),
		movi(4, 1),
		sts(2, 0, 4),
		iadd(5, 1, 3),
		shli(5, 5, 2),
		lds(4, 5, 0),
		isa.Instr{Op: isa.OpISETP, PDst: isa.P0, Cmp: isa.CmpGT, SrcA: 3, BImm: true, Imm: 1},
		isa.Instr{Op: isa.OpSHR, Dst: 3, SrcA: 3, BImm: true, Imm: 1},
		bra(5, 11, isa.P0, false),
		stg(2, 4),
		exit(),
	)
	diags := flow.CheckSync(p)
	if got := rulesOf(diags)[flow.RuleSmemSync]; got != 0 {
		t.Fatalf("loop-carried offset must stay silent, got %v", diags)
	}
}
