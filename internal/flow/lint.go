package flow

import (
	"fmt"
	"sort"

	"gpurel/internal/isa"
)

// Severity grades a diagnostic. Errors are defects no correct kernel should
// contain; warnings flag constructs that are only conditionally safe (e.g. a
// barrier whose safety depends on runtime-uniform guards).
type Severity uint8

// Severities.
const (
	Warn Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diag is one linter finding, anchored at a PC.
type Diag struct {
	PC   int
	Rule string
	Sev  Severity
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("#%d %s %s: %s", d.PC, d.Sev, d.Rule, d.Msg)
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Sev == Error {
			return true
		}
	}
	return false
}

// Lint rule names, exported so callers can filter.
const (
	RuleBadOpcode   = "bad-opcode"
	RuleBadBranch   = "bad-branch"
	RuleBadPred     = "bad-pred"
	RuleRegOverflow = "reg-overflow"
	RuleMissingExit = "missing-exit"
	RuleUnreachable = "unreachable"
	RuleUninitRead  = "uninit-read"
	RuleDeadWrite   = "dead-write"
	RuleBarDiverge  = "bar-divergence"

	// CheckSync rules (sync.go).
	RuleSmemSync     = "smem-sync"
	RuleBarRedundant = "bar-redundant"
)

// Lint statically checks a kernel program and returns its findings sorted by
// PC. Structural defects (bad opcodes, escaped branches, out-of-range
// registers or predicates, missing EXIT) are reported first; when any are
// present the dataflow rules are skipped, since their results would describe
// a program that cannot run anyway.
func Lint(p *isa.Program) []Diag {
	var diags []Diag
	emit := func(pc int, rule string, sev Severity, format string, args ...any) {
		diags = append(diags, Diag{PC: pc, Rule: rule, Sev: sev, Msg: fmt.Sprintf(format, args...)})
	}

	if len(p.Code) == 0 {
		emit(0, RuleMissingExit, Error, "empty program")
		return diags
	}

	// Structural pass.
	structuralOK := true
	var srcs []isa.Reg
	checkReg := func(pc int, r isa.Reg, what string) {
		if r == isa.RZ {
			return
		}
		if int(r) >= p.NumRegs {
			structuralOK = false
			emit(pc, RuleRegOverflow, Error,
				"%s R%d is past the declared register count (NumRegs=%d)", what, r, p.NumRegs)
		}
	}
	checkPred := func(pc int, pr isa.Pred, what string) {
		if int(pr) > isa.NumPreds {
			structuralOK = false
			emit(pc, RuleBadPred, Error, "%s predicate %d out of range (P0..P6)", what, pr)
		}
	}
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Op.Known() {
			structuralOK = false
			emit(pc, RuleBadOpcode, Error, "unknown opcode %d", uint8(ins.Op))
			continue
		}
		if ins.Op == isa.OpBRA {
			if ins.Target < 0 || ins.Target >= len(p.Code) {
				structuralOK = false
				emit(pc, RuleBadBranch, Error, "branch target %d escapes the program (%d instructions)", ins.Target, len(p.Code))
			}
			if ins.Reconv < 0 || ins.Reconv > len(p.Code) {
				structuralOK = false
				emit(pc, RuleBadBranch, Error, "reconvergence point %d escapes the program", ins.Reconv)
			}
		}
		if ins.Writing() {
			checkReg(pc, ins.Dst, "destination")
		}
		srcs = ins.SrcRegs(srcs[:0])
		for _, r := range srcs {
			checkReg(pc, r, "source")
		}
		checkPred(pc, ins.Pred, "guard")
		switch ins.Op {
		case isa.OpISETP, isa.OpFSETP:
			checkPred(pc, ins.PDst, "destination")
			checkPred(pc, ins.CPred, "combining")
		case isa.OpSEL:
			checkPred(pc, ins.SelPred, "select")
		}
	}
	if last := &p.Code[len(p.Code)-1]; last.Op != isa.OpEXIT || !alwaysExec(last) {
		structuralOK = false
		emit(len(p.Code)-1, RuleMissingExit, Error, "program does not end with an unguarded EXIT")
	}
	if !structuralOK {
		sortDiags(diags)
		return diags
	}

	g := Build(p)
	reach := g.Reachable()
	du := g.DefUse()
	va := g.Variance()

	// Unreachable blocks.
	for i, b := range g.Blocks {
		if !reach[i] {
			emit(b.Start, RuleUnreachable, Error,
				"block B%d (#%d..#%d) is unreachable from the entry", b.ID, b.Start, b.End-1)
		}
	}

	for pc := range p.Code {
		ins := &p.Code[pc]
		if !reach[g.BlockOf(pc)] {
			continue // already reported as unreachable
		}

		// Uninitialized reads: a source register with a def-free path from
		// the entry. Address operands of memory accesses are called out —
		// a wild pointer is how a flipped program escapes its allocations.
		undef := du.MaybeUndef(pc)
		srcs = uses(ins, srcs[:0])
		for _, r := range srcs {
			if !undef.Has(r) {
				continue
			}
			if ins.IsMem() && r == ins.SrcA {
				emit(pc, RuleUninitRead, Error,
					"%s address register R%d may be read before any definition", ins.Op, r)
			} else {
				emit(pc, RuleUninitRead, Error,
					"R%d may be read before any definition", r)
			}
		}

		// Dead writes: a definition no use can observe.
		if _, ok, _ := def(ins); ok {
			if du.defOf[pc] >= 0 && len(du.Uses(pc)) == 0 {
				emit(pc, RuleDeadWrite, Error,
					"R%d is written here but the value is never read", ins.Dst)
			}
		}
	}

	// Barriers under potentially divergent control flow: a BAR inside the
	// region between a variant branch and its reconvergence point can be
	// reached by a strict subset of the warp — the simulator raises a DUE
	// when that actually happens (exec.ErrBarrierDivergence). Warning-class:
	// the guard may be dynamically uniform (e.g. a bounds check that always
	// passes for full blocks).
	for pc := range p.Code {
		if !reach[g.BlockOf(pc)] || !va.Divergent(pc) {
			continue
		}
		for _, barPC := range divergentRegionBARs(g, pc) {
			emit(barPC, RuleBarDiverge, Warn,
				"BAR inside the divergent region of the branch at #%d (guard %s may differ across lanes)",
				pc, guardName(&p.Code[pc]))
		}
	}

	// Shared-memory synchronization rules (sync.go): provable cross-thread
	// read/write pairs with no intervening BAR, and barriers that cannot
	// order any shared-memory traffic.
	diags = append(diags, checkSync(g, du)...)

	sortDiags(diags)
	return diags
}

func guardName(ins *isa.Instr) string {
	s := fmt.Sprintf("P%d", int(ins.Pred)-1)
	if ins.PredNeg {
		return "!" + s
	}
	return s
}

// divergentRegionBARs walks the CFG from both legs of the branch at pc,
// stopping at the reconvergence block, and returns the PCs of BAR
// instructions inside the region.
func divergentRegionBARs(g *Graph, pc int) []int {
	ins := &g.Prog.Code[pc]
	stopBlock := -1
	if ins.Reconv >= 0 && ins.Reconv < len(g.Prog.Code) {
		stopBlock = g.BlockOf(ins.Reconv)
	}
	seen := make([]bool, len(g.Blocks))
	var stack []int
	push := func(b int) {
		if b >= 0 && b != stopBlock && !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for _, s := range g.Blocks[g.BlockOf(pc)].Succs {
		push(s)
	}
	var bars []int
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := &g.Blocks[b]
		for p := blk.Start; p < blk.End; p++ {
			if g.Prog.Code[p].Op == isa.OpBAR {
				bars = append(bars, p)
			}
		}
		for _, s := range blk.Succs {
			push(s)
		}
	}
	sort.Ints(bars)
	return bars
}

func sortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].PC != diags[j].PC {
			return diags[i].PC < diags[j].PC
		}
		return diags[i].Rule < diags[j].Rule
	})
}
