// Package report renders the study's tables and figure data as aligned text:
// each paper figure becomes a table whose rows/series carry the same
// quantities the figure plots.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Footers []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddFooter appends a footnote line.
func (t *Table) AddFooter(format string, args ...any) {
	t.Footers = append(t.Footers, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, f := range t.Footers {
		sb.WriteString(f + "\n")
	}
	return sb.String()
}

// Pct formats a [0,1] fraction as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%6.2f%%", 100*v) }

// CI formats a confidence interval by its half-width, "±x.xx%". Feed it a
// Wilson-score interval (campaign.Tally.CI99) rather than the normal
// approximation: at p=0 or p=1 the latter renders a misleading ±0.00%.
func CI(lo, hi float64) string { return fmt.Sprintf("±%.2f%%", 100*(hi-lo)/2) }

// PctShort formats with one decimal.
func PctShort(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%g", v) }

// Bar renders a tiny ASCII bar for a [0,1] value, scaled by max.
func Bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
