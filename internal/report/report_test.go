package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "Demo",
		Header: []string{"Name", "Value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	tbl.AddFooter("footnote %d", 7)
	s := tbl.String()
	for _, want := range []string{"Demo", "Name", "alpha", "a-much-longer-name", "footnote 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// columns must align: the Value header must start at the same offset in
	// the header and in the first row
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "Name") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if strings.Index(header, "Value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestPctFormats(t *testing.T) {
	if got := Pct(0.1234); !strings.Contains(got, "12.34%") {
		t.Errorf("Pct = %q", got)
	}
	if got := PctShort(0.5); !strings.Contains(got, "50.0%") {
		t.Errorf("PctShort = %q", got)
	}
}

// TestBarBounds: bars never exceed the width and never have negative fill.
func TestBarBounds(t *testing.T) {
	f := func(v, max float64, w uint8) bool {
		width := int(w%40) + 1
		b := Bar(v, max, width)
		return len(b) == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if Bar(0.5, 1, 10) != "#####....." {
		t.Errorf("Bar(0.5,1,10) = %q", Bar(0.5, 1, 10))
	}
}
