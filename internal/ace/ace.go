// Package ace implements ACE (Architecturally Correct Execution) analysis
// for the register file — the analytical alternative to statistical fault
// injection that the paper's §I cites (Mukherjee et al., MICRO-36).
//
// A register-file bit is ACE during the interval from a write until its last
// read before the next write (or deallocation): a particle strike in that
// interval changes an architecturally required value. The ACE-based AVF of
// the register file is the fraction of bit-cycles that are ACE:
//
//	AVF_ACE(RF) = Σ ACE intervals / (RF bits × total cycles)
//
// The analyzer plugs into the simulator's RFTracer hook and needs a single
// fault-free run — no injection campaign — making it the fast end of the
// accuracy/speed spectrum the paper discusses. Classical ACE analysis is
// known to over-estimate AVF relative to fault injection (it cannot see
// logical masking: a corrupted value that is read but does not change the
// output still counts as ACE); the AnalyzeRF helper reports both numbers so
// the gap is measurable.
package ace

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// regState tracks the live interval of one physical register.
type regState struct {
	lastWrite int64 // cycle of the most recent write (-1 = none since alloc)
	lastRead  int64 // cycle of the last read at or after lastWrite
	written   bool
}

// Tracker accumulates ACE bit-cycles for every SM's register file. It
// implements sim.RFTracer.
type Tracker struct {
	regs      [][]regState // [sm][phys]
	aceCycles int64        // Σ per-register ACE interval lengths (in cycles)
	writes    int64
	reads     int64
}

// NewTracker sizes the tracker for the chip configuration.
func NewTracker(cfg gpu.Config) *Tracker {
	t := &Tracker{regs: make([][]regState, cfg.NumSMs)}
	for i := range t.regs {
		t.regs[i] = make([]regState, cfg.RFRegsPerSM)
	}
	return t
}

// OnRegAlloc resets the tracked state of a freshly allocated block: values
// left by a previous CTA are dead.
func (t *Tracker) OnRegAlloc(sm, base, size int, cycle int64) {
	regs := t.regs[sm]
	for i := base; i < base+size; i++ {
		regs[i] = regState{lastWrite: -1}
	}
}

// OnRegRelease closes the ACE intervals of a deallocated block.
func (t *Tracker) OnRegRelease(sm, base, size int, cycle int64) {
	regs := t.regs[sm]
	for i := base; i < base+size; i++ {
		t.closeInterval(&regs[i])
	}
}

// closeInterval retires the current write→last-read interval of a register.
func (t *Tracker) closeInterval(s *regState) {
	if s.written && s.lastRead > s.lastWrite {
		t.aceCycles += s.lastRead - s.lastWrite
	}
	s.written = false
}

// OnRegWrite starts a new interval: the previous value is dead from its
// last read onward.
func (t *Tracker) OnRegWrite(sm, phys int, cycle int64) {
	s := &t.regs[sm][phys]
	t.closeInterval(s)
	s.lastWrite = cycle
	s.lastRead = cycle
	s.written = true
	t.writes++
}

// OnRegRead extends the current interval.
func (t *Tracker) OnRegRead(sm, phys int, cycle int64) {
	s := &t.regs[sm][phys]
	if s.written && cycle > s.lastRead {
		s.lastRead = cycle
	}
	t.reads++
}

// finish closes every open interval (end of simulation).
func (t *Tracker) finish() {
	for sm := range t.regs {
		for i := range t.regs[sm] {
			t.closeInterval(&t.regs[sm][i])
		}
	}
}

// AVF returns the ACE-based register-file AVF for a run of totalCycles on
// the given chip: ACE bit-cycles over total bit-cycles. (Every bit of a
// register shares its word-granularity liveness, so bits cancel out.)
func (t *Tracker) AVF(cfg gpu.Config, totalCycles int64) float64 {
	if totalCycles == 0 {
		return 0
	}
	totalRegCycles := float64(int64(cfg.NumSMs)*int64(cfg.RFRegsPerSM)) * float64(totalCycles)
	return float64(t.aceCycles) / totalRegCycles
}

// Result reports one ACE analysis.
type Result struct {
	// AVFACE is the analytical register-file AVF.
	AVFACE float64
	// ACECycles is the summed ACE register-cycles.
	ACECycles int64
	// Reads and Writes count the observed register accesses.
	Reads, Writes int64
	// Cycles is the run length.
	Cycles int64
}

// AnalyzeRF runs the job once under the tracker and returns the analytical
// register-file AVF. Compare against the statistical AVF-RF from
// internal/microfi: ACE needs one run instead of thousands but cannot model
// logical masking, so it upper-bounds the injection-based estimate.
func AnalyzeRF(job *device.Job, cfg gpu.Config) (*Result, error) {
	tr := NewTracker(cfg)
	res := sim.Run(job, cfg, sim.Options{RFTrace: tr})
	if res.Err != nil {
		return nil, fmt.Errorf("ace: golden run failed: %w", res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("ace: golden run timed out")
	}
	tr.finish()
	return &Result{
		AVFACE:    tr.AVF(cfg, res.Cycles),
		ACECycles: tr.aceCycles,
		Reads:     tr.reads,
		Writes:    tr.writes,
		Cycles:    res.Cycles,
	}, nil
}
