package ace

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/funcsim"
)

// PVF analysis: the Program Vulnerability Factor of Sridharan & Kaeli
// (paper §VII) measures the microarchitecture-independent portion of AVF by
// applying ACE analysis to *architectural* resources. Here the resource is
// the architectural register file: every CTA's thread registers, alive for
// the CTA's execution window, measured in dynamic instructions instead of
// cycles:
//
//	PVF(RF) = Σ ACE intervals / Σ_CTA (threads × regs × CTA instructions)
//
// PVF sits between SVF and AVF on the abstraction ladder: like SVF it knows
// nothing about the hardware (no derating, no structure sizes, no timing),
// but like AVF it reasons about liveness instead of sampling injections.

// pvfTracker implements funcsim.RegTracer.
type pvfTracker struct {
	slots    []regState
	ctaStart int64
	aceSum   int64
	denom    int64
}

func (p *pvfTracker) OnCTAStart(threads, numRegs int, at int64) {
	n := threads * numRegs
	if cap(p.slots) < n {
		p.slots = make([]regState, n)
	} else {
		p.slots = p.slots[:n]
		for i := range p.slots {
			p.slots[i] = regState{}
		}
	}
	p.ctaStart = at
}

func (p *pvfTracker) OnRegWrite(slot int, at int64) {
	s := &p.slots[slot]
	if s.written && s.lastRead > s.lastWrite {
		p.aceSum += s.lastRead - s.lastWrite
	}
	s.lastWrite = at
	s.lastRead = at
	s.written = true
}

func (p *pvfTracker) OnRegRead(slot int, at int64) {
	s := &p.slots[slot]
	if s.written && at > s.lastRead {
		s.lastRead = at
	}
}

func (p *pvfTracker) OnCTAEnd(at int64) {
	for i := range p.slots {
		s := &p.slots[i]
		if s.written && s.lastRead > s.lastWrite {
			p.aceSum += s.lastRead - s.lastWrite
		}
		s.written = false
	}
	p.denom += int64(len(p.slots)) * (at - p.ctaStart)
}

// PVFResult reports one PVF analysis.
type PVFResult struct {
	PVF       float64
	ACEInstrs int64 // Σ ACE register-instruction intervals
	DynInstrs int64
}

// AnalyzePVF computes the register-file PVF of a job from a single
// functional run.
func AnalyzePVF(job *device.Job) (*PVFResult, error) {
	tr := &pvfTracker{}
	res := funcsim.Run(job, funcsim.Options{RegTrace: tr})
	if res.Err != nil {
		return nil, fmt.Errorf("pvf: golden run failed: %w", res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("pvf: golden run timed out")
	}
	out := &PVFResult{ACEInstrs: tr.aceSum, DynInstrs: res.DynInstrs}
	if tr.denom > 0 {
		out.PVF = float64(tr.aceSum) / float64(tr.denom)
	}
	return out, nil
}
