package ace

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
	"gpurel/internal/kernels"
)

// chainJob builds a kernel with a long-lived value: v is produced once and
// read at the end after busy-work, so its ACE interval spans the loop.
func chainJob(iters int32) *device.Job {
	b := kasm.New("chain")
	tid := b.S2R(isa.SRTidX)
	v := b.Ldg(b.IScAdd(tid, b.Param(0), 2), 0) // long-lived
	i := b.MovI(0)
	acc := b.MovI(0)
	b.ForI(i, iters, 1, func() {
		b.IAddTo(acc, acc, i)
	})
	b.Stg(b.IScAdd(tid, b.Param(1), 2), 0, b.IAdd(v, acc))
	prog := b.MustBuild()

	m := device.NewMemory(1 << 16)
	in := m.Alloc("in", 4*32)
	out := m.Alloc("out", 4*32)
	return &device.Job{
		Name: "chain", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, KernelName: "K1", GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
			Params: []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 4 * 32}},
	}
}

func TestACEBasics(t *testing.T) {
	r, err := AnalyzeRF(chainJob(50), gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	if r.AVFACE <= 0 || r.AVFACE > 1 {
		t.Errorf("ACE AVF = %v out of range", r.AVFACE)
	}
	if r.Reads == 0 || r.Writes == 0 || r.ACECycles == 0 {
		t.Errorf("tracker saw no activity: %+v", r)
	}
}

// TestACEGrowsWithLiveRange: stretching the live range of a value (longer
// busy loop between producing and consuming it) must increase ACE cycles.
func TestACEGrowsWithLiveRange(t *testing.T) {
	short, err := AnalyzeRF(chainJob(10), gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	long, err := AnalyzeRF(chainJob(200), gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	if long.ACECycles <= short.ACECycles {
		t.Errorf("longer live range must add ACE cycles: %d vs %d", short.ACECycles, long.ACECycles)
	}
}

// TestACEDeadValueNotCounted: a value written and never read contributes no
// ACE interval.
func TestACEDeadValueNotCounted(t *testing.T) {
	b := kasm.New("dead")
	// x's first write is dynamically dead: the guarded overwrite below fires
	// for every lane (tid >= 0 always holds) before any read. Statically the
	// overwrite is only a may-write, so the program passes the build-time
	// linter — exactly the gap between static and dynamic liveness.
	x := b.MovI(42)
	tid := b.S2R(isa.SRTidX)
	p := b.P()
	b.ISetpI(p, isa.CmpGE, tid, 0)
	b.Guarded(p, false, func() { b.MovITo(x, 7) })
	b.FreeP(p)
	b.Stg(b.IScAdd(tid, b.Param(0), 2), 0, x)
	prog := b.MustBuild()
	m := device.NewMemory(1 << 16)
	out := m.Alloc("out", 4*32)
	job := &device.Job{
		Name: "dead", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
			Params: []uint32{out}, ParamIsPtr: []bool{true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 4 * 32}},
	}
	r, err := AnalyzeRF(job, gpu.Volta())
	if err != nil {
		t.Fatal(err)
	}
	// only the tid/address chain is live; the dead constant adds nothing,
	// so ACE cycles stay small
	if r.AVFACE > 0.01 {
		t.Errorf("nearly-dead kernel has ACE AVF %v", r.AVFACE)
	}
}

func TestACEOnBenchmarks(t *testing.T) {
	for _, name := range []string{"VA", "SCP"} {
		app, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := AnalyzeRF(app.Build(), gpu.Volta())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.AVFACE <= 0 || r.AVFACE > 1 {
			t.Errorf("%s: ACE AVF = %v", name, r.AVFACE)
		}
	}
}

func TestPVFBasics(t *testing.T) {
	r, err := AnalyzePVF(chainJob(50))
	if err != nil {
		t.Fatal(err)
	}
	if r.PVF <= 0 || r.PVF > 1 {
		t.Errorf("PVF = %v out of range", r.PVF)
	}
	if r.ACEInstrs == 0 || r.DynInstrs == 0 {
		t.Errorf("empty PVF analysis: %+v", r)
	}
}

// TestPVFMicroarchIndependence pins PVF's defining property (§VII): it is
// computed purely from architecturally visible state, so shrinking the
// physical register file changes the ACE-based hardware AVF but leaves PVF
// untouched.
func TestPVFMicroarchIndependence(t *testing.T) {
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	pvfA, err := AnalyzePVF(job)
	if err != nil {
		t.Fatal(err)
	}
	pvfB, err := AnalyzePVF(job)
	if err != nil {
		t.Fatal(err)
	}
	if pvfA.PVF != pvfB.PVF {
		t.Error("PVF must be deterministic")
	}

	big := gpu.Volta()
	small := gpu.Volta()
	small.RFRegsPerSM /= 4 // still fits VA's CTAs
	avfBig, err := AnalyzeRF(job, big)
	if err != nil {
		t.Fatal(err)
	}
	avfSmall, err := AnalyzeRF(job, small)
	if err != nil {
		t.Fatal(err)
	}
	if avfSmall.AVFACE <= avfBig.AVFACE {
		t.Errorf("a smaller RF must raise the hardware ACE AVF: %v vs %v",
			avfSmall.AVFACE, avfBig.AVFACE)
	}
}
