package ace

import (
	"fmt"
	"sort"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// Liveness records, from one fault-free traced run, everything needed to
// decide — without simulating — whether a register-file injection at a given
// (SM, physical register, cycle) site can possibly matter:
//
//   - per-register live intervals: the cycle ranges in which the stored value
//     will still be read before its next overwrite or deallocation. A flip
//     outside every live interval is provably Masked (the corrupted value is
//     never consumed), the dual of the ACE intervals Tracker sums.
//   - the per-SM register-allocation timeline, which reconstructs the exact
//     allocated-block list (in CTA placement order) the injector would see at
//     any cycle — required to replay the injector's uniform site choice
//     without a machine.
//
// The interval semantics match the injection hook's position in the cycle
// loop: the OnCycle fault hook fires at cycle c before any register access
// of cycle c executes, and after CTA placement of cycle c-1. So a block
// allocated at cycle a is visible to injections at cycles > a, a block
// released at cycle d is visible through cycle d inclusive, and a flip at
// cycle c is observed iff the first register event at cycle >= c is a read.
type Liveness struct {
	regs   [][]regTrack // [sm][phys]
	blocks []smBlocks   // [sm]
	Cycles int64        // golden run length
}

// liveIv marks injections at cycles c with Lo < c <= Hi as observable.
type liveIv struct{ Lo, Hi int64 }

// regTrack is the per-register recording state.
type regTrack struct {
	last int64 // cycle of the most recent event (write/read/alloc/release)
	ivs  []liveIv
}

// blockSpan is one CTA's register block with its visibility window.
type blockSpan struct {
	base, size     int
	alloc, release int64 // release = -1 while open (until end of run)
}

type smBlocks struct {
	spans []blockSpan
	open  map[int]int // base -> index of the open span
}

// NewLiveness sizes the tracer for the chip configuration. It implements
// sim.RFTracer; run it via TraceRF or pass it to sim.Options.RFTrace.
func NewLiveness(cfg gpu.Config) *Liveness {
	l := &Liveness{
		regs:   make([][]regTrack, cfg.NumSMs),
		blocks: make([]smBlocks, cfg.NumSMs),
	}
	for i := range l.regs {
		l.regs[i] = make([]regTrack, cfg.RFRegsPerSM)
		l.blocks[i].open = map[int]int{}
	}
	return l
}

// OnRegAlloc starts a block's visibility window and kills any leftover value
// of a previous CTA (the next event wins over stale reads).
func (l *Liveness) OnRegAlloc(sm, base, size int, cycle int64) {
	b := &l.blocks[sm]
	b.open[base] = len(b.spans)
	b.spans = append(b.spans, blockSpan{base: base, size: size, alloc: cycle, release: -1})
	regs := l.regs[sm]
	for i := base; i < base+size; i++ {
		regs[i].last = cycle
	}
}

// OnRegRelease closes the block's visibility window; values die with it.
func (l *Liveness) OnRegRelease(sm, base, size int, cycle int64) {
	b := &l.blocks[sm]
	if i, ok := b.open[base]; ok {
		b.spans[i].release = cycle
		delete(b.open, base)
	}
	regs := l.regs[sm]
	for i := base; i < base+size; i++ {
		regs[i].last = cycle
	}
}

// OnRegWrite ends the previous value's exposure: injections from here until
// the next read are overwritten before anything consumes them.
func (l *Liveness) OnRegWrite(sm, phys int, cycle int64) {
	l.regs[sm][phys].last = cycle
}

// OnRegRead exposes the stored value: any injection after the previous event
// and at or before this read would have been consumed by it.
func (l *Liveness) OnRegRead(sm, phys int, cycle int64) {
	tr := &l.regs[sm][phys]
	if cycle > tr.last {
		if n := len(tr.ivs); n > 0 && tr.ivs[n-1].Hi == tr.last {
			tr.ivs[n-1].Hi = cycle
		} else {
			tr.ivs = append(tr.ivs, liveIv{Lo: tr.last, Hi: cycle})
		}
		tr.last = cycle
	}
}

// Live reports whether a bit flip in (sm, phys) at the injection cycle can
// reach any future read — false means the site is provably dead and the run
// classifies as Masked without simulation.
func (l *Liveness) Live(sm, phys int, cycle int64) bool {
	ivs := l.regs[sm][phys].ivs
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi >= cycle })
	return i < len(ivs) && ivs[i].Lo < cycle
}

// RFBlocksAt appends to dst the register blocks an injection at cycle would
// find allocated on the SM, in CTA placement order — bit-compatible with the
// simulator's AllocatedRF enumeration at that cycle.
func (l *Liveness) RFBlocksAt(sm int, cycle int64, dst []sim.RFBlock) []sim.RFBlock {
	for _, sp := range l.blocks[sm].spans {
		if sp.alloc < cycle && (sp.release < 0 || cycle <= sp.release) {
			dst = append(dst, sim.RFBlock{Base: sp.base, Size: sp.size})
		}
	}
	return dst
}

// NumSMs returns the traced chip's SM count.
func (l *Liveness) NumSMs() int { return len(l.regs) }

// TraceRF runs the job fault-free with liveness tracing enabled and returns
// the recorded map. The traced run is bit-identical to the plain golden run
// (the tracer only observes), so the map is valid for any faulty run up to
// its injection cycle.
func TraceRF(job *device.Job, cfg gpu.Config) (*Liveness, error) {
	l := NewLiveness(cfg)
	res := sim.Run(job, cfg, sim.Options{RFTrace: l})
	if res.Err != nil {
		return nil, fmt.Errorf("ace: liveness trace failed: %w", res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("ace: liveness trace timed out")
	}
	l.Cycles = res.Cycles
	return l, nil
}
