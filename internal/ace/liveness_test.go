package ace

import (
	"testing"

	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/sim"
)

func tinyCfg() gpu.Config {
	cfg := gpu.Volta()
	cfg.NumSMs = 1
	cfg.RFRegsPerSM = 128
	return cfg
}

// TestLivenessIntervals drives the tracer with hand-built event sequences
// and checks the injection-visibility semantics: a flip at cycle c is live
// iff the first register event at cycle >= c is a read.
func TestLivenessIntervals(t *testing.T) {
	l := NewLiveness(tinyCfg())
	l.OnRegAlloc(0, 0, 4, 2)
	l.OnRegWrite(0, 0, 5)
	l.OnRegRead(0, 0, 7)
	l.OnRegRead(0, 0, 9)
	l.OnRegWrite(0, 0, 12)
	l.OnRegRelease(0, 0, 4, 20)

	cases := []struct {
		cycle int64
		live  bool
	}{
		{3, false},  // allocated, unwritten, never read before the write at 5
		{5, false},  // the write at 5 overwrites the flip before any read
		{6, true},   // consumed by the read at 7
		{7, true},   // hook fires before cycle-7 execution: read sees the flip
		{9, true},   // last read of the value
		{10, false}, // overwritten at 12 before any read
		{12, false},
		{15, false}, // value written at 12 is never read: dead until release
		{20, false},
	}
	for _, c := range cases {
		if got := l.Live(0, 0, c.cycle); got != c.live {
			t.Errorf("Live(cycle=%d) = %v, want %v", c.cycle, got, c.live)
		}
	}
}

// TestLivenessSameCycleOrder: event order within a cycle decides — a read
// recorded after a same-cycle write consumes the new value, not the flip; a
// read of the stale value before a same-cycle overwrite still exposes it.
func TestLivenessSameCycleOrder(t *testing.T) {
	l := NewLiveness(tinyCfg())
	l.OnRegAlloc(0, 0, 2, 0)
	// reg 0: W(5) then R(5) — the read sees the freshly written value.
	l.OnRegWrite(0, 0, 5)
	l.OnRegRead(0, 0, 5)
	if l.Live(0, 0, 5) {
		t.Error("flip at 5 is overwritten by the same-cycle write before the read")
	}
	// reg 1: W(3), R(5), W(5) — the read consumes the old value first.
	l.OnRegWrite(0, 1, 3)
	l.OnRegRead(0, 1, 5)
	l.OnRegWrite(0, 1, 5)
	if !l.Live(0, 1, 5) {
		t.Error("flip at 5 reaches the read of the pre-overwrite value")
	}
	if l.Live(0, 1, 6) {
		t.Error("value written at 5 is never read")
	}
}

// TestLivenessUninitializedRead: a register read before ever being written
// (garbage read) still exposes flips — liveness may not assume a write.
func TestLivenessUninitializedRead(t *testing.T) {
	l := NewLiveness(tinyCfg())
	l.OnRegAlloc(0, 0, 1, 2)
	l.OnRegRead(0, 0, 6)
	if !l.Live(0, 0, 4) {
		t.Error("flip before an uninitialized read must be live")
	}
	if l.Live(0, 0, 2) {
		t.Error("flip at the allocation cycle predates the block's visibility")
	}
}

// TestRFBlocksAt reconstructs the allocated-block list the injector would
// enumerate, in CTA placement order, across alloc/release/realloc.
func TestRFBlocksAt(t *testing.T) {
	l := NewLiveness(tinyCfg())
	l.OnRegAlloc(0, 0, 64, 2)
	l.OnRegAlloc(0, 64, 32, 4)
	l.OnRegRelease(0, 0, 64, 9)
	l.OnRegAlloc(0, 0, 16, 12) // base 0 reused by a later CTA

	at := func(c int64) []sim.RFBlock { return l.RFBlocksAt(0, c, nil) }
	if got := at(2); len(got) != 0 {
		t.Errorf("blocks at alloc cycle = %v, want none (visible from the next cycle)", got)
	}
	if got := at(3); len(got) != 1 || got[0] != (sim.RFBlock{Base: 0, Size: 64}) {
		t.Errorf("blocks at 3 = %v", got)
	}
	if got := at(9); len(got) != 2 {
		t.Errorf("blocks at release cycle = %v, want both (hook fires before retire)", got)
	}
	if got := at(10); len(got) != 1 || got[0] != (sim.RFBlock{Base: 64, Size: 32}) {
		t.Errorf("blocks at 10 = %v", got)
	}
	if got := at(13); len(got) != 2 || got[0].Base != 64 || got[1] != (sim.RFBlock{Base: 0, Size: 16}) {
		t.Errorf("blocks after realloc = %v, want placement order [64, 0]", got)
	}
}

// TestTraceRFSmoke: tracing a real benchmark terminates, observes activity,
// and its summed live cycles upper-bound the written-value ACE cycles of the
// classical tracker (garbage reads count as live but not as ACE).
func TestTraceRFSmoke(t *testing.T) {
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.Volta()
	job := app.Build()
	l, err := TraceRF(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Cycles <= 0 {
		t.Fatalf("traced run reported %d cycles", l.Cycles)
	}
	var liveCycles int64
	for sm := range l.regs {
		for phys := range l.regs[sm] {
			for _, iv := range l.regs[sm][phys].ivs {
				liveCycles += iv.Hi - iv.Lo
			}
		}
	}
	if liveCycles <= 0 {
		t.Fatal("no live intervals recorded")
	}
	res, err := AnalyzeRF(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if liveCycles < res.ACECycles {
		t.Errorf("live cycles %d < ACE cycles %d: liveness must cover every ACE interval", liveCycles, res.ACECycles)
	}
}
