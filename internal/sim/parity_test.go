package sim

import (
	"bytes"
	"testing"

	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
)

// TestLegacyParityAllApps is the core bit-identity property of the hot-loop
// overhaul: for every shipped application, the pre-decoded µop core and the
// reference decode-and-switch interpreter (Options.Legacy) must produce the
// same Result in full — outputs, cycle count, launch spans, and per-kernel
// statistics. Every downstream equivalence (checkpoint forks, convergence
// joins, campaign tallies) leans on this property.
func TestLegacyParityAllApps(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range kernels.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			fast := Run(app.Build(), cfg, Options{})
			slow := Run(app.Build(), cfg, Options{Legacy: true})
			if (fast.Err == nil) != (slow.Err == nil) || fast.TimedOut != slow.TimedOut || fast.DUEFlag != slow.DUEFlag {
				t.Fatalf("status diverges: fast err=%v timeout=%v due=%v, legacy err=%v timeout=%v due=%v",
					fast.Err, fast.TimedOut, fast.DUEFlag, slow.Err, slow.TimedOut, slow.DUEFlag)
			}
			if fast.Cycles != slow.Cycles {
				t.Errorf("cycles: fast %d, legacy %d", fast.Cycles, slow.Cycles)
			}
			if !bytes.Equal(fast.Output, slow.Output) {
				t.Error("outputs differ")
			}
			if len(fast.Spans) != len(slow.Spans) {
				t.Fatalf("spans: fast %d, legacy %d", len(fast.Spans), len(slow.Spans))
			}
			for i := range fast.Spans {
				if fast.Spans[i] != slow.Spans[i] {
					t.Errorf("span %d: fast %+v, legacy %+v", i, fast.Spans[i], slow.Spans[i])
				}
			}
			if len(fast.PerKernel) != len(slow.PerKernel) {
				t.Fatalf("kernel stats: fast %d, legacy %d", len(fast.PerKernel), len(slow.PerKernel))
			}
			for name, ks := range fast.PerKernel {
				ref := slow.PerKernel[name]
				if ref == nil || *ks != *ref {
					t.Errorf("kernel %s stats diverge:\nfast   %+v\nlegacy %+v", name, ks, ref)
				}
			}
		})
	}
}
