package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"gpurel/internal/gpu"
)

// resultsEqual compares everything a Result carries that injection
// classification can observe.
func resultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) || got.TimedOut != want.TimedOut ||
		got.DUEFlag != want.DUEFlag || got.Aborted != want.Aborted {
		t.Fatalf("%s: flags diverge: got %+v, want %+v", label, got, want)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
	if !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("%s: outputs differ", label)
	}
	if len(got.Spans) != len(want.Spans) {
		t.Fatalf("%s: %d spans, want %d", label, len(got.Spans), len(want.Spans))
	}
	for i := range got.Spans {
		if got.Spans[i] != want.Spans[i] {
			t.Fatalf("%s: span %d: %+v, want %+v", label, i, got.Spans[i], want.Spans[i])
		}
	}
	if len(got.PerKernel) != len(want.PerKernel) {
		t.Fatalf("%s: %d kernels, want %d", label, len(got.PerKernel), len(want.PerKernel))
	}
	for name, ks := range got.PerKernel {
		ref := want.PerKernel[name]
		if ref == nil || *ks != *ref {
			t.Fatalf("%s: kernel %s stats diverge:\n%+v\n%+v", label, name, ks, ref)
		}
	}
}

// TestSnapshotRoundTrip: resuming the reference run from any checkpoint and
// letting it finish must reproduce the reference Result exactly — outputs,
// cycle count, spans, per-kernel stats.
func TestSnapshotRoundTrip(t *testing.T) {
	const n = 512
	cfg := gpu.Volta()
	for name, build := range map[string]struct {
		grid, block int
	}{"multiCTA": {4, 128}, "oversubscribed": {16, 128}} {
		t.Run(name, func(t *testing.T) {
			job, _, _ := buildJob(n, addOne(n), build.grid, build.block)
			golden := Run(job, cfg, Options{})
			if golden.Err != nil {
				t.Fatal(golden.Err)
			}
			snaps := NewSnapshotSet(golden.Cycles/8+1, 0)
			ref := Run(job, cfg, Options{Checkpoint: snaps})
			resultsEqual(t, "checkpointing run", ref, golden)
			if snaps.Len() == 0 {
				t.Fatal("no snapshots captured")
			}
			for i := 0; i < snaps.Len(); i++ {
				s := snaps.snaps[i]
				res := Run(job, cfg, Options{Resume: s})
				resultsEqual(t, "resumed run", res, golden)
			}
		})
	}
}

// TestResumeWithInjectionEquivalence: a faulty run resumed from a snapshot
// below its injection cycle must be bit-identical to the same faulty run
// simulated from cycle zero — the prefix it skips is fault-free and hence
// exactly what the snapshot captured.
func TestResumeWithInjectionEquivalence(t *testing.T) {
	const n = 512
	cfg := gpu.Volta()
	job, _, _ := buildJob(n, addOne(n), 4, 128)
	golden := Run(job, cfg, Options{})
	snaps := NewSnapshotSet(golden.Cycles/10+1, 0)
	Run(job, cfg, Options{Checkpoint: snaps})

	flipAt := func(rng *rand.Rand) func(*Machine) {
		return func(m *Machine) {
			for _, sm := range m.SMs {
				blocks := sm.AllocatedRF()
				if len(blocks) == 0 {
					continue
				}
				blk := blocks[rng.Intn(len(blocks))]
				sm.RF[blk.Base+rng.Intn(blk.Size)] ^= 1 << uint(rng.Intn(32))
				return
			}
		}
	}
	resumed := 0
	for seed := int64(0); seed < 25; seed++ {
		cycle := 1 + rand.New(rand.NewSource(seed)).Int63n(golden.Cycles)
		base := Options{MaxCycles: golden.Cycles * 10, AtCycle: cycle}

		brute := base
		brute.OnCycle = flipAt(rand.New(rand.NewSource(1000 + seed)))
		want := Run(job, cfg, brute)

		fast := base
		fast.OnCycle = flipAt(rand.New(rand.NewSource(1000 + seed)))
		if s := snaps.Before(cycle); s != nil {
			fast.Resume = s
			resumed++
		}
		got := Run(job, cfg, fast)
		resultsEqual(t, "forked faulty run", got, want)
	}
	if resumed == 0 {
		t.Error("no run resumed from a checkpoint — Before never matched")
	}
}

// TestConvergeDetection: a run whose hook fires but perturbs nothing is in
// golden state at the next checkpoint; convergence must detect that, skip
// the suffix, and still carry golden-identical progress up to the join.
func TestConvergeDetection(t *testing.T) {
	const n = 512
	cfg := gpu.Volta()
	job, _, _ := buildJob(n, addOne(n), 4, 128)
	golden := Run(job, cfg, Options{})
	snaps := NewSnapshotSet(golden.Cycles/10+1, 0)
	Run(job, cfg, Options{Checkpoint: snaps})

	cycle := golden.Cycles / 3
	res := Run(job, cfg, Options{
		MaxCycles: golden.Cycles * 10,
		AtCycle:   cycle,
		OnCycle:   func(m *Machine) {},
		Converge:  snaps,
	})
	if !res.Converged {
		t.Fatal("no-op injection did not converge back to golden")
	}
	if res.ConvergedAt <= cycle || res.ConvergedAt > golden.Cycles {
		t.Fatalf("converged at cycle %d, outside (%d, %d]", res.ConvergedAt, cycle, golden.Cycles)
	}
	// A genuinely corrupting flip must NOT converge into a masked-looking
	// state before its damage is visible: converge compares complete state,
	// so any RF difference blocks the join.
	perturbed := Run(job, cfg, Options{
		MaxCycles: golden.Cycles * 10,
		AtCycle:   cycle,
		OnCycle: func(m *Machine) {
			for _, sm := range m.SMs {
				if blocks := sm.AllocatedRF(); len(blocks) > 0 {
					sm.RF[blocks[0].Base] ^= 1 << 31
					return
				}
			}
		},
		Converge: snaps,
	})
	if perturbed.Converged && perturbed.ConvergedAt == snaps.Before(cycle+1).Cycle() {
		t.Error("corrupted state converged at a pre-injection checkpoint")
	}
}

// TestRunPoolDeterminism: recycling machine state through a RunPool must not
// leak residue between runs — pooled and fresh runs agree bit for bit.
func TestRunPoolDeterminism(t *testing.T) {
	const n = 512
	cfg := gpu.Volta()
	job, _, _ := buildJob(n, addOne(n), 4, 128)
	golden := Run(job, cfg, Options{})
	pool := NewRunPool()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6; i++ {
		// Alternate corrupting and clean runs so a stale-state leak from the
		// corrupted machine would show up in the next clean run.
		res := Run(job, cfg, Options{
			MaxCycles: golden.Cycles * 10,
			AtCycle:   1 + rng.Int63n(golden.Cycles),
			OnCycle: func(m *Machine) {
				for _, sm := range m.SMs {
					if blocks := sm.AllocatedRF(); len(blocks) > 0 {
						sm.RF[blocks[0].Base+rng.Intn(blocks[0].Size)] ^= 1 << uint(rng.Intn(32))
						return
					}
				}
			},
			Pool: pool,
		})
		_ = res
		clean := Run(job, cfg, Options{Pool: pool})
		resultsEqual(t, "pooled clean run", clean, golden)
	}
}

// synthSet builds a SnapshotSet with fabricated snapshots for unit-testing
// the stride/budget mechanics without running the simulator.
func synthSet(stride, budget int64, cycles []int64, each int64) *SnapshotSet {
	s := NewSnapshotSet(stride, budget)
	for _, c := range cycles {
		s.snaps = append(s.snaps, &Snapshot{cycle: c, fixed: each, bytes: each})
		s.bytes += each
	}
	return s
}

func TestSnapshotSetBeforeAndAt(t *testing.T) {
	s := synthSet(10, 0, []int64{10, 20, 30, 40}, 1)
	cases := []struct {
		c    int64
		want int64 // expected Before cycle, 0 = nil
	}{{5, 0}, {10, 0}, {11, 10}, {20, 10}, {35, 30}, {40, 30}, {41, 40}, {1000, 40}}
	for _, c := range cases {
		got := s.Before(c.c)
		switch {
		case c.want == 0 && got != nil:
			t.Errorf("Before(%d) = cycle %d, want nil", c.c, got.cycle)
		case c.want != 0 && (got == nil || got.cycle != c.want):
			t.Errorf("Before(%d) = %v, want cycle %d", c.c, got, c.want)
		}
	}
	if s.at(20) == nil || s.at(20).cycle != 20 {
		t.Error("at(20) must find the exact snapshot")
	}
	if s.at(25) != nil || s.at(50) != nil {
		t.Error("at must return nil off the grid / past the end")
	}
}

func TestSnapshotSetWiden(t *testing.T) {
	// 8 snapshots of 100 bytes at stride 10; a 350-byte budget forces two
	// doublings: stride 40 keeps cycles 40 and 80 (2×100 ≤ 350).
	s := synthSet(10, 350, []int64{10, 20, 30, 40, 50, 60, 70, 80}, 100)
	for s.budget > 0 && s.bytes > s.budget {
		if !s.widen() {
			break
		}
	}
	if s.Stride() != 40 {
		t.Errorf("stride = %d, want 40", s.Stride())
	}
	if s.Len() != 2 || s.snaps[0].cycle != 40 || s.snaps[1].cycle != 80 {
		t.Errorf("kept %d snaps: %+v", s.Len(), s.snaps)
	}
	if s.Evicted() != 6 || s.Bytes() != 200 {
		t.Errorf("evicted=%d bytes=%d, want 6/200", s.Evicted(), s.Bytes())
	}

	// A single over-budget snapshot disables capture entirely.
	s = synthSet(10, 50, []int64{10}, 100)
	if s.widen() {
		t.Error("widen with one snapshot must give up")
	}
	if s.Len() != 0 || s.Stride() != 0 || s.Bytes() != 0 || s.Evicted() != 1 {
		t.Errorf("disable left state: len=%d stride=%d bytes=%d evicted=%d",
			s.Len(), s.Stride(), s.Bytes(), s.Evicted())
	}
}

// TestSnapshotBudgetWidensLive: an end-to-end run under a tight budget must
// keep retained bytes within it (or disable capture), never exceed it.
func TestSnapshotBudgetWidensLive(t *testing.T) {
	const n = 512
	cfg := gpu.Volta()
	job, _, _ := buildJob(n, addOne(n), 4, 128)
	golden := Run(job, cfg, Options{})

	probe := NewSnapshotSet(golden.Cycles/16+1, 0)
	Run(job, cfg, Options{Checkpoint: probe})
	if probe.Len() < 4 {
		t.Skipf("run too short for budget pressure: %d snaps", probe.Len())
	}
	// Derive pressure from the probe's shared-aware retained total: one byte
	// below it, so the identical replay must widen at least once. (Snapshot
	// standalone sizes overstate the marginal cost under copy-on-write
	// sharing, so the budget has to come from set-level accounting.)
	budget := probe.Bytes() - 1
	tight := NewSnapshotSet(golden.Cycles/16+1, budget)
	res := Run(job, cfg, Options{Checkpoint: tight})
	resultsEqual(t, "budgeted checkpointing run", res, golden)
	if tight.Bytes() > budget {
		t.Errorf("retained %d bytes over the %d budget", tight.Bytes(), budget)
	}
	if tight.Evicted() == 0 {
		t.Error("tight budget evicted nothing")
	}
	if tight.Stride() != 0 && tight.Stride() <= probe.stride {
		t.Errorf("stride did not widen: %d <= %d", tight.Stride(), probe.stride)
	}
}
