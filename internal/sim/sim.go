// Package sim is the microarchitecture-level GPU simulator — the GPGPU-Sim
// analogue on which cross-layer AVF measurement runs. It models an array of
// SMs with physical register files and shared memories (real storage arrays
// with per-cycle allocation, the fault-injection targets), per-SM L1 data
// and texture caches, a shared write-back L2, SIMT divergence, CTA-wide
// barriers, CTA scheduling under occupancy limits, and an in-order
// scoreboard timing model.
//
// A fault-injection hook fires at an exact cycle and receives the Machine,
// giving the injector access to every storage array exactly as gpuFI-4
// patches GPGPU-Sim's structures.
package sim

import (
	"fmt"
	"math/bits"

	"gpurel/internal/device"
	"gpurel/internal/exec"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/uop"
)

// block is a contiguous allocation in a physical storage array.
type block struct{ base, size int }

// allocator is a first-fit free-list allocator over [0, capacity).
type allocator struct {
	capacity int
	free     []block
}

func newAllocator(capacity int) *allocator {
	return &allocator{capacity: capacity, free: []block{{0, capacity}}}
}

func (a *allocator) alloc(size int) (int, bool) {
	if size == 0 {
		return 0, true
	}
	for i := range a.free {
		if a.free[i].size >= size {
			base := a.free[i].base
			a.free[i].base += size
			a.free[i].size -= size
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return base, true
		}
	}
	return 0, false
}

func (a *allocator) release(base, size int) {
	if size == 0 {
		return
	}
	// insert sorted and coalesce
	pos := len(a.free)
	for i := range a.free {
		if a.free[i].base > base {
			pos = i
			break
		}
	}
	a.free = append(a.free, block{})
	copy(a.free[pos+1:], a.free[pos:])
	a.free[pos] = block{base, size}
	// coalesce around pos
	merged := a.free[:0]
	for _, b := range a.free {
		n := len(merged)
		if n > 0 && merged[n-1].base+merged[n-1].size == b.base {
			merged[n-1].size += b.size
		} else {
			merged = append(merged, b)
		}
	}
	a.free = merged
}

// Copy-on-write snapshot page geometry. RF pages are counted in registers
// (uint32 words), SMEM pages in bytes. Small pages maximize structural
// sharing between consecutive snapshots; the dirty bitsets stay tiny (one
// uint64 covers 64 pages).
const (
	rfPageWords = 512
	smPageBytes = 512
)

// SM is one streaming multiprocessor: its physical register file and shared
// memory arrays (injection targets), caches, and resident CTAs.
type SM struct {
	ID      int
	RF      []uint32
	Smem    []byte
	rfAlloc *allocator
	smAlloc *allocator
	L1D     *mem.Cache
	L1T     *mem.Cache
	hier    mem.Hierarchy

	ctas        []*ctaRT
	threadsUsed int
	issuePtr    int

	// Per-page dirty bits for copy-on-write snapshots: bit p set means RF
	// (resp. SMEM) page p may have diverged from the runner's base snapshot.
	// The simulator does not mark individual architectural writes — instead
	// every page overlapping a resident CTA's allocation is marked at each
	// snapshot sync point, which covers all interpreter writes at zero
	// hot-path cost. Code that mutates RF/Smem directly from outside the
	// interpreter (fault injectors, tests poking arrays through Machine)
	// must call MarkRF/MarkSmem, because such writes can land outside any
	// resident allocation (bursts spilling past a block, stuck-at cells
	// persisting after the CTA retires).
	rfDirty []uint64
	smDirty []uint64

	// slots flattens resident warps for round-robin issue: one entry per
	// (cta, warp) in CTA placement order. Rebuilt whenever residency
	// changes so the issue scan is a single index.
	slots []warpSlot

	// nextReady is a conservative lower bound on the next cycle any resident
	// warp can issue, letting cycleSM skip the slot scan entirely while every
	// warp is stalled on a latency (the common state under memory-bound
	// kernels). 0 forces a scan; any event that can change issue eligibility
	// outside the scan itself (placement, retirement, restore, reset) resets
	// it. Derived state: never snapshotted or compared.
	nextReady int64
}

type warpSlot struct {
	cta *ctaRT
	w   int
	m   *warpMeta // &cta.meta[w], so the issue scan skips a double deref
}

// rebuildSlots refreshes the flattened issue order after a residency change.
func (s *SM) rebuildSlots() {
	s.slots = s.slots[:0]
	for _, c := range s.ctas {
		for w := range c.warps {
			s.slots = append(s.slots, warpSlot{c, w, &c.meta[w]})
		}
	}
}

// MarkRF records a direct mutation of RF[idx] for copy-on-write snapshot
// tracking. Out-of-range indices are ignored.
func (s *SM) MarkRF(idx int) {
	if idx >= 0 && idx < len(s.RF) {
		markPage(s.rfDirty, idx/rfPageWords)
	}
}

// MarkRFRange records direct mutations of RF[base:base+n].
func (s *SM) MarkRFRange(base, n int) {
	markPages(s.rfDirty, base, n, len(s.RF), rfPageWords)
}

// MarkSmem records a direct mutation of Smem[idx].
func (s *SM) MarkSmem(idx int) {
	if idx >= 0 && idx < len(s.Smem) {
		markPage(s.smDirty, idx/smPageBytes)
	}
}

// MarkSmemRange records direct mutations of Smem[base:base+n].
func (s *SM) MarkSmemRange(base, n int) {
	markPages(s.smDirty, base, n, len(s.Smem), smPageBytes)
}

func markPage(bits []uint64, p int) {
	bits[p>>6] |= 1 << (p & 63)
}

func markPages(bits []uint64, base, n, limit, pageSize int) {
	if n <= 0 {
		return
	}
	if base < 0 {
		base = 0
	}
	end := base + n
	if end > limit {
		end = limit
	}
	if base >= end {
		return
	}
	for p := base / pageSize; p <= (end-1)/pageSize; p++ {
		markPage(bits, p)
	}
}

func dirtyBit(bits []uint64, p int) bool {
	return bits[p>>6]&(1<<(p&63)) != 0
}

func pageCount(n, pageSize int) int {
	return (n + pageSize - 1) / pageSize
}

// AllocatedRF returns the allocated register blocks (base, size in
// registers) of resident CTAs; the injector draws uniformly from these.
func (s *SM) AllocatedRF() []RFBlock {
	var out []RFBlock
	for _, c := range s.ctas {
		if c.rfSize > 0 {
			out = append(out, RFBlock{Base: c.rfBase, Size: c.rfSize})
		}
	}
	return out
}

// AllocatedSmem returns the allocated shared-memory blocks in bytes.
func (s *SM) AllocatedSmem() []RFBlock {
	var out []RFBlock
	for _, c := range s.ctas {
		if c.smSize > 0 {
			out = append(out, RFBlock{Base: c.smBase, Size: c.smSize})
		}
	}
	return out
}

// RFBlock is a contiguous allocated region of a storage array.
type RFBlock struct{ Base, Size int }

// CTABlock is an allocated register-file region annotated with the program
// of the CTA that owns it, letting injectors map a physical offset back to
// the architectural register it holds (offset % Prog.NumRegs).
type CTABlock struct {
	Base, Size int
	Prog       *isa.Program
}

// ResidentRF returns the allocated register blocks with their owning
// programs. The enumeration order and rfSize>0 filter match AllocatedRF
// exactly, so an injector drawing the k-th register sees the same site
// through either view.
func (s *SM) ResidentRF() []CTABlock {
	var out []CTABlock
	for _, c := range s.ctas {
		if c.rfSize > 0 {
			out = append(out, CTABlock{Base: c.rfBase, Size: c.rfSize, Prog: c.prog})
		}
	}
	return out
}

// Machine is the injectable hardware state handed to the OnCycle hook.
type Machine struct {
	Cfg gpu.Config
	SMs []*SM
	L2  *mem.Cache
	Mem *device.Memory

	stop *bool
}

// StopRun asks the simulator to abandon the run as soon as the hook returns.
// The Result comes back with Aborted set and no output. Injectors use it
// when static analysis already proves the outcome, making the remaining
// simulation pure waste.
func (m *Machine) StopRun() {
	if m.stop != nil {
		*m.stop = true
	}
}

// warpMeta is the scoreboard state of one warp.
type warpMeta struct {
	ready int64
	atBar bool
	done  bool
}

// ctaRT is a resident CTA.
type ctaRT struct {
	launch *device.Launch
	prog   *isa.Program
	uprog  *uop.Program // pre-decoded form; nil = use the reference interpreter
	params []uint32
	cx, cy int

	warps []*exec.Warp
	meta  []warpMeta
	preds []uint8
	live  int // warps not yet done

	rfBase, rfSize int
	smBase, smSize int
	threads        int

	// schedID is the dense CTA id in placement order, unique across the
	// whole run. SchedTracer callbacks report it, and snapshots carry it so
	// resumed runs keep issuing coherent ids.
	schedID int
}

// KernelStats aggregates the fault-free profile of one kernel — the resource
// utilisation metrics of Figure 3.
type KernelStats struct {
	Cycles       int64
	DynInstrs    int64
	LoadInstrs   int64
	StoreInstrs  int64
	SmemInstrs   int64
	L1D, L1T, L2 mem.Stats
	DRAMRead     int64
	DRAMWrite    int64
	OccupancySum int64 // resident threads summed over active cycles
	Launches     int64
}

// Occupancy returns achieved occupancy: mean resident threads over the
// kernel's cycles divided by the chip's thread capacity.
func (k *KernelStats) Occupancy(cfg gpu.Config) float64 {
	if k.Cycles == 0 {
		return 0
	}
	capacity := float64(cfg.NumSMs * cfg.MaxThreadsPerSM)
	return float64(k.OccupancySum) / float64(k.Cycles) / capacity
}

// LaunchSpan records the cycle window of one launch, with the data needed
// for derating factors.
type LaunchSpan struct {
	Kernel        string
	Start, End    int64
	Threads       int64 // total threads incl. replicas
	RegsPerThread int
	SmemPerCTA    int
	CTAs          int64
}

// RFDeratingFactor is size_per_thread × num_threads / system_size for the
// register file (§II-B), capped at 1.
func (s LaunchSpan) RFDeratingFactor(cfg gpu.Config) float64 {
	df := float64(s.RegsPerThread) * float64(s.Threads) / float64(int64(cfg.NumSMs)*int64(cfg.RFRegsPerSM))
	return min(df, 1)
}

// SmemDeratingFactor is the shared-memory analogue, allocated per CTA.
func (s LaunchSpan) SmemDeratingFactor(cfg gpu.Config) float64 {
	df := float64(s.SmemPerCTA) * float64(s.CTAs) / float64(int64(cfg.NumSMs)*int64(cfg.SmemPerSM))
	return min(df, 1)
}

// Result reports one simulated run.
type Result struct {
	Err       error // non-nil = DUE
	TimedOut  bool
	Aborted   bool // run abandoned via Machine.StopRun
	Output    []byte
	Cycles    int64
	Spans     []LaunchSpan
	PerKernel map[string]*KernelStats
	DUEFlag   bool
	// Converged reports that the run's complete machine state became
	// bit-identical to the reference snapshot at cycle ConvergedAt (see
	// Options.Converge); the remaining simulation was skipped because its
	// outcome equals the reference run's suffix.
	Converged   bool
	ConvergedAt int64
}

// RFTracer observes register-file activity for analytical (ACE-style)
// vulnerability analysis. Callbacks use physical register indices within an
// SM. Implementations must be fast; they run on every register access.
type RFTracer interface {
	OnRegWrite(sm, phys int, cycle int64)
	OnRegRead(sm, phys int, cycle int64)
	OnRegAlloc(sm, base, size int, cycle int64)
	OnRegRelease(sm, base, size int, cycle int64)
}

// SchedTracer observes the deterministic schedule of a run: every CTA
// placement and retirement with its physical register-file and shared-memory
// allocation, and every warp instruction issue with its post-predication
// active lane mask. CTAs are identified by a dense id assigned in placement
// order (unique across the whole run). Signatures use only basic types and
// *isa.Program so analysis packages can implement the interface structurally
// without importing sim. Implementations must be fast; OnIssue runs once per
// issued instruction on the hot loop.
type SchedTracer interface {
	// OnCTAPlace fires when a CTA lands on an SM: phys allocations are
	// [rfBase, rfBase+rfSize) registers and [smBase, smBase+smSize) bytes.
	OnCTAPlace(cta, sm, rfBase, rfSize, smBase, smSize, threads int, prog *isa.Program, cycle int64)
	// OnIssue fires after one warp instruction executes: pc is the executed
	// instruction's index and mask the lanes that actually ran it (guard
	// predicates already applied — a lane outside the mask touched nothing).
	OnIssue(cta, warp, pc int, mask uint32, cycle int64)
	// OnCTARetire fires when the CTA's allocations are released.
	OnCTARetire(cta int, cycle int64)
}

// Options configures a run.
type Options struct {
	// MaxCycles is the timeout budget (0 = none).
	MaxCycles int64
	// AtCycle/OnCycle: fault-injection hook, fired once when the global
	// cycle counter reaches AtCycle (must be > 0 to arm).
	AtCycle int64
	OnCycle func(*Machine)
	// EachCycle, when set, fires at the top of every cycle once the AtCycle
	// hook has fired — on the injection cycle itself immediately after
	// OnCycle, then every cycle until the run ends. Persistent fault models
	// (stuck-at cells, latched control state) use it to re-assert the
	// defective bit so that intervening writes cannot heal it. Callbacks
	// must be idempotent within a cycle and cheap; they run on the hot loop.
	EachCycle func(*Machine)
	// RFTrace, when set, receives register-file liveness events (used by
	// the ACE analyzer).
	RFTrace RFTracer
	// SchedTrace, when set, receives the scheduled execution order (used by
	// the static interval engine in internal/flow). CTA ids are dense in
	// placement order and survive Resume (the id counter is part of the
	// snapshot), but a resumed run only reports events from the snapshot
	// cycle on — OnCTAPlace for already-resident CTAs does not replay.
	SchedTrace SchedTracer

	// Legacy forces the reference decode-and-switch interpreter and
	// full-copy snapshot restores, disabling the pre-decoded µop core and
	// copy-on-write page sharing. It exists so differential tests and
	// benchmarks can compare the fast core against the reference
	// implementation inside one binary.
	Legacy bool

	// Checkpoint, when set, captures a machine snapshot into the set at
	// every cycle divisible by its stride (reference/golden runs).
	Checkpoint *SnapshotSet
	// Resume, when set, restores the snapshot and continues from its cycle
	// instead of simulating from cycle 0. The snapshot must have been taken
	// from a run of the same job on the same configuration, and AtCycle (if
	// armed) must be strictly greater than the snapshot's cycle.
	Resume *Snapshot
	// Converge, when set, compares live machine state against the set's
	// snapshot at each checkpoint cycle once the injection hook has fired;
	// on exact match the run stops with Converged set, since its remaining
	// trajectory is bit-identical to the reference run's.
	Converge *SnapshotSet
	// Pool, when set, recycles machine storage arrays across runs to keep
	// per-run allocation off the injection hot path.
	Pool *RunPool
}

// Run simulates the job on a chip with configuration cfg.
func Run(job *device.Job, cfg gpu.Config, opts Options) *Result {
	r := newRunner(job, cfg, opts)
	res := r.run()
	if opts.Pool != nil {
		opts.Pool.put(r)
	}
	return res
}

type runner struct {
	job  *device.Job
	cfg  gpu.Config
	opts Options

	mem     *device.Memory
	sms     []*SM
	l2      *mem.Cache
	cycle   int64
	fired   bool
	stopped bool

	// Schedule position: step index, steps consumed against the budget, and
	// the in-flight launch (nil between steps). Held as fields rather than
	// run() locals so snapshots can capture and restore them.
	si    int
	steps int
	cur   *launchState

	dramRead, dramWrite int64

	// schedNext is the next dense CTA id in placement order (snapshotted so
	// resumed runs continue the sequence).
	schedNext int

	// Per-kernel stats as dense parallel slices keyed by first-launch order;
	// Result.PerKernel is materialized from them once, when the run ends.
	// Hot-loop code holds *KernelStats pointers into kstats only within one
	// launch (no appends happen mid-launch, so the pointers stay valid).
	knames []string
	kstats []KernelStats

	// fast selects the pre-decoded µop core (no Legacy, no RFTrace).
	fast bool

	// baseSnap is the provenance base for copy-on-write pages: every RF,
	// SMEM and device-memory page whose dirty bit is clear is bit-identical
	// to (and for capture, shareable with) the corresponding page of this
	// snapshot. nil means no provenance — captures copy and restores
	// overwrite everything. It travels with the pooled machine, since the
	// dirty bits live in the SM arrays it validates.
	baseSnap *Snapshot

	// lastDiff remembers the storage page where the previous snapshot
	// compare failed, probed first on the next compare. Derived state:
	// never snapshotted or compared.
	lastDiff diffProbe

	res  *Result
	env  simEnv
	mach *Machine // memoized machine view handed to the cycle hooks
}

// diffProbe locates the first differing storage page of a failed snapshot
// compare: RF (or SMEM when smem is set) page `page` of SM `sm`.
type diffProbe struct {
	sm, page int
	smem     bool
	valid    bool
}

// launchState is the progress of one in-flight kernel launch.
type launchState struct {
	l         *device.Launch
	pending   []pendingCTA
	resident  int
	nextSM    int
	span      LaunchSpan
	statsBase statsSnapshot
}

func newRunner(job *device.Job, cfg gpu.Config, opts Options) *runner {
	r := &runner{
		job:  job,
		cfg:  cfg,
		opts: opts,
		fast: !opts.Legacy && opts.RFTrace == nil,
		res:  &Result{},
	}
	var pm *pooledMachine
	if opts.Pool != nil {
		pm = opts.Pool.get(cfg, job.Mem.Size())
	}
	if pm != nil {
		r.sms, r.l2, r.mem = pm.sms, pm.l2, pm.mem
		if opts.Resume == nil {
			// A fresh run must start from pristine state; a recycled machine
			// carries the previous run's residue, which corrupted control
			// flow could observe (e.g. reading a register it never wrote).
			// Resumed runs skip this: restore overwrites every array.
			for _, sm := range r.sms {
				resetSM(sm, cfg)
			}
			r.l2.Reset()
			r.mem = job.Mem.CloneInto(r.mem)
		} else {
			// Resumed runs inherit the pooled machine's page provenance:
			// its arrays were last synced against pm.baseSnap, so a restore
			// only needs to overwrite pages that diverge from the target.
			r.baseSnap = pm.baseSnap
		}
	} else {
		r.mem = job.Mem.Clone()
		r.l2 = mem.NewCache("L2", cfg.L2Bytes, cfg.LineSize, cfg.L2Ways, cfg.L2MSHRs)
		for i := 0; i < cfg.NumSMs; i++ {
			sm := &SM{
				ID:      i,
				RF:      make([]uint32, cfg.RFRegsPerSM),
				Smem:    make([]byte, cfg.SmemPerSM),
				rfAlloc: newAllocator(cfg.RFRegsPerSM),
				smAlloc: newAllocator(cfg.SmemPerSM),
				L1D:     mem.NewCache(fmt.Sprintf("L1D%d", i), cfg.L1DBytes, cfg.LineSize, cfg.L1Ways, cfg.L1MSHRs),
				L1T:     mem.NewCache(fmt.Sprintf("L1T%d", i), cfg.L1TBytes, cfg.LineSize, cfg.L1Ways, cfg.L1MSHRs),
			}
			sm.rfDirty = make([]uint64, (pageCount(cfg.RFRegsPerSM, rfPageWords)+63)/64)
			sm.smDirty = make([]uint64, (pageCount(cfg.SmemPerSM, smPageBytes)+63)/64)
			r.sms = append(r.sms, sm)
		}
	}
	// The hierarchy holds pointers to this runner's DRAM counters, so it is
	// rewired even when the SM arrays come from the pool. The lookup memo
	// is re-gated per run: pooled caches may move between fast and legacy
	// runners.
	r.l2.MemoLookup = r.fast
	for _, sm := range r.sms {
		sm.L1D.MemoLookup = r.fast
		sm.L1T.MemoLookup = r.fast
		sm.hier = mem.Hierarchy{
			L1D: sm.L1D, L1T: sm.L1T, L2: r.l2,
			DRAMRead: &r.dramRead, DRAMWrite: &r.dramWrite,
			L1Lat: int64(cfg.L1Lat), L2Lat: int64(cfg.L2Lat), DRAMLat: int64(cfg.DRAMLat),
		}
	}
	r.env.r = r
	return r
}

// resetSM returns a pooled SM to its post-construction state.
func resetSM(sm *SM, cfg gpu.Config) {
	clear(sm.RF)
	clear(sm.Smem)
	sm.rfAlloc.free = append(sm.rfAlloc.free[:0], block{0, cfg.RFRegsPerSM})
	sm.smAlloc.free = append(sm.smAlloc.free[:0], block{0, cfg.SmemPerSM})
	sm.L1D.Reset()
	sm.L1T.Reset()
	sm.ctas = sm.ctas[:0]
	sm.slots = sm.slots[:0]
	sm.nextReady = 0
	sm.threadsUsed = 0
	sm.issuePtr = 0
}

func (r *runner) machine() *Machine {
	// Memoized: EachCycle hooks call this every cycle, and the referenced
	// state (SM slice, caches, memory image) is fixed for the runner's life.
	if r.mach == nil {
		r.mach = &Machine{Cfg: r.cfg, SMs: r.sms, L2: r.l2, Mem: r.mem, stop: &r.stopped}
	}
	return r.mach
}

// kernelStats returns the stats slot for name, appending one on first use.
// Kernels are few (a handful per job), so a linear scan over the dense slice
// beats a map here and keeps snapshot compare/copy allocation-free. The
// returned pointer is invalidated by the next append; hot-loop callers only
// hold it within a single launch.
func (r *runner) kernelStats(name string) *KernelStats {
	for i, n := range r.knames {
		if n == name {
			return &r.kstats[i]
		}
	}
	r.knames = append(r.knames, name)
	r.kstats = append(r.kstats, KernelStats{})
	return &r.kstats[len(r.kstats)-1]
}

// finalizeStats materializes the public PerKernel map from the dense slices
// once the run is over.
func (r *runner) finalizeStats() {
	r.res.PerKernel = make(map[string]*KernelStats, len(r.knames))
	for i, n := range r.knames {
		r.res.PerKernel[n] = &r.kstats[i]
	}
}

var (
	errSimTimeout   = fmt.Errorf("cycle budget exceeded")
	errSimAborted   = fmt.Errorf("run aborted by injector")
	errSimConverged = fmt.Errorf("state converged with reference run")
)

func (r *runner) run() *Result {
	res := r.runSteps()
	r.finalizeStats()
	return res
}

func (r *runner) runSteps() *Result {
	maxSteps := r.job.MaxScheduleSteps()
	if r.opts.Resume != nil {
		r.restore(r.opts.Resume)
	}
	for r.cur != nil || r.si < len(r.job.Steps) {
		if r.cur == nil {
			if r.steps >= maxSteps {
				r.res.TimedOut = true
				return r.res
			}
			r.steps++
			st := &r.job.Steps[r.si]
			if st.Host != nil {
				// Host access goes through cudaMemcpy, which is coherent with
				// L2: write dirty lines back so the host reads the kernels'
				// stores, then invalidate the GPU caches only if the host
				// actually wrote — read-only host steps (D2H checks, no-op
				// hardening guards) leave the caches warm.
				r.flushCaches(false)
				r.mem.ResetDirty()
				next := st.Host(r.mem, 0)
				if r.mem.Dirty() {
					r.flushCaches(true)
				}
				if next >= 0 {
					r.si = next
				} else {
					r.si++
				}
				continue
			}
			if err := r.beginLaunch(st.Launch); err != nil {
				r.res.Err = err
				return r.res
			}
		}
		if err := r.runLaunch(); err != nil {
			switch err {
			case errSimTimeout:
				r.res.TimedOut = true
			case errSimAborted:
				r.res.Aborted = true
			case errSimConverged:
				r.res.Converged = true
				r.res.ConvergedAt = r.cycle
			default:
				r.res.Err = err
			}
			return r.res
		}
		r.si++
	}
	r.flushCaches(false)
	r.res.Cycles = r.cycle
	r.res.Output = r.job.ReadOutputs(r.mem)
	if r.job.DUEFlag != 0 && r.mem.PeekU32(r.job.DUEFlag) != 0 {
		r.res.DUEFlag = true
	}
	return r.res
}

// flushCaches writes dirty L2 lines to DRAM; when invalidate is set the L1s
// and L2 are dropped as well (host-coherence points).
func (r *runner) flushCaches(invalidate bool) {
	r.l2.FlushTo(r.mem)
	if invalidate {
		r.l2.InvalidateAll()
		for _, sm := range r.sms {
			sm.L1D.InvalidateAll()
			sm.L1T.InvalidateAll()
		}
	}
}

type pendingCTA struct{ rep, cy, cx int }

// beginLaunch validates the launch and installs it as the in-flight launch
// state; runLaunch then advances it to completion.
func (r *runner) beginLaunch(l *device.Launch) error {
	prog := l.Kernel
	threads := l.ThreadsPerCTA()
	if threads == 0 || threads > r.cfg.MaxThreadsPerSM {
		return fmt.Errorf("launch %s: bad CTA size %d", l.Name(), threads)
	}
	rfNeed := threads * prog.NumRegs
	if rfNeed > r.cfg.RFRegsPerSM || l.SmemBytes > r.cfg.SmemPerSM {
		return fmt.Errorf("launch %s: CTA does not fit on an SM", l.Name())
	}

	cur := &launchState{l: l}
	for rep := 0; rep < l.NumReplicas(); rep++ {
		for cy := 0; cy < l.GridY; cy++ {
			for cx := 0; cx < l.GridX; cx++ {
				cur.pending = append(cur.pending, pendingCTA{rep, cy, cx})
			}
		}
	}

	ks := r.kernelStats(l.Name())
	ks.Launches++
	cur.span = LaunchSpan{
		Kernel:        l.Name(),
		Start:         r.cycle,
		Threads:       int64(threads) * int64(l.NumCTAs()),
		RegsPerThread: prog.NumRegs,
		SmemPerCTA:    l.SmemBytes,
		CTAs:          int64(l.NumCTAs()),
	}
	cur.statsBase = r.snapshotStats()

	// Per-kernel-launch L1 state: Volta flushes L1s between kernels.
	for _, sm := range r.sms {
		sm.L1D.InvalidateAll()
		sm.L1T.InvalidateAll()
	}
	r.cur = cur
	return nil
}

func (r *runner) runLaunch() error {
	cur := r.cur
	l := cur.l
	prog := l.Kernel
	// Looked up fresh (not cached in launchState): after a restore the stats
	// live in the rebuilt PerKernel map.
	ks := r.kernelStats(l.Name())

	for len(cur.pending) > 0 || cur.resident > 0 {
		// Place pending CTAs.
		for len(cur.pending) > 0 {
			placed := false
			for try := 0; try < len(r.sms); try++ {
				sm := r.sms[(cur.nextSM+try)%len(r.sms)]
				if r.tryPlace(sm, l, prog, &cur.pending[0]) {
					cur.nextSM = (cur.nextSM + try + 1) % len(r.sms)
					cur.pending = cur.pending[1:]
					cur.resident++
					placed = true
					break
				}
			}
			if !placed {
				break
			}
		}
		if cur.resident == 0 {
			return fmt.Errorf("launch %s: CTA cannot be placed on any SM", l.Name())
		}

		// One cycle.
		r.cycle++
		if r.opts.AtCycle > 0 && !r.fired && r.cycle >= r.opts.AtCycle {
			r.fired = true
			if r.opts.OnCycle != nil {
				r.opts.OnCycle(r.machine())
				r.wakeSMs()
			}
			if r.stopped {
				return errSimAborted
			}
		}
		if r.fired && r.opts.EachCycle != nil {
			r.opts.EachCycle(r.machine())
			r.wakeSMs()
			if r.stopped {
				return errSimAborted
			}
		}
		if r.opts.MaxCycles > 0 && r.cycle > r.opts.MaxCycles {
			return errSimTimeout
		}

		for _, sm := range r.sms {
			ks.OccupancySum += int64(sm.threadsUsed)
			if len(sm.ctas) == 0 {
				continue
			}
			var finished int
			var err error
			if r.opts.Legacy {
				finished, err = r.cycleSMLegacy(sm, ks)
			} else {
				finished, err = r.cycleSM(sm, ks)
			}
			if err != nil {
				return err
			}
			cur.resident -= finished
		}

		// End-of-cycle checkpoint hooks. Capture sees the state a resumed run
		// starts from; the convergence probe compares against it only after
		// the fault has been injected (before that the states match trivially).
		if ck := r.opts.Checkpoint; ck != nil {
			ck.offer(r)
		}
		if cv := r.opts.Converge; cv != nil && r.fired {
			if s := cv.at(r.cycle); s != nil && r.matches(s) {
				return errSimConverged
			}
		}
	}

	cur.span.End = r.cycle
	r.res.Spans = append(r.res.Spans, cur.span)
	ks.Cycles += cur.span.End - cur.span.Start
	r.accumulateStats(ks, cur.statsBase)
	r.cur = nil
	return nil
}

// wakeSMs discards every SM's cached idle-skip bound. Injection hooks can
// mutate scheduler state behind the scan's back — a flipped ready-timestamp
// bit or a cleared done/barrier latch makes a warp issueable earlier than
// the cached floor — and the reference scheduler, which rescans every
// cycle, would react immediately; the fast core must too.
func (r *runner) wakeSMs() {
	for _, sm := range r.sms {
		sm.nextReady = 0
	}
}

// statsSnapshot captures global counters so per-kernel deltas can be formed.
type statsSnapshot struct {
	l1d, l1t, l2        mem.Stats
	dramRead, dramWrite int64
}

func (r *runner) snapshotStats() statsSnapshot {
	var s statsSnapshot
	for _, sm := range r.sms {
		addStats(&s.l1d, sm.L1D.Stats)
		addStats(&s.l1t, sm.L1T.Stats)
	}
	s.l2 = r.l2.Stats
	s.dramRead, s.dramWrite = r.dramRead, r.dramWrite
	return s
}

func addStats(dst *mem.Stats, s mem.Stats) {
	dst.Accesses += s.Accesses
	dst.Misses += s.Misses
	dst.PendingHits += s.PendingHits
	dst.ReservFails += s.ReservFails
}

func subStats(a, b mem.Stats) mem.Stats {
	return mem.Stats{
		Accesses:    a.Accesses - b.Accesses,
		Misses:      a.Misses - b.Misses,
		PendingHits: a.PendingHits - b.PendingHits,
		ReservFails: a.ReservFails - b.ReservFails,
	}
}

func (r *runner) accumulateStats(ks *KernelStats, base statsSnapshot) {
	now := r.snapshotStats()
	addStats(&ks.L1D, subStats(now.l1d, base.l1d))
	addStats(&ks.L1T, subStats(now.l1t, base.l1t))
	addStats(&ks.L2, subStats(now.l2, base.l2))
	ks.DRAMRead += now.dramRead - base.dramRead
	ks.DRAMWrite += now.dramWrite - base.dramWrite
}

func (r *runner) tryPlace(sm *SM, l *device.Launch, prog *isa.Program, p *pendingCTA) bool {
	threads := l.ThreadsPerCTA()
	if len(sm.ctas) >= r.cfg.MaxCTAsPerSM || sm.threadsUsed+threads > r.cfg.MaxThreadsPerSM {
		return false
	}
	rfBase, ok := sm.rfAlloc.alloc(threads * prog.NumRegs)
	if !ok {
		return false
	}
	smBase, ok := sm.smAlloc.alloc(l.SmemBytes)
	if !ok {
		sm.rfAlloc.release(rfBase, threads*prog.NumRegs)
		return false
	}
	cta := &ctaRT{
		launch: l,
		prog:   prog,
		params: l.ParamsFor(p.rep),
		cx:     p.cx, cy: p.cy,
		preds:   make([]uint8, threads),
		rfBase:  rfBase,
		rfSize:  threads * prog.NumRegs,
		smBase:  smBase,
		smSize:  l.SmemBytes,
		threads: threads,
		schedID: r.schedNext,
	}
	r.schedNext++
	if r.fast {
		cta.uprog = uop.Cached(prog)
	}
	nWarps := (threads + 31) / 32
	for w := 0; w < nWarps; w++ {
		lanes := threads - w*32
		if lanes > 32 {
			lanes = 32
		}
		cta.warps = append(cta.warps, exec.NewWarp(lanes))
	}
	cta.meta = make([]warpMeta, nWarps)
	cta.live = nWarps
	sm.ctas = append(sm.ctas, cta)
	sm.rebuildSlots()
	sm.nextReady = 0
	sm.threadsUsed += threads
	// Newly placed blocks diverge from the base snapshot (warp execution
	// writes them); mark their pages once here instead of per access.
	sm.MarkRFRange(cta.rfBase, cta.rfSize)
	sm.MarkSmemRange(cta.smBase, cta.smSize)
	if tr := r.opts.RFTrace; tr != nil {
		tr.OnRegAlloc(sm.ID, cta.rfBase, cta.rfSize, r.cycle)
	}
	if tr := r.opts.SchedTrace; tr != nil {
		tr.OnCTAPlace(cta.schedID, sm.ID, cta.rfBase, cta.rfSize, cta.smBase, cta.smSize, cta.threads, prog, r.cycle)
	}
	return true
}

// cycleSM issues up to IssuePerCycle warp instructions on one SM and returns
// the number of CTAs that completed this cycle.
func (r *runner) cycleSM(sm *SM, ks *KernelStats) (int, error) {
	// Flattened warp slots for round-robin issue, rebuilt only when CTA
	// residency changes (placement, retirement, restore, reset).
	slots := sm.slots
	total := len(slots)
	if total == 0 {
		return 0, nil
	}
	if sm.nextReady > r.cycle {
		return 0, nil
	}
	// issuePtr may be stale past the table after a retirement shrank it; the
	// modulo is taken here (not written back) so snapshotted state matches
	// the reference scheduler bit for bit. The pointer is re-read after each
	// issue — the reference scan indexes off the *current* issuePtr, so a
	// second issue in the same cycle skips the slot right after the first.
	cur := sm.issuePtr % total
	issued := 0
	finished := 0
	for scan := 0; scan < total && issued < r.cfg.IssuePerCycle; scan++ {
		slot := cur + scan
		if slot >= total {
			slot -= total
		}
		sl := &slots[slot]
		cta, w, m := sl.cta, sl.w, sl.m
		if m.done || m.atBar || m.ready > r.cycle {
			continue
		}
		issued++
		sm.issuePtr = slot + 1
		if sm.issuePtr == total {
			sm.issuePtr = 0
		}
		cur = sm.issuePtr

		e := &r.env
		e.sm = sm
		e.cta = cta
		e.warpBase = w * 32
		e.nregs = cta.prog.NumRegs
		e.rbase = cta.rfBase + e.warpBase*e.nregs
		e.lat = 0
		e.lines = e.lines[:0]

		var info exec.StepInfo
		var u *uop.Op
		if up := cta.uprog; up != nil {
			info, u = r.stepFast(cta.warps[w], up, e)
		} else {
			info = exec.Step(cta.warps[w], cta.prog, e)
		}
		if tr := r.opts.SchedTrace; tr != nil && info.Kind != exec.StepFault && info.Instr != nil {
			tr.OnIssue(cta.schedID, w, int(info.PC), info.ActiveMask, r.cycle)
		}
		switch info.Kind {
		case exec.StepFault:
			return finished, info.Fault
		case exec.StepExit:
			n := popcount(info.ActiveMask)
			ks.DynInstrs += int64(n)
			m.done = true
			cta.live--
			if cta.live == 0 {
				r.retireCTA(sm, cta)
				finished++
				// slot indices shifted; restart issue scan next cycle
				return finished, nil
			}
			r.releaseBarrierIfReady(cta)
		case exec.StepBarrier:
			n := popcount(info.ActiveMask)
			ks.DynInstrs += int64(n)
			m.ready = r.cycle + int64(r.cfg.ALULat)
			m.atBar = true
			r.releaseBarrierIfReady(cta)
		default:
			if u != nil {
				// Fast path: class and counts come straight off the µop, no
				// architectural-instruction dereference.
				n := int64(popcount(info.ActiveMask))
				ks.DynInstrs += n
				switch u.Kind {
				case uop.KLdg, uop.KLdt:
					ks.LoadInstrs += n
				case uop.KStg:
					ks.StoreInstrs += n
				case uop.KLds, uop.KSts:
					ks.SmemInstrs += n
				}
				m.ready = r.cycle + r.uopLatency(u)
			} else {
				r.countInstr(ks, info)
				m.ready = r.cycle + r.instrLatency(info)
			}
		}
	}
	if issued == 0 {
		// Nothing could issue, so this scan changed no state; the earliest
		// cycle anything can change is the minimum wake-up among stalled
		// warps (barrier releases and retirements only happen on issue).
		next := int64(1) << 62
		for i := range slots {
			m := slots[i].m
			if m.done || m.atBar {
				continue
			}
			if m.ready < next {
				next = m.ready
			}
		}
		sm.nextReady = next
	}
	return finished, nil
}

// cycleSMLegacy is the pre-µop scheduling loop, kept verbatim (modulo scan,
// per-slot CTA walk, software popcount, no idle-skip) so Options.Legacy is
// an honest reference baseline for differential tests and the throughput
// benchmark. It always dispatches through the generic interpreter.
func (r *runner) cycleSMLegacy(sm *SM, ks *KernelStats) (int, error) {
	// Flatten warp slots for round-robin issue.
	total := 0
	for _, c := range sm.ctas {
		total += len(c.warps)
	}
	issued := 0
	finished := 0
	for scan := 0; scan < total && issued < r.cfg.IssuePerCycle; scan++ {
		slot := (sm.issuePtr + scan) % total
		// locate (cta, warp) for slot
		var cta *ctaRT
		w := slot
		for _, c := range sm.ctas {
			if w < len(c.warps) {
				cta = c
				break
			}
			w -= len(c.warps)
		}
		m := &cta.meta[w]
		if m.done || m.atBar || m.ready > r.cycle {
			continue
		}
		issued++
		sm.issuePtr = (slot + 1) % total

		e := &r.env
		e.sm = sm
		e.cta = cta
		e.warpBase = w * 32
		e.nregs = cta.prog.NumRegs
		e.rbase = cta.rfBase + e.warpBase*e.nregs
		e.lat = 0
		e.lines = e.lines[:0]

		info := exec.Step(cta.warps[w], cta.prog, e)
		if tr := r.opts.SchedTrace; tr != nil && info.Kind != exec.StepFault && info.Instr != nil {
			tr.OnIssue(cta.schedID, w, int(info.PC), info.ActiveMask, r.cycle)
		}
		switch info.Kind {
		case exec.StepFault:
			return finished, info.Fault
		case exec.StepExit:
			n := popcountLegacy(info.ActiveMask)
			ks.DynInstrs += int64(n)
			m.done = true
			cta.live--
			if cta.live == 0 {
				r.retireCTA(sm, cta)
				finished++
				// slot indices shifted; restart issue scan next cycle
				return finished, nil
			}
			r.releaseBarrierIfReady(cta)
		case exec.StepBarrier:
			n := popcountLegacy(info.ActiveMask)
			ks.DynInstrs += int64(n)
			m.ready = r.cycle + int64(r.cfg.ALULat)
			m.atBar = true
			r.releaseBarrierIfReady(cta)
		default:
			r.countInstrLegacy(ks, info)
			m.ready = r.cycle + r.instrLatency(info)
		}
	}
	return finished, nil
}

// countInstrLegacy is countInstr with the pre-overhaul software popcount,
// so the Legacy baseline pays the same per-issue cost the reference core
// did.
func (r *runner) countInstrLegacy(ks *KernelStats, info exec.StepInfo) {
	n := int64(popcountLegacy(info.ActiveMask))
	ks.DynInstrs += n
	switch info.Instr.Op {
	case isa.OpLDG, isa.OpLDT:
		ks.LoadInstrs += n
	case isa.OpSTG:
		ks.StoreInstrs += n
	case isa.OpLDS, isa.OpSTS:
		ks.SmemInstrs += n
	}
}

func popcountLegacy(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func (r *runner) countInstr(ks *KernelStats, info exec.StepInfo) {
	n := int64(popcount(info.ActiveMask))
	ks.DynInstrs += n
	switch info.Instr.Op {
	case isa.OpLDG, isa.OpLDT:
		ks.LoadInstrs += n
	case isa.OpSTG:
		ks.StoreInstrs += n
	case isa.OpLDS, isa.OpSTS:
		ks.SmemInstrs += n
	}
}

// uopLatency mirrors instrLatency keyed on the µop's pre-resolved class.
func (r *runner) uopLatency(u *uop.Op) int64 {
	switch u.Class {
	case uop.ClassSFU:
		return int64(r.cfg.SFULat)
	case uop.ClassSMem:
		return int64(r.cfg.SMemLat)
	case uop.ClassGMem:
		lat := r.env.lat
		if lat < int64(r.cfg.ALULat) {
			lat = int64(r.cfg.ALULat)
		}
		return lat
	default:
		return int64(r.cfg.ALULat)
	}
}

func (r *runner) instrLatency(info exec.StepInfo) int64 {
	switch info.Instr.Op {
	case isa.OpMUFU:
		return int64(r.cfg.SFULat)
	case isa.OpLDS, isa.OpSTS:
		return int64(r.cfg.SMemLat)
	case isa.OpLDG, isa.OpSTG, isa.OpLDT:
		lat := r.env.lat
		if lat < int64(r.cfg.ALULat) {
			lat = int64(r.cfg.ALULat)
		}
		return lat
	default:
		return int64(r.cfg.ALULat)
	}
}

func (r *runner) releaseBarrierIfReady(cta *ctaRT) {
	for i := range cta.meta {
		if !cta.meta[i].done && !cta.meta[i].atBar {
			return
		}
	}
	if cta.live == 0 {
		return
	}
	for i := range cta.meta {
		if !cta.meta[i].done {
			cta.meta[i].atBar = false
			cta.warps[i].AdvancePastBarrier()
		}
	}
}

func (r *runner) retireCTA(sm *SM, cta *ctaRT) {
	if tr := r.opts.RFTrace; tr != nil {
		tr.OnRegRelease(sm.ID, cta.rfBase, cta.rfSize, r.cycle)
	}
	if tr := r.opts.SchedTrace; tr != nil {
		tr.OnCTARetire(cta.schedID, r.cycle)
	}
	sm.rfAlloc.release(cta.rfBase, cta.rfSize)
	sm.smAlloc.release(cta.smBase, cta.smSize)
	sm.threadsUsed -= cta.threads
	for i, c := range sm.ctas {
		if c == cta {
			sm.ctas = append(sm.ctas[:i], sm.ctas[i+1:]...)
			break
		}
	}
	sm.rebuildSlots()
	sm.nextReady = 0
	if len(sm.ctas) == 0 {
		sm.issuePtr = 0
	}
}

func popcount(m uint32) int { return bits.OnesCount32(m) }

// simEnv implements exec.Env against the SM's physical storage. The µop
// handler table in fastexec.go indexes the same state directly through the
// precomputed per-warp register base.
type simEnv struct {
	r        *runner
	sm       *SM
	cta      *ctaRT
	warpBase int
	// rbase is the physical RF index of lane 0's register 0 for the issuing
	// warp (cta.rfBase + warpBase*nregs); nregs is the per-thread register
	// stride. Precomputed once per issue so register access needs one
	// multiply-free add per lane instead of recomputing the full affine
	// index per access.
	rbase int
	nregs int
	lat   int64
	lines []uint32
}

func (e *simEnv) thread(lane int) int { return e.warpBase + lane }

func (e *simEnv) regIndex(lane int, reg isa.Reg) int {
	if e.r.fast {
		return e.rbase + lane*e.nregs + int(reg)
	}
	// Pre-overhaul address computation, kept for the legacy core so the
	// reference interpreter's per-access cost stays an honest baseline.
	return e.cta.rfBase + (e.warpBase+lane)*e.cta.prog.NumRegs + int(reg)
}

func (e *simEnv) ReadReg(lane int, reg isa.Reg) uint32 {
	idx := e.regIndex(lane, reg)
	if tr := e.r.opts.RFTrace; tr != nil {
		tr.OnRegRead(e.sm.ID, idx, e.r.cycle)
	}
	return e.sm.RF[idx]
}

func (e *simEnv) WriteReg(lane int, reg isa.Reg, v uint32) {
	idx := e.regIndex(lane, reg)
	if tr := e.r.opts.RFTrace; tr != nil {
		tr.OnRegWrite(e.sm.ID, idx, e.r.cycle)
	}
	e.sm.RF[idx] = v
}

func (e *simEnv) ReadPred(lane int, p isa.Pred) bool {
	return e.cta.preds[e.thread(lane)]&(1<<(p-1)) != 0
}

func (e *simEnv) WritePred(lane int, p isa.Pred, v bool) {
	if v {
		e.cta.preds[e.thread(lane)] |= 1 << (p - 1)
	} else {
		e.cta.preds[e.thread(lane)] &^= 1 << (p - 1)
	}
}

func (e *simEnv) Special(lane int, s isa.SReg) uint32 {
	t := e.thread(lane)
	l := e.cta.launch
	switch s {
	case isa.SRTidX:
		return uint32(t % l.BlockX)
	case isa.SRTidY:
		return uint32(t / l.BlockX)
	case isa.SRCtaIDX:
		return uint32(e.cta.cx)
	case isa.SRCtaIDY:
		return uint32(e.cta.cy)
	case isa.SRNTidX:
		return uint32(l.BlockX)
	case isa.SRNTidY:
		return uint32(l.BlockY)
	case isa.SRNCtaX:
		return uint32(l.GridX)
	case isa.SRNCtaY:
		return uint32(l.GridY)
	case isa.SRLaneID:
		return uint32(lane)
	}
	return 0
}

func (e *simEnv) Param(idx int) uint32 {
	if idx < 0 || idx >= len(e.cta.params) {
		return 0
	}
	return e.cta.params[idx]
}

func (e *simEnv) firstLine(addr uint32) bool {
	line := addr &^ (uint32(e.r.cfg.LineSize) - 1)
	for _, l := range e.lines {
		if l == line {
			return false
		}
	}
	e.lines = append(e.lines, line)
	return true
}

func (e *simEnv) LoadGlobal(lane int, addr uint32, tex bool) (uint32, error) {
	if !e.validGlobal(addr) {
		return 0, &device.AccessError{Addr: addr}
	}
	v, lat := e.sm.hier.Load(e.r.mem, addr, tex, e.firstLine(addr), e.r.cycle)
	if lat > e.lat {
		e.lat = lat
	}
	return v, nil
}

// validGlobal routes address validation: the fast core may use the
// memoized allocation lookup; the legacy core keeps the pre-overhaul
// linear scan so its per-access cost stays an honest baseline.
func (e *simEnv) validGlobal(addr uint32) bool {
	if e.r.fast {
		return e.r.mem.Valid(addr, 4)
	}
	return e.r.mem.ValidUncached(addr, 4)
}

func (e *simEnv) StoreGlobal(lane int, addr uint32, v uint32) error {
	if !e.validGlobal(addr) {
		return &device.AccessError{Addr: addr, Write: true}
	}
	lat := e.sm.hier.Store(e.r.mem, addr, v, e.firstLine(addr), e.r.cycle)
	if lat > e.lat {
		e.lat = lat
	}
	return nil
}

func (e *simEnv) LoadShared(lane int, addr uint32) (uint32, error) {
	if addr%4 != 0 || int(addr)+4 > e.cta.smSize {
		return 0, fmt.Errorf("illegal shared memory read at 0x%x", addr)
	}
	b := e.sm.Smem[e.cta.smBase+int(addr):]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (e *simEnv) StoreShared(lane int, addr uint32, v uint32) error {
	if addr%4 != 0 || int(addr)+4 > e.cta.smSize {
		return fmt.Errorf("illegal shared memory write at 0x%x", addr)
	}
	b := e.sm.Smem[e.cta.smBase+int(addr):]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}
