package sim

import (
	"testing"

	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kernels"
)

// issueEvent is one OnIssue observation; comparable so traces diff cheaply.
type issueEvent struct {
	cta, w, pc int
	mask       uint32
	cycle      int64
}

type placeEvent struct {
	cta, sm, rfBase, rfSize, smBase, smSize, threads int
	cycle                                            int64
}

// recTracer records the full deterministic schedule of a run.
type recTracer struct {
	issues  []issueEvent
	places  []placeEvent
	retires []placeEvent // cta+cycle only; other fields zero
}

func (r *recTracer) OnCTAPlace(cta, sm, rfBase, rfSize, smBase, smSize, threads int, prog *isa.Program, cycle int64) {
	r.places = append(r.places, placeEvent{cta, sm, rfBase, rfSize, smBase, smSize, threads, cycle})
}

func (r *recTracer) OnIssue(cta, w, pc int, mask uint32, cycle int64) {
	r.issues = append(r.issues, issueEvent{cta, w, pc, mask, cycle})
}

func (r *recTracer) OnCTARetire(cta int, cycle int64) {
	r.retires = append(r.retires, placeEvent{cta: cta, cycle: cycle})
}

// TestRestoreScheduleDeterminism: a run resumed from a snapshot must replay
// the golden run's schedule suffix exactly — same CTA ids (dense placement
// order survives restore via the snapshotted id counter), same issue order,
// same active masks, same cycles. This is the property that makes schedule
// traces from forked runs comparable to golden traces, and it regresses
// silently if restore rebuilds scheduler state (CTA ids, issue pointers,
// warp metadata) in any other order than capture saved it. Run under -race
// in CI to also catch unsynchronized state reuse through the run pool.
func TestRestoreScheduleDeterminism(t *testing.T) {
	cfg := gpu.Volta()
	for _, name := range []string{"PathFinder", "LUD"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			job := app.Build()
			var golden recTracer
			probe := Run(app.Build(), cfg, Options{})
			if probe.Err != nil || probe.TimedOut {
				t.Fatalf("golden run failed: %v timeout=%v", probe.Err, probe.TimedOut)
			}
			snaps := NewSnapshotSet(probe.Cycles/8+1, 0)
			ref := Run(job, cfg, Options{Checkpoint: snaps, SchedTrace: &golden})
			if ref.Err != nil || ref.TimedOut {
				t.Fatalf("traced run failed: %v timeout=%v", ref.Err, ref.TimedOut)
			}
			if snaps.Len() < 2 {
				t.Fatalf("only %d snapshots captured", snaps.Len())
			}
			for i := 0; i < snaps.Len(); i++ {
				s := snaps.Snap(i)
				var got recTracer
				res := Run(job, cfg, Options{Resume: s, SchedTrace: &got})
				if res.Err != nil || res.TimedOut {
					t.Fatalf("resume from cycle %d failed: %v timeout=%v", s.Cycle(), res.Err, res.TimedOut)
				}
				// The golden suffix: events strictly after the snapshot cycle
				// (snapshots capture end-of-cycle state). Placements of CTAs
				// already resident at the snapshot do not replay.
				var wantIssues []issueEvent
				for _, e := range golden.issues {
					if e.cycle > s.Cycle() {
						wantIssues = append(wantIssues, e)
					}
				}
				if len(got.issues) != len(wantIssues) {
					t.Fatalf("resume from cycle %d: %d issues, want %d", s.Cycle(), len(got.issues), len(wantIssues))
				}
				for k := range wantIssues {
					if got.issues[k] != wantIssues[k] {
						t.Fatalf("resume from cycle %d: issue %d = %+v, want %+v",
							s.Cycle(), k, got.issues[k], wantIssues[k])
					}
				}
				var wantPlaces []placeEvent
				for _, e := range golden.places {
					if e.cycle > s.Cycle() {
						wantPlaces = append(wantPlaces, e)
					}
				}
				if len(got.places) != len(wantPlaces) {
					t.Fatalf("resume from cycle %d: %d placements, want %d", s.Cycle(), len(got.places), len(wantPlaces))
				}
				for k := range wantPlaces {
					if got.places[k] != wantPlaces[k] {
						t.Fatalf("resume from cycle %d: placement %d = %+v, want %+v",
							s.Cycle(), k, got.places[k], wantPlaces[k])
					}
				}
				var wantRetires []placeEvent
				for _, e := range golden.retires {
					if e.cycle > s.Cycle() {
						wantRetires = append(wantRetires, e)
					}
				}
				if len(got.retires) != len(wantRetires) {
					t.Fatalf("resume from cycle %d: %d retirements, want %d", s.Cycle(), len(got.retires), len(wantRetires))
				}
				for k := range wantRetires {
					if got.retires[k] != wantRetires[k] {
						t.Fatalf("resume from cycle %d: retirement %d = %+v, want %+v",
							s.Cycle(), k, got.retires[k], wantRetires[k])
					}
				}
			}
		})
	}
}
