package sim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// addOne builds a kernel: out[i] = in[i] + 1 for a 1D grid.
func addOne(n int) *isa.Program {
	b := kasm.New("addOne")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, b.IAddI(v, 1))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// smemExchange: CTA-wide reversal through shared memory, requiring a
// correct barrier across multiple warps.
func smemExchange() *isa.Program {
	b := kasm.New("exchange")
	tid := b.S2R(isa.SRTidX)
	ntid := b.S2R(isa.SRNTidX)
	v := b.Ldg(b.IScAdd(tid, b.Param(0), 2), 0)
	b.Sts(b.Shl(tid, 2), 0, v)
	b.Barrier()
	rev := b.ISubI(b.ISub(ntid, tid), 1)
	out := b.Lds(b.Shl(rev, 2), 0)
	b.Stg(b.IScAdd(tid, b.Param(1), 2), 0, out)
	return b.MustBuild()
}

func buildJob(n int, prog *isa.Program, grid, block int) (*device.Job, uint32, uint32) {
	m := device.NewMemory(1 << 20)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i * 3)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "t",
		Mem:  m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: grid, GridY: 1, BlockX: block, BlockY: 1,
			SmemBytes: 4 * block,
			Params:    []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}, in, out
}

func TestSimpleKernel(t *testing.T) {
	const n = 512
	job, _, _ := buildJob(n, addOne(n), 4, 128)
	r := Run(job, gpu.Volta(), Options{})
	if r.Err != nil || r.TimedOut {
		t.Fatalf("run failed: %v timeout=%v", r.Err, r.TimedOut)
	}
	for i := 0; i < n; i++ {
		got := uint32(r.Output[4*i]) | uint32(r.Output[4*i+1])<<8 |
			uint32(r.Output[4*i+2])<<16 | uint32(r.Output[4*i+3])<<24
		if got != uint32(i*3+1) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i*3+1)
		}
	}
	if r.Cycles == 0 {
		t.Error("cycle counter did not advance")
	}
	if len(r.Spans) != 1 || r.Spans[0].End <= r.Spans[0].Start {
		t.Errorf("bad spans: %+v", r.Spans)
	}
	ks := r.PerKernel["addOne"]
	if ks == nil || ks.DynInstrs == 0 || ks.LoadInstrs == 0 || ks.StoreInstrs == 0 {
		t.Errorf("kernel stats incomplete: %+v", ks)
	}
	if ks.L1D.Accesses == 0 || ks.DRAMRead == 0 {
		t.Errorf("memory stats incomplete: %+v", ks)
	}
	if ks.Occupancy(gpu.Volta()) <= 0 {
		t.Error("occupancy must be positive")
	}
}

func TestBarrierAcrossWarps(t *testing.T) {
	const n = 128 // one CTA, 4 warps
	job, _, _ := buildJob(n, smemExchange(), 1, n)
	r := Run(job, gpu.Volta(), Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	for i := 0; i < n; i++ {
		got := uint32(r.Output[4*i]) | uint32(r.Output[4*i+1])<<8 |
			uint32(r.Output[4*i+2])<<16 | uint32(r.Output[4*i+3])<<24
		want := uint32((n - 1 - i) * 3)
		if got != want {
			t.Fatalf("out[%d] = %d, want %d (barrier broken)", i, got, want)
		}
	}
}

func TestDeterministicCycles(t *testing.T) {
	job, _, _ := buildJob(512, addOne(512), 4, 128)
	a := Run(job, gpu.Volta(), Options{})
	b := Run(job, gpu.Volta(), Options{})
	if a.Cycles != b.Cycles || !bytes.Equal(a.Output, b.Output) {
		t.Error("simulation must be deterministic")
	}
}

func TestTimeout(t *testing.T) {
	job, _, _ := buildJob(512, addOne(512), 4, 128)
	r := Run(job, gpu.Volta(), Options{MaxCycles: 10})
	if !r.TimedOut {
		t.Error("10-cycle budget must time out")
	}
}

func TestDUEOnBadAddress(t *testing.T) {
	b := kasm.New("bad")
	b.Stg(b.MovI(0), 0, b.MovI(1)) // store to the null guard
	prog := b.MustBuild()
	m := device.NewMemory(1 << 16)
	job := &device.Job{
		Name: "bad", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
		}}},
	}
	r := Run(job, gpu.Volta(), Options{})
	if r.Err == nil {
		t.Fatal("null store must be a DUE")
	}
}

func TestInjectionHookFires(t *testing.T) {
	job, _, _ := buildJob(512, addOne(512), 4, 128)
	golden := Run(job, gpu.Volta(), Options{})
	fired := false
	r := Run(job, gpu.Volta(), Options{
		AtCycle: golden.Cycles / 2,
		OnCycle: func(m *Machine) {
			fired = true
			if len(m.SMs) != gpu.Volta().NumSMs {
				t.Errorf("machine has %d SMs", len(m.SMs))
			}
			// at mid-kernel some registers must be allocated
			total := 0
			for _, sm := range m.SMs {
				for _, blk := range sm.AllocatedRF() {
					total += blk.Size
				}
			}
			if total == 0 {
				t.Error("no RF allocated mid-kernel")
			}
		},
	})
	if !fired {
		t.Fatal("hook did not fire")
	}
	if r.Err != nil || !bytes.Equal(r.Output, golden.Output) {
		t.Error("a no-op hook must not perturb the run")
	}
}

// TestRFInjectionCanCorrupt: flipping an allocated register mid-run with a
// fixed seed must be able to produce an SDC (not always masked).
func TestRFInjectionCanCorrupt(t *testing.T) {
	job, _, _ := buildJob(512, addOne(512), 4, 128)
	golden := Run(job, gpu.Volta(), Options{})
	sdcs := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cycle := 1 + rng.Int63n(golden.Cycles)
		r := Run(job, gpu.Volta(), Options{
			MaxCycles: golden.Cycles * 10,
			AtCycle:   cycle,
			OnCycle: func(m *Machine) {
				for _, sm := range m.SMs {
					blocks := sm.AllocatedRF()
					if len(blocks) == 0 {
						continue
					}
					blk := blocks[rng.Intn(len(blocks))]
					sm.RF[blk.Base+rng.Intn(blk.Size)] ^= 1 << uint(rng.Intn(32))
					return
				}
			},
		})
		if r.Err == nil && !r.TimedOut && !bytes.Equal(r.Output, golden.Output) {
			sdcs++
		}
	}
	if sdcs == 0 {
		t.Error("30 register flips produced no SDC; injection path is broken")
	}
}

func TestCTASchedulingOverSubscription(t *testing.T) {
	// 64 CTAs of 256 threads over 4 SMs: must queue and complete
	const n = 64 * 256
	job, _, _ := buildJob(n, addOne(n), 64, 256)
	r := Run(job, gpu.Volta(), Options{})
	if r.Err != nil || r.TimedOut {
		t.Fatalf("oversubscribed launch failed: %v", r.Err)
	}
	if r.Spans[0].Threads != n {
		t.Errorf("span threads = %d, want %d", r.Spans[0].Threads, n)
	}
}

func TestCTATooBig(t *testing.T) {
	job, _, _ := buildJob(32, addOne(32), 1, 32)
	job.Steps[0].Launch.BlockX = 2048 // beyond MaxThreadsPerSM
	r := Run(job, gpu.Volta(), Options{})
	if r.Err == nil {
		t.Error("oversized CTA must fail")
	}
}

func TestDeratingFactors(t *testing.T) {
	cfg := gpu.Volta()
	sp := LaunchSpan{Threads: 1024, RegsPerThread: 16, SmemPerCTA: 4096, CTAs: 4}
	df := sp.RFDeratingFactor(cfg)
	want := float64(16*1024) / float64(cfg.NumSMs*cfg.RFRegsPerSM)
	if df != want {
		t.Errorf("RF DF = %v, want %v", df, want)
	}
	sdf := sp.SmemDeratingFactor(cfg)
	wantS := float64(4096*4) / float64(cfg.NumSMs*cfg.SmemPerSM)
	if sdf != wantS {
		t.Errorf("SMEM DF = %v, want %v", sdf, wantS)
	}
	// huge kernels cap at 1
	sp.Threads = 1 << 30
	if sp.RFDeratingFactor(cfg) != 1 {
		t.Error("DF must cap at 1")
	}
}

// TestAllocatorProperty: random alloc/release sequences keep the free list
// sorted, coalesced and non-overlapping with live blocks.
func TestAllocatorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newAllocator(4096)
		type blk struct{ base, size int }
		var live []blk
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				size := 1 + rng.Intn(256)
				if base, ok := a.alloc(size); ok {
					// must not overlap any live block
					for _, l := range live {
						if base < l.base+l.size && l.base < base+size {
							return false
						}
					}
					live = append(live, blk{base, size})
				}
			} else if len(live) > 0 {
				k := rng.Intn(len(live))
				a.release(live[k].base, live[k].size)
				live = append(live[:k], live[k+1:]...)
			}
		}
		// release everything: free list must coalesce back to one block
		for _, l := range live {
			a.release(l.base, l.size)
		}
		return len(a.free) == 1 && a.free[0].base == 0 && a.free[0].size == 4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHostStepFlushesCaches: a host step must observe kernel writes (L2
// flush) and its own writes must be visible to the next kernel.
func TestHostStepFlushesCaches(t *testing.T) {
	const n = 64
	prog := addOne(n)
	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	mid := m.Alloc("mid", 4*n)
	out := m.Alloc("out", 4*n)
	m.WriteU32s(in, make([]uint32, n))
	sawKernelWrite := false
	job := &device.Job{
		Name: "host", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{Kernel: prog, GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
				Params: []uint32{in, mid}, ParamIsPtr: []bool{true, true}}},
			{Host: func(mm *device.Memory, off uint32) int {
				if mm.PeekU32(mid+off) == 1 {
					sawKernelWrite = true
				}
				for i := 0; i < n; i++ {
					mm.PokeU32(mid+off+uint32(4*i), 100)
				}
				return -1
			}},
			{Launch: &device.Launch{Kernel: prog, GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
				Params: []uint32{mid, out}, ParamIsPtr: []bool{true, true}}},
		},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 4 * n}},
	}
	r := Run(job, gpu.Volta(), Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !sawKernelWrite {
		t.Error("host step did not observe the kernel's write (missing L2 flush)")
	}
	if got := r.Output[0]; got != 101 {
		t.Errorf("second kernel did not observe host write: out[0]=%d, want 101", got)
	}
}

// TestReplicatedLaunch: Replicas=3 runs three independent copies.
func TestReplicatedLaunch(t *testing.T) {
	const n = 64
	prog := addOne(n)
	m := device.NewMemory(1 << 18)
	var ins, outs [3]uint32
	for c := 0; c < 3; c++ {
		ins[c] = m.Alloc("in", 4*n)
		outs[c] = m.Alloc("out", 4*n)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(c * 100)
		}
		m.WriteU32s(ins[c], vals)
	}
	job := &device.Job{
		Name: "rep", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
			Replicas: 3,
			ReplicaParams: [][]uint32{
				{ins[0], outs[0]}, {ins[1], outs[1]}, {ins[2], outs[2]},
			},
		}}},
	}
	r := Run(job, gpu.Volta(), Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	// read back via the final memory image using outputs trick
	for c := 0; c < 3; c++ {
		job.Outputs = []device.Output{{Name: "o", Addr: outs[c], Size: 4}}
	}
	if r.Spans[0].Threads != 3*n {
		t.Errorf("replicated span threads = %d, want %d", r.Spans[0].Threads, 3*n)
	}
}
