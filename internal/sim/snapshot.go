// Checkpointed fork-and-join support: deep snapshots of complete machine
// state taken during a reference (golden) run, used by injectors to (a)
// resume faulty runs from the nearest checkpoint below the injection cycle
// instead of replaying the fault-free prefix, and (b) detect that a faulty
// run's state has become bit-identical to the reference at a later
// checkpoint, at which point its remaining trajectory — and therefore its
// outcome — equals the reference suffix and need not be simulated.
//
// The equivalence argument rests on the simulator being a deterministic
// function of its state: two runners with identical (cycle, schedule
// position, launch progress, SM arrays, allocator free lists, warp stacks,
// caches, device memory, DRAM counters, accumulated stats) execute identical
// continuations. Snapshots capture exactly that closure, nothing less.
package sim

import (
	"slices"
	"sync"

	"gpurel/internal/device"
	"gpurel/internal/exec"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
)

// Snapshot is a deep copy of complete machine state at the end of one cycle.
// Immutable once captured; safe for concurrent read-only use by many
// resumed/probed runs.
type Snapshot struct {
	cycle int64
	si    int
	steps int

	dramRead, dramWrite int64

	dmem device.MemState
	l2   mem.CacheState
	sms  []smSnap

	launch    launchSnap
	spans     []LaunchSpan
	perKernel map[string]KernelStats

	bytes int64
}

// Cycle returns the cycle the snapshot was taken at.
func (s *Snapshot) Cycle() int64 { return s.cycle }

// Bytes returns the approximate retained size of the snapshot.
func (s *Snapshot) Bytes() int64 { return s.bytes }

type smSnap struct {
	rf             []uint32
	smem           []byte
	rfFree, smFree []block
	l1d, l1t       mem.CacheState
	threadsUsed    int
	issuePtr       int
	ctas           []ctaSnap
}

type ctaSnap struct {
	launch *device.Launch
	prog   *isa.Program
	params []uint32 // read-only during a run: shared, not copied
	cx, cy int

	warps []warpSnap
	meta  []warpMeta
	preds []uint8
	live  int

	rfBase, rfSize int
	smBase, smSize int
	threads        int
}

type warpSnap struct {
	fullMask, exited uint32
	stack            []exec.Ent
}

type launchSnap struct {
	l         *device.Launch
	pending   []pendingCTA
	resident  int
	nextSM    int
	span      LaunchSpan
	statsBase statsSnapshot
}

// capture deep-copies the runner's state. Only called from inside the
// runLaunch cycle loop, so r.cur is always non-nil: every checkpoint lies
// within some kernel launch (the cycle counter only advances there).
func (r *runner) capture() *Snapshot {
	s := &Snapshot{
		cycle:     r.cycle,
		si:        r.si,
		steps:     r.steps,
		dramRead:  r.dramRead,
		dramWrite: r.dramWrite,
	}
	r.mem.SaveState(&s.dmem)
	r.l2.SaveState(&s.l2)
	s.sms = make([]smSnap, len(r.sms))
	for i, sm := range r.sms {
		captureSM(sm, &s.sms[i])
	}
	cur := r.cur
	s.launch = launchSnap{
		l:         cur.l,
		pending:   slices.Clone(cur.pending),
		resident:  cur.resident,
		nextSM:    cur.nextSM,
		span:      cur.span,
		statsBase: cur.statsBase,
	}
	s.spans = slices.Clone(r.res.Spans)
	s.perKernel = make(map[string]KernelStats, len(r.res.PerKernel))
	for name, ks := range r.res.PerKernel {
		s.perKernel[name] = *ks
	}
	s.bytes = s.footprint()
	return s
}

func captureSM(sm *SM, dst *smSnap) {
	dst.rf = slices.Clone(sm.RF)
	dst.smem = slices.Clone(sm.Smem)
	dst.rfFree = slices.Clone(sm.rfAlloc.free)
	dst.smFree = slices.Clone(sm.smAlloc.free)
	sm.L1D.SaveState(&dst.l1d)
	sm.L1T.SaveState(&dst.l1t)
	dst.threadsUsed = sm.threadsUsed
	dst.issuePtr = sm.issuePtr
	dst.ctas = make([]ctaSnap, len(sm.ctas))
	for i, c := range sm.ctas {
		captureCTA(c, &dst.ctas[i])
	}
}

func captureCTA(c *ctaRT, dst *ctaSnap) {
	dst.launch = c.launch
	dst.prog = c.prog
	dst.params = c.params
	dst.cx, dst.cy = c.cx, c.cy
	dst.warps = make([]warpSnap, len(c.warps))
	for i, w := range c.warps {
		dst.warps[i] = warpSnap{fullMask: w.FullMask, exited: w.Exited, stack: slices.Clone(w.Stack)}
	}
	dst.meta = slices.Clone(c.meta)
	dst.preds = slices.Clone(c.preds)
	dst.live = c.live
	dst.rfBase, dst.rfSize = c.rfBase, c.rfSize
	dst.smBase, dst.smSize = c.smBase, c.smSize
	dst.threads = c.threads
}

// restore overwrites the runner's state from the snapshot. The runner must
// have been built for the same job and configuration; the injection hook is
// re-armed (snapshots are taken on fault-free reference runs, strictly
// before any resumed run's injection cycle).
func (r *runner) restore(s *Snapshot) {
	if len(r.sms) != len(s.sms) {
		panic("sim: restore onto a machine with a different SM count")
	}
	r.cycle = s.cycle
	r.si = s.si
	r.steps = s.steps
	r.fired = false
	r.stopped = false
	r.dramRead = s.dramRead
	r.dramWrite = s.dramWrite
	r.mem.LoadState(&s.dmem)
	r.l2.LoadState(&s.l2)
	for i, sm := range r.sms {
		restoreSM(sm, &s.sms[i])
	}
	r.cur = &launchState{
		l:         s.launch.l,
		pending:   slices.Clone(s.launch.pending),
		resident:  s.launch.resident,
		nextSM:    s.launch.nextSM,
		span:      s.launch.span,
		statsBase: s.launch.statsBase,
	}
	r.res.Spans = append(r.res.Spans[:0], s.spans...)
	clear(r.res.PerKernel)
	for name, ks := range s.perKernel {
		c := ks
		r.res.PerKernel[name] = &c
	}
}

func restoreSM(sm *SM, src *smSnap) {
	if len(sm.RF) != len(src.rf) || len(sm.Smem) != len(src.smem) {
		panic("sim: restore onto a machine with different SM geometry")
	}
	copy(sm.RF, src.rf)
	copy(sm.Smem, src.smem)
	sm.rfAlloc.free = append(sm.rfAlloc.free[:0], src.rfFree...)
	sm.smAlloc.free = append(sm.smAlloc.free[:0], src.smFree...)
	sm.L1D.LoadState(&src.l1d)
	sm.L1T.LoadState(&src.l1t)
	sm.threadsUsed = src.threadsUsed
	sm.issuePtr = src.issuePtr
	sm.ctas = sm.ctas[:0]
	for i := range src.ctas {
		sm.ctas = append(sm.ctas, restoreCTA(&src.ctas[i]))
	}
}

func restoreCTA(src *ctaSnap) *ctaRT {
	c := &ctaRT{
		launch:  src.launch,
		prog:    src.prog,
		params:  src.params,
		cx:      src.cx,
		cy:      src.cy,
		meta:    slices.Clone(src.meta),
		preds:   slices.Clone(src.preds),
		live:    src.live,
		rfBase:  src.rfBase,
		rfSize:  src.rfSize,
		smBase:  src.smBase,
		smSize:  src.smSize,
		threads: src.threads,
	}
	for i := range src.warps {
		ws := &src.warps[i]
		c.warps = append(c.warps, &exec.Warp{FullMask: ws.fullMask, Exited: ws.exited, Stack: slices.Clone(ws.stack)})
	}
	return c
}

// matches reports whether the runner's live state is bit-identical to the
// snapshot. It compares the full deterministic closure — schedule position,
// launch progress, accumulated spans/stats, storage arrays, allocator free
// lists, warp contexts, caches, device memory and DRAM counters — so a
// match guarantees the continuation (and thus the final Result) equals the
// reference run's.
func (r *runner) matches(s *Snapshot) bool {
	if r.cycle != s.cycle || r.si != s.si || r.steps != s.steps {
		return false
	}
	if r.dramRead != s.dramRead || r.dramWrite != s.dramWrite {
		return false
	}
	cur := r.cur
	ls := &s.launch
	if cur.l != ls.l || cur.resident != ls.resident || cur.nextSM != ls.nextSM ||
		cur.span != ls.span || cur.statsBase != ls.statsBase {
		return false
	}
	if !slices.Equal(cur.pending, ls.pending) {
		return false
	}
	if !slices.Equal(r.res.Spans, s.spans) {
		return false
	}
	if len(r.res.PerKernel) != len(s.perKernel) {
		return false
	}
	for name, ks := range r.res.PerKernel {
		ref, ok := s.perKernel[name]
		if !ok || *ks != ref {
			return false
		}
	}
	if len(r.sms) != len(s.sms) {
		return false
	}
	for i, sm := range r.sms {
		if !smEqual(sm, &s.sms[i]) {
			return false
		}
	}
	if !r.l2.StateEqual(&s.l2) {
		return false
	}
	return r.mem.StateEqual(&s.dmem)
}

func smEqual(sm *SM, src *smSnap) bool {
	if sm.threadsUsed != src.threadsUsed || sm.issuePtr != src.issuePtr {
		return false
	}
	if len(sm.ctas) != len(src.ctas) {
		return false
	}
	for i, c := range sm.ctas {
		if !ctaEqual(c, &src.ctas[i]) {
			return false
		}
	}
	if !slices.Equal(sm.rfAlloc.free, src.rfFree) || !slices.Equal(sm.smAlloc.free, src.smFree) {
		return false
	}
	if !sm.L1D.StateEqual(&src.l1d) || !sm.L1T.StateEqual(&src.l1t) {
		return false
	}
	return slices.Equal(sm.RF, src.rf) && slices.Equal(sm.Smem, src.smem)
}

func ctaEqual(c *ctaRT, src *ctaSnap) bool {
	if c.launch != src.launch || c.prog != src.prog {
		return false
	}
	if c.cx != src.cx || c.cy != src.cy || c.live != src.live || c.threads != src.threads {
		return false
	}
	if c.rfBase != src.rfBase || c.rfSize != src.rfSize || c.smBase != src.smBase || c.smSize != src.smSize {
		return false
	}
	if !slices.Equal(c.params, src.params) {
		return false
	}
	if !slices.Equal(c.meta, src.meta) || !slices.Equal(c.preds, src.preds) {
		return false
	}
	if len(c.warps) != len(src.warps) {
		return false
	}
	for i, w := range c.warps {
		ws := &src.warps[i]
		if w.FullMask != ws.fullMask || w.Exited != ws.exited || !slices.Equal(w.Stack, ws.stack) {
			return false
		}
	}
	return true
}

// footprint approximates the retained size of the snapshot for budgeting.
func (s *Snapshot) footprint() int64 {
	n := s.dmem.StateBytes() + s.l2.StateBytes()
	for i := range s.sms {
		sm := &s.sms[i]
		n += int64(len(sm.rf))*4 + int64(len(sm.smem))
		n += int64(len(sm.rfFree)+len(sm.smFree)) * 16
		n += sm.l1d.StateBytes() + sm.l1t.StateBytes()
		for j := range sm.ctas {
			c := &sm.ctas[j]
			n += int64(len(c.meta))*10 + int64(len(c.preds)) + 96
			for k := range c.warps {
				n += int64(len(c.warps[k].stack))*12 + 16
			}
		}
	}
	n += int64(len(s.launch.pending)) * 24
	n += int64(len(s.spans)) * 64
	n += int64(len(s.perKernel)) * 160
	return n + 256
}

// SnapshotSet holds the checkpoints of one reference run, ordered by cycle.
// It is written single-threaded during the reference run and read-only
// afterwards, so concurrent resumed runs may share it without locking.
//
// A memory budget bounds the retained bytes: when an appended snapshot
// pushes the set over budget, the stride doubles and snapshots that fall
// off the widened grid are evicted, preserving the invariant that every
// retained cycle is a multiple of the current stride.
type SnapshotSet struct {
	stride  int64
	budget  int64
	snaps   []*Snapshot
	bytes   int64
	evicted int64
}

// NewSnapshotSet creates a set capturing every stride-th cycle, retaining at
// most budgetBytes of snapshot state (<= 0 means unlimited). A stride <= 0
// disables capture.
func NewSnapshotSet(stride, budgetBytes int64) *SnapshotSet {
	return &SnapshotSet{stride: stride, budget: budgetBytes}
}

// Len returns the number of retained snapshots.
func (s *SnapshotSet) Len() int { return len(s.snaps) }

// Snap returns the i-th retained snapshot in cycle order.
func (s *SnapshotSet) Snap(i int) *Snapshot { return s.snaps[i] }

// Bytes returns the approximate retained size of all snapshots.
func (s *SnapshotSet) Bytes() int64 { return s.bytes }

// Stride returns the current capture stride in cycles (0 when capture has
// been disabled by budget pressure).
func (s *SnapshotSet) Stride() int64 { return s.stride }

// Evicted returns the number of snapshots dropped to fit the budget.
func (s *SnapshotSet) Evicted() int64 { return s.evicted }

// offer captures a snapshot if the runner's cycle is on the stride grid,
// then enforces the budget.
func (s *SnapshotSet) offer(r *runner) {
	if s.stride <= 0 || r.cycle%s.stride != 0 {
		return
	}
	snap := r.capture()
	s.snaps = append(s.snaps, snap)
	s.bytes += snap.bytes
	for s.budget > 0 && s.bytes > s.budget {
		if !s.widen() {
			break
		}
	}
}

// widen doubles the stride and evicts snapshots off the widened grid. When
// no further widening can help (a single snapshot already exceeds the
// budget), the set is emptied and capture disabled; it returns false.
func (s *SnapshotSet) widen() bool {
	if len(s.snaps) <= 1 {
		s.evicted += int64(len(s.snaps))
		s.snaps = s.snaps[:0]
		s.bytes = 0
		s.stride = 0
		return false
	}
	s.stride *= 2
	kept := s.snaps[:0]
	for _, snap := range s.snaps {
		if snap.cycle%s.stride == 0 {
			kept = append(kept, snap)
		} else {
			s.evicted++
			s.bytes -= snap.bytes
		}
	}
	for i := len(kept); i < len(s.snaps); i++ {
		s.snaps[i] = nil
	}
	s.snaps = kept
	return true
}

// Before returns the latest snapshot taken strictly before cycle c, or nil.
// Strictness matters for resume: the injection hook fires at the top of the
// cycle body while snapshots capture its end, so a resumed run whose hook
// must fire at cycle c has to start from a cycle below it.
func (s *SnapshotSet) Before(c int64) *Snapshot {
	lo, hi := 0, len(s.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.snaps[mid].cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return s.snaps[lo-1]
}

// at returns the snapshot taken exactly at cycle c, or nil. The stride
// modulo gate keeps the common (non-checkpoint) cycle to a single test.
func (s *SnapshotSet) at(c int64) *Snapshot {
	if s.stride <= 0 || c%s.stride != 0 {
		return nil
	}
	lo, hi := 0, len(s.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.snaps[mid].cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.snaps) && s.snaps[lo].cycle == c {
		return s.snaps[lo]
	}
	return nil
}

// RunPool recycles the large machine-state arrays (register files, shared
// memories, caches, device memory image) across runs so a campaign's
// per-run cost is simulation, not allocation. Safe for concurrent use. A
// pooled machine is only reused for an identical configuration and device
// memory capacity; fresh runs reset it to pristine state first, resumed
// runs are overwritten wholesale by the snapshot restore.
type RunPool struct {
	pool sync.Pool
}

// NewRunPool creates an empty pool.
func NewRunPool() *RunPool { return &RunPool{} }

type pooledMachine struct {
	cfg    gpu.Config
	memCap int
	sms    []*SM
	l2     *mem.Cache
	mem    *device.Memory
}

func (p *RunPool) get(cfg gpu.Config, memCap int) *pooledMachine {
	v := p.pool.Get()
	if v == nil {
		return nil
	}
	pm := v.(*pooledMachine)
	if pm.cfg != cfg || pm.memCap != memCap {
		// Wrong geometry: drop it; the next put replaces it with a matching
		// machine.
		return nil
	}
	return pm
}

func (p *RunPool) put(r *runner) {
	p.pool.Put(&pooledMachine{cfg: r.cfg, memCap: r.mem.Size(), sms: r.sms, l2: r.l2, mem: r.mem})
}
