// Checkpointed fork-and-join support: deep snapshots of complete machine
// state taken during a reference (golden) run, used by injectors to (a)
// resume faulty runs from the nearest checkpoint below the injection cycle
// instead of replaying the fault-free prefix, and (b) detect that a faulty
// run's state has become bit-identical to the reference at a later
// checkpoint, at which point its remaining trajectory — and therefore its
// outcome — equals the reference suffix and need not be simulated.
//
// The equivalence argument rests on the simulator being a deterministic
// function of its state: two runners with identical (cycle, schedule
// position, launch progress, SM arrays, allocator free lists, warp stacks,
// caches, device memory, DRAM counters, accumulated stats) execute identical
// continuations. Snapshots capture exactly that closure, nothing less.
//
// Storage arrays (register files, shared memories, device memory) are
// snapshotted as fixed-size pages with copy-on-write sharing: the runner
// tracks which pages may have diverged from the provenance snapshot it last
// synced against (runner.baseSnap), and a capture copies only those, sharing
// the rest with the base by aliasing its page slices. Consecutive
// checkpoints of a long run therefore cost proportional to the write
// working-set between them, not the machine size, which multiplies how many
// checkpoints fit in a -snap-mb budget. Restores and convergence checks use
// the same provenance to skip pages that are provably already identical.
package sim

import (
	"slices"
	"sync"

	"gpurel/internal/device"
	"gpurel/internal/exec"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/mem"
	"gpurel/internal/uop"
)

// Snapshot is a deep (but structurally shared) copy of complete machine
// state at the end of one cycle. Immutable once captured; safe for
// concurrent read-only use by many resumed/probed runs.
type Snapshot struct {
	cycle int64
	si    int
	steps int

	schedNext int

	dramRead, dramWrite int64

	dmem device.PagedState
	l2   mem.CacheState
	sms  []smSnap

	launch launchSnap
	spans  []LaunchSpan
	knames []string
	kstats []KernelStats

	// fixed is the retained size of everything except shareable storage
	// pages; bytes is the standalone footprint (fixed plus all pages,
	// sharing ignored). SnapshotSet accounts retained bytes across a whole
	// set by counting each distinct page once.
	fixed int64
	bytes int64
}

// Cycle returns the cycle the snapshot was taken at.
func (s *Snapshot) Cycle() int64 { return s.cycle }

// Bytes returns the standalone (sharing-ignored) size of the snapshot.
func (s *Snapshot) Bytes() int64 { return s.bytes }

type smSnap struct {
	// rfPages and smPages page the register file (rfPageWords words each)
	// and shared memory (smPageBytes bytes each); pages untouched since the
	// provenance base alias the base's slices instead of being copied.
	rfPages        [][]uint32
	smPages        [][]byte
	rfFree, smFree []block
	l1d, l1t       mem.CacheState
	threadsUsed    int
	issuePtr       int
	ctas           []ctaSnap
}

type ctaSnap struct {
	launch *device.Launch
	prog   *isa.Program
	params []uint32 // read-only during a run: shared, not copied
	cx, cy int

	warps []warpSnap
	meta  []warpMeta
	preds []uint8
	live  int

	rfBase, rfSize int
	smBase, smSize int
	threads        int
	schedID        int
}

type warpSnap struct {
	fullMask, exited uint32
	stack            []exec.Ent
}

type launchSnap struct {
	l         *device.Launch
	pending   []pendingCTA
	resident  int
	nextSM    int
	span      LaunchSpan
	statsBase statsSnapshot
}

// savePages snapshots data as pages of pageSize elements. A page whose dirty
// bit is clear is shared with the corresponding base page (the caller
// guarantees base is the provenance the bits are relative to); base nil
// forces a full copy.
func savePages[T uint32 | byte](data []T, dirty []uint64, base [][]T, pageSize int) [][]T {
	np := pageCount(len(data), pageSize)
	pages := make([][]T, np)
	for p := 0; p < np; p++ {
		if base != nil && !dirtyBit(dirty, p) {
			pages[p] = base[p]
			continue
		}
		lo := p * pageSize
		hi := min(lo+pageSize, len(data))
		pages[p] = append([]T(nil), data[lo:hi]...)
	}
	return pages
}

// sharedPage reports whether two page slices alias the same backing array.
func sharedPage[T any](a, b []T) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// loadPages restores pages into data. A page that is clean (live content
// equals the base page) and shared between pages and base (snapshot content
// equals the base page) is already in place and skipped; base nil forces a
// full copy.
func loadPages[T uint32 | byte](data []T, pages [][]T, dirty []uint64, base [][]T, pageSize int) {
	for p, pg := range pages {
		if base != nil && !dirtyBit(dirty, p) && sharedPage(pg, base[p]) {
			continue
		}
		copy(data[p*pageSize:], pg)
	}
}

// pagesEqual returns -1 when data equals the snapshotted pages (with the
// same clean-and-shared fast path as loadPages), or the index of the first
// differing page.
func pagesEqual[T uint32 | byte](data []T, pages [][]T, dirty []uint64, base [][]T, pageSize int) int {
	for p, pg := range pages {
		if base != nil && !dirtyBit(dirty, p) && sharedPage(pg, base[p]) {
			continue
		}
		lo := p * pageSize
		if !slices.Equal(data[lo:lo+len(pg)], pg) {
			return p
		}
	}
	return -1
}

// capture deep-copies the runner's state, sharing storage pages with the
// current provenance base where the dirty bits prove them unchanged, then
// re-bases the runner's provenance on the new snapshot. Only called from
// inside the runLaunch cycle loop, so r.cur is always non-nil: every
// checkpoint lies within some kernel launch (the cycle counter only
// advances there).
func (r *runner) capture() *Snapshot {
	base := r.baseSnap
	s := &Snapshot{
		cycle:     r.cycle,
		si:        r.si,
		steps:     r.steps,
		schedNext: r.schedNext,
		dramRead:  r.dramRead,
		dramWrite: r.dramWrite,
	}
	var dmemBase *device.PagedState
	if base != nil {
		dmemBase = &base.dmem
	}
	r.mem.SavePaged(&s.dmem, dmemBase)
	r.l2.SaveState(&s.l2)
	s.sms = make([]smSnap, len(r.sms))
	for i, sm := range r.sms {
		var bs *smSnap
		if base != nil {
			bs = &base.sms[i]
		}
		captureSM(sm, &s.sms[i], bs)
	}
	cur := r.cur
	s.launch = launchSnap{
		l:         cur.l,
		pending:   slices.Clone(cur.pending),
		resident:  cur.resident,
		nextSM:    cur.nextSM,
		span:      cur.span,
		statsBase: cur.statsBase,
	}
	s.spans = slices.Clone(r.res.Spans)
	s.knames = slices.Clone(r.knames)
	s.kstats = slices.Clone(r.kstats)
	s.fixed = s.footprint()
	s.bytes = s.fixed + s.pageBytes()
	if !r.opts.Legacy {
		r.syncDirty(s)
	}
	return s
}

func captureSM(sm *SM, dst *smSnap, base *smSnap) {
	if base != nil {
		dst.rfPages = savePages(sm.RF, sm.rfDirty, base.rfPages, rfPageWords)
		dst.smPages = savePages(sm.Smem, sm.smDirty, base.smPages, smPageBytes)
	} else {
		dst.rfPages = savePages[uint32](sm.RF, sm.rfDirty, nil, rfPageWords)
		dst.smPages = savePages[byte](sm.Smem, sm.smDirty, nil, smPageBytes)
	}
	dst.rfFree = slices.Clone(sm.rfAlloc.free)
	dst.smFree = slices.Clone(sm.smAlloc.free)
	sm.L1D.SaveState(&dst.l1d)
	sm.L1T.SaveState(&dst.l1t)
	dst.threadsUsed = sm.threadsUsed
	dst.issuePtr = sm.issuePtr
	dst.ctas = make([]ctaSnap, len(sm.ctas))
	for i, c := range sm.ctas {
		captureCTA(c, &dst.ctas[i])
	}
}

func captureCTA(c *ctaRT, dst *ctaSnap) {
	dst.launch = c.launch
	dst.prog = c.prog
	dst.params = c.params
	dst.cx, dst.cy = c.cx, c.cy
	dst.warps = make([]warpSnap, len(c.warps))
	for i, w := range c.warps {
		dst.warps[i] = warpSnap{fullMask: w.FullMask, exited: w.Exited, stack: slices.Clone(w.Stack)}
	}
	dst.meta = slices.Clone(c.meta)
	dst.preds = slices.Clone(c.preds)
	dst.live = c.live
	dst.rfBase, dst.rfSize = c.rfBase, c.rfSize
	dst.smBase, dst.smSize = c.smBase, c.smSize
	dst.threads = c.threads
	dst.schedID = c.schedID
}

// syncDirty re-bases the runner's page provenance on s: after it returns,
// every clean page is bit-identical to s's corresponding page. Device-memory
// writes are tracked precisely, so those bits simply clear; the warp hot
// path deliberately does NOT mark register/shared-memory writes, so pages
// overlapping any resident CTA's allocations are conservatively re-marked
// dirty — sharing for those arrays comes from the unallocated (quiescent)
// regions, which dominate for small kernels.
func (r *runner) syncDirty(s *Snapshot) {
	r.baseSnap = s
	for _, sm := range r.sms {
		clear(sm.rfDirty)
		clear(sm.smDirty)
		for _, cta := range sm.ctas {
			sm.MarkRFRange(cta.rfBase, cta.rfSize)
			sm.MarkSmemRange(cta.smBase, cta.smSize)
		}
	}
	r.mem.ClearPageDirty()
}

// restore overwrites the runner's state from the snapshot, skipping storage
// pages that the provenance base proves are already identical, and re-bases
// the provenance on s. Legacy runners take the full-copy path and carry no
// provenance (keeping the reference core an honest baseline). The runner
// must have been built for the same job and configuration; the injection
// hook is re-armed (snapshots are taken on fault-free reference runs,
// strictly before any resumed run's injection cycle).
func (r *runner) restore(s *Snapshot) {
	if len(r.sms) != len(s.sms) {
		panic("sim: restore onto a machine with a different SM count")
	}
	base := r.baseSnap
	if r.opts.Legacy {
		base = nil
	}
	r.cycle = s.cycle
	r.si = s.si
	r.steps = s.steps
	r.schedNext = s.schedNext
	r.fired = false
	r.stopped = false
	r.dramRead = s.dramRead
	r.dramWrite = s.dramWrite
	var dmemBase *device.PagedState
	if base != nil {
		dmemBase = &base.dmem
	}
	r.mem.LoadPaged(&s.dmem, dmemBase)
	r.l2.LoadState(&s.l2)
	for i, sm := range r.sms {
		var bs *smSnap
		if base != nil {
			bs = &base.sms[i]
		}
		r.restoreSM(sm, &s.sms[i], bs)
	}
	r.cur = &launchState{
		l:         s.launch.l,
		pending:   slices.Clone(s.launch.pending),
		resident:  s.launch.resident,
		nextSM:    s.launch.nextSM,
		span:      s.launch.span,
		statsBase: s.launch.statsBase,
	}
	r.res.Spans = append(r.res.Spans[:0], s.spans...)
	r.knames = append(r.knames[:0], s.knames...)
	r.kstats = append(r.kstats[:0], s.kstats...)
	if r.opts.Legacy {
		r.baseSnap = nil
	} else {
		r.syncDirty(s)
	}
}

func (r *runner) restoreSM(sm *SM, src *smSnap, base *smSnap) {
	if pageCount(len(sm.RF), rfPageWords) != len(src.rfPages) || pageCount(len(sm.Smem), smPageBytes) != len(src.smPages) {
		panic("sim: restore onto a machine with different SM geometry")
	}
	if base != nil {
		loadPages(sm.RF, src.rfPages, sm.rfDirty, base.rfPages, rfPageWords)
		loadPages(sm.Smem, src.smPages, sm.smDirty, base.smPages, smPageBytes)
	} else {
		loadPages[uint32](sm.RF, src.rfPages, sm.rfDirty, nil, rfPageWords)
		loadPages[byte](sm.Smem, src.smPages, sm.smDirty, nil, smPageBytes)
	}
	sm.rfAlloc.free = append(sm.rfAlloc.free[:0], src.rfFree...)
	sm.smAlloc.free = append(sm.smAlloc.free[:0], src.smFree...)
	sm.L1D.LoadState(&src.l1d)
	sm.L1T.LoadState(&src.l1t)
	sm.threadsUsed = src.threadsUsed
	sm.issuePtr = src.issuePtr
	sm.ctas = sm.ctas[:0]
	for i := range src.ctas {
		sm.ctas = append(sm.ctas, r.restoreCTA(&src.ctas[i]))
	}
	sm.rebuildSlots()
	sm.nextReady = 0
}

func (r *runner) restoreCTA(src *ctaSnap) *ctaRT {
	c := &ctaRT{
		launch:  src.launch,
		prog:    src.prog,
		params:  src.params,
		cx:      src.cx,
		cy:      src.cy,
		meta:    slices.Clone(src.meta),
		preds:   slices.Clone(src.preds),
		live:    src.live,
		rfBase:  src.rfBase,
		rfSize:  src.rfSize,
		smBase:  src.smBase,
		smSize:  src.smSize,
		threads: src.threads,
		schedID: src.schedID,
	}
	if r.fast {
		c.uprog = uop.Cached(src.prog)
	}
	for i := range src.warps {
		ws := &src.warps[i]
		c.warps = append(c.warps, &exec.Warp{FullMask: ws.fullMask, Exited: ws.exited, Stack: slices.Clone(ws.stack)})
	}
	return c
}

// matches reports whether the runner's live state is bit-identical to the
// snapshot. It compares the full deterministic closure — schedule position,
// launch progress, accumulated spans/stats, storage arrays, allocator free
// lists, warp contexts, caches, device memory and DRAM counters — so a
// match guarantees the continuation (and thus the final Result) equals the
// reference run's. Storage pages that are clean against the provenance base
// and shared between the snapshot and the base are skipped.
func (r *runner) matches(s *Snapshot) bool {
	if r.cycle != s.cycle || r.si != s.si || r.steps != s.steps || r.schedNext != s.schedNext {
		return false
	}
	if r.dramRead != s.dramRead || r.dramWrite != s.dramWrite {
		return false
	}
	cur := r.cur
	ls := &s.launch
	if cur.l != ls.l || cur.resident != ls.resident || cur.nextSM != ls.nextSM ||
		cur.span != ls.span || cur.statsBase != ls.statsBase {
		return false
	}
	if !slices.Equal(cur.pending, ls.pending) {
		return false
	}
	if !slices.Equal(r.res.Spans, s.spans) {
		return false
	}
	if !slices.Equal(r.knames, s.knames) || !slices.Equal(r.kstats, s.kstats) {
		return false
	}
	if len(r.sms) != len(s.sms) {
		return false
	}
	// Last-diff probe: a not-yet-converged run usually stays diverged at the
	// very storage page that failed the previous compare (the flipped word
	// persists until overwritten), so checking that one page first turns the
	// common failing compare into a single-page memcmp. Purely derived state:
	// a stale probe just falls through to the full compare.
	if d := r.lastDiff; r.fast && d.valid && d.sm < len(r.sms) {
		sm, ss := r.sms[d.sm], &s.sms[d.sm]
		if d.smem {
			if d.page < len(ss.smPages) {
				pg := ss.smPages[d.page]
				if !slices.Equal(sm.Smem[d.page*smPageBytes:d.page*smPageBytes+len(pg)], pg) {
					return false
				}
			}
		} else if d.page < len(ss.rfPages) {
			pg := ss.rfPages[d.page]
			if !slices.Equal(sm.RF[d.page*rfPageWords:d.page*rfPageWords+len(pg)], pg) {
				return false
			}
		}
		r.lastDiff.valid = false
	}
	base := r.baseSnap
	for i, sm := range r.sms {
		var bs *smSnap
		if base != nil {
			bs = &base.sms[i]
		}
		if !r.smEqual(i, sm, &s.sms[i], bs) {
			return false
		}
	}
	var dmemBase *device.PagedState
	if base != nil {
		dmemBase = &base.dmem
	}
	if !r.mem.PagedEqual(&s.dmem, dmemBase) {
		return false
	}
	return r.l2.StateEqual(&s.l2)
}

func (r *runner) smEqual(idx int, sm *SM, src *smSnap, base *smSnap) bool {
	if sm.threadsUsed != src.threadsUsed || sm.issuePtr != src.issuePtr {
		return false
	}
	if len(sm.ctas) != len(src.ctas) {
		return false
	}
	for i, c := range sm.ctas {
		if !ctaEqual(c, &src.ctas[i]) {
			return false
		}
	}
	if !slices.Equal(sm.rfAlloc.free, src.rfFree) || !slices.Equal(sm.smAlloc.free, src.smFree) {
		return false
	}
	// Storage pages before cache states: a not-yet-converged run usually
	// differs in data first, and the page compare has the provenance fast
	// path while the cache compare is always a full scan.
	var rfBase [][]uint32
	var smBase [][]byte
	if base != nil {
		rfBase, smBase = base.rfPages, base.smPages
	}
	if p := pagesEqual(sm.RF, src.rfPages, sm.rfDirty, rfBase, rfPageWords); p >= 0 {
		r.lastDiff = diffProbe{valid: true, sm: idx, page: p}
		return false
	}
	if p := pagesEqual(sm.Smem, src.smPages, sm.smDirty, smBase, smPageBytes); p >= 0 {
		r.lastDiff = diffProbe{valid: true, sm: idx, page: p, smem: true}
		return false
	}
	return sm.L1D.StateEqual(&src.l1d) && sm.L1T.StateEqual(&src.l1t)
}

func ctaEqual(c *ctaRT, src *ctaSnap) bool {
	if c.launch != src.launch || c.prog != src.prog || c.schedID != src.schedID {
		return false
	}
	if c.cx != src.cx || c.cy != src.cy || c.live != src.live || c.threads != src.threads {
		return false
	}
	if c.rfBase != src.rfBase || c.rfSize != src.rfSize || c.smBase != src.smBase || c.smSize != src.smSize {
		return false
	}
	if !slices.Equal(c.params, src.params) {
		return false
	}
	if !slices.Equal(c.meta, src.meta) || !slices.Equal(c.preds, src.preds) {
		return false
	}
	if len(c.warps) != len(src.warps) {
		return false
	}
	for i, w := range c.warps {
		ws := &src.warps[i]
		if w.FullMask != ws.fullMask || w.Exited != ws.exited || !slices.Equal(w.Stack, ws.stack) {
			return false
		}
	}
	return true
}

// footprint approximates the retained size of the snapshot excluding the
// shareable storage pages (device memory, register files, shared memories).
func (s *Snapshot) footprint() int64 {
	n := s.l2.StateBytes()
	n += int64(len(s.dmem.Pages())) * 16 // page headers
	for i := range s.sms {
		sm := &s.sms[i]
		n += int64(len(sm.rfPages)+len(sm.smPages)) * 16
		n += int64(len(sm.rfFree)+len(sm.smFree)) * 16
		n += sm.l1d.StateBytes() + sm.l1t.StateBytes()
		for j := range sm.ctas {
			c := &sm.ctas[j]
			n += int64(len(c.meta))*10 + int64(len(c.preds)) + 96
			for k := range c.warps {
				n += int64(len(c.warps[k].stack))*12 + 16
			}
		}
	}
	n += int64(len(s.launch.pending)) * 24
	n += int64(len(s.spans)) * 64
	n += int64(len(s.knames)) * 160
	return n + 256
}

// pageBytes sums the sizes of all storage pages, sharing ignored.
func (s *Snapshot) pageBytes() int64 {
	n := s.dmem.StateBytes()
	for i := range s.sms {
		sm := &s.sms[i]
		for _, pg := range sm.rfPages {
			n += int64(len(pg)) * 4
		}
		for _, pg := range sm.smPages {
			n += int64(len(pg))
		}
	}
	return n
}

// SnapshotSet holds the checkpoints of one reference run, ordered by cycle.
// It is written single-threaded during the reference run and read-only
// afterwards, so concurrent resumed runs may share it without locking.
//
// A memory budget bounds the retained bytes: when an appended snapshot
// pushes the set over budget, the stride doubles and snapshots that fall
// off the widened grid are evicted, preserving the invariant that every
// retained cycle is a multiple of the current stride. Retained bytes are
// exact under page sharing: a page aliased by several snapshots counts
// once.
type SnapshotSet struct {
	stride  int64
	budget  int64
	snaps   []*Snapshot
	bytes   int64
	evicted int64
}

// NewSnapshotSet creates a set capturing every stride-th cycle, retaining at
// most budgetBytes of snapshot state (<= 0 means unlimited). A stride <= 0
// disables capture.
func NewSnapshotSet(stride, budgetBytes int64) *SnapshotSet {
	return &SnapshotSet{stride: stride, budget: budgetBytes}
}

// Len returns the number of retained snapshots.
func (s *SnapshotSet) Len() int { return len(s.snaps) }

// Snap returns the i-th retained snapshot in cycle order.
func (s *SnapshotSet) Snap(i int) *Snapshot { return s.snaps[i] }

// Bytes returns the retained size of all snapshots, counting pages shared
// between snapshots once.
func (s *SnapshotSet) Bytes() int64 { return s.bytes }

// Stride returns the current capture stride in cycles (0 when capture has
// been disabled by budget pressure).
func (s *SnapshotSet) Stride() int64 { return s.stride }

// Evicted returns the number of snapshots dropped to fit the budget.
func (s *SnapshotSet) Evicted() int64 { return s.evicted }

// recount recomputes the exact retained bytes of the set: each snapshot's
// fixed state plus every distinct storage page, identified by its backing
// array. The maps are used for membership only (never iterated), so the
// walk is deterministic.
func (s *SnapshotSet) recount() {
	var n int64
	seenB := make(map[*byte]struct{})
	seenW := make(map[*uint32]struct{})
	for _, snap := range s.snaps {
		n += snap.fixed
		for _, pg := range snap.dmem.Pages() {
			if len(pg) == 0 {
				continue
			}
			if _, ok := seenB[&pg[0]]; !ok {
				seenB[&pg[0]] = struct{}{}
				n += int64(len(pg))
			}
		}
		for i := range snap.sms {
			sm := &snap.sms[i]
			for _, pg := range sm.rfPages {
				if len(pg) == 0 {
					continue
				}
				if _, ok := seenW[&pg[0]]; !ok {
					seenW[&pg[0]] = struct{}{}
					n += int64(len(pg)) * 4
				}
			}
			for _, pg := range sm.smPages {
				if len(pg) == 0 {
					continue
				}
				if _, ok := seenB[&pg[0]]; !ok {
					seenB[&pg[0]] = struct{}{}
					n += int64(len(pg))
				}
			}
		}
	}
	s.bytes = n
}

// offer captures a snapshot if the runner's cycle is on the stride grid,
// then enforces the budget.
func (s *SnapshotSet) offer(r *runner) {
	if s.stride <= 0 || r.cycle%s.stride != 0 {
		return
	}
	snap := r.capture()
	s.snaps = append(s.snaps, snap)
	s.recount()
	for s.budget > 0 && s.bytes > s.budget {
		if !s.widen() {
			break
		}
	}
}

// widen doubles the stride and evicts snapshots off the widened grid. When
// no further widening can help (a single snapshot already exceeds the
// budget), the set is emptied and capture disabled; it returns false.
func (s *SnapshotSet) widen() bool {
	if len(s.snaps) <= 1 {
		s.evicted += int64(len(s.snaps))
		s.snaps = s.snaps[:0]
		s.bytes = 0
		s.stride = 0
		return false
	}
	s.stride *= 2
	kept := s.snaps[:0]
	for _, snap := range s.snaps {
		if snap.cycle%s.stride == 0 {
			kept = append(kept, snap)
		} else {
			s.evicted++
		}
	}
	for i := len(kept); i < len(s.snaps); i++ {
		s.snaps[i] = nil
	}
	s.snaps = kept
	s.recount()
	return true
}

// Before returns the latest snapshot taken strictly before cycle c, or nil.
// Strictness matters for resume: the injection hook fires at the top of the
// cycle body while snapshots capture its end, so a resumed run whose hook
// must fire at cycle c has to start from a cycle below it.
func (s *SnapshotSet) Before(c int64) *Snapshot {
	lo, hi := 0, len(s.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.snaps[mid].cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return s.snaps[lo-1]
}

// at returns the snapshot taken exactly at cycle c, or nil. The stride
// modulo gate keeps the common (non-checkpoint) cycle to a single test.
func (s *SnapshotSet) at(c int64) *Snapshot {
	if s.stride <= 0 || c%s.stride != 0 {
		return nil
	}
	lo, hi := 0, len(s.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.snaps[mid].cycle < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.snaps) && s.snaps[lo].cycle == c {
		return s.snaps[lo]
	}
	return nil
}

// RunPool recycles the large machine-state arrays (register files, shared
// memories, caches, device memory image) across runs so a campaign's
// per-run cost is simulation, not allocation. Safe for concurrent use. A
// pooled machine is only reused for an identical configuration and device
// memory capacity; fresh runs reset it to pristine state first, resumed
// runs are overwritten wholesale by the snapshot restore.
type RunPool struct {
	pool sync.Pool
}

// NewRunPool creates an empty pool.
func NewRunPool() *RunPool { return &RunPool{} }

type pooledMachine struct {
	cfg    gpu.Config
	memCap int
	sms    []*SM
	l2     *mem.Cache
	mem    *device.Memory
	// baseSnap is the provenance the machine's page-dirty bits were last
	// synced against; it travels with the arrays so a resumed run can
	// restore copy-on-write instead of wholesale.
	baseSnap *Snapshot
}

func (p *RunPool) get(cfg gpu.Config, memCap int) *pooledMachine {
	v := p.pool.Get()
	if v == nil {
		return nil
	}
	pm := v.(*pooledMachine)
	if pm.cfg != cfg || pm.memCap != memCap {
		// Wrong geometry: drop it; the next put replaces it with a matching
		// machine.
		return nil
	}
	return pm
}

func (p *RunPool) put(r *runner) {
	p.pool.Put(&pooledMachine{cfg: r.cfg, memCap: r.mem.Size(), sms: r.sms, l2: r.l2, mem: r.mem, baseSnap: r.baseSnap})
}
