// Pre-decoded µop interpreter: the simulator's fast execution core. It
// mirrors exec.Step bit for bit — same stack normalization, same guard
// evaluation, same lane order (ascending, so coalescing and mid-instruction
// fault aborts are identical) — but executes uop.Program records through a
// compact handler table instead of re-decoding isa.Instr every warp-cycle.
// Scalar semantics (saturating F2I, comparisons, fused FFMA) are shared with
// the reference interpreter via exec's exported helpers so they are defined
// exactly once.
//
// The fast path is taken when the CTA's program compiled (uop.Cached) and
// the run needs neither the reference core (Options.Legacy) nor per-access
// register tracing (Options.RFTrace); otherwise cycleSM falls back to
// exec.Step on the architectural program.
package sim

import (
	"math"

	"gpurel/internal/exec"
	"gpurel/internal/isa"
	"gpurel/internal/uop"
)

// stepFast executes one instruction of w from the compiled program. It is
// the concrete-counterpart of exec.Step[*simEnv]; StepInfo still reports the
// architectural *isa.Instr so stats and traces are unchanged. The second
// return value is the executed µop for data ops (nil for control ops and
// faults), letting cycleSM classify latency and instruction mix without
// dereferencing the architectural instruction.
func (r *runner) stepFast(w *exec.Warp, cp *uop.Program, e *simEnv) (exec.StepInfo, *uop.Op) {
	w.Normalize()
	if len(w.Stack) == 0 {
		if w.Done() {
			return exec.StepInfo{Kind: exec.StepExit}, nil
		}
		return exec.StepInfo{Kind: exec.StepFault, Fault: &exec.ErrBadPC{PC: -1}}, nil
	}
	top := &w.Stack[len(w.Stack)-1]
	pc := top.PC
	if pc < 0 || int(pc) >= len(cp.Ops) {
		return exec.StepInfo{Kind: exec.StepFault, Fault: &exec.ErrBadPC{PC: pc}}, nil
	}
	u := &cp.Ops[pc]
	effective := top.Mask &^ w.Exited

	execMask := effective
	if u.GuardBit != 0 {
		execMask = 0
		preds := e.cta.preds
		gb := u.GuardBit
		for lane, m := 0, effective; m != 0; lane, m = lane+1, m>>1 {
			if m&1 == 0 {
				continue
			}
			v := preds[e.warpBase+lane]&gb != 0
			if u.GuardNeg {
				v = !v
			}
			if v {
				execMask |= uint32(1) << lane
			}
		}
	} else if u.GuardNeg {
		// "@!PT": constant-false guard, no lane executes.
		execMask = 0
	}

	info := exec.StepInfo{Kind: exec.StepOK, PC: pc, Instr: &cp.Src.Code[pc], ActiveMask: execMask}

	switch u.Kind {
	case uop.KBra:
		taken := execMask
		notTaken := effective &^ execMask
		switch {
		case taken == 0:
			top.PC = pc + 1
		case notTaken == 0:
			top.PC = u.Target
		default:
			top.PC = u.Reconv
			w.Stack = append(w.Stack,
				exec.Ent{Mask: notTaken, PC: pc + 1, RPC: u.Reconv},
				exec.Ent{Mask: taken, PC: u.Target, RPC: u.Reconv},
			)
		}
		return info, nil

	case uop.KExit:
		w.Exited |= execMask
		top.PC = pc + 1
		w.Normalize()
		if w.Done() {
			info.Kind = exec.StepExit
		}
		return info, nil

	case uop.KBar:
		if execMask != w.FullMask&^w.Exited {
			info.Kind = exec.StepFault
			info.Fault = exec.ErrBarrierDivergence
			return info, nil
		}
		info.Kind = exec.StepBarrier
		return info, nil

	case uop.KNop, uop.KDrop:
		top.PC = pc + 1
		return info, u
	}

	if err := uopFns[u.Kind](e, u, execMask); err != nil {
		info.Kind = exec.StepFault
		info.Fault = err
		return info, nil
	}
	top.PC = pc + 1
	return info, u
}

// uopFn executes one data µop for the lanes in mask. The simEnv carries the
// precomputed warp register base (rbase) and per-thread register stride
// (nregs), so handlers index the SM's register file directly.
type uopFn func(e *simEnv, u *uop.Op, mask uint32) error

var uopFns [uop.NumKinds]uopFn

func init() {
	uopFns[uop.KS2R] = uS2R
	uopFns[uop.KMov] = uMov
	uopFns[uop.KMovImm] = uMovImm
	uopFns[uop.KLdc] = uLdc
	uopFns[uop.KIAdd] = uIAdd
	uopFns[uop.KIAddImm] = uIAddImm
	uopFns[uop.KISub] = uISub
	uopFns[uop.KISubImm] = uISubImm
	uopFns[uop.KIMul] = uIMul
	uopFns[uop.KIMulImm] = uIMulImm
	uopFns[uop.KIMad] = uIMad
	uopFns[uop.KIMadImm] = uIMadImm
	uopFns[uop.KIScAdd] = uIScAdd
	uopFns[uop.KIMin] = uIMin
	uopFns[uop.KIMinImm] = uIMinImm
	uopFns[uop.KIMax] = uIMax
	uopFns[uop.KIMaxImm] = uIMaxImm
	uopFns[uop.KShl] = uShl
	uopFns[uop.KShlImm] = uShlImm
	uopFns[uop.KShr] = uShr
	uopFns[uop.KShrImm] = uShrImm
	uopFns[uop.KAnd] = uAnd
	uopFns[uop.KAndImm] = uAndImm
	uopFns[uop.KOr] = uOr
	uopFns[uop.KOrImm] = uOrImm
	uopFns[uop.KXor] = uXor
	uopFns[uop.KXorImm] = uXorImm
	uopFns[uop.KFAdd] = uFAdd
	uopFns[uop.KFAddImm] = uFAddImm
	uopFns[uop.KFSub] = uFSub
	uopFns[uop.KFSubImm] = uFSubImm
	uopFns[uop.KFMul] = uFMul
	uopFns[uop.KFMulImm] = uFMulImm
	uopFns[uop.KFFma] = uFFma
	uopFns[uop.KFFmaImm] = uFFmaImm
	uopFns[uop.KFMin] = uFMin
	uopFns[uop.KFMinImm] = uFMinImm
	uopFns[uop.KFMax] = uFMax
	uopFns[uop.KFMaxImm] = uFMaxImm
	uopFns[uop.KMufu] = uMufu
	uopFns[uop.KI2F] = uI2F
	uopFns[uop.KF2I] = uF2I
	uopFns[uop.KISetp] = uISetp
	uopFns[uop.KISetpImm] = uISetpImm
	uopFns[uop.KFSetp] = uFSetp
	uopFns[uop.KFSetpImm] = uFSetpImm
	uopFns[uop.KSel] = uSel
	uopFns[uop.KSelImm] = uSelImm
	uopFns[uop.KLdg] = uLdg
	uopFns[uop.KLdt] = uLdt
	uopFns[uop.KStg] = uStg
	uopFns[uop.KLds] = uLds
	uopFns[uop.KSts] = uSts
}

// src reads a resolved source operand: -1 is RZ.
func src(rf []uint32, lb int, r int16) uint32 {
	if r < 0 {
		return 0
	}
	return rf[lb+int(r)]
}

func fsrc(rf []uint32, lb int, r int16) float32 {
	return math.Float32frombits(src(rf, lb, r))
}

// Compile guarantees Dst >= 0 for every kind whose handler writes
// unconditionally (RZ destinations become KDrop), so handlers below index
// rf[lb+Dst] without a check. Loads check Dst themselves.

func uS2R(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = e.Special(lane, u.Special)
		}
	}
	return nil
}

func uMov(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A)
		}
	}
	return nil
}

func uMovImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = u.Imm
		}
	}
	return nil
}

func uLdc(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	v := e.Param(int(u.Imm))
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = v
		}
	}
	return nil
}

func uIAdd(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) + src(rf, lb, u.B)
		}
	}
	return nil
}

func uIAddImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) + u.Imm
		}
	}
	return nil
}

func uISub(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) - src(rf, lb, u.B)
		}
	}
	return nil
}

func uISubImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) - u.Imm
		}
	}
	return nil
}

func uIMul(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(int32(src(rf, lb, u.A)) * int32(src(rf, lb, u.B)))
		}
	}
	return nil
}

func uIMulImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(int32(src(rf, lb, u.A)) * int32(u.Imm))
		}
	}
	return nil
}

func uIMad(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(int32(src(rf, lb, u.A))*int32(src(rf, lb, u.B)) + int32(src(rf, lb, u.C)))
		}
	}
	return nil
}

func uIMadImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(int32(src(rf, lb, u.A))*int32(u.Imm) + int32(src(rf, lb, u.C)))
		}
	}
	return nil
}

func uIScAdd(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = (src(rf, lb, u.A) << u.Sh) + src(rf, lb, u.B)
		}
	}
	return nil
}

func uIMin(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(min(int32(src(rf, lb, u.A)), int32(src(rf, lb, u.B))))
		}
	}
	return nil
}

func uIMinImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(min(int32(src(rf, lb, u.A)), int32(u.Imm)))
		}
	}
	return nil
}

func uIMax(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(max(int32(src(rf, lb, u.A)), int32(src(rf, lb, u.B))))
		}
	}
	return nil
}

func uIMaxImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(max(int32(src(rf, lb, u.A)), int32(u.Imm)))
		}
	}
	return nil
}

func uShl(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) << (src(rf, lb, u.B) & 31)
		}
	}
	return nil
}

func uShlImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	sh := u.Imm & 31
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) << sh
		}
	}
	return nil
}

func uShr(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) >> (src(rf, lb, u.B) & 31)
		}
	}
	return nil
}

func uShrImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	sh := u.Imm & 31
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) >> sh
		}
	}
	return nil
}

func uAnd(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) & src(rf, lb, u.B)
		}
	}
	return nil
}

func uAndImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) & u.Imm
		}
	}
	return nil
}

func uOr(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) | src(rf, lb, u.B)
		}
	}
	return nil
}

func uOrImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) | u.Imm
		}
	}
	return nil
}

func uXor(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) ^ src(rf, lb, u.B)
		}
	}
	return nil
}

func uXorImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A) ^ u.Imm
		}
	}
	return nil
}

func uFAdd(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) + fsrc(rf, lb, u.B))
		}
	}
	return nil
}

func uFAddImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := math.Float32frombits(u.Imm)
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) + b)
		}
	}
	return nil
}

func uFSub(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) - fsrc(rf, lb, u.B))
		}
	}
	return nil
}

func uFSubImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := math.Float32frombits(u.Imm)
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) - b)
		}
	}
	return nil
}

func uFMul(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) * fsrc(rf, lb, u.B))
		}
	}
	return nil
}

func uFMulImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := math.Float32frombits(u.Imm)
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fsrc(rf, lb, u.A) * b)
		}
	}
	return nil
}

func uFFma(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			f := math.FMA(float64(fsrc(rf, lb, u.A)), float64(fsrc(rf, lb, u.B)), float64(fsrc(rf, lb, u.C)))
			rf[lb+int(u.Dst)] = math.Float32bits(float32(f))
		}
	}
	return nil
}

func uFFmaImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := float64(math.Float32frombits(u.Imm))
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			f := math.FMA(float64(fsrc(rf, lb, u.A)), b, float64(fsrc(rf, lb, u.C)))
			rf[lb+int(u.Dst)] = math.Float32bits(float32(f))
		}
	}
	return nil
}

// fminVal/fmaxVal reproduce the reference interpreter's NaN handling: the
// second operand wins only when it is ordered and beats the first.
func fminVal(a, b float32) float32 {
	if a < b || b != b {
		return a
	}
	return b
}

func fmaxVal(a, b float32) float32 {
	if a > b || b != b {
		return a
	}
	return b
}

func uFMin(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fminVal(fsrc(rf, lb, u.A), fsrc(rf, lb, u.B)))
		}
	}
	return nil
}

func uFMinImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := math.Float32frombits(u.Imm)
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fminVal(fsrc(rf, lb, u.A), b))
		}
	}
	return nil
}

func uFMax(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fmaxVal(fsrc(rf, lb, u.A), fsrc(rf, lb, u.B)))
		}
	}
	return nil
}

func uFMaxImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	b := math.Float32frombits(u.Imm)
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(fmaxVal(fsrc(rf, lb, u.A), b))
		}
	}
	return nil
}

func uMufu(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		x := float64(fsrc(rf, lb, u.A))
		var y float64
		switch u.Mufu {
		case isa.MufuRCP:
			y = 1 / x
		case isa.MufuSQRT:
			y = math.Sqrt(x)
		case isa.MufuRSQ:
			y = 1 / math.Sqrt(x)
		case isa.MufuEX2:
			y = math.Exp2(x)
		case isa.MufuLG2:
			y = math.Log2(x)
		}
		rf[lb+int(u.Dst)] = math.Float32bits(float32(y))
	}
	return nil
}

func uI2F(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = math.Float32bits(float32(int32(src(rf, lb, u.A))))
		}
	}
	return nil
}

func uF2I(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lb, m := e.rbase, mask; m != 0; lb, m = lb+e.nregs, m>>1 {
		if m&1 != 0 {
			rf[lb+int(u.Dst)] = uint32(exec.F32I(fsrc(rf, lb, u.A)))
		}
	}
	return nil
}

// setp writes the combined comparison result into the thread's predicate
// byte. PDstBit != 0 is guaranteed by Compile (PT destinations drop).
func setp(preds []uint8, t int, u *uop.Op, r bool) {
	c := u.CBit == 0 || preds[t]&u.CBit != 0
	if u.CNeg {
		c = !c
	}
	if r && c {
		preds[t] |= u.PDstBit
	} else {
		preds[t] &^= u.PDstBit
	}
}

func uISetp(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 != 0 {
			r := exec.ICmp(u.Cmp, int32(src(rf, lb, u.A)), int32(src(rf, lb, u.B)))
			setp(preds, e.warpBase+lane, u, r)
		}
	}
	return nil
}

func uISetpImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	b := int32(u.Imm)
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 != 0 {
			r := exec.ICmp(u.Cmp, int32(src(rf, lb, u.A)), b)
			setp(preds, e.warpBase+lane, u, r)
		}
	}
	return nil
}

func uFSetp(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 != 0 {
			r := exec.FCmp(u.Cmp, fsrc(rf, lb, u.A), fsrc(rf, lb, u.B))
			setp(preds, e.warpBase+lane, u, r)
		}
	}
	return nil
}

func uFSetpImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	b := math.Float32frombits(u.Imm)
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 != 0 {
			r := exec.FCmp(u.Cmp, fsrc(rf, lb, u.A), b)
			setp(preds, e.warpBase+lane, u, r)
		}
	}
	return nil
}

func uSel(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		v := u.SelBit == 0 || preds[e.warpBase+lane]&u.SelBit != 0
		if u.SelNeg {
			v = !v
		}
		if v {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A)
		} else {
			rf[lb+int(u.Dst)] = src(rf, lb, u.B)
		}
	}
	return nil
}

func uSelImm(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	preds := e.cta.preds
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		v := u.SelBit == 0 || preds[e.warpBase+lane]&u.SelBit != 0
		if u.SelNeg {
			v = !v
		}
		if v {
			rf[lb+int(u.Dst)] = src(rf, lb, u.A)
		} else {
			rf[lb+int(u.Dst)] = u.Imm
		}
	}
	return nil
}

func uLdg(e *simEnv, u *uop.Op, mask uint32) error {
	return uLoadGlobal(e, u, mask, false)
}

func uLdt(e *simEnv, u *uop.Op, mask uint32) error {
	return uLoadGlobal(e, u, mask, true)
}

func uLoadGlobal(e *simEnv, u *uop.Op, mask uint32, tex bool) error {
	rf := e.sm.RF
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		addr := src(rf, lb, u.A) + u.Imm
		v, err := e.LoadGlobal(lane, addr, tex)
		if err != nil {
			return err
		}
		if u.Dst >= 0 {
			rf[lb+int(u.Dst)] = v
		}
	}
	return nil
}

func uStg(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		addr := src(rf, lb, u.A) + u.Imm
		if err := e.StoreGlobal(lane, addr, src(rf, lb, u.B)); err != nil {
			return err
		}
	}
	return nil
}

func uLds(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		addr := src(rf, lb, u.A) + u.Imm
		v, err := e.LoadShared(lane, addr)
		if err != nil {
			return err
		}
		if u.Dst >= 0 {
			rf[lb+int(u.Dst)] = v
		}
	}
	return nil
}

func uSts(e *simEnv, u *uop.Op, mask uint32) error {
	rf := e.sm.RF
	for lane, lb, m := 0, e.rbase, mask; m != 0; lane, lb, m = lane+1, lb+e.nregs, m>>1 {
		if m&1 == 0 {
			continue
		}
		addr := src(rf, lb, u.A) + u.Imm
		if err := e.StoreShared(lane, addr, src(rf, lb, u.B)); err != nil {
			return err
		}
	}
	return nil
}
