package sim

import (
	"bytes"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
)

// FuzzUOpParity feeds randomly generated (but structurally valid) programs
// through both execution cores: the pre-decoded µop interpreter and the
// reference decode-and-switch interpreter must agree on the complete
// Result — outputs, cycle count, fault status, timeout — for any program
// the ISA admits, including ones that fault on wild addresses, deadlock a
// divergent barrier into the timeout, or drop every write into RZ. The
// byte stream drives every structural choice directly, so the fuzzer's
// mutations explore the compiler's kind/operand space.
func FuzzUOpParity(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 7, 11, 250, 128, 42, 9, 0, 200, 17, 66, 1, 2, 3, 4, 5})
	f.Add(bytes.Repeat([]byte{0xA5, 0x17, 0xC3, 0x08}, 16))
	f.Add([]byte("divergent branches and barriers"))
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := genProgram(data)
		if err := prog.Validate(); err != nil {
			t.Fatalf("generator emitted an invalid program: %v", err)
		}
		fast := Run(fuzzJob(prog), gpu.Volta(), Options{MaxCycles: 20000})
		slow := Run(fuzzJob(prog), gpu.Volta(), Options{MaxCycles: 20000, Legacy: true})
		if (fast.Err == nil) != (slow.Err == nil) {
			t.Fatalf("fault status diverges: µop err=%v, reference err=%v", fast.Err, slow.Err)
		}
		if fast.TimedOut != slow.TimedOut || fast.DUEFlag != slow.DUEFlag {
			t.Fatalf("status diverges: µop timeout=%v due=%v, reference timeout=%v due=%v",
				fast.TimedOut, fast.DUEFlag, slow.TimedOut, slow.DUEFlag)
		}
		if fast.Cycles != slow.Cycles {
			t.Fatalf("cycles diverge: µop %d, reference %d", fast.Cycles, slow.Cycles)
		}
		if !bytes.Equal(fast.Output, slow.Output) {
			t.Fatal("outputs diverge")
		}
	})
}

// genProgram decodes the fuzz byte stream into a valid program: up to 24
// instructions over the full opcode set with stream-chosen operands,
// forward-only branches (so every program terminates or deadlocks on a
// barrier, never spins), and a terminating EXIT.
func genProgram(data []byte) *isa.Program {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	const nregs = 8
	reg := func() isa.Reg {
		if v := next(); v%9 == 8 {
			return isa.RZ
		} else {
			return isa.Reg(v % nregs)
		}
	}
	pred := func() isa.Pred { return isa.Pred(next() % 3) } // PT, P0, P1
	n := 1 + next()%24
	code := make([]isa.Instr, 0, n+1)
	ops := []isa.Op{
		isa.OpNOP, isa.OpBRA, isa.OpBAR,
		isa.OpS2R, isa.OpMOV, isa.OpMOVI, isa.OpLDC,
		isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpISCADD,
		isa.OpIMIN, isa.OpIMAX, isa.OpSHL, isa.OpSHR,
		isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX,
		isa.OpMUFU, isa.OpI2F, isa.OpF2I,
		isa.OpISETP, isa.OpFSETP, isa.OpSEL,
		isa.OpLDG, isa.OpSTG, isa.OpLDS, isa.OpSTS, isa.OpLDT,
	}
	for pc := 0; pc < n; pc++ {
		ins := isa.Instr{
			Op:      ops[next()%len(ops)],
			Dst:     reg(),
			SrcA:    reg(),
			SrcB:    reg(),
			SrcC:    reg(),
			Pred:    pred(),
			PredNeg: next()%2 == 1,
			Imm:     int32(int8(next())),
		}
		switch ins.Op {
		case isa.OpBRA:
			// Forward-only: target and reconvergence strictly past this pc.
			span := n - pc // branches may land on the trailing EXIT at n
			ins.Target = pc + 1 + next()%span
			ins.Reconv = pc + 1 + next()%span
		case isa.OpISETP, isa.OpFSETP:
			ins.PDst = pred()
			ins.Cmp = isa.CmpOp(next() % int(isa.CmpNE+1))
			ins.CPred = pred()
			ins.CPredNeg = next()%2 == 1
			ins.BImm = next()%2 == 1
		case isa.OpSEL:
			ins.SelPred = pred()
			ins.SelPredNeg = next()%2 == 1
			ins.BImm = next()%2 == 1
		case isa.OpS2R:
			ins.Special = isa.SReg(next() % int(isa.SRLaneID+1))
		case isa.OpMUFU:
			ins.Mufu = isa.MufuOp(next() % int(isa.MufuLG2+1))
		case isa.OpISCADD:
			ins.Imm2 = uint8(next() % 32)
		case isa.OpLDC:
			ins.Imm = int32(next() % 4) // two real params; out-of-range reads too
		case isa.OpLDG, isa.OpSTG, isa.OpLDS, isa.OpSTS, isa.OpLDT:
			ins.Imm = int32(next()) * 4 // mostly-aligned small offsets
		case isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD,
			isa.OpIMIN, isa.OpIMAX, isa.OpSHL, isa.OpSHR,
			isa.OpAND, isa.OpOR, isa.OpXOR,
			isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX:
			ins.BImm = next()%2 == 1
		}
		code = append(code, ins)
	}
	code = append(code, isa.Instr{Op: isa.OpEXIT})
	return &isa.Program{Name: "fuzz", NumRegs: nregs, Code: code}
}

// fuzzJob wraps a generated program into a two-CTA job with real global
// buffers (so loads off the parameter pointers see data) and shared memory.
func fuzzJob(prog *isa.Program) *device.Job {
	m := device.NewMemory(1 << 16)
	in := m.Alloc("in", 1024)
	out := m.Alloc("out", 1024)
	vals := make([]uint32, 256)
	for i := range vals {
		vals[i] = uint32(i)*2654435761 + 1
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "fuzz", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 2, GridY: 1, BlockX: 64, BlockY: 1,
			SmemBytes: 256,
			Params:    []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 1024}},
	}
}
