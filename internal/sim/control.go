// Control-state injection sites: the machine state held in flip-flops
// rather than SRAM data arrays — warp-scheduler entries (ready timestamps
// and done flags), the SIMT divergence stack (active mask / PC / RPC per
// entry), and CTA barrier arrival state. The storage-array injectors reach
// RF/SMEM/caches through the Machine's exported arrays; control state lives
// in unexported scheduler structs, so this file exposes it behind a narrow
// mutation API that keeps every fault architecturally expressible without
// ever corrupting the simulator's own invariants (no out-of-range lane
// activations, no dangling slice indices).
//
// Sites are addressed physically — (SM, warp slot, field) — not by CTA
// pointer: a persistent fault is a property of the hardware slot, so after
// the resident CTA retires and another takes the slot, the defect applies
// to the new occupant. Slot enumeration is CTA-major in residence order,
// matching the issue round-robin in cycleSM, so slot k here is the k-th
// slot the scheduler scans.
package sim

// Scheduler-entry geometry: each warp slot carries a 17-bit injectable
// scheduler entry — bits 0..15 are the low bits of the ready-at cycle
// timestamp (a flipped timestamp bit delays or accelerates issue), bit 16
// is the done latch (spurious done parks a live warp forever; a cleared
// done re-issues an exited warp).
const (
	SchedEntryBits = 17
	schedDoneBit   = 16
)

// StackEntryWords is the number of injectable 32-bit words per divergence
// stack entry: word 0 = active mask, word 1 = PC, word 2 = reconvergence PC.
const StackEntryWords = 3

// WarpCtl is a resolved view of one warp slot's control state, valid only
// within the cycle it was resolved in (CTA retirement invalidates it).
type WarpCtl struct {
	cta *ctaRT
	w   int
}

// NumWarpSlots returns the number of resident warp slots on the SM this
// cycle, in the scheduler's scan order.
func (s *SM) NumWarpSlots() int {
	n := 0
	for _, c := range s.ctas {
		n += len(c.warps)
	}
	return n
}

// WarpSlot resolves physical slot i to its current occupant. ok is false
// when the slot is unoccupied this cycle (fewer resident warps than i);
// persistent appliers treat that as the defect touching idle hardware.
func (s *SM) WarpSlot(i int) (WarpCtl, bool) {
	if i < 0 {
		return WarpCtl{}, false
	}
	for _, c := range s.ctas {
		if i < len(c.warps) {
			return WarpCtl{cta: c, w: i}, true
		}
		i -= len(c.warps)
	}
	return WarpCtl{}, false
}

// FlipSchedBit flips one bit of the slot's scheduler entry.
func (wc WarpCtl) FlipSchedBit(bit uint) {
	m := &wc.cta.meta[wc.w]
	if bit == schedDoneBit {
		wasDone := m.done
		m.done = !m.done
		wc.adjustLive(wasDone, m.done)
		return
	}
	m.ready ^= int64(1) << (bit % schedDoneBit)
}

// ForceSchedBit forces one bit of the slot's scheduler entry to v
// (idempotent; persistent stuck-at application).
func (wc WarpCtl) ForceSchedBit(bit uint, v bool) {
	m := &wc.cta.meta[wc.w]
	if bit == schedDoneBit {
		wasDone := m.done
		m.done = v
		wc.adjustLive(wasDone, m.done)
		return
	}
	mask := int64(1) << (bit % schedDoneBit)
	if v {
		m.ready |= mask
	} else {
		m.ready &^= mask
	}
}

// adjustLive keeps the CTA's live-warp count consistent with a mutated done
// latch, so a faulted done bit reads as "this warp (dis)appeared from the
// scheduler" rather than desynchronising retirement accounting into a
// negative count. The resulting behaviour (premature retirement, or a CTA
// that can never finish) is the architectural effect of the fault.
func (wc WarpCtl) adjustLive(was, now bool) {
	switch {
	case !was && now:
		wc.cta.live--
	case was && !now:
		wc.cta.live++
	}
}

// StackDepth returns the current divergence-stack depth of the slot's warp.
func (wc WarpCtl) StackDepth() int { return len(wc.cta.warps[wc.w].Stack) }

// FlipStackBit flips bit `bit` of word `word` in stack entry `entry`
// (0 = bottom). It reports false when the entry no longer exists — the
// stack pops as control flow reconverges, and a fault aimed at a popped
// entry hits unoccupied storage. Mask mutations are clamped to the warp's
// existing lanes: bits for lanes beyond FullMask have no physical threads
// behind them.
func (wc WarpCtl) FlipStackBit(entry, word int, bit uint) bool {
	w := wc.cta.warps[wc.w]
	if entry < 0 || entry >= len(w.Stack) {
		return false
	}
	e := &w.Stack[entry]
	b := uint32(1) << (bit % 32)
	switch word % StackEntryWords {
	case 0:
		e.Mask = (e.Mask ^ b) & w.FullMask
	case 1:
		e.PC = int32(uint32(e.PC) ^ b)
	case 2:
		e.RPC = int32(uint32(e.RPC) ^ b)
	}
	return true
}

// ForceStackBit forces the addressed stack bit to v (idempotent), with the
// same existence and mask-clamp rules as FlipStackBit.
func (wc WarpCtl) ForceStackBit(entry, word int, bit uint, v bool) bool {
	w := wc.cta.warps[wc.w]
	if entry < 0 || entry >= len(w.Stack) {
		return false
	}
	e := &w.Stack[entry]
	b := uint32(1) << (bit % 32)
	set := func(x uint32) uint32 {
		if v {
			return x | b
		}
		return x &^ b
	}
	switch word % StackEntryWords {
	case 0:
		e.Mask = set(e.Mask) & w.FullMask
	case 1:
		e.PC = int32(set(uint32(e.PC)))
	case 2:
		e.RPC = int32(set(uint32(e.RPC)))
	}
	return true
}

// FlipBarrier flips the slot's barrier-arrival latch. A spurious arrival
// makes the CTA's barrier release while this warp is mid-execution (its PC
// then skips an instruction on release); a cleared arrival re-executes the
// barrier or deadlocks the CTA into a timeout.
func (wc WarpCtl) FlipBarrier() {
	wc.cta.meta[wc.w].atBar = !wc.cta.meta[wc.w].atBar
}

// ForceBarrier forces the barrier-arrival latch to v (idempotent).
func (wc WarpCtl) ForceBarrier(v bool) {
	wc.cta.meta[wc.w].atBar = v
}
