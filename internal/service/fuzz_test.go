// Fuzz coverage for the v1 job-spec decoder, centred on the nested
// fault{...} group: no input may panic the decoder, and every spec that
// decodes and validates must survive an encode/decode round trip with its
// campaign point — and its fault model — intact.
package service_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"gpurel/internal/service"
)

func FuzzJobSpecDecode(f *testing.F) {
	seeds := []string{
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"seed":1}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"fault":{"model":"stuck","stuck":0}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"fault":{"model":"mbu","width":2,"lines":2}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"structure":"SCHED","fault":{"model":"control"}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"structure":"BARRIER","fault":{"model":"control","stuck":1}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"fault":{"model":"transient","width":3}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"fault":{"model":"cosmic"}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"fault":{"stuck":2}}`,
		`{"layer":"soft","app":"VA","kernel":"K1","runs":10,"fault":{"model":"stuck","stuck":0}}`,
		`{"layer":"micro","app":"VA","kernel":"K1","runs":10,"margin99":0.05,"sampling":{"margin99":0.05}}`,
		`{"fault":{"model":"","width":-1,"lines":99}}`,
		`{"fault":null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp service.JobSpec
		if err := json.Unmarshal(data, &sp); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := sp.Validate(); err != nil {
			return // rejected specs need no further guarantees
		}
		// A validated spec must build its campaign point (Validate ran
		// Point) and round-trip through the wire without drifting.
		p, err := sp.Point()
		if err != nil {
			t.Fatalf("Validate passed but Point failed: %v (spec %+v)", err, sp)
		}
		if p.Fault != nil {
			if _, err := p.Fault.Build(); err != nil {
				t.Fatalf("validated fault spec does not build: %v (%+v)", err, *p.Fault)
			}
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("validated spec does not encode: %v (%+v)", err, sp)
		}
		var back service.JobSpec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v (%s)", err, out)
		}
		bp, err := back.Point()
		if err != nil {
			t.Fatalf("re-decoded spec lost validity: %v (%s)", err, out)
		}
		if !reflect.DeepEqual(bp, p) {
			t.Fatalf("round trip changed the point:\nbefore %+v\nafter  %+v\nwire %s", p, bp, out)
		}
	})
}

// FuzzLeaseSpecDecode: the /v1/leases request decoder never panics, and
// every request that decodes and validates survives an encode/decode round
// trip with the deprecation flag cleared (encoding always emits the v1
// envelope).
func FuzzLeaseSpecDecode(f *testing.F) {
	seeds := []string{
		`{"lease":{"worker":"w1","max_runs":256,"runs_per_sec":42.5}}`,
		`{"lease":{"worker":"w1"}}`,
		`{"worker":"w1","max_runs":256}`,
		`{"worker":"w1"}`,
		`{"lease":{"worker":"w1"},"worker":"w2"}`,
		`{"lease":{"max_runs":-1}}`,
		`{"lease":null}`,
		`{"max_runs":0,"runs_per_sec":-3}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req service.LeaseRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := req.Validate(); err != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("validated lease request does not encode: %v (%+v)", err, req)
		}
		var back service.LeaseRequest
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v (%s)", err, out)
		}
		if back.LegacyFlat() {
			t.Fatalf("re-encode emitted the deprecated bare form: %s", out)
		}
		if back.Worker != req.Worker || back.MaxRuns != req.MaxRuns || back.RunsPerSec != req.RunsPerSec {
			t.Fatalf("round trip changed the request:\nbefore %+v\nafter  %+v\nwire %s", req, back, out)
		}
	})
}

// FuzzWorkerSpecDecode: the /v1/workers registration decoder never panics,
// and every spec that decodes and validates round-trips intact.
func FuzzWorkerSpecDecode(f *testing.F) {
	seeds := []string{
		`{"worker":{"name":"w1","caps":{"runs_per_sec":42.5,"snap_mb":256,"fault_models":["transient"]}}}`,
		`{"worker":{"name":"w1","caps":{}}}`,
		`{"worker":{"name":"","caps":{"runs_per_sec":-1}}}`,
		`{"worker":{"name":"w1","caps":{"fault_models":["cosmic"]}}}`,
		`{"worker":null}`,
		`{"name":"w1"}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec service.WorkerSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := spec.Validate(); err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("validated worker spec does not encode: %v (%+v)", err, spec)
		}
		var back service.WorkerSpec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v (%s)", err, out)
		}
		// An empty FaultModels list means "all models", same as absent; the
		// omitempty encoding legitimately collapses [] to nil.
		if len(spec.Caps.FaultModels) == 0 {
			spec.Caps.FaultModels = nil
		}
		if !reflect.DeepEqual(back, spec) {
			t.Fatalf("round trip changed the worker spec:\nbefore %+v\nafter  %+v\nwire %s", spec, back, out)
		}
	})
}

// FuzzAdviseSpecDecode: the /v1/advise decoder never panics, and every spec
// that decodes and validates survives an encode/decode round trip intact.
func FuzzAdviseSpecDecode(f *testing.F) {
	seeds := []string{
		`{"advise":{"app":"SRADv1","budget":0.005},"runs":3000,"seed":42}`,
		`{"advise":{"app":"VA","budget":0},"runs":1}`,
		`{"advise":{"app":"","budget":0.5},"runs":10}`,
		`{"advise":{"app":"NW","budget":1.5},"runs":10}`,
		`{"advise":{"app":"NW","budget":-1},"runs":10}`,
		`{"advise":{"app":"NW","budget":0.1}}`,
		`{"app":"NW","budget":0.1,"runs":10}`,
		`{"advise":null,"runs":10}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp service.AdviseSpec
		if err := json.Unmarshal(data, &sp); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := sp.Validate(); err != nil {
			return
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("validated advise spec does not encode: %v (%+v)", err, sp)
		}
		var back service.AdviseSpec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v (%s)", err, out)
		}
		if !reflect.DeepEqual(back, sp) {
			t.Fatalf("round trip changed the advise spec:\nbefore %+v\nafter  %+v\nwire %s", sp, back, out)
		}
	})
}
