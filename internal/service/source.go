package service

import (
	"gpurel"
	"gpurel/internal/advisor"
	"gpurel/internal/campaign"
)

// NewStudySource adapts a *gpurel.Study into the scheduler's experiment
// source. The study memoises golden runs (plain and TMR-hardened, on both
// simulators) per application, so concurrent jobs targeting the same app —
// or one job resumed many times — pay for golden-run construction once per
// daemon process, exactly like figures sharing campaigns in the paper's
// study.
func NewStudySource(st *gpurel.Study) SourceFunc {
	return func(spec JobSpec) (campaign.Experiment, error) {
		p, err := spec.Point()
		if err != nil {
			return nil, err
		}
		return st.PointExperiment(p)
	}
}

// NewStudyAdviseBackend returns the daemon's production advise wiring: each
// advise job runs on its own gpurel.Study configured with the spec's runs
// and seed, so equal specs produce bit-identical plans across processes.
func NewStudyAdviseBackend() AdviseBackendFactory {
	return func(spec AdviseSpec) (advisor.Backend, error) {
		return &gpurel.StudyBackend{Study: gpurel.NewStudy(spec.Runs, spec.Seed)}, nil
	}
}

// SpecForPoint renders a study-level campaign point as a wire spec with the
// fully derived campaign seed — the inverse of JobSpec.Point, used by the
// client-side Study.RunPoint hook.
func SpecForPoint(p gpurel.PointSpec, opts campaign.Options) JobSpec {
	sp := JobSpec{
		Layer:    string(p.Layer),
		App:      p.App,
		Kernel:   p.Kernel,
		Hardened: p.Hardened,
		Runs:     opts.Runs,
		Seed:     opts.Seed,
	}
	switch p.Layer {
	case gpurel.LayerMicro:
		sp.Structure = p.Structure.String()
		if len(p.Harden) > 0 {
			sp.Harden = append([]string(nil), p.Harden...)
		}
	case gpurel.LayerSoft:
		sp.Mode = p.Mode.String()
	}
	if pol := p.Sampling; pol != nil {
		sp.Sampling = &SamplingSpec{Margin99: pol.Margin, Batch: pol.Batch, Prune: pol.Prune}
	}
	if ck := p.Checkpoint; ck != nil {
		sp.Checkpoint = &SnapshotSpec{Stride: ck.Stride, BudgetMB: int(ck.BudgetBytes >> 20), Converge: ck.Converge}
	}
	if f := p.Fault; f != nil && !f.IsDefault() {
		fc := *f
		sp.Fault = &fc
	}
	return sp
}
