package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"gpurel/internal/faultmodel"
)

// Fleet wire types (v1): worker registration, health, and the fleet status
// document. They live here — not in internal/fleet — so the client package
// and the fleet package share one schema without an import cycle, exactly
// like the lease protocol types.
//
// Protocol summary (served by fleet.Coordinator, mounted on the /v1 mux):
//
//	POST   /v1/workers          WorkerSpec -> 200 WorkerStatus (register/update)
//	GET    /v1/workers          -> 200 []WorkerStatus
//	GET    /v1/workers/{name}   -> 200 WorkerStatus | 404
//	DELETE /v1/workers/{name}   mark draining -> 200 WorkerStatus | 404
//	GET    /v1/fleet            -> 200 FleetStatus
//	GET    /v1/fleet/events     NDJSON FleetStatus stream (snapshot per change)
//
// Every error response uses the unified envelope {"error":{"code","message"}}.

// WorkerCaps is a worker's capability report: what the coordinator needs to
// size leases for it. RunsPerSec is measured (a calibration micro-burst at
// startup, refined by the worker's live throughput as chunks complete and
// resent with each lease request), not configured.
type WorkerCaps struct {
	// RunsPerSec is the worker's measured campaign throughput. The
	// coordinator multiplies it by its lease horizon to size grants
	// (adaptive lease sizing); 0 means unknown and falls back to the
	// fixed default.
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
	// SnapMB is the worker's machine-snapshot memory budget in MiB.
	SnapMB int `json:"snap_mb,omitempty"`
	// FaultModels lists the fault-model names this worker's binary supports
	// (transient, stuck, mbu, control). Empty = all models.
	FaultModels []string `json:"fault_models,omitempty"`
}

// WorkerSpec is the registration request. v1 wire form nests it under
// "worker":
//
//	{"worker":{"name":"w1","caps":{"runs_per_sec":42.5,"snap_mb":256,"fault_models":["transient"]}}}
type WorkerSpec struct {
	Name string     `json:"name"`
	Caps WorkerCaps `json:"caps"`
}

// workerSpecBody is the inner object of the registration envelope.
type workerSpecBody struct {
	Name string     `json:"name"`
	Caps WorkerCaps `json:"caps"`
}

type workerSpecWire struct {
	Worker *workerSpecBody `json:"worker"`
}

// UnmarshalJSON decodes the v1 registration envelope. Unlike the lease
// request there is no legacy flat spelling: the endpoint is new, so the
// envelope is mandatory.
func (sp *WorkerSpec) UnmarshalJSON(data []byte) error {
	var w workerSpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	if w.Worker == nil {
		return fmt.Errorf(`worker registration must nest the spec under "worker"`)
	}
	*sp = WorkerSpec{Name: w.Worker.Name, Caps: w.Worker.Caps}
	return nil
}

// MarshalJSON always emits the v1 envelope.
func (sp WorkerSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(workerSpecWire{Worker: &workerSpecBody{Name: sp.Name, Caps: sp.Caps}})
}

// Validate rejects malformed registrations.
func (sp WorkerSpec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("worker.name is required")
	}
	if sp.Caps.RunsPerSec < 0 {
		return fmt.Errorf("worker.caps.runs_per_sec must be non-negative, got %g", sp.Caps.RunsPerSec)
	}
	if sp.Caps.SnapMB < 0 {
		return fmt.Errorf("worker.caps.snap_mb must be non-negative, got %d", sp.Caps.SnapMB)
	}
	known := map[string]bool{
		faultmodel.ModelTransient: true, faultmodel.ModelStuck: true,
		faultmodel.ModelMBU: true, faultmodel.ModelControl: true,
	}
	for _, m := range sp.Caps.FaultModels {
		if !known[m] {
			return fmt.Errorf("worker.caps.fault_models: unknown model %q (want transient|stuck|mbu|control)", m)
		}
	}
	return nil
}

// WorkerHealth is the registry's view of a worker's operational state,
// derived from its heartbeat history and open leases.
type WorkerHealth string

const (
	// HealthAvailable: heartbeat fresh, no lease outstanding.
	HealthAvailable WorkerHealth = "available"
	// HealthBusy: heartbeat fresh, at least one lease outstanding.
	HealthBusy WorkerHealth = "busy"
	// HealthDegraded: heartbeat stale past the degraded threshold, or a
	// lease of this worker expired recently — grants continue but the
	// fleet operator should look at it.
	HealthDegraded WorkerHealth = "degraded"
	// HealthDraining: the worker announced shutdown (DELETE /v1/workers/{name});
	// it receives no further leases until it re-registers.
	HealthDraining WorkerHealth = "draining"
)

// WorkerHealthStates enumerates the states in display order (for /metrics
// gauge rows, which must be exhaustive and deterministic).
var WorkerHealthStates = []WorkerHealth{HealthAvailable, HealthBusy, HealthDegraded, HealthDraining}

// WorkerStatus is the registry's public record of one worker.
type WorkerStatus struct {
	Name   string       `json:"name"`
	Caps   WorkerCaps   `json:"caps"`
	Health WorkerHealth `json:"health"`
	// Registered reports whether the worker announced itself via
	// POST /v1/workers (false = legacy anonymous worker observed through
	// its lease traffic only).
	Registered bool `json:"registered"`
	// OpenLeases / LeasedRuns describe the worker's outstanding grants.
	OpenLeases int `json:"open_leases"`
	LeasedRuns int `json:"leased_runs,omitempty"`
	// LeaseSize is the adaptive grant size the coordinator would hand this
	// worker right now (capability-scored; the fixed default when the
	// worker never reported a throughput).
	LeaseSize int `json:"lease_size"`
	// RunsDone counts runs accepted from this worker's reports.
	RunsDone int64 `json:"runs_done"`
	// ExpiredLeases counts this worker's leases that hit the heartbeat
	// deadline and were requeued.
	ExpiredLeases  int64 `json:"expired_leases,omitempty"`
	RegisteredUnix int64 `json:"registered_unix,omitempty"`
	LastSeenUnix   int64 `json:"last_seen_unix,omitempty"`
}

// TenantStatus is the scheduler's per-tenant work accounting, surfaced in
// FleetStatus and /metrics.
type TenantStatus struct {
	// Tenant is the tenant name; the empty spec field maps to "default".
	Tenant string `json:"tenant"`
	// Weight is the tenant's current fair-share weight: the highest
	// priority among its non-terminal jobs (default 1).
	Weight int `json:"weight"`
	// ActiveJobs counts non-terminal jobs; TotalJobs counts all.
	ActiveJobs int `json:"active_jobs"`
	TotalJobs  int `json:"total_jobs"`
	// PendingRuns / InFlightRuns / DoneRuns partition the tenant's runs.
	PendingRuns  int `json:"pending_runs"`
	InFlightRuns int `json:"in_flight_runs"`
	DoneRuns     int `json:"done_runs"`
}

// LeaseStats are the coordinator's lifetime lease counters (journaled, so
// they survive a coordinator restart).
type LeaseStats struct {
	// Granted counts leases handed out; Reported counts accepted report
	// sub-ranges; DupReports counts reports dropped as idempotent
	// duplicates (late arrivals for work an expired lease already re-ran).
	Granted    int64 `json:"granted"`
	Reported   int64 `json:"reported"`
	DupReports int64 `json:"dup_reports"`
	// Expired counts leases whose heartbeat deadline passed — each one
	// requeued its remainder exactly once. Returned counts leases handed
	// back whole or partial by draining workers.
	Expired  int64 `json:"expired"`
	Returned int64 `json:"returned"`
}

// FleetStatus is the control-plane summary served at GET /v1/fleet and
// streamed (one snapshot per state change) at GET /v1/fleet/events.
type FleetStatus struct {
	// Workers, sorted by name.
	Workers []WorkerStatus `json:"workers"`
	// Tenants, sorted by tenant name.
	Tenants []TenantStatus `json:"tenants"`
	// OpenLeases counts leases currently outstanding; Leases are the
	// lifetime counters.
	OpenLeases int        `json:"open_leases"`
	Leases     LeaseStats `json:"leases"`
	// Journaled reports whether the coordinator persists its lease ledger
	// (crash-recoverable control plane) or is in-memory only.
	Journaled bool `json:"journaled"`
}

// HealthCounts tallies workers per health state, with every state present.
func (f FleetStatus) HealthCounts() map[WorkerHealth]int {
	out := make(map[WorkerHealth]int, len(WorkerHealthStates))
	for _, h := range WorkerHealthStates {
		out[h] = 0
	}
	for _, w := range f.Workers {
		out[w.Health]++
	}
	return out
}

// SortWorkers orders a worker list by name (the canonical wire order).
func SortWorkers(ws []WorkerStatus) {
	sort.Slice(ws, func(i, k int) bool { return ws[i].Name < ws[k].Name })
}

// SortTenants orders a tenant list by name (the canonical wire order).
func SortTenants(ts []TenantStatus) {
	sort.Slice(ts, func(i, k int) bool { return ts[i].Tenant < ts[k].Tenant })
}
