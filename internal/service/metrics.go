package service

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/microfi"
)

// Metrics holds the daemon's counters, exported in Prometheus text format
// at GET /metrics. Counters are cumulative for the process (a restart
// resets them; the checkpoint journals job state, not metrics).
type Metrics struct {
	start         time.Time
	jobsSubmitted atomic.Int64
	jobsResumed   atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	injections    atomic.Int64
	outcomes      [faults.NumOutcomes]atomic.Int64
	ctrlAffected  atomic.Int64
	chunks        atomic.Int64
	runsSaved     atomic.Int64

	// counters is the study-side sampling aggregate (prune hits, simulated
	// runs) shared via Config.Counters; nil when the source doesn't count.
	counters *adaptive.Counters
	// ckStats reads the study-side checkpoint fork-and-join aggregate via
	// Config.CheckpointStats; nil when the source doesn't checkpoint.
	ckStats func() microfi.CheckpointCounts
	// now is the injected clock (Config.Now), for uptime.
	now func() time.Time

	// collectors are extra exposition sections appended by subsystems that
	// ride on the same /metrics endpoint (the fleet coordinator's per-worker
	// counters).
	collMu     sync.Mutex
	collectors []func(io.Writer)
}

// AddCollector registers an extra exposition section rendered at the end of
// every /metrics scrape.
func (m *Metrics) AddCollector(fn func(io.Writer)) {
	m.collMu.Lock()
	m.collectors = append(m.collectors, fn)
	m.collMu.Unlock()
}

func newMetrics(counters *adaptive.Counters, now func() time.Time, ckStats func() microfi.CheckpointCounts) *Metrics {
	if now == nil {
		now = time.Now
	}
	return &Metrics{start: now(), counters: counters, ckStats: ckStats, now: now}
}

// addTally folds one completed chunk into the injection counters.
func (m *Metrics) addTally(t campaign.Tally) {
	m.injections.Add(int64(t.N))
	for o := faults.Outcome(0); o < faults.NumOutcomes; o++ {
		m.outcomes[o].Add(int64(t.Counts[o]))
	}
	m.ctrlAffected.Add(int64(t.CtrlAffected))
	m.chunks.Add(1)
}

// WritePrometheus renders the exposition text. gauges carries point-in-time
// values owned by the scheduler (current queue depths).
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]int) {
	up := m.now().Sub(m.start).Seconds()
	inj := m.injections.Load()
	var rate float64
	if up > 0 {
		rate = float64(inj) / up
	}

	fmt.Fprintln(w, "# HELP gpureld_jobs_total Jobs by lifecycle event since process start.")
	fmt.Fprintln(w, "# TYPE gpureld_jobs_total counter")
	fmt.Fprintf(w, "gpureld_jobs_total{event=\"submitted\"} %d\n", m.jobsSubmitted.Load())
	fmt.Fprintf(w, "gpureld_jobs_total{event=\"resumed\"} %d\n", m.jobsResumed.Load())
	fmt.Fprintf(w, "gpureld_jobs_total{event=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "gpureld_jobs_total{event=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "gpureld_jobs_total{event=\"canceled\"} %d\n", m.jobsCanceled.Load())

	fmt.Fprintln(w, "# HELP gpureld_jobs Current jobs by state.")
	fmt.Fprintln(w, "# TYPE gpureld_jobs gauge")
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "gpureld_jobs{state=%q} %d\n", st, gauges[string(st)])
	}

	fmt.Fprintln(w, "# HELP gpureld_injections_total Fault injections executed.")
	fmt.Fprintln(w, "# TYPE gpureld_injections_total counter")
	fmt.Fprintf(w, "gpureld_injections_total %d\n", inj)

	fmt.Fprintln(w, "# HELP gpureld_outcomes_total Injection outcomes by class (§II-A).")
	fmt.Fprintln(w, "# TYPE gpureld_outcomes_total counter")
	for o := faults.Outcome(0); o < faults.NumOutcomes; o++ {
		fmt.Fprintf(w, "gpureld_outcomes_total{outcome=%q} %d\n",
			strings.ToLower(o.String()), m.outcomes[o].Load())
	}
	fmt.Fprintf(w, "gpureld_ctrl_affected_total %d\n", m.ctrlAffected.Load())

	fmt.Fprintln(w, "# HELP gpureld_chunks_total Checkpointable run-range chunks completed.")
	fmt.Fprintln(w, "# TYPE gpureld_chunks_total counter")
	fmt.Fprintf(w, "gpureld_chunks_total %d\n", m.chunks.Load())

	fmt.Fprintln(w, "# HELP gpureld_adaptive_runs_saved_total Runs skipped by adaptive early stopping.")
	fmt.Fprintln(w, "# TYPE gpureld_adaptive_runs_saved_total counter")
	fmt.Fprintf(w, "gpureld_adaptive_runs_saved_total %d\n", m.runsSaved.Load())

	var pruneHits, simulated int64
	if m.counters != nil {
		pruneHits = m.counters.Pruned.Load()
		simulated = m.counters.Simulated.Load()
	}
	fmt.Fprintln(w, "# HELP gpureld_prune_hits_total Injections classified analytically from the liveness map.")
	fmt.Fprintln(w, "# TYPE gpureld_prune_hits_total counter")
	fmt.Fprintf(w, "gpureld_prune_hits_total %d\n", pruneHits)

	fmt.Fprintln(w, "# HELP gpureld_simulated_runs_total Injections that went through the simulator.")
	fmt.Fprintln(w, "# TYPE gpureld_simulated_runs_total counter")
	fmt.Fprintf(w, "gpureld_simulated_runs_total %d\n", simulated)

	var ck microfi.CheckpointCounts
	if m.ckStats != nil {
		ck = m.ckStats()
	}
	fmt.Fprintln(w, "# HELP gpureld_fork_resumes_total Faulty runs resumed from a golden checkpoint.")
	fmt.Fprintln(w, "# TYPE gpureld_fork_resumes_total counter")
	fmt.Fprintf(w, "gpureld_fork_resumes_total %d\n", ck.ForkResumes)

	fmt.Fprintln(w, "# HELP gpureld_fork_cycles_saved_total Golden-prefix cycles skipped by checkpoint resumes.")
	fmt.Fprintln(w, "# TYPE gpureld_fork_cycles_saved_total counter")
	fmt.Fprintf(w, "gpureld_fork_cycles_saved_total %d\n", ck.ForkCyclesSaved)

	fmt.Fprintln(w, "# HELP gpureld_converge_hits_total Faulty runs that joined back to the golden run early.")
	fmt.Fprintln(w, "# TYPE gpureld_converge_hits_total counter")
	fmt.Fprintf(w, "gpureld_converge_hits_total %d\n", ck.ConvergeHits)

	fmt.Fprintln(w, "# HELP gpureld_converge_cycles_saved_total Golden-suffix cycles skipped by convergence joins.")
	fmt.Fprintln(w, "# TYPE gpureld_converge_cycles_saved_total counter")
	fmt.Fprintf(w, "gpureld_converge_cycles_saved_total %d\n", ck.ConvergeCyclesSaved)

	fmt.Fprintln(w, "# HELP gpureld_checkpoint_snapshots Machine snapshots retained across golden runs.")
	fmt.Fprintln(w, "# TYPE gpureld_checkpoint_snapshots gauge")
	fmt.Fprintf(w, "gpureld_checkpoint_snapshots %d\n", ck.Snapshots)

	fmt.Fprintln(w, "# HELP gpureld_checkpoint_bytes Memory retained by machine snapshots.")
	fmt.Fprintln(w, "# TYPE gpureld_checkpoint_bytes gauge")
	fmt.Fprintf(w, "gpureld_checkpoint_bytes %d\n", ck.SnapshotBytes)

	fmt.Fprintln(w, "# HELP gpureld_checkpoint_evictions_total Snapshots evicted by budget-driven stride widening.")
	fmt.Fprintln(w, "# TYPE gpureld_checkpoint_evictions_total counter")
	fmt.Fprintf(w, "gpureld_checkpoint_evictions_total %d\n", ck.Evictions)

	fmt.Fprintln(w, "# HELP gpureld_injections_per_second Mean injection throughput since start.")
	fmt.Fprintln(w, "# TYPE gpureld_injections_per_second gauge")
	fmt.Fprintf(w, "gpureld_injections_per_second %.3f\n", rate)

	fmt.Fprintln(w, "# HELP gpureld_uptime_seconds Process uptime.")
	fmt.Fprintln(w, "# TYPE gpureld_uptime_seconds gauge")
	fmt.Fprintf(w, "gpureld_uptime_seconds %.3f\n", up)

	m.collMu.Lock()
	colls := make([]func(io.Writer), len(m.collectors))
	copy(colls, m.collectors)
	m.collMu.Unlock()
	for _, fn := range colls {
		fn(w)
	}
}
