package service

import (
	"fmt"
	"io"
	"sort"
)

// Weighted fair-share across tenants, start-time fair queuing style: each
// tenant accrues virtual time as its jobs claim runs (vtime += runs/weight),
// and ClaimWork always serves the tenant with the smallest virtual time.
// Higher-priority tenants accrue slower, so they receive proportionally more
// runs; every tenant's virtual time grows whenever it is served, so no
// tenant with pending work waits forever (starvation-free).
//
// Determinism: ties break lexicographically by tenant name, and within a
// tenant jobs are served by (priority desc, submission order). A sequence of
// ClaimWork calls against a fixed job table therefore yields one schedule —
// the fair-share property tests rely on it. With a single tenant the tenant
// choice is forced and the within-tenant order with default priorities is
// submission order, i.e. exactly the pre-tenancy scheduler. (Concurrent
// ClaimWork callers interleave their claims nondeterministically, but each
// claim is still charged, so the fair-share *shares* converge regardless;
// and what each run measures never depends on who claimed it.)
//
// Virtual-time bookkeeping lives in Scheduler.vtime, guarded by s.mu. A
// tenant's entry is created when it first has claimable work — seeded at the
// minimum virtual time of the other active tenants so newcomers start level
// instead of replaying the whole past — and pruned once the tenant has no
// non-terminal jobs, so a tenant returning much later starts level again.

// claimCandidate is one job eligible for claiming, with its fair-share keys.
type claimCandidate struct {
	j      *job
	tenant string
	weight int
	prio   int
	idx    int // submission order
}

// claimPlan snapshots the eligible jobs grouped per tenant, in service
// order, and settles the vtime table (s.mu held).
func (s *Scheduler) claimPlanLocked() []string {
	// Tenants with a non-terminal job, first-seen (submission) order.
	active := map[string]bool{}
	var tenants []string
	for _, id := range s.order {
		j := s.jobs[id]
		// Lock order: s.mu before j.mu. Nothing takes s.mu while holding
		// j.mu (chargeClaim runs after the job unlock for exactly this
		// reason), so the brief nested acquisition here is safe. The state
		// may still flip right after — ClaimWork re-checks under j.mu.
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal {
			continue
		}
		if t := j.spec.tenantName(); !active[t] {
			active[t] = true
			tenants = append(tenants, t)
		}
	}
	// Prune virtual time of tenants that no longer own any non-terminal job.
	for t := range s.vtime {
		if !active[t] {
			delete(s.vtime, t)
		}
	}
	// Seed newcomers at the minimum surviving virtual time.
	min, have := 0.0, false
	for _, v := range s.vtime {
		if !have || v < min {
			min, have = v, true
		}
	}
	for _, t := range tenants {
		if _, ok := s.vtime[t]; !ok {
			s.vtime[t] = min
		}
	}
	// Service order: smallest virtual time first, name breaks ties.
	sort.Slice(tenants, func(i, k int) bool {
		vi, vk := s.vtime[tenants[i]], s.vtime[tenants[k]]
		if vi != vk {
			return vi < vk
		}
		return tenants[i] < tenants[k]
	})
	return tenants
}

// tenantJobsLocked lists a tenant's jobs in within-tenant service order:
// priority descending, then submission order (s.mu held).
func (s *Scheduler) tenantJobsLocked(tenant string) []claimCandidate {
	var cands []claimCandidate
	for idx, id := range s.order {
		j := s.jobs[id]
		if j.spec.tenantName() != tenant {
			continue
		}
		cands = append(cands, claimCandidate{
			j: j, tenant: tenant, weight: j.spec.weight(), prio: j.spec.weight(), idx: idx,
		})
	}
	sort.SliceStable(cands, func(i, k int) bool {
		if cands[i].prio != cands[k].prio {
			return cands[i].prio > cands[k].prio
		}
		return cands[i].idx < cands[k].idx
	})
	return cands
}

// ClaimWork hands out up to max runs from the fair-share winner among jobs
// with unclaimed work, flipping queued jobs to running. ok is false when no
// job has pending work — the caller (a fleet coordinator granting a lease)
// answers 204 and the worker polls again.
func (s *Scheduler) ClaimWork(max int) (WorkAssignment, bool) {
	if s.closed.Load() {
		return WorkAssignment{}, false
	}
	s.mu.Lock()
	tenants := s.claimPlanLocked()
	plan := make([][]claimCandidate, 0, len(tenants))
	for _, t := range tenants {
		plan = append(plan, s.tenantJobsLocked(t))
	}
	s.mu.Unlock()

	for _, cands := range plan {
		for _, c := range cands {
			j := c.j
			j.mu.Lock()
			if j.state.Terminal() {
				j.mu.Unlock()
				continue
			}
			if j.canceled {
				// A canceled job no longer hands out work; with local execution
				// disabled no lane would otherwise retire it, so settle it here.
				j.pending = nil
				j.claimed = nil
				s.finishLocked(j, StateCanceled, "")
				j.mu.Unlock()
				s.dirty.Store(true)
				continue
			}
			r, ok := s.claimLocked(j, max)
			if !ok {
				j.mu.Unlock()
				continue
			}
			if j.state == StateQueued {
				j.state = StateRunning
				j.started = s.cfg.Now()
				j.publishLocked(string(StateRunning))
			}
			w := WorkAssignment{JobID: j.id, Spec: j.spec, From: r.From, To: r.To}
			j.mu.Unlock()
			s.chargeClaim(c.tenant, c.weight, r.To-r.From)
			s.dirty.Store(true)
			return w, true
		}
	}
	return WorkAssignment{}, false
}

// chargeClaim advances a tenant's virtual time by the claimed runs over its
// weight.
func (s *Scheduler) chargeClaim(tenant string, weight, runs int) {
	if weight <= 0 {
		weight = 1
	}
	s.mu.Lock()
	if _, ok := s.vtime[tenant]; ok {
		s.vtime[tenant] += float64(runs) / float64(weight)
	}
	s.mu.Unlock()
}

// ReclaimWork moves the still-pending part of [from, to) of a job back to
// the claimed (in-flight) set — the fleet coordinator restoring a journaled
// lease after a restart, so the runs a live worker holds are not handed out
// a second time. Runs already merged or stashed are left alone (the worker's
// reports for them will be dropped as idempotent duplicates). Reports false
// when the job is unknown or terminal: the caller should drop the lease
// instead of restoring it.
func (s *Scheduler) ReclaimWork(jobID string, from, to int) bool {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	for _, g := range intersectRanges(j.pending, Range{From: from, To: to}) {
		j.pending = subtractRanges(j.pending, g)
		j.claimed = addRange(j.claimed, g)
	}
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = s.cfg.Now()
		j.publishLocked(string(StateRunning))
	}
	s.dirty.Store(true)
	return true
}

// Tenants reports the per-tenant work accounting, sorted by tenant name —
// the fleet status document's "tenants" section and the per-tenant /metrics
// gauges.
func (s *Scheduler) Tenants() []TenantStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	js := make([]*job, 0, len(ids))
	for _, id := range ids {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()

	byName := map[string]*TenantStatus{}
	var names []string
	for _, j := range js {
		j.mu.Lock()
		tenant := j.spec.tenantName()
		ts := byName[tenant]
		if ts == nil {
			ts = &TenantStatus{Tenant: tenant, Weight: 1}
			byName[tenant] = ts
			names = append(names, tenant)
		}
		ts.TotalJobs++
		if !j.state.Terminal() {
			ts.ActiveJobs++
			if w := j.spec.weight(); w > ts.Weight {
				ts.Weight = w
			}
		}
		ts.PendingRuns += rangesLen(j.pending)
		ts.InFlightRuns += rangesLen(j.claimed)
		ts.DoneRuns += j.merger.To()
		j.mu.Unlock()
	}
	out := make([]TenantStatus, 0, len(names))
	for _, name := range names {
		out = append(out, *byName[name])
	}
	SortTenants(out)
	return out
}

// writeTenantMetrics is the /metrics collector for the per-tenant gauges,
// registered by NewScheduler.
func (s *Scheduler) writeTenantMetrics(w io.Writer) {
	tenants := s.Tenants()
	fmt.Fprintln(w, "# HELP gpureld_tenant_jobs Current jobs per tenant.")
	fmt.Fprintln(w, "# TYPE gpureld_tenant_jobs gauge")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpureld_tenant_jobs{tenant=%q,state=\"active\"} %d\n", t.Tenant, t.ActiveJobs)
		fmt.Fprintf(w, "gpureld_tenant_jobs{tenant=%q,state=\"total\"} %d\n", t.Tenant, t.TotalJobs)
	}
	fmt.Fprintln(w, "# HELP gpureld_tenant_runs Run budget per tenant by ledger state.")
	fmt.Fprintln(w, "# TYPE gpureld_tenant_runs gauge")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpureld_tenant_runs{tenant=%q,state=\"pending\"} %d\n", t.Tenant, t.PendingRuns)
		fmt.Fprintf(w, "gpureld_tenant_runs{tenant=%q,state=\"in_flight\"} %d\n", t.Tenant, t.InFlightRuns)
		fmt.Fprintf(w, "gpureld_tenant_runs{tenant=%q,state=\"done\"} %d\n", t.Tenant, t.DoneRuns)
	}
	fmt.Fprintln(w, "# HELP gpureld_tenant_weight Fair-share weight per tenant (highest active priority).")
	fmt.Fprintln(w, "# TYPE gpureld_tenant_weight gauge")
	for _, t := range tenants {
		fmt.Fprintf(w, "gpureld_tenant_weight{tenant=%q} %d\n", t.Tenant, t.Weight)
	}
}
