package service

import (
	"fmt"

	"gpurel/internal/campaign"
)

// The work ledger: every job owns a normalized list of pending (unclaimed)
// run-ranges and a list of claimed (in-flight) ranges; completed work folds
// into the job's prefix merger. Local scheduler lanes and remote fleet
// leases claim and report through the same three operations, so a campaign
// splits across any mix of the two and still tallies bit-identically —
// run i always draws from rand.NewSource(Seed+i) regardless of who runs it.

// WorkAssignment is one claimed run-range: the executable unit handed to a
// scheduler lane chunk or packaged into a fleet lease.
type WorkAssignment struct {
	JobID string  `json:"job_id"`
	Spec  JobSpec `json:"spec"`
	From  int     `json:"from"`
	To    int     `json:"to"`
}

// Runs is the assignment size.
func (w WorkAssignment) Runs() int { return w.To - w.From }

// claimLocked pops up to max runs off the front of j's pending list
// (j.mu held). Adaptive jobs never hand out a range crossing a batch
// boundary: the stop rule is only evaluated on whole batches, and boundary
// clamping keeps the evaluated prefixes identical to sequential execution no
// matter how the work is distributed.
func (s *Scheduler) claimLocked(j *job, max int) (Range, bool) {
	if max <= 0 || len(j.pending) == 0 || j.state.Terminal() {
		return Range{}, false
	}
	r := j.pending[0]
	to := r.From + max
	if to > r.To {
		to = r.To
	}
	if j.spec.adaptive() {
		batch := j.spec.batchSize()
		if end := (r.From/batch + 1) * batch; end < to {
			to = end
		}
	}
	claim := Range{From: r.From, To: to}
	j.pending = subtractRanges(j.pending, claim)
	j.claimed = addRange(j.claimed, claim)
	return claim, true
}

// ClaimWork (fairshare.go) hands out runs from the weighted fair-share
// winner; ReportWork below merges them back.

// ReportWork merges one completed run-range into its job. The merge is
// idempotent by range: duplicated execution (an expired lease re-run
// elsewhere whose original report arrives late) is dropped — merged reports
// false — so every run is counted exactly once. The returned status tells
// the reporter whether the job still wants work (terminal states mean:
// abandon the rest of your lease).
func (s *Scheduler) ReportWork(jobID string, from, to int, tl campaign.Tally) (st JobStatus, merged bool, err error) {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false, fmt.Errorf("no such job %q", jobID)
	}
	st, merged = s.report(j, from, to, tl, 0, 0)
	return st, merged, nil
}

// report is the shared merge path for lanes (with checkpoint-stat deltas)
// and remote reports (without).
func (s *Scheduler) report(j *job, from, to int, tl campaign.Tally, dForks, dConverges int64) (JobStatus, bool) {
	j.mu.Lock()
	defer func() {
		j.mu.Unlock()
		s.dirty.Store(true)
	}()
	j.forks += dForks
	j.converges += dConverges
	if j.state.Terminal() {
		return j.snapshotLocked(), false
	}
	r := Range{From: from, To: to}
	accepted := j.merger.Offer(campaign.Partial{From: from, To: to, Tally: tl})
	// Whether merged or dropped as a duplicate, these runs are covered:
	// nobody should execute them again.
	j.claimed = subtractRanges(j.claimed, r)
	j.pending = subtractRanges(j.pending, r)
	if accepted {
		s.metrics.addTally(tl)
	}

	// Advance the contiguous prefix one partial at a time, evaluating the
	// adaptive stop rule at every batch boundary in arrival-independent
	// order — exactly the prefixes a sequential run would have evaluated.
	adaptive := j.spec.adaptive()
	batch := j.spec.batchSize()
	pol := j.spec.policy()
	for {
		end, tally, ok := j.merger.Advance()
		if !ok {
			break
		}
		if adaptive && end < j.spec.Runs && end%batch == 0 && pol.StopSatisfied(tally) {
			j.early = true
			saved := j.spec.Runs - end
			j.merger.DropStash()
			j.pending = nil
			j.claimed = nil
			s.finishLocked(j, StateDone, "")
			s.metrics.runsSaved.Add(int64(saved))
			if s.cfg.Counters != nil {
				s.cfg.Counters.Saved.Add(int64(saved))
			}
			return j.snapshotLocked(), accepted
		}
	}
	if j.merger.To() >= j.spec.Runs {
		s.finishLocked(j, StateDone, "")
	} else if accepted {
		j.publishLocked("progress")
	}
	return j.snapshotLocked(), accepted
}

// ReturnWork puts an unexecuted claimed range back on the pending list — a
// drained worker returning its lease remainder, or the coordinator expiring
// a dead worker's lease. Only runs that are still claimed and not already
// covered by completed work are requeued, which with the coordinator's
// delete-on-expiry makes requeueing exactly-once.
func (s *Scheduler) ReturnWork(jobID string, from, to int) {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	give := intersectRanges(j.claimed, Range{From: from, To: to})
	for _, g := range give {
		j.claimed = subtractRanges(j.claimed, g)
		// Don't requeue runs whose tallies already arrived (merged prefix or
		// stashed out-of-order partials).
		back := []Range{g}
		if pre := j.merger.To(); pre > 0 {
			back = subtractRanges(back, Range{From: 0, To: pre})
		}
		for _, sr := range j.merger.StashRanges() {
			back = subtractRanges(back, Range{From: sr[0], To: sr[1]})
		}
		for _, b := range back {
			j.pending = addRange(j.pending, b)
		}
	}
	s.dirty.Store(true)
}
