package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gpurel/internal/campaign"
)

// checkpointVersion guards the on-disk format. Bump on incompatible change.
const checkpointVersion = 1

// jobCheckpoint is the durable state of one job: its spec, the normalized
// completed run-ranges, and the tally merged over exactly those ranges.
// Because run i's seed depends only on (Spec.Seed, i), this is everything a
// fresh process needs to finish the job bit-identically.
type jobCheckpoint struct {
	ID           string         `json:"id"`
	Spec         JobSpec        `json:"spec"`
	State        JobState       `json:"state"`
	Done         []Range        `json:"done_ranges,omitempty"`
	Tally        campaign.Tally `json:"tally"`
	EarlyStopped bool           `json:"early_stopped,omitempty"`
	Error        string         `json:"error,omitempty"`
	Created      int64          `json:"created_unix"`
}

type checkpointFile struct {
	Version   int             `json:"version"`
	SavedUnix int64           `json:"saved_unix"`
	Jobs      []jobCheckpoint `json:"jobs"`
}

// saveCheckpoint writes the journal atomically (temp file + rename in the
// same directory), so a crash mid-write never corrupts the previous
// checkpoint. savedUnix is the caller's clock reading (Config.Now).
func saveCheckpoint(path string, jobs []jobCheckpoint, savedUnix int64) error {
	cf := checkpointFile{Version: checkpointVersion, SavedUnix: savedUnix, Jobs: jobs}
	data, err := json.MarshalIndent(cf, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic writes data via a temp file + rename in the target's
// directory, so a crash mid-write never corrupts the previous contents.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gpureld-ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteFileAtomic is the exported journal-write primitive: subsystems with
// their own durable state (the fleet coordinator's lease journal) share the
// scheduler checkpoint's crash-safety idiom.
func WriteFileAtomic(path string, data []byte) error { return writeFileAtomic(path, data) }

// ReadFileMissingOK is the matching read primitive: a missing journal is an
// empty journal, not an error.
func ReadFileMissingOK(path string) ([]byte, error) { return readFileMissingOK(path) }

// readFileMissingOK reads a file, mapping "does not exist" to (nil, nil).
func readFileMissingOK(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// loadCheckpoint reads a journal; a missing file is an empty journal, not
// an error.
func loadCheckpoint(path string) ([]jobCheckpoint, error) {
	data, err := readFileMissingOK(path)
	if data == nil || err != nil {
		return nil, err
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, cf.Version, checkpointVersion)
	}
	return cf.Jobs, nil
}
