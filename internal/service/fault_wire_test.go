// Golden wire-format tests for the nested fault{...} group of the v1 job
// spec: the fixtures must decode to the exact faultmodel.Spec, round-trips
// must stay nested and point-identical, and malformed or mispaired fault
// groups must be 400s at submission time, never a silent fallback to the
// transient default.
package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"gpurel/internal/campaign"
	"gpurel/internal/faultmodel"
	"gpurel/internal/service"
)

// TestGoldenFaultFixtures: the storage-MBU and control-state fixtures
// validate and resolve to campaign points carrying the decoded fault spec,
// and SpecForPoint is the inverse mapping.
func TestGoldenFaultFixtures(t *testing.T) {
	mbu := loadSpec(t, "jobspec_fault.json")
	if err := mbu.Validate(); err != nil {
		t.Fatalf("mbu fixture invalid: %v", err)
	}
	want := faultmodel.Spec{Model: faultmodel.ModelMBU, Width: 2, Lines: 2}
	if mbu.Fault == nil || !reflect.DeepEqual(*mbu.Fault, want) {
		t.Errorf("mbu fixture fault = %+v, want %+v", mbu.Fault, want)
	}
	p, err := mbu.Point()
	if err != nil {
		t.Fatal(err)
	}
	if p.Fault == nil || !reflect.DeepEqual(*p.Fault, want) {
		t.Errorf("point fault = %+v, want %+v", p.Fault, want)
	}
	back := service.SpecForPoint(p, campaign.Options{Runs: 3000, Seed: 42})
	if back.Fault == nil || !reflect.DeepEqual(*back.Fault, want) {
		t.Errorf("SpecForPoint lost the fault group: %+v", back.Fault)
	}

	ctl := loadSpec(t, "jobspec_fault_control.json")
	if err := ctl.Validate(); err != nil {
		t.Fatalf("control fixture invalid: %v", err)
	}
	wantCtl := faultmodel.Spec{Model: faultmodel.ModelControl, Stuck: faultmodel.Ptr(1)}
	if ctl.Fault == nil || !reflect.DeepEqual(*ctl.Fault, wantCtl) {
		t.Errorf("control fixture fault = %+v, want %+v", ctl.Fault, wantCtl)
	}
	cp, err := ctl.Point()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Structure.String() != "STACK" {
		t.Errorf("control fixture structure = %v, want STACK", cp.Structure)
	}
	if cp.Fault == nil || cp.Fault.Canonical() != "control:stuck1" {
		t.Errorf("control point fault = %+v, want control:stuck1", cp.Fault)
	}
}

// TestFaultWireRoundTrip: re-encoding a spec with a fault group keeps the
// group nested (no model fields leak to the top level) and preserves the
// campaign point; a spec without one never grows a "fault" key.
func TestFaultWireRoundTrip(t *testing.T) {
	for _, name := range []string{"jobspec_fault.json", "jobspec_fault_control.json"} {
		sp := loadSpec(t, name)
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		var top map[string]json.RawMessage
		if err := json.Unmarshal(out, &top); err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"model", "stuck", "width", "lines"} {
			if _, ok := top[leak]; ok {
				t.Errorf("%s round-trip leaked fault key %q to the top level: %s", name, leak, out)
			}
		}
		if _, ok := top["fault"]; !ok {
			t.Errorf("%s round-trip dropped the fault group: %s", name, out)
		}
		var backSpec service.JobSpec
		if err := json.Unmarshal(out, &backSpec); err != nil {
			t.Fatal(err)
		}
		bp, err := backSpec.Point()
		if err != nil {
			t.Fatal(err)
		}
		op, err := sp.Point()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bp, op) {
			t.Errorf("%s round-trip changed the point:\nbefore %+v\nafter  %+v", name, op, bp)
		}
	}

	// Absent group: the legacy transient default is encoded as absence, so
	// pre-fault clients see byte-identical specs.
	plain := loadSpec(t, "jobspec_nested.json")
	out, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(out, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["fault"]; ok {
		t.Errorf("spec without a fault group grew one on encode: %s", out)
	}
}

// TestSubmitFaultValidation pins the HTTP 400s of malformed fault groups:
// unknown models and fields, parameter violations, and model/structure
// mispairing — including a control structure submitted with no fault group,
// which must fail at submission rather than when the job starts.
func TestSubmitFaultValidation(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Source: fakeSource(0)})

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	bad := []string{
		// Unknown model / unknown field inside the group.
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"cosmic"}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"bogus":1}}`,
		// Parameter violations.
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"stuck"}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"stuck","stuck":2}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"stuck":1}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"mbu","width":64}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"mbu","lines":9}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"fault":{"model":"stuck","stuck":0,"width":2}}`,
		// Model/structure mispairing, both directions.
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"structure":"RF","fault":{"model":"control"}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"structure":"SCHED"}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"structure":"SCHED","fault":{"model":"stuck","stuck":1}}`,
		// Fault models are a micro-layer concept.
		`{"layer":"soft","app":"fake","kernel":"K1","runs":10,"fault":{"model":"stuck","stuck":0}}`,
	}
	for _, body := range bad {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("POST %s -> %d, want 400", body, code)
		}
	}

	good := []string{
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"fault":{"model":"stuck","stuck":0}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"structure":"SCHED","fault":{"model":"control"}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"structure":"BARRIER","fault":{"model":"control","stuck":1}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"fault":{"model":"mbu","width":2,"lines":2}}`,
		// An explicitly-default group is as valid as absence.
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"fault":{"model":"transient"}}`,
	}
	for _, body := range good {
		if code := post(body); code != http.StatusAccepted {
			t.Errorf("POST %s -> %d, want 202", body, code)
		}
	}
}
