package service

import (
	"encoding/json"
	"net/http"
)

// Server exposes a Scheduler over HTTP:
//
//	POST   /v1/jobs             submit a JobSpec, returns JobStatus (202)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status + partial tally
//	DELETE /v1/jobs/{id}        cancel at the next chunk boundary
//	GET    /v1/jobs/{id}/events NDJSON progress stream until terminal
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
type Server struct {
	sched *Scheduler
}

// NewServer wraps a scheduler.
func NewServer(s *Scheduler) *Server { return &Server{sched: s} }

// Handler builds the route table. Extra subsystems that share the v1 mux —
// the fleet coordinator's lease endpoints — mount themselves through the
// variadic hooks.
func (s *Server) Handler(mount ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	for _, m := range mount {
		m(mux)
	}
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.sched.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if s.sched.closed.Load() {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams one NDJSON event per line: an initial "status"
// snapshot, then "progress" per completed chunk, ending with the terminal
// state ("done" | "failed" | "canceled").
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, unsub, ok := s.sched.Subscribe(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	write := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !ev.Job.State.Terminal()
	}

	// Snapshot first so late subscribers see where the job stands; a job
	// already terminal ends the stream immediately.
	st, _ := s.sched.Get(id)
	typ := "status"
	if st.State.Terminal() {
		typ = string(st.State)
	}
	if !write(Event{Type: typ, Job: st}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.sched.Done():
			// Draining: end the stream without a terminal event; clients
			// reconnect or poll after the daemon restarts.
			return
		case ev := <-ch:
			if !write(ev) {
				return
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sched.metrics.WritePrometheus(w, s.sched.stateGauges())
}
