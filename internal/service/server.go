package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server exposes a Scheduler over HTTP:
//
//	POST   /v1/jobs             submit a JobSpec, returns JobStatus (202)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status + partial tally
//	DELETE /v1/jobs/{id}        cancel at the next chunk boundary
//	GET    /v1/jobs/{id}/events NDJSON progress stream until terminal
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
type Server struct {
	sched *Scheduler
}

// NewServer wraps a scheduler.
func NewServer(s *Scheduler) *Server { return &Server{sched: s} }

// Handler builds the route table. Extra subsystems that share the v1 mux —
// the fleet coordinator's lease endpoints — mount themselves through the
// variadic hooks.
func (s *Server) Handler(mount ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	for _, m := range mount {
		m(mux)
	}
	return mux
}

// ErrorDetail is the body of the unified v1 error envelope. Code is a
// stable machine-readable token (ErrCode* constants); Message is for humans.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the single JSON error shape every /v1/* handler — jobs,
// advise, leases, workers, fleet — answers with:
//
//	{"error":{"code":"bad_request","message":"..."}}
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// Stable error codes of the v1 envelope.
const (
	ErrCodeBadRequest  = "bad_request"  // malformed or invalid request body (400)
	ErrCodeNotFound    = "not_found"    // no such job/advise/worker (404)
	ErrCodeGone        = "gone"         // lease expired and requeued (410)
	ErrCodeUnavailable = "unavailable"  // daemon draining (503)
	ErrCodeQueueFull   = "queue_full"   // lane backlog full (429)
)

// WriteError answers with the unified v1 error envelope.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorDetail{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad job spec: "+err.Error())
		return
	}
	st, err := s.sched.Submit(spec)
	if err != nil {
		status, code := http.StatusBadRequest, ErrCodeBadRequest
		if s.sched.closed.Load() {
			status, code = http.StatusServiceUnavailable, ErrCodeUnavailable
		} else if errors.Is(err, errQueueFull) {
			status, code = http.StatusTooManyRequests, ErrCodeQueueFull
		}
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Cancel(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams one NDJSON event per line: an initial "status"
// snapshot, then "progress" per completed chunk, ending with the terminal
// state ("done" | "failed" | "canceled").
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, unsub, ok := s.sched.Subscribe(id)
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	write := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !ev.Job.State.Terminal()
	}

	// Snapshot first so late subscribers see where the job stands; a job
	// already terminal ends the stream immediately.
	st, _ := s.sched.Get(id)
	typ := "status"
	if st.State.Terminal() {
		typ = string(st.State)
	}
	if !write(Event{Type: typ, Job: st}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.sched.Done():
			// Draining: end the stream without a terminal event; clients
			// reconnect or poll after the daemon restarts.
			return
		case ev := <-ch:
			if !write(ev) {
				return
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sched.metrics.WritePrometheus(w, s.sched.stateGauges())
}
