// The selective-hardening advise API: a sibling subsystem to the campaign
// scheduler that runs internal/advisor loops (measure → search → verify)
// as long-lived server jobs with NDJSON progress, a restart-safe journal,
// and /metrics counters. It mounts onto the v1 mux through Server.Handler's
// variadic hooks, exactly like the fleet coordinator:
//
//	POST   /v1/advise             submit an AdviseSpec, returns AdviseStatus (202)
//	GET    /v1/advise             list advise jobs
//	GET    /v1/advise/{id}        one advise job's status (phase, plan, verification)
//	DELETE /v1/advise/{id}        cancel between units of work
//	GET    /v1/advise/{id}/events NDJSON progress stream until terminal
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gpurel/internal/advisor"
)

// AdviseGroup is the nested "advise" group of the v1 advise spec: what to
// advise on. Like the job spec's "fault" group it defines the question, not
// the execution policy, so it is the part clients must always send.
type AdviseGroup struct {
	// App is the benchmark to harden selectively.
	App string `json:"app"`
	// Budget is the SDC AVF ceiling the plan must verifiably meet.
	Budget float64 `json:"budget"`
}

// AdviseSpec is one advise request as submitted over the wire. Runs and Seed
// parameterize the measurement campaigns behind the advise (every campaign
// point derives its own seed from Seed via gpurel.PointSeed, so two advises
// with equal spec are bit-identical).
type AdviseSpec struct {
	Advise AdviseGroup `json:"advise"`
	Runs   int         `json:"runs"`
	Seed   int64       `json:"seed"`
}

// adviseSpecWire is the strict decode target for AdviseSpec.
type adviseSpecWire struct {
	Advise AdviseGroup `json:"advise"`
	Runs   int         `json:"runs"`
	Seed   int64       `json:"seed"`
}

// UnmarshalJSON decodes the v1 advise schema, rejecting unknown fields —
// the advise group is new enough to have no legacy flat spellings.
func (sp *AdviseSpec) UnmarshalJSON(data []byte) error {
	var w adviseSpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	*sp = AdviseSpec{Advise: w.Advise, Runs: w.Runs, Seed: w.Seed}
	return nil
}

// Validate rejects malformed advise specs at submission time (cheap checks
// only; unknown apps surface when the advise starts and fail it).
func (sp AdviseSpec) Validate() error {
	if sp.Advise.App == "" {
		return fmt.Errorf("advise.app is required")
	}
	if b := sp.Advise.Budget; b < 0 || b >= 1 {
		return fmt.Errorf("advise.budget must be an SDC AVF in [0, 1), got %g", b)
	}
	if sp.Runs <= 0 {
		return fmt.Errorf("runs must be positive, got %d", sp.Runs)
	}
	return nil
}

// AdviseStatus is the API view of an advise job: its spec, lifecycle state,
// the advisor phase it is in, measurement progress, and — once reached —
// the plan and its verification.
type AdviseStatus struct {
	ID    string     `json:"id"`
	Spec  AdviseSpec `json:"spec"`
	State JobState   `json:"state"`
	// Phase is the advisor phase: measure | search | verify | done.
	Phase string `json:"phase,omitempty"`
	// Measured and Costed count completed measurement units (kernels whose
	// vulnerability campaign / cost pricing has landed in the journal).
	Measured int `json:"measured,omitempty"`
	Costed   int `json:"costed,omitempty"`
	// Plan and Verification appear as their phases complete; a terminal
	// "done" state always carries both.
	Plan         *advisor.Plan         `json:"plan,omitempty"`
	Verification *advisor.Verification `json:"verification,omitempty"`
	Error        string                `json:"error,omitempty"`
	Created      int64                 `json:"created_unix"`
	Started      int64                 `json:"started_unix,omitempty"`
	Finished     int64                 `json:"finished_unix,omitempty"`
}

// AdviseEvent is one NDJSON line of an advise job's progress stream.
type AdviseEvent struct {
	// Type: "status" (initial snapshot), "progress" (a unit of work
	// completed), or a terminal state name ("done" | "failed" | "canceled").
	Type string       `json:"type"`
	Job  AdviseStatus `json:"job"`
}

// AdviseBackendFactory builds the measurement backend for one advise job.
// The daemon wires the study stack (gpurel.NewStudy(spec.Runs, spec.Seed));
// tests substitute synthetic tables.
type AdviseBackendFactory func(spec AdviseSpec) (advisor.Backend, error)

// AdvisorConfig configures the advise subsystem.
type AdvisorConfig struct {
	// Backend builds the per-job measurement backend. Required.
	Backend AdviseBackendFactory
	// JournalPath, when set, enables the journal: the advisor's full State
	// is persisted after every completed unit of work and incomplete advise
	// jobs resume from it on the next NewAdvisor with the same path —
	// reproducing, by the runner's determinism, the bit-identical plan.
	JournalPath string
	// Metrics, when set, gains a gpureld_advises_total exposition section.
	Metrics *Metrics
	// Now is the subsystem clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// Advisor owns the advise job table and runs one goroutine per active job.
type Advisor struct {
	cfg AdvisorConfig

	mu    sync.Mutex
	jobs  map[string]*adviseJob
	order []string // submission order, for listing

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	submitted atomic.Int64
	resumed   atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	verified  atomic.Int64
	refused   atomic.Int64
}

// adviseJob is the mutable state behind one AdviseStatus.
type adviseJob struct {
	id      string
	spec    AdviseSpec
	created time.Time
	cancel  context.CancelFunc

	mu         sync.Mutex
	state      JobState
	st         *advisor.State // latest journaled advisor state (nil before the first unit)
	userCancel bool           // DELETE requested; distinguishes cancel from daemon shutdown
	errmsg     string
	started    time.Time
	finished   time.Time
	subs       map[int]chan AdviseEvent
	nextSub    int
}

// adviseCheckpoint is the durable state of one advise job: its spec plus the
// advisor's own journaled State, which is everything a fresh process needs
// to resume the run to a bit-identical plan.
type adviseCheckpoint struct {
	ID       string         `json:"id"`
	Spec     AdviseSpec     `json:"spec"`
	State    JobState       `json:"state"`
	Advisor  *advisor.State `json:"advisor,omitempty"`
	Error    string         `json:"error,omitempty"`
	Created  int64          `json:"created_unix"`
	Started  int64          `json:"started_unix,omitempty"`
	Finished int64          `json:"finished_unix,omitempty"`
}

type adviseCheckpointFile struct {
	Version   int                `json:"version"`
	SavedUnix int64              `json:"saved_unix"`
	Jobs      []adviseCheckpoint `json:"jobs"`
}

// NewAdvisor builds the advise subsystem, resumes any incomplete advise
// jobs found in the journal, and returns it ready to Mount.
func NewAdvisor(cfg AdvisorConfig) (*Advisor, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("service: AdvisorConfig.Backend is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Advisor{cfg: cfg, jobs: map[string]*adviseJob{}, ctx: ctx, cancel: cancel}
	if cfg.Metrics != nil {
		cfg.Metrics.AddCollector(a.writeMetrics)
	}

	if cfg.JournalPath != "" {
		saved, err := loadAdviseCheckpoint(cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		for _, jc := range saved {
			j := &adviseJob{id: jc.ID, spec: jc.Spec, created: time.Unix(jc.Created, 0), state: jc.State, st: jc.Advisor, errmsg: jc.Error}
			if jc.Started != 0 {
				j.started = time.Unix(jc.Started, 0)
			}
			if jc.Finished != 0 {
				j.finished = time.Unix(jc.Finished, 0)
			}
			a.jobs[j.id] = j
			a.order = append(a.order, j.id)
			if !j.state.Terminal() {
				// A job mid-flight when the previous process stopped resumes
				// from its last journaled unit of work.
				j.state = StateQueued
				a.resumed.Add(1)
				a.start(j)
			}
		}
	}
	return a, nil
}

// Mount adds the advise routes to the v1 mux (pass to Server.Handler).
func (a *Advisor) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/advise", a.handleSubmit)
	mux.HandleFunc("GET /v1/advise", a.handleList)
	mux.HandleFunc("GET /v1/advise/{id}", a.handleGet)
	mux.HandleFunc("DELETE /v1/advise/{id}", a.handleCancel)
	mux.HandleFunc("GET /v1/advise/{id}/events", a.handleEvents)
}

// Submit validates and starts one advise job.
func (a *Advisor) Submit(spec AdviseSpec) (AdviseStatus, error) {
	if a.closed.Load() {
		return AdviseStatus{}, fmt.Errorf("advisor is shutting down")
	}
	if err := spec.Validate(); err != nil {
		return AdviseStatus{}, err
	}
	j := &adviseJob{id: newAdviseID(), spec: spec, created: a.cfg.Now(), state: StateQueued}
	a.mu.Lock()
	a.jobs[j.id] = j
	a.order = append(a.order, j.id)
	a.mu.Unlock()
	a.submitted.Add(1)
	a.flush()
	a.start(j)
	return j.snapshot(), nil
}

// start launches the job's runner goroutine.
func (a *Advisor) start(j *adviseJob) {
	ctx, cancel := context.WithCancel(a.ctx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	a.wg.Add(1)
	go a.run(ctx, j)
}

// Get returns one advise job's status.
func (a *Advisor) Get(id string) (AdviseStatus, bool) {
	a.mu.Lock()
	j, ok := a.jobs[id]
	a.mu.Unlock()
	if !ok {
		return AdviseStatus{}, false
	}
	return j.snapshot(), true
}

// List returns every advise job in submission order.
func (a *Advisor) List() []AdviseStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AdviseStatus, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.jobs[id].snapshot())
	}
	return out
}

// Cancel stops an advise job at the next unit-of-work boundary.
func (a *Advisor) Cancel(id string) (AdviseStatus, bool) {
	a.mu.Lock()
	j, ok := a.jobs[id]
	a.mu.Unlock()
	if !ok {
		return AdviseStatus{}, false
	}
	j.mu.Lock()
	if !j.state.Terminal() && j.cancel != nil {
		j.userCancel = true
		j.cancel()
	}
	st := j.snapshotLocked()
	j.mu.Unlock()
	return st, true
}

// Close cancels all running advise jobs and waits for their goroutines.
func (a *Advisor) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	a.cancel()
	a.wg.Wait()
	return a.flush()
}

// run drives one advise job to a terminal state.
func (a *Advisor) run(ctx context.Context, j *adviseJob) {
	defer a.wg.Done()

	j.mu.Lock()
	j.state = StateRunning
	j.started = a.cfg.Now()
	// The runner mutates its State in place between emissions, so it gets a
	// private copy; j.st only ever holds frozen clones.
	resume := cloneAdvisorState(j.st)
	spec := j.spec
	j.publishLocked("status")
	j.mu.Unlock()
	a.flush()

	backend, err := a.cfg.Backend(spec)
	if err != nil {
		a.finish(j, StateFailed, fmt.Sprintf("backend: %v", err))
		return
	}
	r := &advisor.Runner{
		Backend: backend,
		App:     spec.Advise.App,
		Budget:  spec.Advise.Budget,
		Resume:  resume,
		OnState: func(st *advisor.State) {
			cp := cloneAdvisorState(st)
			j.mu.Lock()
			j.st = cp
			j.publishLocked("progress")
			j.mu.Unlock()
			a.flush()
		},
	}
	st, err := r.Run(ctx)
	j.mu.Lock()
	j.st = st
	j.mu.Unlock()

	switch {
	case err == nil:
		a.verified.Add(1)
		a.finish(j, StateDone, "")
	case errors.Is(err, context.Canceled):
		j.mu.Lock()
		user := j.userCancel
		j.mu.Unlock()
		if !user {
			// Daemon shutdown, not a DELETE: leave the job non-terminal in
			// the journal so the next process resumes it from the last
			// completed unit (and, by determinism, the identical plan).
			j.mu.Lock()
			j.state = StateQueued
			j.publishLocked("status")
			j.mu.Unlock()
			a.flush()
			return
		}
		a.finish(j, StateCanceled, "")
	default:
		var refused *advisor.ErrPlanRefused
		var unattainable *advisor.ErrBudgetUnattainable
		if errors.As(err, &refused) || errors.As(err, &unattainable) {
			a.refused.Add(1)
		}
		a.finish(j, StateFailed, err.Error())
	}
}

// finish moves a job to a terminal state, publishes the terminal event, and
// bumps the lifecycle counters.
func (a *Advisor) finish(j *adviseJob, st JobState, errmsg string) {
	j.mu.Lock()
	j.state = st
	j.errmsg = errmsg
	j.finished = a.cfg.Now()
	j.publishLocked(string(st))
	j.mu.Unlock()
	switch st {
	case StateDone:
		a.done.Add(1)
	case StateFailed:
		a.failed.Add(1)
	case StateCanceled:
		a.canceled.Add(1)
	}
	a.flush()
}

// flush persists every advise job to the journal (atomic temp + rename).
func (a *Advisor) flush() error {
	if a.cfg.JournalPath == "" {
		return nil
	}
	a.mu.Lock()
	jobs := make([]adviseCheckpoint, 0, len(a.order))
	for _, id := range a.order {
		jobs = append(jobs, a.jobs[id].checkpoint())
	}
	a.mu.Unlock()
	return saveAdviseCheckpoint(a.cfg.JournalPath, jobs, a.cfg.Now().Unix())
}

// writeMetrics is the /metrics exposition section for the advise subsystem.
func (a *Advisor) writeMetrics(w io.Writer) {
	fmt.Fprintln(w, "# HELP gpureld_advises_total Advise jobs by lifecycle event since process start.")
	fmt.Fprintln(w, "# TYPE gpureld_advises_total counter")
	fmt.Fprintf(w, "gpureld_advises_total{event=\"submitted\"} %d\n", a.submitted.Load())
	fmt.Fprintf(w, "gpureld_advises_total{event=\"resumed\"} %d\n", a.resumed.Load())
	fmt.Fprintf(w, "gpureld_advises_total{event=\"done\"} %d\n", a.done.Load())
	fmt.Fprintf(w, "gpureld_advises_total{event=\"failed\"} %d\n", a.failed.Load())
	fmt.Fprintf(w, "gpureld_advises_total{event=\"canceled\"} %d\n", a.canceled.Load())
	fmt.Fprintln(w, "# HELP gpureld_advise_plans_total Advise plans by verification verdict.")
	fmt.Fprintln(w, "# TYPE gpureld_advise_plans_total counter")
	fmt.Fprintf(w, "gpureld_advise_plans_total{result=\"verified\"} %d\n", a.verified.Load())
	fmt.Fprintf(w, "gpureld_advise_plans_total{result=\"refused\"} %d\n", a.refused.Load())
}

func (a *Advisor) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec AdviseSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad advise spec: "+err.Error())
		return
	}
	st, err := a.Submit(spec)
	if err != nil {
		status, code := http.StatusBadRequest, ErrCodeBadRequest
		if a.closed.Load() {
			status, code = http.StatusServiceUnavailable, ErrCodeUnavailable
		}
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (a *Advisor) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.List())
}

func (a *Advisor) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := a.Get(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such advise job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *Advisor) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := a.Cancel(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such advise job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams one NDJSON event per line: an initial "status"
// snapshot, then "progress" per completed advisor unit, ending with the
// terminal state.
func (a *Advisor) handleEvents(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	j, ok := a.jobs[r.PathValue("id")]
	a.mu.Unlock()
	if !ok {
		WriteError(w, http.StatusNotFound, ErrCodeNotFound, "no such advise job")
		return
	}
	ch, unsub := j.subscribe()
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	write := func(ev AdviseEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !ev.Job.State.Terminal()
	}

	st := j.snapshot()
	typ := "status"
	if st.State.Terminal() {
		typ = string(st.State)
	}
	if !write(AdviseEvent{Type: typ, Job: st}) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-a.ctx.Done():
			return
		case ev := <-ch:
			if !write(ev) {
				return
			}
		}
	}
}

func (j *adviseJob) snapshotLocked() AdviseStatus {
	st := AdviseStatus{
		ID:      j.id,
		Spec:    j.spec,
		State:   j.state,
		Error:   j.errmsg,
		Created: j.created.Unix(),
	}
	if a := j.st; a != nil {
		st.Phase = a.Phase
		st.Measured = len(a.Measures)
		st.Costed = len(a.Costs)
		st.Plan = a.Plan
		st.Verification = a.Verification
	}
	if !j.started.IsZero() {
		st.Started = j.started.Unix()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Unix()
	}
	return st
}

func (j *adviseJob) snapshot() AdviseStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *adviseJob) checkpoint() adviseCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	jc := adviseCheckpoint{
		ID: j.id, Spec: j.spec, State: j.state, Advisor: j.st,
		Error: j.errmsg, Created: j.created.Unix(),
	}
	if !j.started.IsZero() {
		jc.Started = j.started.Unix()
	}
	if !j.finished.IsZero() {
		jc.Finished = j.finished.Unix()
	}
	return jc
}

// publishLocked fans an event out to subscribers, dropping the oldest
// buffered event against slow consumers (see job.publishLocked).
func (j *adviseJob) publishLocked(typ string) {
	ev := AdviseEvent{Type: typ, Job: j.snapshotLocked()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

func (j *adviseJob) subscribe() (<-chan AdviseEvent, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs == nil {
		j.subs = map[int]chan AdviseEvent{}
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan AdviseEvent, 64)
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// adviseCheckpointVersion guards the advise journal format.
const adviseCheckpointVersion = 1

// saveAdviseCheckpoint writes the advise journal atomically (temp + rename),
// mirroring the scheduler's checkpoint discipline.
func saveAdviseCheckpoint(path string, jobs []adviseCheckpoint, savedUnix int64) error {
	cf := adviseCheckpointFile{Version: adviseCheckpointVersion, SavedUnix: savedUnix, Jobs: jobs}
	data, err := json.MarshalIndent(cf, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// loadAdviseCheckpoint reads the advise journal; a missing file is an empty
// journal, not an error.
func loadAdviseCheckpoint(path string) ([]adviseCheckpoint, error) {
	data, err := readFileMissingOK(path)
	if data == nil || err != nil {
		return nil, err
	}
	var cf adviseCheckpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("advise checkpoint %s: %w", path, err)
	}
	if cf.Version != adviseCheckpointVersion {
		return nil, fmt.Errorf("advise checkpoint %s: version %d, want %d", path, cf.Version, adviseCheckpointVersion)
	}
	return cf.Jobs, nil
}

// cloneAdvisorState deep-copies a journaled advisor state (JSON round-trip:
// the type is defined by its wire form, so this is exact).
func cloneAdvisorState(st *advisor.State) *advisor.State {
	if st == nil {
		return nil
	}
	data, err := json.Marshal(st)
	if err != nil {
		panic(fmt.Sprintf("service: marshal advisor state: %v", err))
	}
	var cp advisor.State
	if err := json.Unmarshal(data, &cp); err != nil {
		panic(fmt.Sprintf("service: unmarshal advisor state: %v", err))
	}
	return &cp
}

// newAdviseID returns a random 12-hex-char advise job ID ("a" prefix keeps
// it visually distinct from campaign job IDs).
func newAdviseID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: rand.Read: %v", err))
	}
	return "a" + hex.EncodeToString(b[:])
}
