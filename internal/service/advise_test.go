// Tests of the /v1/advise subsystem on a synthetic measurement backend:
// HTTP lifecycle with NDJSON progress, validation, metrics, and — the
// acceptance property — kill-and-resume mid-run reproducing the
// bit-identical final plan. The selective "harden" job-spec wire field is
// covered here too.
package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpurel/internal/advisor"
	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

// TestHardenWireSpec: the selective "harden" field decodes from the golden
// fixture, survives the point round trip, and its misuse is rejected.
func TestHardenWireSpec(t *testing.T) {
	sp := loadSpec(t, "jobspec_harden.json")
	if err := sp.Validate(); err != nil {
		t.Fatalf("harden fixture invalid: %v", err)
	}
	p, err := sp.Point()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Harden) != 2 || p.Harden[0] != "K5" || p.Harden[1] != "K2" {
		t.Fatalf("point lost the protection set: %+v", p.Harden)
	}

	// SpecForPoint is the inverse used by the client-side study hook.
	back := service.SpecForPoint(p, campaign.Options{Runs: sp.Runs, Seed: sp.Seed})
	bp, err := back.Point()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(bp.Harden) != fmt.Sprint(p.Harden) {
		t.Errorf("SpecForPoint round trip changed the set: %v != %v", bp.Harden, p.Harden)
	}

	for name, bad := range map[string]string{
		"mixed with hardened": `{"layer":"micro","app":"VA","kernel":"K1","runs":10,"hardened":true,"harden":["K1"]}`,
		"soft layer":          `{"layer":"soft","app":"VA","kernel":"K1","runs":10,"harden":["K1"]}`,
	} {
		var sp service.JobSpec
		if err := json.Unmarshal([]byte(bad), &sp); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: validated, want rejection", name)
		}
	}
}

// synthAdviseBackend is a deterministic in-memory measurement table. With
// the default numbers the greedy search protects exactly {K4} at budget
// 0.04. blockAtCost, when set, makes the first Cost call for that kernel
// signal `reached` and block until `release` closes — the hook the
// kill-and-resume test uses to stop the daemon mid-run.
type synthAdviseBackend struct {
	verifySkew float64 // added to the verified SDC (to force refusal)

	blockAtCost string
	reached     chan struct{}
	release     chan struct{}

	mu       sync.Mutex
	measured []string
	costed   []string
	verifies int
	blocked  bool
}

var synthKernels = []string{"K1", "K2", "K3", "K4"}

var synthTable = map[string]advisor.KernelMeasure{
	"K1": {Kernel: "K1", Weight: 100, HardMult: 1.5, SDC: 0.02, SDCHardened: 0.002, Hint: 1},
	"K2": {Kernel: "K2", Weight: 300, HardMult: 1.5, SDC: 0.08, SDCHardened: 0.002, Hint: 2},
	"K3": {Kernel: "K3", Weight: 200, HardMult: 1.5, SDC: 0.05, SDCHardened: 0.002, Hint: 3},
	"K4": {Kernel: "K4", Weight: 400, HardMult: 1.5, SDC: 0.10, SDCHardened: 0.002, Hint: 4},
}

var synthCosts = map[string]float64{"K1": 0.05, "K2": 0.15, "K3": 0.10, "K4": 0.20}

func (b *synthAdviseBackend) Kernels(ctx context.Context, app string) ([]string, error) {
	if app != "synth" {
		return nil, fmt.Errorf("unknown app %q", app)
	}
	return append([]string(nil), synthKernels...), nil
}

func (b *synthAdviseBackend) Measure(ctx context.Context, app, kernel string) (advisor.KernelMeasure, error) {
	b.mu.Lock()
	b.measured = append(b.measured, kernel)
	b.mu.Unlock()
	return synthTable[kernel], nil
}

func (b *synthAdviseBackend) Cost(ctx context.Context, app, kernel string) (float64, error) {
	b.mu.Lock()
	block := kernel == b.blockAtCost && !b.blocked
	b.blocked = b.blocked || block
	b.costed = append(b.costed, kernel)
	b.mu.Unlock()
	if block {
		close(b.reached)
		select {
		case <-b.release:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return synthCosts[kernel], nil
}

func (b *synthAdviseBackend) FullOverhead(ctx context.Context, app string) (float64, error) {
	return 1.5, nil
}

// Verify reports the same weighted SDC the search predicts (plus skew), so
// verification passes exactly when the prediction was honest.
func (b *synthAdviseBackend) Verify(ctx context.Context, app string, protect []string) (advisor.Verification, error) {
	b.mu.Lock()
	b.verifies++
	b.mu.Unlock()
	prot := map[string]bool{}
	for _, k := range protect {
		prot[k] = true
	}
	var num, den, cost float64
	v := advisor.Verification{PerKernel: map[string]float64{}}
	for _, k := range synthKernels {
		m := synthTable[k]
		w, sdc := m.Weight, m.SDC
		if prot[k] {
			w, sdc = w*m.HardMult, m.SDCHardened
			cost += synthCosts[k]
		}
		num += w * sdc
		den += w
		v.PerKernel[k] = sdc
		v.TotalRuns += 100
	}
	v.SDC = num/den + b.verifySkew
	v.Overhead = 1 + cost
	return v, nil
}

func synthFactory(b *synthAdviseBackend) service.AdviseBackendFactory {
	return func(spec service.AdviseSpec) (advisor.Backend, error) { return b, nil }
}

// newAdviseServer stands up a scheduler + advisor pair sharing one mux.
func newAdviseServer(t *testing.T, cfg service.AdvisorConfig) (*service.Advisor, *httptest.Server) {
	t.Helper()
	sched, err := service.NewScheduler(service.Config{Source: fakeSource(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	if cfg.Metrics == nil {
		cfg.Metrics = sched.Metrics()
	}
	adv, err := service.NewAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adv.Close() })
	srv := httptest.NewServer(service.NewServer(sched).Handler(adv.Mount))
	t.Cleanup(srv.Close)
	return adv, srv
}

func postAdvise(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/advise", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// TestAdviseServiceEndToEnd drives one advise job through the full HTTP
// lifecycle: submit, NDJSON events to completion, status with plan and
// verification, list, and the /metrics counters.
func TestAdviseServiceEndToEnd(t *testing.T) {
	b := &synthAdviseBackend{}
	_, srv := newAdviseServer(t, service.AdvisorConfig{Backend: synthFactory(b)})

	resp, data := postAdvise(t, srv.URL, `{"advise":{"app":"synth","budget":0.04},"runs":100,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st service.AdviseStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Spec.Advise.App != "synth" {
		t.Fatalf("submit status = %+v", st)
	}

	// Stream events until terminal.
	evResp, err := http.Get(srv.URL + "/v1/advise/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	var last service.AdviseEvent
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch last.Type {
		case "status", "progress", "done":
		default:
			t.Fatalf("unexpected event type %q", last.Type)
		}
	}
	if last.Type != "done" || last.Job.State != service.StateDone {
		t.Fatalf("final event = %+v", last)
	}

	fin := last.Job
	if fin.Phase != advisor.PhaseDone || fin.Plan == nil || fin.Verification == nil {
		t.Fatalf("done status incomplete: %+v", fin)
	}
	if got := fmt.Sprint(fin.Plan.Protect); got != "[K4]" {
		t.Errorf("plan protects %s, want [K4]", got)
	}
	if !fin.Verification.Pass || fin.Verification.SDC > 0.04 {
		t.Errorf("verification failed the budget: %+v", fin.Verification)
	}
	if fin.Verification.Overhead >= fin.Verification.FullOverhead {
		t.Errorf("overhead %.3f not below full TMR %.3f", fin.Verification.Overhead, fin.Verification.FullOverhead)
	}
	if fin.Measured != len(synthKernels) || fin.Costed != len(synthKernels) {
		t.Errorf("progress counters = %d/%d, want %d", fin.Measured, fin.Costed, len(synthKernels))
	}

	// GET by ID agrees with the terminal event; the list contains the job.
	getResp, err := http.Get(srv.URL + "/v1/advise/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got service.AdviseStatus
	json.NewDecoder(getResp.Body).Decode(&got)
	getResp.Body.Close()
	if got.State != service.StateDone || got.Plan == nil {
		t.Errorf("GET status = %+v", got)
	}
	listResp, err := http.Get(srv.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	var list []service.AdviseStatus
	json.NewDecoder(listResp.Body).Decode(&list)
	listResp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}

	// Metrics carry the advise section.
	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mData, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		`gpureld_advises_total{event="submitted"} 1`,
		`gpureld_advises_total{event="done"} 1`,
		`gpureld_advise_plans_total{result="verified"} 1`,
		`gpureld_advise_plans_total{result="refused"} 0`,
	} {
		if !bytes.Contains(mData, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAdviseValidation: malformed submissions are 400s with a JSON error.
func TestAdviseValidation(t *testing.T) {
	b := &synthAdviseBackend{}
	_, srv := newAdviseServer(t, service.AdvisorConfig{Backend: synthFactory(b)})
	for name, body := range map[string]string{
		"missing app":    `{"advise":{"budget":0.04},"runs":100}`,
		"budget too big": `{"advise":{"app":"synth","budget":1.5},"runs":100}`,
		"negative":       `{"advise":{"app":"synth","budget":-0.1},"runs":100}`,
		"no runs":        `{"advise":{"app":"synth","budget":0.04}}`,
		"unknown field":  `{"advise":{"app":"synth","budget":0.04},"runs":100,"bogus":1}`,
		"flat spelling":  `{"app":"synth","budget":0.04,"runs":100}`,
	} {
		resp, data := postAdvise(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
		}
		var e service.ErrorEnvelope
		if err := json.Unmarshal(data, &e); err != nil || e.Error.Code != service.ErrCodeBadRequest || e.Error.Message == "" {
			t.Errorf("%s: error body %q", name, data)
		}
	}
	if resp, data := postAdvise(t, srv.URL, `{"advise":{"app":"nosuch","budget":0.04},"runs":100}`); resp.StatusCode != http.StatusAccepted {
		t.Errorf("unknown app rejected at submit: %d %s", resp.StatusCode, data)
	} // …but fails asynchronously — covered by the refusal test's pattern.
}

// TestAdviseRefusedPlan: a verification that misses the budget ends the job
// failed with the refusal recorded, and bumps the refused counter.
func TestAdviseRefusedPlan(t *testing.T) {
	b := &synthAdviseBackend{verifySkew: 1}
	adv, srv := newAdviseServer(t, service.AdvisorConfig{Backend: synthFactory(b)})

	resp, data := postAdvise(t, srv.URL, `{"advise":{"app":"synth","budget":0.04},"runs":100,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st service.AdviseStatus
	json.Unmarshal(data, &st)
	fin := waitAdvise(t, adv, st.ID)
	if fin.State != service.StateFailed || !strings.Contains(fin.Error, "plan refused") {
		t.Fatalf("refused advise = %+v", fin)
	}
	if fin.Verification == nil || fin.Verification.Pass {
		t.Errorf("refusal did not record the failing verification: %+v", fin.Verification)
	}

	mResp, _ := http.Get(srv.URL + "/metrics")
	mData, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if !bytes.Contains(mData, []byte(`gpureld_advise_plans_total{result="refused"} 1`)) {
		t.Errorf("refused counter missing:\n%s", grepMetrics(mData, "advise"))
	}
}

// TestAdviseCancel: DELETE lands the job in a terminal canceled state that a
// restart does not resurrect.
func TestAdviseCancel(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "advise.json")
	b := &synthAdviseBackend{blockAtCost: "K2", reached: make(chan struct{}), release: make(chan struct{})}
	adv, err := service.NewAdvisor(service.AdvisorConfig{Backend: synthFactory(b), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := adv.Submit(service.AdviseSpec{Advise: service.AdviseGroup{App: "synth", Budget: 0.04}, Runs: 100})
	if err != nil {
		t.Fatal(err)
	}
	<-b.reached
	// Cancel aborts the blocked unit through its context; release stays
	// open so the only way out is the cancellation.
	if _, ok := adv.Cancel(st.ID); !ok {
		t.Fatal("cancel: no such job")
	}
	fin := waitAdvise(t, adv, st.ID)
	if fin.State != service.StateCanceled {
		t.Fatalf("state after cancel = %q", fin.State)
	}
	adv.Close()

	b2 := &synthAdviseBackend{}
	adv2, err := service.NewAdvisor(service.AdvisorConfig{Backend: synthFactory(b2), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer adv2.Close()
	got, ok := adv2.Get(st.ID)
	if !ok || got.State != service.StateCanceled {
		t.Fatalf("restart changed canceled job: %+v", got)
	}
	b2.mu.Lock()
	ran := len(b2.measured) + len(b2.costed)
	b2.mu.Unlock()
	if ran != 0 {
		t.Errorf("restart re-ran %d units of a canceled job", ran)
	}
}

// TestAdviseKillResumeBitIdentical is the acceptance property: stop the
// daemon mid-run (blocked inside a cost measurement), restart on the same
// journal, and the resumed advise completes without re-running journaled
// units — to the bit-identical plan and verification an uninterrupted run
// produces.
func TestAdviseKillResumeBitIdentical(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "advise.json")
	b1 := &synthAdviseBackend{blockAtCost: "K3", reached: make(chan struct{}), release: make(chan struct{})}
	adv1, err := service.NewAdvisor(service.AdvisorConfig{Backend: synthFactory(b1), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	st, err := adv1.Submit(service.AdviseSpec{Advise: service.AdviseGroup{App: "synth", Budget: 0.04}, Runs: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-b1.reached
	// "Kill" the daemon while the K3 cost unit is in flight: Close cancels
	// the job context, which aborts the blocked unit before it journals.
	adv1.Close()

	interrupted, ok := adv1.Get(st.ID)
	if !ok || interrupted.State.Terminal() {
		t.Fatalf("shutdown made the job terminal: %+v", interrupted)
	}
	if interrupted.Measured != len(synthKernels) {
		t.Fatalf("journal lost measures: %+v", interrupted)
	}

	// Restart on the same journal with a fresh backend: the job resumes by
	// itself and completes.
	b2 := &synthAdviseBackend{}
	adv2, err := service.NewAdvisor(service.AdvisorConfig{Backend: synthFactory(b2), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer adv2.Close()
	fin := waitAdvise(t, adv2, st.ID)
	if fin.State != service.StateDone {
		t.Fatalf("resumed advise = %+v", fin)
	}

	// No journaled unit re-ran: every measure was recovered, only the
	// never-journaled cost units (and the phases after them) executed.
	b2.mu.Lock()
	measured, costed := append([]string(nil), b2.measured...), append([]string(nil), b2.costed...)
	b2.mu.Unlock()
	if len(measured) != 0 {
		t.Errorf("resume re-measured %v", measured)
	}
	// K1 and K2 were journaled; K3 was killed in flight, so K3 and K4 are
	// the only legitimate re-runs.
	if fmt.Sprint(costed) != "[K3 K4]" {
		t.Errorf("resume priced %v, want [K3 K4]", costed)
	}

	// The final plan and verification are bit-identical to an uninterrupted
	// run's.
	b3 := &synthAdviseBackend{}
	adv3, err := service.NewAdvisor(service.AdvisorConfig{Backend: synthFactory(b3)})
	if err != nil {
		t.Fatal(err)
	}
	defer adv3.Close()
	ref, err := adv3.Submit(service.AdviseSpec{Advise: service.AdviseGroup{App: "synth", Budget: 0.04}, Runs: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := waitAdvise(t, adv3, ref.ID)
	for name, pair := range map[string][2]any{
		"plan":         {fin.Plan, want.Plan},
		"verification": {fin.Verification, want.Verification},
	} {
		a, _ := json.Marshal(pair[0])
		b, _ := json.Marshal(pair[1])
		if !bytes.Equal(a, b) {
			t.Errorf("resumed %s differs from uninterrupted run:\n%s\n%s", name, a, b)
		}
	}
}

// TestAdviseStudyFactory: the daemon's production wiring (NewStudyAdviseBackend)
// resolves real apps — exercised end to end in the root package's advisor
// tests, so here it only has to reject nothing and build.
func TestAdviseStudyFactory(t *testing.T) {
	f := service.NewStudyAdviseBackend()
	b, err := f(service.AdviseSpec{Advise: service.AdviseGroup{App: "VA", Budget: 0.1}, Runs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := b.Kernels(context.Background(), "VA")
	if err != nil || len(ks) == 0 {
		t.Fatalf("study backend kernels: %v %v", ks, err)
	}
	if _, err := b.Kernels(context.Background(), "no-such-app"); err == nil {
		t.Error("unknown app not rejected")
	}
}

// waitAdvise polls for a terminal state (the resume path starts jobs from
// the constructor, before a subscriber can attach).
func waitAdvise(t *testing.T, adv *service.Advisor, id string) service.AdviseStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := adv.Get(id)
		if !ok {
			t.Fatalf("advise job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("advise job %s not terminal: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// grepMetrics filters an exposition page for a substring (test diagnostics).
func grepMetrics(data []byte, substr string) string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
