package service

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNormalizeAndComplement(t *testing.T) {
	cases := []struct {
		in    []Range
		n     int
		norm  []Range
		compl []Range
	}{
		{nil, 10, nil, []Range{{0, 10}}},
		{[]Range{{0, 10}}, 10, []Range{{0, 10}}, nil},
		{[]Range{{3, 5}, {0, 3}}, 10, []Range{{0, 5}}, []Range{{5, 10}}},
		{[]Range{{2, 4}, {6, 8}}, 10, []Range{{2, 4}, {6, 8}}, []Range{{0, 2}, {4, 6}, {8, 10}}},
		{[]Range{{0, 4}, {2, 6}}, 6, []Range{{0, 6}}, nil},
		{[]Range{{5, 5}, {7, 3}}, 4, nil, []Range{{0, 4}}},
		{[]Range{{8, 20}}, 10, []Range{{8, 20}}, []Range{{0, 8}}},
	}
	for i, c := range cases {
		norm := normalizeRanges(c.in)
		if !reflect.DeepEqual(norm, c.norm) {
			t.Errorf("case %d: normalize(%v) = %v, want %v", i, c.in, norm, c.norm)
		}
		compl := complementRanges(norm, c.n)
		if !reflect.DeepEqual(compl, c.compl) {
			t.Errorf("case %d: complement(%v, %d) = %v, want %v", i, norm, c.n, compl, c.compl)
		}
	}
}

// TestRangeCoverageProperty: done ∪ complement always tiles [0, n) exactly.
func TestRangeCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		var done []Range
		for i := 0; i < rng.Intn(6); i++ {
			from := rng.Intn(n)
			done = addRange(done, Range{From: from, To: from + 1 + rng.Intn(n-from)})
		}
		covered := make([]bool, n)
		mark := func(rs []Range) {
			for _, r := range rs {
				for i := r.From; i < r.To && i < n; i++ {
					if covered[i] {
						t.Fatalf("trial %d: index %d covered twice (done=%v compl=%v)",
							trial, i, done, complementRanges(done, n))
					}
					covered[i] = true
				}
			}
		}
		mark(done)
		mark(complementRanges(done, n))
		for i, c := range covered {
			if !c {
				t.Fatalf("trial %d: index %d uncovered (done=%v)", trial, i, done)
			}
		}
		if got := rangesLen(done) + rangesLen(complementRanges(done, n)); got < n {
			t.Fatalf("trial %d: lengths %d < n %d", trial, got, n)
		}
	}
}
