// End-to-end tests of the campaign service: submit over HTTP, stream NDJSON
// progress, kill the server mid-job, restart from the checkpoint journal,
// and prove the resumed job's final tally is bit-identical to an
// uninterrupted campaign.Run with the same seed.
package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
	"gpurel/internal/service"
)

// outcome is the synthetic experiment's deterministic classification — the
// same distribution the campaign package's own tests use.
func outcome(rng *rand.Rand) faults.Result {
	switch rng.Intn(10) {
	case 0:
		return faults.Result{Outcome: faults.SDC}
	case 1:
		return faults.Result{Outcome: faults.DUE}
	case 2:
		return faults.Result{Outcome: faults.Timeout}
	case 3:
		return faults.Result{Outcome: faults.Masked, CtrlAffected: true}
	default:
		return faults.Result{Outcome: faults.Masked}
	}
}

// fakeSource returns a synthetic experiment source; perRun throttles each
// injection so tests can reliably interrupt a job mid-flight.
func fakeSource(perRun time.Duration) service.SourceFunc {
	return func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			if perRun > 0 {
				time.Sleep(perRun)
			}
			return outcome(rng)
		}, nil
	}
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Scheduler, *httptest.Server) {
	t.Helper()
	sched, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(sched).Handler())
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { sched.Close() })
	return sched, srv
}

// TestSubmitStreamMetrics drives one job through the full happy path over
// HTTP: submit, NDJSON event stream to completion, status, metrics.
func TestSubmitStreamMetrics(t *testing.T) {
	// Throttle each injection just enough that the event stream reliably
	// attaches while the job is still in flight.
	_, srv := newTestServer(t, service.Config{
		Source:          fakeSource(500 * time.Microsecond),
		ChunkSize:       64,
		WorkersPerShard: 4,
	})
	c := client.New(srv.URL)
	ctx := context.Background()

	spec := service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 500, Seed: 42}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != 500 {
		t.Fatalf("submit status = %+v", st)
	}

	var sawProgress bool
	var last service.JobStatus
	if err := c.WatchEvents(ctx, st.ID, func(ev service.Event) error {
		switch ev.Type {
		case "status", "progress", "done":
		default:
			t.Errorf("unexpected event type %q", ev.Type)
		}
		if ev.Type == "progress" {
			sawProgress = true
			if ev.Job.Done == 0 || ev.Job.Tally.N != ev.Job.Done {
				t.Errorf("progress event inconsistent: %+v", ev.Job)
			}
			if ev.Job.Done < ev.Job.Total && ev.Job.ErrMargin99 == 0 && ev.Job.Tally.FR() > 0 {
				t.Errorf("live error margin missing: %+v", ev.Job)
			}
		}
		last = ev.Job
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawProgress {
		t.Error("no progress events seen")
	}
	if last.State != service.StateDone || last.Done != 500 {
		t.Fatalf("final event = %+v", last)
	}

	want := campaign.Run(campaign.Options{Runs: 500, Seed: 42}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if last.Tally != want {
		t.Errorf("served tally %+v != local campaign.Run %+v", last.Tally, want)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"gpureld_jobs_total{event=\"submitted\"} 1",
		"gpureld_jobs_total{event=\"done\"} 1",
		"gpureld_jobs{state=\"done\"} 1",
		"gpureld_injections_total 500",
		"gpureld_outcomes_total{outcome=\"sdc\"}",
		"gpureld_injections_per_second",
	} {
		if !strings.Contains(metrics, needle) {
			t.Errorf("metrics missing %q in:\n%s", needle, metrics)
		}
	}
}

// TestKillAndResume is the acceptance test: a job interrupted by a server
// shutdown resumes from its checkpoint in a fresh scheduler/server pair and
// finishes with a tally bit-identical to an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "gpureld.ckpt.json")
	const runs, seed = 400, 77

	cfg := service.Config{
		Source:             fakeSource(500 * time.Microsecond), // ~200ms total: interruptible
		ChunkSize:          16,
		WorkersPerShard:    2,
		CheckpointPath:     ckpt,
		CheckpointInterval: 20 * time.Millisecond,
	}
	sched1, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(service.NewServer(sched1).Handler())
	c1 := client.New(srv1.URL)
	ctx := context.Background()

	spec := service.JobSpec{Layer: "soft", App: "fake", Kernel: "K2", Mode: "SVF", Runs: runs, Seed: seed}
	st, err := c1.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Stream until the job is solidly mid-flight, then kill the server.
	errEnough := errors.New("enough progress")
	var mid service.JobStatus
	err = c1.WatchEvents(ctx, st.ID, func(ev service.Event) error {
		if ev.Type == "progress" && ev.Job.Done >= 64 {
			mid = ev.Job
			return errEnough
		}
		return nil
	})
	if !errors.Is(err, errEnough) {
		t.Fatalf("stream ended without reaching mid-job: %v (job may be too fast for this test)", err)
	}
	if mid.Done == 0 || mid.Done >= runs {
		t.Fatalf("not mid-job: %+v", mid)
	}
	if err := sched1.Close(); err != nil { // drain in-flight chunk + final flush
		t.Fatal(err)
	}
	srv1.Close()

	// The journal must hold a resumable (non-terminal) job with real
	// progress recorded as run-ranges.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var journal struct {
		Version int `json:"version"`
		Jobs    []struct {
			ID    string           `json:"id"`
			State service.JobState `json:"state"`
			Done  []service.Range  `json:"done_ranges"`
			Tally campaign.Tally   `json:"tally"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &journal); err != nil {
		t.Fatalf("checkpoint not valid JSON: %v\n%s", err, raw)
	}
	if len(journal.Jobs) != 1 || journal.Jobs[0].ID != st.ID {
		t.Fatalf("journal = %+v", journal)
	}
	jj := journal.Jobs[0]
	if jj.State != service.StateQueued {
		t.Errorf("interrupted job journaled as %q, want %q", jj.State, service.StateQueued)
	}
	if len(jj.Done) == 0 || jj.Tally.N == 0 || jj.Tally.N >= runs {
		t.Errorf("journaled progress implausible: ranges=%v tally.N=%d", jj.Done, jj.Tally.N)
	}

	// Restart: a fresh scheduler on the same journal resumes and finishes.
	cfg.Source = fakeSource(0)
	sched2, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched2.Close()
	srv2 := httptest.NewServer(service.NewServer(sched2).Handler())
	defer srv2.Close()
	c2 := client.New(srv2.URL)

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c2.WaitJob(waitCtx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.Done != runs {
		t.Fatalf("resumed job = %+v", final)
	}

	want := campaign.Run(campaign.Options{Runs: runs, Seed: seed}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if final.Tally != want {
		t.Errorf("resumed tally %+v != uninterrupted %+v", final.Tally, want)
	}

	// The second process only executed the complement of the journaled
	// ranges — the resume really resumed.
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "gpureld_jobs_total{event=\"resumed\"} 1") {
		t.Errorf("metrics missing resumed counter:\n%s", m)
	}
	var resumedInjections int
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "gpureld_injections_total ") {
			if _, err := fmtSscan(line, &resumedInjections); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if got, wantMax := resumedInjections, runs-jj.Tally.N; got != wantMax {
		t.Errorf("second process executed %d injections, want exactly the %d missing", got, wantMax)
	}
}

func fmtSscan(line string, dst *int) (int, error) {
	fields := strings.Fields(line)
	var err error
	*dst, err = atoi(fields[len(fields)-1])
	return *dst, err
}

func atoi(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errors.New("not a number: " + s)
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

// TestCancelAndDeadline covers the remaining lifecycle edges.
func TestCancelAndDeadline(t *testing.T) {
	_, srv := newTestServer(t, service.Config{
		Source:    fakeSource(300 * time.Microsecond),
		ChunkSize: 8,
	})
	c := client.New(srv.URL)
	ctx := context.Background()

	// Cancel mid-flight.
	st, err := c.SubmitJob(ctx, service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateCanceled {
		t.Errorf("state after cancel = %q", final.State)
	}
	if final.Done >= final.Total {
		t.Errorf("canceled job ran to completion: %+v", final)
	}

	// Deadline exceeded.
	st2, err := c.SubmitJob(ctx, service.JobSpec{
		Layer: "micro", App: "fake", Kernel: "K1", Runs: 100000, Seed: 1, Deadline: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.WaitJob(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != service.StateFailed || !strings.Contains(final2.Error, "deadline") {
		t.Errorf("deadline job = %+v", final2)
	}

	// Bad specs are rejected at submit time.
	for _, bad := range []service.JobSpec{
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: 0, Seed: 1},
		{Layer: "nope", App: "fake", Kernel: "K1", Runs: 10},
		{Layer: "micro", App: "", Kernel: "K1", Runs: 10},
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: 10, Structure: "L9"},
		{Layer: "soft", App: "fake", Kernel: "K1", Runs: 10, Mode: "AVF"},
	} {
		if _, err := c.SubmitJob(ctx, bad); err == nil {
			t.Errorf("spec %+v accepted, want rejection", bad)
		}
	}
	if _, err := c.GetJob(ctx, "jdeadbeef0000"); err == nil {
		t.Error("Get on unknown job succeeded")
	}
}

// TestSchedulerWorkerCountInvariance: the served tally must not depend on
// the service's parallelism knobs (same invariant campaign.Run holds).
func TestSchedulerWorkerCountInvariance(t *testing.T) {
	run := func(shards, workers, chunk int) campaign.Tally {
		sched, err := service.NewScheduler(service.Config{
			Source: fakeSource(0), Shards: shards, WorkersPerShard: workers, ChunkSize: chunk,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sched.Close()
		st, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 700, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for {
			got, _ := sched.Get(st.ID)
			if got.State.Terminal() {
				if got.State != service.StateDone {
					t.Fatalf("job failed: %+v", got)
				}
				return got.Tally
			}
			time.Sleep(time.Millisecond)
		}
	}
	a := run(1, 1, 700)
	b := run(4, 8, 13)
	if a != b {
		t.Errorf("tally depends on scheduling: %+v vs %+v", a, b)
	}
}

// TestRealStudyParity runs a genuine (small) microarchitecture campaign
// point through the service and checks it matches Study.MicroTally computed
// locally — including the PointSeed derivation both sides share — and then
// repeats the comparison through the Study.RunPoint client hook, the path
// `avfsvf -daemon` uses.
func TestRealStudyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator campaign")
	}
	const runs, baseSeed = 30, 1

	local := gpurel.NewStudy(runs, baseSeed)
	want, _, err := local.MicroTally("VA", "K1", gpu.RF, false)
	if err != nil {
		t.Fatal(err)
	}

	_, srv := newTestServer(t, service.Config{
		Source:    service.NewStudySource(gpurel.NewStudy(0, baseSeed)),
		ChunkSize: 7,
	})
	c := client.New(srv.URL)
	ctx := context.Background()

	point := gpurel.PointSpec{Layer: gpurel.LayerMicro, App: "VA", Kernel: "K1", Structure: gpu.RF}
	spec := service.SpecForPoint(point, campaign.Options{Runs: runs, Seed: gpurel.PointSeed(baseSeed, point)})
	final, err := c.RunJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || final.Tally != want {
		t.Errorf("daemon tally %+v (state %s) != local MicroTally %+v", final.Tally, final.State, want)
	}

	// Same comparison through the RunPoint hook (fresh study so nothing is
	// memoised locally).
	remote := gpurel.NewStudy(runs, baseSeed)
	remote.RunPoint = c.RunPoint(ctx)
	got, _, err := remote.MicroTally("VA", "K1", gpu.RF, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunPoint hook tally %+v != local %+v", got, want)
	}
}
