// Package service is the campaign job server behind cmd/gpureld: a
// long-running daemon that accepts AVF/SVF campaign-point specs over HTTP,
// schedules them on a bounded sharded worker pool, journals completed
// run-ranges to a JSON checkpoint so interrupted jobs resume exactly where
// they stopped, streams NDJSON progress, and exports Prometheus metrics.
//
// Determinism is the load-bearing property: campaign run i always uses
// rand.NewSource(Seed+i) (campaign.RunRange), so a job executed in chunks,
// interrupted, checkpointed and resumed in a new process tallies bit for
// bit the same as one uninterrupted campaign.Run with the same seed.
package service

import (
	"fmt"
	"sync"
	"time"

	"gpurel"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/gpu"
	"gpurel/internal/microfi"
	"gpurel/internal/softfi"
)

// JobSpec is one campaign point as submitted over the wire. Seed is the
// campaign seed used directly by campaign.RunRange (run i uses Seed+i);
// clients that want parity with a local Study derive it with
// gpurel.PointSeed(baseSeed, point).
type JobSpec struct {
	Layer     string  `json:"layer"`               // "micro" | "soft"
	App       string  `json:"app"`                 // benchmark name, e.g. "VA"
	Kernel    string  `json:"kernel"`              // kernel name, e.g. "K1"
	Structure string  `json:"structure,omitempty"` // micro: RF | SMEM | L1D | L1T | L2 (default RF)
	Mode      string  `json:"mode,omitempty"`      // soft: SVF | SVF-LD | SVF-USE (default SVF)
	Hardened  bool    `json:"hardened,omitempty"`  // inject into the TMR-hardened variant
	Runs      int     `json:"runs"`                // injections (paper: 3000 per point)
	Seed      int64   `json:"seed"`                // campaign seed; run i uses Seed+i
	Deadline  float64 `json:"deadline_sec,omitempty"`

	// Margin99 enables adaptive sequential stopping: the job finishes early
	// at the first batch boundary where the Wilson-score 99% CI half-width
	// of the failure rate is at or under this target (0 = fixed-n). Runs
	// stays the hard budget cap.
	Margin99 float64 `json:"margin99,omitempty"`
	// Batch is the stop-rule granularity in runs (0 = 100). Chunk ends are
	// clamped to batch boundaries so a checkpointed-and-resumed adaptive job
	// evaluates the stop rule on the same prefixes and tallies bit-identically.
	Batch int `json:"batch,omitempty"`
	// Prune enables liveness-guided pruning of RF injections (micro layer):
	// provably-dead sites are classified from the golden run's liveness map
	// without simulation, bit-identically to brute force.
	Prune bool `json:"prune,omitempty"`

	// SnapStride enables checkpointed fork-and-join injection (micro layer):
	// the app's golden run snapshots machine state every SnapStride cycles
	// and faulty runs resume from the nearest snapshot below their injection
	// cycle, bit-identically to brute force. Negative = auto (about
	// microfi.DefaultSnapshots checkpoints); 0 = off unless Converge is set.
	// Golden runs are built once per (app, daemon): the first job to evaluate
	// an app fixes its checkpoint configuration.
	SnapStride int64 `json:"snap_stride,omitempty"`
	// SnapMB bounds retained snapshot memory in MiB; the stride auto-widens
	// to fit. 0 = microfi.DefaultCheckpointBudget, negative = unlimited.
	SnapMB int `json:"snap_mb,omitempty"`
	// Converge additionally joins faulty runs back to the golden run at the
	// first checkpoint where their machine state matches it exactly. Implies
	// auto-stride checkpointing when SnapStride is 0.
	Converge bool `json:"converge,omitempty"`
}

// policy resolves the spec's adaptive knobs to the engine's stopping policy.
func (sp JobSpec) policy() adaptive.Policy {
	return adaptive.Policy{Margin: sp.Margin99, Batch: sp.Batch}
}

// Point resolves the spec to the study-level campaign point, validating the
// enum fields.
func (sp JobSpec) Point() (gpurel.PointSpec, error) {
	p := gpurel.PointSpec{App: sp.App, Kernel: sp.Kernel, Hardened: sp.Hardened}
	switch sp.Layer {
	case string(gpurel.LayerMicro):
		p.Layer = gpurel.LayerMicro
		st, err := ParseStructure(sp.Structure)
		if err != nil {
			return p, err
		}
		p.Structure = st
	case string(gpurel.LayerSoft):
		p.Layer = gpurel.LayerSoft
		m, err := ParseMode(sp.Mode)
		if err != nil {
			return p, err
		}
		p.Mode = m
	default:
		return p, fmt.Errorf("layer must be %q or %q, got %q", gpurel.LayerMicro, gpurel.LayerSoft, sp.Layer)
	}
	if sp.Margin99 > 0 || sp.Prune {
		p.Sampling = &gpurel.SamplingPolicy{Margin: sp.Margin99, Batch: sp.Batch, Prune: sp.Prune}
	}
	if sp.SnapStride != 0 || sp.Converge {
		stride := sp.SnapStride
		if stride == 0 {
			stride = microfi.AutoStride
		}
		p.Checkpoint = &microfi.CheckpointSpec{
			Stride:      stride,
			BudgetBytes: int64(sp.SnapMB) << 20,
			Converge:    sp.Converge,
		}
	}
	return p, nil
}

// Validate rejects malformed specs at submission time (cheap checks only;
// unknown apps/kernels surface when the job starts and fail it).
func (sp JobSpec) Validate() error {
	if sp.App == "" || sp.Kernel == "" {
		return fmt.Errorf("app and kernel are required")
	}
	if sp.Runs <= 0 {
		return fmt.Errorf("runs must be positive, got %d", sp.Runs)
	}
	if sp.Deadline < 0 {
		return fmt.Errorf("deadline_sec must be non-negative")
	}
	if sp.Margin99 < 0 || sp.Margin99 >= 1 {
		return fmt.Errorf("margin99 must be in [0, 1), got %g", sp.Margin99)
	}
	if sp.Batch < 0 {
		return fmt.Errorf("batch must be non-negative, got %d", sp.Batch)
	}
	_, err := sp.Point()
	return err
}

// ParseStructure maps the wire name of a hardware structure ("" = RF).
func ParseStructure(name string) (gpu.Structure, error) {
	if name == "" {
		return gpu.RF, nil
	}
	for _, st := range gpu.Structures {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown structure %q (want RF|SMEM|L1D|L1T|L2)", name)
}

// ParseMode maps the wire name of a software injection mode ("" = SVF).
func ParseMode(name string) (softfi.Mode, error) {
	switch name {
	case "", softfi.SVF.String():
		return softfi.SVF, nil
	case softfi.SVFLD.String():
		return softfi.SVFLD, nil
	case softfi.SVFUse.String():
		return softfi.SVFUse, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want SVF|SVF-LD|SVF-USE)", name)
}

// JobState is the lifecycle of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether no further progress will happen.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the API view of a job: its spec, lifecycle state, and the
// partial (or final) tally with the live 99%-confidence error margin of the
// paper's methodology.
type JobStatus struct {
	ID          string         `json:"id"`
	Spec        JobSpec        `json:"spec"`
	State       JobState       `json:"state"`
	Done        int            `json:"done"`  // completed runs
	Total       int            `json:"total"` // == Spec.Runs
	DoneRanges  []Range        `json:"done_ranges,omitempty"`
	Tally       campaign.Tally `json:"tally"`
	FR          float64        `json:"fr"`           // failure rate of the partial tally
	ErrMargin99 float64        `json:"err_margin99"` // normal-approx ±CI half-width at current n
	Margin99    float64        `json:"margin99"`     // Wilson-score ±CI half-width (honest at p=0/1)
	// EarlyStopped marks an adaptive job that met its margin target before
	// exhausting the run budget; RunsSaved is the unexecuted remainder.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	RunsSaved    int  `json:"runs_saved,omitempty"`
	// ForkResumes/ConvergeHits count the job's checkpoint-accelerated runs
	// (resumed from a golden snapshot / joined back to golden early).
	// Process-local and exact with one shard; with several shards,
	// concurrent jobs sharing an app's golden run may attribute each other's
	// hits. Not journaled: a restart restarts them at zero.
	ForkResumes  int64  `json:"fork_resumes,omitempty"`
	ConvergeHits int64  `json:"converge_hits,omitempty"`
	Error        string `json:"error,omitempty"`
	Created      int64  `json:"created_unix"`
	Started      int64  `json:"started_unix,omitempty"`
	Finished     int64  `json:"finished_unix,omitempty"`
}

// Event is one NDJSON line of a job's progress stream.
type Event struct {
	// Type: "status" (initial snapshot), "progress" (a chunk completed),
	// or a terminal state name ("done" | "failed" | "canceled").
	Type string    `json:"type"`
	Job  JobStatus `json:"job"`
}

// job is the scheduler-internal mutable state behind a JobStatus.
type job struct {
	id      string
	spec    JobSpec
	created time.Time

	mu        sync.Mutex
	state     JobState
	done      []Range // normalized completed run-ranges
	tally     campaign.Tally
	early     bool // adaptive stop rule fired before the budget ran out
	forks     int64
	converges int64
	errmsg    string
	started   time.Time
	finished  time.Time
	canceled  bool
	subs      map[int]chan Event
	nextSub   int
}

func (j *job) snapshotLocked() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Done:        rangesLen(j.done),
		Total:       j.spec.Runs,
		DoneRanges:  append([]Range(nil), j.done...),
		Tally:       j.tally,
		FR:          j.tally.FR(),
		ErrMargin99: j.tally.ErrMargin99(),
		Margin99:    j.tally.Margin99(),
		Error:       j.errmsg,
		Created:     j.created.Unix(),
	}
	if j.early {
		st.EarlyStopped = true
		st.RunsSaved = st.Total - st.Done
	}
	st.ForkResumes = j.forks
	st.ConvergeHits = j.converges
	if !j.started.IsZero() {
		st.Started = j.started.Unix()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Unix()
	}
	return st
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// publishLocked fans an event out to subscribers. Slow consumers lose the
// oldest buffered event rather than stalling the scheduler; terminal events
// therefore always land (the buffer never stays full against them).
func (j *job) publishLocked(typ string) {
	ev := Event{Type: typ, Job: j.snapshotLocked()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Buffer full: drop the oldest event to make room. Only the
			// owning shard publishes to a job, so the retry cannot race
			// another producer and always succeeds.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

func (j *job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs == nil {
		j.subs = map[int]chan Event{}
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan Event, 64)
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}
