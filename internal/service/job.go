// Package service is the campaign job server behind cmd/gpureld: a
// long-running daemon that accepts AVF/SVF campaign-point specs over HTTP,
// schedules them on a bounded sharded worker pool, leases run-ranges to
// remote fleet workers (internal/fleet), journals completed run-ranges to a
// JSON checkpoint so interrupted jobs resume exactly where they stopped,
// streams NDJSON progress, and exports Prometheus metrics.
//
// Determinism is the load-bearing property: campaign run i always uses
// rand.NewSource(Seed+i) (campaign.RunRange), so a job executed in chunks,
// interrupted, checkpointed and resumed in a new process — or fanned out
// across a fleet of workers — tallies bit for bit the same as one
// uninterrupted campaign.Run with the same seed.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"gpurel"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faultmodel"
	"gpurel/internal/gpu"
	"gpurel/internal/microfi"
	"gpurel/internal/softfi"
)

// FaultSpec is the nested "fault" group of the v1 job spec: the fault model
// a micro-layer point injects (absent = the legacy transient single-bit
// flip). Unlike the sampling and checkpoint groups it changes what the
// point measures, so it participates in point identity (seeds) — see
// gpurel.PointSeed. It is exactly the injection layer's serializable spec.
type FaultSpec = faultmodel.Spec

// SamplingSpec is the adaptive-sampling group of the v1 job spec: knobs that
// tune how many runs a campaign point executes, never what each run measures.
type SamplingSpec struct {
	// Margin99 enables adaptive sequential stopping: the job finishes early
	// at the first batch boundary where the Wilson-score 99% CI half-width
	// of the failure rate is at or under this target (0 = fixed-n). Runs
	// stays the hard budget cap.
	Margin99 float64 `json:"margin99,omitempty"`
	// Batch is the stop-rule granularity in runs (0 = 100). Chunk and lease
	// ends are clamped to batch boundaries so a checkpointed, resumed or
	// fleet-distributed adaptive job evaluates the stop rule on the same
	// prefixes and tallies bit-identically to a sequential run.
	Batch int `json:"batch,omitempty"`
	// Prune enables liveness-guided pruning of RF injections (micro layer):
	// provably-dead sites are classified from the golden run's liveness map
	// without simulation, bit-identically to brute force.
	Prune bool `json:"prune,omitempty"`
}

// SnapshotSpec is the checkpointed fork-and-join group of the v1 job spec
// (micro layer): the app's golden run snapshots machine state so faulty runs
// resume from the nearest snapshot below their injection cycle,
// bit-identically to brute force. Golden runs are built once per
// (app, process): the first job to evaluate an app fixes its configuration.
type SnapshotSpec struct {
	// Stride is the snapshot interval in cycles. Negative = auto (about
	// microfi.DefaultSnapshots checkpoints); 0 = off unless Converge is set.
	Stride int64 `json:"stride,omitempty"`
	// BudgetMB bounds retained snapshot memory in MiB; the stride
	// auto-widens to fit. 0 = microfi.DefaultCheckpointBudget, negative =
	// unlimited.
	BudgetMB int `json:"budget_mb,omitempty"`
	// Converge additionally joins faulty runs back to the golden run at the
	// first checkpoint where their machine state matches it exactly. Implies
	// auto-stride checkpointing when Stride is 0.
	Converge bool `json:"converge,omitempty"`
}

// JobSpec is one campaign point as submitted over the wire. Seed is the
// campaign seed used directly by campaign.RunRange (run i uses Seed+i);
// clients that want parity with a local Study derive it with
// gpurel.PointSeed(baseSeed, point).
//
// The v1 schema groups execution knobs into the nested "sampling" and
// "checkpoint" objects. The flat spellings that predated the grouping
// (margin99, batch, prune, snap_stride, snap_mb, converge at the top level)
// are still accepted on decode — see UnmarshalJSON — but are deprecated and
// never emitted.
type JobSpec struct {
	Layer     string `json:"layer"`               // "micro" | "soft"
	App       string `json:"app"`                 // benchmark name, e.g. "VA"
	Kernel    string `json:"kernel"`              // kernel name, e.g. "K1"
	Structure string `json:"structure,omitempty"` // micro: RF | SMEM | L1D | L1T | L2 | SCHED | STACK | BARRIER (default RF)
	Mode      string `json:"mode,omitempty"`      // soft: SVF | SVF-LD | SVF-USE (default SVF)
	Hardened  bool   `json:"hardened,omitempty"`  // inject into the TMR-hardened variant
	// Harden selects the selectively hardened variant: the kernels whose
	// launches run TMR (micro layer only, mutually exclusive with
	// "hardened"). The advisor's verification campaigns submit these.
	Harden   []string `json:"harden,omitempty"`
	Runs     int      `json:"runs"` // injections (paper: 3000 per point)
	Seed     int64    `json:"seed"` // campaign seed; run i uses Seed+i
	Deadline float64  `json:"deadline_sec,omitempty"`

	// Tenant names the submitting tenant for weighted fair-share scheduling
	// ("" = the default tenant). Priority is the job's fair-share weight
	// within 1..100 (0 = default 1). Neither participates in point identity:
	// they shape who gets served next, never what a run measures, so tallies
	// stay bit-identical whatever the tenant mix.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// Sampling is the adaptive-sampling group (nil = the paper's fixed-n
	// methodology).
	Sampling *SamplingSpec `json:"sampling,omitempty"`
	// Checkpoint is the fork-and-join snapshot group (nil = brute force).
	Checkpoint *SnapshotSpec `json:"checkpoint,omitempty"`
	// Fault is the fault-model group (nil = transient single-bit flip).
	// Micro layer only; control structures (SCHED/STACK/BARRIER) require
	// fault.model "control".
	Fault *FaultSpec `json:"fault,omitempty"`

	// legacyFlat records that the spec was decoded from the deprecated flat
	// fields; Submit surfaces a deprecation note in the response.
	legacyFlat bool
}

// jobSpecWire is the superset decode target: the v1 nested groups plus every
// deprecated flat spelling.
type jobSpecWire struct {
	Layer     string   `json:"layer"`
	App       string   `json:"app"`
	Kernel    string   `json:"kernel"`
	Structure string   `json:"structure"`
	Mode      string   `json:"mode"`
	Hardened  bool     `json:"hardened"`
	Harden    []string `json:"harden"`
	Runs      int      `json:"runs"`
	Seed      int64    `json:"seed"`
	Deadline  float64  `json:"deadline_sec"`
	Tenant    string   `json:"tenant"`
	Priority  int      `json:"priority"`

	Sampling   *SamplingSpec `json:"sampling"`
	Checkpoint *SnapshotSpec `json:"checkpoint"`
	Fault      *FaultSpec    `json:"fault"`

	// Deprecated flat spellings (pre-v1 bolt-ons). Pointers distinguish
	// "absent" from zero so mixing flat and nested forms of the same group
	// can be rejected instead of silently resolved.
	Margin99   *float64 `json:"margin99"`
	Batch      *int     `json:"batch"`
	Prune      *bool    `json:"prune"`
	SnapStride *int64   `json:"snap_stride"`
	SnapMB     *int     `json:"snap_mb"`
	Converge   *bool    `json:"converge"`
}

// UnmarshalJSON decodes both the v1 nested schema and the deprecated flat
// one. Unknown fields are rejected; mixing the flat and nested spellings of
// the same group is an error rather than a guess.
func (sp *JobSpec) UnmarshalJSON(data []byte) error {
	var w jobSpecWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	*sp = JobSpec{
		Layer: w.Layer, App: w.App, Kernel: w.Kernel,
		Structure: w.Structure, Mode: w.Mode, Hardened: w.Hardened, Harden: w.Harden,
		Runs: w.Runs, Seed: w.Seed, Deadline: w.Deadline,
		Tenant: w.Tenant, Priority: w.Priority,
		Sampling: w.Sampling, Checkpoint: w.Checkpoint, Fault: w.Fault,
	}
	flatSampling := w.Margin99 != nil || w.Batch != nil || w.Prune != nil
	flatSnapshot := w.SnapStride != nil || w.SnapMB != nil || w.Converge != nil
	if flatSampling {
		if w.Sampling != nil {
			return fmt.Errorf("job spec mixes the nested \"sampling\" object with deprecated flat fields (margin99/batch/prune)")
		}
		s := SamplingSpec{}
		if w.Margin99 != nil {
			s.Margin99 = *w.Margin99
		}
		if w.Batch != nil {
			s.Batch = *w.Batch
		}
		if w.Prune != nil {
			s.Prune = *w.Prune
		}
		if s != (SamplingSpec{}) {
			sp.Sampling = &s
		}
		sp.legacyFlat = true
	}
	if flatSnapshot {
		if w.Checkpoint != nil {
			return fmt.Errorf("job spec mixes the nested \"checkpoint\" object with deprecated flat fields (snap_stride/snap_mb/converge)")
		}
		c := SnapshotSpec{}
		if w.SnapStride != nil {
			c.Stride = *w.SnapStride
		}
		if w.SnapMB != nil {
			c.BudgetMB = *w.SnapMB
		}
		if w.Converge != nil {
			c.Converge = *w.Converge
		}
		if c != (SnapshotSpec{}) {
			sp.Checkpoint = &c
		}
		sp.legacyFlat = true
	}
	return nil
}

// LegacyFlat reports whether the spec was decoded from the deprecated flat
// wire fields (the pre-v1 schema).
func (sp JobSpec) LegacyFlat() bool { return sp.legacyFlat }

// DeprecationNote is the response annotation attached to jobs submitted with
// the deprecated flat spec fields.
const DeprecationNote = "flat spec fields (margin99/batch/prune/snap_stride/snap_mb/converge) are deprecated; " +
	"use the nested \"sampling\" and \"checkpoint\" objects (docs/service.md)"

// sampling returns the adaptive group, nil-safe.
func (sp JobSpec) sampling() SamplingSpec {
	if sp.Sampling == nil {
		return SamplingSpec{}
	}
	return *sp.Sampling
}

// snapshot returns the checkpoint group, nil-safe.
func (sp JobSpec) snapshot() SnapshotSpec {
	if sp.Checkpoint == nil {
		return SnapshotSpec{}
	}
	return *sp.Checkpoint
}

// policy resolves the spec's adaptive knobs to the engine's stopping policy.
func (sp JobSpec) policy() adaptive.Policy {
	s := sp.sampling()
	return adaptive.Policy{Margin: s.Margin99, Batch: s.Batch}
}

// batchSize is the effective stop-rule granularity.
func (sp JobSpec) batchSize() int {
	if b := sp.sampling().Batch; b > 0 {
		return b
	}
	return adaptive.DefaultBatch
}

// adaptive reports whether the spec requests sequential early stopping.
func (sp JobSpec) adaptive() bool { return sp.sampling().Margin99 > 0 }

// DefaultTenant is the tenant name jobs with an empty "tenant" field are
// accounted under.
const DefaultTenant = "default"

// tenantName resolves the spec's fair-share tenant.
func (sp JobSpec) tenantName() string {
	if sp.Tenant == "" {
		return DefaultTenant
	}
	return sp.Tenant
}

// weight resolves the spec's fair-share weight (Priority, default 1).
func (sp JobSpec) weight() int {
	if sp.Priority <= 0 {
		return 1
	}
	return sp.Priority
}

// Point resolves the spec to the study-level campaign point, validating the
// enum fields.
func (sp JobSpec) Point() (gpurel.PointSpec, error) {
	p := gpurel.PointSpec{App: sp.App, Kernel: sp.Kernel, Hardened: sp.Hardened}
	switch sp.Layer {
	case string(gpurel.LayerMicro):
		p.Layer = gpurel.LayerMicro
		if len(sp.Harden) > 0 {
			if sp.Hardened {
				return p, fmt.Errorf("harden: mutually exclusive with hardened")
			}
			p.Harden = append([]string(nil), sp.Harden...)
		}
		st, err := ParseStructure(sp.Structure)
		if err != nil {
			return p, err
		}
		p.Structure = st
		// Validate the model/structure pairing with the effective spec even
		// when the group is absent: a control structure with no fault group
		// would otherwise surface only when the job starts.
		f := faultmodel.Spec{}
		if sp.Fault != nil {
			f = *sp.Fault
		}
		if err := f.ValidateFor(st); err != nil {
			return p, fmt.Errorf("fault: %w", err)
		}
		if sp.Fault != nil {
			fc := *sp.Fault
			p.Fault = &fc
		}
	case string(gpurel.LayerSoft):
		p.Layer = gpurel.LayerSoft
		if sp.Fault != nil && !sp.Fault.IsDefault() {
			return p, fmt.Errorf("fault: models apply to the micro layer only")
		}
		if len(sp.Harden) > 0 {
			return p, fmt.Errorf("harden: selective hardening applies to the micro layer only")
		}
		m, err := ParseMode(sp.Mode)
		if err != nil {
			return p, err
		}
		p.Mode = m
	default:
		return p, fmt.Errorf("layer must be %q or %q, got %q", gpurel.LayerMicro, gpurel.LayerSoft, sp.Layer)
	}
	if s := sp.sampling(); s.Margin99 > 0 || s.Prune {
		p.Sampling = &gpurel.SamplingPolicy{Margin: s.Margin99, Batch: s.Batch, Prune: s.Prune}
	}
	if c := sp.snapshot(); c.Stride != 0 || c.Converge {
		stride := c.Stride
		if stride == 0 {
			stride = microfi.AutoStride
		}
		p.Checkpoint = &microfi.CheckpointSpec{
			Stride:      stride,
			BudgetBytes: int64(c.BudgetMB) << 20,
			Converge:    c.Converge,
		}
	}
	return p, nil
}

// Validate rejects malformed specs at submission time (cheap checks only;
// unknown apps/kernels surface when the job starts and fail it).
func (sp JobSpec) Validate() error {
	if sp.App == "" || sp.Kernel == "" {
		return fmt.Errorf("app and kernel are required")
	}
	if sp.Runs <= 0 {
		return fmt.Errorf("runs must be positive, got %d", sp.Runs)
	}
	if sp.Deadline < 0 {
		return fmt.Errorf("deadline_sec must be non-negative")
	}
	if sp.Priority < 0 || sp.Priority > 100 {
		return fmt.Errorf("priority must be in 0..100 (0 = default weight 1), got %d", sp.Priority)
	}
	if s := sp.sampling(); s.Margin99 < 0 || s.Margin99 >= 1 {
		return fmt.Errorf("sampling.margin99 must be in [0, 1), got %g", s.Margin99)
	} else if s.Batch < 0 {
		return fmt.Errorf("sampling.batch must be non-negative, got %d", s.Batch)
	}
	_, err := sp.Point()
	return err
}

// ParseStructure maps the wire name of a hardware structure ("" = RF),
// accepting the storage arrays and the control-state sites.
func ParseStructure(name string) (gpu.Structure, error) {
	if name == "" {
		return gpu.RF, nil
	}
	for _, st := range gpu.Structures {
		if st.String() == name {
			return st, nil
		}
	}
	for _, st := range gpu.ControlStructures {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown structure %q (want RF|SMEM|L1D|L1T|L2|SCHED|STACK|BARRIER)", name)
}

// ParseMode maps the wire name of a software injection mode ("" = SVF).
func ParseMode(name string) (softfi.Mode, error) {
	switch name {
	case "", softfi.SVF.String():
		return softfi.SVF, nil
	case softfi.SVFLD.String():
		return softfi.SVFLD, nil
	case softfi.SVFUse.String():
		return softfi.SVFUse, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want SVF|SVF-LD|SVF-USE)", name)
}

// JobState is the lifecycle of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether no further progress will happen.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the API view of a job: its spec, lifecycle state, and the
// partial (or final) tally with the live 99%-confidence error margin of the
// paper's methodology.
type JobStatus struct {
	ID          string         `json:"id"`
	Spec        JobSpec        `json:"spec"`
	State       JobState       `json:"state"`
	Done        int            `json:"done"`  // runs merged into the contiguous prefix
	Total       int            `json:"total"` // == Spec.Runs
	DoneRanges  []Range        `json:"done_ranges,omitempty"`
	Tally       campaign.Tally `json:"tally"`
	FR          float64        `json:"fr"`           // failure rate of the partial tally
	ErrMargin99 float64        `json:"err_margin99"` // normal-approx ±CI half-width at current n
	Margin99    float64        `json:"margin99"`     // Wilson-score ±CI half-width (honest at p=0/1)
	// Stashed counts runs executed (locally or by fleet workers) whose
	// tallies wait for an earlier gap to close before merging; InFlight
	// counts runs currently claimed by a lane chunk or an open lease.
	Stashed  int `json:"stashed,omitempty"`
	InFlight int `json:"in_flight,omitempty"`
	// EarlyStopped marks an adaptive job that met its margin target before
	// exhausting the run budget; RunsSaved is the unexecuted remainder.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	RunsSaved    int  `json:"runs_saved,omitempty"`
	// ForkResumes/ConvergeHits count the job's checkpoint-accelerated runs
	// (resumed from a golden snapshot / joined back to golden early).
	// Process-local and exact with one shard; with several shards,
	// concurrent jobs sharing an app's golden run may attribute each other's
	// hits. Not journaled: a restart restarts them at zero.
	ForkResumes  int64  `json:"fork_resumes,omitempty"`
	ConvergeHits int64  `json:"converge_hits,omitempty"`
	Error        string `json:"error,omitempty"`
	// Deprecation carries a note when the job was submitted with the
	// deprecated flat spec fields.
	Deprecation string `json:"deprecation,omitempty"`
	Created     int64  `json:"created_unix"`
	Started     int64  `json:"started_unix,omitempty"`
	Finished    int64  `json:"finished_unix,omitempty"`
}

// Event is one NDJSON line of a job's progress stream.
type Event struct {
	// Type: "status" (initial snapshot), "progress" (a chunk completed),
	// or a terminal state name ("done" | "failed" | "canceled").
	Type string    `json:"type"`
	Job  JobStatus `json:"job"`
}

// job is the scheduler-internal mutable state behind a JobStatus. Completed
// work lives in the prefix merger; the work ledger (pending/claimed ranges)
// is what local lanes and fleet leases claim from.
type job struct {
	id      string
	spec    JobSpec
	created time.Time

	mu        sync.Mutex
	state     JobState
	merger    *campaign.PrefixMerger // ordered tally of the merged prefix
	pending   []Range                // normalized unclaimed run-ranges
	claimed   []Range                // claimed by a lane chunk or open lease
	early     bool                   // adaptive stop rule fired before the budget ran out
	forks     int64
	converges int64
	errmsg    string
	started   time.Time
	finished  time.Time
	canceled  bool
	subs      map[int]chan Event
	nextSub   int
}

// newJob builds a fresh job with its full run budget pending.
func newJob(id string, spec JobSpec, created time.Time) *job {
	return &job{
		id: id, spec: spec, created: created,
		state:   StateQueued,
		merger:  campaign.NewPrefixMerger(),
		pending: []Range{{From: 0, To: spec.Runs}},
	}
}

func (j *job) snapshotLocked() JobStatus {
	tally := j.merger.Tally()
	done := j.merger.To()
	st := JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Done:        done,
		Total:       j.spec.Runs,
		Tally:       tally,
		FR:          tally.FR(),
		ErrMargin99: tally.ErrMargin99(),
		Margin99:    tally.Margin99(),
		Stashed:     j.merger.StashedRuns(),
		InFlight:    rangesLen(j.claimed),
		Error:       j.errmsg,
		Created:     j.created.Unix(),
	}
	if done > 0 {
		st.DoneRanges = []Range{{From: 0, To: done}}
	}
	if j.spec.legacyFlat {
		st.Deprecation = DeprecationNote
	}
	if j.early {
		st.EarlyStopped = true
		st.RunsSaved = st.Total - st.Done
	}
	st.ForkResumes = j.forks
	st.ConvergeHits = j.converges
	if !j.started.IsZero() {
		st.Started = j.started.Unix()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Unix()
	}
	return st
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// publishLocked fans an event out to subscribers. Slow consumers lose the
// oldest buffered event rather than stalling the scheduler; terminal events
// therefore always land (the buffer never stays full against them).
func (j *job) publishLocked(typ string) {
	ev := Event{Type: typ, Job: j.snapshotLocked()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Buffer full: drop the oldest event to make room. Only the job
			// owner's lock holder publishes, so the retry cannot race
			// another producer and always succeeds.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

func (j *job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs == nil {
		j.subs = map[int]chan Event{}
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan Event, 64)
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}
