// Tests for the checkpointed fork-and-join wiring: wire-spec mapping,
// per-job fork/converge attribution, the /metrics exposition, and the
// injected scheduler clock.
package service_test

import (
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/microfi"
	"gpurel/internal/service"
)

func TestCheckpointSpecWire(t *testing.T) {
	sp := service.JobSpec{
		Layer: "micro", App: "VA", Kernel: "K1", Structure: "RF",
		Runs: 10, Seed: 1,
		Checkpoint: &service.SnapshotSpec{Stride: 500, BudgetMB: 64, Converge: true},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := sp.Point()
	if err != nil {
		t.Fatal(err)
	}
	want := &microfi.CheckpointSpec{Stride: 500, BudgetBytes: 64 << 20, Converge: true}
	if p.Checkpoint == nil || *p.Checkpoint != *want {
		t.Fatalf("Point checkpoint = %+v, want %+v", p.Checkpoint, want)
	}

	// SpecForPoint is the inverse mapping.
	back := service.SpecForPoint(p, campaign.Options{Runs: 10, Seed: 1})
	if ck := back.Checkpoint; ck == nil || ck.Stride != 500 || ck.BudgetMB != 64 || !ck.Converge {
		t.Fatalf("SpecForPoint lost checkpoint fields: %+v", back)
	}

	// Converge alone implies auto-stride checkpointing.
	sp.Checkpoint = &service.SnapshotSpec{Converge: true}
	p, err = sp.Point()
	if err != nil {
		t.Fatal(err)
	}
	if p.Checkpoint == nil || p.Checkpoint.Stride != microfi.AutoStride || !p.Checkpoint.Converge {
		t.Fatalf("converge-only spec: %+v", p.Checkpoint)
	}

	// Neither set: no checkpointing requested.
	sp.Checkpoint = nil
	if p, _ = sp.Point(); p.Checkpoint != nil {
		t.Fatalf("plain spec grew a checkpoint: %+v", p.Checkpoint)
	}
}

// TestCheckpointCountersAndClock: per-job fork/converge attribution via
// CheckpointStats deltas, the new /metrics lines, and the injected clock
// stamping job lifecycle times.
func TestCheckpointCountersAndClock(t *testing.T) {
	var forks, converges atomic.Int64
	src := func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			// Every run forks; every third converges — mimicking what the
			// study-side golden run counters would record.
			forks.Add(1)
			if run%3 == 0 {
				converges.Add(1)
			}
			return faults.Result{Outcome: faults.Masked}
		}, nil
	}
	frozen := time.Unix(1_700_000_000, 0)
	sched, srv := newTestServer(t, service.Config{
		Source: src,
		Now:    func() time.Time { return frozen },
		CheckpointStats: func() microfi.CheckpointCounts {
			return microfi.CheckpointCounts{
				ForkResumes:  forks.Load(),
				ConvergeHits: converges.Load(),
				Snapshots:    4,
			}
		},
	})

	const runs = 30
	st, err := sched.Submit(service.JobSpec{
		Layer: "micro", App: "VA", Kernel: "K1", Runs: runs, Seed: 1,
		Checkpoint: &service.SnapshotSpec{Stride: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.State != service.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		st, _ = sched.Get(st.ID)
	}
	if st.ForkResumes != runs {
		t.Errorf("job attributed %d fork resumes, want %d", st.ForkResumes, runs)
	}
	if want := int64((runs + 2) / 3); st.ConvergeHits != want {
		t.Errorf("job attributed %d converge hits, want %d", st.ConvergeHits, want)
	}
	if st.Created != frozen.Unix() || st.Started != frozen.Unix() || st.Finished != frozen.Unix() {
		t.Errorf("lifecycle stamps ignore the injected clock: %+v", st)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"gpureld_fork_resumes_total 30",
		"gpureld_converge_hits_total 10",
		"gpureld_checkpoint_snapshots 4",
		"gpureld_fork_cycles_saved_total 0",
		"gpureld_converge_cycles_saved_total 0",
		"gpureld_checkpoint_bytes 0",
		"gpureld_checkpoint_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
