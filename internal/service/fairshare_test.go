// Fair-share scheduler properties: the claim schedule is a deterministic
// function of the job table, single-tenant workloads reduce exactly to the
// pre-tenancy submission order, weighted tenants receive proportional
// shares, and no tenant with pending work starves.
package service_test

import (
	"fmt"
	"testing"

	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

// claimSched builds a local-execution-disabled scheduler whose work ledger
// is drained manually through ClaimWork, the way a fleet coordinator does.
func claimSched(t *testing.T) *service.Scheduler {
	t.Helper()
	sched, err := service.NewScheduler(service.Config{
		Source:           fakeSource(0),
		DisableLocalExec: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	return sched
}

// claim is one recorded ClaimWork grant.
type claim struct {
	JobID    string
	From, To int
}

// drainClaims claims chunk-run grants until the ledger is empty, returning
// the full schedule.
func drainClaims(t *testing.T, sched *service.Scheduler, chunk int) []claim {
	t.Helper()
	var out []claim
	for {
		wa, ok := sched.ClaimWork(chunk)
		if !ok {
			return out
		}
		out = append(out, claim{JobID: wa.JobID, From: wa.From, To: wa.To})
		if len(out) > 100000 {
			t.Fatal("claim schedule does not terminate")
		}
	}
}

// submitTenant files one job for a tenant and returns its ID.
func submitTenant(t *testing.T, sched *service.Scheduler, tenant string, prio, runs int) string {
	t.Helper()
	st, err := sched.Submit(service.JobSpec{
		Layer: "micro", App: "fake", Kernel: "K1", Runs: runs, Seed: 1,
		Tenant: tenant, Priority: prio,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestFairShareSingleTenantIdentical: with one tenant and default
// priorities the fair-share scheduler degenerates to the pre-tenancy
// behavior — jobs drain whole, in submission order, in contiguous
// run-ranges.
func TestFairShareSingleTenantIdentical(t *testing.T) {
	sched := claimSched(t)
	a := submitTenant(t, sched, "", 0, 250)
	b := submitTenant(t, sched, "", 0, 100)
	got := drainClaims(t, sched, 100)

	want := []claim{
		{a, 0, 100}, {a, 100, 200}, {a, 200, 250},
		{b, 0, 100},
	}
	if len(got) != len(want) {
		t.Fatalf("schedule length %d, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claim %d = %+v, want %+v (full: %+v)", i, got[i], want[i], got)
		}
	}
}

// TestFairShareDeterministic: the same submissions yield bit-identical claim
// schedules on independent schedulers — the fleet's recovery guarantees rest
// on this.
func TestFairShareDeterministic(t *testing.T) {
	build := func() ([]claim, []string) {
		sched := claimSched(t)
		ids := []string{
			submitTenant(t, sched, "alice", 0, 300),
			submitTenant(t, sched, "bob", 2, 300),
			submitTenant(t, sched, "alice", 5, 200),
			submitTenant(t, sched, "", 0, 150),
		}
		return drainClaims(t, sched, 50), ids
	}
	s1, ids1 := build()
	s2, ids2 := build()
	if len(s1) != len(s2) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(s1), len(s2))
	}
	// Job IDs are per-scheduler; compare by submission index.
	idx := func(ids []string, job string) int {
		for i, id := range ids {
			if id == job {
				return i
			}
		}
		return -1
	}
	for i := range s1 {
		a := claim{fmt.Sprint(idx(ids1, s1[i].JobID)), s1[i].From, s1[i].To}
		b := claim{fmt.Sprint(idx(ids2, s2[i].JobID)), s2[i].From, s2[i].To}
		if a != b {
			t.Fatalf("schedules diverge at claim %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestFairSharePriorityWithinTenant: inside one tenant, a higher-priority
// job drains before earlier-submitted lower-priority work.
func TestFairSharePriorityWithinTenant(t *testing.T) {
	sched := claimSched(t)
	low := submitTenant(t, sched, "team", 1, 100)
	high := submitTenant(t, sched, "team", 9, 100)
	got := drainClaims(t, sched, 100)
	want := []claim{{high, 0, 100}, {low, 0, 100}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("schedule %+v, want %+v", got, want)
	}
}

// TestFairShareWeightedShares: over a prefix of the schedule, a weight-3
// tenant receives about three times the runs of a weight-1 tenant.
func TestFairShareWeightedShares(t *testing.T) {
	sched := claimSched(t)
	heavy := submitTenant(t, sched, "heavy", 3, 3000)
	light := submitTenant(t, sched, "light", 1, 3000)

	// Sample the shares while both tenants still have pending work: the
	// first 1200 runs (24 claims of 50).
	runs := map[string]int{}
	for i := 0; i < 24; i++ {
		wa, ok := sched.ClaimWork(50)
		if !ok {
			t.Fatal("ledger drained early")
		}
		runs[wa.JobID] += wa.To - wa.From
	}
	h, l := runs[heavy], runs[light]
	if h+l != 1200 {
		t.Fatalf("accounting broken: heavy %d + light %d != 1200", h, l)
	}
	// Ideal split is 900/300; claim granularity (50 runs charged at 50/3
	// vs 50 virtual time) wobbles it by at most one claim each way.
	if h < 800 || h > 1000 {
		t.Errorf("weight-3 tenant got %d of 1200 runs, want ~900", h)
	}
}

// TestFairShareStarvationFree: with many tenants at spread-out weights,
// every tenant with pending work is served within a bounded window — no
// tenant waits on the others indefinitely.
func TestFairShareStarvationFree(t *testing.T) {
	sched := claimSched(t)
	const tenants, runsEach, chunk = 5, 400, 20
	jobs := map[string]string{} // job ID -> tenant
	weights := map[string]int{}
	totalWeight := 0
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		w := i + 1 // weights 1..5
		jobs[submitTenant(t, sched, name, w, runsEach)] = name
		weights[name] = w
		totalWeight += w
	}

	pending := map[string]int{}
	for _, name := range jobs {
		pending[name] += runsEach
	}
	lastServed := map[string]int{}
	sched.ClaimWork(0) // no-op guard: zero max claims nothing
	for i := 0; ; i++ {
		wa, ok := sched.ClaimWork(chunk)
		if !ok {
			break
		}
		tenant := jobs[wa.JobID]
		pending[tenant] -= wa.To - wa.From
		lastServed[tenant] = i
		// Starvation bound: while a tenant has pending work, the gap since
		// its last serve cannot exceed the claims the whole fleet of other
		// tenants can squeeze into one of its virtual-time steps — at most
		// totalWeight/weight claims, padded by one boundary claim per tenant.
		for name, p := range pending {
			if p <= 0 {
				continue
			}
			gap := i - lastServed[name]
			bound := totalWeight/weights[name] + tenants + 1
			if gap > bound {
				t.Fatalf("tenant %s (weight %d) starved: %d claims since last serve at claim %d (bound %d)",
					name, weights[name], gap, i, bound)
			}
		}
	}
	for name, p := range pending {
		if p != 0 {
			t.Errorf("tenant %s left with %d pending runs", name, p)
		}
	}
}

// TestFairShareTenantsAccounting: the Tenants() document partitions each
// tenant's runs across pending/in-flight/done and tracks the active weight.
func TestFairShareTenantsAccounting(t *testing.T) {
	sched := claimSched(t)
	id := submitTenant(t, sched, "acct", 4, 300)
	submitTenant(t, sched, "other", 0, 100)

	wa, ok := sched.ClaimWork(120)
	if !ok || wa.JobID != id {
		t.Fatalf("claim = %+v %v, want job %s", wa, ok, id)
	}
	if _, _, err := sched.ReportWork(id, wa.From, wa.From+60, campaign.Tally{N: 60}); err != nil {
		t.Fatal(err)
	}

	var acct *service.TenantStatus
	for _, ts := range sched.Tenants() {
		if ts.Tenant == "acct" {
			cp := ts
			acct = &cp
		}
	}
	if acct == nil {
		t.Fatal("tenant acct missing from Tenants()")
	}
	if acct.Weight != 4 || acct.ActiveJobs != 1 || acct.TotalJobs != 1 {
		t.Errorf("tenant header = %+v", acct)
	}
	if acct.DoneRuns != 60 || acct.InFlightRuns != 60 || acct.PendingRuns != 180 {
		t.Errorf("run partition = done %d, in-flight %d, pending %d; want 60/60/180",
			acct.DoneRuns, acct.InFlightRuns, acct.PendingRuns)
	}
}

// TestReclaimWork: restoring a journaled lease re-pins its pending remainder
// as in-flight (so it is not granted twice) and refuses gone or terminal
// jobs.
func TestReclaimWork(t *testing.T) {
	sched := claimSched(t)
	id := submitTenant(t, sched, "", 0, 200)

	// Simulate a coordinator crash: the lease [0,100) was granted and its
	// worker reported [0,40) before the crash; the restarted coordinator
	// reclaims the remainder.
	wa, ok := sched.ClaimWork(100)
	if !ok {
		t.Fatal("no work")
	}
	if _, _, err := sched.ReportWork(id, 0, 40, campaign.Tally{N: 40}); err != nil {
		t.Fatal(err)
	}
	// The crash dropped the in-flight pin: everything unmerged is pending
	// again (ReturnWork is what a journal-less Close does).
	sched.ReturnWork(id, wa.From, wa.To)

	if !sched.ReclaimWork(id, wa.From, wa.To) {
		t.Fatal("ReclaimWork refused a live job")
	}
	// The reclaimed range must not be claimable: only [100,200) remains.
	got := drainClaims(t, sched, 500)
	if len(got) != 1 || got[0] != (claim{id, 100, 200}) {
		t.Fatalf("post-reclaim schedule %+v, want [{%s 100 200}]", got, id)
	}

	if sched.ReclaimWork("nosuchjob", 0, 10) {
		t.Error("ReclaimWork accepted an unknown job")
	}
}
