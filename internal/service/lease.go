package service

import "gpurel/internal/campaign"

// Lease-protocol wire types (v1). The types live here — not in
// internal/fleet — so the client package and the fleet package share one
// schema without an import cycle through the service.
//
// Protocol summary (served by fleet.Coordinator, mounted on the /v1 mux):
//
//	POST   /v1/leases                 LeaseRequest -> 200 Lease | 204 no work
//	POST   /v1/leases/{id}/report     LeaseReport  -> 200 LeaseAck | 410 gone
//	POST   /v1/leases/{id}/heartbeat  -> 204 | 410 gone
//	DELETE /v1/leases/{id}            return unexecuted remainder -> 204
//
// A lease is a claimed run-range with a heartbeat deadline. Reports cover
// prefix sub-ranges of the lease and double as heartbeats; the coordinator
// shrinks the remainder as reports land. A lease whose deadline passes is
// expired: its remainder is requeued exactly once (the lease is deleted, so
// a second expiry cannot happen), and any late report from the original
// worker merges idempotently by run-range — deterministic seeding makes the
// re-run bit-identical, so double execution can never double-count.

// LeaseRequest asks the coordinator for a run-range to execute.
type LeaseRequest struct {
	// Worker identifies the requester in metrics and logs.
	Worker string `json:"worker"`
	// MaxRuns caps the granted range (0 = coordinator default).
	MaxRuns int `json:"max_runs,omitempty"`
}

// Lease is a granted run-range with everything a worker needs to execute it:
// the job's full spec (the worker resolves its own experiment from it) and
// the half-open run interval. The worker must report or heartbeat before
// TTLSec elapses or the coordinator requeues the remainder.
type Lease struct {
	ID     string  `json:"id"`
	JobID  string  `json:"job_id"`
	Spec   JobSpec `json:"spec"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	TTLSec float64 `json:"ttl_sec"`
}

// LeaseReport carries the tally of one completed prefix sub-range of the
// lease. Done marks the final report of the lease.
type LeaseReport struct {
	Worker string         `json:"worker"`
	From   int            `json:"from"`
	To     int            `json:"to"`
	Tally  campaign.Tally `json:"tally"`
	Done   bool           `json:"done,omitempty"`
}

// LeaseAck answers a report.
type LeaseAck struct {
	// Accepted is false when the runs were already covered (idempotent
	// duplicate) — harmless, the worker continues.
	Accepted bool `json:"accepted"`
	// Canceled tells the worker to abandon the rest of this lease: the job
	// reached a terminal state (canceled, failed, or adaptively
	// early-stopped).
	Canceled bool `json:"canceled,omitempty"`
	// TTLSec refreshes the lease deadline.
	TTLSec float64 `json:"ttl_sec,omitempty"`
}
