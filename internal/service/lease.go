package service

import (
	"bytes"
	"encoding/json"
	"fmt"

	"gpurel/internal/campaign"
)

// Lease-protocol wire types (v1). The types live here — not in
// internal/fleet — so the client package and the fleet package share one
// schema without an import cycle through the service.
//
// Protocol summary (served by fleet.Coordinator, mounted on the /v1 mux):
//
//	POST   /v1/leases                 LeaseRequest -> 200 Lease | 204 no work
//	POST   /v1/leases/{id}/report     LeaseReport  -> 200 LeaseAck | 410 gone
//	POST   /v1/leases/{id}/heartbeat  -> 204 | 410 gone
//	DELETE /v1/leases/{id}            return unexecuted remainder -> 204
//
// A lease is a claimed run-range with a heartbeat deadline. Reports cover
// prefix sub-ranges of the lease and double as heartbeats; the coordinator
// shrinks the remainder as reports land. A lease whose deadline passes is
// expired: its remainder is requeued exactly once (the lease is deleted, so
// a second expiry cannot happen), and any late report from the original
// worker merges idempotently by run-range — deterministic seeding makes the
// re-run bit-identical, so double execution can never double-count.
//
// The v1 schema nests requests under envelope keys — {"lease":{...}} for
// requests, {"report":{...}} for reports — matching the job spec's grouped
// style. The pre-v1 bare spellings are still accepted on decode but are
// deprecated and never emitted; responses carry a deprecation note when the
// request used them.

// LeaseRequest asks the coordinator for a run-range to execute. v1 wire
// form nests it under "lease":
//
//	{"lease":{"worker":"w1","max_runs":256,"runs_per_sec":42.5}}
type LeaseRequest struct {
	// Worker identifies the requester in the registry, metrics and logs.
	Worker string `json:"worker"`
	// MaxRuns caps the granted range (0 = coordinator default).
	MaxRuns int `json:"max_runs,omitempty"`
	// RunsPerSec is the worker's current measured throughput (its
	// calibration micro-burst, refined by live chunk timings). The
	// coordinator folds it into the registry's capability record and sizes
	// the grant from it; 0 = unknown.
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`

	// legacyFlat records that the request was decoded from the deprecated
	// bare (un-enveloped) form; the coordinator surfaces a deprecation note
	// in the granted lease.
	legacyFlat bool
}

// leaseRequestBody is the inner object of the request envelope.
type leaseRequestBody struct {
	Worker     string  `json:"worker"`
	MaxRuns    int     `json:"max_runs,omitempty"`
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// leaseRequestWire is the superset decode target: the v1 envelope plus the
// deprecated bare spelling. Pointers distinguish "absent" from zero so
// mixing the two forms can be rejected instead of silently resolved.
type leaseRequestWire struct {
	Lease *leaseRequestBody `json:"lease"`

	Worker     *string  `json:"worker"`
	MaxRuns    *int     `json:"max_runs"`
	RunsPerSec *float64 `json:"runs_per_sec"`
}

// UnmarshalJSON decodes both the v1 envelope and the deprecated bare form.
// Unknown fields are rejected; mixing the two spellings is an error.
func (lr *LeaseRequest) UnmarshalJSON(data []byte) error {
	var w leaseRequestWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	flat := w.Worker != nil || w.MaxRuns != nil || w.RunsPerSec != nil
	if w.Lease != nil {
		if flat {
			return fmt.Errorf(`lease request mixes the nested "lease" envelope with deprecated bare fields (worker/max_runs)`)
		}
		*lr = LeaseRequest{Worker: w.Lease.Worker, MaxRuns: w.Lease.MaxRuns, RunsPerSec: w.Lease.RunsPerSec}
		return nil
	}
	*lr = LeaseRequest{legacyFlat: true}
	if w.Worker != nil {
		lr.Worker = *w.Worker
	}
	if w.MaxRuns != nil {
		lr.MaxRuns = *w.MaxRuns
	}
	if w.RunsPerSec != nil {
		lr.RunsPerSec = *w.RunsPerSec
	}
	return nil
}

// MarshalJSON always emits the v1 envelope.
func (lr LeaseRequest) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Lease leaseRequestBody `json:"lease"`
	}{leaseRequestBody{Worker: lr.Worker, MaxRuns: lr.MaxRuns, RunsPerSec: lr.RunsPerSec}})
}

// LegacyFlat reports whether the request was decoded from the deprecated
// bare wire form (the pre-v1 schema).
func (lr LeaseRequest) LegacyFlat() bool { return lr.legacyFlat }

// Validate rejects malformed lease requests.
func (lr LeaseRequest) Validate() error {
	if lr.MaxRuns < 0 {
		return fmt.Errorf("lease.max_runs must be non-negative, got %d", lr.MaxRuns)
	}
	if lr.RunsPerSec < 0 {
		return fmt.Errorf("lease.runs_per_sec must be non-negative, got %g", lr.RunsPerSec)
	}
	return nil
}

// LeaseDeprecationNote is the response annotation attached to leases granted
// from the deprecated bare request form.
const LeaseDeprecationNote = `bare lease requests are deprecated; nest the fields under "lease" (docs/fleet.md)`

// Lease is a granted run-range with everything a worker needs to execute it:
// the job's full spec (the worker resolves its own experiment from it) and
// the half-open run interval. The worker must report or heartbeat before
// TTLSec elapses or the coordinator requeues the remainder. On the wire it
// is nested under "lease" (symmetric with the request envelope); the bare
// form is still accepted on decode for older coordinators.
type Lease struct {
	ID     string  `json:"id"`
	JobID  string  `json:"job_id"`
	Spec   JobSpec `json:"spec"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	TTLSec float64 `json:"ttl_sec"`
	// Deprecation carries a note when the request used the deprecated bare
	// wire form.
	Deprecation string `json:"deprecation,omitempty"`
}

// leaseBody mirrors Lease for the envelope round-trip (no methods, so the
// custom Marshal/Unmarshal cannot recurse).
type leaseBody struct {
	ID          string  `json:"id"`
	JobID       string  `json:"job_id"`
	Spec        JobSpec `json:"spec"`
	From        int     `json:"from"`
	To          int     `json:"to"`
	TTLSec      float64 `json:"ttl_sec"`
	Deprecation string  `json:"deprecation,omitempty"`
}

type leaseWire struct {
	Lease *leaseBody `json:"lease,omitempty"`
	leaseBody
}

// MarshalJSON emits the v1 envelope.
func (l Lease) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Lease leaseBody `json:"lease"`
	}{leaseBody(l)})
}

// UnmarshalJSON accepts the v1 envelope and the bare legacy form.
func (l *Lease) UnmarshalJSON(data []byte) error {
	var w leaseWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Lease != nil {
		*l = Lease(*w.Lease)
		return nil
	}
	*l = Lease(w.leaseBody)
	return nil
}

// LeaseReport carries the tally of one completed prefix sub-range of the
// lease. Done marks the final report of the lease. v1 wire form nests it
// under "report":
//
//	{"report":{"worker":"w1","from":0,"to":100,"tally":{...},"done":false}}
type LeaseReport struct {
	Worker string         `json:"worker"`
	From   int            `json:"from"`
	To     int            `json:"to"`
	Tally  campaign.Tally `json:"tally"`
	Done   bool           `json:"done,omitempty"`

	// legacyFlat records a deprecated bare-form decode (see LeaseRequest).
	legacyFlat bool
}

type leaseReportBody struct {
	Worker string         `json:"worker"`
	From   int            `json:"from"`
	To     int            `json:"to"`
	Tally  campaign.Tally `json:"tally"`
	Done   bool           `json:"done,omitempty"`
}

type leaseReportWire struct {
	Report *leaseReportBody `json:"report"`

	Worker *string         `json:"worker"`
	From   *int            `json:"from"`
	To     *int            `json:"to"`
	Tally  *campaign.Tally `json:"tally"`
	Done   *bool           `json:"done"`
}

// UnmarshalJSON decodes both the v1 envelope and the deprecated bare form;
// mixing the two spellings is an error.
func (rep *LeaseReport) UnmarshalJSON(data []byte) error {
	var w leaseReportWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	flat := w.Worker != nil || w.From != nil || w.To != nil || w.Tally != nil || w.Done != nil
	if w.Report != nil {
		if flat {
			return fmt.Errorf(`lease report mixes the nested "report" envelope with deprecated bare fields`)
		}
		*rep = LeaseReport{Worker: w.Report.Worker, From: w.Report.From, To: w.Report.To,
			Tally: w.Report.Tally, Done: w.Report.Done}
		return nil
	}
	*rep = LeaseReport{legacyFlat: true}
	if w.Worker != nil {
		rep.Worker = *w.Worker
	}
	if w.From != nil {
		rep.From = *w.From
	}
	if w.To != nil {
		rep.To = *w.To
	}
	if w.Tally != nil {
		rep.Tally = *w.Tally
	}
	if w.Done != nil {
		rep.Done = *w.Done
	}
	return nil
}

// MarshalJSON always emits the v1 envelope.
func (rep LeaseReport) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Report leaseReportBody `json:"report"`
	}{leaseReportBody{Worker: rep.Worker, From: rep.From, To: rep.To, Tally: rep.Tally, Done: rep.Done}})
}

// LegacyFlat reports whether the report was decoded from the deprecated
// bare wire form.
func (rep LeaseReport) LegacyFlat() bool { return rep.legacyFlat }

// LeaseAck answers a report. On the wire it is nested under "ack"; the bare
// form is accepted on decode for older coordinators.
type LeaseAck struct {
	// Accepted is false when the runs were already covered (idempotent
	// duplicate) — harmless, the worker continues.
	Accepted bool `json:"accepted"`
	// Canceled tells the worker to abandon the rest of this lease: the job
	// reached a terminal state (canceled, failed, or adaptively
	// early-stopped).
	Canceled bool `json:"canceled,omitempty"`
	// TTLSec refreshes the lease deadline.
	TTLSec float64 `json:"ttl_sec,omitempty"`
	// Deprecation carries a note when the report used the deprecated bare
	// wire form.
	Deprecation string `json:"deprecation,omitempty"`
}

type leaseAckBody struct {
	Accepted    bool    `json:"accepted"`
	Canceled    bool    `json:"canceled,omitempty"`
	TTLSec      float64 `json:"ttl_sec,omitempty"`
	Deprecation string  `json:"deprecation,omitempty"`
}

type leaseAckWire struct {
	Ack *leaseAckBody `json:"ack,omitempty"`
	leaseAckBody
}

// MarshalJSON emits the v1 envelope.
func (a LeaseAck) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Ack leaseAckBody `json:"ack"`
	}{leaseAckBody(a)})
}

// UnmarshalJSON accepts the v1 envelope and the bare legacy form.
func (a *LeaseAck) UnmarshalJSON(data []byte) error {
	var w leaseAckWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Ack != nil {
		*a = LeaseAck(*w.Ack)
		return nil
	}
	*a = LeaseAck(w.leaseAckBody)
	return nil
}
