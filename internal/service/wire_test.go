// Golden wire-format tests: the deprecated flat job spec and the nested v1
// spec in testdata/ must decode to the same campaign point, and encoding
// always emits the nested schema — the flat spelling exists only on the way
// in.
package service_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpurel/internal/service"
)

func loadSpec(t *testing.T, name string) service.JobSpec {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var sp service.JobSpec
	if err := json.Unmarshal(raw, &sp); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return sp
}

// TestGoldenWireFixtures: both fixture spellings validate, decode to the
// same nested groups and bit-identical campaign points, and only the legacy
// one is flagged deprecated.
func TestGoldenWireFixtures(t *testing.T) {
	legacy := loadSpec(t, "jobspec_legacy.json")
	nested := loadSpec(t, "jobspec_nested.json")

	if !legacy.LegacyFlat() {
		t.Error("legacy fixture not flagged as flat")
	}
	if nested.LegacyFlat() {
		t.Error("nested fixture flagged as flat")
	}
	for name, sp := range map[string]service.JobSpec{"legacy": legacy, "nested": nested} {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s fixture invalid: %v", name, err)
		}
	}

	// The decoded groups are identical…
	if !reflect.DeepEqual(legacy.Sampling, nested.Sampling) {
		t.Errorf("sampling differs: legacy %+v, nested %+v", legacy.Sampling, nested.Sampling)
	}
	if !reflect.DeepEqual(legacy.Checkpoint, nested.Checkpoint) {
		t.Errorf("checkpoint differs: legacy %+v, nested %+v", legacy.Checkpoint, nested.Checkpoint)
	}

	// …and so are the campaign points they resolve to.
	lp, err := legacy.Point()
	if err != nil {
		t.Fatal(err)
	}
	np, err := nested.Point()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lp, np) {
		t.Errorf("points differ:\nlegacy %+v\nnested %+v", lp, np)
	}
	if lp.Sampling == nil || lp.Sampling.Margin != 0.025 || lp.Sampling.Batch != 250 || !lp.Sampling.Prune {
		t.Errorf("sampling policy lost in decode: %+v", lp.Sampling)
	}
	if lp.Checkpoint == nil || lp.Checkpoint.Stride != 500 || lp.Checkpoint.BudgetBytes != 64<<20 || !lp.Checkpoint.Converge {
		t.Errorf("checkpoint spec lost in decode: %+v", lp.Checkpoint)
	}
}

// TestWireRoundTripEncodesNested: re-encoding any decoded spec — even one
// that arrived flat — emits only the nested v1 schema, and the re-decoded
// spec is no longer flagged deprecated.
func TestWireRoundTripEncodesNested(t *testing.T) {
	for _, name := range []string{"jobspec_legacy.json", "jobspec_nested.json"} {
		sp := loadSpec(t, name)
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}

		var top map[string]json.RawMessage
		if err := json.Unmarshal(out, &top); err != nil {
			t.Fatal(err)
		}
		for _, flat := range []string{"margin99", "batch", "prune", "snap_stride", "snap_mb", "converge"} {
			if _, ok := top[flat]; ok {
				t.Errorf("%s round-trip leaked flat key %q: %s", name, flat, out)
			}
		}
		for _, group := range []string{"sampling", "checkpoint"} {
			if _, ok := top[group]; !ok {
				t.Errorf("%s round-trip missing nested group %q: %s", name, group, out)
			}
		}

		var back service.JobSpec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatal(err)
		}
		if back.LegacyFlat() {
			t.Errorf("%s re-decoded round-trip still flagged flat", name)
		}
		bp, err := back.Point()
		if err != nil {
			t.Fatal(err)
		}
		op, err := sp.Point()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bp, op) {
			t.Errorf("%s round-trip changed the campaign point:\nbefore %+v\nafter  %+v", name, op, bp)
		}
	}
}
