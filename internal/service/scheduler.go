package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/microfi"
)

// SourceFunc resolves a job spec to its injection experiment. The
// production source wraps *gpurel.Study (NewStudySource), which memoises
// golden runs so concurrent jobs against the same app share them; tests
// substitute synthetic experiments.
type SourceFunc func(spec JobSpec) (campaign.Experiment, error)

// Config sizes the scheduler.
type Config struct {
	// Source is required.
	Source SourceFunc
	// Shards is the number of independent job lanes; each lane executes
	// one job at a time, chunk by chunk (default 1). Jobs hash to a lane
	// by ID, so lane order is FIFO per lane.
	Shards int
	// WorkersPerShard bounds the campaign workers each lane uses inside a
	// chunk (default GOMAXPROCS). Total injection parallelism is bounded
	// by Shards × WorkersPerShard.
	WorkersPerShard int
	// ChunkSize is the run-range granularity of checkpoints and progress
	// events (default 100 runs).
	ChunkSize int
	// QueueDepth bounds each lane's backlog (default 256); Submit fails
	// once a lane is full.
	QueueDepth int
	// DisableLocalExec turns the lanes off: jobs make progress only through
	// ClaimWork/ReportWork — i.e. fleet workers. For dedicated coordinators
	// and scaling benchmarks; the default (false) degrades gracefully to
	// in-process execution when no workers are joined.
	DisableLocalExec bool
	// CheckpointPath, when set, enables the journal: jobs are persisted
	// there and incomplete ones resume on the next New with the same path.
	CheckpointPath string
	// CheckpointInterval is the periodic flush cadence (default 2s).
	CheckpointInterval time.Duration
	// Counters, when set, is the study-side sampling-efficiency aggregate
	// (simulated runs, liveness prune hits) shared with the experiment
	// source; /metrics exports it alongside the scheduler's own counters.
	Counters *adaptive.Counters
	// CheckpointStats, when set, reads the study-side fork-and-join
	// aggregate (checkpoint resumes, convergence joins); /metrics exports
	// it and the lanes attribute per-chunk deltas to the running job.
	CheckpointStats func() microfi.CheckpointCounts
	// Now is the scheduler's clock (default time.Now); tests inject a fake
	// for deterministic timestamps and deadline behavior.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 100
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// starvedPoll is how often a lane re-checks a job whose pending list is
// empty but whose claimed/stashed work (held by fleet leases) is still
// outstanding.
const starvedPoll = 25 * time.Millisecond

// errQueueFull marks a submission rejected because the job's lane backlog is
// at capacity; the API maps it to 429 + ErrCodeQueueFull.
var errQueueFull = errors.New("job queue full")

// Scheduler owns the job table, the work ledger, and the sharded lanes.
type Scheduler struct {
	cfg     Config
	metrics *Metrics

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing and within-tenant fairness
	// vtime is the weighted fair-share virtual time per active tenant — see
	// fairshare.go.
	vtime map[string]float64

	queues []chan *job
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
	dirty  atomic.Bool
}

// NewScheduler builds a scheduler, resumes any incomplete jobs found in the
// checkpoint journal, and starts the worker lanes.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.Source == nil {
		return nil, fmt.Errorf("service: Config.Source is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:     cfg,
		metrics: newMetrics(cfg.Counters, cfg.Now, cfg.CheckpointStats),
		jobs:    map[string]*job{},
		vtime:   map[string]float64{},
		queues:  make([]chan *job, cfg.Shards),
		ctx:     ctx,
		cancel:  cancel,
	}
	for i := range s.queues {
		s.queues[i] = make(chan *job, cfg.QueueDepth)
	}

	if cfg.CheckpointPath != "" {
		saved, err := loadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			cancel()
			return nil, err
		}
		for _, jc := range saved {
			j := newJob(jc.ID, jc.Spec, time.Unix(jc.Created, 0))
			j.state = jc.State
			j.early = jc.EarlyStopped
			j.errmsg = jc.Error
			// The journal always covers a single prefix [0, k): completed
			// work only becomes durable once contiguous. (An older journal
			// with disjoint ranges would restart the job from scratch —
			// deterministic seeding makes that merely recomputation.)
			if done := normalizeRanges(jc.Done); len(done) == 1 && done[0].From == 0 {
				j.merger.Seed(done[0].To, jc.Tally)
			}
			if j.state.Terminal() {
				j.pending = nil
			} else {
				j.pending = complementRanges([]Range{{From: 0, To: j.merger.To()}}, jc.Spec.Runs)
			}
			// A job that was mid-flight when the previous process stopped
			// resumes from its first unexecuted run index.
			if j.state == StateRunning || j.state == StateQueued {
				j.state = StateQueued
				s.metrics.jobsResumed.Add(1)
				s.enqueue(j)
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
		}
	}

	s.metrics.AddCollector(s.writeTenantMetrics)
	for i := range s.queues {
		s.wg.Add(1)
		go s.shardLoop(s.queues[i])
	}
	s.wg.Add(1)
	go s.flushLoop()
	return s, nil
}

// Metrics exposes the daemon counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Done is closed when the scheduler starts draining; long-lived streams
// (GET /v1/jobs/{id}/events) use it to end promptly so HTTP shutdown does
// not wait out their clients.
func (s *Scheduler) Done() <-chan struct{} { return s.ctx.Done() }

// enqueue places a job on its lane. Must only be called with the job
// already in (or being added to) the table.
func (s *Scheduler) enqueue(j *job) bool {
	h := fnv.New32a()
	h.Write([]byte(j.id))
	q := s.queues[int(h.Sum32())%len(s.queues)]
	select {
	case q <- j:
		return true
	default:
		return false
	}
}

// Submit validates and enqueues a new job.
func (s *Scheduler) Submit(spec JobSpec) (JobStatus, error) {
	if s.closed.Load() {
		return JobStatus{}, fmt.Errorf("server is shutting down")
	}
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	j := newJob(newJobID(), spec, s.cfg.Now())
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	if !s.enqueue(j) {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (depth %d)", errQueueFull, s.cfg.QueueDepth)
	}
	s.metrics.jobsSubmitted.Add(1)
	s.dirty.Store(true)
	return j.snapshot(), nil
}

// Get returns a job's status.
func (s *Scheduler) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	js := make([]*job, 0, len(ids))
	for _, id := range ids {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(js))
	for _, j := range js {
		out = append(out, j.snapshot())
	}
	return out
}

// Cancel requests a job stop at the next chunk boundary; queued jobs are
// canceled immediately.
func (s *Scheduler) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.canceled = true
		if j.state == StateQueued {
			j.pending = nil
			j.claimed = nil
			s.finishLocked(j, StateCanceled, "")
		}
	}
	st := j.snapshotLocked()
	j.mu.Unlock()
	s.dirty.Store(true)
	return st, true
}

// Subscribe attaches a progress-event listener to a job.
func (s *Scheduler) Subscribe(id string) (<-chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	ch, cancel := j.subscribe()
	return ch, cancel, true
}

// stateGauges counts current jobs per state for /metrics.
func (s *Scheduler) stateGauges() map[string]int {
	g := map[string]int{}
	for _, st := range s.List() {
		g[string(st.State)]++
	}
	return g
}

// shardLoop is one lane: it executes queued jobs chunk by chunk until the
// scheduler shuts down.
func (s *Scheduler) shardLoop(q chan *job) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-q:
			s.runJob(j)
		}
	}
}

// runJob drives one job to a terminal state through the work ledger: claim
// a chunk, execute it, report the tally — the same three operations remote
// fleet workers use, so local lanes and leased workers interleave freely on
// one job. On drain the job is parked back to queued, its merged prefix
// journaled for the next process.
func (s *Scheduler) runJob(j *job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.canceled {
		j.pending = nil
		j.claimed = nil
		s.finishLocked(j, StateCanceled, "")
		j.mu.Unlock()
		s.dirty.Store(true)
		return
	}
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = s.cfg.Now()
		j.publishLocked(string(StateRunning))
	}
	spec := j.spec
	j.mu.Unlock()
	s.dirty.Store(true)

	if s.cfg.DisableLocalExec {
		// Coordinator-only mode: fleet workers drive the job through
		// ClaimWork/ReportWork; the lane has nothing to execute.
		return
	}

	fn, err := s.cfg.Source(spec)
	if err != nil {
		j.mu.Lock()
		j.pending = nil
		j.claimed = nil
		s.finishLocked(j, StateFailed, err.Error())
		j.mu.Unlock()
		s.dirty.Store(true)
		return
	}

	var deadline time.Time
	if spec.Deadline > 0 {
		deadline = s.cfg.Now().Add(time.Duration(spec.Deadline * float64(time.Second)))
	}
	opts := campaign.Options{Runs: spec.Runs, Seed: spec.Seed, Workers: s.cfg.WorkersPerShard}

	for {
		// Drain: stop between chunks, park the job for resume.
		if s.ctx.Err() != nil {
			j.mu.Lock()
			if !j.state.Terminal() {
				j.state = StateQueued
			}
			j.mu.Unlock()
			s.dirty.Store(true)
			return
		}
		j.mu.Lock()
		if j.state.Terminal() {
			j.mu.Unlock()
			return
		}
		if j.canceled {
			j.pending = nil
			j.claimed = nil
			s.finishLocked(j, StateCanceled, "")
			j.mu.Unlock()
			s.dirty.Store(true)
			return
		}
		if !deadline.IsZero() && s.cfg.Now().After(deadline) {
			j.pending = nil
			j.claimed = nil
			s.finishLocked(j, StateFailed, fmt.Sprintf("deadline exceeded (%gs)", spec.Deadline))
			j.mu.Unlock()
			s.dirty.Store(true)
			return
		}
		r, ok := s.claimLocked(j, s.cfg.ChunkSize)
		j.mu.Unlock()
		if !ok {
			// Nothing left to claim. Either the job is finishing (its last
			// reports are in flight from fleet leases) or it is fully
			// leased out — wait for reports or lease expiry to refill
			// pending, then re-check.
			select {
			case <-s.ctx.Done():
			case <-time.After(starvedPoll):
			}
			continue
		}
		s.dirty.Store(true)

		// Attribute checkpoint fork/converge activity to this job by
		// differencing the study-side aggregate around the chunk. Exact
		// with one shard; with several, a concurrent job against the
		// same app may be credited here instead — acceptable for an
		// efficiency indicator (the process totals stay exact).
		var ckBefore microfi.CheckpointCounts
		if s.cfg.CheckpointStats != nil {
			ckBefore = s.cfg.CheckpointStats()
		}
		tl := campaign.RunRange(opts, r.From, r.To, fn)
		var dForks, dConverges int64
		if s.cfg.CheckpointStats != nil {
			ckAfter := s.cfg.CheckpointStats()
			dForks = ckAfter.ForkResumes - ckBefore.ForkResumes
			dConverges = ckAfter.ConvergeHits - ckBefore.ConvergeHits
		}
		st, _ := s.report(j, r.From, r.To, tl, dForks, dConverges)
		if st.State.Terminal() {
			return
		}
	}
}

// finishLocked moves a job to a terminal state (j.mu held).
func (s *Scheduler) finishLocked(j *job, st JobState, errmsg string) {
	j.state = st
	j.errmsg = errmsg
	j.finished = s.cfg.Now()
	switch st {
	case StateDone:
		s.metrics.jobsDone.Add(1)
	case StateFailed:
		s.metrics.jobsFailed.Add(1)
	case StateCanceled:
		s.metrics.jobsCanceled.Add(1)
	}
	j.publishLocked(string(st))
}

// flushLoop periodically writes the checkpoint journal while dirty.
func (s *Scheduler) flushLoop() {
	defer s.wg.Done()
	if s.cfg.CheckpointPath == "" {
		return
	}
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			if s.dirty.Swap(false) {
				s.Flush() //nolint:errcheck — periodic flush retries next tick
			}
		}
	}
}

// Flush writes the checkpoint journal now. Only the merged contiguous
// prefix is durable: stashed out-of-order partials and claimed-but-unproven
// work are recomputed on resume (deterministic seeding makes that safe).
func (s *Scheduler) Flush() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	js := make([]*job, 0, len(ids))
	for _, id := range ids {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	cps := make([]jobCheckpoint, 0, len(js))
	for _, j := range js {
		j.mu.Lock()
		var done []Range
		if to := j.merger.To(); to > 0 {
			done = []Range{{From: 0, To: to}}
		}
		cps = append(cps, jobCheckpoint{
			ID:           j.id,
			Spec:         j.spec,
			State:        j.state,
			Done:         done,
			Tally:        j.merger.Tally(),
			EarlyStopped: j.early,
			Error:        j.errmsg,
			Created:      j.created.Unix(),
		})
		j.mu.Unlock()
	}
	return saveCheckpoint(s.cfg.CheckpointPath, cps, s.cfg.Now().Unix())
}

// Close drains the scheduler: no new submissions, in-flight chunks finish,
// incomplete jobs are parked as queued, and the journal is flushed one last
// time. Safe to call more than once.
func (s *Scheduler) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.cancel()
	s.wg.Wait()
	return s.Flush()
}

// newJobID returns a random 12-hex-char job ID.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable enough to surface loudly.
		panic(fmt.Sprintf("service: rand.Read: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}
