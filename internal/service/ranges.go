package service

import "sort"

// Range is a half-open run-index interval [From, To) — the unit the
// checkpoint journals. A job's completed work is a normalized (sorted,
// disjoint, merged) list of ranges; the work left to do is its complement
// in [0, Runs).
type Range struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// normalizeRanges sorts, clips empty entries, and merges adjacent or
// overlapping ranges.
func normalizeRanges(rs []Range) []Range {
	var out []Range
	for _, r := range rs {
		if r.To > r.From {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].From < out[k].From })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.From <= merged[n-1].To {
			if r.To > merged[n-1].To {
				merged[n-1].To = r.To
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// addRange inserts one completed range into a normalized list, keeping it
// normalized.
func addRange(rs []Range, r Range) []Range {
	return normalizeRanges(append(rs, r))
}

// complementRanges returns the gaps of a normalized list within [0, n) —
// the run-ranges a resumed job still has to execute.
func complementRanges(rs []Range, n int) []Range {
	var out []Range
	at := 0
	for _, r := range rs {
		if r.From > at {
			to := r.From
			if to > n {
				to = n
			}
			if to > at {
				out = append(out, Range{From: at, To: to})
			}
		}
		if r.To > at {
			at = r.To
		}
	}
	if at < n {
		out = append(out, Range{From: at, To: n})
	}
	return out
}

// subtractRanges removes [r.From, r.To) from a normalized list, keeping it
// normalized. Removing runs that are not in the list is a no-op.
func subtractRanges(rs []Range, r Range) []Range {
	if r.To <= r.From {
		return rs
	}
	var out []Range
	for _, q := range rs {
		if q.To <= r.From || r.To <= q.From {
			out = append(out, q)
			continue
		}
		if q.From < r.From {
			out = append(out, Range{From: q.From, To: r.From})
		}
		if r.To < q.To {
			out = append(out, Range{From: r.To, To: q.To})
		}
	}
	return out
}

// intersectRanges returns the portions of a normalized list that fall inside
// [r.From, r.To).
func intersectRanges(rs []Range, r Range) []Range {
	var out []Range
	for _, q := range rs {
		from, to := q.From, q.To
		if from < r.From {
			from = r.From
		}
		if to > r.To {
			to = r.To
		}
		if to > from {
			out = append(out, Range{From: from, To: to})
		}
	}
	return out
}

// rangesLen is the total number of runs covered by a normalized list.
func rangesLen(rs []Range) int {
	n := 0
	for _, r := range rs {
		n += r.To - r.From
	}
	return n
}
