// Adaptive-job tests: early stopping through the scheduler, bit-identical
// checkpoint/resume of an interrupted adaptive job, submission validation
// over raw HTTP, and the sampling-efficiency metrics.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/service"
)

// lowFR is a synthetic low-failure-rate experiment (p = 0.02), the regime
// where adaptive stopping saves the most over the fixed n=3000 design.
func lowFR(run int, rng *rand.Rand) faults.Result {
	if rng.Float64() < 0.02 {
		return faults.Result{Outcome: faults.SDC}
	}
	return faults.Result{Outcome: faults.Masked}
}

func lowFRSource(perRun time.Duration) service.SourceFunc {
	return func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			if perRun > 0 {
				time.Sleep(perRun)
			}
			return lowFR(run, rng)
		}, nil
	}
}

// TestAdaptiveJobEarlyStops: an adaptive job finishes as done before its run
// budget, at a batch boundary, with the exact tally the local adaptive
// engine computes for the same policy and seed — and the savings show up in
// the job status and /metrics.
func TestAdaptiveJobEarlyStops(t *testing.T) {
	const runs, seed, margin = 3000, 42, 0.0235
	_, srv := newTestServer(t, service.Config{
		Source:    lowFRSource(0),
		ChunkSize: 64, // deliberately not a multiple of the batch size
	})
	c := client.New(srv.URL)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, service.JobSpec{
		Layer: "micro", App: "fake", Kernel: "K1",
		Runs: runs, Seed: seed, Sampling: &service.SamplingSpec{Margin99: margin},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("adaptive job ended %q: %+v", final.State, final)
	}

	want := adaptive.Run(
		campaign.Options{Runs: runs, Seed: seed},
		adaptive.Policy{Margin: margin},
		lowFR,
	)
	if !want.EarlyStopped {
		t.Fatal("test premise broken: local adaptive run did not stop early")
	}
	if final.Tally != want.Tally || final.Done != want.Tally.N {
		t.Errorf("served adaptive tally %+v (done %d) != local %+v", final.Tally, final.Done, want.Tally)
	}
	if !final.EarlyStopped || final.RunsSaved != runs-want.Tally.N {
		t.Errorf("savings not reported: early=%v saved=%d, want saved=%d",
			final.EarlyStopped, final.RunsSaved, runs-want.Tally.N)
	}
	if final.Done%adaptive.DefaultBatch != 0 {
		t.Errorf("stopped at n=%d, not a batch boundary", final.Done)
	}
	if final.Margin99 > margin || final.Margin99 <= 0 {
		t.Errorf("reported Wilson margin %.4f, want in (0, %.4f]", final.Margin99, margin)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	needle := fmt.Sprintf("gpureld_adaptive_runs_saved_total %d", runs-want.Tally.N)
	if !strings.Contains(m, needle) {
		t.Errorf("metrics missing %q in:\n%s", needle, m)
	}
}

// TestAdaptiveKillAndResumeBitIdentity is the determinism acceptance test:
// an adaptive job interrupted mid-flight and resumed in a fresh process
// stops at the same run count with a bit-identical tally as the local,
// uninterrupted adaptive engine.
func TestAdaptiveKillAndResumeBitIdentity(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "gpureld.ckpt.json")
	const runs, seed, margin = 3000, 77, 0.025

	cfg := service.Config{
		Source:             fakeSource(300 * time.Microsecond),
		ChunkSize:          16,
		WorkersPerShard:    2,
		CheckpointPath:     ckpt,
		CheckpointInterval: 20 * time.Millisecond,
	}
	sched1, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(service.NewServer(sched1).Handler())
	c1 := client.New(srv1.URL)
	ctx := context.Background()

	spec := service.JobSpec{
		Layer: "soft", App: "fake", Kernel: "K2", Mode: "SVF",
		Runs: runs, Seed: seed, Sampling: &service.SamplingSpec{Margin99: margin},
	}
	st, err := c1.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	errEnough := errors.New("enough progress")
	err = c1.WatchEvents(ctx, st.ID, func(ev service.Event) error {
		if ev.Type == "progress" && ev.Job.Done >= 150 {
			return errEnough
		}
		return nil
	})
	if !errors.Is(err, errEnough) {
		t.Fatalf("stream ended before mid-job: %v", err)
	}
	if err := sched1.Close(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	cfg.Source = fakeSource(0)
	sched2, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched2.Close()
	srv2 := httptest.NewServer(service.NewServer(sched2).Handler())
	defer srv2.Close()
	c2 := client.New(srv2.URL)

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c2.WaitJob(waitCtx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	want := adaptive.Run(
		campaign.Options{Runs: runs, Seed: seed},
		adaptive.Policy{Margin: margin},
		func(run int, rng *rand.Rand) faults.Result { return outcome(rng) },
	)
	if final.State != service.StateDone {
		t.Fatalf("resumed adaptive job ended %q: %+v", final.State, final)
	}
	if final.Tally != want.Tally || final.Done != want.Tally.N {
		t.Errorf("resumed adaptive tally %+v (done %d) != uninterrupted %+v (n %d)",
			final.Tally, final.Done, want.Tally, want.Tally.N)
	}
	if final.EarlyStopped != want.EarlyStopped {
		t.Errorf("EarlyStopped=%v after resume, want %v", final.EarlyStopped, want.EarlyStopped)
	}
	if want.EarlyStopped && final.Done >= runs {
		t.Errorf("resumed job ran the full budget despite the margin target")
	}
}

// TestSubmitHTTPValidation pins the HTTP status codes of malformed
// submissions — most importantly runs <= 0, which must be a 400, never a
// silently-zero-margin job.
func TestSubmitHTTPValidation(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Source: fakeSource(0)})

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	bad := []string{
		`{"layer":"micro","app":"fake","kernel":"K1","runs":0,"seed":1}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":-5,"seed":1}`,
		`{"layer":"micro","app":"fake","kernel":"K1","seed":1}`, // runs omitted = 0
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"margin99":1.5}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"margin99":-0.1}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"batch":-2}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"bogus_field":1}`,
		// The same validation applies through the nested v1 groups…
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"sampling":{"margin99":1.5}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"sampling":{"batch":-2}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"sampling":{"bogus":1}}`,
		// …and mixing flat and nested spellings of one group is an error,
		// never a silent pick.
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"margin99":0.05,"sampling":{"margin99":0.05}}`,
		`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"converge":true,"checkpoint":{"converge":true}}`,
	}
	for _, body := range bad {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("POST %s -> %d, want 400", body, code)
		}
	}
	// The deprecated flat spelling still submits fine (with a deprecation
	// note in the response); the nested spelling is the clean path.
	if code := post(`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"margin99":0.05,"batch":5,"prune":true}`); code != http.StatusAccepted {
		t.Errorf("valid legacy-flat adaptive spec -> %d, want 202", code)
	}
	if code := post(`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"sampling":{"margin99":0.05,"batch":5,"prune":true},"checkpoint":{"stride":-1,"converge":true}}`); code != http.StatusAccepted {
		t.Errorf("valid nested adaptive spec -> %d, want 202", code)
	}
}

// TestSubmitDeprecationNote: flat-spec submissions are flagged in the
// response; nested submissions are not.
func TestSubmitDeprecationNote(t *testing.T) {
	_, srv := newTestServer(t, service.Config{Source: fakeSource(0)})

	submit := func(body string) service.JobStatus {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %s -> %d", body, resp.StatusCode)
		}
		var st service.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	flat := submit(`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"margin99":0.05}`)
	if !strings.Contains(flat.Deprecation, "deprecated") {
		t.Errorf("flat submission missing deprecation note: %+v", flat)
	}
	nested := submit(`{"layer":"micro","app":"fake","kernel":"K1","runs":10,"seed":1,"sampling":{"margin99":0.05}}`)
	if nested.Deprecation != "" {
		t.Errorf("nested submission carries deprecation note: %q", nested.Deprecation)
	}
}

// TestMetricsExportCounters: the shared adaptive.Counters surface as
// prune-hit and simulated-run counters in the Prometheus exposition.
func TestMetricsExportCounters(t *testing.T) {
	counters := &adaptive.Counters{}
	counters.Pruned.Add(7)
	counters.Simulated.Add(13)
	_, srv := newTestServer(t, service.Config{Source: fakeSource(0), Counters: counters})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"gpureld_prune_hits_total 7",
		"gpureld_simulated_runs_total 13",
		"gpureld_adaptive_runs_saved_total 0",
	} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("metrics missing %q in:\n%s", needle, buf.String())
		}
	}
}
