// Golden wire tests for the fleet control-plane schema: the deprecated bare
// lease request and the nested v1 spelling in testdata/ decode to the same
// request (only the bare one flagged deprecated), encoding always emits the
// envelope, mixing the spellings is rejected, and the worker registration
// envelope is mandatory.
package service_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

func loadFixture(t *testing.T, name string, v any) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// TestLeaseRequestGoldenFixtures: both spellings decode to the same request;
// only the bare legacy form is flagged deprecated; re-encoding emits the
// envelope.
func TestLeaseRequestGoldenFixtures(t *testing.T) {
	var legacy, nested service.LeaseRequest
	loadFixture(t, "leasespec_legacy.json", &legacy)
	loadFixture(t, "leasespec_nested.json", &nested)

	if !legacy.LegacyFlat() {
		t.Error("legacy fixture not flagged as flat")
	}
	if nested.LegacyFlat() {
		t.Error("nested fixture flagged as flat")
	}
	if legacy.Worker != nested.Worker || legacy.MaxRuns != nested.MaxRuns || legacy.RunsPerSec != nested.RunsPerSec {
		t.Errorf("fixtures decode differently: legacy %+v, nested %+v", legacy, nested)
	}
	if legacy.Worker != "w1" || legacy.MaxRuns != 256 || legacy.RunsPerSec != 42.5 {
		t.Errorf("decoded request %+v, want worker=w1 max_runs=256 runs_per_sec=42.5", legacy)
	}
	for name, req := range map[string]service.LeaseRequest{"legacy": legacy, "nested": nested} {
		if err := req.Validate(); err != nil {
			t.Errorf("%s fixture invalid: %v", name, err)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), `"lease"`) {
			t.Errorf("%s re-encode lost the envelope: %s", name, out)
		}
		var back service.LeaseRequest
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("%s re-decode: %v", name, err)
		}
		if back.LegacyFlat() {
			t.Errorf("%s round trip re-flagged deprecated: %s", name, out)
		}
	}
}

// TestLeaseRequestMixedSpellingRejected: a request that nests a "lease"
// envelope AND carries bare fields is ambiguous and rejected.
func TestLeaseRequestMixedSpellingRejected(t *testing.T) {
	var req service.LeaseRequest
	err := json.Unmarshal([]byte(`{"lease":{"worker":"w1"},"worker":"w2"}`), &req)
	if err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Fatalf("mixed spelling err = %v, want a mixing rejection", err)
	}
	if err := json.Unmarshal([]byte(`{"lease":{"worker":"w1"},"bogus":1}`), &req); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestLeaseReportBothSpellings: the report decoder accepts both forms,
// rejects mixing, and always re-encodes the envelope.
func TestLeaseReportBothSpellings(t *testing.T) {
	tl := campaign.Tally{N: 100}
	raw, _ := json.Marshal(tl)
	legacyJSON := `{"worker":"w1","from":0,"to":100,"tally":` + string(raw) + `,"done":true}`
	nestedJSON := `{"report":{"worker":"w1","from":0,"to":100,"tally":` + string(raw) + `,"done":true}}`

	var legacy, nested service.LeaseReport
	if err := json.Unmarshal([]byte(legacyJSON), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(nestedJSON), &nested); err != nil {
		t.Fatal(err)
	}
	if !legacy.LegacyFlat() || nested.LegacyFlat() {
		t.Errorf("deprecation flags wrong: legacy %v, nested %v", legacy.LegacyFlat(), nested.LegacyFlat())
	}
	if legacy.Worker != nested.Worker || legacy.From != nested.From || legacy.To != nested.To ||
		legacy.Tally != nested.Tally || legacy.Done != nested.Done {
		t.Errorf("spellings decode differently: %+v vs %+v", legacy, nested)
	}
	out, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"report"`) {
		t.Errorf("re-encode lost the envelope: %s", out)
	}
	var mixed service.LeaseReport
	if err := json.Unmarshal([]byte(`{"report":{"worker":"w1"},"done":true}`), &mixed); err == nil {
		t.Error("mixed report spelling accepted")
	}
}

// TestLeaseEnvelopeRoundTrip: Lease and LeaseAck emit the v1 envelope and
// decode both the envelope and the bare legacy body.
func TestLeaseEnvelopeRoundTrip(t *testing.T) {
	ls := service.Lease{
		ID: "l1", JobID: "j1",
		Spec: service.JobSpec{Layer: "micro", App: "VA", Kernel: "K1", Runs: 100, Seed: 1},
		From: 0, To: 100, TTLSec: 15,
	}
	out, err := json.Marshal(ls)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), `{"lease":`) {
		t.Fatalf("lease encode = %s, want enveloped", out)
	}
	var back service.Lease
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ls) {
		t.Errorf("lease round trip drifted:\nbefore %+v\nafter  %+v", ls, back)
	}
	// The bare legacy body still decodes (old coordinators on the wire).
	var bare service.Lease
	if err := json.Unmarshal([]byte(`{"id":"l2","job_id":"j2","spec":{"layer":"micro","app":"VA","kernel":"K1","runs":5},"from":0,"to":5,"ttl_sec":10}`), &bare); err != nil {
		t.Fatal(err)
	}
	if bare.ID != "l2" || bare.To != 5 {
		t.Errorf("bare lease decode = %+v", bare)
	}

	ack := service.LeaseAck{Accepted: true, TTLSec: 15}
	aout, err := json.Marshal(ack)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(aout), `{"ack":`) {
		t.Fatalf("ack encode = %s, want enveloped", aout)
	}
	var aback service.LeaseAck
	if err := json.Unmarshal(aout, &aback); err != nil {
		t.Fatal(err)
	}
	if aback != ack {
		t.Errorf("ack round trip drifted: %+v -> %+v", ack, aback)
	}
	var abare service.LeaseAck
	if err := json.Unmarshal([]byte(`{"accepted":true,"ttl_sec":10}`), &abare); err != nil {
		t.Fatal(err)
	}
	if !abare.Accepted || abare.TTLSec != 10 {
		t.Errorf("bare ack decode = %+v", abare)
	}
}

// TestWorkerSpecGoldenFixture: the registration envelope decodes, validates,
// and round-trips; the envelope is mandatory (no legacy spelling for a new
// endpoint).
func TestWorkerSpecGoldenFixture(t *testing.T) {
	var spec service.WorkerSpec
	loadFixture(t, "workerspec.json", &spec)
	if spec.Name != "w1" || spec.Caps.RunsPerSec != 42.5 || spec.Caps.SnapMB != 256 {
		t.Errorf("decoded spec %+v", spec)
	}
	if !reflect.DeepEqual(spec.Caps.FaultModels, []string{"transient", "stuck"}) {
		t.Errorf("fault models = %v", spec.Caps.FaultModels)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("fixture invalid: %v", err)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back service.WorkerSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip drifted:\nbefore %+v\nafter  %+v", spec, back)
	}

	var bare service.WorkerSpec
	if err := json.Unmarshal([]byte(`{"name":"w1"}`), &bare); err == nil {
		t.Error("bare worker spec accepted; the envelope is mandatory")
	}
}

// TestWorkerSpecValidation enumerates the rejection cases.
func TestWorkerSpecValidation(t *testing.T) {
	for name, spec := range map[string]service.WorkerSpec{
		"missing name":  {Caps: service.WorkerCaps{RunsPerSec: 1}},
		"negative rps":  {Name: "w", Caps: service.WorkerCaps{RunsPerSec: -1}},
		"negative snap": {Name: "w", Caps: service.WorkerCaps{SnapMB: -1}},
		"unknown model": {Name: "w", Caps: service.WorkerCaps{FaultModels: []string{"cosmic"}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := service.WorkerSpec{Name: "w", Caps: service.WorkerCaps{
		RunsPerSec: 10, SnapMB: 64, FaultModels: []string{"transient", "stuck", "mbu", "control"},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("full spec rejected: %v", err)
	}
}
