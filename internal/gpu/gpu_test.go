package gpu

import "testing"

func TestStructBitsSum(t *testing.T) {
	cfg := Volta()
	var sum int64
	for _, s := range Structures {
		b := cfg.StructBits(s)
		if b <= 0 {
			t.Errorf("%s has %d bits", s, b)
		}
		sum += b
	}
	if sum != cfg.TotalBits() {
		t.Errorf("TotalBits %d != Σ StructBits %d", cfg.TotalBits(), sum)
	}
}

// TestRFDominates: the register file must be the largest structure — the
// paper attributes the GPU-specific SVF error magnitude to exactly this
// (§VII: "underutilization of large register files in GPUs").
func TestRFDominates(t *testing.T) {
	cfg := Volta()
	rf := cfg.StructBits(RF)
	for _, s := range Structures[1:] {
		if cfg.StructBits(s) >= rf {
			t.Errorf("%s (%d bits) >= RF (%d bits)", s, cfg.StructBits(s), rf)
		}
	}
	if frac := float64(rf) / float64(cfg.TotalBits()); frac < 0.5 {
		t.Errorf("RF share = %.2f, must dominate the chip", frac)
	}
}

func TestStructureNames(t *testing.T) {
	names := map[Structure]string{RF: "RF", SMEM: "SMEM", L1D: "L1D", L1T: "L1T", L2: "L2"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestVoltaGeometry(t *testing.T) {
	cfg := Volta()
	if cfg.WarpSize != 32 {
		t.Error("warp size must be 32")
	}
	if cfg.L2Bytes%cfg.LineSize != 0 || cfg.L1DBytes%cfg.LineSize != 0 {
		t.Error("cache sizes must be line multiples")
	}
	if (cfg.L2Bytes/cfg.LineSize)%cfg.L2Ways != 0 {
		t.Error("L2 geometry must divide into sets")
	}
	if cfg.TimeoutFactor <= 1 {
		t.Error("timeout factor must exceed 1")
	}
	if cfg.DRAMLat <= cfg.L2Lat || cfg.L2Lat <= cfg.L1Lat {
		t.Error("latencies must increase down the hierarchy")
	}
}
