// Package gpu holds the chip configuration shared by the microarchitecture
// simulator and the fault-injection frameworks: structure sizes, cache
// geometry, and latency/timing parameters.
//
// The default configuration is a Volta-flavoured GPU scaled down so that
// thousands of statistical fault-injection runs remain tractable. What the
// paper's results depend on is preserved: the register file dominates the
// on-chip storage bit count, shared memory is second, and the caches are
// comparatively small (see DESIGN.md §2).
package gpu

// Structure identifies one of the five fault-injection target hardware
// structures studied by the paper (§II-B).
type Structure int

// The hardware structures supported by the microarchitecture-level injector.
const (
	RF   Structure = iota // register files
	SMEM                  // shared memory
	L1D                   // L1 data caches
	L1T                   // L1 texture caches
	L2                    // L2 cache
	NumStructures
)

// Structures lists all injectable structures in canonical order.
var Structures = [NumStructures]Structure{RF, SMEM, L1D, L1T, L2}

// Control-state injection sites, beyond the paper's five storage arrays:
// machine state held in flip-flops rather than SRAM data arrays. They are
// injectable by the control-state fault model (internal/faultmodel) but
// carry no storage-bit weight, so they stay out of Structures, chip-AVF
// size weighting and the ECC configuration (flip-flop state is unprotected).
const (
	Sched   Structure = NumStructures + iota // warp-scheduler entries (ready/done)
	Stack                                    // SIMT divergence stack entries (mask/PC/RPC)
	Barrier                                  // CTA barrier arrival state
)

// ControlStructures lists the injectable control-state sites in canonical
// order.
var ControlStructures = [3]Structure{Sched, Stack, Barrier}

// IsControl reports whether s is a control-state site rather than one of the
// five storage arrays.
func (s Structure) IsControl() bool { return s >= Sched && s <= Barrier }

func (s Structure) String() string {
	switch s {
	case RF:
		return "RF"
	case SMEM:
		return "SMEM"
	case L1D:
		return "L1D"
	case L1T:
		return "L1T"
	case L2:
		return "L2"
	case Sched:
		return "SCHED"
	case Stack:
		return "STACK"
	case Barrier:
		return "BARRIER"
	}
	return "?"
}

// Config describes the simulated chip.
type Config struct {
	NumSMs          int
	WarpSize        int
	MaxThreadsPerSM int
	MaxCTAsPerSM    int
	IssuePerCycle   int // instructions issued per SM per cycle

	RFRegsPerSM int // 32-bit register entries per SM
	SmemPerSM   int // bytes per SM

	L1DBytes int // per SM
	L1TBytes int // per SM
	L2Bytes  int
	LineSize int
	L1Ways   int
	L2Ways   int
	L1MSHRs  int
	L2MSHRs  int

	// Latencies in cycles.
	ALULat  int
	SFULat  int
	SMemLat int
	L1Lat   int // L1 hit
	L2Lat   int // L2 hit (from L1 miss)
	DRAMLat int // L2 miss

	// TimeoutFactor multiplies the golden cycle (or instruction) count to
	// form the timeout budget for faulty runs.
	TimeoutFactor int

	// ECC enables SEC-DED protection per structure (§II-A: "most of the
	// on-chip memory structures are protected through error correction
	// codes, but with overhead"). The paper evaluates the unprotected
	// design to locate inherent vulnerability; enabling ECC here supports
	// the protection-strategy ablation: single-bit faults in a protected
	// structure are corrected (masked), double-bit faults are detected but
	// uncorrectable (DUE), wider bursts escape silently.
	ECC [NumStructures]bool
}

// WithECC returns a copy of the configuration with ECC enabled on the given
// structures.
func (c Config) WithECC(structures ...Structure) Config {
	for _, s := range structures {
		c.ECC[s] = true
	}
	return c
}

// Volta returns the default scaled Volta-like configuration.
func Volta() Config {
	return Config{
		NumSMs:          4,
		WarpSize:        32,
		MaxThreadsPerSM: 1024,
		MaxCTAsPerSM:    16,
		IssuePerCycle:   2,

		RFRegsPerSM: 32768, // 128 KiB per SM
		SmemPerSM:   16384, // 16 KiB per SM

		L1DBytes: 8192, // 8 KiB per SM
		L1TBytes: 4096, // 4 KiB per SM
		L2Bytes:  131072,
		LineSize: 64,
		L1Ways:   4,
		L2Ways:   8,
		L1MSHRs:  8,
		L2MSHRs:  32,

		ALULat:  4,
		SFULat:  16,
		SMemLat: 24,
		L1Lat:   32,
		L2Lat:   190,
		DRAMLat: 420,

		TimeoutFactor: 10,
	}
}

// StructBits returns the total size of structure s across the chip, in bits.
// These sizes weight the per-structure AVFs into the full-chip AVF (§II-B).
func (c Config) StructBits(s Structure) int64 {
	switch s {
	case RF:
		return int64(c.NumSMs) * int64(c.RFRegsPerSM) * 32
	case SMEM:
		return int64(c.NumSMs) * int64(c.SmemPerSM) * 8
	case L1D:
		return int64(c.NumSMs) * int64(c.L1DBytes) * 8
	case L1T:
		return int64(c.NumSMs) * int64(c.L1TBytes) * 8
	case L2:
		return int64(c.L2Bytes) * 8
	}
	return 0
}

// TotalBits returns the summed bit count of all injectable structures.
func (c Config) TotalBits() int64 {
	var t int64
	for _, s := range Structures {
		t += c.StructBits(s)
	}
	return t
}
