// Package propagate implements dynamic error-propagation analysis — the
// future-work direction the paper's §VI singles out ("software-level fault
// injection may still have its value, for example, conducting fast error
// propagation analysis across instructions"), in the style of LLFI-GPU [9]
// and Trident [59].
//
// A fault is seeded at one dynamic instruction's destination register
// (exactly a softfi injection site) and tracked as taint through the
// functional execution: a value is tainted when any source operand, guard
// predicate, load address or loaded datum that produced it was tainted.
// The analysis reports how far the corruption spreads — dynamic instructions
// touched, threads infected, global memory bytes dirtied — and whether it
// reaches the program output, which predicts the SDC outcome of the
// equivalent real injection without comparing outputs.
//
// Like Trident, the tracker follows explicit data flow plus guard
// predicates; divergence-induced implicit flow (a tainted branch changing
// which path executes) is approximated by tainting the values written on
// the executed path under a tainted guard.
package propagate

import (
	"fmt"

	"gpurel/internal/device"
	"gpurel/internal/exec"
	"gpurel/internal/isa"
)

// Seed selects the fault site: the idx-th dynamic destination-register
// write of the job (the same candidate space softfi.SVF samples).
type Seed struct {
	Index int64
}

// Result summarises one propagation analysis.
type Result struct {
	// Seeded reports whether the seed index was reached.
	Seeded bool
	// TaintedInstrs counts dynamic instructions that consumed tainted input.
	TaintedInstrs int64
	// TaintedThreads counts threads (across all CTAs) that ever held taint.
	TaintedThreads int
	// TaintedGlobalBytes counts global-memory bytes tainted at exit.
	TaintedGlobalBytes int
	// OutputTainted reports whether taint reached any output buffer byte —
	// the propagation-based SDC prediction.
	OutputTainted bool
	// PredictedOutcome is "SDC" when OutputTainted, else "Masked". (The
	// analysis cannot predict DUEs/Timeouts: it does not corrupt values,
	// only tracks reachability.)
	PredictedOutcome string
	// DynInstrs is the total dynamic instruction count of the run.
	DynInstrs int64
}

// Analyze runs the job once with taint tracking from the given seed.
func Analyze(job *device.Job, seed Seed) (*Result, error) {
	r := &runner{
		mem:        job.Mem.Clone(),
		res:        &Result{PredictedOutcome: "Masked"},
		globalTnt:  map[uint32]bool{},
		seedTarget: seed.Index,
	}
	maxSteps := job.MaxScheduleSteps()
	steps := 0
	for si := 0; si < len(job.Steps); {
		if steps >= maxSteps {
			return nil, fmt.Errorf("propagate: schedule budget exceeded")
		}
		steps++
		st := &job.Steps[si]
		if st.Host != nil {
			// host steps are fault-free but move data: conservatively keep
			// global taint (hosts only reduce/copy; our apps' host steps
			// write derived scalars — taint them if any input is tainted)
			next := st.Host(r.mem, 0)
			if next >= 0 {
				si = next
			} else {
				si++
			}
			continue
		}
		if err := r.launch(st.Launch); err != nil {
			return nil, err
		}
		si++
	}
	for _, o := range job.Outputs {
		for a := o.Addr; a < o.Addr+o.Size; a += 4 {
			if r.globalTnt[a] {
				r.res.OutputTainted = true
				r.res.PredictedOutcome = "SDC"
			}
		}
	}
	r.res.TaintedGlobalBytes = 4 * len(r.globalTnt)
	r.res.DynInstrs = r.dyn
	r.res.TaintedThreads = r.taintedThreads
	return r.res, nil
}

type runner struct {
	mem        *device.Memory
	res        *Result
	globalTnt  map[uint32]bool
	writeIdx   int64
	seedTarget int64
	dyn        int64

	taintedThreads int
}

// taintEnv implements exec.Env with taint shadows alongside the data.
type taintEnv struct {
	r       *runner
	params  []uint32
	regs    []uint32
	regTnt  []bool
	preds   []uint8
	predTnt []uint8
	numRegs int
	smem    []byte
	smemTnt []bool // per word

	blockX, blockY int
	ctaX, ctaY     int
	gridX, gridY   int
	warpBase       int
	threadTainted  []bool

	// laneTnt accumulates the taint of everything the current instruction
	// has read per lane; reset by the driver before every Step.
	laneTnt [32]bool
}

func (e *taintEnv) thread(lane int) int { return e.warpBase + lane }

func (e *taintEnv) markThread(lane int) {
	t := e.thread(lane)
	if !e.threadTainted[t] {
		e.threadTainted[t] = true
		e.r.taintedThreads++
	}
}

func (e *taintEnv) ReadReg(lane int, reg isa.Reg) uint32 {
	slot := e.thread(lane)*e.numRegs + int(reg)
	if e.regTnt[slot] {
		e.laneTnt[lane] = true
	}
	return e.regs[slot]
}

func (e *taintEnv) WriteReg(lane int, reg isa.Reg, v uint32) {
	slot := e.thread(lane)*e.numRegs + int(reg)
	tainted := e.laneTnt[lane]
	if e.r.writeIdx == e.r.seedTarget {
		tainted = true
		e.r.res.Seeded = true
	}
	e.r.writeIdx++
	e.regTnt[slot] = tainted
	if tainted {
		e.r.res.TaintedInstrs++
		e.markThread(lane)
	}
	e.regs[slot] = v
}

func (e *taintEnv) ReadPred(lane int, p isa.Pred) bool {
	if e.predTnt[e.thread(lane)]&(1<<(p-1)) != 0 {
		e.laneTnt[lane] = true
	}
	return e.preds[e.thread(lane)]&(1<<(p-1)) != 0
}

func (e *taintEnv) WritePred(lane int, p isa.Pred, v bool) {
	t := e.thread(lane)
	if e.laneTnt[lane] {
		e.predTnt[t] |= 1 << (p - 1)
		e.markThread(lane)
	} else {
		e.predTnt[t] &^= 1 << (p - 1)
	}
	if v {
		e.preds[t] |= 1 << (p - 1)
	} else {
		e.preds[t] &^= 1 << (p - 1)
	}
}

func (e *taintEnv) Special(lane int, s isa.SReg) uint32 {
	t := e.thread(lane)
	switch s {
	case isa.SRTidX:
		return uint32(t % e.blockX)
	case isa.SRTidY:
		return uint32(t / e.blockX)
	case isa.SRCtaIDX:
		return uint32(e.ctaX)
	case isa.SRCtaIDY:
		return uint32(e.ctaY)
	case isa.SRNTidX:
		return uint32(e.blockX)
	case isa.SRNTidY:
		return uint32(e.blockY)
	case isa.SRNCtaX:
		return uint32(e.gridX)
	case isa.SRNCtaY:
		return uint32(e.gridY)
	case isa.SRLaneID:
		return uint32(lane)
	}
	return 0
}

func (e *taintEnv) Param(idx int) uint32 {
	if idx < 0 || idx >= len(e.params) {
		return 0
	}
	return e.params[idx]
}

func (e *taintEnv) LoadGlobal(lane int, addr uint32, tex bool) (uint32, error) {
	if e.r.globalTnt[addr&^3] {
		e.laneTnt[lane] = true
	}
	return e.r.mem.Load4(addr)
}

func (e *taintEnv) StoreGlobal(lane int, addr uint32, v uint32) error {
	if e.laneTnt[lane] {
		e.r.globalTnt[addr&^3] = true
		e.markThread(lane)
	} else {
		delete(e.r.globalTnt, addr&^3)
	}
	return e.r.mem.Store4(addr, v)
}

func (e *taintEnv) LoadShared(lane int, addr uint32) (uint32, error) {
	if addr%4 != 0 || int(addr)+4 > len(e.smem) {
		return 0, fmt.Errorf("illegal shared memory read at 0x%x", addr)
	}
	if e.smemTnt[addr/4] {
		e.laneTnt[lane] = true
	}
	b := e.smem[addr:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (e *taintEnv) StoreShared(lane int, addr uint32, v uint32) error {
	if addr%4 != 0 || int(addr)+4 > len(e.smem) {
		return fmt.Errorf("illegal shared memory write at 0x%x", addr)
	}
	e.smemTnt[addr/4] = e.laneTnt[lane]
	if e.laneTnt[lane] {
		e.markThread(lane)
	}
	b := e.smem[addr:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

func (r *runner) launch(l *device.Launch) error {
	prog := l.Kernel
	threads := l.ThreadsPerCTA()
	for rep := 0; rep < l.NumReplicas(); rep++ {
		params := l.ParamsFor(rep)
		for cy := 0; cy < l.GridY; cy++ {
			for cx := 0; cx < l.GridX; cx++ {
				if err := r.runCTA(l, prog, params, cx, cy, threads); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (r *runner) runCTA(l *device.Launch, prog *isa.Program, params []uint32, cx, cy, threads int) error {
	env := &taintEnv{
		r:       r,
		params:  params,
		regs:    make([]uint32, threads*prog.NumRegs),
		regTnt:  make([]bool, threads*prog.NumRegs),
		preds:   make([]uint8, threads),
		predTnt: make([]uint8, threads),
		numRegs: prog.NumRegs,
		smem:    make([]byte, l.SmemBytes),
		smemTnt: make([]bool, (l.SmemBytes+3)/4),
		blockX:  l.BlockX, blockY: l.BlockY,
		ctaX: cx, ctaY: cy,
		gridX: l.GridX, gridY: l.GridY,
		threadTainted: make([]bool, threads),
	}
	nWarps := (threads + 31) / 32
	warps := make([]*exec.Warp, nWarps)
	atBar := make([]bool, nWarps)
	done := make([]bool, nWarps)
	for w := range warps {
		lanes := threads - w*32
		if lanes > 32 {
			lanes = 32
		}
		warps[w] = exec.NewWarp(lanes)
	}
	remaining := nWarps
	for remaining > 0 {
		progress := false
		for w := 0; w < nWarps; w++ {
			if done[w] || atBar[w] {
				continue
			}
			env.warpBase = w * 32
			for {
				env.laneTnt = [32]bool{}
				info := exec.Step(warps[w], prog, env)
				if info.Kind == exec.StepOK || info.Kind == exec.StepExit || info.Kind == exec.StepBarrier {
					r.dyn += int64(popcount(info.ActiveMask))
				}
				switch info.Kind {
				case exec.StepFault:
					return info.Fault
				case exec.StepExit:
					done[w] = true
					remaining--
					progress = true
				case exec.StepBarrier:
					atBar[w] = true
					progress = true
				default:
					progress = true
					continue
				}
				break
			}
		}
		if remaining > 0 {
			all := true
			for w := 0; w < nWarps; w++ {
				if !done[w] && !atBar[w] {
					all = false
					break
				}
			}
			if all {
				for w := 0; w < nWarps; w++ {
					if !done[w] {
						atBar[w] = false
						warps[w].AdvancePastBarrier()
					}
				}
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("propagate: CTA (%d,%d) deadlocked", cx, cy)
		}
	}
	return nil
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
