package propagate

import (
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/funcsim"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
	"gpurel/internal/kernels"
)

// chainedJob: out[i] = (in[i]*3 + 7); a side value lands only in a scratch
// buffer outside the declared outputs, so taint seeded on it must die.
func chainedJob(n int) *device.Job {
	b := kasm.New("chain")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(2), 2), 0, b.MovI(99)) // scratch-only value
		r := b.IAddI(b.IMulI(v, 3), 7)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, r)
	})
	b.FreeP(p)
	prog := b.MustBuild()
	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	scratch := m.Alloc("scratch", 4*n)
	vals := make([]uint32, n)
	for k := range vals {
		vals[k] = uint32(k)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "chain", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, KernelName: "K1", GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
			Params: []uint32{in, out, scratch}, ParamIsPtr: []bool{true, true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}
}

func TestSeedReachesOutput(t *testing.T) {
	job := chainedJob(32)
	g := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	reached, died := 0, 0
	for idx := int64(0); idx < g.DstCands; idx++ {
		r, err := Analyze(job, Seed{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Seeded {
			t.Fatalf("seed %d never reached", idx)
		}
		if r.OutputTainted {
			reached++
		} else {
			died++
		}
	}
	if reached == 0 {
		t.Error("no seed propagated to the output")
	}
	if died == 0 {
		t.Error("no seed died (the dead value must not propagate)")
	}
}

// TestDeadValueDoesNotPropagate builds a single-thread kernel whose write
// sequence is fully known and asserts exactly which seeds reach the output:
// writes on the dataflow path to the out-word store do; the constant that
// only ever lands in a non-output scratch word does not.
func TestDeadValueDoesNotPropagate(t *testing.T) {
	b := kasm.New("onethread")
	dead := b.MovI(123)  // write 0: stored only outside the output
	addr := b.Param(0)   // write 1: base pointer (feeds all stores)
	v := b.Ldg(addr, 0)  // write 2: loaded value
	r := b.IAddI(v, 1)   // write 3: on the path
	b.Stg(addr, 4, r)    // store to out word 1
	b.Stg(addr, 8, dead) // store to word 2, outside Outputs
	prog := b.MustBuild()

	m := device.NewMemory(1 << 14)
	buf := m.Alloc("buf", 16)
	m.PokeU32(buf, 7)
	job := &device.Job{
		Name: "onethread", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
			Params: []uint32{buf}, ParamIsPtr: []bool{true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: buf + 4, Size: 4}},
	}
	want := map[int64]bool{0: false, 1: true, 2: true, 3: true}
	for idx, wantTaint := range want {
		res, err := Analyze(job, Seed{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Seeded {
			t.Fatalf("seed %d unreachable", idx)
		}
		if res.OutputTainted != wantTaint {
			t.Errorf("seed %d: OutputTainted = %v, want %v", idx, res.OutputTainted, wantTaint)
		}
	}
}

// TestTaintThroughSharedMemory: taint must survive a smem round trip.
func TestTaintThroughSharedMemory(t *testing.T) {
	b := kasm.New("smem")
	tid := b.S2R(isa.SRTidX)
	v := b.Ldg(b.IScAdd(tid, b.Param(0), 2), 0)
	b.Sts(b.Shl(tid, 2), 0, v)
	b.Barrier()
	// read the neighbour's value
	n := b.AndI(b.IAddI(tid, 1), 31)
	w := b.Lds(b.Shl(n, 2), 0)
	b.Stg(b.IScAdd(tid, b.Param(1), 2), 0, w)
	prog := b.MustBuild()
	m := device.NewMemory(1 << 16)
	in := m.Alloc("in", 4*32)
	out := m.Alloc("out", 4*32)
	job := &device.Job{
		Name: "smem", Mem: m,
		Steps: []device.Step{{Launch: &device.Launch{
			Kernel: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1, SmemBytes: 128,
			Params: []uint32{in, out}, ParamIsPtr: []bool{true, true},
		}}},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: 4 * 32}},
	}
	// seed the load destination of some thread: taint must cross to another
	// thread through shared memory
	g := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	crossed := false
	for idx := int64(0); idx < g.DstCands && !crossed; idx++ {
		r, err := Analyze(job, Seed{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		if r.OutputTainted && r.TaintedThreads >= 2 {
			crossed = true
		}
	}
	if !crossed {
		t.Error("taint never crossed threads through shared memory")
	}
}

// TestWriteIndexAlignment: the propagation seed space must align with the
// softfi candidate space (same counting of destination writes).
func TestWriteIndexAlignment(t *testing.T) {
	job := chainedJob(16)
	g := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	r, err := Analyze(job, Seed{Index: g.DstCands - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Seeded {
		t.Error("last candidate index not reachable: spaces misaligned")
	}
	r, err = Analyze(job, Seed{Index: g.DstCands})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seeded {
		t.Error("index beyond the candidate space must not seed")
	}
}

// TestPredictionCorrelation (integration): the propagation-based SDC
// prediction must agree with real injections much more often than chance on
// a real benchmark. High bits of data values reliably surface as SDCs when
// they reach output, so inject bit 30.
func TestPredictionCorrelation(t *testing.T) {
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	g := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	agree, total := 0, 0
	for k := int64(0); k < 60; k++ {
		idx := (k * 7919) % g.DstCands
		pr, err := Analyze(job, Seed{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		run := funcsim.Run(job, funcsim.Options{
			MaxDynInstrs: g.DynInstrs * 10,
			Inject:       &funcsim.Injection{Mode: funcsim.InjectDst, Index: idx, Bit: 30},
		})
		if run.Err != nil || run.TimedOut {
			continue // prediction does not model DUE/timeout
		}
		actualSDC := string(run.Output) != string(g.Output)
		total++
		if actualSDC == pr.OutputTainted {
			agree++
		}
	}
	if total == 0 {
		t.Skip("all sampled injections crashed")
	}
	if ratio := float64(agree) / float64(total); ratio < 0.7 {
		t.Errorf("propagation prediction agrees on only %.0f%% of %d sites", 100*ratio, total)
	}
}
