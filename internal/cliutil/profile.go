// Profiling flags shared by the CLIs: the hot-loop work in this repo is
// driven by pprof evidence (see docs/perf.md), so every binary that runs
// campaigns can capture profiles of real workloads without a rebuild.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler owns the -cpuprofile/-memprofile flag pair registered by
// Profiling and the files they write.
type Profiler struct {
	cpu, mem *string
	cpuFile  *os.File
}

// Profiling registers -cpuprofile and -memprofile on fs. Call before
// fs.Parse; then call Start once after parsing and defer the returned stop.
func Profiling(fs *flag.FlagSet) *Profiler {
	return &Profiler{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to `file`"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to `file` on exit"),
	}
}

// Start begins CPU profiling when requested. The returned stop function
// flushes the CPU profile and writes the heap profile (post-GC, so it shows
// live retention rather than transient garbage); it is safe to call when
// neither flag was set, and must run on the normal exit path — an os.Exit
// shortcut loses the profiles.
func (p *Profiler) Start() (stop func(), err error) {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	return func() {
		if p.cpuFile != nil {
			pprof.StopCPUProfile()
			p.cpuFile.Close()
			p.cpuFile = nil
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
