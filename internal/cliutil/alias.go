// Package cliutil carries the small shared pieces of the command-line
// tools. Its one job today: flag aliasing, so the CLIs can converge on one
// canonical flag set (-snap-stride / -snap-mb / -converge across gpufi,
// avfsvf and gpureld) while the old spellings keep working, hidden from
// -help.
package cliutil

import (
	"flag"
	"fmt"
	"strings"
)

// deprecatedPrefix marks alias flags; HideDeprecated filters on it.
const deprecatedPrefix = "deprecated alias for -"

// Alias registers old names for an already-defined flag, sharing its
// backing value — setting either spelling sets both. The alias is tagged
// deprecated so HideDeprecated can keep it out of -help.
func Alias(fs *flag.FlagSet, canonical string, oldNames ...string) {
	f := fs.Lookup(canonical)
	if f == nil {
		panic(fmt.Sprintf("cliutil: Alias of undefined flag -%s", canonical))
	}
	for _, old := range oldNames {
		fs.Var(f.Value, old, deprecatedPrefix+canonical)
	}
}

// HideDeprecated swaps the flag set's usage function for one that omits
// Alias-registered spellings, so -help shows only the canonical set.
func HideDeprecated(fs *flag.FlagSet) {
	fs.Usage = func() {
		if name := fs.Name(); name == "" {
			fmt.Fprint(fs.Output(), "Usage:\n")
		} else {
			fmt.Fprintf(fs.Output(), "Usage of %s:\n", name)
		}
		fs.VisitAll(func(f *flag.Flag) {
			if strings.HasPrefix(f.Usage, deprecatedPrefix) {
				return
			}
			name, usage := flag.UnquoteUsage(f)
			line := "  -" + f.Name
			if name != "" {
				line += " " + name
			}
			line += "\n    \t" + strings.ReplaceAll(usage, "\n", "\n    \t")
			if f.DefValue != "" && f.DefValue != "false" {
				line += fmt.Sprintf(" (default %v)", f.DefValue)
			}
			fmt.Fprintln(fs.Output(), line)
		})
	}
}
