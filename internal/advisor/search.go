package advisor

import "sort"

// predictedSDC estimates the app SDC AVF under a protection set from the
// per-kernel measurements: each kernel contributes its plain or hardened
// per-kernel SDC, weighted by its cycle share — with protected kernels
// re-weighted by their TMR cycle multiplier, mirroring how the study
// weights per-kernel AVFs by the golden run the variant actually executes.
func predictedSDC(measures map[string]KernelMeasure, protect map[string]bool) float64 {
	var num, den float64
	for _, k := range sortedKernels(measures) {
		m := measures[k]
		w, sdc := m.Weight, m.SDC
		if protect[k] {
			mult := m.HardMult
			if mult <= 0 {
				mult = 1
			}
			w *= mult
			sdc = m.SDCHardened
		}
		num += w * sdc
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// predictedOverhead estimates the cycle overhead of a protection set as
// 1 + the sum of the members' marginal costs. Costs are measured per
// singleton set (replicated kernel cycles + final vote), so the sum
// slightly over-counts the shared vote for multi-kernel sets — a
// conservative estimate; verification measures the real overhead.
func predictedOverhead(costs map[string]float64, protect map[string]bool) float64 {
	keys := make([]string, 0, len(protect))
	for k := range protect { //relint:allow map-order: sorted immediately below
		if protect[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	o := 1.0
	for _, k := range keys {
		o += costs[k]
	}
	return o
}

// Search runs the deterministic greedy lattice walk: starting from the
// empty set, it repeatedly protects the kernel with the best predicted
// SDC-reduction-per-cost ratio until the predicted SDC meets the budget.
// Ties break by static Hint (descending), then kernel name (ascending), so
// the walk — and hence the plan — is a pure function of its inputs. If
// even the full set misses the budget the search refuses with
// ErrBudgetUnattainable.
func Search(app string, budget float64, measures map[string]KernelMeasure, costs map[string]float64, fullOverhead float64) (*Plan, error) {
	kernels := sortedKernels(measures)
	all := make(map[string]bool, len(kernels))
	for _, k := range kernels {
		all[k] = true
	}
	if best := predictedSDC(measures, all); best > budget {
		return nil, &ErrBudgetUnattainable{Budget: budget, BestSDC: best}
	}

	protect := make(map[string]bool)
	plan := &Plan{App: app, Budget: budget, FullOverhead: fullOverhead}
	cur := predictedSDC(measures, protect)
	for cur > budget {
		bestK := ""
		var bestRatio, bestGain, bestCost, bestSDC float64
		for _, k := range kernels {
			if protect[k] {
				continue
			}
			protect[k] = true
			sdc := predictedSDC(measures, protect)
			cost := costs[k]
			protect[k] = false
			gain := cur - sdc
			// Floor the cost so a zero-cost measurement cannot produce an
			// infinite ratio and mask real gains.
			ratio := gain / maxf(cost, 1e-9)
			if bestK == "" || better(ratio, measures[k].Hint, k, bestRatio, measures[bestK].Hint, bestK) {
				bestK, bestRatio, bestGain, bestCost, bestSDC = k, ratio, gain, cost, sdc
			}
		}
		protect[bestK] = true
		cur = bestSDC
		plan.Steps = append(plan.Steps, SearchStep{
			Add:               bestK,
			PredictedSDC:      bestSDC,
			PredictedOverhead: predictedOverhead(costs, protect),
			Gain:              bestGain,
			Cost:              bestCost,
			Ratio:             bestRatio,
		})
	}

	for _, k := range kernels {
		if protect[k] {
			plan.Protect = append(plan.Protect, k)
		}
	}
	plan.PredictedSDC = cur
	plan.PredictedOverhead = predictedOverhead(costs, protect)
	return plan, nil
}

// better reports whether candidate (ratio a, hint ha, name ka) beats the
// incumbent (b, hb, kb): higher ratio wins, ties fall to higher static
// hint, then to the lexically smaller kernel name.
func better(a, ha float64, ka string, b, hb float64, kb string) bool {
	if a != b {
		return a > b
	}
	if ha != hb {
		return ha > hb
	}
	return ka < kb
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
