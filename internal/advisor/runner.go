package advisor

import (
	"context"
	"fmt"
	"sort"
)

// Backend is the measurement surface the runner drives. The production
// implementation is the study stack (gpurel.Study); tests substitute a
// synthetic table. All methods must be deterministic for a fixed backend
// configuration — the runner's resume guarantee is only as strong as the
// backend's.
type Backend interface {
	// Kernels lists the app's kernels in schedule order.
	Kernels(ctx context.Context, app string) ([]string, error)
	// Measure produces one kernel's vulnerability measurement (plain and
	// hardened SDC, cycle weight, TMR multiplier, static hint).
	Measure(ctx context.Context, app, kernel string) (KernelMeasure, error)
	// Cost measures the marginal cycle overhead of protecting exactly this
	// kernel: cycles(Selective({kernel})) / cycles(plain) − 1.
	Cost(ctx context.Context, app, kernel string) (float64, error)
	// FullOverhead measures the full-TMR cycle overhead of the app.
	FullOverhead(ctx context.Context, app string) (float64, error)
	// Verify runs the verification campaign on the selectively hardened job
	// and reports its measured SDC position. TotalRuns and Pass are filled
	// in by the runner. A blocked backend should honor ctx so cancellation
	// and daemon shutdown interrupt in-flight units promptly.
	Verify(ctx context.Context, app string, protect []string) (Verification, error)
}

// PreRanker is an optional Backend capability: a zero-cost static
// pre-ranking of the app's kernels (the flow interval engine's static AVF
// bounds — no campaign runs). When present, the runner records the ranks in
// the state and measures kernels in descending static-upper-bound order, so
// an interrupted run has journaled the most-exposed kernels first. Plans are
// unaffected: the search consumes the complete measurement maps, which are
// order-independent.
type PreRanker interface {
	PreRank(ctx context.Context, app string) ([]StaticRank, error)
}

// preRankOrder reorders kernels by descending static upper bound; ties and
// kernels missing from the ranking keep schedule order (stable sort).
func preRankOrder(kernels []string, ranks []StaticRank) []string {
	if len(ranks) == 0 {
		return kernels
	}
	upper := make(map[string]float64, len(ranks))
	for _, r := range ranks {
		upper[r.Kernel] = r.Upper
	}
	ordered := append([]string(nil), kernels...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return upper[ordered[i]] > upper[ordered[j]]
	})
	return ordered
}

// Runner executes one advise run: measure every kernel, search for the
// cheapest plan meeting the budget, verify the plan with a real campaign.
type Runner struct {
	Backend Backend
	App     string
	Budget  float64
	// OnState, if set, is called with the full state after every completed
	// unit of work (one kernel measured, one cost priced, the plan found,
	// the verification done). Journal the state there; a later run resumed
	// from the journaled state skips the completed units.
	OnState func(*State)
	// Resume, if set, seeds the run with a previously journaled state:
	// kernels already measured or priced are not re-run, and a recorded
	// plan or verification short-circuits those phases entirely.
	Resume *State
}

// Run drives the advise to completion (or ctx cancellation). The returned
// state always reflects everything measured so far, even on error; in
// particular a refused plan returns ErrPlanRefused with the failing
// verification recorded in the state.
func (r *Runner) Run(ctx context.Context) (*State, error) {
	st := r.Resume
	if st == nil {
		st = &State{Version: StateVersion, App: r.App, Budget: r.Budget}
	}
	if st.App != r.App || st.Budget != r.Budget {
		return st, fmt.Errorf("advisor: resume state is for app %q budget %g, not app %q budget %g", st.App, st.Budget, r.App, r.Budget)
	}
	if st.Measures == nil {
		st.Measures = map[string]KernelMeasure{}
	}
	if st.Costs == nil {
		st.Costs = map[string]float64{}
	}
	emit := func() {
		if r.OnState != nil {
			r.OnState(st)
		}
	}

	// Phase 1: measure. One unit per kernel for vulnerability, one per
	// kernel for cost, one for the full-TMR overhead — each journaled as it
	// lands so a kill loses at most one unit.
	st.Phase = PhaseMeasure
	kernels, err := r.Backend.Kernels(ctx, r.App)
	if err != nil {
		return st, err
	}
	if pr, ok := r.Backend.(PreRanker); ok && st.PreRank == nil {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		ranks, err := pr.PreRank(ctx, r.App)
		if err != nil {
			return st, fmt.Errorf("pre-rank %s: %w", r.App, err)
		}
		st.PreRank = ranks
		emit()
	}
	kernels = preRankOrder(kernels, st.PreRank)
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if _, ok := st.Measures[k]; ok {
			continue
		}
		m, err := r.Backend.Measure(ctx, r.App, k)
		if err != nil {
			return st, fmt.Errorf("measure %s/%s: %w", r.App, k, err)
		}
		st.Measures[k] = m
		emit()
	}
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if _, ok := st.Costs[k]; ok {
			continue
		}
		c, err := r.Backend.Cost(ctx, r.App, k)
		if err != nil {
			return st, fmt.Errorf("cost %s/%s: %w", r.App, k, err)
		}
		st.Costs[k] = c
		emit()
	}
	if st.FullOverhead == nil {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		o, err := r.Backend.FullOverhead(ctx, r.App)
		if err != nil {
			return st, fmt.Errorf("full overhead %s: %w", r.App, err)
		}
		st.FullOverhead = &o
		emit()
	}

	// Phase 2: search. Pure function of the journaled measurements, so a
	// resumed run re-derives (or reuses) the identical plan.
	st.Phase = PhaseSearch
	if st.Plan == nil {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		plan, err := Search(r.App, r.Budget, st.Measures, st.Costs, *st.FullOverhead)
		if err != nil {
			return st, err
		}
		st.Plan = plan
		emit()
	}

	// Phase 3: verify. A full campaign on the planned job; the advisor
	// refuses to bless a plan whose measured SDC misses the budget.
	st.Phase = PhaseVerify
	if st.Verification == nil {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		v, err := r.Backend.Verify(ctx, r.App, st.Plan.Protect)
		if err != nil {
			return st, fmt.Errorf("verify %s: %w", r.App, err)
		}
		v.FullOverhead = *st.FullOverhead
		v.Pass = v.SDC <= r.Budget
		st.Verification = &v
		emit()
	}

	st.Phase = PhaseDone
	emit()
	if !st.Verification.Pass {
		return st, &ErrPlanRefused{Budget: r.Budget, MeasuredSDC: st.Verification.SDC, Plan: st.Plan}
	}
	return st, nil
}
