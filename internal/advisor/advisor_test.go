package advisor

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fakeBackend is a synthetic measurement table. Verify models the measured
// SDC as the weighted prediction over the table (plus an optional skew), so
// plans verify exactly unless a test wants them refused.
type fakeBackend struct {
	kernels  []string
	measures map[string]KernelMeasure
	costs    map[string]float64
	full     float64
	skew     float64 // added to verified SDC
	calls    map[string]int
}

func (f *fakeBackend) count(unit string) {
	if f.calls == nil {
		f.calls = map[string]int{}
	}
	f.calls[unit]++
}

func (f *fakeBackend) Kernels(ctx context.Context, app string) ([]string, error) {
	return append([]string(nil), f.kernels...), nil
}

func (f *fakeBackend) Measure(ctx context.Context, app, kernel string) (KernelMeasure, error) {
	f.count("measure:" + kernel)
	m, ok := f.measures[kernel]
	if !ok {
		return KernelMeasure{}, errors.New("unknown kernel " + kernel)
	}
	return m, nil
}

func (f *fakeBackend) Cost(ctx context.Context, app, kernel string) (float64, error) {
	f.count("cost:" + kernel)
	return f.costs[kernel], nil
}

func (f *fakeBackend) FullOverhead(ctx context.Context, app string) (float64, error) {
	f.count("full")
	return f.full, nil
}

func (f *fakeBackend) Verify(ctx context.Context, app string, protect []string) (Verification, error) {
	f.count("verify")
	set := map[string]bool{}
	for _, k := range protect {
		set[k] = true
	}
	sdc := predictedSDC(f.measures, set) + f.skew
	return Verification{SDC: sdc, Overhead: predictedOverhead(f.costs, set), TotalRuns: 100 * len(protect)}, nil
}

// threeKernelBackend: K2 dominates the SDC, K1 is cheap insurance, K3 is
// expensive and nearly invulnerable.
func threeKernelBackend() *fakeBackend {
	return &fakeBackend{
		kernels: []string{"K1", "K2", "K3"},
		measures: map[string]KernelMeasure{
			"K1": {Kernel: "K1", Weight: 100, HardMult: 3, SDC: 0.02, SDCHardened: 0.001, Hint: 2},
			"K2": {Kernel: "K2", Weight: 300, HardMult: 3, SDC: 0.08, SDCHardened: 0.002, Hint: 5},
			"K3": {Kernel: "K3", Weight: 50, HardMult: 3.2, SDC: 0.005, SDCHardened: 0.001, Hint: 1},
		},
		costs: map[string]float64{"K1": 1.2, "K2": 1.4, "K3": 0.5},
		full:  3.05,
	}
}

func TestSearchGreedyPicksDominantKernel(t *testing.T) {
	b := threeKernelBackend()
	// Budget reachable by protecting K2 alone.
	one := map[string]bool{"K2": true}
	budget := predictedSDC(b.measures, one) + 1e-9
	plan, err := Search("app", budget, b.measures, b.costs, b.full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Protect, []string{"K2"}) {
		t.Fatalf("protect = %v, want [K2]", plan.Protect)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Add != "K2" {
		t.Fatalf("steps = %+v, want single K2 round", plan.Steps)
	}
	if plan.PredictedOverhead >= b.full {
		t.Fatalf("predicted overhead %.3f not below full %.3f", plan.PredictedOverhead, b.full)
	}
}

func TestSearchEmptySetWhenBudgetAlreadyMet(t *testing.T) {
	b := threeKernelBackend()
	plan, err := Search("app", 1.0, b.measures, b.costs, b.full)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Protect) != 0 || len(plan.Steps) != 0 {
		t.Fatalf("plan = %+v, want empty protection", plan)
	}
	if plan.PredictedOverhead != 1.0 {
		t.Fatalf("overhead = %v, want 1", plan.PredictedOverhead)
	}
}

func TestSearchRefusesUnattainableBudget(t *testing.T) {
	b := threeKernelBackend()
	_, err := Search("app", 1e-6, b.measures, b.costs, b.full)
	var unattainable *ErrBudgetUnattainable
	if !errors.As(err, &unattainable) {
		t.Fatalf("err = %v, want ErrBudgetUnattainable", err)
	}
	if unattainable.BestSDC <= 1e-6 {
		t.Fatalf("BestSDC = %v, want above budget", unattainable.BestSDC)
	}
}

func TestSearchTieBreaksByHintThenName(t *testing.T) {
	// Two kernels with identical gain and cost; B has the higher hint and
	// must win the round despite A sorting first.
	measures := map[string]KernelMeasure{
		"A": {Kernel: "A", Weight: 100, HardMult: 1, SDC: 0.1, SDCHardened: 0, Hint: 1},
		"B": {Kernel: "B", Weight: 100, HardMult: 1, SDC: 0.1, SDCHardened: 0, Hint: 9},
	}
	costs := map[string]float64{"A": 0.5, "B": 0.5}
	plan, err := Search("app", 0.051, measures, costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Protect, []string{"B"}) {
		t.Fatalf("protect = %v, want hint-preferred [B]", plan.Protect)
	}

	// Equal hints: lexical order decides.
	m2 := map[string]KernelMeasure{}
	for k, m := range measures {
		m.Hint = 1
		m2[k] = m
	}
	plan2, err := Search("app", 0.051, m2, costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan2.Protect, []string{"A"}) {
		t.Fatalf("protect = %v, want lexically-first [A]", plan2.Protect)
	}
}

func TestSearchDeterministic(t *testing.T) {
	b := threeKernelBackend()
	p1, err := Search("app", 0.01, b.measures, b.costs, b.full)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Search("app", 0.01, b.measures, b.costs, b.full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("plans differ:\n%+v\n%+v", p1, p2)
	}
}

func TestRunnerPhasesAndJournal(t *testing.T) {
	b := threeKernelBackend()
	var states []State
	r := &Runner{
		Backend: b,
		App:     "app",
		Budget:  0.02,
		OnState: func(s *State) {
			cp := *s
			states = append(states, cp)
		},
	}
	st, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseDone {
		t.Fatalf("phase = %s, want done", st.Phase)
	}
	if st.Plan == nil || st.Verification == nil {
		t.Fatalf("missing plan or verification: %+v", st)
	}
	if !st.Verification.Pass || st.Verification.SDC > 0.02 {
		t.Fatalf("verification = %+v, want pass within budget", st.Verification)
	}
	if st.Verification.FullOverhead != b.full {
		t.Fatalf("full overhead = %v, want %v", st.Verification.FullOverhead, b.full)
	}
	// One state per measured kernel, per cost, one for full overhead, one
	// for the plan, one for verification, one for done.
	want := 2*len(b.kernels) + 4
	if len(states) != want {
		t.Fatalf("journaled %d states, want %d", len(states), want)
	}
	// State round-trips through JSON (the journal format).
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, st) {
		t.Fatalf("state JSON round-trip mismatch:\n%+v\n%+v", back, st)
	}
}

func TestRunnerResumeSkipsCompletedUnits(t *testing.T) {
	budget := 0.02
	full := &Runner{Backend: threeKernelBackend(), App: "app", Budget: budget}
	want, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Re-run from every journaled prefix: each resume must reproduce the
	// identical final state without re-running completed units.
	var journal []State
	rec := &Runner{Backend: threeKernelBackend(), App: "app", Budget: budget,
		OnState: func(s *State) {
			raw, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			var cp State
			if err := json.Unmarshal(raw, &cp); err != nil {
				t.Fatal(err)
			}
			journal = append(journal, cp)
		}}
	if _, err := rec.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := range journal {
		resumed := journal[i]
		// Snapshot what the resume state already contains before Run mutates
		// the state's maps in place.
		done := sortedKernels(resumed.Measures)
		hadFull := resumed.FullOverhead != nil
		hadVerification := resumed.Verification != nil
		b := threeKernelBackend()
		r := &Runner{Backend: b, App: "app", Budget: budget, Resume: &resumed}
		got, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("resume from state %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Plan, want.Plan) {
			t.Fatalf("resume from state %d: plan mismatch:\n%+v\n%+v", i, got.Plan, want.Plan)
		}
		if !reflect.DeepEqual(got.Verification, want.Verification) {
			t.Fatalf("resume from state %d: verification mismatch", i)
		}
		// Units present in the resume state must not have been re-run.
		for _, k := range done {
			if b.calls["measure:"+k] != 0 {
				t.Fatalf("resume from state %d re-measured %s", i, k)
			}
		}
		if hadFull && b.calls["full"] != 0 {
			t.Fatalf("resume from state %d re-ran full overhead", i)
		}
		if hadVerification && b.calls["verify"] != 0 {
			t.Fatalf("resume from state %d re-verified", i)
		}
	}
}

func TestRunnerRefusesFailingPlan(t *testing.T) {
	b := threeKernelBackend()
	b.skew = 1.0 // verification always measures way above budget
	r := &Runner{Backend: b, App: "app", Budget: 0.02}
	st, err := r.Run(context.Background())
	var refused *ErrPlanRefused
	if !errors.As(err, &refused) {
		t.Fatalf("err = %v, want ErrPlanRefused", err)
	}
	if st.Verification == nil || st.Verification.Pass {
		t.Fatalf("verification = %+v, want recorded failure", st.Verification)
	}
	if refused.Plan == nil || refused.MeasuredSDC <= 0.02 {
		t.Fatalf("refusal detail = %+v", refused)
	}
}

func TestRunnerResumeRejectsMismatchedState(t *testing.T) {
	r := &Runner{Backend: threeKernelBackend(), App: "app", Budget: 0.02,
		Resume: &State{Version: StateVersion, App: "other", Budget: 0.02}}
	if _, err := r.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "resume state") {
		t.Fatalf("err = %v, want resume mismatch", err)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Backend: threeKernelBackend(), App: "app", Budget: 0.02}
	if _, err := r.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSortedKernelsSorted(t *testing.T) {
	m := map[string]KernelMeasure{"z": {}, "a": {}, "m": {}}
	got := sortedKernels(m)
	if !sort.StringsAreSorted(got) || len(got) != 3 {
		t.Fatalf("sortedKernels = %v", got)
	}
}

// preRankedBackend decorates fakeBackend with the PreRanker capability and
// records the order kernels are measured in.
type preRankedBackend struct {
	*fakeBackend
	ranks    []StaticRank
	prCalls  int
	measured []string
}

func (p *preRankedBackend) PreRank(ctx context.Context, app string) ([]StaticRank, error) {
	p.prCalls++
	return append([]StaticRank(nil), p.ranks...), nil
}

func (p *preRankedBackend) Measure(ctx context.Context, app, kernel string) (KernelMeasure, error) {
	p.measured = append(p.measured, kernel)
	return p.fakeBackend.Measure(ctx, app, kernel)
}

// TestRunnerPreRankPlanUnchanged pins the pre-rank contract: a backend
// offering static pre-ranks gets its measurement phase reordered (descending
// static upper bound) and the ranks journaled, but the resulting plan and
// verification are identical to the same backend without the capability —
// the search is a pure function of the complete measurement maps.
func TestRunnerPreRankPlanUnchanged(t *testing.T) {
	budget := 0.02
	plain := &Runner{Backend: threeKernelBackend(), App: "app", Budget: budget}
	want, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pb := &preRankedBackend{
		fakeBackend: threeKernelBackend(),
		ranks: []StaticRank{
			{Kernel: "K1", Lower: 0, Upper: 0.2},
			{Kernel: "K2", Lower: 0, Upper: 0.9},
			{Kernel: "K3", Lower: 0, Upper: 0.5},
		},
	}
	ranked := &Runner{Backend: pb, App: "app", Budget: budget}
	got, err := ranked.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Plan, want.Plan) {
		t.Fatalf("pre-ranking changed the plan:\n%+v\n%+v", got.Plan, want.Plan)
	}
	if !reflect.DeepEqual(got.Verification, want.Verification) {
		t.Fatalf("pre-ranking changed the verification")
	}
	if !reflect.DeepEqual(pb.measured, []string{"K2", "K3", "K1"}) {
		t.Fatalf("measurement order = %v, want descending upper [K2 K3 K1]", pb.measured)
	}
	if !reflect.DeepEqual(got.PreRank, pb.ranks) {
		t.Fatalf("state.PreRank = %+v, want journaled ranks", got.PreRank)
	}
	if want.PreRank != nil {
		t.Fatalf("plain backend recorded PreRank %+v", want.PreRank)
	}

	// A resume whose state already holds the ranks must not re-rank, and
	// must land on the same plan.
	pb2 := &preRankedBackend{fakeBackend: threeKernelBackend(), ranks: pb.ranks}
	raw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var resume State
	if err := json.Unmarshal(raw, &resume); err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Runner{Backend: pb2, App: "app", Budget: budget, Resume: &resume}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pb2.prCalls != 0 {
		t.Fatalf("resume re-ran PreRank %d times", pb2.prCalls)
	}
	if !reflect.DeepEqual(resumed.Plan, want.Plan) {
		t.Fatalf("resumed plan mismatch")
	}
}

// TestPreRankOrderStable pins the tie/missing-kernel behaviour: equal or
// absent upper bounds keep schedule order.
func TestPreRankOrderStable(t *testing.T) {
	ks := []string{"A", "B", "C", "D"}
	got := preRankOrder(ks, []StaticRank{{Kernel: "C", Upper: 0.5}, {Kernel: "B", Upper: 0.5}})
	if !reflect.DeepEqual(got, []string{"B", "C", "A", "D"}) {
		t.Fatalf("order = %v", got)
	}
	if !reflect.DeepEqual(preRankOrder(ks, nil), ks) {
		t.Fatalf("nil ranks must be identity")
	}
}
