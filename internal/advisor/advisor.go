// Package advisor plans selective hardening: given a per-kernel
// vulnerability/cost measurement backend and an SDC budget, it searches for
// the cheapest protection set whose predicted SDC meets the budget and then
// verifies the plan with a real campaign on the selectively hardened job.
//
// The advisor closes the loop over the rest of the repo: the measurement
// backend is the study stack (adaptive Wilson-CI campaigns per kernel,
// golden-run cycle counts of hardened variants, flow-derived static hints
// ordering the search), the transform is harden.Selective, and the
// verification is an ordinary app-AVF campaign on the planned job — so all
// fault models and the fleet distribution path apply unchanged.
//
// Everything is deterministic and journaled: the runner emits its full
// State after every completed unit of work, and Resume skips units already
// present in a recovered State, so a killed search resumes to a
// bit-identical plan.
package advisor

import (
	"fmt"
	"sort"
)

// KernelMeasure is the measurement phase's verdict on one kernel: how much
// it matters (Weight, SDC) and what protecting it buys (SDCHardened) and
// costs (HardMult). Hint is a static flow-analysis score used only to order
// the search among otherwise-equal candidates.
type KernelMeasure struct {
	Kernel string `json:"kernel"`
	// Weight is the kernel's share basis: its golden-run cycle count on the
	// unhardened job.
	Weight float64 `json:"weight"`
	// HardMult is the kernel's cycle multiplier under TMR (hardened cycles /
	// plain cycles), used to re-weight protected kernels in predictions.
	HardMult float64 `json:"hard_mult"`
	// SDC and SDCHardened are the kernel's measured chip-level SDC AVF on
	// the plain and full-TMR variants of the app.
	SDC         float64 `json:"sdc"`
	SDCHardened float64 `json:"sdc_hardened"`
	// Hint is a static prioritization score (higher = try protecting
	// earlier); ties in the greedy ratio are broken by Hint, then name.
	Hint float64 `json:"hint"`
}

// StaticRank is the zero-cost static pre-ranking of one kernel: the flow
// interval engine's static AVF bracket for the kernel's launch windows.
// Pre-ranks only reorder the measurement phase (most-exposed kernels first,
// so an interrupted run has journaled the kernels most likely to matter);
// they never change which kernels are measured or what the search decides —
// the plan is a pure function of the complete measurement maps.
type StaticRank struct {
	Kernel string  `json:"kernel"`
	Lower  float64 `json:"lower"`
	Upper  float64 `json:"upper"`
}

// SearchStep records one greedy round: the kernel added and the predicted
// position after adding it.
type SearchStep struct {
	Add               string  `json:"add"`
	PredictedSDC      float64 `json:"predicted_sdc"`
	PredictedOverhead float64 `json:"predicted_overhead"`
	// Gain is the predicted SDC reduction of this round, Cost the overhead
	// increment, Ratio their quotient (the greedy objective).
	Gain  float64 `json:"gain"`
	Cost  float64 `json:"cost"`
	Ratio float64 `json:"ratio"`
}

// Plan is the search result: the protection set and its predicted position,
// plus the full step-by-step lattice walk for auditability.
type Plan struct {
	App    string  `json:"app"`
	Budget float64 `json:"budget"`
	// Protect is the chosen protection set, sorted.
	Protect           []string     `json:"protect"`
	PredictedSDC      float64      `json:"predicted_sdc"`
	PredictedOverhead float64      `json:"predicted_overhead"`
	FullOverhead      float64      `json:"full_overhead"`
	Steps             []SearchStep `json:"steps,omitempty"`
}

// Verification is the measured truth about a plan: a full campaign on the
// selectively hardened job.
type Verification struct {
	// SDC is the measured chip-level SDC AVF of the planned job.
	SDC float64 `json:"sdc"`
	// Overhead is the measured golden-run cycle overhead of the planned job
	// vs the unhardened job; FullOverhead the same for full TMR.
	Overhead     float64 `json:"overhead"`
	FullOverhead float64 `json:"full_overhead"`
	// PerKernel is the per-kernel SDC breakdown of the verified job.
	PerKernel map[string]float64 `json:"per_kernel,omitempty"`
	// TotalRuns counts injection runs spent in verification.
	TotalRuns int `json:"total_runs"`
	// Pass reports whether the measured SDC met the budget.
	Pass bool `json:"pass"`
}

// Phases of an advise run, in order.
const (
	PhaseMeasure = "measure"
	PhaseSearch  = "search"
	PhaseVerify  = "verify"
	PhaseDone    = "done"
)

// State is the journaled progress of one advise run. It is emitted whole
// after every completed unit of work; a run resumed from a State skips the
// units it already contains and reproduces the remainder bit-identically.
type State struct {
	Version int     `json:"version"`
	App     string  `json:"app"`
	Budget  float64 `json:"budget"`
	Phase   string  `json:"phase"`
	// PreRank is the static pre-ranking recorded when the backend offers one
	// (the PreRanker capability); absent otherwise, so seed-era journals
	// round-trip unchanged.
	PreRank []StaticRank `json:"pre_rank,omitempty"`
	// Measures and Costs accumulate during PhaseMeasure, keyed by kernel.
	Measures map[string]KernelMeasure `json:"measures,omitempty"`
	Costs    map[string]float64       `json:"costs,omitempty"`
	// FullOverhead is the measured full-TMR cycle overhead (set at the end
	// of the measurement phase).
	FullOverhead *float64      `json:"full_overhead,omitempty"`
	Plan         *Plan         `json:"plan,omitempty"`
	Verification *Verification `json:"verification,omitempty"`
}

// StateVersion is the journal schema version written into State.Version.
const StateVersion = 1

// ErrBudgetUnattainable is returned (wrapped) when even protecting every
// kernel is predicted to miss the budget: the plan is refused before any
// verification runs are spent.
type ErrBudgetUnattainable struct {
	Budget  float64
	BestSDC float64
}

func (e *ErrBudgetUnattainable) Error() string {
	return fmt.Sprintf("advisor: budget %.6g unattainable: full protection still predicts SDC %.6g", e.Budget, e.BestSDC)
}

// ErrPlanRefused is returned when the verification campaign measures an SDC
// above the budget: the advisor refuses to bless the plan.
type ErrPlanRefused struct {
	Budget      float64
	MeasuredSDC float64
	Plan        *Plan
}

func (e *ErrPlanRefused) Error() string {
	return fmt.Sprintf("advisor: plan refused: measured SDC %.6g exceeds budget %.6g", e.MeasuredSDC, e.Budget)
}

// sortedKernels returns the measurement map's keys in sorted order —
// the single iteration order every phase uses, keeping runs deterministic
// and relint's map-order rule happy.
func sortedKernels(m map[string]KernelMeasure) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //relint:allow map-order: sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
