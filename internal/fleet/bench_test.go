package fleet_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

// BenchmarkFleet_Scaling measures fleet throughput on a real SRADv1 RF
// campaign: the same coordinator-only daemon (local execution disabled)
// driven first by one worker, then by two. Work arrives in 15-run leases so
// the tail stays balanced; two workers on two cores must clear at least
// 1.7× the single-worker throughput, with bit-identical tallies.
//
// Set GPUREL_BENCH_JSON=path to export the measurements as a JSON artifact
// (CI uploads it as BENCH_fleet.json).
func BenchmarkFleet_Scaling(b *testing.B) {
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		b.Skip("fleet scaling needs at least two cores to mean anything")
	}

	// One shared study per benchmark process: the golden SRADv1 runs are
	// memoised, so neither fleet size pays construction costs inside the
	// timed region (warmed below), mirroring long-lived worker processes.
	study := gpurel.NewStudy(0, 1)
	source := service.NewStudySource(study)
	spec := service.JobSpec{
		Layer: "micro", App: "SRADv1", Kernel: "K4", Structure: "RF",
		Runs: 240, Seed: 7,
	}
	if fn, err := source(spec); err != nil {
		b.Fatal(err)
	} else {
		campaign.RunRange(campaign.Options{Runs: spec.Runs, Seed: spec.Seed}, 0, 1, fn)
	}

	var d1, d2 time.Duration
	var t1, t2 campaign.Tally
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1, d1 = runFleet(b, source, spec, 1)
		t2, d2 = runFleet(b, source, spec, 2)
	}
	b.StopTimer()

	if t1 != t2 {
		b.Fatalf("fleet tallies differ by worker count: 1w %+v, 2w %+v", t1, t2)
	}
	speedup := d1.Seconds() / d2.Seconds()
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(d1.Seconds()/float64(spec.Runs)*1e9, "ns/run-1w")
	b.ReportMetric(d2.Seconds()/float64(spec.Runs)*1e9, "ns/run-2w")
	if speedup < 1.7 {
		b.Fatalf("2-worker fleet speedup %.2fx, want >= 1.7x (1w %v, 2w %v)", speedup, d1, d2)
	}

	if path := os.Getenv("GPUREL_BENCH_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"benchmark":        "Fleet_Scaling",
			"app":              spec.App,
			"kernel":           spec.Kernel,
			"structure":        spec.Structure,
			"runs":             spec.Runs,
			"workers_1_sec":    d1.Seconds(),
			"workers_2_sec":    d2.Seconds(),
			"speedup":          speedup,
			"runs_per_sec_1w":  float64(spec.Runs) / d1.Seconds(),
			"runs_per_sec_2w":  float64(spec.Runs) / d2.Seconds(),
			"tally_identical":  t1 == t2,
			"speedup_floor_ok": speedup >= 1.7,
		}, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// runFleet executes one campaign on a coordinator-only daemon with n
// workers and returns the final tally and wall-clock duration. Each call
// builds a fresh scheduler (jobs are process state) but shares the study
// source, like a restarted coordinator in a warm fleet.
func runFleet(b testing.TB, source service.SourceFunc, spec service.JobSpec, n int) (campaign.Tally, time.Duration) {
	b.Helper()
	sched, err := service.NewScheduler(service.Config{Source: source, DisableLocalExec: true})
	if err != nil {
		b.Fatal(err)
	}
	defer sched.Close()
	coord, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{
		LeaseRuns: 15, LeaseTTL: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))
	defer srv.Close()

	stops := make([]func(), 0, n)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		_, stop := startBenchWorker(b, fleet.WorkerConfig{
			Client: client.New(srv.URL), Source: source,
			Chunk: 15, Workers: 1, Poll: time.Millisecond,
		})
		stops = append(stops, stop)
	}

	start := time.Now()
	st, err := sched.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		got, ok := sched.Get(st.ID)
		if !ok {
			b.Fatalf("job %s vanished", st.ID)
		}
		if got.State == service.StateDone {
			return got.Tally, time.Since(start)
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			b.Fatalf("fleet campaign stuck: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
}

func startBenchWorker(b testing.TB, cfg fleet.WorkerConfig) (*fleet.Worker, func()) {
	b.Helper()
	w, err := fleet.NewWorker(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx) //nolint:errcheck — canceled at teardown
	}()
	return w, func() {
		cancel()
		<-done
	}
}
