// Worker-registry tests: health states derived from heartbeat history under
// an injected clock, capability-scored adaptive lease sizing, fault-model
// capability matching, and the unified error envelope on every fleet route.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// clockHarness builds a coordinator on an injected clock with a huge sweep
// interval, so tests drive expiry explicitly via coord.Sweep().
func clockHarness(t *testing.T, clk *fakeClock, fcfg fleet.CoordinatorConfig) (*service.Scheduler, *fleet.Coordinator, *httptest.Server) {
	t.Helper()
	fcfg.Now = clk.Now
	if fcfg.Sweep <= 0 {
		fcfg.Sweep = time.Hour
	}
	sched, err := service.NewScheduler(service.Config{Source: synthSource(0), DisableLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(sched, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { sched.Close() })
	t.Cleanup(func() { coord.Close() })
	return sched, coord, srv
}

func registerWorker(t *testing.T, c *client.Client, spec service.WorkerSpec) service.WorkerStatus {
	t.Helper()
	st, err := c.RegisterWorker(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWorkerHealthLifecycle walks one worker through every derived health
// state: available on registration, busy while holding a lease, degraded
// after its lease expires, degraded again when its heartbeat goes stale,
// draining on DELETE, and available again after re-registration.
func TestWorkerHealthLifecycle(t *testing.T) {
	clk := newFakeClock()
	const ttl = 10 * time.Second
	sched, coord, srv := clockHarness(t, clk, fleet.CoordinatorConfig{
		LeaseRuns: 100, LeaseTTL: ttl, DegradedAfter: 2 * ttl,
	})
	c := client.New(srv.URL)
	ctx := context.Background()

	if st := registerWorker(t, c, service.WorkerSpec{Name: "hw"}); st.Health != service.HealthAvailable || !st.Registered {
		t.Fatalf("fresh worker = %+v, want available+registered", st)
	}

	// Grant a lease: busy.
	if _, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lease(ctx, service.LeaseRequest{Worker: "hw"}); err != nil || !ok {
		t.Fatalf("lease: %v ok=%v", err, ok)
	}
	if st, err := c.GetWorker(ctx, "hw"); err != nil || st.Health != service.HealthBusy || st.OpenLeases != 1 {
		t.Fatalf("leased worker = %+v (%v), want busy with 1 open lease", st, err)
	}

	// Let the lease expire: the worker carries the expiry and reads
	// degraded for the DegradedAfter window.
	clk.Advance(ttl + time.Second)
	coord.Sweep()
	st, err := c.GetWorker(ctx, "hw")
	if err != nil || st.Health != service.HealthDegraded || st.ExpiredLeases != 1 {
		t.Fatalf("post-expiry worker = %+v (%v), want degraded with 1 expired lease", st, err)
	}

	// Past the window with no expiry in sight but also no traffic: stale
	// heartbeat keeps it degraded.
	clk.Advance(2*ttl + time.Second)
	if st, _ := c.GetWorker(ctx, "hw"); st.Health != service.HealthDegraded {
		t.Fatalf("stale worker = %+v, want degraded", st)
	}

	// Fresh traffic (an idle lease poll) makes it available again.
	if _, _, err := c.Lease(ctx, service.LeaseRequest{Worker: "hw", MaxRuns: 1}); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.GetWorker(ctx, "hw"); st.Health != service.HealthBusy && st.Health != service.HealthAvailable {
		t.Fatalf("refreshed worker = %+v", st)
	}

	// Drain: no leases granted until re-registration.
	if st, err := c.DrainWorker(ctx, "hw"); err != nil || st.Health != service.HealthDraining {
		t.Fatalf("drained worker = %+v (%v)", st, err)
	}
	if _, ok, err := c.Lease(ctx, service.LeaseRequest{Worker: "hw"}); err != nil || ok {
		t.Fatalf("draining worker granted a lease (ok=%v err=%v)", ok, err)
	}
	if st := registerWorker(t, c, service.WorkerSpec{Name: "hw"}); st.Health == service.HealthDraining {
		t.Fatalf("re-registration left worker draining: %+v", st)
	}
}

// TestAdaptiveLeaseSizing: grants scale with the worker's reported
// throughput — TargetLeaseSec seconds of work, clamped to
// [MinLeaseRuns, LeaseRuns] — and the request's own MaxRuns still caps the
// final grant.
func TestAdaptiveLeaseSizing(t *testing.T) {
	clk := newFakeClock()
	sched, _, srv := clockHarness(t, clk, fleet.CoordinatorConfig{
		LeaseRuns: 500, MinLeaseRuns: 16, TargetLeaseSec: 2, LeaseTTL: time.Hour,
	})
	c := client.New(srv.URL)
	ctx := context.Background()
	if _, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 100000, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	grant := func(req service.LeaseRequest) int {
		t.Helper()
		ls, ok, err := c.Lease(ctx, req)
		if err != nil || !ok {
			t.Fatalf("lease %+v: %v ok=%v", req, err, ok)
		}
		return ls.To - ls.From
	}

	// No throughput report: the fixed default.
	if n := grant(service.LeaseRequest{Worker: "plain"}); n != 500 {
		t.Errorf("default grant = %d, want 500", n)
	}
	// 100 runs/sec × 2 s horizon = 200 runs.
	if n := grant(service.LeaseRequest{Worker: "steady", RunsPerSec: 100}); n != 200 {
		t.Errorf("throughput-scored grant = %d, want 200", n)
	}
	// A very slow worker still gets the floor.
	if n := grant(service.LeaseRequest{Worker: "slow", RunsPerSec: 0.5}); n != 16 {
		t.Errorf("floored grant = %d, want 16", n)
	}
	// A very fast worker is clamped to the ceiling.
	if n := grant(service.LeaseRequest{Worker: "fast", RunsPerSec: 1e6}); n != 500 {
		t.Errorf("clamped grant = %d, want 500", n)
	}
	// The request's MaxRuns caps below the score.
	if n := grant(service.LeaseRequest{Worker: "steady", RunsPerSec: 100, MaxRuns: 50}); n != 50 {
		t.Errorf("request-capped grant = %d, want 50", n)
	}
	// The throughput rides the registry: the status document reflects it.
	st, err := c.GetWorker(ctx, "steady")
	if err != nil || st.Caps.RunsPerSec != 100 || st.LeaseSize != 200 {
		t.Errorf("registry record = %+v (%v), want rps=100 lease_size=200", st, err)
	}
}

// TestCapabilityModelMatching: a worker whose declared fault models exclude
// the job's model is not granted its work — the claim is returned for a
// capable worker.
func TestCapabilityModelMatching(t *testing.T) {
	clk := newFakeClock()
	sched, coord, srv := clockHarness(t, clk, fleet.CoordinatorConfig{LeaseRuns: 100, LeaseTTL: time.Hour})
	c := client.New(srv.URL)
	ctx := context.Background()

	stuck := 1
	if _, err := sched.Submit(service.JobSpec{
		Layer: "micro", App: "fake", Kernel: "K1", Structure: "RF", Runs: 300, Seed: 1,
		Fault: &service.FaultSpec{Model: "stuck", Stuck: &stuck},
	}); err != nil {
		t.Fatal(err)
	}

	registerWorker(t, c, service.WorkerSpec{Name: "transient-only",
		Caps: service.WorkerCaps{FaultModels: []string{"transient"}}})
	if _, ok, err := c.Lease(ctx, service.LeaseRequest{Worker: "transient-only"}); err != nil || ok {
		t.Fatalf("incapable worker granted a stuck-model lease (ok=%v err=%v)", ok, err)
	}
	// The returned claim is immediately available to a capable worker.
	ls, ok, err := c.Lease(ctx, service.LeaseRequest{Worker: "omni"})
	if err != nil || !ok {
		t.Fatalf("capable worker got nothing: %v ok=%v", err, ok)
	}
	if ls.From != 0 {
		t.Errorf("capable worker's lease starts at %d, want 0 (the returned claim)", ls.From)
	}
	if st := coord.Stats(); st.Granted != 1 {
		t.Errorf("stats = %+v, want exactly 1 grant", st)
	}
}

// TestFleetErrorEnvelope: every /v1 fleet route answers errors with the
// unified {"error":{"code","message"}} envelope.
func TestFleetErrorEnvelope(t *testing.T) {
	clk := newFakeClock()
	_, _, srv := clockHarness(t, clk, fleet.CoordinatorConfig{})

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	check := func(data []byte, wantCode string) {
		t.Helper()
		var env service.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != wantCode || env.Error.Message == "" {
			t.Errorf("error body %q, want envelope with code %q", data, wantCode)
		}
	}

	resp, data := post("/v1/leases", `{"lease":{"worker":"w"},"worker":"w"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed lease spelling: status %d, want 400", resp.StatusCode)
	}
	check(data, service.ErrCodeBadRequest)

	resp, data = post("/v1/leases", `{"lease":{"max_runs":-5}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid lease: status %d, want 400", resp.StatusCode)
	}
	check(data, service.ErrCodeBadRequest)

	resp, data = post("/v1/leases/nosuch/report", `{"report":{"worker":"w","from":0,"to":1,"tally":{"N":1}}}`)
	if resp.StatusCode != http.StatusGone {
		t.Errorf("report to unknown lease: status %d, want 410", resp.StatusCode)
	}
	check(data, service.ErrCodeGone)

	resp, data = post("/v1/workers", `{"name":"w"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bare worker spec: status %d, want 400", resp.StatusCode)
	}
	check(data, service.ErrCodeBadRequest)

	httpReq, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/workers/nosuch", nil)
	resp2, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker: status %d, want 404", resp2.StatusCode)
	}
	check(data, service.ErrCodeNotFound)

	// The client surfaces the envelope's code and message.
	_, err = client.New(srv.URL).GetWorker(context.Background(), "nosuch")
	if err == nil || !strings.Contains(err.Error(), service.ErrCodeNotFound) {
		t.Errorf("client error %v, want the envelope code surfaced", err)
	}
}

// TestLegacyLeaseDeprecationNote: the deprecated bare lease request still
// works end to end and the response carries the deprecation note; the
// enveloped spelling gets no note.
func TestLegacyLeaseDeprecationNote(t *testing.T) {
	clk := newFakeClock()
	sched, _, srv := clockHarness(t, clk, fleet.CoordinatorConfig{LeaseRuns: 50, LeaseTTL: time.Hour})
	if _, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	lease := func(body string) service.Lease {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/leases", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("lease: %d %s", resp.StatusCode, data)
		}
		var ls service.Lease
		if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
			t.Fatal(err)
		}
		return ls
	}

	if ls := lease(`{"worker":"legacy"}`); ls.Deprecation == "" {
		t.Error("bare lease request got no deprecation note")
	}
	if ls := lease(`{"lease":{"worker":"modern"}}`); ls.Deprecation != "" {
		t.Errorf("enveloped request flagged deprecated: %q", ls.Deprecation)
	}
}
