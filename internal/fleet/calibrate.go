package fleet

import (
	"math/rand"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
)

// DefaultCalibrateRuns sizes the registration micro-burst: large enough to
// amortize goroutine spin-up, small enough to finish in well under a second
// on anything.
const DefaultCalibrateRuns = 4096

// Calibrate measures this process's campaign throughput (runs/sec) with a
// synthetic arithmetic micro-burst through the same campaign.Run path real
// injections use. The result scales lease sizing, never tallies: it is the
// worker's initial capability report, refined by live per-chunk throughput
// once real leases flow. workers = 0 uses GOMAXPROCS, like a campaign.
func Calibrate(runs, workers int) float64 {
	if runs <= 0 {
		runs = DefaultCalibrateRuns
	}
	fn := func(run int, rng *rand.Rand) faults.Result {
		// A fixed xorshift workload per run: enough arithmetic to resemble a
		// (cheap) injection, deterministic so the burst itself is replayable.
		x := uint64(run)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		for i := 0; i < 256; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 { // unreachable; keeps the loop from folding away
			return faults.Result{Outcome: faults.SDC}
		}
		return faults.Result{Outcome: faults.Masked}
	}
	start := time.Now() //relint:allow wallclock: calibration measures real throughput, never feeds a tally
	campaign.Run(campaign.Options{Runs: runs, Seed: 1, Workers: workers}, fn)
	el := time.Since(start) //relint:allow wallclock: see above
	if el <= 0 {
		return 0
	}
	return float64(runs) / el.Seconds()
}
