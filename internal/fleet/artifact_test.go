// TestFleetStatusArtifact runs a small two-worker, two-tenant campaign with
// registered, calibrated workers, pins the fleet-status document's shape,
// and — when GPUREL_FLEET_JSON names a path — writes the document for the
// CI artifact (uploaded as fleet_status.json).
package fleet_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

func TestFleetStatusArtifact(t *testing.T) {
	sched, coord, srv := harness(t,
		service.Config{Source: synthSource(50 * time.Microsecond), DisableLocalExec: true},
		fleet.CoordinatorConfig{LeaseRuns: 120, LeaseTTL: 10 * time.Second, TargetLeaseSec: 1},
	)
	c := client.New(srv.URL)
	ctx := context.Background()

	const (
		aliceRuns = 600
		bobRuns   = 400
	)
	var ids []string
	for _, spec := range []service.JobSpec{
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: aliceRuns, Seed: 21, Tenant: "alice", Priority: 2},
		{Layer: "micro", App: "fake", Kernel: "K1", Runs: bobRuns, Seed: 22, Tenant: "bob"},
	} {
		st, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// Two registered workers with distinct capability reports: one
	// calibrated by the startup micro-burst, one with a declared rate.
	startWorker(t, fleet.WorkerConfig{
		ID: "art-a", Client: client.New(srv.URL), Source: synthSource(50 * time.Microsecond),
		Chunk: 60, Workers: 2, Poll: 2 * time.Millisecond, Backoff: testBackoff,
		CalibrateRuns: 64, Caps: service.WorkerCaps{SnapMB: 256},
	})
	startWorker(t, fleet.WorkerConfig{
		ID: "art-b", Client: client.New(srv.URL), Source: synthSource(50 * time.Microsecond),
		Chunk: 60, Workers: 2, Poll: 2 * time.Millisecond, Backoff: testBackoff,
		Caps: service.WorkerCaps{RunsPerSec: 500, SnapMB: 128},
	})

	for _, id := range ids {
		if final := waitTerminal(t, sched, id, 60*time.Second); final.State != service.StateDone {
			t.Fatalf("job %s ended %s: %+v", id, final.State, final)
		}
	}

	fs, err := c.FleetStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Workers) != 2 || fs.Workers[0].Name != "art-a" || fs.Workers[1].Name != "art-b" {
		t.Fatalf("workers = %+v, want [art-a art-b]", fs.Workers)
	}
	var runsDone int64
	for _, w := range fs.Workers {
		if !w.Registered {
			t.Errorf("worker %s not registered", w.Name)
		}
		if w.Caps.RunsPerSec <= 0 {
			t.Errorf("worker %s reported no throughput (calibration or declared rate missing): %+v", w.Name, w.Caps)
		}
		runsDone += w.RunsDone
	}
	if runsDone != aliceRuns+bobRuns {
		t.Errorf("workers did %d runs, want %d", runsDone, aliceRuns+bobRuns)
	}
	if len(fs.Tenants) != 2 || fs.Tenants[0].Tenant != "alice" || fs.Tenants[1].Tenant != "bob" {
		t.Fatalf("tenants = %+v, want [alice bob]", fs.Tenants)
	}
	if fs.Tenants[0].DoneRuns != aliceRuns || fs.Tenants[1].DoneRuns != bobRuns {
		t.Errorf("tenant accounting = %+v", fs.Tenants)
	}
	if fs.OpenLeases != 0 || fs.Leases.Granted == 0 || fs.Leases.Reported == 0 {
		t.Errorf("lease counters = open %d, %+v", fs.OpenLeases, fs.Leases)
	}
	if st := coord.Stats(); st.Granted != fs.Leases.Granted {
		t.Errorf("document granted %d != coordinator stats %+v", fs.Leases.Granted, st)
	}

	if path := os.Getenv("GPUREL_FLEET_JSON"); path != "" {
		out, err := json.MarshalIndent(fs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote fleet status artifact to %s", path)
	}
}
