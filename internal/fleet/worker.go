package fleet

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

// WorkerConfig sizes one fleet worker.
type WorkerConfig struct {
	// ID names the worker in coordinator metrics (default random "w…").
	ID string
	// Client reaches the coordinator (required).
	Client *client.Client
	// Source resolves job specs to experiments, exactly like the
	// scheduler's own source (required). Each worker process builds its own
	// golden runs; determinism makes them interchangeable.
	Source service.SourceFunc
	// Chunk is the report granularity in runs (default 100): one HTTP
	// report — which doubles as a heartbeat — per chunk.
	Chunk int
	// Workers bounds the campaign goroutines inside a chunk (default
	// GOMAXPROCS).
	Workers int
	// MaxRuns caps the lease size requested (0 = coordinator default).
	MaxRuns int
	// Poll is the idle sleep between lease requests when the coordinator
	// has no work (default 250ms).
	Poll time.Duration
	// Backoff schedules HTTP retries (zero value = client defaults:
	// 5 tries, 100ms base, 5s cap, full jitter).
	Backoff client.Backoff
	// Caps is the worker's static capability report (snapshot budget,
	// supported fault models). RunsPerSec is usually left zero and filled
	// by the calibration micro-burst, then refined from live chunk timings.
	Caps service.WorkerCaps
	// CalibrateRuns sizes the startup calibration micro-burst measuring
	// RunsPerSec (0 = skip; Caps.RunsPerSec, if set, is used as-is).
	// Negative values use DefaultCalibrateRuns.
	CalibrateRuns int
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("fleet: rand.Read: %v", err))
		}
		c.ID = "w" + hex.EncodeToString(b[:])
	}
	if c.Chunk <= 0 {
		c.Chunk = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// Worker pulls leases from a coordinator and executes them through the
// deterministic campaign path. Run i of a job draws from
// rand.NewSource(Seed+i) here exactly as it would on the coordinator, so
// where a run executes never shows in the tally.
type Worker struct {
	cfg WorkerConfig

	// runs counts runs this worker executed (reported or not).
	runs atomic.Int64
	// rps is the live throughput estimate in runs/sec (Float64bits),
	// seeded by calibration and refined per chunk (EWMA). It rides every
	// lease request so the coordinator's adaptive sizing tracks reality.
	rps atomic.Uint64
}

// NewWorker validates the config.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("fleet: WorkerConfig.Client is required")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("fleet: WorkerConfig.Source is required")
	}
	return &Worker{cfg: cfg.withDefaults()}, nil
}

// ID returns the worker's name.
func (w *Worker) ID() string { return w.cfg.ID }

// Runs returns the number of runs executed so far.
func (w *Worker) Runs() int64 { return w.runs.Load() }

// RunsPerSec returns the current throughput estimate (0 = none yet).
func (w *Worker) RunsPerSec() float64 { return math.Float64frombits(w.rps.Load()) }

// observeThroughput folds one chunk's measured rate into the EWMA estimate.
func (w *Worker) observeThroughput(runs int, elapsed time.Duration) {
	if runs <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(runs) / elapsed.Seconds()
	for {
		old := w.rps.Load()
		cur := math.Float64frombits(old)
		next := sample
		if cur > 0 {
			const alpha = 0.3
			next = alpha*sample + (1-alpha)*cur
		}
		if w.rps.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Run pulls and executes leases until ctx ends (the drain path: any open
// lease's unexecuted remainder is returned to the coordinator and the
// worker announces its departure) or the coordinator stays unreachable past
// the retry budget. At startup the worker calibrates its throughput (when
// configured) and registers its capability report — best-effort, so it
// still interoperates with coordinators predating the registry.
func (w *Worker) Run(ctx context.Context) error {
	if w.cfg.Caps.RunsPerSec > 0 {
		w.rps.Store(math.Float64bits(w.cfg.Caps.RunsPerSec))
	} else if w.cfg.CalibrateRuns != 0 {
		w.rps.Store(math.Float64bits(Calibrate(w.cfg.CalibrateRuns, w.cfg.Workers)))
	}
	w.register(ctx)
	defer w.drainAnnounce()
	for {
		if ctx.Err() != nil {
			return nil
		}
		var ls service.Lease
		var granted bool
		err := client.Retry(ctx, w.cfg.Backoff, func() error {
			var lerr error
			ls, granted, lerr = w.cfg.Client.Lease(ctx, service.LeaseRequest{
				Worker: w.cfg.ID, MaxRuns: w.cfg.MaxRuns, RunsPerSec: w.RunsPerSec(),
			})
			return lerr
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("fleet worker %s: coordinator unreachable: %w", w.cfg.ID, err)
		}
		if !granted {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.cfg.Poll):
			}
			continue
		}
		w.execute(ctx, ls)
	}
}

// execute runs one lease chunk by chunk, reporting each chunk's tally (the
// report refreshes the lease deadline). A lease the coordinator no longer
// recognises — expired while we were slow — is abandoned: its remainder was
// requeued, and our earlier reports already merged.
func (w *Worker) execute(ctx context.Context, ls service.Lease) {
	fn, err := w.cfg.Source(ls.Spec)
	if err != nil {
		// This worker cannot execute the spec (unknown app in its binary?):
		// hand the whole lease back rather than stall it until expiry.
		w.returnLease(ls.ID)
		return
	}

	// Heartbeat in the background at a third of the TTL, covering chunks
	// that legitimately run longer than the lease deadline.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	gone := make(chan struct{})
	go w.heartbeat(hbCtx, ls, gone)

	opts := campaign.Options{Runs: ls.Spec.Runs, Seed: ls.Spec.Seed, Workers: w.cfg.Workers}
	for from := ls.From; from < ls.To; {
		if ctx.Err() != nil {
			// Drain: return the unexecuted remainder so the coordinator
			// requeues it immediately instead of waiting out the TTL.
			w.returnLease(ls.ID)
			return
		}
		select {
		case <-gone:
			return
		default:
		}
		to := from + w.cfg.Chunk
		if to > ls.To {
			to = ls.To
		}
		start := time.Now() //relint:allow wallclock: throughput telemetry only, never feeds a tally
		tl := campaign.RunRange(opts, from, to, fn)
		w.observeThroughput(to-from, time.Since(start)) //relint:allow wallclock: see above
		w.runs.Add(int64(to - from))

		rep := service.LeaseReport{Worker: w.cfg.ID, From: from, To: to, Tally: tl, Done: to >= ls.To}
		var ack service.LeaseAck
		var leaseGone bool
		err := client.Retry(ctx, w.cfg.Backoff, func() error {
			var rerr error
			ack, rerr = w.cfg.Client.ReportLease(ctx, ls.ID, rep)
			if errors.Is(rerr, client.ErrGone) {
				leaseGone = true // terminal for the lease, not worth retrying
				return nil
			}
			return rerr
		})
		if err != nil {
			if ctx.Err() != nil {
				// Drain arrived mid-report: hand back everything the
				// coordinator hasn't acknowledged. The just-executed chunk may
				// re-run elsewhere; the merge is idempotent and deterministic.
				w.returnLease(ls.ID)
			}
			// Otherwise the coordinator stayed unreachable past the retry
			// budget: abandon, the unreported remainder expires and requeues.
			return
		}
		if leaseGone || ack.Canceled {
			// Lease expired-and-requeued, or job terminal: nothing left to
			// drain; earlier reports already merged.
			return
		}
		from = to
	}
}

// heartbeat extends the lease deadline at TTL/3 until canceled; a Gone
// answer closes the gone channel so execute stops wasting cycles.
func (w *Worker) heartbeat(ctx context.Context, ls service.Lease, gone chan struct{}) {
	ttl := time.Duration(ls.TTLSec * float64(time.Second))
	if ttl <= 0 {
		return
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := w.cfg.Client.HeartbeatLease(ctx, ls.ID); errors.Is(err, client.ErrGone) {
				close(gone)
				return
			}
		}
	}
}

// returnLease hands a lease back outside the run context (the run ctx may
// already be canceled during drain) with a short deadline of its own.
func (w *Worker) returnLease(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.cfg.Client.ReturnLease(ctx, id) //nolint:errcheck — best effort; expiry requeues anyway
}

// register announces the worker and its capability report. Best-effort: a
// coordinator without the registry (pre-v1 fleet) answers 404, and the
// worker proceeds on the lease protocol alone — lease traffic auto-registers
// it as an anonymous entry anyway.
func (w *Worker) register(ctx context.Context) {
	spec := service.WorkerSpec{Name: w.cfg.ID, Caps: w.cfg.Caps}
	spec.Caps.RunsPerSec = w.RunsPerSec()
	w.cfg.Client.RegisterWorker(ctx, spec) //nolint:errcheck — advisory; older coordinators lack the route
}

// drainAnnounce marks the worker draining in the registry on shutdown, with
// a short deadline of its own (the run ctx is already canceled).
func (w *Worker) drainAnnounce() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.cfg.Client.DrainWorker(ctx, w.cfg.ID) //nolint:errcheck — best effort; heartbeat decay degrades it anyway
}
