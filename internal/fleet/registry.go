package fleet

import (
	"time"

	"gpurel/internal/service"
)

// The worker registry: every worker the coordinator has ever heard from —
// explicitly via POST /v1/workers or implicitly through lease traffic
// (legacy anonymous workers) — owns a workerEntry. Health is never stored;
// it is derived from heartbeat history and open leases at read time, so a
// worker that silently dies decays available→degraded without any event
// firing.

// workerEntry is the registry record of one worker (c.mu held for all
// access).
type workerEntry struct {
	spec       service.WorkerSpec
	registered bool // announced itself via POST /v1/workers
	draining   bool // announced shutdown; no further leases until re-register

	registeredAt time.Time // first sighting
	lastSeen     time.Time // any lease/report/heartbeat/registration traffic
	lastExpiry   time.Time // most recent lease expiry attributed to it

	runsDone int64 // runs accepted from its reports
	expired  int64 // its leases that hit the deadline
}

// touchWorkerLocked returns the entry for name, creating an anonymous
// (lease-traffic-only) record on first sight, and stamps lastSeen.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerEntry {
	if name == "" {
		name = "anonymous"
	}
	e := c.workers[name]
	if e == nil {
		e = &workerEntry{spec: service.WorkerSpec{Name: name}, registeredAt: now}
		c.workers[name] = e
	}
	e.lastSeen = now
	return e
}

// healthLocked derives a worker's health state at time now.
func (c *Coordinator) healthLocked(e *workerEntry, now time.Time) service.WorkerHealth {
	if e.draining {
		return service.HealthDraining
	}
	deg := c.cfg.DegradedAfter
	if now.Sub(e.lastSeen) > deg {
		return service.HealthDegraded
	}
	if !e.lastExpiry.IsZero() && now.Sub(e.lastExpiry) <= deg {
		return service.HealthDegraded
	}
	open, _ := c.openLeasesLocked(e.spec.Name)
	if open > 0 {
		return service.HealthBusy
	}
	return service.HealthAvailable
}

// openLeasesLocked counts a worker's outstanding leases and their unreported
// runs.
func (c *Coordinator) openLeasesLocked(worker string) (open, runs int) {
	for _, l := range c.leases {
		if l.worker == worker {
			open++
			runs += l.to - l.from
		}
	}
	return open, runs
}

// leaseSizeLocked is the capability-scored adaptive grant size for a worker:
// enough runs to keep it busy for TargetLeaseSec at its measured throughput,
// clamped to [MinLeaseRuns, LeaseRuns]. Workers that never reported a
// throughput get the fixed default — the pre-registry behavior.
func (c *Coordinator) leaseSizeLocked(e *workerEntry) int {
	rps := 0.0
	if e != nil {
		rps = e.spec.Caps.RunsPerSec
	}
	if rps <= 0 {
		return c.cfg.LeaseRuns
	}
	n := int(rps * c.cfg.TargetLeaseSec)
	if n < c.cfg.MinLeaseRuns {
		n = c.cfg.MinLeaseRuns
	}
	if n > c.cfg.LeaseRuns {
		n = c.cfg.LeaseRuns
	}
	return n
}

// supportsModelLocked reports whether a worker's declared fault models cover
// the job's model (an empty declaration means all models).
func supportsModel(e *workerEntry, model string) bool {
	if e == nil || len(e.spec.Caps.FaultModels) == 0 {
		return true
	}
	for _, m := range e.spec.Caps.FaultModels {
		if m == model {
			return true
		}
	}
	return false
}

// workerStatusLocked builds the public view of one registry entry.
func (c *Coordinator) workerStatusLocked(e *workerEntry, now time.Time) service.WorkerStatus {
	open, runs := c.openLeasesLocked(e.spec.Name)
	st := service.WorkerStatus{
		Name:          e.spec.Name,
		Caps:          e.spec.Caps,
		Health:        c.healthLocked(e, now),
		Registered:    e.registered,
		OpenLeases:    open,
		LeasedRuns:    runs,
		LeaseSize:     c.leaseSizeLocked(e),
		RunsDone:      e.runsDone,
		ExpiredLeases: e.expired,
	}
	if !e.registeredAt.IsZero() {
		st.RegisteredUnix = e.registeredAt.Unix()
	}
	if !e.lastSeen.IsZero() {
		st.LastSeenUnix = e.lastSeen.Unix()
	}
	return st
}

// workerStatusesLocked lists every registry entry, sorted by name.
func (c *Coordinator) workerStatusesLocked(now time.Time) []service.WorkerStatus {
	out := make([]service.WorkerStatus, 0, len(c.workers))
	for _, e := range c.workers { //relint:allow map-order: sorted immediately below
		out = append(out, c.workerStatusLocked(e, now))
	}
	service.SortWorkers(out)
	return out
}
