package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"gpurel/internal/service"
)

// The coordinator journal: the lease ledger and worker registry persisted
// with the same atomic write-rename idiom as the scheduler's job checkpoint
// (service.WriteFileAtomic), so a coordinator crash mid-campaign loses no
// accounting. On restart the journal's live leases are re-pinned in the
// scheduler ledger via Backlog.ReclaimWork — the runs a surviving worker
// still holds are not handed out twice — and given a fresh TTL of grace to
// report; leases whose workers died with the coordinator simply expire and
// requeue. Deterministic seeding (run i draws from rand.NewSource(Seed+i))
// makes every recovery path tally bit-identically to an uninterrupted run.

// journalVersion guards the on-disk format. Bump on incompatible change.
const journalVersion = 1

// leaseRecord is the durable form of one outstanding lease. The deadline is
// informational: restore re-arms every lease at now+TTL rather than
// resuming the old countdown, since journal age is unknowable across a
// crash.
type leaseRecord struct {
	ID           string `json:"id"`
	JobID        string `json:"job_id"`
	Worker       string `json:"worker"`
	From         int    `json:"from"`
	To           int    `json:"to"`
	DeadlineUnix int64  `json:"deadline_unix"`
}

// workerRecord is the durable form of one registry entry. Health is not
// journaled — it is derived from heartbeat history, and a restarted
// coordinator re-learns it from traffic.
type workerRecord struct {
	Name           string             `json:"name"`
	Caps           service.WorkerCaps `json:"caps"`
	Registered     bool               `json:"registered"`
	Draining       bool               `json:"draining,omitempty"`
	RunsDone       int64              `json:"runs_done,omitempty"`
	Expired        int64              `json:"expired,omitempty"`
	RegisteredUnix int64              `json:"registered_unix,omitempty"`
	LastSeenUnix   int64              `json:"last_seen_unix,omitempty"`
}

type journalFile struct {
	Version   int                `json:"version"`
	SavedUnix int64              `json:"saved_unix"`
	Leases    []leaseRecord      `json:"leases"`
	Workers   []workerRecord     `json:"workers"`
	Stats     service.LeaseStats `json:"stats"`
}

// Journaled reports whether the coordinator persists its control-plane
// state.
func (c *Coordinator) Journaled() bool { return c.cfg.JournalPath != "" }

// Flush writes the journal now (no-op without a JournalPath).
func (c *Coordinator) Flush() error {
	if c.cfg.JournalPath == "" {
		return nil
	}
	now := c.cfg.Now()
	c.mu.Lock()
	jf := journalFile{Version: journalVersion, SavedUnix: now.Unix(), Stats: c.stats}
	for _, l := range c.leases { //relint:allow map-order: sorted immediately below
		jf.Leases = append(jf.Leases, leaseRecord{
			ID: l.id, JobID: l.jobID, Worker: l.worker,
			From: l.from, To: l.to, DeadlineUnix: l.deadline.Unix(),
		})
	}
	for _, e := range c.workers { //relint:allow map-order: sorted immediately below
		wr := workerRecord{
			Name: e.spec.Name, Caps: e.spec.Caps,
			Registered: e.registered, Draining: e.draining,
			RunsDone: e.runsDone, Expired: e.expired,
		}
		if !e.registeredAt.IsZero() {
			wr.RegisteredUnix = e.registeredAt.Unix()
		}
		if !e.lastSeen.IsZero() {
			wr.LastSeenUnix = e.lastSeen.Unix()
		}
		jf.Workers = append(jf.Workers, wr)
	}
	c.mu.Unlock()
	sort.Slice(jf.Leases, func(i, k int) bool { return jf.Leases[i].ID < jf.Leases[k].ID })
	sort.Slice(jf.Workers, func(i, k int) bool { return jf.Workers[i].Name < jf.Workers[k].Name })
	data, err := json.MarshalIndent(jf, "", " ")
	if err != nil {
		return err
	}
	return service.WriteFileAtomic(c.cfg.JournalPath, data)
}

// loadJournal reads a journal; a missing file is an empty journal.
func loadJournal(path string) (*journalFile, error) {
	data, err := service.ReadFileMissingOK(path)
	if data == nil || err != nil {
		return nil, err
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("fleet journal %s: %w", path, err)
	}
	if jf.Version != journalVersion {
		return nil, fmt.Errorf("fleet journal %s: version %d, want %d", path, jf.Version, journalVersion)
	}
	return &jf, nil
}

// restore rebuilds the registry and lease table from a journal (called from
// NewCoordinator before the loops start, so no locking). Live leases are
// re-pinned in the backlog and re-armed at now+TTL; leases whose job is gone
// or terminal are dropped — the scheduler's own journal already settled
// them.
func (c *Coordinator) restore(jf *journalFile, now time.Time) {
	c.stats = jf.Stats
	for _, wr := range jf.Workers {
		e := &workerEntry{
			spec:       service.WorkerSpec{Name: wr.Name, Caps: wr.Caps},
			registered: wr.Registered,
			draining:   wr.Draining,
			runsDone:   wr.RunsDone,
			expired:    wr.Expired,
		}
		if wr.RegisteredUnix != 0 {
			e.registeredAt = time.Unix(wr.RegisteredUnix, 0)
		}
		if wr.LastSeenUnix != 0 {
			e.lastSeen = time.Unix(wr.LastSeenUnix, 0)
		}
		c.workers[wr.Name] = e
	}
	for _, lr := range jf.Leases {
		if !c.backlog.ReclaimWork(lr.JobID, lr.From, lr.To) {
			continue
		}
		c.leases[lr.ID] = &lease{
			id: lr.ID, jobID: lr.JobID, worker: lr.Worker,
			from: lr.From, to: lr.To,
			deadline: now.Add(c.cfg.LeaseTTL),
		}
	}
}

// flushLoop periodically writes the journal while dirty.
func (c *Coordinator) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			if c.dirty.Swap(false) {
				c.Flush() //nolint:errcheck — periodic flush retries next tick
			}
		}
	}
}
