// Stress test for the coordinator's delete-before-requeue invariant: with a
// heartbeat TTL far below the workers' report latency, leases constantly
// expire while their reports are in flight, ranges are re-issued and
// re-executed, and duplicate merges race the sweeper. Run under -race in CI.
// The ledger's idempotent range merge must keep the final tally bit-identical
// to single-node execution — a stale lease entry surviving a requeue (or a
// requeue happening before the delete) would double-advance or strand a
// range and show up here as a hung job or a drifted tally.
package fleet_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

func TestFleetReportExpiryRaceStress(t *testing.T) {
	const (
		runs       = 2400
		seed       = int64(77)
		numWorkers = 8
	)
	ttl := 15 * time.Millisecond

	spec := service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Structure: "RF", Runs: runs, Seed: seed}
	sched, coord, srv := harness(t,
		service.Config{Source: synthSource(0), DisableLocalExec: true},
		fleet.CoordinatorConfig{LeaseRuns: 40, LeaseTTL: ttl, Sweep: 3 * time.Millisecond})
	st, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for wi := 0; wi < numWorkers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c := client.New(srv.URL)
			name := string(rune('a' + wi))
			// Jitter RNG only — run outcomes stay a pure function of the
			// campaign seed, so timing chaos cannot move the tally.
			jitter := rand.New(rand.NewSource(int64(1000 + wi)))
			for ctx.Err() == nil {
				ls, ok, err := c.Lease(ctx, service.LeaseRequest{Worker: name})
				if err != nil {
					return // coordinator gone (test shutting down)
				}
				if !ok {
					if js, live := sched.Get(st.ID); live && js.State.Terminal() {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				exp, err := synthSource(0)(ls.Spec)
				if err != nil {
					t.Errorf("worker %s: source: %v", name, err)
					return
				}
				opts := campaign.Options{Runs: ls.Spec.Runs, Seed: ls.Spec.Seed}
				report := func(from, to int, done bool) bool {
					tl := campaign.RunRange(opts, from, to, exp)
					// Sleep 0–25ms against a 15ms TTL: a large fraction of
					// reports land after the sweeper already expired and
					// requeued the lease (410 Gone) or after another worker
					// re-ran the range (duplicate merge).
					time.Sleep(time.Duration(jitter.Intn(25)) * time.Millisecond)
					_, err := c.ReportLease(ctx, ls.ID,
						service.LeaseReport{Worker: name, From: from, To: to, Tally: tl, Done: done})
					return err == nil
				}
				if mid := ls.From + (ls.To-ls.From)/2; jitter.Intn(2) == 0 && mid > ls.From {
					// Two-part report: the partial advance races the expiry
					// of the remainder.
					if report(ls.From, mid, false) {
						report(mid, ls.To, true)
					}
				} else {
					report(ls.From, ls.To, true)
				}
			}
		}(wi)
	}

	final := waitTerminal(t, sched, st.ID, 60*time.Second)
	cancel()
	wg.Wait()

	if final.State != service.StateDone {
		t.Fatalf("job ended %s: %+v", final.State, final)
	}
	want := campaign.Run(campaign.Options{Runs: runs, Seed: seed}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if final.Tally != want {
		t.Errorf("tally drifted under report/expiry races:\ngot  %+v\nwant %+v", final.Tally, want)
	}
	if final.Done != runs {
		t.Errorf("done = %d, want %d", final.Done, runs)
	}
	stats := coord.Stats()
	if stats.Expired == 0 {
		t.Errorf("stats = %+v: no lease expired — the race this test exists for never happened", stats)
	}
	t.Logf("stress stats: %+v", stats)
}
