package fleet_test

import (
	"math/rand"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/fleet"
	"gpurel/internal/gpu"
	"gpurel/internal/kernels"
	"gpurel/internal/microfi"
	"gpurel/internal/service"
)

// TestFleetLegacyParity closes the execution-core A/B loop over the fleet
// path: the same checkpointed RF campaign, split across two fleet workers,
// must tally bit-identically whether the workers simulate on the pre-decoded
// µop core or on the reference interpreter (CheckpointSpec.Legacy). Run
// distribution is already execution-order independent; this pins that the
// core choice is too.
func TestFleetLegacyParity(t *testing.T) {
	const runs, seed = 80, 13
	cfg := gpu.Volta()
	app, err := kernels.ByName("VA")
	if err != nil {
		t.Fatal(err)
	}
	tallies := make(map[bool]campaign.Tally)
	for _, legacy := range []bool{false, true} {
		job := app.Build()
		g, err := microfi.GoldenCheckpointed(job, cfg, microfi.CheckpointSpec{
			Stride: microfi.AutoStride, Converge: true, Legacy: legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		tgt := microfi.Target{Structure: gpu.RF}
		source := func(spec service.JobSpec) (campaign.Experiment, error) {
			return func(run int, rng *rand.Rand) faults.Result {
				return microfi.Inject(job, g, tgt, rng)
			}, nil
		}
		sched, _, srv := harness(t,
			service.Config{Source: source, DisableLocalExec: true},
			fleet.CoordinatorConfig{LeaseRuns: 20, LeaseTTL: 5 * time.Second, Sweep: 50 * time.Millisecond},
		)
		st, err := sched.Submit(service.JobSpec{Layer: "micro", App: app.Name, Kernel: "K1", Runs: runs, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"w1", "w2"} {
			startWorker(t, fleet.WorkerConfig{
				ID: id, Client: client.New(srv.URL), Source: source,
				Chunk: 20, Workers: 2, Poll: 2 * time.Millisecond, Backoff: testBackoff,
			})
		}
		final := waitTerminal(t, sched, st.ID, 60*time.Second)
		if final.State != service.StateDone || final.Done != runs {
			t.Fatalf("legacy=%v: job = %+v", legacy, final)
		}
		tallies[legacy] = final.Tally
	}
	if tallies[false] != tallies[true] {
		t.Errorf("fleet campaign diverges across cores:\nµop       %+v\nreference %+v",
			tallies[false], tallies[true])
	}
}
