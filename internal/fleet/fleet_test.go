// End-to-end fleet tests: a campaign split across multiple workers — with
// one killed mid-lease — must tally bit-identically to single-node
// execution, expired leases must requeue exactly once, drained workers must
// hand their leases back, and a coordinator with no workers joined must
// degrade to plain local execution.
package fleet_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpurel"
	"gpurel/client"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

// outcome is the synthetic deterministic classification shared with the
// service tests: what matters is that it is a pure function of the run RNG.
func outcome(rng *rand.Rand) faults.Result {
	switch rng.Intn(10) {
	case 0:
		return faults.Result{Outcome: faults.SDC}
	case 1:
		return faults.Result{Outcome: faults.DUE}
	case 2:
		return faults.Result{Outcome: faults.Timeout}
	case 3:
		return faults.Result{Outcome: faults.Masked, CtrlAffected: true}
	default:
		return faults.Result{Outcome: faults.Masked}
	}
}

func synthSource(perRun time.Duration) service.SourceFunc {
	return func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			if perRun > 0 {
				time.Sleep(perRun)
			}
			return outcome(rng)
		}, nil
	}
}

// testBackoff keeps worker retries snappy so a killed coordinator link is
// detected in milliseconds, not seconds.
var testBackoff = client.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Tries: 2}

// harness wires a scheduler, a coordinator mounted on its v1 mux, and an
// HTTP server, with cleanup in dependency order.
func harness(t *testing.T, cfg service.Config, fcfg fleet.CoordinatorConfig) (*service.Scheduler, *fleet.Coordinator, *httptest.Server) {
	t.Helper()
	sched, err := service.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(sched, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched.Metrics().AddCollector(coord.WriteMetrics)
	srv := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { sched.Close() })
	t.Cleanup(func() { coord.Close() })
	return sched, coord, srv
}

// waitTerminal polls a job to its terminal state.
func waitTerminal(t *testing.T, sched *service.Scheduler, id string, timeout time.Duration) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := sched.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startWorker launches a fleet worker goroutine and returns a kill function
// (cancel without drain semantics live in the caller's hands: cancel ctx =
// graceful drain; closing the worker's server = crash).
func startWorker(t *testing.T, cfg fleet.WorkerConfig) (worker *fleet.Worker, stop func()) {
	t.Helper()
	w, err := fleet.NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// A worker whose coordinator link died returns an error; tests that
		// kill the link expect that, so it is not fatal here.
		w.Run(ctx) //nolint:errcheck
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return w, stop
}

// TestFleetKillWorkerBitIdentical is the acceptance e2e: two workers drive
// a campaign on a coordinator with local execution disabled; one worker is
// killed mid-lease (its coordinator link is severed, so it can neither
// report nor return the lease); the lease expires and is requeued exactly
// once; the final tally is bit-identical to a single-node campaign.Run.
func TestFleetKillWorkerBitIdentical(t *testing.T) {
	const runs, seed = 2000, 9
	sched, coord, srv := harness(t,
		service.Config{Source: synthSource(500 * time.Microsecond), DisableLocalExec: true},
		fleet.CoordinatorConfig{LeaseRuns: 400, LeaseTTL: 250 * time.Millisecond, Sweep: 25 * time.Millisecond},
	)

	// Worker A reaches the coordinator through its own server handle so the
	// test can sever exactly its link — a process kill, as seen from the
	// coordinator.
	proxyA := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))

	st, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: runs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	wA, _ := startWorker(t, fleet.WorkerConfig{
		ID: "worker-a", Client: client.New(proxyA.URL), Source: synthSource(500 * time.Microsecond),
		Chunk: 100, Workers: 2, Poll: 5 * time.Millisecond, Backoff: testBackoff,
	})

	// Let A merge at least one chunk of its first lease, then kill it
	// mid-lease.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := sched.Get(st.ID)
		if got.Done >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker A made no progress: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	proxyA.Close()

	// Worker B finishes the job, including the killed worker's requeued
	// remainder.
	startWorker(t, fleet.WorkerConfig{
		ID: "worker-b", Client: client.New(srv.URL), Source: synthSource(500 * time.Microsecond),
		Chunk: 100, Workers: 2, Poll: 5 * time.Millisecond, Backoff: testBackoff,
	})

	final := waitTerminal(t, sched, st.ID, 60*time.Second)
	if final.State != service.StateDone || final.Done != runs {
		t.Fatalf("job = %+v", final)
	}
	want := campaign.Run(campaign.Options{Runs: runs, Seed: seed}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if final.Tally != want {
		t.Errorf("fleet tally %+v != single-node %+v", final.Tally, want)
	}

	stats := coord.Stats()
	if stats.Expired != 1 {
		t.Errorf("expired leases = %d, want exactly 1 (the killed worker's)", stats.Expired)
	}
	if stats.Granted < 2 {
		t.Errorf("granted leases = %d, want >= 2 (both workers)", stats.Granted)
	}
	if wA.Runs() == 0 {
		t.Error("worker A executed nothing before being killed")
	}

	// The per-worker fleet counters ride the daemon's /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, needle := range []string{
		`gpureld_fleet_leases_total{event="expired"} 1`,
		`gpureld_fleet_worker_runs_total{worker="worker-a"}`,
		`gpureld_fleet_worker_runs_total{worker="worker-b"}`,
		`gpureld_fleet_leases_open 0`,
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/metrics missing %q in:\n%s", needle, text)
		}
	}
}

// TestFleetAdaptiveOutOfOrder: an adaptive job split across two racing
// workers stops at the same batch boundary with the same tally as the
// local sequential adaptive engine — the prefix merger evaluates the stop
// rule on exactly the prefixes a single node would have, no matter the
// report arrival order.
func TestFleetAdaptiveOutOfOrder(t *testing.T) {
	const runs, seed, margin = 3000, 42, 0.0235
	lowFR := func(run int, rng *rand.Rand) faults.Result {
		if rng.Float64() < 0.02 {
			return faults.Result{Outcome: faults.SDC}
		}
		return faults.Result{Outcome: faults.Masked}
	}
	src := func(spec service.JobSpec) (campaign.Experiment, error) { return lowFR, nil }

	sched, _, srv := harness(t,
		service.Config{Source: src, DisableLocalExec: true},
		fleet.CoordinatorConfig{LeaseRuns: 500, LeaseTTL: 5 * time.Second},
	)
	st, err := sched.Submit(service.JobSpec{
		Layer: "micro", App: "fake", Kernel: "K1", Runs: runs, Seed: seed,
		Sampling: &service.SamplingSpec{Margin99: margin},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Different chunk sizes make the two workers' reports interleave out of
	// order across lease boundaries.
	for i, chunk := range []int{30, 100} {
		startWorker(t, fleet.WorkerConfig{
			ID: []string{"adaptive-a", "adaptive-b"}[i], Client: client.New(srv.URL), Source: src,
			Chunk: chunk, Workers: 1, Poll: time.Millisecond, Backoff: testBackoff,
		})
	}

	final := waitTerminal(t, sched, st.ID, 60*time.Second)
	want := adaptive.Run(campaign.Options{Runs: runs, Seed: seed}, adaptive.Policy{Margin: margin}, lowFR)
	if !want.EarlyStopped {
		t.Fatal("test premise broken: local adaptive run did not stop early")
	}
	if final.State != service.StateDone || final.Tally != want.Tally || final.Done != want.Tally.N {
		t.Errorf("fleet adaptive job %+v != local adaptive stop (n=%d, %+v)", final, want.Tally.N, want.Tally)
	}
	if !final.EarlyStopped || final.RunsSaved != runs-want.Tally.N {
		t.Errorf("savings not reported: %+v", final)
	}
}

// TestFleetDrainReturnsLease: a worker canceled mid-lease returns the
// unexecuted remainder (no TTL wait), and the local lanes finish the job
// bit-identically.
func TestFleetDrainReturnsLease(t *testing.T) {
	const runs, seed = 2000, 5
	sched, coord, srv := harness(t,
		service.Config{Source: synthSource(200 * time.Microsecond), ChunkSize: 50},
		fleet.CoordinatorConfig{LeaseRuns: 1000, LeaseTTL: 30 * time.Second},
	)
	st, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: runs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	_, stop := startWorker(t, fleet.WorkerConfig{
		ID: "drainer", Client: client.New(srv.URL), Source: synthSource(200 * time.Microsecond),
		Chunk: 50, Workers: 1, Poll: time.Millisecond, Backoff: testBackoff,
	})
	// Let the worker claim and partially execute its big lease, then drain
	// it gracefully.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Stats().Granted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never claimed a lease")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	stop()

	final := waitTerminal(t, sched, st.ID, 60*time.Second)
	if final.State != service.StateDone || final.Done != runs {
		t.Fatalf("job = %+v", final)
	}
	want := campaign.Run(campaign.Options{Runs: runs, Seed: seed}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if final.Tally != want {
		t.Errorf("drained-fleet tally %+v != single-node %+v", final.Tally, want)
	}
	if stats := coord.Stats(); stats.Returned == 0 && stats.Expired == 0 {
		t.Errorf("drained lease neither returned nor expired: %+v", stats)
	}
}

// TestFleetRealStudyParity drives a real SRADv1 RF micro-injection campaign
// through the bench harness (coordinator-only daemon, two workers) and
// checks the fleet tally against the plain in-process campaign over the
// same study source.
func TestFleetRealStudyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator campaign")
	}
	study := gpurel.NewStudy(0, 1)
	source := service.NewStudySource(study)
	spec := service.JobSpec{
		Layer: "micro", App: "SRADv1", Kernel: "K4", Structure: "RF",
		Runs: 60, Seed: 7,
	}
	tally, _ := runFleet(t, source, spec, 2)

	fn, err := source(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.Run(campaign.Options{Runs: spec.Runs, Seed: spec.Seed}, fn)
	if tally != want {
		t.Errorf("fleet SRADv1 tally %+v != in-process %+v", tally, want)
	}
}

// TestFleetFaultModelParity: the fleet path is model-agnostic — a two-worker
// campaign under each non-default fault model (permanent stuck-at on RF,
// forced control latch on the SIMT stack) tallies bit-identically to the
// in-process campaign over the same study source. Both workers and the
// comparison run share one Study, so golden-run memoisation mirrors a warm
// coordinator.
func TestFleetFaultModelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator campaign")
	}
	study := gpurel.NewStudy(0, 1)
	source := service.NewStudySource(study)
	specs := []service.JobSpec{
		{Layer: "micro", App: "VA", Kernel: "K1", Structure: "RF",
			Runs: 30, Seed: 7,
			Fault: &service.FaultSpec{Model: "stuck", Stuck: intPtr(1)}},
		{Layer: "micro", App: "VA", Kernel: "K1", Structure: "STACK",
			Runs: 30, Seed: 7,
			Fault: &service.FaultSpec{Model: "control", Stuck: intPtr(0)}},
	}
	for _, spec := range specs {
		tally, _ := runFleet(t, source, spec, 2)
		fn, err := source(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := campaign.Run(campaign.Options{Runs: spec.Runs, Seed: spec.Seed}, fn)
		if tally != want {
			t.Errorf("fleet %s/%s tally %+v != in-process %+v",
				spec.Structure, spec.Fault.Label(), tally, want)
		}
	}
}

func intPtr(v int) *int { return &v }

// TestFleetGracefulDegradation: a coordinator with lease endpoints mounted
// but no workers joined executes everything in-process, exactly like the
// pre-fleet daemon.
func TestFleetGracefulDegradation(t *testing.T) {
	const runs, seed = 700, 3
	sched, coord, _ := harness(t,
		service.Config{Source: synthSource(0), ChunkSize: 64},
		fleet.CoordinatorConfig{},
	)
	st, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: runs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, sched, st.ID, 30*time.Second)
	want := campaign.Run(campaign.Options{Runs: runs, Seed: seed}, func(run int, rng *rand.Rand) faults.Result {
		return outcome(rng)
	})
	if final.State != service.StateDone || final.Tally != want {
		t.Fatalf("local-only job %+v, want tally %+v", final, want)
	}
	if stats := coord.Stats(); stats.Granted != 0 {
		t.Errorf("leases granted with no workers: %+v", stats)
	}
}
