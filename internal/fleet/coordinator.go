// Package fleet turns a single-node gpureld daemon into a coordinator +
// worker fleet. The coordinator packages the scheduler's work ledger into
// HTTP leases — run-ranges with heartbeat deadlines — that workers pull,
// execute through the same deterministic campaign path, and report back
// chunk by chunk. Because run i always draws from rand.NewSource(Seed+i)
// and the scheduler's merge is idempotent by run-range, any interleaving of
// local lanes, live workers, re-runs of expired leases — and, with the
// journal enabled, a coordinator crash and restart mid-campaign — tallies
// bit-identically to one uninterrupted single-node campaign.
//
// Beyond leases the coordinator is the fleet control plane: a worker
// registry with capability reports and derived health states
// (available/busy/degraded/draining), capability-scored adaptive lease
// sizing, and the GET /v1/fleet status surface.
package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/faultmodel"
	"gpurel/internal/service"
)

// Backlog is the coordinator's view of the scheduler work ledger.
// *service.Scheduler implements it.
type Backlog interface {
	ClaimWork(max int) (service.WorkAssignment, bool)
	ReportWork(jobID string, from, to int, tl campaign.Tally) (service.JobStatus, bool, error)
	ReturnWork(jobID string, from, to int)
	// ReclaimWork re-pins a journaled lease's remainder as in-flight after a
	// coordinator restart; false means the job is gone or terminal and the
	// lease should be dropped.
	ReclaimWork(jobID string, from, to int) bool
	// Tenants is the scheduler's per-tenant accounting for GET /v1/fleet.
	Tenants() []service.TenantStatus
}

// CoordinatorConfig sizes the lease protocol and the control plane.
type CoordinatorConfig struct {
	// LeaseRuns caps the runs granted per lease (default 500). Adaptive
	// jobs are additionally clamped to batch boundaries by the ledger.
	LeaseRuns int
	// LeaseTTL is the heartbeat deadline: a lease with no report or
	// heartbeat for this long is expired and its remainder requeued
	// (default 15s).
	LeaseTTL time.Duration
	// Sweep is the expiry-scan cadence (default LeaseTTL/4).
	Sweep time.Duration
	// TargetLeaseSec is the adaptive lease horizon: a worker that reported
	// a measured throughput is granted about this many seconds of work per
	// lease (default 2s), clamped to [MinLeaseRuns, LeaseRuns]. Workers
	// with no capability report get the fixed LeaseRuns default.
	TargetLeaseSec float64
	// MinLeaseRuns floors adaptive grants (default 16) so a slow worker
	// still amortizes the HTTP round-trip.
	MinLeaseRuns int
	// DegradedAfter is the heartbeat staleness (and recent-expiry window)
	// past which a worker reads as degraded (default 2×LeaseTTL).
	DegradedAfter time.Duration
	// JournalPath, when set, makes the control plane crash-recoverable:
	// leases, registry, and counters persist there (atomic write-rename,
	// like the scheduler checkpoint) and are restored by the next
	// NewCoordinator with the same path.
	JournalPath string
	// FlushInterval is the journal flush cadence (default 2s).
	FlushInterval time.Duration
	// Now is the lease clock (default time.Now); tests inject a fake to
	// drive expiry deterministically.
	Now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseRuns <= 0 {
		c.LeaseRuns = 500
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.Sweep <= 0 {
		c.Sweep = c.LeaseTTL / 4
	}
	if c.TargetLeaseSec <= 0 {
		c.TargetLeaseSec = 2
	}
	if c.MinLeaseRuns <= 0 {
		c.MinLeaseRuns = 16
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 2 * c.LeaseTTL
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// lease is one outstanding grant. from advances as prefix reports land, so
// [from, to) is always the unexecuted (or unreported) remainder.
type lease struct {
	id       string
	jobID    string
	worker   string
	from, to int
	deadline time.Time
}

// Stats are the coordinator's lifetime lease counters (journaled, so they
// survive a restart when the journal is enabled).
type Stats = service.LeaseStats

// Coordinator tracks leases and the worker registry against a scheduler
// backlog and serves the /v1/leases, /v1/workers, and /v1/fleet endpoints.
type Coordinator struct {
	cfg     CoordinatorConfig
	backlog Backlog

	mu      sync.Mutex
	leases  map[string]*lease
	workers map[string]*workerEntry
	stats   Stats
	subs    map[int]chan struct{}
	nextSub int

	dirty  atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// NewCoordinator starts a coordinator (and its expiry sweeper) over a
// backlog, restoring the lease ledger and worker registry from the journal
// when CoordinatorConfig.JournalPath is set. Close it to stop the loops.
func NewCoordinator(b Backlog, cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		backlog: b,
		leases:  map[string]*lease{},
		workers: map[string]*workerEntry{},
		subs:    map[int]chan struct{}{},
		done:    make(chan struct{}),
	}
	if c.cfg.JournalPath != "" {
		jf, err := loadJournal(c.cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		if jf != nil {
			c.restore(jf, c.cfg.Now())
		}
	}
	c.wg.Add(1)
	go c.sweepLoop()
	if c.cfg.JournalPath != "" {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c, nil
}

// Close stops the loops and settles outstanding leases. Without a journal
// every open lease is requeued so a coordinator shutting down strands no
// work; with one, leases stay in the journal instead — their workers may
// outlive this process and resume reporting against the restarted
// coordinator.
func (c *Coordinator) Close() error {
	var err error
	c.closed.Do(func() {
		close(c.done)
		c.wg.Wait()
		if c.cfg.JournalPath != "" {
			err = c.Flush()
			return
		}
		c.mu.Lock()
		// Requeue in sorted lease-ID order so the backlog sees a
		// deterministic return sequence.
		ids := make([]string, 0, len(c.leases))
		for id := range c.leases { //relint:allow map-order: sorted immediately below
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ls := make([]*lease, 0, len(ids))
		for _, id := range ids {
			ls = append(ls, c.leases[id])
		}
		c.leases = map[string]*lease{}
		c.stats.Returned += int64(len(ls))
		c.mu.Unlock()
		for _, l := range ls {
			c.backlog.ReturnWork(l.jobID, l.from, l.to)
		}
	})
	return err
}

// Kill stops the loops without flushing the journal or requeueing leases —
// the crash path, separated from Close so restart tests exercise recovery
// from the last periodic flush exactly as a SIGKILL would leave it.
func (c *Coordinator) Kill() {
	c.closed.Do(func() {
		close(c.done)
		c.wg.Wait()
	})
}

// Stats returns the lifetime lease counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// bump wakes the fleet-event subscribers (non-blocking: a subscriber that
// already has a pending wakeup needs no second one).
func (c *Coordinator) bumpLocked() {
	for _, ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// sweepLoop expires leases whose heartbeat deadline passed. Deleting the
// lease before requeueing makes the requeue exactly-once: a second sweep —
// or a late report from the presumed-dead worker — finds no lease, and the
// ledger's idempotent merge absorbs any double execution.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Sweep)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep runs one expiry scan now (the sweeper calls it periodically; tests
// call it directly against an injected clock).
func (c *Coordinator) Sweep() {
	now := c.cfg.Now()
	c.mu.Lock()
	// Expire in sorted lease-ID order so requeues hit the backlog in a
	// deterministic sequence.
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases { //relint:allow map-order: sorted immediately below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var expired []*lease
	for _, id := range ids {
		if l := c.leases[id]; now.After(l.deadline) {
			delete(c.leases, id)
			expired = append(expired, l)
			if e := c.workers[l.worker]; e != nil {
				e.expired++
				e.lastExpiry = now
			}
		}
	}
	c.stats.Expired += int64(len(expired))
	if len(expired) > 0 {
		c.bumpLocked()
	}
	c.mu.Unlock()
	if len(expired) > 0 {
		c.dirty.Store(true)
	}
	for _, l := range expired {
		c.backlog.ReturnWork(l.jobID, l.from, l.to)
	}
}

// Mount registers the fleet endpoints on a v1 mux — passed to
// service.Server.Handler so the coordinator shares the daemon's listener.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/leases", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/report", c.handleReport)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("DELETE /v1/leases/{id}", c.handleReturn)
	mux.HandleFunc("POST /v1/workers", c.handleRegisterWorker)
	mux.HandleFunc("GET /v1/workers", c.handleListWorkers)
	mux.HandleFunc("GET /v1/workers/{name}", c.handleGetWorker)
	mux.HandleFunc("DELETE /v1/workers/{name}", c.handleDrainWorker)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("GET /v1/fleet/events", c.handleFleetEvents)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// jobModel resolves a job spec's fault-model name (the registry's
// capability vocabulary).
func jobModel(spec service.JobSpec) string {
	if spec.Fault == nil || spec.Fault.Model == "" {
		return faultmodel.ModelTransient
	}
	return spec.Fault.Model
}

// handleLease: POST /v1/leases — claim a run-range for the requesting
// worker; 204 when the backlog has nothing pending (or the worker is
// draining). The grant is capability-scored: workers that report a measured
// throughput get TargetLeaseSec's worth of runs instead of the fixed
// default.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req service.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest, "bad lease request: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest, err.Error())
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	e := c.touchWorkerLocked(req.Worker, now)
	if req.RunsPerSec > 0 {
		e.spec.Caps.RunsPerSec = req.RunsPerSec
	}
	if e.draining {
		c.mu.Unlock()
		c.dirty.Store(true)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	max := c.leaseSizeLocked(e)
	c.mu.Unlock()
	c.dirty.Store(true)
	if req.MaxRuns > 0 && req.MaxRuns < max {
		max = req.MaxRuns
	}

	wa, ok := c.backlog.ClaimWork(max)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.mu.Lock()
	if !supportsModel(c.workers[e.spec.Name], jobModel(wa.Spec)) {
		// The worker's declared capability set excludes this job's fault
		// model: hand the claim straight back and let a capable worker (or a
		// local lane) take it.
		c.mu.Unlock()
		c.backlog.ReturnWork(wa.JobID, wa.From, wa.To)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	l := &lease{
		id:       newLeaseID(),
		jobID:    wa.JobID,
		worker:   e.spec.Name,
		from:     wa.From,
		to:       wa.To,
		deadline: now.Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	c.stats.Granted++
	c.bumpLocked()
	c.mu.Unlock()
	c.dirty.Store(true)
	ls := service.Lease{
		ID: l.id, JobID: wa.JobID, Spec: wa.Spec,
		From: wa.From, To: wa.To, TTLSec: c.cfg.LeaseTTL.Seconds(),
	}
	if req.LegacyFlat() {
		ls.Deprecation = service.LeaseDeprecationNote
	}
	writeJSON(w, http.StatusOK, ls)
}

// handleReport: POST /v1/leases/{id}/report — merge one completed
// sub-range (doubling as a heartbeat). 410 when the lease is unknown: it
// expired and its remainder was already requeued, so the worker abandons.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep service.LeaseReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest, "bad lease report: "+err.Error())
		return
	}
	id := r.PathValue("id")
	now := c.cfg.Now()
	c.mu.Lock()
	l, ok := c.leases[id]
	if !ok {
		c.mu.Unlock()
		service.WriteError(w, http.StatusGone, service.ErrCodeGone, "no such lease (expired and requeued?)")
		return
	}
	if rep.From < l.from || rep.To > l.to || rep.To <= rep.From {
		c.mu.Unlock()
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest,
			fmt.Sprintf("report [%d,%d) outside lease remainder [%d,%d)", rep.From, rep.To, l.from, l.to))
		return
	}
	jobID := l.jobID
	c.touchWorkerLocked(rep.Worker, now)
	c.mu.Unlock()

	st, merged, err := c.backlog.ReportWork(jobID, rep.From, rep.To, rep.Tally)
	if err != nil {
		service.WriteError(w, http.StatusGone, service.ErrCodeGone, err.Error())
		return
	}

	c.mu.Lock()
	if merged {
		c.stats.Reported++
		if e := c.workers[rep.Worker]; e != nil {
			e.runsDone += int64(rep.To - rep.From)
		}
	} else {
		c.stats.DupReports++
	}
	ack := service.LeaseAck{Accepted: merged, TTLSec: c.cfg.LeaseTTL.Seconds()}
	if rep.LegacyFlat() {
		ack.Deprecation = service.LeaseDeprecationNote
	}
	if l, ok := c.leases[id]; ok {
		if rep.To > l.from {
			l.from = rep.To
		}
		l.deadline = c.cfg.Now().Add(c.cfg.LeaseTTL)
		if rep.Done || l.from >= l.to || st.State.Terminal() {
			delete(c.leases, id)
		}
	}
	if st.State.Terminal() {
		// Canceled, failed, or adaptively early-stopped: the worker should
		// abandon whatever is left of the lease.
		ack.Canceled = true
	}
	c.bumpLocked()
	c.mu.Unlock()
	c.dirty.Store(true)
	writeJSON(w, http.StatusOK, ack)
}

// handleHeartbeat: POST /v1/leases/{id}/heartbeat — extend the deadline.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := c.cfg.Now()
	c.mu.Lock()
	l, ok := c.leases[id]
	if ok {
		l.deadline = now.Add(c.cfg.LeaseTTL)
		c.touchWorkerLocked(l.worker, now)
	}
	c.mu.Unlock()
	if !ok {
		service.WriteError(w, http.StatusGone, service.ErrCodeGone, "no such lease")
		return
	}
	c.dirty.Store(true)
	w.WriteHeader(http.StatusNoContent)
}

// handleReturn: DELETE /v1/leases/{id} — a draining worker hands back the
// unexecuted remainder.
func (c *Coordinator) handleReturn(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := c.cfg.Now()
	c.mu.Lock()
	l, ok := c.leases[id]
	if ok {
		delete(c.leases, id)
		c.stats.Returned++
		c.touchWorkerLocked(l.worker, now)
		c.bumpLocked()
	}
	c.mu.Unlock()
	if !ok {
		service.WriteError(w, http.StatusGone, service.ErrCodeGone, "no such lease")
		return
	}
	c.dirty.Store(true)
	c.backlog.ReturnWork(l.jobID, l.from, l.to)
	w.WriteHeader(http.StatusNoContent)
}

// handleRegisterWorker: POST /v1/workers — announce a worker and its
// capability report. Re-registration updates the caps and clears draining,
// so a restarted worker process under the same name rejoins cleanly.
func (c *Coordinator) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var spec service.WorkerSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest, "bad worker spec: "+err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		service.WriteError(w, http.StatusBadRequest, service.ErrCodeBadRequest, err.Error())
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	e := c.touchWorkerLocked(spec.Name, now)
	e.registered = true
	e.draining = false
	if spec.Caps.RunsPerSec > 0 {
		e.spec.Caps.RunsPerSec = spec.Caps.RunsPerSec
	}
	e.spec.Caps.SnapMB = spec.Caps.SnapMB
	e.spec.Caps.FaultModels = append([]string(nil), spec.Caps.FaultModels...)
	st := c.workerStatusLocked(e, now)
	c.bumpLocked()
	c.mu.Unlock()
	c.dirty.Store(true)
	writeJSON(w, http.StatusOK, st)
}

// handleListWorkers: GET /v1/workers — the registry, sorted by name.
func (c *Coordinator) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	c.mu.Lock()
	out := c.workerStatusesLocked(now)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleGetWorker: GET /v1/workers/{name}.
func (c *Coordinator) handleGetWorker(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	now := c.cfg.Now()
	c.mu.Lock()
	e, ok := c.workers[name]
	var st service.WorkerStatus
	if ok {
		st = c.workerStatusLocked(e, now)
	}
	c.mu.Unlock()
	if !ok {
		service.WriteError(w, http.StatusNotFound, service.ErrCodeNotFound, "no such worker")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleDrainWorker: DELETE /v1/workers/{name} — mark a worker draining: it
// receives no further leases until it re-registers. Its open leases keep
// running (the worker returns them itself, or they expire).
func (c *Coordinator) handleDrainWorker(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	now := c.cfg.Now()
	c.mu.Lock()
	e, ok := c.workers[name]
	var st service.WorkerStatus
	if ok {
		e.draining = true
		st = c.workerStatusLocked(e, now)
		c.bumpLocked()
	}
	c.mu.Unlock()
	if !ok {
		service.WriteError(w, http.StatusNotFound, service.ErrCodeNotFound, "no such worker")
		return
	}
	c.dirty.Store(true)
	writeJSON(w, http.StatusOK, st)
}

// FleetStatus assembles the control-plane summary document.
func (c *Coordinator) FleetStatus() service.FleetStatus {
	tenants := c.backlog.Tenants()
	now := c.cfg.Now()
	c.mu.Lock()
	fs := service.FleetStatus{
		Workers:    c.workerStatusesLocked(now),
		Tenants:    tenants,
		OpenLeases: len(c.leases),
		Leases:     c.stats,
		Journaled:  c.cfg.JournalPath != "",
	}
	c.mu.Unlock()
	return fs
}

// handleFleet: GET /v1/fleet.
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.FleetStatus())
}

// subscribe registers a fleet-event wakeup channel.
func (c *Coordinator) subscribe() (<-chan struct{}, func()) {
	c.mu.Lock()
	id := c.nextSub
	c.nextSub++
	ch := make(chan struct{}, 1)
	c.subs[id] = ch
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
	}
}

// handleFleetEvents: GET /v1/fleet/events — NDJSON stream of FleetStatus
// snapshots: one line now, then one per control-plane change (grants,
// reports, registrations, expiries) until the client hangs up or the
// coordinator stops.
func (c *Coordinator) handleFleetEvents(w http.ResponseWriter, r *http.Request) {
	ch, unsub := c.subscribe()
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	send := func() bool {
		if err := enc.Encode(c.FleetStatus()); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-c.done:
			return
		case <-ch:
			if !send() {
				return
			}
		}
	}
}

// WriteMetrics renders the coordinator's exposition section — registered
// with service.Metrics.AddCollector so it rides the daemon's /metrics.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	now := c.cfg.Now()
	c.mu.Lock()
	st := c.stats
	open := len(c.leases)
	byWorker := c.workerStatusesLocked(now) // sorted slice, stable output
	c.mu.Unlock()

	fmt.Fprintln(w, "# HELP gpureld_fleet_leases_total Lease lifecycle events.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_leases_total counter")
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"granted\"} %d\n", st.Granted)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"reported\"} %d\n", st.Reported)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"dup_report\"} %d\n", st.DupReports)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"expired\"} %d\n", st.Expired)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"returned\"} %d\n", st.Returned)

	fmt.Fprintln(w, "# HELP gpureld_fleet_leases_open Leases currently outstanding.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_leases_open gauge")
	fmt.Fprintf(w, "gpureld_fleet_leases_open %d\n", open)

	health := map[service.WorkerHealth]int{}
	for _, ws := range byWorker {
		health[ws.Health]++
	}
	fmt.Fprintln(w, "# HELP gpureld_fleet_workers Workers per derived health state.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_workers gauge")
	for _, h := range service.WorkerHealthStates {
		fmt.Fprintf(w, "gpureld_fleet_workers{health=%q} %d\n", string(h), health[h])
	}

	fmt.Fprintln(w, "# HELP gpureld_fleet_worker_runs_total Runs accepted per reporting worker.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_worker_runs_total counter")
	for _, ws := range byWorker {
		fmt.Fprintf(w, "gpureld_fleet_worker_runs_total{worker=%q} %d\n", ws.Name, ws.RunsDone)
	}

	fmt.Fprintln(w, "# HELP gpureld_fleet_worker_lease_size Capability-scored adaptive lease size per worker.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_worker_lease_size gauge")
	for _, ws := range byWorker {
		fmt.Fprintf(w, "gpureld_fleet_worker_lease_size{worker=%q} %d\n", ws.Name, ws.LeaseSize)
	}
}

// newLeaseID returns a random 12-hex-char lease ID.
func newLeaseID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: rand.Read: %v", err))
	}
	return "l" + hex.EncodeToString(b[:])
}
