// Package fleet turns a single-node gpureld daemon into a coordinator +
// worker fleet. The coordinator packages the scheduler's work ledger into
// HTTP leases — run-ranges with heartbeat deadlines — that workers pull,
// execute through the same deterministic campaign path, and report back
// chunk by chunk. Because run i always draws from rand.NewSource(Seed+i)
// and the scheduler's merge is idempotent by run-range, any interleaving of
// local lanes, live workers, and re-runs of expired leases tallies
// bit-identically to one uninterrupted single-node campaign.
package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"gpurel/internal/campaign"
	"gpurel/internal/service"
)

// Backlog is the coordinator's view of the scheduler work ledger.
// *service.Scheduler implements it.
type Backlog interface {
	ClaimWork(max int) (service.WorkAssignment, bool)
	ReportWork(jobID string, from, to int, tl campaign.Tally) (service.JobStatus, bool, error)
	ReturnWork(jobID string, from, to int)
}

// CoordinatorConfig sizes the lease protocol.
type CoordinatorConfig struct {
	// LeaseRuns caps the runs granted per lease (default 500). Adaptive
	// jobs are additionally clamped to batch boundaries by the ledger.
	LeaseRuns int
	// LeaseTTL is the heartbeat deadline: a lease with no report or
	// heartbeat for this long is expired and its remainder requeued
	// (default 15s).
	LeaseTTL time.Duration
	// Sweep is the expiry-scan cadence (default LeaseTTL/4).
	Sweep time.Duration
	// Now is the lease clock (default time.Now); tests inject a fake to
	// drive expiry deterministically.
	Now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseRuns <= 0 {
		c.LeaseRuns = 500
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.Sweep <= 0 {
		c.Sweep = c.LeaseTTL / 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// lease is one outstanding grant. from advances as prefix reports land, so
// [from, to) is always the unexecuted (or unreported) remainder.
type lease struct {
	id       string
	jobID    string
	worker   string
	from, to int
	deadline time.Time
}

// Stats are the coordinator's lifetime lease counters.
type Stats struct {
	// Granted counts leases handed out; Reported counts accepted report
	// sub-ranges; DupReports counts reports dropped as idempotent
	// duplicates (late arrivals for work an expired lease already re-ran).
	Granted    int64 `json:"granted"`
	Reported   int64 `json:"reported"`
	DupReports int64 `json:"dup_reports"`
	// Expired counts leases whose heartbeat deadline passed — each one
	// requeued its remainder exactly once. Returned counts leases handed
	// back whole or partial by draining workers.
	Expired  int64 `json:"expired"`
	Returned int64 `json:"returned"`
}

// Coordinator tracks leases against a scheduler backlog and serves the
// /v1/leases endpoints.
type Coordinator struct {
	cfg     CoordinatorConfig
	backlog Backlog

	mu     sync.Mutex
	leases map[string]*lease
	// workerRuns counts runs accepted per reporting worker, for /metrics.
	workerRuns map[string]int64
	stats      Stats

	done   chan struct{}
	closed sync.Once
}

// NewCoordinator starts a coordinator (and its expiry sweeper) over a
// backlog. Close it to stop the sweeper.
func NewCoordinator(b Backlog, cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		cfg:        cfg.withDefaults(),
		backlog:    b,
		leases:     map[string]*lease{},
		workerRuns: map[string]int64{},
		done:       make(chan struct{}),
	}
	go c.sweepLoop()
	return c
}

// Close stops the expiry sweeper and requeues every outstanding lease so a
// coordinator shutting down strands no work.
func (c *Coordinator) Close() {
	c.closed.Do(func() {
		close(c.done)
		c.mu.Lock()
		// Requeue in sorted lease-ID order so the backlog sees a
		// deterministic return sequence.
		ids := make([]string, 0, len(c.leases))
		for id := range c.leases { //relint:allow map-order: sorted immediately below
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ls := make([]*lease, 0, len(ids))
		for _, id := range ids {
			ls = append(ls, c.leases[id])
		}
		c.leases = map[string]*lease{}
		c.stats.Returned += int64(len(ls))
		c.mu.Unlock()
		for _, l := range ls {
			c.backlog.ReturnWork(l.jobID, l.from, l.to)
		}
	})
}

// Stats returns the lifetime lease counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// sweepLoop expires leases whose heartbeat deadline passed. Deleting the
// lease before requeueing makes the requeue exactly-once: a second sweep —
// or a late report from the presumed-dead worker — finds no lease, and the
// ledger's idempotent merge absorbs any double execution.
func (c *Coordinator) sweepLoop() {
	t := time.NewTicker(c.cfg.Sweep)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep runs one expiry scan now (the sweeper calls it periodically; tests
// call it directly against an injected clock).
func (c *Coordinator) Sweep() {
	now := c.cfg.Now()
	c.mu.Lock()
	// Expire in sorted lease-ID order so requeues hit the backlog in a
	// deterministic sequence.
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases { //relint:allow map-order: sorted immediately below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var expired []*lease
	for _, id := range ids {
		if l := c.leases[id]; now.After(l.deadline) {
			delete(c.leases, id)
			expired = append(expired, l)
		}
	}
	c.stats.Expired += int64(len(expired))
	c.mu.Unlock()
	for _, l := range expired {
		c.backlog.ReturnWork(l.jobID, l.from, l.to)
	}
}

// Mount registers the lease endpoints on a v1 mux — passed to
// service.Server.Handler so the coordinator shares the daemon's listener.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/leases", c.handleLease)
	mux.HandleFunc("POST /v1/leases/{id}/report", c.handleReport)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("DELETE /v1/leases/{id}", c.handleReturn)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleLease: POST /v1/leases — claim a run-range for the requesting
// worker; 204 when the backlog has nothing pending.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req service.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad lease request: " + err.Error()})
		return
	}
	max := c.cfg.LeaseRuns
	if req.MaxRuns > 0 && req.MaxRuns < max {
		max = req.MaxRuns
	}
	wa, ok := c.backlog.ClaimWork(max)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	l := &lease{
		id:       newLeaseID(),
		jobID:    wa.JobID,
		worker:   req.Worker,
		from:     wa.From,
		to:       wa.To,
		deadline: c.cfg.Now().Add(c.cfg.LeaseTTL),
	}
	c.mu.Lock()
	c.leases[l.id] = l
	c.stats.Granted++
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, service.Lease{
		ID: l.id, JobID: wa.JobID, Spec: wa.Spec,
		From: wa.From, To: wa.To, TTLSec: c.cfg.LeaseTTL.Seconds(),
	})
}

// handleReport: POST /v1/leases/{id}/report — merge one completed
// sub-range (doubling as a heartbeat). 410 when the lease is unknown: it
// expired and its remainder was already requeued, so the worker abandons.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep service.LeaseReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad lease report: " + err.Error()})
		return
	}
	id := r.PathValue("id")
	c.mu.Lock()
	l, ok := c.leases[id]
	if !ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusGone, apiError{Error: "no such lease (expired and requeued?)"})
		return
	}
	if rep.From < l.from || rep.To > l.to || rep.To <= rep.From {
		c.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, apiError{
			Error: fmt.Sprintf("report [%d,%d) outside lease remainder [%d,%d)", rep.From, rep.To, l.from, l.to),
		})
		return
	}
	jobID := l.jobID
	c.mu.Unlock()

	st, merged, err := c.backlog.ReportWork(jobID, rep.From, rep.To, rep.Tally)
	if err != nil {
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
		return
	}

	c.mu.Lock()
	if merged {
		c.stats.Reported++
		c.workerRuns[rep.Worker] += int64(rep.To - rep.From)
	} else {
		c.stats.DupReports++
	}
	ack := service.LeaseAck{Accepted: merged, TTLSec: c.cfg.LeaseTTL.Seconds()}
	if l, ok := c.leases[id]; ok {
		if rep.To > l.from {
			l.from = rep.To
		}
		l.deadline = c.cfg.Now().Add(c.cfg.LeaseTTL)
		if rep.Done || l.from >= l.to || st.State.Terminal() {
			delete(c.leases, id)
		}
	}
	if st.State.Terminal() {
		// Canceled, failed, or adaptively early-stopped: the worker should
		// abandon whatever is left of the lease.
		ack.Canceled = true
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, ack)
}

// handleHeartbeat: POST /v1/leases/{id}/heartbeat — extend the deadline.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	l, ok := c.leases[id]
	if ok {
		l.deadline = c.cfg.Now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, apiError{Error: "no such lease"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReturn: DELETE /v1/leases/{id} — a draining worker hands back the
// unexecuted remainder.
func (c *Coordinator) handleReturn(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	l, ok := c.leases[id]
	if ok {
		delete(c.leases, id)
		c.stats.Returned++
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, apiError{Error: "no such lease"})
		return
	}
	c.backlog.ReturnWork(l.jobID, l.from, l.to)
	w.WriteHeader(http.StatusNoContent)
}

// WriteMetrics renders the coordinator's exposition section — registered
// with service.Metrics.AddCollector so it rides the daemon's /metrics.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	st := c.stats
	open := len(c.leases)
	workers := make([]string, 0, len(c.workerRuns))
	for name := range c.workerRuns { //relint:allow map-order: sorted immediately below
		workers = append(workers, name)
	}
	sort.Strings(workers)
	runs := make([]int64, len(workers))
	for i, name := range workers {
		runs[i] = c.workerRuns[name]
	}
	c.mu.Unlock()

	fmt.Fprintln(w, "# HELP gpureld_fleet_leases_total Lease lifecycle events.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_leases_total counter")
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"granted\"} %d\n", st.Granted)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"reported\"} %d\n", st.Reported)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"dup_report\"} %d\n", st.DupReports)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"expired\"} %d\n", st.Expired)
	fmt.Fprintf(w, "gpureld_fleet_leases_total{event=\"returned\"} %d\n", st.Returned)

	fmt.Fprintln(w, "# HELP gpureld_fleet_leases_open Leases currently outstanding.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_leases_open gauge")
	fmt.Fprintf(w, "gpureld_fleet_leases_open %d\n", open)

	fmt.Fprintln(w, "# HELP gpureld_fleet_worker_runs_total Runs accepted per reporting worker.")
	fmt.Fprintln(w, "# TYPE gpureld_fleet_worker_runs_total counter")
	for i, name := range workers {
		fmt.Fprintf(w, "gpureld_fleet_worker_runs_total{worker=%q} %d\n", name, runs[i])
	}
}

// newLeaseID returns a random 12-hex-char lease ID.
func newLeaseID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: rand.Read: %v", err))
	}
	return "l" + hex.EncodeToString(b[:])
}
