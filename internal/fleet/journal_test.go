// Crash-recovery tests for the journaled coordinator: a coordinator killed
// mid-campaign (no drain, no final flush beyond the periodic one) restarts
// from its journal with the lease ledger, worker registry, and counters
// intact, and the resumed campaign — fixed and adaptive jobs alike — ends
// with tallies bit-identical to an uninterrupted single-node run.
package fleet_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpurel/client"
	"gpurel/internal/adaptive"
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/fleet"
	"gpurel/internal/service"
)

// lowFR is the adaptive test experiment: a fault rate low enough that the
// early-stopping rule fires well before the run budget.
func lowFR(run int, rng *rand.Rand) faults.Result {
	if rng.Float64() < 0.02 {
		return faults.Result{Outcome: faults.SDC}
	}
	return faults.Result{Outcome: faults.Masked}
}

// killResumeSource dispatches per app: "fixed" jobs use the shared synthetic
// outcome, "adaptive" jobs the low-fault-rate experiment.
func killResumeSource(perRun time.Duration) service.SourceFunc {
	return func(spec service.JobSpec) (campaign.Experiment, error) {
		return func(run int, rng *rand.Rand) faults.Result {
			if perRun > 0 {
				time.Sleep(perRun)
			}
			if spec.App == "adaptive" {
				return lowFR(run, rng)
			}
			return outcome(rng)
		}, nil
	}
}

// TestCoordinatorKillResumeBitIdentical is the tentpole acceptance test:
// a journaled coordinator driving a two-tenant campaign (one fixed job, one
// adaptive early-stopping job) over two workers is killed mid-flight — no
// drain, workers severed — and a fresh coordinator restored from the same
// journal finishes both jobs with tallies bit-identical to uninterrupted
// local runs.
func TestCoordinatorKillResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	schedCkpt := filepath.Join(dir, "sched.ckpt.json")
	fleetCkpt := filepath.Join(dir, "fleet.journal.json")
	const fixedRuns, fixedSeed = 1500, 11
	const adRuns, adSeed, adMargin = 3000, 42, 0.0235

	schedCfg := service.Config{
		Source:             killResumeSource(300 * time.Microsecond),
		DisableLocalExec:   true,
		CheckpointPath:     schedCkpt,
		CheckpointInterval: 10 * time.Millisecond,
	}
	coordCfg := fleet.CoordinatorConfig{
		LeaseRuns: 200, LeaseTTL: 400 * time.Millisecond, Sweep: 20 * time.Millisecond,
		JournalPath: fleetCkpt, FlushInterval: 10 * time.Millisecond,
	}

	sched1, err := service.NewScheduler(schedCfg)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := fleet.NewCoordinator(sched1, coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(service.NewServer(sched1).Handler(coord1.Mount))

	fixed, err := sched1.Submit(service.JobSpec{
		Layer: "micro", App: "fixed", Kernel: "K1", Runs: fixedRuns, Seed: fixedSeed,
		Tenant: "alice",
	})
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := sched1.Submit(service.JobSpec{
		Layer: "micro", App: "adaptive", Kernel: "K1", Runs: adRuns, Seed: adSeed,
		Tenant: "bob", Priority: 2,
		Sampling: &service.SamplingSpec{Margin99: adMargin},
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, id := range []string{"ka", "kb"} {
		startWorker(t, fleet.WorkerConfig{
			ID: id, Client: client.New(srv1.URL), Source: killResumeSource(300 * time.Microsecond),
			Chunk: []int{40, 70}[i], Workers: 1, Poll: time.Millisecond, Backoff: testBackoff,
		})
	}

	// Let both jobs make real progress, then crash the coordinator: sever
	// the workers (no drain, no lease return), skip the final flush — the
	// journal holds whatever the last periodic flush captured.
	deadline := time.Now().Add(20 * time.Second)
	for {
		f, _ := sched1.Get(fixed.ID)
		a, _ := sched1.Get(adapt.ID)
		if f.Done >= 200 && a.Done >= 200 {
			break
		}
		if f.State.Terminal() && a.State.Terminal() {
			t.Fatal("both jobs finished before the kill; slow the source down")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress before kill: fixed %+v adaptive %+v", f, a)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := coord1.Flush(); err != nil { // stand-in for the last periodic flush
		t.Fatal(err)
	}
	srv1.Close() // workers lose the coordinator mid-lease
	coord1.Kill()
	if err := sched1.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal must hold outstanding leases and both workers.
	raw, err := os.ReadFile(fleetCkpt)
	if err != nil {
		t.Fatal(err)
	}
	var jf struct {
		Version int `json:"version"`
		Leases  []struct {
			JobID string `json:"job_id"`
		} `json:"leases"`
		Workers []struct {
			Name string `json:"name"`
		} `json:"workers"`
		Stats service.LeaseStats `json:"stats"`
	}
	if err := json.Unmarshal(raw, &jf); err != nil {
		t.Fatalf("journal not valid JSON: %v\n%s", err, raw)
	}
	if jf.Version != 1 || len(jf.Workers) != 2 || jf.Stats.Granted == 0 {
		t.Fatalf("journal implausible: %+v", jf)
	}
	if len(jf.Leases) == 0 {
		t.Fatal("journal holds no outstanding leases; the kill missed the mid-lease window")
	}

	// Restart both halves from their journals and let two fresh workers
	// finish the campaign. The dead workers' reclaimed leases expire and
	// requeue; everything re-executes deterministically.
	schedCfg.Source = killResumeSource(0)
	sched2, err := service.NewScheduler(schedCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched2.Close() })
	coord2, err := fleet.NewCoordinator(sched2, coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord2.Close() })
	srv2 := httptest.NewServer(service.NewServer(sched2).Handler(coord2.Mount))
	t.Cleanup(srv2.Close)

	// Restored state: counters carried over, both workers remembered, the
	// journaled leases re-pinned as open.
	if st := coord2.Stats(); st.Granted < jf.Stats.Granted {
		t.Errorf("restored Granted %d < journaled %d", st.Granted, jf.Stats.Granted)
	}
	fs := coord2.FleetStatus()
	if len(fs.Workers) != 2 || !fs.Journaled {
		t.Errorf("restored fleet status %+v", fs)
	}
	if fs.OpenLeases != len(jf.Leases) {
		t.Errorf("restored open leases %d, journal had %d", fs.OpenLeases, len(jf.Leases))
	}

	for _, id := range []string{"kc", "kd"} {
		startWorker(t, fleet.WorkerConfig{
			ID: id, Client: client.New(srv2.URL), Source: killResumeSource(0),
			Chunk: 50, Workers: 1, Poll: time.Millisecond, Backoff: testBackoff,
		})
	}

	finalFixed := waitTerminal(t, sched2, fixed.ID, 60*time.Second)
	finalAdapt := waitTerminal(t, sched2, adapt.ID, 60*time.Second)

	wantFixed := campaign.Run(campaign.Options{Runs: fixedRuns, Seed: fixedSeed},
		func(run int, rng *rand.Rand) faults.Result { return outcome(rng) })
	if finalFixed.State != service.StateDone || finalFixed.Tally != wantFixed {
		t.Errorf("fixed job after kill+resume %+v, want tally %+v", finalFixed, wantFixed)
	}

	wantAdapt := adaptive.Run(campaign.Options{Runs: adRuns, Seed: adSeed}, adaptive.Policy{Margin: adMargin}, lowFR)
	if !wantAdapt.EarlyStopped {
		t.Fatal("test premise broken: local adaptive run did not stop early")
	}
	if finalAdapt.State != service.StateDone || finalAdapt.Tally != wantAdapt.Tally || finalAdapt.Done != wantAdapt.Tally.N {
		t.Errorf("adaptive job after kill+resume %+v, want stop at n=%d tally %+v",
			finalAdapt, wantAdapt.Tally.N, wantAdapt.Tally)
	}
	if !finalAdapt.EarlyStopped {
		t.Errorf("adaptive job lost its early stop: %+v", finalAdapt)
	}
}

// TestJournalDropsSettledJobs: restoring a journal whose leases point at
// jobs the scheduler no longer tracks (or has finished) drops those leases
// instead of resurrecting them.
func TestJournalDropsSettledJobs(t *testing.T) {
	dir := t.TempDir()
	fleetCkpt := filepath.Join(dir, "fleet.journal.json")

	// Hand-craft a journal holding one lease for a job that will not exist.
	jf := map[string]any{
		"version":    1,
		"saved_unix": 1,
		"leases": []map[string]any{
			{"id": "l000000000001", "job_id": "ghost", "worker": "w1", "from": 0, "to": 100, "deadline_unix": 1},
		},
		"workers": []map[string]any{
			{"name": "w1", "caps": map[string]any{}, "registered": true},
		},
		"stats": map[string]any{"granted": 7},
	}
	raw, err := json.MarshalIndent(jf, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fleetCkpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	sched, err := service.NewScheduler(service.Config{Source: synthSource(0), DisableLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	coord, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{JournalPath: fleetCkpt})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	fs := coord.FleetStatus()
	if fs.OpenLeases != 0 {
		t.Errorf("ghost lease restored: %+v", fs)
	}
	if len(fs.Workers) != 1 || fs.Workers[0].Name != "w1" || !fs.Workers[0].Registered {
		t.Errorf("registry not restored: %+v", fs.Workers)
	}
	if fs.Leases.Granted != 7 {
		t.Errorf("stats not restored: %+v", fs.Leases)
	}
}

// TestJournalVersionMismatch: an incompatible journal fails loudly instead
// of restoring garbage.
func TestJournalVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal.json")
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sched, err := service.NewScheduler(service.Config{Source: synthSource(0), DisableLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	if _, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{JournalPath: path}); err == nil {
		t.Fatal("version-99 journal accepted")
	}
}

// TestCloseKeepsJournaledLeases: a journaled coordinator's graceful Close
// leaves open leases in the journal (their workers may outlive the process)
// instead of requeueing them, and the next coordinator restores them.
func TestCloseKeepsJournaledLeases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal.json")
	sched, err := service.NewScheduler(service.Config{Source: synthSource(0), DisableLocalExec: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	coord, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{
		JournalPath: path, LeaseTTL: 30 * time.Second, LeaseRuns: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(sched).Handler(coord.Mount))
	t.Cleanup(srv.Close)

	if _, err := sched.Submit(service.JobSpec{Layer: "micro", App: "fake", Kernel: "K1", Runs: 300, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	c := client.New(srv.URL)
	ls, ok, err := c.Lease(context.Background(), service.LeaseRequest{Worker: "wkeep"})
	if err != nil || !ok {
		t.Fatalf("lease: %v ok=%v", err, ok)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	coord2, err := fleet.NewCoordinator(sched, fleet.CoordinatorConfig{
		JournalPath: path, LeaseTTL: 30 * time.Second, LeaseRuns: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord2.Close() })
	fs := coord2.FleetStatus()
	if fs.OpenLeases != 1 {
		t.Fatalf("journaled lease lost across Close/restore: %+v", fs)
	}
	if fs.Leases.Returned != 0 {
		t.Errorf("journaled Close requeued the lease: %+v", fs.Leases)
	}
	_ = ls
}
