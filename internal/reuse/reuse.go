// Package reuse implements the register reuse analyzer proposed in §V-B of
// the paper (Figure 12): given a fault in a register at some instruction,
// find every subsequent instruction that reads the corrupted register before
// it is rewritten, i.e. the set of dynamic uses an "instantaneous"
// software-level injection fails to model.
//
// The analyzer works on the static instruction stream. Within straight-line
// regions the reader set is exact; across branches the scan follows the
// fall-through path and conservatively notes the first branch (matching the
// compiler-level analyzer the paper sketches, which would be integrated with
// an LLVM-based injector).
package reuse

import (
	"fmt"
	"strings"

	"gpurel/internal/isa"
)

// Use is one instruction that reads the tracked register.
type Use struct {
	PC    int
	Instr isa.Instr
}

// Analysis is the reader set of one (pc, register) fault site.
type Analysis struct {
	Reg     isa.Reg
	FaultPC int
	// Uses are the subsequent reads of Reg before its next write, in
	// program order along the fall-through path.
	Uses []Use
	// KilledAt is the PC of the instruction that rewrites Reg (-1 if the
	// scan reached the end of the program or a control-flow join first).
	KilledAt int
}

// ReadersAfter scans forward from pc+1 and collects every instruction that
// reads reg before the register is written again.
func ReadersAfter(p *isa.Program, pc int, reg isa.Reg) Analysis {
	a := Analysis{Reg: reg, FaultPC: pc, KilledAt: -1}
	var srcs []isa.Reg
	for cur := pc + 1; cur < len(p.Code); cur++ {
		ins := &p.Code[cur]
		srcs = ins.SrcRegs(srcs[:0])
		for _, r := range srcs {
			if r == reg {
				a.Uses = append(a.Uses, Use{PC: cur, Instr: *ins})
				break
			}
		}
		if ins.Writing() && ins.Dst == reg {
			a.KilledAt = cur
			return a
		}
		if ins.Op == isa.OpBRA || ins.Op == isa.OpEXIT {
			// conservative: stop at control flow
			return a
		}
	}
	return a
}

// Annotate renders the program in the style of Figure 12: every instruction
// on its own line, with the fault site and every affected use marked.
func Annotate(p *isa.Program, a Analysis) string {
	marks := map[int]string{a.FaultPC: "  <-- fault injected here"}
	for _, u := range a.Uses {
		marks[u.PC] = fmt.Sprintf("  <-- reads corrupted R%d", a.Reg)
	}
	if a.KilledAt >= 0 {
		marks[a.KilledAt] = fmt.Sprintf("  <-- R%d rewritten; fault dies", a.Reg)
	}
	var sb strings.Builder
	for pc, ins := range p.Code {
		fmt.Fprintf(&sb, "#%-3d %-50s%s\n", pc, ins.String(), marks[pc])
	}
	return sb.String()
}

// Fanout summarises, for every register-writing instruction of a program,
// how many subsequent reads its destination has before being rewritten —
// the aggregate measure of how much state an instantaneous injection
// under-covers.
func Fanout(p *isa.Program) map[int]int {
	out := make(map[int]int)
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Writing() {
			continue
		}
		out[pc] = len(ReadersAfter(p, pc, ins.Dst).Uses)
	}
	return out
}

// Figure12Program reproduces the SASS snippet of Figure 12 of the paper in
// this repository's ISA, for the worked example in the documentation and the
// reuse-analyzer demo.
func Figure12Program() *isa.Program {
	return &isa.Program{
		Name:    "figure12",
		NumRegs: 8,
		Code: []isa.Instr{
			{Op: isa.OpS2R, Dst: 0, Special: isa.SRCtaIDX},        // #1 S2R R0, SR_CTAID.X
			{Op: isa.OpS2R, Dst: 3, Special: isa.SRTidX},          // #2 S2R R3, SR_TID.X
			{Op: isa.OpIMAD, Dst: 4, SrcA: 0, SrcB: 5, SrcC: 3},   // #3 IMAD R4, R0, c[...], R3
			{Op: isa.OpISCADD, Dst: 3, SrcA: 0, SrcB: 6, Imm2: 2}, // #4 ISCADD R3, R0, c[0x140], 0x2
			{Op: isa.OpISCADD, Dst: 2, SrcA: 0, SrcB: 6, Imm2: 2}, // #5 ISCADD R2, R0, c[0x144], 0x2
			{Op: isa.OpLDG, Dst: 3, SrcA: 3},                      // #6 LD.CG R3, [R3]
			{Op: isa.OpISCADD, Dst: 0, SrcA: 0, SrcB: 6, Imm2: 2}, // #7 ISCADD R0, R0, c[0x148], 0x2
			{Op: isa.OpLDG, Dst: 2, SrcA: 2},                      // #8 LD.CG R2, [R2]
			{Op: isa.OpFADD, Dst: 3, SrcA: 0, SrcB: 2},            // #9 FADD R3, R0, R2
			{Op: isa.OpSTG, SrcA: 0, SrcB: 3},                     // #10 ST [R0], R3
			{Op: isa.OpEXIT},
		},
	}
}
