package reuse

import (
	"strings"
	"testing"
	"testing/quick"

	"gpurel/internal/isa"
)

// TestFigure12Example reproduces the paper's worked example: a fault in R0
// at the paper's instruction #4 affects #5 and #7 and dies when #7 rewrites
// R0 (the FADD at #9 reads the fresh R0).
func TestFigure12Example(t *testing.T) {
	p := Figure12Program()
	a := ReadersAfter(p, 3, 0)
	if len(a.Uses) != 2 {
		t.Fatalf("expected 2 affected uses, got %d: %+v", len(a.Uses), a.Uses)
	}
	if a.Uses[0].PC != 4 || a.Uses[1].PC != 6 {
		t.Errorf("affected PCs = %d, %d; want 4 and 6", a.Uses[0].PC, a.Uses[1].PC)
	}
	if a.KilledAt != 6 {
		t.Errorf("fault must die at PC 6 (R0 rewritten), got %d", a.KilledAt)
	}
}

func TestKilledAtWritesReg(t *testing.T) {
	p := Figure12Program()
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Writing() {
			continue
		}
		a := ReadersAfter(p, pc, ins.Dst)
		if a.KilledAt >= 0 {
			k := &p.Code[a.KilledAt]
			if !k.Writing() || k.Dst != ins.Dst {
				t.Errorf("pc %d: KilledAt %d does not rewrite R%d", pc, a.KilledAt, ins.Dst)
			}
		}
	}
}

func TestUsesActuallyRead(t *testing.T) {
	p := Figure12Program()
	var srcs []isa.Reg
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Writing() {
			continue
		}
		a := ReadersAfter(p, pc, ins.Dst)
		for _, u := range a.Uses {
			srcs = p.Code[u.PC].SrcRegs(srcs[:0])
			found := false
			for _, r := range srcs {
				if r == ins.Dst {
					found = true
				}
			}
			if !found {
				t.Errorf("pc %d: claimed use at %d does not read R%d", pc, u.PC, ins.Dst)
			}
		}
	}
}

func TestScanStopsAtControlFlow(t *testing.T) {
	p := &isa.Program{Name: "cf", NumRegs: 4, Code: []isa.Instr{
		{Op: isa.OpMOVI, Dst: 0, Imm: 1},
		{Op: isa.OpBRA, Target: 3, Reconv: 3},
		{Op: isa.OpIADD, Dst: 1, SrcA: 0, SrcB: 0}, // behind the branch
		{Op: isa.OpEXIT},
	}}
	a := ReadersAfter(p, 0, 0)
	if len(a.Uses) != 0 {
		t.Errorf("scan must stop at the branch, found %+v", a.Uses)
	}
}

func TestAnnotate(t *testing.T) {
	p := Figure12Program()
	a := ReadersAfter(p, 3, 0)
	s := Annotate(p, a)
	if !strings.Contains(s, "fault injected here") {
		t.Error("missing fault marker")
	}
	if !strings.Contains(s, "reads corrupted R0") {
		t.Error("missing use marker")
	}
	if !strings.Contains(s, "rewritten") {
		t.Error("missing kill marker")
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != len(p.Code) {
		t.Error("annotation must list every instruction")
	}
}

func TestFanout(t *testing.T) {
	p := Figure12Program()
	f := Fanout(p)
	if len(f) == 0 {
		t.Fatal("no fanout data")
	}
	for pc, n := range f {
		if n < 0 {
			t.Errorf("pc %d: negative fanout", pc)
		}
		if !p.Code[pc].Writing() {
			t.Errorf("pc %d: fanout for a non-writing instruction", pc)
		}
	}
}

// TestFanoutMatchesReaders (property): Fanout agrees with ReadersAfter for
// random straight-line programs.
func TestFanoutMatchesReaders(t *testing.T) {
	f := func(dsts, srcs [8]uint8) bool {
		code := make([]isa.Instr, 0, 9)
		for i := 0; i < 8; i++ {
			code = append(code, isa.Instr{
				Op:   isa.OpIADD,
				Dst:  isa.Reg(dsts[i] % 4),
				SrcA: isa.Reg(srcs[i] % 4),
				SrcB: isa.Reg((srcs[i] >> 2) % 4),
			})
		}
		code = append(code, isa.Instr{Op: isa.OpEXIT})
		p := &isa.Program{Name: "r", NumRegs: 4, Code: code}
		fan := Fanout(p)
		for pc := range p.Code {
			if !p.Code[pc].Writing() {
				continue
			}
			if fan[pc] != len(ReadersAfter(p, pc, p.Code[pc].Dst).Uses) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
