// Package isa defines the SASS-like instruction set executed by the GPU
// simulator. It is a deliberately small, Volta-flavoured subset: 32-bit
// general-purpose registers, seven predicate registers, integer and
// single-precision float arithmetic, special-function (MUFU) operations,
// global/shared/texture memory accesses, structured branches carrying an
// explicit reconvergence point, and a CTA-wide barrier.
//
// Programs are straight arrays of Instr values addressed by PC index; there
// is no binary encoding. Branch targets and reconvergence PCs are resolved
// at build time by the kasm package.
package isa

import "fmt"

// Reg names a 32-bit general purpose register. RZ is the zero register: it
// reads as zero and discards writes, mirroring NVIDIA's RZ convention.
type Reg uint16

// RZ is the always-zero register.
const RZ Reg = 0xFFFF

// MaxRegs bounds the per-thread architectural register count.
const MaxRegs = 255

// Pred names a 1-bit predicate register. PT is the always-true predicate and
// is deliberately the zero value, so an unset guard field means "unguarded".
type Pred uint8

// Predicate registers: the constant-true PT plus writable P0..P6.
const (
	PT Pred = iota // always true; writes are discarded
	P0
	P1
	P2
	P3
	P4
	P5
	P6
)

// NumPreds is the number of writable predicate registers.
const NumPreds = 7

// SReg identifies a special (read-only) hardware register readable via S2R.
type SReg uint8

// Special registers exposed to kernels.
const (
	SRTidX SReg = iota
	SRTidY
	SRCtaIDX
	SRCtaIDY
	SRNTidX  // block dim x
	SRNTidY  // block dim y
	SRNCtaX  // grid dim x
	SRNCtaY  // grid dim y
	SRLaneID // lane within warp
)

// MufuOp selects the special-function-unit operation performed by OpMUFU.
type MufuOp uint8

// Special function unit operations.
const (
	MufuRCP  MufuOp = iota // 1/x
	MufuSQRT               // sqrt(x)
	MufuRSQ                // 1/sqrt(x)
	MufuEX2                // 2^x
	MufuLG2                // log2(x)
)

// CmpOp is the comparison performed by ISETP/FSETP.
type CmpOp uint8

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. Memory opcodes operate on 4-byte words; addresses are byte
// addresses formed as R[SrcA] + Imm.
const (
	OpNOP Op = iota
	OpEXIT
	OpBRA // guarded branch to Target; Reconv holds the IPDOM for the SIMT stack
	OpBAR // CTA-wide barrier

	OpS2R  // Dst = special register
	OpMOV  // Dst = SrcA
	OpMOVI // Dst = Imm
	OpLDC  // Dst = kernel parameter word [Imm]

	OpIADD // Dst = SrcA + SrcB
	OpISUB // Dst = SrcA - SrcB
	OpIMUL // Dst = SrcA * SrcB (low 32 bits, signed)
	OpIMAD // Dst = SrcA*SrcB + SrcC
	OpISCADD
	OpIMIN // signed min
	OpIMAX // signed max
	OpSHL
	OpSHR // logical shift right
	OpAND
	OpOR
	OpXOR

	OpFADD
	OpFSUB
	OpFMUL
	OpFFMA // Dst = SrcA*SrcB + SrcC
	OpFMIN
	OpFMAX
	OpMUFU // Dst = Mufu(SrcA)

	OpI2F // int32 -> float32
	OpF2I // float32 -> int32 (truncate)

	OpISETP // PDst = (SrcA cmp SrcB) && CPred
	OpFSETP
	OpSEL // Dst = SelPred ? SrcA : SrcB

	OpLDG // Dst = global[R[SrcA]+Imm]
	OpSTG // global[R[SrcA]+Imm] = R[SrcB]
	OpLDS // Dst = shared[R[SrcA]+Imm]
	OpSTS // shared[R[SrcA]+Imm] = R[SrcB]
	OpLDT // Dst = texture path read of global[R[SrcA]+Imm]

	opCount
)

// ISCADD semantics: Dst = (SrcA << Imm2) + SrcB, matching the SASS pattern
// used for array index scaling.

// Instr is one decoded instruction. A single struct covers all opcodes; the
// per-op field usage is documented alongside the opcodes.
type Instr struct {
	Op   Op
	Dst  Reg
	SrcA Reg
	SrcB Reg
	SrcC Reg

	// BImm replaces the SrcB register operand with Imm for ALU ops.
	BImm bool
	Imm  int32
	// Imm2 is the shift amount for ISCADD.
	Imm2 uint8

	// Guard predicate: the instruction executes on lanes where the guard
	// holds (guard = Pred value, negated when PredNeg).
	Pred    Pred
	PredNeg bool

	// ISETP/FSETP fields.
	PDst     Pred
	Cmp      CmpOp
	CPred    Pred // ANDed into the comparison result (PT = no-op)
	CPredNeg bool

	// SEL condition.
	SelPred    Pred
	SelPredNeg bool

	Special SReg
	Mufu    MufuOp

	// Branch fields (PC indices).
	Target int
	Reconv int
}

// Program is an executable kernel: a name, the instruction stream, and the
// number of architectural registers each thread requires.
type Program struct {
	Name    string
	Code    []Instr
	NumRegs int
}

// Writing reports whether the instruction writes a general-purpose
// destination register.
func (i *Instr) Writing() bool {
	switch i.Op {
	case OpS2R, OpMOV, OpMOVI, OpLDC, OpIADD, OpISUB, OpIMUL, OpIMAD, OpISCADD,
		OpIMIN, OpIMAX, OpSHL, OpSHR, OpAND, OpOR, OpXOR, OpFADD, OpFSUB, OpFMUL,
		OpFFMA, OpFMIN, OpFMAX, OpMUFU, OpI2F, OpF2I, OpSEL, OpLDG, OpLDS, OpLDT:
		return i.Dst != RZ
	}
	return false
}

// IsLoad reports whether the instruction is a memory load (global, shared or
// texture). Used to restrict software-level injection to SVF-LD campaigns.
func (i *Instr) IsLoad() bool {
	return i.Op == OpLDG || i.Op == OpLDS || i.Op == OpLDT
}

// IsMem reports whether the instruction accesses memory.
func (i *Instr) IsMem() bool {
	switch i.Op {
	case OpLDG, OpSTG, OpLDS, OpSTS, OpLDT:
		return true
	}
	return false
}

// SrcRegs appends the general-purpose source registers read by the
// instruction to dst and returns it. RZ sources are included (they are real
// operands) but callers typically skip them.
func (i *Instr) SrcRegs(dst []Reg) []Reg {
	switch i.Op {
	case OpMOV, OpMUFU, OpI2F, OpF2I:
		dst = append(dst, i.SrcA)
	case OpIADD, OpISUB, OpIMUL, OpIMIN, OpIMAX, OpSHL, OpSHR, OpAND, OpOR,
		OpXOR, OpFADD, OpFSUB, OpFMUL, OpFMIN, OpFMAX, OpSEL:
		dst = append(dst, i.SrcA)
		if !i.BImm {
			dst = append(dst, i.SrcB)
		}
	case OpIMAD, OpFFMA:
		dst = append(dst, i.SrcA)
		if !i.BImm {
			dst = append(dst, i.SrcB)
		}
		dst = append(dst, i.SrcC)
	case OpISCADD:
		dst = append(dst, i.SrcA, i.SrcB)
	case OpISETP, OpFSETP:
		dst = append(dst, i.SrcA)
		if !i.BImm {
			dst = append(dst, i.SrcB)
		}
	case OpLDG, OpLDS, OpLDT:
		dst = append(dst, i.SrcA)
	case OpSTG, OpSTS:
		dst = append(dst, i.SrcA, i.SrcB)
	}
	return dst
}

// Known reports whether the opcode is one the ISA defines.
func (o Op) Known() bool { return o < opCount }

// NumOps is the number of defined opcodes. Metadata tables (disassembly,
// source/destination maps, exhaustiveness tests) must have exactly this many
// entries.
const NumOps = int(opCount)

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

var opNames = [...]string{
	"NOP", "EXIT", "BRA", "BAR",
	"S2R", "MOV", "MOVI", "LDC",
	"IADD", "ISUB", "IMUL", "IMAD", "ISCADD", "IMIN", "IMAX", "SHL", "SHR",
	"AND", "OR", "XOR",
	"FADD", "FSUB", "FMUL", "FFMA", "FMIN", "FMAX", "MUFU",
	"I2F", "F2I",
	"ISETP", "FSETP", "SEL",
	"LDG", "STG", "LDS", "STS", "LDT",
}

func (c CmpOp) String() string {
	switch c {
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	}
	return "??"
}

func (m MufuOp) String() string {
	switch m {
	case MufuRCP:
		return "RCP"
	case MufuSQRT:
		return "SQRT"
	case MufuRSQ:
		return "RSQ"
	case MufuEX2:
		return "EX2"
	case MufuLG2:
		return "LG2"
	}
	return "??"
}

func (s SReg) String() string {
	switch s {
	case SRTidX:
		return "SR_TID.X"
	case SRTidY:
		return "SR_TID.Y"
	case SRCtaIDX:
		return "SR_CTAID.X"
	case SRCtaIDY:
		return "SR_CTAID.Y"
	case SRNTidX:
		return "SR_NTID.X"
	case SRNTidY:
		return "SR_NTID.Y"
	case SRNCtaX:
		return "SR_NCTAID.X"
	case SRNCtaY:
		return "SR_NCTAID.Y"
	case SRLaneID:
		return "SR_LANEID"
	}
	return "SR_??"
}

func regName(r Reg) string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", r)
}

func predName(p Pred, neg bool) string {
	s := "PT"
	if p != PT {
		s = "P" + fmt.Sprint(int(p)-1)
	}
	if neg {
		return "!" + s
	}
	return s
}

// String disassembles the instruction into a SASS-like line.
func (i Instr) String() string {
	guard := ""
	if i.Pred != PT || i.PredNeg {
		guard = "@" + predName(i.Pred, i.PredNeg) + " "
	}
	b := func() string {
		if i.BImm {
			return fmt.Sprintf("0x%x", uint32(i.Imm))
		}
		return regName(i.SrcB)
	}
	switch i.Op {
	case OpNOP, OpEXIT, OpBAR:
		return guard + i.Op.String()
	case OpBRA:
		return fmt.Sprintf("%sBRA %d (reconv %d)", guard, i.Target, i.Reconv)
	case OpS2R:
		return fmt.Sprintf("%sS2R %s, %s", guard, regName(i.Dst), i.Special)
	case OpMOV:
		return fmt.Sprintf("%sMOV %s, %s", guard, regName(i.Dst), regName(i.SrcA))
	case OpMOVI:
		return fmt.Sprintf("%sMOV32I %s, 0x%x", guard, regName(i.Dst), uint32(i.Imm))
	case OpLDC:
		return fmt.Sprintf("%sLDC %s, c[0x0][%d]", guard, regName(i.Dst), i.Imm)
	case OpIMAD, OpFFMA:
		return fmt.Sprintf("%s%s %s, %s, %s, %s", guard, i.Op, regName(i.Dst), regName(i.SrcA), b(), regName(i.SrcC))
	case OpISCADD:
		return fmt.Sprintf("%sISCADD %s, %s, %s, 0x%x", guard, regName(i.Dst), regName(i.SrcA), regName(i.SrcB), i.Imm2)
	case OpMUFU:
		return fmt.Sprintf("%sMUFU.%s %s, %s", guard, i.Mufu, regName(i.Dst), regName(i.SrcA))
	case OpI2F, OpF2I:
		return fmt.Sprintf("%s%s %s, %s", guard, i.Op, regName(i.Dst), regName(i.SrcA))
	case OpISETP, OpFSETP:
		s := fmt.Sprintf("%s%s.%s.AND %s, %s, %s, %s", guard, i.Op, i.Cmp,
			predName(i.PDst, false), regName(i.SrcA), b(), predName(i.CPred, i.CPredNeg))
		return s
	case OpSEL:
		return fmt.Sprintf("%sSEL %s, %s, %s, %s", guard, regName(i.Dst), regName(i.SrcA), b(), predName(i.SelPred, i.SelPredNeg))
	case OpLDG, OpLDS, OpLDT:
		return fmt.Sprintf("%s%s %s, [%s+0x%x]", guard, i.Op, regName(i.Dst), regName(i.SrcA), uint32(i.Imm))
	case OpSTG, OpSTS:
		return fmt.Sprintf("%s%s [%s+0x%x], %s", guard, i.Op, regName(i.SrcA), uint32(i.Imm), regName(i.SrcB))
	default:
		return fmt.Sprintf("%s%s %s, %s, %s", guard, i.Op, regName(i.Dst), regName(i.SrcA), b())
	}
}

// Disassemble renders the whole program, one instruction per line with PC
// prefixes, in the style of Figure 12 of the paper.
func (p *Program) Disassemble() string {
	out := ""
	for pc, ins := range p.Code {
		out += fmt.Sprintf("#%-4d %s\n", pc, ins.String())
	}
	return out
}

// Validate checks structural invariants: branch targets in range, register
// indices under NumRegs, and a terminating EXIT reachable at the end.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("%s: empty program", p.Name)
	}
	if p.NumRegs > MaxRegs {
		return fmt.Errorf("%s: %d registers exceeds MaxRegs", p.Name, p.NumRegs)
	}
	checkReg := func(pc int, r Reg) error {
		if r != RZ && int(r) >= p.NumRegs {
			return fmt.Errorf("%s: pc %d: register R%d out of range (NumRegs=%d)", p.Name, pc, r, p.NumRegs)
		}
		return nil
	}
	checkPred := func(pc int, pr Pred) error {
		if int(pr) > NumPreds {
			return fmt.Errorf("%s: pc %d: predicate %d out of range", p.Name, pc, pr)
		}
		return nil
	}
	var srcs []Reg
	for pc := range p.Code {
		ins := &p.Code[pc]
		if ins.Op >= opCount {
			return fmt.Errorf("%s: pc %d: bad opcode %d", p.Name, pc, ins.Op)
		}
		for _, pr := range [...]Pred{ins.Pred, ins.PDst, ins.CPred, ins.SelPred} {
			if err := checkPred(pc, pr); err != nil {
				return err
			}
		}
		switch ins.Op {
		case OpISETP, OpFSETP:
			if ins.Cmp > CmpNE {
				return fmt.Errorf("%s: pc %d: bad comparison %d", p.Name, pc, ins.Cmp)
			}
		case OpMUFU:
			if ins.Mufu > MufuLG2 {
				return fmt.Errorf("%s: pc %d: bad MUFU op %d", p.Name, pc, ins.Mufu)
			}
		case OpS2R:
			if ins.Special > SRLaneID {
				return fmt.Errorf("%s: pc %d: bad special register %d", p.Name, pc, ins.Special)
			}
		}
		if ins.Op == OpBRA {
			if ins.Target < 0 || ins.Target > len(p.Code) {
				return fmt.Errorf("%s: pc %d: branch target %d out of range", p.Name, pc, ins.Target)
			}
			if ins.Reconv < 0 || ins.Reconv > len(p.Code) {
				return fmt.Errorf("%s: pc %d: reconvergence point %d out of range", p.Name, pc, ins.Reconv)
			}
		}
		if ins.Writing() {
			if err := checkReg(pc, ins.Dst); err != nil {
				return err
			}
		}
		srcs = ins.SrcRegs(srcs[:0])
		for _, r := range srcs {
			if err := checkReg(pc, r); err != nil {
				return err
			}
		}
	}
	if p.Code[len(p.Code)-1].Op != OpEXIT {
		return fmt.Errorf("%s: program must end with EXIT", p.Name)
	}
	return nil
}
