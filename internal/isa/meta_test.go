package isa

import "testing"

// opMeta pins the per-opcode metadata contract: mnemonic, whether the op
// writes a GPR destination, and how many GPR sources it reads (with BImm
// clear). Adding an opcode without extending this table — or without teaching
// SrcRegs/Writing/String about it — fails TestOpMetadataExhaustive, which is
// the point: every consumer of the ISA (linter, liveness, fault classifier)
// trusts these three methods to cover the full opcode space.
var opMeta = map[Op]struct {
	name   string
	writes bool
	nsrc   int
}{
	OpNOP:    {"NOP", false, 0},
	OpEXIT:   {"EXIT", false, 0},
	OpBRA:    {"BRA", false, 0},
	OpBAR:    {"BAR", false, 0},
	OpS2R:    {"S2R", true, 0},
	OpMOV:    {"MOV", true, 1},
	OpMOVI:   {"MOVI", true, 0},
	OpLDC:    {"LDC", true, 0},
	OpIADD:   {"IADD", true, 2},
	OpISUB:   {"ISUB", true, 2},
	OpIMUL:   {"IMUL", true, 2},
	OpIMAD:   {"IMAD", true, 3},
	OpISCADD: {"ISCADD", true, 2},
	OpIMIN:   {"IMIN", true, 2},
	OpIMAX:   {"IMAX", true, 2},
	OpSHL:    {"SHL", true, 2},
	OpSHR:    {"SHR", true, 2},
	OpAND:    {"AND", true, 2},
	OpOR:     {"OR", true, 2},
	OpXOR:    {"XOR", true, 2},
	OpFADD:   {"FADD", true, 2},
	OpFSUB:   {"FSUB", true, 2},
	OpFMUL:   {"FMUL", true, 2},
	OpFFMA:   {"FFMA", true, 3},
	OpFMIN:   {"FMIN", true, 2},
	OpFMAX:   {"FMAX", true, 2},
	OpMUFU:   {"MUFU", true, 1},
	OpI2F:    {"I2F", true, 1},
	OpF2I:    {"F2I", true, 1},
	OpISETP:  {"ISETP", false, 2},
	OpFSETP:  {"FSETP", false, 2},
	OpSEL:    {"SEL", true, 2},
	OpLDG:    {"LDG", true, 1},
	OpSTG:    {"STG", false, 2},
	OpLDS:    {"LDS", true, 1},
	OpSTS:    {"STS", false, 2},
	OpLDT:    {"LDT", true, 1},
}

func TestOpMetadataExhaustive(t *testing.T) {
	if len(opMeta) != NumOps {
		t.Fatalf("opMeta covers %d opcodes, ISA defines %d — extend the table and the metadata methods together", len(opMeta), NumOps)
	}
	if len(opNames) != NumOps {
		t.Fatalf("opNames has %d entries, ISA defines %d opcodes", len(opNames), NumOps)
	}
	var srcs []Reg
	for op := Op(0); op.Known(); op++ {
		m, ok := opMeta[op]
		if !ok {
			t.Errorf("opcode %d has no opMeta entry", op)
			continue
		}
		if got := op.String(); got != m.name {
			t.Errorf("%s: String() = %q, want %q", m.name, got, m.name)
		}
		ins := Instr{Op: op, Dst: 1, SrcA: 2, SrcB: 3, SrcC: 4}
		if got := ins.Writing(); got != m.writes {
			t.Errorf("%s: Writing() = %v, want %v", m.name, got, m.writes)
		}
		srcs = ins.SrcRegs(srcs[:0])
		if len(srcs) != m.nsrc {
			t.Errorf("%s: SrcRegs() returned %d registers %v, want %d", m.name, len(srcs), srcs, m.nsrc)
		}
	}
	// Past the end of the opcode space nothing is Known, and String degrades
	// to the numeric fallback instead of indexing out of range.
	if Op(NumOps).Known() {
		t.Error("Op(NumOps) must not be Known")
	}
	if got := Op(255).String(); got != "OP(255)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestWritingRZ: a write to RZ is architecturally a no-op, and Writing must
// say so — liveness and dead-write analysis rely on it.
func TestWritingRZ(t *testing.T) {
	ins := Instr{Op: OpIADD, Dst: RZ, SrcA: 1, SrcB: 2}
	if ins.Writing() {
		t.Error("write to RZ reported as Writing")
	}
}

// TestSrcRegsBImm: with BImm set, SrcB is an immediate and must not be
// reported as a register source.
func TestSrcRegsBImm(t *testing.T) {
	ins := Instr{Op: OpIADD, Dst: 1, SrcA: 2, SrcB: 3, BImm: true}
	srcs := ins.SrcRegs(nil)
	if len(srcs) != 1 || srcs[0] != 2 {
		t.Errorf("SrcRegs with BImm = %v, want [R2]", srcs)
	}
	// IMAD's SrcC stays a register even in immediate form.
	ins = Instr{Op: OpIMAD, Dst: 1, SrcA: 2, SrcB: 3, SrcC: 4, BImm: true}
	srcs = ins.SrcRegs(nil)
	if len(srcs) != 2 || srcs[0] != 2 || srcs[1] != 4 {
		t.Errorf("IMAD SrcRegs with BImm = %v, want [R2 R4]", srcs)
	}
}
