package isa

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeInstr feeds arbitrary 28-byte words to the instruction decoder.
// Whatever decodes successfully must re-encode and decode back to the same
// instruction: the encoding is the canonical bit-level form, so decode must
// be a retraction of encode (decode∘encode = id on decode's image).
func FuzzDecodeInstr(f *testing.F) {
	var w [EncodedSize]byte
	for _, ins := range []Instr{
		{Op: OpEXIT},
		{Op: OpIADD, Dst: 1, SrcA: 2, SrcB: 3},
		{Op: OpBRA, Pred: P0, PredNeg: true, Target: 7, Reconv: 9},
		{Op: OpMUFU, Mufu: MufuLG2, Dst: 4, SrcA: 5},
		{Op: OpISETP, PDst: P1, CPred: P2, Cmp: CmpNE, SrcA: 1, SrcB: 2, BImm: true},
	} {
		ins.Encode(w[:])
		f.Add(w[:])
	}
	f.Add([]byte{0xFF}) // short buffer
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := DecodeInstr(data)
		if err != nil {
			return
		}
		var buf, buf2 [EncodedSize]byte
		ins.Encode(buf[:])
		back, err := DecodeInstr(buf[:])
		if err != nil {
			t.Fatalf("re-decode of encoded instruction failed: %v\ninstr: %s", err, ins.String())
		}
		if back != ins {
			t.Fatalf("decode(encode(x)) != x\n in: %#v\nout: %#v", ins, back)
		}
		back.Encode(buf2[:])
		if buf != buf2 {
			t.Fatalf("encode not stable: %x vs %x", buf, buf2)
		}
		_ = ins.String() // must not panic on any decodable instruction
	})
}

// FuzzUnmarshalProgram throws arbitrary blobs at the program loader. It must
// never panic (hostile lengths, truncated streams), and anything it accepts
// must survive a Marshal/Unmarshal round trip unchanged.
func FuzzUnmarshalProgram(f *testing.F) {
	valid := &Program{Name: "seed", NumRegs: 4, Code: []Instr{
		{Op: OpMOVI, Dst: 1, Imm: 42},
		{Op: OpIADD, Dst: 2, SrcA: 1, SrcB: 1},
		{Op: OpEXIT},
	}}
	f.Add(valid.Marshal())
	// Hostile name length near 2^32: nameLen+4 wraps in uint32 arithmetic,
	// which is exactly the overflow UnmarshalProgram widens to dodge.
	hostile := []byte{'G', 'K', 'B', '1'}
	hostile = binary.LittleEndian.AppendUint32(hostile, 4)          // NumRegs
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xFFFFFFFD) // nameLen
	hostile = append(hostile, 0, 0, 0, 0)
	f.Add(hostile)
	f.Add([]byte("GKB1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalProgram(data)
		if err != nil {
			return
		}
		blob := p.Marshal()
		q, err := UnmarshalProgram(blob)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if q.Name != p.Name || q.NumRegs != p.NumRegs || len(q.Code) != len(p.Code) {
			t.Fatalf("round trip changed header: %q/%d/%d vs %q/%d/%d",
				p.Name, p.NumRegs, len(p.Code), q.Name, q.NumRegs, len(q.Code))
		}
		for k := range p.Code {
			if p.Code[k] != q.Code[k] {
				t.Fatalf("round trip changed instruction %d: %#v vs %#v", k, p.Code[k], q.Code[k])
			}
		}
		if !bytes.Equal(blob, q.Marshal()) {
			t.Fatal("Marshal not stable across a round trip")
		}
	})
}
