package isa

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleInstrs() []Instr {
	return []Instr{
		{Op: OpS2R, Dst: 0, Special: SRCtaIDX},
		{Op: OpMOVI, Dst: 3, Imm: -12345},
		{Op: OpIMAD, Dst: 4, SrcA: 0, SrcB: 5, SrcC: 3},
		{Op: OpISCADD, Dst: 3, SrcA: 0, SrcB: 6, Imm2: 2},
		{Op: OpMUFU, Dst: 7, SrcA: 3, Mufu: MufuEX2},
		{Op: OpISETP, PDst: P2, Cmp: CmpGE, SrcA: 1, BImm: true, Imm: 99, CPred: P1, CPredNeg: true},
		{Op: OpSEL, Dst: 2, SrcA: 3, SrcB: 4, SelPred: P6, SelPredNeg: true},
		{Op: OpBRA, Pred: P0, PredNeg: true, Target: 17, Reconv: 42},
		{Op: OpLDG, Dst: 9, SrcA: 1, Imm: 0x100},
		{Op: OpSTS, SrcA: 2, SrcB: 3, Imm: -4},
		{Op: OpIADD, Dst: RZ, SrcA: RZ, SrcB: RZ},
		{Op: OpEXIT},
	}
}

func TestInstrRoundtrip(t *testing.T) {
	var buf [EncodedSize]byte
	for k, ins := range sampleInstrs() {
		ins.Encode(buf[:])
		got, err := DecodeInstr(buf[:])
		if err != nil {
			t.Fatalf("instr %d: %v", k, err)
		}
		if got != ins {
			t.Errorf("instr %d roundtrip:\n got %+v\nwant %+v", k, got, ins)
		}
	}
}

// TestInstrRoundtripProperty: arbitrary field values (within their domains)
// survive the encoding.
func TestInstrRoundtripProperty(t *testing.T) {
	f := func(op, flags uint8, dst, a, b, c uint16, preds [4]uint8, cmp, aux, imm2 uint8, imm, tgt, rcv int32) bool {
		ins := Instr{
			Op:         Op(op % uint8(opCount)),
			BImm:       flags&1 != 0,
			PredNeg:    flags&2 != 0,
			CPredNeg:   flags&4 != 0,
			SelPredNeg: flags&8 != 0,
			Dst:        Reg(dst), SrcA: Reg(a), SrcB: Reg(b), SrcC: Reg(c),
			Pred: Pred(preds[0] % 8), CPred: Pred(preds[1] % 8),
			PDst: Pred(preds[2] % 8), SelPred: Pred(preds[3] % 8),
			Cmp:  CmpOp(cmp % 6),
			Imm2: imm2,
			Imm:  imm, Target: int(tgt), Reconv: int(rcv),
		}
		if ins.Op == OpMUFU {
			ins.Mufu = MufuOp(aux % 5)
		} else {
			ins.Special = SReg(aux % 9)
		}
		var buf [EncodedSize]byte
		ins.Encode(buf[:])
		got, err := DecodeInstr(buf[:])
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeInstr(make([]byte, 4)); err == nil {
		t.Error("short buffer must fail")
	}
	var buf [EncodedSize]byte
	buf[0] = 0xFF
	if _, err := DecodeInstr(buf[:]); err == nil {
		t.Error("bad opcode must fail")
	}
}

func TestProgramMarshalRoundtrip(t *testing.T) {
	code := sampleInstrs()
	// make the synthetic program valid: pull the branch targets in range
	for i := range code {
		if code[i].Op == OpBRA {
			code[i].Target = len(code) - 1
			code[i].Reconv = len(code) - 1
		}
	}
	p := &Program{Name: "roundtrip-kernel", NumRegs: 16, Code: code}
	blob := p.Marshal()
	got, err := UnmarshalProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.NumRegs != p.NumRegs || len(got.Code) != len(p.Code) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Code {
		if got.Code[i] != p.Code[i] {
			t.Errorf("instr %d differs", i)
		}
	}
	// marshalling again is stable
	if !bytes.Equal(blob, got.Marshal()) {
		t.Error("marshal is not canonical")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("GKB1\x01\x00\x00\x00"), // truncated header
		append([]byte("GKB1"), make([]byte, 8)...),              // zero instrs → no EXIT
		append([]byte("GKB1"), bytes.Repeat([]byte{1}, 300)...), // garbage
	}
	for i, c := range cases {
		if _, err := UnmarshalProgram(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
