package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	ok := &Program{Name: "ok", NumRegs: 4, Code: []Instr{
		{Op: OpMOVI, Dst: 0, Imm: 1},
		{Op: OpEXIT},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"empty", &Program{Name: "e"}, "empty"},
		{"no exit", &Program{Name: "n", NumRegs: 1, Code: []Instr{{Op: OpNOP}}}, "EXIT"},
		{"bad target", &Program{Name: "b", NumRegs: 1, Code: []Instr{
			{Op: OpBRA, Target: 9, Reconv: 0}, {Op: OpEXIT}}}, "target"},
		{"bad reconv", &Program{Name: "r", NumRegs: 1, Code: []Instr{
			{Op: OpBRA, Target: 0, Reconv: -2}, {Op: OpEXIT}}}, "reconvergence"},
		{"reg range dst", &Program{Name: "d", NumRegs: 2, Code: []Instr{
			{Op: OpMOVI, Dst: 7}, {Op: OpEXIT}}}, "out of range"},
		{"reg range src", &Program{Name: "s", NumRegs: 2, Code: []Instr{
			{Op: OpIADD, Dst: 0, SrcA: 9, SrcB: 0}, {Op: OpEXIT}}}, "out of range"},
		{"too many regs", &Program{Name: "m", NumRegs: MaxRegs + 1, Code: []Instr{{Op: OpEXIT}}}, "MaxRegs"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestRZIsAlwaysValid(t *testing.T) {
	p := &Program{Name: "rz", NumRegs: 1, Code: []Instr{
		{Op: OpIADD, Dst: RZ, SrcA: RZ, SrcB: RZ},
		{Op: OpEXIT},
	}}
	if err := p.Validate(); err != nil {
		t.Errorf("RZ operands must validate: %v", err)
	}
}

func TestWritingAndLoads(t *testing.T) {
	cases := []struct {
		ins     Instr
		writing bool
		load    bool
	}{
		{Instr{Op: OpLDG, Dst: 1}, true, true},
		{Instr{Op: OpLDS, Dst: 1}, true, true},
		{Instr{Op: OpLDT, Dst: 1}, true, true},
		{Instr{Op: OpSTG}, false, false},
		{Instr{Op: OpISETP}, false, false},
		{Instr{Op: OpBRA}, false, false},
		{Instr{Op: OpFADD, Dst: 1}, true, false},
		{Instr{Op: OpFADD, Dst: RZ}, false, false},
		{Instr{Op: OpEXIT}, false, false},
	}
	for _, c := range cases {
		if got := c.ins.Writing(); got != c.writing {
			t.Errorf("%v Writing = %v, want %v", c.ins.Op, got, c.writing)
		}
		if got := c.ins.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad = %v, want %v", c.ins.Op, got, c.load)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	i := Instr{Op: OpIMAD, SrcA: 1, SrcB: 2, SrcC: 3}
	got := i.SrcRegs(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("IMAD sources = %v", got)
	}
	i.BImm = true
	got = i.SrcRegs(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("IMAD immediate sources = %v", got)
	}
	st := Instr{Op: OpSTG, SrcA: 4, SrcB: 5}
	got = st.SrcRegs(nil)
	if len(got) != 2 {
		t.Errorf("STG sources = %v", got)
	}
}

// TestStringTotality: every opcode disassembles to a non-empty line for
// arbitrary field contents.
func TestStringTotality(t *testing.T) {
	f := func(op uint8, dst, a, b uint16, imm int32, pred, cmp uint8) bool {
		ins := Instr{
			Op: Op(op % uint8(opCount)), Dst: Reg(dst), SrcA: Reg(a), SrcB: Reg(b),
			Imm: imm, Pred: Pred(pred % 8), Cmp: CmpOp(cmp % 6),
		}
		return len(ins.String()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleStyle(t *testing.T) {
	p := &Program{Name: "d", NumRegs: 4, Code: []Instr{
		{Op: OpS2R, Dst: 0, Special: SRCtaIDX},
		{Op: OpISETP, PDst: P0, Cmp: CmpLT, SrcA: 0, BImm: true, Imm: 4, CPred: PT},
		{Op: OpBRA, Pred: P0, Target: 3, Reconv: 3},
		{Op: OpEXIT},
	}}
	d := p.Disassemble()
	for _, want := range []string{"S2R R0, SR_CTAID.X", "ISETP.LT.AND P0,", "@P0 BRA 3", "EXIT"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if len(opNames) != int(opCount) {
		t.Fatalf("opNames has %d entries for %d opcodes", len(opNames), opCount)
	}
	for o := Op(0); o < opCount; o++ {
		if o.String() == "" || strings.HasPrefix(o.String(), "OP(") {
			t.Errorf("opcode %d has no name", o)
		}
	}
}
