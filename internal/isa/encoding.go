package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding: each instruction packs into a fixed 128-bit word, like
// real SASS. Programs serialize to a small container format, so compiled
// kernels can be stored and reloaded (and so the instruction stream has a
// well-defined bit-level representation — the substrate a future
// instruction-memory fault model would target).
//
// Word layout (little-endian):
//
//	byte  0     opcode
//	byte  1     flags: bit0 BImm, bit1 PredNeg, bit2 CPredNeg, bit3 SelPredNeg
//	bytes 2-3   Dst
//	bytes 4-5   SrcA
//	bytes 6-7   SrcB
//	bytes 8-9   SrcC
//	bytes 10    Pred(3b) | PDst(3b) spread over bytes 10-11:
//	byte 10     Pred | CPred<<4
//	byte 11     PDst | SelPred<<4
//	byte 12     Cmp | Special<<4  (Special also carries Mufu: disjoint ops)
//	byte 13     Imm2
//	bytes 14-15 reserved (zero)
//	bytes 16-19 Imm (separate dword)
//	bytes 20-23 Target
//	bytes 24-27 Reconv
//
// EncodedSize is therefore 28 bytes; the first 16 form the "instruction
// word" proper and the rest immediate/branch extensions.

// EncodedSize is the byte size of one encoded instruction.
const EncodedSize = 28

const (
	flagBImm = 1 << iota
	flagPredNeg
	flagCPredNeg
	flagSelPredNeg
)

// Encode packs the instruction into buf (which must hold EncodedSize bytes).
func (i *Instr) Encode(buf []byte) {
	_ = buf[EncodedSize-1]
	buf[0] = byte(i.Op)
	var fl byte
	if i.BImm {
		fl |= flagBImm
	}
	if i.PredNeg {
		fl |= flagPredNeg
	}
	if i.CPredNeg {
		fl |= flagCPredNeg
	}
	if i.SelPredNeg {
		fl |= flagSelPredNeg
	}
	buf[1] = fl
	binary.LittleEndian.PutUint16(buf[2:], uint16(i.Dst))
	binary.LittleEndian.PutUint16(buf[4:], uint16(i.SrcA))
	binary.LittleEndian.PutUint16(buf[6:], uint16(i.SrcB))
	binary.LittleEndian.PutUint16(buf[8:], uint16(i.SrcC))
	buf[10] = byte(i.Pred) | byte(i.CPred)<<4
	buf[11] = byte(i.PDst) | byte(i.SelPred)<<4
	sp := byte(i.Special)
	if i.Op == OpMUFU {
		sp = byte(i.Mufu)
	}
	buf[12] = byte(i.Cmp) | sp<<4
	buf[13] = i.Imm2
	buf[14], buf[15] = 0, 0
	binary.LittleEndian.PutUint32(buf[16:], uint32(i.Imm))
	binary.LittleEndian.PutUint32(buf[20:], uint32(int32(i.Target)))
	binary.LittleEndian.PutUint32(buf[24:], uint32(int32(i.Reconv)))
}

// DecodeInstr unpacks one instruction from buf.
func DecodeInstr(buf []byte) (Instr, error) {
	if len(buf) < EncodedSize {
		return Instr{}, fmt.Errorf("isa: short instruction word (%d bytes)", len(buf))
	}
	var i Instr
	i.Op = Op(buf[0])
	if i.Op >= opCount {
		return Instr{}, fmt.Errorf("isa: bad opcode %d", buf[0])
	}
	fl := buf[1]
	i.BImm = fl&flagBImm != 0
	i.PredNeg = fl&flagPredNeg != 0
	i.CPredNeg = fl&flagCPredNeg != 0
	i.SelPredNeg = fl&flagSelPredNeg != 0
	i.Dst = Reg(binary.LittleEndian.Uint16(buf[2:]))
	i.SrcA = Reg(binary.LittleEndian.Uint16(buf[4:]))
	i.SrcB = Reg(binary.LittleEndian.Uint16(buf[6:]))
	i.SrcC = Reg(binary.LittleEndian.Uint16(buf[8:]))
	i.Pred = Pred(buf[10] & 0xF)
	i.CPred = Pred(buf[10] >> 4)
	i.PDst = Pred(buf[11] & 0xF)
	i.SelPred = Pred(buf[11] >> 4)
	i.Cmp = CmpOp(buf[12] & 0xF)
	if i.Op == OpMUFU {
		i.Mufu = MufuOp(buf[12] >> 4)
	} else {
		i.Special = SReg(buf[12] >> 4)
	}
	i.Imm2 = buf[13]
	i.Imm = int32(binary.LittleEndian.Uint32(buf[16:]))
	i.Target = int(int32(binary.LittleEndian.Uint32(buf[20:])))
	i.Reconv = int(int32(binary.LittleEndian.Uint32(buf[24:])))
	return i, nil
}

// programMagic identifies a serialized program blob.
var programMagic = [4]byte{'G', 'K', 'B', '1'}

// Marshal serializes the program: magic, register count, name, instruction
// count, then the encoded instruction stream.
func (p *Program) Marshal() []byte {
	name := []byte(p.Name)
	out := make([]byte, 0, 16+len(name)+len(p.Code)*EncodedSize)
	out = append(out, programMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.NumRegs))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Code)))
	var w [EncodedSize]byte
	for k := range p.Code {
		p.Code[k].Encode(w[:])
		out = append(out, w[:]...)
	}
	return out
}

// UnmarshalProgram parses a serialized program and validates it.
func UnmarshalProgram(data []byte) (*Program, error) {
	if len(data) < 12 || [4]byte(data[:4]) != programMagic {
		return nil, fmt.Errorf("isa: not a kernel blob")
	}
	numRegs := binary.LittleEndian.Uint32(data[4:])
	nameLen := binary.LittleEndian.Uint32(data[8:])
	rest := data[12:]
	// Widen before adding: nameLen+4 wraps around in uint32 for hostile
	// lengths near 2^32, sneaking past the bound into a slice panic.
	if uint64(len(rest)) < uint64(nameLen)+4 {
		return nil, fmt.Errorf("isa: truncated kernel blob")
	}
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) < uint64(n)*EncodedSize {
		return nil, fmt.Errorf("isa: truncated instruction stream")
	}
	p := &Program{Name: name, NumRegs: int(numRegs), Code: make([]Instr, n)}
	for k := uint32(0); k < n; k++ {
		ins, err := DecodeInstr(rest[int(k)*EncodedSize:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", k, err)
		}
		p.Code[k] = ins
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
