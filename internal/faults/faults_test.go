package faults

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{Masked: "Masked", SDC: "SDC", Timeout: "Timeout", DUE: "DUE"}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome must still render")
	}
}

func TestBurstMask(t *testing.T) {
	b := Burst{Bit: 3, Width: 2}
	if b.Mask32() != 0b11000 {
		t.Errorf("mask = %#b", b.Mask32())
	}
	// wraps around the word
	b = Burst{Bit: 31, Width: 2}
	if b.Mask32() != (1<<31)|1 {
		t.Errorf("wrap mask = %#x", b.Mask32())
	}
}

// TestBurstPopcount: a width-w burst always flips exactly min(w,32) bits.
func TestBurstPopcount(t *testing.T) {
	f := func(bit, width uint8) bool {
		w := width % 33
		b := Burst{Bit: bit, Width: w}
		want := int(w)
		if want > 32 {
			want = 32
		}
		return bits.OnesCount32(b.Mask32()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumOutcomes(t *testing.T) {
	if NumOutcomes != 4 {
		t.Errorf("the paper defines 4 fault effect classes, NumOutcomes = %d", NumOutcomes)
	}
}
