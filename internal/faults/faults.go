// Package faults defines the fault model shared by the microarchitecture-
// and software-level injectors: single-bit (and burst multi-bit) flips and
// the four outcome classes used throughout the paper (§II-A).
package faults

import "fmt"

// Outcome classifies the effect of an injected fault on program output.
type Outcome uint8

// Fault effect classes, in the paper's order.
const (
	// Masked: the fault does not affect the system or the application in
	// any observable way.
	Masked Outcome = iota
	// SDC: the application completes but its output differs from the
	// fault-free run.
	SDC
	// Timeout: the application does not finish within the budget.
	Timeout
	// DUE: execution does not complete (crash, illegal access, detected
	// unrecoverable error).
	DUE
	NumOutcomes
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case Timeout:
		return "Timeout"
	case DUE:
		return "DUE"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Result is one injection experiment's outcome plus the control-path proxy
// used by Figure 11: a masked run whose cycle count deviates from the golden
// run is "control-path affected".
type Result struct {
	Outcome      Outcome
	CtrlAffected bool
	// Detail carries the DUE reason or other diagnostics.
	Detail string
}

// BitFlip describes a single-bit fault at an abstract bit offset within some
// injection target space.
type BitFlip struct {
	Bit uint8
}

// Burst describes an adjacent multi-bit upset: Width consecutive bits
// starting at Bit are flipped (the multi-bit extension discussed in §II-A).
type Burst struct {
	Bit   uint8
	Width uint8
}

// Mask32 returns the 32-bit XOR mask flipping Width bits starting at Bit,
// wrapping within the word.
func (b Burst) Mask32() uint32 {
	var m uint32
	for i := uint8(0); i < b.Width; i++ {
		m |= 1 << ((b.Bit + i) % 32)
	}
	return m
}
