// Package metrics implements the AVF/SVF algebra of §II of the paper:
// failure rates, derating factors, per-structure AVFs, the size-weighted
// full-chip AVF, cycle-weighted application AVF and instruction-weighted
// application SVF, all decomposed into the SDC/Timeout/DUE classes that the
// figures stack.
package metrics

import (
	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
)

// Breakdown is a vulnerability factor decomposed by fault-effect class.
// Total = SDC + Timeout + DUE.
type Breakdown struct {
	SDC     float64
	Timeout float64
	DUE     float64
}

// Total returns the summed vulnerability factor.
func (b Breakdown) Total() float64 { return b.SDC + b.Timeout + b.DUE }

// Scale multiplies all classes by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{SDC: b.SDC * f, Timeout: b.Timeout * f, DUE: b.DUE * f}
}

// Add returns the class-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{SDC: b.SDC + o.SDC, Timeout: b.Timeout + o.Timeout, DUE: b.DUE + o.DUE}
}

// FromTally extracts the class percentages of a campaign (the failure-rate
// decomposition FR = Pct(SDC)+Pct(Timeout)+Pct(DUE)).
func FromTally(t campaign.Tally) Breakdown {
	return Breakdown{
		SDC:     t.Pct(faults.SDC),
		Timeout: t.Pct(faults.Timeout),
		DUE:     t.Pct(faults.DUE),
	}
}

// StructAVF is the cross-layer AVF of one hardware structure:
// AVF(h) = FR(h) × DF(h), per class (§II-B).
type StructAVF struct {
	Structure gpu.Structure
	DF        float64
	AVF       Breakdown
}

// NewStructAVF applies the derating factor to a campaign tally.
func NewStructAVF(s gpu.Structure, t campaign.Tally, df float64) StructAVF {
	return StructAVF{Structure: s, DF: df, AVF: FromTally(t).Scale(df)}
}

// ChipAVF consolidates per-structure AVFs into the full-chip AVF by
// weighting each structure by its bit count:
// AVF(all) = Σ AVF(h_i) × size(h_i)/Σ size(h_j).
func ChipAVF(cfg gpu.Config, structs []StructAVF) Breakdown {
	var total Breakdown
	totalBits := float64(cfg.TotalBits())
	for _, s := range structs {
		w := float64(cfg.StructBits(s.Structure)) / totalBits
		total = total.Add(s.AVF.Scale(w))
	}
	return total
}

// SubsetAVF consolidates a subset of structures (e.g. AVF-Cache over
// L1D+L1T+L2), weighting by bit counts within the subset.
func SubsetAVF(cfg gpu.Config, structs []StructAVF) Breakdown {
	var bits int64
	for _, s := range structs {
		bits += cfg.StructBits(s.Structure)
	}
	var total Breakdown
	for _, s := range structs {
		w := float64(cfg.StructBits(s.Structure)) / float64(bits)
		total = total.Add(s.AVF.Scale(w))
	}
	return total
}

// Weighted combines per-kernel vulnerability factors into an application
// factor with the given weights (cycles for AVF, §II-B; dynamic instruction
// counts for SVF, §II-C).
func Weighted(parts []Breakdown, weights []float64) Breakdown {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	var total Breakdown
	if sum == 0 {
		return total
	}
	for i, p := range parts {
		total = total.Add(p.Scale(weights[i] / sum))
	}
	return total
}
