package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"gpurel/internal/campaign"
	"gpurel/internal/faults"
	"gpurel/internal/gpu"
)

func tally(sdc, timeout, due, masked int) campaign.Tally {
	var t campaign.Tally
	for i := 0; i < sdc; i++ {
		t.Add(faults.Result{Outcome: faults.SDC})
	}
	for i := 0; i < timeout; i++ {
		t.Add(faults.Result{Outcome: faults.Timeout})
	}
	for i := 0; i < due; i++ {
		t.Add(faults.Result{Outcome: faults.DUE})
	}
	for i := 0; i < masked; i++ {
		t.Add(faults.Result{Outcome: faults.Masked})
	}
	return t
}

func TestFromTally(t *testing.T) {
	b := FromTally(tally(10, 5, 5, 80))
	if b.SDC != 0.10 || b.Timeout != 0.05 || b.DUE != 0.05 {
		t.Errorf("breakdown = %+v", b)
	}
	if math.Abs(b.Total()-0.20) > 1e-12 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestStructAVFApplyingDF(t *testing.T) {
	s := NewStructAVF(gpu.RF, tally(50, 0, 0, 50), 0.3)
	if math.Abs(s.AVF.SDC-0.15) > 1e-12 {
		t.Errorf("AVF.SDC = %v, want FR×DF = 0.15", s.AVF.SDC)
	}
}

// TestChipAVFWeights: the chip AVF of uniform per-structure AVFs equals that
// AVF (weights sum to 1).
func TestChipAVFWeights(t *testing.T) {
	cfg := gpu.Volta()
	var structs []StructAVF
	for _, st := range gpu.Structures {
		structs = append(structs, StructAVF{Structure: st, AVF: Breakdown{SDC: 0.02}})
	}
	chip := ChipAVF(cfg, structs)
	if math.Abs(chip.SDC-0.02) > 1e-12 {
		t.Errorf("uniform chip AVF = %v, want 0.02", chip.SDC)
	}
}

// TestChipAVFDominatedByRF: with AVF only in the register file, the chip AVF
// equals AVF_RF × (RF bits / total bits) — and the RF share must dominate
// the Volta-like configuration, as the paper's §VII notes.
func TestChipAVFDominatedByRF(t *testing.T) {
	cfg := gpu.Volta()
	structs := []StructAVF{{Structure: gpu.RF, AVF: Breakdown{SDC: 0.5}}}
	for _, st := range gpu.Structures[1:] {
		structs = append(structs, StructAVF{Structure: st})
	}
	chip := ChipAVF(cfg, structs)
	share := float64(cfg.StructBits(gpu.RF)) / float64(cfg.TotalBits())
	if math.Abs(chip.SDC-0.5*share) > 1e-12 {
		t.Errorf("chip AVF = %v, want %v", chip.SDC, 0.5*share)
	}
	if share < 0.5 {
		t.Errorf("RF must dominate the chip bit count (share = %v)", share)
	}
}

func TestSubsetAVF(t *testing.T) {
	cfg := gpu.Volta()
	structs := []StructAVF{
		{Structure: gpu.L1D, AVF: Breakdown{DUE: 0.1}},
		{Structure: gpu.L1T, AVF: Breakdown{DUE: 0.1}},
		{Structure: gpu.L2, AVF: Breakdown{DUE: 0.1}},
	}
	sub := SubsetAVF(cfg, structs)
	if math.Abs(sub.DUE-0.1) > 1e-12 {
		t.Errorf("uniform subset AVF = %v", sub.DUE)
	}
}

func TestWeighted(t *testing.T) {
	parts := []Breakdown{{SDC: 0.4}, {SDC: 0.8}}
	w := Weighted(parts, []float64{3, 1})
	if math.Abs(w.SDC-0.5) > 1e-12 {
		t.Errorf("weighted = %v, want 0.5", w.SDC)
	}
	if z := Weighted(parts, []float64{0, 0}); z.Total() != 0 {
		t.Error("zero weights must yield zero")
	}
}

// TestBreakdownAlgebra: Scale and Add distribute correctly.
func TestBreakdownAlgebra(t *testing.T) {
	f := func(a, b, c, d, e, g float64, k float64) bool {
		clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
		x := Breakdown{SDC: clamp(a), Timeout: clamp(b), DUE: clamp(c)}
		y := Breakdown{SDC: clamp(d), Timeout: clamp(e), DUE: clamp(g)}
		kk := clamp(k)
		s := x.Add(y).Scale(kk)
		want := x.Scale(kk).Add(y.Scale(kk))
		return math.Abs(s.SDC-want.SDC) < 1e-9 &&
			math.Abs(s.Timeout-want.Timeout) < 1e-9 &&
			math.Abs(s.DUE-want.DUE) < 1e-9 &&
			s.Total() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAVFInRange: for any tally and DF in [0,1], AVF stays in [0,1].
func TestAVFInRange(t *testing.T) {
	f := func(sdc, timeout, due, masked uint8, df float64) bool {
		d := math.Mod(math.Abs(df), 1)
		tl := tally(int(sdc%50), int(timeout%50), int(due%50), int(masked%50)+1)
		s := NewStructAVF(gpu.L2, tl, d)
		tot := s.AVF.Total()
		return tot >= 0 && tot <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
