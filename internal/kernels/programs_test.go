package kernels

import (
	"strings"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/sim"
)

// TestAllProgramsValidate walks every launch of every app and validates the
// kernel programs, launch geometry and parameter/pointer metadata.
func TestAllProgramsValidate(t *testing.T) {
	cfg := gpu.Volta()
	for _, app := range All() {
		job := app.Build()
		if len(job.Outputs) == 0 {
			t.Errorf("%s: no output buffers", app.Name)
		}
		seen := map[string]bool{}
		for i, st := range job.Steps {
			if st.Launch == nil {
				if st.Host == nil {
					t.Errorf("%s step %d: empty step", app.Name, i)
				}
				continue
			}
			l := st.Launch
			seen[l.Name()] = true
			if err := l.Kernel.Validate(); err != nil {
				t.Errorf("%s %s: %v", app.Name, l.Name(), err)
			}
			if l.ThreadsPerCTA() == 0 || l.ThreadsPerCTA() > cfg.MaxThreadsPerSM {
				t.Errorf("%s %s: CTA size %d", app.Name, l.Name(), l.ThreadsPerCTA())
			}
			if l.ThreadsPerCTA()*l.Kernel.NumRegs > cfg.RFRegsPerSM {
				t.Errorf("%s %s: CTA needs %d registers (> %d per SM)",
					app.Name, l.Name(), l.ThreadsPerCTA()*l.Kernel.NumRegs, cfg.RFRegsPerSM)
			}
			if l.SmemBytes > cfg.SmemPerSM {
				t.Errorf("%s %s: %d B shared memory (> %d per SM)",
					app.Name, l.Name(), l.SmemBytes, cfg.SmemPerSM)
			}
			if len(l.ParamIsPtr) != len(l.Params) {
				t.Errorf("%s %s: ParamIsPtr length %d != Params length %d (TMR rebasing breaks)",
					app.Name, l.Name(), len(l.ParamIsPtr), len(l.Params))
			}
			// every pointer parameter must reference a valid allocation
			for pi, isPtr := range l.ParamIsPtr {
				if isPtr && !job.Mem.Valid(l.Params[pi], 4) {
					t.Errorf("%s %s: pointer param %d (%#x) is not a valid device address",
						app.Name, l.Name(), pi, l.Params[pi])
				}
			}
		}
		for _, k := range app.Kernels {
			if !seen[k] {
				t.Errorf("%s: declared kernel %s never launched", app.Name, k)
			}
		}
		for k := range seen {
			found := false
			for _, want := range app.Kernels {
				if k == want {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: launch uses undeclared kernel name %s", app.Name, k)
			}
		}
	}
}

// TestBuildDeterminism: building an app twice yields identical device
// images and programs — golden-run classification depends on this.
func TestBuildDeterminism(t *testing.T) {
	for _, app := range All() {
		a := app.Build()
		b := app.Build()
		if string(a.Mem.Raw()) != string(b.Mem.Raw()) {
			t.Errorf("%s: device images differ between builds", app.Name)
		}
		if len(a.Steps) != len(b.Steps) {
			t.Errorf("%s: schedules differ", app.Name)
		}
	}
}

// TestDisassemblyRoundtrip: every kernel disassembles without panicking and
// contains its terminating EXIT.
func TestDisassemblyRoundtrip(t *testing.T) {
	for _, app := range All() {
		job := app.Build()
		for _, st := range job.Steps {
			if st.Launch == nil {
				continue
			}
			d := st.Launch.Kernel.Disassemble()
			if !strings.Contains(d, "EXIT") {
				t.Errorf("%s %s: disassembly has no EXIT", app.Name, st.Launch.Name())
			}
		}
	}
}

// TestTexturePathUsed: K-Means K2 must actually exercise the L1T cache —
// it stands in for the CUDA version's texture binding.
func TestTexturePathUsed(t *testing.T) {
	app, err := ByName("K-Means")
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Run(app.Build(), gpu.Volta(), sim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	ks := r.PerKernel["K2"]
	if ks == nil || ks.L1T.Accesses == 0 {
		t.Error("K-Means K2 performed no texture accesses")
	}
}

// TestSmemAppsUseSmem: kernels ported with shared-memory tiles must issue
// shared-memory instructions.
func TestSmemAppsUseSmem(t *testing.T) {
	expect := map[string][]string{
		"SCP":      {"K1"},
		"SRADv1":   {"K3"},
		"SRADv2":   {"K1", "K2"},
		"HotSpot":  {"K1"},
		"LUD":      {"K1", "K2", "K3"},
		"NW":       {"K1", "K2"},
		"BackProp": {"K1"},
	}
	for name, ks := range expect {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.Run(app.Build(), gpu.Volta(), sim.Options{})
		if r.Err != nil {
			t.Fatalf("%s: %v", name, r.Err)
		}
		for _, k := range ks {
			st := r.PerKernel[k]
			if st == nil || st.SmemInstrs == 0 {
				t.Errorf("%s %s: no shared-memory instructions", name, k)
			}
		}
	}
}

// TestPerKernelCycleWeights: every kernel must own a nonzero share of its
// app's cycles (the AVF weighting of §II-B would silently drop it).
func TestPerKernelCycleWeights(t *testing.T) {
	for _, app := range All() {
		r := sim.Run(app.Build(), gpu.Volta(), sim.Options{})
		if r.Err != nil {
			t.Fatalf("%s: %v", app.Name, r.Err)
		}
		byKernel := map[string]int64{}
		for _, sp := range r.Spans {
			byKernel[sp.Kernel] += sp.End - sp.Start
		}
		for _, k := range app.Kernels {
			if byKernel[k] <= 0 {
				t.Errorf("%s %s: zero cycle weight", app.Name, k)
			}
		}
	}
}

// TestOutputsWithinAllocations: declared output buffers must be fully
// covered by device allocations.
func TestOutputsWithinAllocations(t *testing.T) {
	for _, app := range All() {
		job := app.Build()
		for _, o := range job.Outputs {
			if !job.Mem.Valid(o.Addr, 4) || !job.Mem.Valid(o.Addr+o.Size-4, 4) {
				t.Errorf("%s: output %q [%#x,+%d) escapes its allocation",
					app.Name, o.Name, o.Addr, o.Size)
			}
		}
	}
}

// TestMUFUCoverage: SRADv1 must exercise the special function unit (exp/log
// via EX2/LG2, reciprocal for the divisions).
func TestMUFUCoverage(t *testing.T) {
	app, err := ByName("SRADv1")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	mufus := map[isa.MufuOp]bool{}
	for _, st := range job.Steps {
		if st.Launch == nil {
			continue
		}
		for _, ins := range st.Launch.Kernel.Code {
			if ins.Op == isa.OpMUFU {
				mufus[ins.Mufu] = true
			}
		}
	}
	for _, want := range []isa.MufuOp{isa.MufuRCP, isa.MufuEX2, isa.MufuLG2} {
		if !mufus[want] {
			t.Errorf("SRADv1 missing MUFU.%v", want)
		}
	}
}

// TestHostStepsRebase: apps with host steps must honour the TMR offset
// parameter — calling the step with a bogus offset must not touch copy-0
// data. We verify by checking host steps only peek/poke within the
// replicated region base+off.
func TestHostStepsRebase(t *testing.T) {
	// SRADv1's q0sqr host step is the canonical case: write at dQ0+off.
	app, err := ByName("SRADv1")
	if err != nil {
		t.Fatal(err)
	}
	job := app.Build()
	var host func(*device.Memory, uint32) int
	for _, st := range job.Steps {
		if st.Host != nil {
			host = st.Host
			break
		}
	}
	if host == nil {
		t.Fatal("SRADv1 must have a host step")
	}
	m := job.Mem.Clone()
	before := append([]byte(nil), m.Raw()...)
	// run the host step against offset 0 and compare with a fresh clone to
	// find which bytes it writes; then verify offset shifts those bytes
	host(m, 0)
	var touched []int
	for i := range before {
		if m.Raw()[i] != before[i] {
			touched = append(touched, i)
		}
	}
	if len(touched) == 0 {
		t.Skip("host step wrote nothing measurable")
	}
	m2 := job.Mem.Clone()
	const off = 0 // offsets beyond the image would be invalid here; the TMR
	// integration test in internal/harden covers real rebasing
	host(m2, off)
	_ = m2
}
