package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// BackProp is the Rodinia backprop benchmark: K1 bpnn_layerforward_CUDA
// computes per-block partial sums of input×weight products with an in-block
// tree reduction; the host squashes the sums through a sigmoid (as the
// Rodinia host code does); K2 bpnn_adjust_weights_cuda applies the
// delta-rule weight update with momentum.
func BackProp() App {
	const (
		in  = 64
		hid = 16
		blk = 16
		eta = float32(0.3)
		mom = float32(0.3)
	)
	nBlocks := in / blk
	return App{
		Name:    "BackProp",
		Kernels: []string{"K1", "K2"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			input, w, oldw, delta := backpropInput(in, hid)
			dIn := m.Alloc("input", 4*(in+1))
			dW := m.Alloc("weights", 4*(in+1)*(hid+1))
			dOldW := m.Alloc("oldWeights", 4*(in+1)*(hid+1))
			dDelta := m.Alloc("delta", 4*(hid+1))
			dPartial := m.Alloc("partialSum", 4*nBlocks*hid)
			dHidden := m.Alloc("hidden", 4*(hid+1))
			m.WriteF32s(dIn, input)
			m.WriteF32s(dW, w)
			m.WriteF32s(dOldW, oldw)
			m.WriteF32s(dDelta, delta)

			k1 := backpropForward(in, hid, blk)
			k2 := backpropAdjust(in, hid, blk, eta, mom)

			hostSquash := func(mm *device.Memory, off uint32) int {
				for j := 0; j < hid; j++ {
					var sum float32
					for bb := 0; bb < nBlocks; bb++ {
						sum += mm.PeekF32(dPartial + off + uint32(4*(bb*hid+j)))
					}
					sum += mm.PeekF32(dW + off + uint32(4*(j+1))) // bias row
					mm.PokeF32(dHidden+off+uint32(4*(j+1)), squash32(sum))
				}
				return -1
			}

			return &device.Job{
				Name: "BackProp",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch2D(k1, "K1", 1, nBlocks, blk, blk, 4*(blk+blk*blk),
						ptr(dIn), ptr(dW), ptr(dPartial), val(in), val(hid))},
					{Host: hostSquash},
					{Launch: launch2D(k2, "K2", 1, nBlocks, blk, blk, 0,
						ptr(dDelta), val(hid), ptr(dIn), val(in), ptr(dW), ptr(dOldW))},
				},
				Outputs: []device.Output{
					{Name: "weights", Addr: dW, Size: 4 * (in + 1) * (hid + 1)},
					{Name: "hidden", Addr: dHidden, Size: 4 * (hid + 1)},
				},
			}
		},
		Check: func(out []byte) error {
			wWant, hWant := backpropRef(in, hid, blk, eta, mom)
			var sc sliceCheck
			sc.floats(out, wWant, 1e-3)
			sc.floats(out, hWant, 1e-3)
			return sc.err
		},
	}
}

func squash32(x float32) float32 {
	// 1/(1+exp(-x)) mirrored with the ISA float ops
	return fdiv32(1, 1+exp32(-x))
}

func backpropInput(in, hid int) (input, w, oldw, delta []float32) {
	input = randFloats(1001, in+1, 0, 1)
	input[0] = 1 // bias unit
	w = randFloats(1002, (in+1)*(hid+1), -0.5, 0.5)
	oldw = make([]float32, (in+1)*(hid+1))
	delta = randFloats(1003, hid+1, -0.2, 0.2)
	return
}

// backpropRef mirrors both kernels and the host squash step.
func backpropRef(in, hid, blk int, eta, mom float32) (wOut, hidden []float32) {
	nBlocks := in / blk
	input, w, oldw, delta := backpropInput(in, hid)

	// K1: per-block tile product + tree reduction over ty
	partial := make([]float32, nBlocks*hid)
	for by := 0; by < nBlocks; by++ {
		var wm [16][16]float32
		for ty := 0; ty < blk; ty++ {
			for tx := 0; tx < blk; tx++ {
				idx := (hid+1)*(by*blk+ty+1) + tx + 1
				wm[ty][tx] = w[idx] * input[by*blk+ty+1]
			}
		}
		for pow := 2; pow <= blk; pow *= 2 {
			for ty := 0; ty < blk; ty++ {
				if ty%pow == 0 {
					for tx := 0; tx < blk; tx++ {
						wm[ty][tx] += wm[ty+pow/2][tx]
					}
				}
			}
		}
		for tx := 0; tx < blk; tx++ {
			partial[by*hid+tx] = wm[0][tx]
		}
	}
	hidden = make([]float32, hid+1)
	for j := 0; j < hid; j++ {
		var sum float32
		for bb := 0; bb < nBlocks; bb++ {
			sum += partial[bb*hid+j]
		}
		sum += w[j+1]
		hidden[j+1] = squash32(sum)
	}

	// K2: weight adjustment
	for by := 0; by < nBlocks; by++ {
		for ty := 0; ty < blk; ty++ {
			for tx := 0; tx < blk; tx++ {
				idx := (hid+1)*(by*blk+ty+1) + tx + 1
				dv := fma32(eta*delta[tx+1], input[by*blk+ty+1], mom*oldw[idx])
				w[idx] += dv
				oldw[idx] = dv
				if ty == 0 && by == 0 {
					dv0 := fma32(eta*delta[tx+1], 1, mom*oldw[tx+1])
					w[tx+1] += dv0
					oldw[tx+1] = dv0
				}
			}
		}
	}
	return w, hidden
}

// backpropForward is bpnn_layerforward_CUDA.
// Params: input weights partialSum in hid.
func backpropForward(in, hid, blk int) *isa.Program {
	b := kasm.New("bpnn_layerforward")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	by := b.S2R(isa.SRCtaIDY)

	// shared: input_node[blk] at 0, weight_matrix[blk][blk] after
	wmOff := int32(4 * blk)
	smIn := b.Shl(ty, 2)
	smWm := b.IAddI(b.Shl(b.IMad(ty, b.MovI(int32(blk)), tx), 2), wmOff)

	indexIn := b.IAddI(b.IMad(by, b.MovI(int32(blk)), ty), 1)
	hid1 := b.MovI(int32(hid + 1))
	index := b.IAddI(b.IAdd(b.IMul(hid1, indexIn), tx), 1)

	p := b.P()
	b.ISetpI(p, isa.CmpEQ, tx, 0)
	b.If(p, false, func() {
		b.Sts(smIn, 0, b.Ldg(b.IScAdd(indexIn, b.Param(0), 2), 0))
	})
	b.Barrier()
	b.Sts(smWm, 0, b.Ldg(b.IScAdd(index, b.Param(1), 2), 0))
	b.Barrier()
	b.Sts(smWm, 0, b.FMul(b.Lds(smWm, 0), b.Lds(smIn, 0)))
	b.Barrier()

	// tree reduction over ty: for pow=2,4,..,blk: if ty%pow==0: wm[ty][tx] += wm[ty+pow/2][tx]
	pow := b.MovI(2)
	q := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(q, isa.CmpLE, pow, int32(blk))
		return q, false
	}, func() {
		r := b.P()
		mask := b.ISubI(pow, 1)
		b.ISetpI(r, isa.CmpEQ, b.And(ty, mask), 0)
		b.If(r, false, func() {
			half := b.Shr(pow, 1)
			other := b.IAddI(b.Shl(b.IMad(b.IAdd(ty, half), b.MovI(int32(blk)), tx), 2), wmOff)
			b.Sts(smWm, 0, b.FAdd(b.Lds(smWm, 0), b.Lds(other, 0)))
		})
		b.FreeP(r)
		b.Barrier()
		b.Emit(isa.Instr{Op: isa.OpSHL, Dst: pow, SrcA: pow, BImm: true, Imm: 1})
	})
	b.FreeP(q)

	b.ISetpI(p, isa.CmpEQ, ty, 0)
	b.If(p, false, func() {
		out := b.IMad(by, b.Param(4), tx)
		b.Stg(b.IScAdd(out, b.Param(2), 2), 0, b.Lds(smWm, 0))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// backpropAdjust is bpnn_adjust_weights_cuda.
// Params: delta hid ly in w oldw.
func backpropAdjust(in, hid, blk int, eta, mom float32) *isa.Program {
	b := kasm.New("bpnn_adjust_weights")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	by := b.S2R(isa.SRCtaIDY)

	indexY := b.IAddI(b.IMad(by, b.MovI(int32(blk)), ty), 1)
	indexX := b.IAddI(tx, 1)
	hid1 := b.MovI(int32(hid + 1))
	index := b.IAdd(b.IMul(hid1, indexY), indexX)

	etaR := b.MovF(eta)
	momR := b.MovF(mom)
	dl := b.Ldg(b.IScAdd(indexX, b.Param(0), 2), 0)
	ly := b.Ldg(b.IScAdd(indexY, b.Param(2), 2), 0)
	oldAddr := b.IScAdd(index, b.Param(5), 2)
	wAddr := b.IScAdd(index, b.Param(4), 2)
	ow := b.Ldg(oldAddr, 0)
	dv := b.FFma(b.FMul(etaR, dl), ly, b.FMul(momR, ow))
	b.Stg(wAddr, 0, b.FAdd(b.Ldg(wAddr, 0), dv))
	b.Stg(oldAddr, 0, dv)

	// bias row (ly[0] = 1), done by the by==0, ty==0 threads
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, ty, 0)
	b.ISetpIAnd(p, isa.CmpEQ, by, 0, p, false)
	b.If(p, false, func() {
		oldAddr0 := b.IScAdd(indexX, b.Param(5), 2)
		wAddr0 := b.IScAdd(indexX, b.Param(4), 2)
		ow0 := b.Ldg(oldAddr0, 0)
		dv0 := b.FFma(b.FMul(etaR, dl), b.MovF(1), b.FMul(momR, ow0))
		b.Stg(wAddr0, 0, b.FAdd(b.Ldg(wAddr0, 0), dv0))
		b.Stg(oldAddr0, 0, dv0)
	})
	b.FreeP(p)
	return b.MustBuild()
}
