package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// VA is the CUDA SDK vectorAdd benchmark: C[i] = A[i] + B[i].
func VA() App { return VAWithSize(2048) }

// VAWithSize builds vectorAdd over n elements (n must be a multiple of 256).
// Sized variants support the input-size resilience study (SUGAR, the
// paper's ref. [48]).
func VAWithSize(n int) App {
	const block = 256
	grid := n / block
	return App{
		Name:    "VA",
		Kernels: []string{"K1"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			a := randFloats(101, n, 0, 100)
			bv := randFloats(102, n, 0, 100)
			da := m.Alloc("A", 4*n)
			db := m.Alloc("B", 4*n)
			dc := m.Alloc("C", 4*n)
			m.WriteF32s(da, a)
			m.WriteF32s(db, bv)

			prog := vaKernel()
			return &device.Job{
				Name: "VA",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch1D(prog, "K1", grid, block, 0,
						ptr(da), ptr(db), ptr(dc), val(int32(n)))},
				},
				Outputs: []device.Output{{Name: "C", Addr: dc, Size: uint32(4 * n)}},
			}
		},
		Check: func(out []byte) error {
			a := randFloats(101, n, 0, 100)
			bv := randFloats(102, n, 0, 100)
			want := make([]float32, n)
			for i := range want {
				want[i] = a[i] + bv[i]
			}
			return checkFloats(out, want, 1e-6)
		},
	}
}

// vaKernel builds:
//
//	i = ctaid.x*ntid.x + tid.x
//	if i < n { C[i] = A[i] + B[i] }
func vaKernel() *isa.Program {
	b := kasm.New("vectorAdd")
	tid := b.S2R(isa.SRTidX)
	ctaid := b.S2R(isa.SRCtaIDX)
	ntid := b.S2R(isa.SRNTidX)
	i := b.IMad(ctaid, ntid, tid)
	n := b.Param(3)
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, n)
	b.If(p, false, func() {
		aBase := b.Param(0)
		bBase := b.Param(1)
		cBase := b.Param(2)
		aAddr := b.IScAdd(i, aBase, 2)
		bAddr := b.IScAdd(i, bBase, 2)
		cAddr := b.IScAdd(i, cBase, 2)
		sum := b.FAdd(b.Ldg(aAddr, 0), b.Ldg(bAddr, 0))
		b.Stg(cAddr, 0, sum)
	})
	b.FreeP(p)
	return b.MustBuild()
}
