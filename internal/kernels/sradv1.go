package kernels

import (
	"math"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// SRADv1 is the Rodinia srad_v1 benchmark: speckle-reducing anisotropic
// diffusion on a rows×cols image, with the original six kernels —
// K1 extract, K2 prepare, K3 reduce (launched twice), K4 srad, K5 srad2,
// K6 compress. Host steps compute q0sqr between K3 and K4, exactly as the
// Rodinia host code does between kernel launches.
func SRADv1() App {
	const (
		rows   = 32
		cols   = 32
		ne     = rows * cols
		block  = 256
		grid   = ne / block
		lambda = float32(0.5)
	)
	return App{
		Name:    "SRADv1",
		Kernels: []string{"K1", "K2", "K3", "K4", "K5", "K6"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			img := randFloats(301, ne, 0, 255)
			dI := m.Alloc("I", 4*ne)
			dSums := m.Alloc("sums", 4*ne)
			dSums2 := m.Alloc("sums2", 4*ne)
			dPsum := m.Alloc("psum", 4*grid)
			dPsum2 := m.Alloc("psum2", 4*grid)
			dTot := m.Alloc("tot", 4)
			dTot2 := m.Alloc("tot2", 4)
			dQ0 := m.Alloc("q0sqr", 4)
			dC := m.Alloc("c", 4*ne)
			dDN := m.Alloc("dN", 4*ne)
			dDS := m.Alloc("dS", 4*ne)
			dDW := m.Alloc("dW", 4*ne)
			dDE := m.Alloc("dE", 4*ne)
			dIN := m.Alloc("iN", 4*rows)
			dIS := m.Alloc("iS", 4*rows)
			dJW := m.Alloc("jW", 4*cols)
			dJE := m.Alloc("jE", 4*cols)
			m.WriteF32s(dI, img)
			iN, iS, jW, jE := sradBounds(rows, cols)
			m.WriteI32s(dIN, iN)
			m.WriteI32s(dIS, iS)
			m.WriteI32s(dJW, jW)
			m.WriteI32s(dJE, jE)

			extract := sradExtract(ne)
			prepare := sradPrepare(ne)
			reduce := sradReduce(block)
			srad := sradMain(rows, ne)
			srad2 := sradUpdate(rows, ne, lambda)
			compress := sradCompress(ne)

			hostQ0 := func(mm *device.Memory, off uint32) int {
				total := mm.PeekF32(dTot + off)
				total2 := mm.PeekF32(dTot2 + off)
				meanROI := total / float32(ne)
				varROI := total2/float32(ne) - meanROI*meanROI
				q0 := varROI / (meanROI * meanROI)
				mm.PokeF32(dQ0+off, q0)
				return -1
			}

			return &device.Job{
				Name: "SRADv1",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch1D(extract, "K1", grid, block, 0, ptr(dI), val(ne))},
					{Launch: launch1D(prepare, "K2", grid, block, 0,
						ptr(dI), ptr(dSums), ptr(dSums2), val(ne))},
					{Launch: launch1D(reduce, "K3", grid, block, 8*block,
						ptr(dSums), ptr(dSums2), ptr(dPsum), ptr(dPsum2), val(ne))},
					{Launch: launch1D(reduce, "K3", 1, block, 8*block,
						ptr(dPsum), ptr(dPsum2), ptr(dTot), ptr(dTot2), val(grid))},
					{Host: hostQ0},
					{Launch: launch1D(srad, "K4", grid, block, 0,
						ptr(dI), ptr(dC), ptr(dDN), ptr(dDS), ptr(dDW), ptr(dDE),
						ptr(dIN), ptr(dIS), ptr(dJW), ptr(dJE), ptr(dQ0), val(ne))},
					{Launch: launch1D(srad2, "K5", grid, block, 0,
						ptr(dI), ptr(dC), ptr(dDN), ptr(dDS), ptr(dDW), ptr(dDE),
						ptr(dIS), ptr(dJE), val(ne))},
					{Launch: launch1D(compress, "K6", grid, block, 0, ptr(dI), val(ne))},
				},
				Outputs: []device.Output{{Name: "I", Addr: dI, Size: 4 * ne}},
			}
		},
		Check: func(out []byte) error {
			want := sradV1Ref(rows, cols, lambda)
			return checkFloats(out, want, 1e-3)
		},
	}
}

// sradBounds builds the Rodinia boundary index arrays.
func sradBounds(rows, cols int) (iN, iS, jW, jE []int32) {
	iN = make([]int32, rows)
	iS = make([]int32, rows)
	jW = make([]int32, cols)
	jE = make([]int32, cols)
	for i := 0; i < rows; i++ {
		iN[i], iS[i] = int32(i-1), int32(i+1)
	}
	for j := 0; j < cols; j++ {
		jW[j], jE[j] = int32(j-1), int32(j+1)
	}
	iN[0], iS[rows-1], jW[0], jE[cols-1] = 0, int32(rows-1), 0, int32(cols-1)
	return
}

// float32 op mirrors of the ISA semantics, used by the reference.
func rcp32(x float32) float32 { return float32(1 / float64(x)) }
func ex232(x float32) float32 { return float32(math.Exp2(float64(x))) }
func lg232(x float32) float32 { return float32(math.Log2(float64(x))) }
func fdiv32(a, b float32) float32 {
	return a * rcp32(b)
}
func exp32(x float32) float32 { return ex232(x * float32(math.Log2E)) }
func log32(x float32) float32 { return lg232(x) * float32(math.Ln2) }
func fma32(a, b, c float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(c)))
}

// sradV1Ref mirrors the kernels step for step in float32.
func sradV1Ref(rows, cols int, lambda float32) []float32 {
	ne := rows * cols
	img := randFloats(301, ne, 0, 255)
	iN, iS, jW, jE := sradBounds(rows, cols)

	I := make([]float32, ne)
	for i := range I {
		I[i] = exp32(fdiv32(img[i], 255))
	}
	// prepare + reduce (same tree order as the GPU)
	sums := make([]float32, ne)
	sums2 := make([]float32, ne)
	for i := range I {
		sums[i] = I[i]
		sums2[i] = I[i] * I[i]
	}
	reduceRef := func(src []float32, n, block int) []float32 {
		blocks := (n + block - 1) / block
		out := make([]float32, blocks)
		for b := 0; b < blocks; b++ {
			buf := make([]float32, block)
			for t := 0; t < block; t++ {
				if b*block+t < n {
					buf[t] = src[b*block+t]
				}
			}
			for s := block / 2; s > 0; s /= 2 {
				for t := 0; t < s; t++ {
					buf[t] += buf[t+s]
				}
			}
			out[b] = buf[0]
		}
		return out
	}
	const block = 256
	p1 := reduceRef(sums, ne, block)
	p2 := reduceRef(sums2, ne, block)
	total := reduceRef(p1, len(p1), block)[0]
	total2 := reduceRef(p2, len(p2), block)[0]
	meanROI := total / float32(ne)
	varROI := total2/float32(ne) - meanROI*meanROI
	q0 := varROI / (meanROI * meanROI)

	c := make([]float32, ne)
	dN := make([]float32, ne)
	dS := make([]float32, ne)
	dW := make([]float32, ne)
	dE := make([]float32, ne)
	for i := 0; i < ne; i++ {
		row, col := i%rows, i/rows
		jc := I[i]
		dN[i] = I[int(iN[row])+rows*col] - jc
		dS[i] = I[int(iS[row])+rows*col] - jc
		dW[i] = I[row+rows*int(jW[col])] - jc
		dE[i] = I[row+rows*int(jE[col])] - jc
		g2 := fdiv32(dN[i]*dN[i]+dS[i]*dS[i]+dW[i]*dW[i]+dE[i]*dE[i], jc*jc)
		l := fdiv32(dN[i]+dS[i]+dW[i]+dE[i], jc)
		num := 0.5*g2 - (1.0/16.0)*(l*l)
		den := 1 + 0.25*l
		qsqr := fdiv32(num, den*den)
		den = fdiv32(qsqr-q0, q0*(1+q0))
		cv := fdiv32(1, 1+den)
		if cv < 0 {
			cv = 0
		} else if cv > 1 {
			cv = 1
		}
		c[i] = cv
	}
	out := make([]float32, ne)
	copy(out, I)
	for i := 0; i < ne; i++ {
		row, col := i%rows, i/rows
		cN := c[i]
		cS := c[int(iS[row])+rows*col]
		cW := c[i]
		cE := c[row+rows*int(jE[col])]
		d := cN*dN[i] + cS*dS[i] + cW*dW[i] + cE*dE[i]
		out[i] = fma32(0.25*lambda, d, out[i])
	}
	for i := range out {
		out[i] = log32(out[i]) * 255
	}
	return out
}

// sradExtract: I[i] = exp(I[i]/255).
func sradExtract(ne int) *isa.Program {
	b := kasm.New("srad.extract")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(1))
	b.If(p, false, func() {
		addr := b.IScAdd(i, b.Param(0), 2)
		v := b.Ldg(addr, 0)
		b.Stg(addr, 0, b.Expf(b.FDiv(v, b.MovF(255))))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// sradPrepare: sums[i] = I[i]; sums2[i] = I[i]².
func sradPrepare(ne int) *isa.Program {
	b := kasm.New("srad.prepare")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(3))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, v)
		b.Stg(b.IScAdd(i, b.Param(2), 2), 0, b.FMul(v, v))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// sradReduce reduces two arrays at once with a shared-memory tree; each CTA
// writes one partial per array. Params: src1 src2 dst1 dst2 n.
func sradReduce(block int) *isa.Program {
	b := kasm.New("srad.reduce")
	tid := b.S2R(isa.SRTidX)
	bid := b.S2R(isa.SRCtaIDX)
	i := b.IMad(bid, b.S2R(isa.SRNTidX), tid)
	n := b.Param(4)

	v1 := b.MovF(0)
	v2 := b.MovF(0)
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, n)
	b.If(p, false, func() {
		b.LdgTo(v1, b.IScAdd(i, b.Param(0), 2), 0)
		b.LdgTo(v2, b.IScAdd(i, b.Param(1), 2), 0)
	})
	sm1 := b.Shl(tid, 2)
	sm2 := b.IAddI(sm1, int32(4*block))
	b.Sts(sm1, 0, v1)
	b.Sts(sm2, 0, v2)
	b.Barrier()

	s := b.MovI(int32(block / 2))
	q := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(q, isa.CmpGT, s, 0)
		return q, false
	}, func() {
		r := b.P()
		b.ISetp(r, isa.CmpLT, tid, s)
		b.If(r, false, func() {
			o := b.Shl(b.IAdd(tid, s), 2)
			b.Sts(sm1, 0, b.FAdd(b.Lds(sm1, 0), b.Lds(o, 0)))
			b.Sts(sm2, 0, b.FAdd(b.Lds(sm2, 0), b.Lds(b.IAddI(o, int32(4*block)), 0)))
		})
		b.FreeP(r)
		b.Barrier()
		b.ShrTo(s, s, 1)
	})
	b.FreeP(q)

	b.ISetpI(p, isa.CmpEQ, tid, 0)
	b.If(p, false, func() {
		b.Stg(b.IScAdd(bid, b.Param(2), 2), 0, b.Lds(b.MovI(0), 0))
		b.Stg(b.IScAdd(bid, b.Param(3), 2), 0, b.Lds(b.MovI(int32(4*block)), 0))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// sradMain is the srad kernel (K4): diffusion coefficient computation.
// Params: I c dN dS dW dE iN iS jW jE q0 ne.
func sradMain(rows, ne int) *isa.Program {
	shift := int32(log2i(rows))
	b := kasm.New("srad.srad")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(11))
	b.If(p, false, func() {
		row := b.AndI(i, int32(rows-1))
		col := b.Shr(i, shift)

		iN := b.Ldg(b.IScAdd(row, b.Param(6), 2), 0)
		iS := b.Ldg(b.IScAdd(row, b.Param(7), 2), 0)
		jW := b.Ldg(b.IScAdd(col, b.Param(8), 2), 0)
		jE := b.Ldg(b.IScAdd(col, b.Param(9), 2), 0)

		iBase := b.Param(0)
		colRows := b.Shl(col, shift)
		jc := b.Ldg(b.IScAdd(i, iBase, 2), 0)
		idxN := b.IAdd(iN, colRows)
		idxS := b.IAdd(iS, colRows)
		idxW := b.IAdd(row, b.Shl(jW, shift))
		idxE := b.IAdd(row, b.Shl(jE, shift))
		dN := b.FSub(b.Ldg(b.IScAdd(idxN, iBase, 2), 0), jc)
		dS := b.FSub(b.Ldg(b.IScAdd(idxS, iBase, 2), 0), jc)
		dW := b.FSub(b.Ldg(b.IScAdd(idxW, iBase, 2), 0), jc)
		dE := b.FSub(b.Ldg(b.IScAdd(idxE, iBase, 2), 0), jc)

		sq := func(x isa.Reg) isa.Reg { return b.FMul(x, x) }
		g2 := b.FDiv(
			b.FAdd(b.FAdd(sq(dN), sq(dS)), b.FAdd(sq(dW), sq(dE))),
			sq(jc))
		l := b.FDiv(b.FAdd(b.FAdd(dN, dS), b.FAdd(dW, dE)), jc)
		num := b.FSub(b.FMul(b.MovF(0.5), g2), b.FMul(b.MovF(1.0/16.0), sq(l)))
		den := b.FAdd(b.MovF(1), b.FMul(b.MovF(0.25), l))
		qsqr := b.FDiv(num, sq(den))
		q0 := b.Ldg(b.Param(10), 0)
		den2 := b.FDiv(b.FSub(qsqr, q0), b.FMul(q0, b.FAdd(b.MovF(1), q0)))
		c := b.FDiv(b.MovF(1), b.FAdd(b.MovF(1), den2))
		c = b.FMax(b.FMin(c, b.MovF(1)), b.MovF(0))

		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, c)
		b.Stg(b.IScAdd(i, b.Param(2), 2), 0, dN)
		b.Stg(b.IScAdd(i, b.Param(3), 2), 0, dS)
		b.Stg(b.IScAdd(i, b.Param(4), 2), 0, dW)
		b.Stg(b.IScAdd(i, b.Param(5), 2), 0, dE)
	})
	b.FreeP(p)
	return b.MustBuild()
}

// sradUpdate is srad2 (K5): divergence and image update.
// Params: I c dN dS dW dE iS jE ne.
func sradUpdate(rows, ne int, lambda float32) *isa.Program {
	shift := int32(log2i(rows))
	b := kasm.New("srad.srad2")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(8))
	b.If(p, false, func() {
		row := b.AndI(i, int32(rows-1))
		col := b.Shr(i, shift)
		colRows := b.Shl(col, shift)

		iS := b.Ldg(b.IScAdd(row, b.Param(6), 2), 0)
		jE := b.Ldg(b.IScAdd(col, b.Param(7), 2), 0)
		cBase := b.Param(1)
		cN := b.Ldg(b.IScAdd(i, cBase, 2), 0)
		cS := b.Ldg(b.IScAdd(b.IAdd(iS, colRows), cBase, 2), 0)
		cW := cN
		cE := b.Ldg(b.IScAdd(b.IAdd(row, b.Shl(jE, shift)), cBase, 2), 0)

		dN := b.Ldg(b.IScAdd(i, b.Param(2), 2), 0)
		dS := b.Ldg(b.IScAdd(i, b.Param(3), 2), 0)
		dW := b.Ldg(b.IScAdd(i, b.Param(4), 2), 0)
		dE := b.Ldg(b.IScAdd(i, b.Param(5), 2), 0)

		d := b.FAdd(b.FAdd(b.FMul(cN, dN), b.FMul(cS, dS)),
			b.FAdd(b.FMul(cW, dW), b.FMul(cE, dE)))
		iAddr := b.IScAdd(i, b.Param(0), 2)
		v := b.Ldg(iAddr, 0)
		b.Stg(iAddr, 0, b.FFma(b.MovF(0.25*lambda), d, v))
	})
	b.FreeP(p)
	return b.MustBuild()
}

// sradCompress: I[i] = log(I[i])*255.
func sradCompress(ne int) *isa.Program {
	b := kasm.New("srad.compress")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(1))
	b.If(p, false, func() {
		addr := b.IScAdd(i, b.Param(0), 2)
		b.Stg(addr, 0, b.FMul(b.Logf(b.Ldg(addr, 0)), b.MovF(255)))
	})
	b.FreeP(p)
	return b.MustBuild()
}

func log2i(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
