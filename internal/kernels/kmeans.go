package kernels

import (
	"math"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// KMeans is the Rodinia kmeans benchmark: K1 invert_mapping transposes the
// feature matrix to the layout the texture path expects, K2 kmeansPoint
// assigns each point to its nearest cluster, reading features through the
// texture cache as the CUDA version binds t_features.
func KMeans() App {
	const (
		npoints   = 256
		nfeatures = 8
		nclusters = 5
		block     = 128
	)
	return App{
		Name:    "K-Means",
		Kernels: []string{"K1", "K2"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			feat := randFloats(501, npoints*nfeatures, 0, 1)
			clus := randFloats(502, nclusters*nfeatures, 0, 1)
			dFeat := m.Alloc("features", 4*npoints*nfeatures)
			dFeatT := m.Alloc("featuresT", 4*npoints*nfeatures)
			dClus := m.Alloc("clusters", 4*nclusters*nfeatures)
			dMemb := m.Alloc("membership", 4*npoints)
			m.WriteF32s(dFeat, feat)
			m.WriteF32s(dClus, clus)

			k1 := kmeansInvert(npoints, nfeatures)
			k2 := kmeansPoint(npoints, nfeatures, nclusters)
			return &device.Job{
				Name: "K-Means",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch1D(k1, "K1", npoints/block, block, 0,
						ptr(dFeat), ptr(dFeatT), val(npoints), val(nfeatures))},
					{Launch: launch1D(k2, "K2", npoints/block, block, 0,
						ptr(dFeatT), ptr(dClus), ptr(dMemb), val(npoints), val(nclusters))},
				},
				Outputs: []device.Output{{Name: "membership", Addr: dMemb, Size: 4 * npoints}},
			}
		},
		Check: func(out []byte) error {
			feat := randFloats(501, npoints*nfeatures, 0, 1)
			clus := randFloats(502, nclusters*nfeatures, 0, 1)
			want := make([]int32, npoints)
			for p := 0; p < npoints; p++ {
				best := int32(0)
				bestD := float32(math.Inf(1))
				for c := 0; c < nclusters; c++ {
					var d float32
					for f := 0; f < nfeatures; f++ {
						diff := feat[p*nfeatures+f] - clus[c*nfeatures+f]
						d = fma32(diff, diff, d)
					}
					if d < bestD {
						bestD, best = d, int32(c)
					}
				}
				want[p] = best
			}
			return checkInts(out, want)
		},
	}
}

// kmeansInvert is invert_mapping: out[f*npoints+p] = in[p*nfeatures+f].
func kmeansInvert(npoints, nfeatures int) *isa.Program {
	b := kasm.New("invert_mapping")
	p := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	q := b.P()
	b.ISetp(q, isa.CmpLT, p, b.Param(2))
	b.If(q, false, func() {
		inRow := b.IScAdd(b.IMul(p, b.Param(3)), b.Param(0), 2)
		f := b.MovI(0)
		b.For(f, b.Param(3), 1, func() {
			v := b.Ldg(b.IScAdd(f, inRow, 2), 0)
			outIdx := b.IMad(f, b.Param(2), p)
			b.Stg(b.IScAdd(outIdx, b.Param(1), 2), 0, v)
		})
	})
	b.FreeP(q)
	return b.MustBuild()
}

// kmeansPoint assigns each point to its nearest cluster; features are read
// through the texture path (LDT), clusters through L1D.
func kmeansPoint(npoints, nfeatures, nclusters int) *isa.Program {
	b := kasm.New("kmeansPoint")
	pt := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	g := b.P()
	b.ISetp(g, isa.CmpLT, pt, b.Param(3))
	b.If(g, false, func() {
		featT := b.Param(0)
		clusBase := b.Param(1)
		best := b.MovI(0)
		bestD := b.MovF(float32(math.Inf(1)))
		c := b.MovI(0)
		b.For(c, b.Param(4), 1, func() {
			d := b.MovF(0)
			f := b.MovI(0)
			b.For(f, b.MovI(int32(nfeatures)), 1, func() {
				// feature[f*npoints + pt] via texture
				fi := b.IMad(f, b.Param(3), pt)
				fv := b.Ldt(b.IScAdd(fi, featT, 2), 0)
				ci := b.IMad(c, b.MovI(int32(nfeatures)), f)
				cv := b.Ldg(b.IScAdd(ci, clusBase, 2), 0)
				diff := b.FSub(fv, cv)
				b.FFmaTo(d, diff, diff, d)
			})
			lt := b.P()
			b.FSetp(lt, isa.CmpLT, d, bestD)
			b.SelTo(bestD, lt, d, bestD)
			b.SelTo(best, lt, c, best)
			b.FreeP(lt)
		})
		b.Stg(b.IScAdd(pt, b.Param(2), 2), 0, best)
	})
	b.FreeP(g)
	return b.MustBuild()
}
