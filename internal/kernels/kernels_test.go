package kernels

import (
	"bytes"
	"testing"

	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/sim"
)

// runBoth executes an app on both simulators and cross-checks the outputs.
func runBoth(t *testing.T, app App) ([]byte, *sim.Result) {
	t.Helper()
	job := app.Build()

	fr := funcsim.Run(job, funcsim.Options{CollectWindows: true})
	if fr.Err != nil {
		t.Fatalf("%s funcsim error: %v", app.Name, fr.Err)
	}
	if fr.TimedOut {
		t.Fatalf("%s funcsim timed out", app.Name)
	}
	if err := app.Check(fr.Output); err != nil {
		t.Fatalf("%s funcsim output check: %v", app.Name, err)
	}

	sr := sim.Run(job, gpu.Volta(), sim.Options{})
	if sr.Err != nil {
		t.Fatalf("%s sim error: %v", app.Name, sr.Err)
	}
	if sr.TimedOut {
		t.Fatalf("%s sim timed out", app.Name)
	}
	if err := app.Check(sr.Output); err != nil {
		t.Fatalf("%s sim output check: %v", app.Name, err)
	}
	if !bytes.Equal(fr.Output, sr.Output) {
		t.Errorf("%s: functional and microarchitectural outputs differ", app.Name)
	}

	// every declared kernel must actually have run
	for _, k := range app.Kernels {
		if fr.PerKernel[k] == nil || fr.PerKernel[k].DynInstrs == 0 {
			t.Errorf("%s: kernel %s executed no instructions (funcsim)", app.Name, k)
		}
		if sr.PerKernel[k] == nil || sr.PerKernel[k].DynInstrs == 0 {
			t.Errorf("%s: kernel %s executed no instructions (sim)", app.Name, k)
		}
	}
	return fr.Output, sr
}

func TestVA(t *testing.T)  { runBoth(t, VA()) }
func TestSCP(t *testing.T) { runBoth(t, SCP()) }

// TestDeterminism verifies that repeated runs produce identical outputs and
// cycle counts — the foundation of golden-run fault classification.
func TestDeterminism(t *testing.T) {
	app := SCP()
	job := app.Build()
	r1 := sim.Run(job, gpu.Volta(), sim.Options{})
	r2 := sim.Run(job, gpu.Volta(), sim.Options{})
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if !bytes.Equal(r1.Output, r2.Output) {
		t.Errorf("outputs differ between identical runs")
	}
}

func TestSRADv1(t *testing.T) { runBoth(t, SRADv1()) }

func TestSRADv2(t *testing.T)     { runBoth(t, SRADv2()) }
func TestKMeans(t *testing.T)     { runBoth(t, KMeans()) }
func TestHotSpot(t *testing.T)    { runBoth(t, HotSpot()) }
func TestLUD(t *testing.T)        { runBoth(t, LUD()) }
func TestNW(t *testing.T)         { runBoth(t, NW()) }
func TestPathFinder(t *testing.T) { runBoth(t, PathFinder()) }
func TestBackProp(t *testing.T)   { runBoth(t, BackProp()) }
func TestBFS(t *testing.T)        { runBoth(t, BFS()) }
