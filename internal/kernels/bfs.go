package kernels

import (
	"math/rand"

	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// BFS is the Rodinia breadth-first-search benchmark: K1 expands the current
// frontier (mask) writing tentative costs and the updating mask, K2 promotes
// the updating mask into the next frontier and raises the host-visible stop
// flag. The host loops the kernel pair while the flag is set, exactly like
// the Rodinia driver's do/while over cudaMemcpy of g_over.
func BFS() App {
	const (
		nodes = 512
		block = 256
	)
	return App{
		Name:    "BFS",
		Kernels: []string{"K1", "K2"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			starts, degs, edges := bfsGraph(nodes)
			dStart := m.Alloc("nodeStart", 4*nodes)
			dDeg := m.Alloc("nodeDeg", 4*nodes)
			dEdges := m.Alloc("edges", 4*len(edges))
			dMask := m.Alloc("mask", 4*nodes)
			dUpd := m.Alloc("updating", 4*nodes)
			dVis := m.Alloc("visited", 4*nodes)
			dCost := m.Alloc("cost", 4*nodes)
			dStop := m.Alloc("stop", 4)
			m.WriteI32s(dStart, starts)
			m.WriteI32s(dDeg, degs)
			m.WriteI32s(dEdges, edges)
			cost := make([]int32, nodes)
			for i := range cost {
				cost[i] = -1
			}
			cost[0] = 0
			m.WriteI32s(dCost, cost)
			m.PokeU32(dMask, 1)
			m.PokeU32(dVis, 1)

			k1 := bfsKernel1(nodes)
			k2 := bfsKernel2(nodes)
			grid := nodes / block

			hostLoop := func(mm *device.Memory, off uint32) int {
				if mm.PeekU32(dStop+off) != 0 {
					mm.PokeU32(dStop+off, 0)
					return 0 // run the kernel pair again
				}
				return -1
			}
			return &device.Job{
				Name: "BFS",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch1D(k1, "K1", grid, block, 0,
						ptr(dStart), ptr(dDeg), ptr(dEdges), ptr(dMask), ptr(dUpd),
						ptr(dVis), ptr(dCost), val(nodes))},
					{Launch: launch1D(k2, "K2", grid, block, 0,
						ptr(dMask), ptr(dUpd), ptr(dVis), ptr(dStop), val(nodes))},
					{Host: hostLoop},
				},
				Outputs:  []device.Output{{Name: "cost", Addr: dCost, Size: 4 * nodes}},
				MaxSteps: 200,
			}
		},
		Check: func(out []byte) error {
			return checkInts(out, bfsRef(nodes))
		},
	}
}

// bfsGraph builds a deterministic connected graph: a ring plus two random
// out-edges per node, in Rodinia's CSR-like layout.
func bfsGraph(nodes int) (starts, degs, edges []int32) {
	rng := rand.New(rand.NewSource(1101))
	adj := make([][]int32, nodes)
	for i := 0; i < nodes; i++ {
		adj[i] = append(adj[i], int32((i+1)%nodes), int32((i+nodes-1)%nodes))
		for k := 0; k < 2; k++ {
			adj[i] = append(adj[i], rng.Int31n(int32(nodes)))
		}
	}
	starts = make([]int32, nodes)
	degs = make([]int32, nodes)
	for i, a := range adj {
		starts[i] = int32(len(edges))
		degs[i] = int32(len(a))
		edges = append(edges, a...)
	}
	return
}

// bfsRef computes BFS levels from node 0.
func bfsRef(nodes int) []int32 {
	starts, degs, edges := bfsGraph(nodes)
	cost := make([]int32, nodes)
	for i := range cost {
		cost[i] = -1
	}
	cost[0] = 0
	frontier := []int32{0}
	for len(frontier) > 0 {
		var next []int32
		for _, n := range frontier {
			for e := starts[n]; e < starts[n]+degs[n]; e++ {
				id := edges[e]
				if cost[id] < 0 {
					cost[id] = cost[n] + 1
					next = append(next, id)
				}
			}
		}
		frontier = next
	}
	return cost
}

// bfsKernel1 expands the frontier.
// Params: nodeStart nodeDeg edges mask updating visited cost n.
func bfsKernel1(nodes int) *isa.Program {
	b := kasm.New("bfs_kernel")
	tid := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, tid, b.Param(7))
	maskAddr := b.IScAdd(tid, b.Param(3), 2)
	inFrontier := b.P()
	mv := b.Ldg(maskAddr, 0)
	b.ISetpIAnd(inFrontier, isa.CmpNE, mv, 0, p, false)
	b.If(inFrontier, false, func() {
		b.Stg(maskAddr, 0, b.MovI(0))
		myCost := b.Ldg(b.IScAdd(tid, b.Param(6), 2), 0)
		newCost := b.IAddI(myCost, 1)
		start := b.Ldg(b.IScAdd(tid, b.Param(0), 2), 0)
		deg := b.Ldg(b.IScAdd(tid, b.Param(1), 2), 0)
		end := b.IAdd(start, deg)
		e := b.Mov(start)
		b.For(e, end, 1, func() {
			id := b.Ldg(b.IScAdd(e, b.Param(2), 2), 0)
			vis := b.Ldg(b.IScAdd(id, b.Param(5), 2), 0)
			q := b.P()
			b.ISetpI(q, isa.CmpEQ, vis, 0)
			b.If(q, false, func() {
				b.Stg(b.IScAdd(id, b.Param(6), 2), 0, newCost)
				b.Stg(b.IScAdd(id, b.Param(4), 2), 0, b.MovI(1))
			})
			b.FreeP(q)
		})
	})
	b.FreeP(inFrontier)
	b.FreeP(p)
	return b.MustBuild()
}

// bfsKernel2 promotes the updating mask into the next frontier.
// Params: mask updating visited stop n.
func bfsKernel2(nodes int) *isa.Program {
	b := kasm.New("bfs_kernel2")
	tid := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, tid, b.Param(4))
	updAddr := b.IScAdd(tid, b.Param(1), 2)
	q := b.P()
	uv := b.Ldg(updAddr, 0)
	b.ISetpIAnd(q, isa.CmpNE, uv, 0, p, false)
	b.If(q, false, func() {
		b.Stg(b.IScAdd(tid, b.Param(0), 2), 0, b.MovI(1))
		b.Stg(b.IScAdd(tid, b.Param(2), 2), 0, b.MovI(1))
		b.Stg(b.Param(3), 0, b.MovI(1))
		b.Stg(updAddr, 0, b.MovI(0))
	})
	b.FreeP(q)
	b.FreeP(p)
	return b.MustBuild()
}
