package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// NW is the Rodinia Needleman-Wunsch benchmark: dynamic-programming sequence
// alignment processed block-wavefront — K1 (needle_cuda_shared_1) sweeps the
// upper-left anti-diagonals of blocks, K2 (needle_cuda_shared_2) the
// lower-right ones. Each CTA solves a 16×16 tile in shared memory with an
// in-block anti-diagonal wavefront.
func NW() App {
	const (
		dim     = 32 // alignment length
		mc      = dim + 1
		blk     = 16
		penalty = 10
	)
	nBlocks := dim / blk
	return App{
		Name:    "NW",
		Kernels: []string{"K1", "K2"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			items, ref := nwInput(dim, penalty)
			dItems := m.Alloc("itemsets", 4*mc*mc)
			dRef := m.Alloc("reference", 4*mc*mc)
			m.WriteI32s(dItems, items)
			m.WriteI32s(dRef, ref)

			k1 := nwKernel(mc, blk, penalty, false)
			k2 := nwKernel(mc, blk, penalty, true)
			var steps []device.Step
			for i := 1; i <= nBlocks; i++ {
				steps = append(steps, device.Step{
					Launch: launch1D(k1, "K1", i, blk, 4*(17*17+blk*blk),
						ptr(dRef), ptr(dItems), val(int32(i)), val(int32(nBlocks))),
				})
			}
			for i := nBlocks - 1; i >= 1; i-- {
				steps = append(steps, device.Step{
					Launch: launch1D(k2, "K2", i, blk, 4*(17*17+blk*blk),
						ptr(dRef), ptr(dItems), val(int32(i)), val(int32(nBlocks))),
				})
			}
			return &device.Job{
				Name:    "NW",
				Mem:     m,
				Steps:   steps,
				Outputs: []device.Output{{Name: "itemsets", Addr: dItems, Size: 4 * mc * mc}},
			}
		},
		Check: func(out []byte) error {
			return checkInts(out, nwRef(dim, penalty))
		},
	}
}

// nwInput builds the boundary-initialised itemset matrix and the random
// substitution-score matrix.
func nwInput(dim, penalty int) (items, ref []int32) {
	mc := dim + 1
	items = make([]int32, mc*mc)
	for i := 1; i < mc; i++ {
		items[i*mc] = int32(-i * penalty)
		items[i] = int32(-i * penalty)
	}
	ref = randInts(801, mc*mc, -4, 12)
	return
}

// nwRef computes the full DP table (integer, order-independent).
func nwRef(dim, penalty int) []int32 {
	mc := dim + 1
	items, ref := nwInput(dim, penalty)
	maxi := func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	}
	for i := 1; i < mc; i++ {
		for j := 1; j < mc; j++ {
			items[i*mc+j] = maxi(items[(i-1)*mc+j-1]+ref[i*mc+j],
				maxi(items[i*mc+j-1]-int32(penalty), items[(i-1)*mc+j]-int32(penalty)))
		}
	}
	return items
}

// nwKernel builds either wavefront kernel. Params: reference itemsets blkIdx
// nBlocks. For the first pass block (bx) maps to column bx, row blkIdx-1-bx;
// for the second pass to column bx+nBlocks-blkIdx, row nBlocks-1-bx.
func nwKernel(mc, blk, penalty int, second bool) *isa.Program {
	name := "needle_cuda_shared_1"
	if second {
		name = "needle_cuda_shared_2"
	}
	b := kasm.New(name)
	tx := b.S2R(isa.SRTidX)
	bx := b.S2R(isa.SRCtaIDX)
	blkIdx := b.Param(2)

	var bIndexX, bIndexY isa.Reg
	if second {
		nB := b.Param(3)
		bIndexX = b.IAdd(bx, b.ISub(nB, blkIdx))
		bIndexY = b.ISub(b.ISubI(nB, 1), bx)
	} else {
		bIndexX = b.Mov(bx)
		bIndexY = b.ISub(b.ISubI(blkIdx, 1), bx)
	}
	row0 := b.IMulI(bIndexY, int32(blk))
	col0 := b.IMulI(bIndexX, int32(blk))
	mcR := b.MovI(int32(mc))
	itemsBase := b.Param(1)
	refBase := b.Param(0)

	// shared: temp[17][17] at 0, ref[16][16] after it
	refOff := int32(4 * 17 * 17)
	tempAt := func(r, c isa.Reg) isa.Reg {
		return b.Shl(b.IMad(r, b.MovI(17), c), 2)
	}
	tempAtI := func(r isa.Reg, rPlus int32, c isa.Reg, cPlus int32) isa.Reg {
		rr := b.IAddI(r, rPlus)
		cc := b.IAddI(c, cPlus)
		return tempAt(rr, cc)
	}
	refAt := func(r, c isa.Reg) isa.Reg {
		return b.IAddI(b.Shl(b.IMad(r, b.MovI(int32(blk)), c), 2), refOff)
	}

	zero := b.MovI(0)
	// corner: temp[0][0] = items[row0][col0] (one thread)
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, tx, 0)
	b.If(p, false, func() {
		g := b.IScAdd(b.IMad(row0, mcR, col0), itemsBase, 2)
		b.Sts(tempAt(zero, zero), 0, b.Ldg(g, 0))
	})
	// west column: temp[tx+1][0] = items[row0+tx+1][col0]
	gw := b.IScAdd(b.IMad(b.IAdd(row0, b.IAddI(tx, 1)), mcR, col0), itemsBase, 2)
	b.Sts(tempAtI(tx, 1, zero, 0), 0, b.Ldg(gw, 0))
	// north row: temp[0][tx+1] = items[row0][col0+tx+1]
	gn := b.IScAdd(b.IMad(row0, mcR, b.IAdd(col0, b.IAddI(tx, 1))), itemsBase, 2)
	b.Sts(tempAtI(zero, 0, tx, 1), 0, b.Ldg(gn, 0))
	// reference tile
	ty := b.MovI(0)
	b.For(ty, b.MovI(int32(blk)), 1, func() {
		g := b.IScAdd(b.IMad(b.IAdd(row0, b.IAddI(ty, 1)), mcR, b.IAdd(col0, b.IAddI(tx, 1))), refBase, 2)
		b.Sts(refAt(ty, tx), 0, b.Ldg(g, 0))
	})
	b.Barrier()

	pen := b.MovI(int32(penalty))
	compute := func(tiy, tix isa.Reg) {
		// temp[tiy][tix] = max3(temp[tiy-1][tix-1]+ref[tiy-1][tix-1],
		//                       temp[tiy][tix-1]-p, temp[tiy-1][tix]-p)
		nw := b.IAdd(b.Lds(tempAtI(tiy, -1, tix, -1), 0),
			b.Lds(refAt(b.ISubI(tiy, 1), b.ISubI(tix, 1)), 0))
		w := b.ISub(b.Lds(tempAtI(tiy, 0, tix, -1), 0), pen)
		n := b.ISub(b.Lds(tempAtI(tiy, -1, tix, 0), 0), pen)
		b.Sts(tempAt(tiy, tix), 0, b.IMax(nw, b.IMax(w, n)))
	}

	mIdx := b.MovI(0)
	q := b.P()
	b.For(mIdx, b.MovI(int32(blk)), 1, func() {
		b.ISetp(q, isa.CmpLE, tx, mIdx)
		b.If(q, false, func() {
			tix := b.IAddI(tx, 1)
			tiy := b.IAddI(b.ISub(mIdx, tx), 1)
			compute(tiy, tix)
		})
		b.Barrier()
	})
	b.MovITo(mIdx, int32(blk-2))
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(q, isa.CmpGE, mIdx, 0)
		return q, false
	}, func() {
		b.ISetp(q, isa.CmpLE, tx, mIdx)
		b.If(q, false, func() {
			tix := b.IAdd(tx, b.ISub(b.MovI(int32(blk)), mIdx))
			tiy := b.ISub(b.MovI(int32(blk)), tx)
			compute(tiy, tix)
		})
		b.Barrier()
		b.IAddITo(mIdx, mIdx, -1)
	})
	b.FreeP(q)
	b.FreeP(p)

	// write back interior
	b.MovITo(ty, 0)
	b.For(ty, b.MovI(int32(blk)), 1, func() {
		g := b.IScAdd(b.IMad(b.IAdd(row0, b.IAddI(ty, 1)), mcR, b.IAdd(col0, b.IAddI(tx, 1))), itemsBase, 2)
		b.Stg(g, 0, b.Lds(tempAtI(ty, 1, tx, 1), 0))
	})
	return b.MustBuild()
}
