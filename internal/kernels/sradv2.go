package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// SRADv2 is the Rodinia srad_v2 benchmark: the same diffusion as srad_v1 but
// on a row-major matrix with 2D 16×16 CTAs and shared-memory tiles — kernels
// srad_cuda_1 (K1) and srad_cuda_2 (K2), run for two iterations. q0sqr is
// computed on the host from the initial image, as the Rodinia host loop does
// before each kernel pair.
func SRADv2() App {
	const (
		rows   = 32
		cols   = 32
		ne     = rows * cols
		blk    = 16
		iters  = 2
		lambda = float32(0.5)
	)
	return App{
		Name:    "SRADv2",
		Kernels: []string{"K1", "K2"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			img := randFloats(401, ne, 0, 255)
			J := make([]float32, ne)
			for i, v := range img {
				J[i] = exp32(fdiv32(v, 255))
			}
			dJ := m.Alloc("J", 4*ne)
			dC := m.Alloc("C", 4*ne)
			dE := m.Alloc("E", 4*ne)
			dW := m.Alloc("W", 4*ne)
			dN := m.Alloc("N", 4*ne)
			dS := m.Alloc("S", 4*ne)
			dQ0 := m.Alloc("q0sqr", 4)
			m.WriteF32s(dJ, J)

			k1 := sradV2K1(rows, cols, blk)
			k2 := sradV2K2(rows, cols, blk, lambda)

			hostQ0 := func(mm *device.Memory, off uint32) int {
				var sum, sum2 float32
				for i := 0; i < ne; i++ {
					v := mm.PeekF32(dJ + off + uint32(4*i))
					sum += v
					sum2 += v * v
				}
				mean := sum / float32(ne)
				vr := sum2/float32(ne) - mean*mean
				mm.PokeF32(dQ0+off, vr/(mean*mean))
				return -1
			}

			var steps []device.Step
			for it := 0; it < iters; it++ {
				steps = append(steps,
					device.Step{Host: hostQ0},
					device.Step{Launch: launch2D(k1, "K1", cols/blk, rows/blk, blk, blk, 4*blk*blk,
						ptr(dE), ptr(dW), ptr(dN), ptr(dS), ptr(dJ), ptr(dC), ptr(dQ0))},
					device.Step{Launch: launch2D(k2, "K2", cols/blk, rows/blk, blk, blk, 4*blk*blk,
						ptr(dE), ptr(dW), ptr(dN), ptr(dS), ptr(dJ), ptr(dC))},
				)
			}
			return &device.Job{
				Name:    "SRADv2",
				Mem:     m,
				Steps:   steps,
				Outputs: []device.Output{{Name: "J", Addr: dJ, Size: 4 * ne}},
			}
		},
		Check: func(out []byte) error {
			want := sradV2Ref(rows, cols, iters, lambda)
			return checkFloats(out, want, 1e-3)
		},
	}
}

// sradV2Ref mirrors both kernels in float32.
func sradV2Ref(rows, cols, iters int, lambda float32) []float32 {
	ne := rows * cols
	img := randFloats(401, ne, 0, 255)
	J := make([]float32, ne)
	for i, v := range img {
		J[i] = exp32(fdiv32(v, 255))
	}
	C := make([]float32, ne)
	dE := make([]float32, ne)
	dW := make([]float32, ne)
	dN := make([]float32, ne)
	dS := make([]float32, ne)
	clampI := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for it := 0; it < iters; it++ {
		var sum, sum2 float32
		for i := 0; i < ne; i++ {
			sum += J[i]
			sum2 += J[i] * J[i]
		}
		mean := sum / float32(ne)
		vr := sum2/float32(ne) - mean*mean
		q0 := vr / (mean * mean)
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				i := y*cols + x
				jc := J[i]
				n := J[clampI(y-1, 0, rows-1)*cols+x] - jc
				s := J[clampI(y+1, 0, rows-1)*cols+x] - jc
				w := J[y*cols+clampI(x-1, 0, cols-1)] - jc
				e := J[y*cols+clampI(x+1, 0, cols-1)] - jc
				g2 := fdiv32(n*n+s*s+w*w+e*e, jc*jc)
				l := fdiv32(n+s+w+e, jc)
				num := 0.5*g2 - (1.0/16.0)*(l*l)
				den := 1 + 0.25*l
				qsqr := fdiv32(num, den*den)
				den = fdiv32(qsqr-q0, q0*(1+q0))
				cv := fdiv32(1, 1+den)
				if cv < 0 {
					cv = 0
				} else if cv > 1 {
					cv = 1
				}
				C[i], dN[i], dS[i], dW[i], dE[i] = cv, n, s, w, e
			}
		}
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				i := y*cols + x
				cc := C[i]
				cs := C[clampI(y+1, 0, rows-1)*cols+x]
				ce := C[y*cols+clampI(x+1, 0, cols-1)]
				d := cc*dN[i] + cs*dS[i] + cc*dW[i] + ce*dE[i]
				J[i] = fma32(0.25*lambda, d, J[i])
			}
		}
	}
	return J
}

// sradV2K1 is srad_cuda_1: load a 16×16 tile into shared memory, fetch
// boundary neighbours from global memory with clamping, compute the
// diffusion coefficient and the four directional derivatives.
// Params: E W N S J C q0sqr.
func sradV2K1(rows, cols, blk int) *isa.Program {
	b := kasm.New("srad_cuda_1")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	bx := b.S2R(isa.SRCtaIDX)
	by := b.S2R(isa.SRCtaIDY)

	x := b.IMad(bx, b.MovI(int32(blk)), tx)
	y := b.IMad(by, b.MovI(int32(blk)), ty)
	idx := b.IMad(y, b.MovI(int32(cols)), x)
	jBase := b.Param(4)

	// temp[ty][tx] = J[idx]
	smAddr := b.Shl(b.IMad(ty, b.MovI(int32(blk)), tx), 2)
	jc := b.Ldg(b.IScAdd(idx, jBase, 2), 0)
	b.Sts(smAddr, 0, jc)
	b.Barrier()

	// neighbour fetch: from the tile when interior, from global (clamped)
	// when on a tile edge.
	p := b.P()
	nbr := func(cond isa.CmpOp, coord isa.Reg, lim int32, smOff int32, gIdx func() isa.Reg) isa.Reg {
		v := b.R()
		b.ISetpI(p, cond, coord, lim)
		b.IfElse(p, false, func() {
			// tile edge: load from global with clamped index
			b.LdgTo(v, b.IScAdd(gIdx(), jBase, 2), 0)
		}, func() {
			b.LdsTo(v, smAddr, smOff)
		})
		return v
	}
	// north: ty==0 ? J[clamp(y-1)*cols+x] : temp[ty-1][tx]
	nV := nbr(isa.CmpEQ, ty, 0, int32(-4*blk), func() isa.Reg {
		ym := b.IMax(b.ISubI(y, 1), b.MovI(0))
		return b.IMad(ym, b.MovI(int32(cols)), x)
	})
	sV := nbr(isa.CmpEQ, ty, int32(blk-1), int32(4*blk), func() isa.Reg {
		yp := b.IMin(b.IAddI(y, 1), b.MovI(int32(rows-1)))
		return b.IMad(yp, b.MovI(int32(cols)), x)
	})
	wV := nbr(isa.CmpEQ, tx, 0, -4, func() isa.Reg {
		xm := b.IMax(b.ISubI(x, 1), b.MovI(0))
		return b.IMad(y, b.MovI(int32(cols)), xm)
	})
	eV := nbr(isa.CmpEQ, tx, int32(blk-1), 4, func() isa.Reg {
		xp := b.IMin(b.IAddI(x, 1), b.MovI(int32(cols-1)))
		return b.IMad(y, b.MovI(int32(cols)), xp)
	})
	b.FreeP(p)

	dN := b.FSub(nV, jc)
	dS := b.FSub(sV, jc)
	dW := b.FSub(wV, jc)
	dE := b.FSub(eV, jc)

	sq := func(r isa.Reg) isa.Reg { return b.FMul(r, r) }
	g2 := b.FDiv(b.FAdd(b.FAdd(sq(dN), sq(dS)), b.FAdd(sq(dW), sq(dE))), sq(jc))
	l := b.FDiv(b.FAdd(b.FAdd(dN, dS), b.FAdd(dW, dE)), jc)
	num := b.FSub(b.FMul(b.MovF(0.5), g2), b.FMul(b.MovF(1.0/16.0), sq(l)))
	den := b.FAdd(b.MovF(1), b.FMul(b.MovF(0.25), l))
	qsqr := b.FDiv(num, sq(den))
	q0 := b.Ldg(b.Param(6), 0)
	den2 := b.FDiv(b.FSub(qsqr, q0), b.FMul(q0, b.FAdd(b.MovF(1), q0)))
	c := b.FDiv(b.MovF(1), b.FAdd(b.MovF(1), den2))
	c = b.FMax(b.FMin(c, b.MovF(1)), b.MovF(0))

	b.Stg(b.IScAdd(idx, b.Param(5), 2), 0, c)
	b.Stg(b.IScAdd(idx, b.Param(2), 2), 0, dN)
	b.Stg(b.IScAdd(idx, b.Param(3), 2), 0, dS)
	b.Stg(b.IScAdd(idx, b.Param(1), 2), 0, dW)
	b.Stg(b.IScAdd(idx, b.Param(0), 2), 0, dE)
	return b.MustBuild()
}

// sradV2K2 is srad_cuda_2: divergence and image update, reading the south
// and east coefficients from neighbours (clamped at the matrix edge).
// Params: E W N S J C.
func sradV2K2(rows, cols, blk int, lambda float32) *isa.Program {
	b := kasm.New("srad_cuda_2")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	bx := b.S2R(isa.SRCtaIDX)
	by := b.S2R(isa.SRCtaIDY)

	x := b.IMad(bx, b.MovI(int32(blk)), tx)
	y := b.IMad(by, b.MovI(int32(blk)), ty)
	idx := b.IMad(y, b.MovI(int32(cols)), x)
	cBase := b.Param(5)

	// temp tile of C for in-block south/east neighbours
	smAddr := b.Shl(b.IMad(ty, b.MovI(int32(blk)), tx), 2)
	cc := b.Ldg(b.IScAdd(idx, cBase, 2), 0)
	b.Sts(smAddr, 0, cc)
	b.Barrier()

	p := b.P()
	cs := b.R()
	b.ISetpI(p, isa.CmpEQ, ty, int32(blk-1))
	b.IfElse(p, false, func() {
		yp := b.IMin(b.IAddI(y, 1), b.MovI(int32(rows-1)))
		b.LdgTo(cs, b.IScAdd(b.IMad(yp, b.MovI(int32(cols)), x), cBase, 2), 0)
	}, func() {
		b.LdsTo(cs, smAddr, int32(4*blk))
	})
	ce := b.R()
	b.ISetpI(p, isa.CmpEQ, tx, int32(blk-1))
	b.IfElse(p, false, func() {
		xp := b.IMin(b.IAddI(x, 1), b.MovI(int32(cols-1)))
		b.LdgTo(ce, b.IScAdd(b.IMad(y, b.MovI(int32(cols)), xp), cBase, 2), 0)
	}, func() {
		b.LdsTo(ce, smAddr, 4)
	})
	b.FreeP(p)

	dN := b.Ldg(b.IScAdd(idx, b.Param(2), 2), 0)
	dS := b.Ldg(b.IScAdd(idx, b.Param(3), 2), 0)
	dW := b.Ldg(b.IScAdd(idx, b.Param(1), 2), 0)
	dE := b.Ldg(b.IScAdd(idx, b.Param(0), 2), 0)

	d := b.FAdd(b.FAdd(b.FMul(cc, dN), b.FMul(cs, dS)),
		b.FAdd(b.FMul(cc, dW), b.FMul(ce, dE)))
	jAddr := b.IScAdd(idx, b.Param(4), 2)
	v := b.Ldg(jAddr, 0)
	b.Stg(jAddr, 0, b.FFma(b.MovF(0.25*lambda), d, v))
	return b.MustBuild()
}
