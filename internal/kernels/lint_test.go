package kernels

import (
	"testing"

	"gpurel/internal/flow"
	"gpurel/internal/isa"
)

// TestAllKernelsLintClean runs the static linter over every built-in kernel
// of all 11 applications (the `gpudis -lint` path). Shipped kernels must be
// free of both errors and warnings: a finding here means either a genuine
// kernel defect or a linter precision regression — both are bugs.
func TestAllKernelsLintClean(t *testing.T) {
	for _, app := range All() {
		job := app.Build()
		seen := map[*isa.Program]bool{}
		for i := range job.Steps {
			l := job.Steps[i].Launch
			if l == nil || seen[l.Kernel] {
				continue
			}
			seen[l.Kernel] = true
			if diags := flow.Lint(l.Kernel); len(diags) != 0 {
				for _, d := range diags {
					t.Errorf("%s %s (%s): %s", app.Name, l.Name(), l.Kernel.Name, d)
				}
			}
		}
		if len(seen) == 0 {
			t.Errorf("%s: no kernels found", app.Name)
		}
	}
}

// TestMalformedKernelDiagnostics pins the linter's output on a deliberately
// broken kernel: the exact diagnostics (rule, PC, message) are part of the
// tool's contract — scripts grep them.
func TestMalformedKernelDiagnostics(t *testing.T) {
	p := &isa.Program{
		Name:    "broken",
		NumRegs: 4,
		Code: []isa.Instr{
			{Op: isa.OpMOVI, Dst: 1, Imm: 1},  // #0 dead write (R1 never read)
			{Op: isa.OpLDG, Dst: 2, SrcA: 3},  // #1 R3 never defined
			{Op: isa.OpMOVI, Dst: 1, Imm: 7},  // #2 dead write (overwritten at #3)
			{Op: isa.OpMOVI, Dst: 1, Imm: 9},  // #3 dead write (never read)
			{Op: isa.OpSTG, SrcA: 2, SrcB: 2}, // #4
			{Op: isa.OpEXIT},                  // #5
		},
	}
	want := []string{
		"#0 error dead-write: R1 is written here but the value is never read",
		"#1 error uninit-read: LDG address register R3 may be read before any definition",
		"#2 error dead-write: R1 is written here but the value is never read",
		"#3 error dead-write: R1 is written here but the value is never read",
	}
	diags := flow.Lint(p)
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if got := diags[i].String(); got != w {
			t.Errorf("diag %d:\n got %q\nwant %q", i, got, w)
		}
	}
	if !flow.HasErrors(diags) {
		t.Error("malformed kernel must report errors")
	}
}
