package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// PathFinder is the Rodinia pathfinder benchmark: dynamic programming over a
// rows×cols grid, one pyramid-of-height-p row batch per kernel launch, with
// the halo/ghost-zone structure of the original dynproc_kernel.
func PathFinder() App {
	const (
		cols    = 256
		rows    = 8
		blk     = 128
		pyramid = 2
		border  = pyramid // HALO=1
	)
	smallBlk := blk - 2*border
	gBlocks := (cols + smallBlk - 1) / smallBlk
	return App{
		Name:    "PathFinder",
		Kernels: []string{"K1"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			wall := randInts(901, rows*cols, 0, 10)
			dWall := m.Alloc("wall", 4*rows*cols)
			dR0 := m.Alloc("result0", 4*cols)
			dR1 := m.Alloc("result1", 4*cols)
			m.WriteI32s(dWall, wall)
			m.WriteI32s(dR0, wall[:cols]) // first row seeds the DP

			k := pathfinderKernel(cols, blk, border)
			var steps []device.Step
			src, dst := dR0, dR1
			for t := 0; t < rows-1; t += pyramid {
				iter := pyramid
				if t+pyramid > rows-1 {
					iter = rows - 1 - t
				}
				steps = append(steps, device.Step{
					Launch: launch1D(k, "K1", gBlocks, blk, 2*4*blk,
						val(int32(iter)), ptr(dWall), ptr(src), ptr(dst), val(cols), val(int32(t))),
				})
				src, dst = dst, src
			}
			return &device.Job{
				Name:    "PathFinder",
				Mem:     m,
				Steps:   steps,
				Outputs: []device.Output{{Name: "result", Addr: src, Size: 4 * cols}},
			}
		},
		Check: func(out []byte) error {
			return checkInts(out, pathfinderRef(rows, cols))
		},
	}
}

// pathfinderRef computes the DP exactly (integers).
func pathfinderRef(rows, cols int) []int32 {
	wall := randInts(901, rows*cols, 0, 10)
	cur := append([]int32(nil), wall[:cols]...)
	next := make([]int32, cols)
	mini := func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for t := 1; t < rows; t++ {
		for x := 0; x < cols; x++ {
			s := mini(cur[clamp(x-1, 0, cols-1)], mini(cur[x], cur[clamp(x+1, 0, cols-1)]))
			next[x] = s + wall[t*cols+x]
		}
		cur, next = next, cur
	}
	return cur
}

// pathfinderKernel is dynproc_kernel.
// Params: iteration wall src dst cols startStep.
func pathfinderKernel(cols, blk, border int) *isa.Program {
	b := kasm.New("dynproc_kernel")
	tx := b.S2R(isa.SRTidX)
	bx := b.S2R(isa.SRCtaIDX)
	iter := b.Param(0)

	// small_block_cols = blk - iteration*2 (HALO=1)
	sbc := b.ISub(b.MovI(int32(blk)), b.Shl(iter, 1))
	blkX := b.ISubI(b.IMul(sbc, bx), int32(border))
	xidx := b.IAdd(blkX, tx)

	zero := b.MovI(0)
	blkMax := b.MovI(int32(blk - 1))
	validXmin := b.IMax(zero, b.ISub(zero, blkX))
	overhang := b.ISubI(b.IAddI(blkX, int32(blk-1)), int32(cols-1))
	validXmax := b.ISub(blkMax, b.IMax(zero, overhang))

	w := b.IMax(b.ISubI(tx, 1), validXmin)
	e := b.IMin(b.IAddI(tx, 1), validXmax)

	// shared: prev[blk] at 0, result[blk] after
	prevOff := int32(0)
	resOff := int32(4 * blk)
	smTx := b.Shl(tx, 2)

	inRange := b.P()
	b.ISetpI(inRange, isa.CmpGE, xidx, 0)
	b.ISetpIAnd(inRange, isa.CmpLE, xidx, int32(cols-1), inRange, false)
	b.If(inRange, false, func() {
		b.Sts(smTx, prevOff, b.Ldg(b.IScAdd(xidx, b.Param(2), 2), 0))
	})
	b.Barrier()

	computed := b.P()
	isValid := b.P()
	b.ISetp(isValid, isa.CmpGE, tx, validXmin)
	b.ISetpAnd(isValid, isa.CmpLE, tx, validXmax, isValid, false)

	i := b.MovI(0)
	b.For(i, iter, 1, func() {
		lo := b.IAddI(i, 1)
		hi := b.ISub(b.MovI(int32(blk-2)), i)
		b.ISetp(computed, isa.CmpGE, tx, lo)
		b.ISetpAnd(computed, isa.CmpLE, tx, hi, computed, false)
		b.ISetpAnd(computed, isa.CmpEQ, b.Sel(isValid, b.MovI(1), b.MovI(0)), b.MovI(1), computed, false)
		b.If(computed, false, func() {
			left := b.Lds(b.Shl(w, 2), prevOff)
			up := b.Lds(smTx, prevOff)
			right := b.Lds(b.Shl(e, 2), prevOff)
			shortest := b.IMin(left, b.IMin(up, right))
			// wall row startStep+i+1 feeds DP row startStep+i+1
			row := b.IAddI(b.IAdd(b.Param(5), i), 1)
			gi := b.IAdd(b.IMul(row, b.Param(4)), xidx)
			b.Sts(smTx, resOff, b.IAdd(shortest, b.Ldg(b.IScAdd(gi, b.Param(1), 2), 0)))
		})
		b.Barrier()
		last := b.P()
		b.ISetp(last, isa.CmpLT, i, b.ISubI(iter, 1))
		b.If(last, false, func() {
			b.If(computed, false, func() {
				b.Sts(smTx, prevOff, b.Lds(smTx, resOff))
			})
			b.Barrier()
		})
		b.FreeP(last)
	})
	b.If(computed, false, func() {
		b.Stg(b.IScAdd(xidx, b.Param(3), 2), 0, b.Lds(smTx, resOff))
	})
	b.FreeP(isValid)
	b.FreeP(computed)
	b.FreeP(inRange)
	return b.MustBuild()
}
