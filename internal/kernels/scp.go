package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// SCP is the CUDA SDK scalarProd benchmark: dot products of vector pairs,
// one CTA per pair, with a shared-memory tree reduction.
func SCP() App {
	const (
		vectorN  = 8
		elementN = 512
		block    = 64
	)
	return App{
		Name:    "SCP",
		Kernels: []string{"K1"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			a := randFloats(201, vectorN*elementN, -1, 1)
			bv := randFloats(202, vectorN*elementN, -1, 1)
			da := m.Alloc("A", 4*vectorN*elementN)
			db := m.Alloc("B", 4*vectorN*elementN)
			dc := m.Alloc("C", 4*vectorN)
			m.WriteF32s(da, a)
			m.WriteF32s(db, bv)

			prog := scpKernel(block)
			return &device.Job{
				Name: "SCP",
				Mem:  m,
				Steps: []device.Step{
					{Launch: launch1D(prog, "K1", vectorN, block, 4*block,
						ptr(dc), ptr(da), ptr(db), val(elementN))},
				},
				Outputs: []device.Output{{Name: "C", Addr: dc, Size: 4 * vectorN}},
			}
		},
		Check: func(out []byte) error {
			a := randFloats(201, vectorN*elementN, -1, 1)
			bv := randFloats(202, vectorN*elementN, -1, 1)
			want := make([]float32, vectorN)
			for v := 0; v < vectorN; v++ {
				// mirror the GPU sum order: strided partials then tree
				partial := make([]float32, block)
				for t := 0; t < block; t++ {
					for pos := t; pos < elementN; pos += block {
						partial[t] += a[v*elementN+pos] * bv[v*elementN+pos]
					}
				}
				for s := block / 2; s > 0; s /= 2 {
					for t := 0; t < s; t++ {
						partial[t] += partial[t+s]
					}
				}
				want[v] = partial[0]
			}
			return checkFloats(out, want, 1e-4)
		},
	}
}

// scpKernel: each CTA computes one dot product.
//
//	acc = 0
//	for pos = tid; pos < elementN; pos += blockDim: acc += A[vec][pos]*B[vec][pos]
//	smem[tid] = acc; tree-reduce; if tid==0: C[vec] = smem[0]
func scpKernel(block int) *isa.Program {
	b := kasm.New("scalarProd")
	tid := b.S2R(isa.SRTidX)
	vec := b.S2R(isa.SRCtaIDX)
	ntid := b.S2R(isa.SRNTidX)
	elementN := b.Param(3)

	// element base of this CTA's vectors
	vecBase := b.IMul(vec, elementN)
	aBase := b.IScAdd(vecBase, b.Param(1), 2)
	bBase := b.IScAdd(vecBase, b.Param(2), 2)

	acc := b.MovF(0)
	pos := b.Mov(tid)
	b.For(pos, elementN, 0, func() {
		av := b.Ldg(b.IScAdd(pos, aBase, 2), 0)
		bvv := b.Ldg(b.IScAdd(pos, bBase, 2), 0)
		b.FFmaTo(acc, av, bvv, acc)
		// stride by blockDim (For adds its own step of 0, so add here)
		b.IAddTo(pos, pos, ntid)
	})

	smAddr := b.Shl(tid, 2)
	b.Sts(smAddr, 0, acc)
	b.Barrier()

	// tree reduction: for s = block/2; s > 0; s >>= 1
	s := b.MovI(int32(block / 2))
	p := b.P()
	q := b.P()
	b.While(func() (isa.Pred, bool) {
		b.ISetpI(p, isa.CmpGT, s, 0)
		return p, false
	}, func() {
		b.ISetp(q, isa.CmpLT, tid, s)
		b.If(q, false, func() {
			other := b.IAdd(tid, s)
			sum := b.FAdd(b.Lds(smAddr, 0), b.Lds(b.Shl(other, 2), 0))
			b.Sts(smAddr, 0, sum)
		})
		b.Barrier()
		b.ShrTo(s, s, 1)
	})
	b.FreeP(q)

	b.ISetpI(p, isa.CmpEQ, tid, 0)
	b.If(p, false, func() {
		res := b.Lds(b.MovI(0), 0)
		b.Stg(b.IScAdd(vec, b.Param(0), 2), 0, res)
	})
	b.FreeP(p)
	return b.MustBuild()
}
