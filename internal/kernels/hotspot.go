package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// HotSpot is the Rodinia hotspot benchmark: the calculate_temp kernel with
// the original pyramid structure — each CTA loads a 16×16 halo-extended tile
// of temperature and power into shared memory and iterates the thermal
// update `iteration` times in-block, shrinking the valid region each step.
// Two ping-pong launches advance the simulation by 2×iteration steps.
func HotSpot() App {
	const (
		gridRows = 32
		gridCols = 32
		blk      = 16
		pyramid  = 2 // in-block iterations per launch
		launches = 2

		ambTemp    = float32(80)
		stepDivCap = float32(0.05)
		rx         = float32(5)  // Rx_1 = 0.2
		ry         = float32(5)  // Ry_1 = 0.2
		rz         = float32(20) // Rz_1 = 0.05
	)
	border := pyramid // border rows/cols = iteration * EXPAND_RATE/2
	smallBlk := blk - 2*border
	gBlocks := (gridCols + smallBlk - 1) / smallBlk

	return App{
		Name:    "HotSpot",
		Kernels: []string{"K1"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			temp := randFloats(601, gridRows*gridCols, 320, 340)
			power := randFloats(602, gridRows*gridCols, 0, 1)
			dPower := m.Alloc("power", 4*gridRows*gridCols)
			dT0 := m.Alloc("temp0", 4*gridRows*gridCols)
			dT1 := m.Alloc("temp1", 4*gridRows*gridCols)
			m.WriteF32s(dPower, power)
			m.WriteF32s(dT0, temp)

			k := hotspotKernel(gridRows, gridCols, blk, pyramid, border,
				ambTemp, stepDivCap, rx, ry, rz)
			var steps []device.Step
			src, dst := dT0, dT1
			for i := 0; i < launches; i++ {
				steps = append(steps, device.Step{
					Launch: launch2D(k, "K1", gBlocks, gBlocks, blk, blk, 3*4*blk*blk,
						ptr(dPower), ptr(src), ptr(dst)),
				})
				src, dst = dst, src
			}
			return &device.Job{
				Name:    "HotSpot",
				Mem:     m,
				Steps:   steps,
				Outputs: []device.Output{{Name: "temp", Addr: src, Size: 4 * gridRows * gridCols}},
			}
		},
		Check: func(out []byte) error {
			want := hotspotRef(gridRows, gridCols, pyramid*launches,
				ambTemp, stepDivCap, rx, ry, rz)
			return checkFloats(out, want, 1e-3)
		},
	}
}

// hotspotRef computes `iters` global steps of the thermal update in float32,
// mirroring the kernel's operation order.
func hotspotRef(rows, cols, iters int, amb, sdc, rx, ry, rz float32) []float32 {
	temp := randFloats(601, rows*cols, 320, 340)
	power := randFloats(602, rows*cols, 0, 1)
	rx1, ry1, rz1 := rcp32(rx), rcp32(ry), rcp32(rz)
	cur := append([]float32(nil), temp...)
	next := make([]float32, rows*cols)
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for it := 0; it < iters; it++ {
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				i := y*cols + x
				t := cur[i]
				tn := cur[clamp(y-1, 0, rows-1)*cols+x]
				ts := cur[clamp(y+1, 0, rows-1)*cols+x]
				tw := cur[y*cols+clamp(x-1, 0, cols-1)]
				te := cur[y*cols+clamp(x+1, 0, cols-1)]
				next[i] = t + sdc*(power[i]+
					(ts+tn-2*t)*ry1+
					(te+tw-2*t)*rx1+
					(amb-t)*rz1)
			}
		}
		cur, next = next, cur
	}
	return cur
}

// hotspotKernel is calculate_temp. Params: power tempSrc tempDst.
func hotspotKernel(rows, cols, blk, iteration, border int,
	amb, sdc, rx, ry, rz float32) *isa.Program {
	b := kasm.New("calculate_temp")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	bx := b.S2R(isa.SRCtaIDX)
	by := b.S2R(isa.SRCtaIDY)

	smallBlk := blk - 2*border
	// blkY = small_block_rows*by - border; yidx = blkY + ty
	blkY := b.ISubI(b.IMulI(by, int32(smallBlk)), int32(border))
	blkX := b.ISubI(b.IMulI(bx, int32(smallBlk)), int32(border))
	yidx := b.IAdd(blkY, ty)
	xidx := b.IAdd(blkX, tx)
	index := b.IMad(yidx, b.MovI(int32(cols)), xidx)

	// shared: temp_on [0], power_on [blk*blk*4], temp_t [2*blk*blk*4]
	smOff := b.Shl(b.IMad(ty, b.MovI(int32(blk)), tx), 2)
	tOn := int32(0)
	pOn := int32(4 * blk * blk)
	tT := int32(8 * blk * blk)

	inGrid := b.P()
	b.ISetpI(inGrid, isa.CmpGE, yidx, 0)
	b.ISetpIAnd(inGrid, isa.CmpLE, yidx, int32(rows-1), inGrid, false)
	b.ISetpIAnd(inGrid, isa.CmpGE, xidx, 0, inGrid, false)
	b.ISetpIAnd(inGrid, isa.CmpLE, xidx, int32(cols-1), inGrid, false)
	b.If(inGrid, false, func() {
		b.Sts(smOff, tOn, b.Ldg(b.IScAdd(index, b.Param(1), 2), 0))
		b.Sts(smOff, pOn, b.Ldg(b.IScAdd(index, b.Param(0), 2), 0))
	})
	b.Barrier()

	// valid region of the tile (clipped at the grid edge)
	zero := b.MovI(0)
	blkMax := b.MovI(int32(blk - 1))
	validYmin := b.IMax(zero, b.ISub(zero, blkY))
	vYtmp := b.ISubI(b.IAddI(blkY, int32(blk-1)), int32(rows-1)) // overhang
	validYmax := b.ISub(blkMax, b.IMax(zero, vYtmp))
	validXmin := b.IMax(zero, b.ISub(zero, blkX))
	vXtmp := b.ISubI(b.IAddI(blkX, int32(blk-1)), int32(cols-1))
	validXmax := b.ISub(blkMax, b.IMax(zero, vXtmp))

	n := b.IMax(b.ISubI(ty, 1), validYmin)
	s := b.IMin(b.IAddI(ty, 1), validYmax)
	w := b.IMax(b.ISubI(tx, 1), validXmin)
	e := b.IMin(b.IAddI(tx, 1), validXmax)

	nOff := b.Shl(b.IMad(n, b.MovI(int32(blk)), tx), 2)
	sOff := b.Shl(b.IMad(s, b.MovI(int32(blk)), tx), 2)
	wOff := b.Shl(b.IMad(ty, b.MovI(int32(blk)), w), 2)
	eOff := b.Shl(b.IMad(ty, b.MovI(int32(blk)), e), 2)

	rx1 := b.Rcp(b.MovF(rx))
	ry1 := b.Rcp(b.MovF(ry))
	rz1 := b.Rcp(b.MovF(rz))
	sdcR := b.MovF(sdc)
	ambR := b.MovF(amb)
	two := b.MovF(2)

	computed := b.P()
	i := b.MovI(0)
	iterReg := b.MovI(int32(iteration))
	b.For(i, iterReg, 1, func() {
		lo := b.IAddI(i, 1)
		hi := b.ISub(b.MovI(int32(blk-2)), i)
		b.ISetp(computed, isa.CmpGE, tx, lo)
		b.ISetpAnd(computed, isa.CmpLE, tx, hi, computed, false)
		b.ISetpAnd(computed, isa.CmpGE, ty, lo, computed, false)
		b.ISetpAnd(computed, isa.CmpLE, ty, hi, computed, false)
		b.ISetpAnd(computed, isa.CmpGE, tx, validXmin, computed, false)
		b.ISetpAnd(computed, isa.CmpLE, tx, validXmax, computed, false)
		b.ISetpAnd(computed, isa.CmpGE, ty, validYmin, computed, false)
		b.ISetpAnd(computed, isa.CmpLE, ty, validYmax, computed, false)
		b.If(computed, false, func() {
			t := b.Lds(smOff, tOn)
			pw := b.Lds(smOff, pOn)
			tn := b.Lds(nOff, tOn)
			ts := b.Lds(sOff, tOn)
			tw := b.Lds(wOff, tOn)
			te := b.Lds(eOff, tOn)
			t2 := b.FMul(two, t)
			acc := b.FAdd(pw, b.FMul(b.FSub(b.FAdd(ts, tn), t2), ry1))
			acc = b.FAdd(acc, b.FMul(b.FSub(b.FAdd(te, tw), t2), rx1))
			acc = b.FAdd(acc, b.FMul(b.FSub(ambR, t), rz1))
			b.Sts(smOff, tT, b.FAdd(t, b.FMul(sdcR, acc)))
		})
		b.Barrier()
		last := b.P()
		b.ISetpI(last, isa.CmpLT, i, int32(iteration-1))
		b.If(last, false, func() {
			b.If(computed, false, func() {
				b.Sts(smOff, tOn, b.Lds(smOff, tT))
			})
			b.Barrier()
		})
		b.FreeP(last)
	})

	b.If(computed, false, func() {
		b.Stg(b.IScAdd(index, b.Param(2), 2), 0, b.Lds(smOff, tT))
	})
	b.FreeP(computed)
	return b.MustBuild()
}
