// Package kernels provides the 11 benchmark applications (23 kernels) of the
// paper's evaluation (§II-D): ports of the CUDA SDK and Rodinia workloads to
// the simulator's ISA, with host-side setup, schedules, and reference
// checkers. Inputs are deterministic (seeded) and scaled down so that
// thousands of statistical fault-injection runs stay tractable, but each
// port keeps the original kernel decomposition, shared-memory usage,
// control structure and arithmetic.
package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"gpurel/internal/device"
	"gpurel/internal/isa"
)

// App is one benchmark application.
type App struct {
	Name string
	// Kernels lists the kernel names (K1, K2, ...) in the paper's order.
	Kernels []string
	// Build constructs the job: device image, schedule, outputs.
	Build func() *device.Job
	// Check validates the fault-free output bytes against a host-side
	// reference implementation (approximately, for float outputs).
	Check func(out []byte) error
}

// All returns the 11 applications in the order of Figure 1.
func All() []App {
	return []App{
		SRADv1(),
		SRADv2(),
		KMeans(),
		HotSpot(),
		LUD(),
		SCP(),
		VA(),
		NW(),
		PathFinder(),
		BackProp(),
		BFS(),
	}
}

// ByName returns the app with the given name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("unknown benchmark %q", name)
}

// MemCapacity is the device memory size given to every app.
const MemCapacity = 1 << 22 // 4 MiB

// param value helpers: a launch parameter is either a device pointer (which
// the TMR transform rebases per replica) or a plain scalar.

type pv struct {
	v   uint32
	ptr bool
}

func ptr(a uint32) pv   { return pv{v: a, ptr: true} }
func val(i int32) pv    { return pv{v: uint32(i)} }
func fval(f float32) pv { return pv{v: math.Float32bits(f)} }
func uval(u uint32) pv  { return pv{v: u} }

func params(vals ...pv) ([]uint32, []bool) {
	ps := make([]uint32, len(vals))
	isPtr := make([]bool, len(vals))
	for i, p := range vals {
		ps[i] = p.v
		isPtr[i] = p.ptr
	}
	return ps, isPtr
}

// launch1D builds a 1D launch descriptor.
func launch1D(prog *isa.Program, name string, grid, block, smem int, vals ...pv) *device.Launch {
	ps, isPtr := params(vals...)
	return &device.Launch{
		Kernel: prog, KernelName: name,
		GridX: grid, GridY: 1, BlockX: block, BlockY: 1,
		SmemBytes: smem, Params: ps, ParamIsPtr: isPtr,
	}
}

// launch2D builds a 2D launch descriptor.
func launch2D(prog *isa.Program, name string, gx, gy, bx, by, smem int, vals ...pv) *device.Launch {
	ps, isPtr := params(vals...)
	return &device.Launch{
		Kernel: prog, KernelName: name,
		GridX: gx, GridY: gy, BlockX: bx, BlockY: by,
		SmemBytes: smem, Params: ps, ParamIsPtr: isPtr,
	}
}

// randFloats returns n floats in [lo, hi) from a fixed-seed source.
func randFloats(seed int64, n int, lo, hi float32) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + rng.Float32()*(hi-lo)
	}
	return out
}

// randInts returns n ints in [lo, hi) from a fixed-seed source.
func randInts(seed int64, n int, lo, hi int32) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = lo + rng.Int31n(hi-lo)
	}
	return out
}

// checkFloats compares got (raw bytes) against want with relative tolerance.
func checkFloats(got []byte, want []float32, tol float64) error {
	if len(got) != 4*len(want) {
		return fmt.Errorf("output size %d, want %d", len(got), 4*len(want))
	}
	for i, w := range want {
		g := math.Float32frombits(uint32(got[4*i]) | uint32(got[4*i+1])<<8 |
			uint32(got[4*i+2])<<16 | uint32(got[4*i+3])<<24)
		d := math.Abs(float64(g - w))
		if d > tol*math.Max(1, math.Abs(float64(w))) {
			return fmt.Errorf("output[%d] = %g, want %g", i, g, w)
		}
	}
	return nil
}

// checkInts compares got (raw bytes) against want exactly.
func checkInts(got []byte, want []int32) error {
	if len(got) != 4*len(want) {
		return fmt.Errorf("output size %d, want %d", len(got), 4*len(want))
	}
	for i, w := range want {
		g := int32(uint32(got[4*i]) | uint32(got[4*i+1])<<8 |
			uint32(got[4*i+2])<<16 | uint32(got[4*i+3])<<24)
		if g != w {
			return fmt.Errorf("output[%d] = %d, want %d", i, g, w)
		}
	}
	return nil
}

// sliceCheck chains checkers over consecutive regions of the output bytes.
type sliceCheck struct {
	off int
	err error
}

func (s *sliceCheck) floats(out []byte, want []float32, tol float64) {
	if s.err != nil {
		return
	}
	n := 4 * len(want)
	if s.off+n > len(out) {
		s.err = fmt.Errorf("output too short at offset %d", s.off)
		return
	}
	s.err = checkFloats(out[s.off:s.off+n], want, tol)
	s.off += n
}

func (s *sliceCheck) ints(out []byte, want []int32) {
	if s.err != nil {
		return
	}
	n := 4 * len(want)
	if s.off+n > len(out) {
		s.err = fmt.Errorf("output too short at offset %d", s.off)
		return
	}
	s.err = checkInts(out[s.off:s.off+n], want)
	s.off += n
}
