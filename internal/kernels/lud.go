package kernels

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// LUD is the Rodinia LU decomposition benchmark with its three kernels:
// K1 lud_diagonal factorises the diagonal tile, K2 lud_perimeter solves the
// row and column strips, K3 lud_internal updates the trailing submatrix.
// The host schedule walks tile offsets exactly as the Rodinia driver does.
func LUD() App {
	const (
		n   = 32
		blk = 16
	)
	return App{
		Name:    "LUD",
		Kernels: []string{"K1", "K2", "K3"},
		Build: func() *device.Job {
			m := device.NewMemory(MemCapacity)
			mat := ludInput(n)
			dM := m.Alloc("matrix", 4*n*n)
			m.WriteF32s(dM, mat)

			diag := ludDiagonal(n, blk)
			peri := ludPerimeter(n, blk)
			intl := ludInternal(n, blk)

			var steps []device.Step
			for off := 0; off < n; off += blk {
				steps = append(steps, device.Step{
					Launch: launch1D(diag, "K1", 1, blk, 4*blk*blk, ptr(dM), val(int32(off))),
				})
				rem := (n - off) / blk
				if rem > 1 {
					steps = append(steps, device.Step{
						Launch: launch1D(peri, "K2", rem-1, 2*blk, 3*4*blk*blk, ptr(dM), val(int32(off))),
					})
					steps = append(steps, device.Step{
						Launch: launch2D(intl, "K3", rem-1, rem-1, blk, blk, 2*4*blk*blk, ptr(dM), val(int32(off))),
					})
				}
			}
			return &device.Job{
				Name:    "LUD",
				Mem:     m,
				Steps:   steps,
				Outputs: []device.Output{{Name: "matrix", Addr: dM, Size: 4 * n * n}},
			}
		},
		Check: func(out []byte) error {
			return checkFloats(out, ludRef(n, blk), 1e-2)
		},
	}
}

// ludInput builds a diagonally dominant matrix so the factorisation is
// well conditioned without pivoting.
func ludInput(n int) []float32 {
	mat := randFloats(701, n*n, 0, 1)
	for i := 0; i < n; i++ {
		mat[i*n+i] += float32(n)
	}
	return mat
}

// ludRef mirrors the three kernels in float32, tile by tile.
func ludRef(n, blk int) []float32 {
	m := ludInput(n)
	at := func(r, c int) *float32 { return &m[r*n+c] }
	for off := 0; off < n; off += blk {
		// diagonal
		var sh [16][16]float32
		for i := 0; i < blk; i++ {
			for j := 0; j < blk; j++ {
				sh[i][j] = *at(off+i, off+j)
			}
		}
		for i := 0; i < blk-1; i++ {
			for t := i + 1; t < blk; t++ {
				for j := 0; j < i; j++ {
					sh[t][i] -= sh[t][j] * sh[j][i]
				}
				sh[t][i] = fdiv32(sh[t][i], sh[i][i])
			}
			for t := i + 1; t < blk; t++ {
				for j := 0; j < i+1; j++ {
					sh[i+1][t] -= sh[i+1][j] * sh[j][t]
				}
			}
		}
		for i := 0; i < blk; i++ {
			for j := 0; j < blk; j++ {
				*at(off+i, off+j) = sh[i][j]
			}
		}
		rem := (n - off) / blk
		if rem <= 1 {
			continue
		}
		// perimeter
		for bx := 0; bx < rem-1; bx++ {
			c0 := off + (bx+1)*blk // row strip columns
			for idx := 0; idx < blk; idx++ {
				for i := 1; i < blk; i++ {
					var v float32 = *at(off+i, c0+idx)
					for j := 0; j < i; j++ {
						v -= sh[i][j] * *at(off+j, c0+idx)
					}
					*at(off+i, c0+idx) = v
				}
			}
			r0 := off + (bx+1)*blk // column strip rows
			for idx := 0; idx < blk; idx++ {
				for i := 0; i < blk; i++ {
					var v float32 = *at(r0+idx, off+i)
					for j := 0; j < i; j++ {
						v -= *at(r0+idx, off+j) * sh[j][i]
					}
					*at(r0+idx, off+i) = fdiv32(v, sh[i][i])
				}
			}
		}
		// internal
		for by := 0; by < rem-1; by++ {
			for bx := 0; bx < rem-1; bx++ {
				r0 := off + (by+1)*blk
				c0 := off + (bx+1)*blk
				var upd [16][16]float32
				for ty := 0; ty < blk; ty++ {
					for tx := 0; tx < blk; tx++ {
						var sum float32
						for k := 0; k < blk; k++ {
							sum = fma32(*at(r0+ty, off+k), *at(off+k, c0+tx), sum)
						}
						upd[ty][tx] = *at(r0+ty, c0+tx) - sum
					}
				}
				for ty := 0; ty < blk; ty++ {
					for tx := 0; tx < blk; tx++ {
						*at(r0+ty, c0+tx) = upd[ty][tx]
					}
				}
			}
		}
	}
	return m
}

// ludDiagonal factorises the blk×blk tile at (offset, offset) in shared
// memory. Params: matrix offset.
func ludDiagonal(n, blk int) *isa.Program {
	b := kasm.New("lud_diagonal")
	tid := b.S2R(isa.SRTidX)
	off := b.Param(1)
	base := b.IScAdd(b.IMad(off, b.MovI(int32(n)), off), b.Param(0), 2)

	// shadow[i][tid] = m[off+i][off+tid]
	smCol := b.Shl(tid, 2)
	i := b.MovI(0)
	b.For(i, b.MovI(int32(blk)), 1, func() {
		g := b.IScAdd(b.IAdd(b.IMulI(i, int32(n)), tid), base, 2)
		b.Sts(b.IScAdd(b.IMulI(i, int32(blk)), smCol, 2), 0, b.Ldg(g, int32(0)))
	})
	b.Barrier()

	smAt := func(row, col isa.Reg) isa.Reg {
		return b.Shl(b.IMad(row, b.MovI(int32(blk)), col), 2)
	}
	p := b.P()
	b.MovITo(i, 0)
	b.ForI(i, int32(blk-1), 1, func() {
		b.ISetp(p, isa.CmpGT, tid, i)
		b.If(p, false, func() {
			// shadow[tid][i] -= Σ_{j<i} shadow[tid][j]*shadow[j][i]; /= shadow[i][i]
			v := b.Lds(smAt(tid, i), 0)
			j := b.MovI(0)
			b.For(j, i, 1, func() {
				prod := b.FMul(b.Lds(smAt(tid, j), 0), b.Lds(smAt(j, i), 0))
				b.FAddTo(v, v, b.FMul(prod, b.MovF(-1)))
			})
			v2 := b.FDiv(v, b.Lds(smAt(i, i), 0))
			b.Sts(smAt(tid, i), 0, v2)
		})
		b.Barrier()
		b.If(p, false, func() {
			// shadow[i+1][tid] -= Σ_{j<i+1} shadow[i+1][j]*shadow[j][tid]
			ip1 := b.IAddI(i, 1)
			v := b.Lds(smAt(ip1, tid), 0)
			j := b.MovI(0)
			bound := b.IAddI(i, 1)
			b.For(j, bound, 1, func() {
				prod := b.FMul(b.Lds(smAt(ip1, j), 0), b.Lds(smAt(j, tid), 0))
				b.FAddTo(v, v, b.FMul(prod, b.MovF(-1)))
			})
			b.Sts(smAt(ip1, tid), 0, v)
		})
		b.Barrier()
	})
	b.FreeP(p)

	// write back rows 1..blk-1
	b.MovITo(i, 1)
	b.For(i, b.MovI(int32(blk)), 1, func() {
		g := b.IScAdd(b.IAdd(b.IMulI(i, int32(n)), tid), base, 2)
		b.Stg(g, 0, b.Lds(smAt(i, tid), 0))
	})
	return b.MustBuild()
}

// ludPerimeter processes the row strip right of and the column strip below
// the diagonal tile; CTA b handles strip b+1. Threads 0..blk-1 own the row
// strip, threads blk..2blk-1 the column strip. Params: matrix offset.
func ludPerimeter(n, blk int) *isa.Program {
	b := kasm.New("lud_perimeter")
	tid := b.S2R(isa.SRTidX)
	bx := b.S2R(isa.SRCtaIDX)
	off := b.Param(1)
	mBase := b.Param(0)
	nReg := b.MovI(int32(n))

	// shared: dia [0], peri_row [blk*blk*4], peri_col [2*blk*blk*4]
	diaOff := int32(0)
	rowOff := int32(4 * blk * blk)
	colOff := int32(8 * blk * blk)
	smAt := func(base int32, row, col isa.Reg) isa.Reg {
		return b.IAddI(b.Shl(b.IMad(row, b.MovI(int32(blk)), col), 2), base)
	}

	half := b.P()
	b.ISetpI(half, isa.CmpLT, tid, int32(blk))
	idx := b.R()
	strip := b.IAddI(bx, 1) // strip index
	diagBase := b.IScAdd(b.IMad(off, nReg, off), mBase, 2)
	i := b.R() // loop counter; every branch initialises it before use
	b.IfElse(half, false, func() {
		b.MovTo(idx, tid)
		// load lower half of dia plus the row strip
		b.MovITo(i, 0)
		b.For(i, b.MovI(int32(blk/2)), 1, func() {
			b.Sts(smAt(diaOff, i, idx), 0, b.Ldg(b.IScAdd(b.IMad(i, nReg, idx), diagBase, 2), int32(-0)))
		})
		// peri_row[i][idx] = m[off+i][off + strip*blk + idx]
		c0 := b.IAdd(off, b.IMulI(strip, int32(blk)))
		b.MovITo(i, 0)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			g := b.IMad(b.IAdd(off, i), nReg, b.IAdd(c0, idx))
			b.Sts(smAt(rowOff, i, idx), 0, b.Ldg(b.IScAdd(g, mBase, 2), 0))
		})
	}, func() {
		b.IAddITo(idx, tid, int32(-blk))
		b.MovITo(i, int32(blk/2))
		b.For(i, b.MovI(int32(blk)), 1, func() {
			b.Sts(smAt(diaOff, i, idx), 0, b.Ldg(b.IScAdd(b.IMad(i, nReg, idx), diagBase, 2), 0))
		})
		// peri_col[i][idx] = m[off + strip*blk + i][off + idx]
		r0 := b.IAdd(off, b.IMulI(strip, int32(blk)))
		b.MovITo(i, 0)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			g := b.IMad(b.IAdd(r0, i), nReg, b.IAdd(off, idx))
			b.Sts(smAt(colOff, i, idx), 0, b.Ldg(b.IScAdd(g, mBase, 2), 0))
		})
	})
	b.Barrier()

	b.IfElse(half, false, func() {
		// row strip: peri_row[i][idx] -= Σ_{j<i} dia[i][j]*peri_row[j][idx]
		b.MovITo(i, 1)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			v := b.Lds(smAt(rowOff, i, idx), 0)
			j := b.MovI(0)
			b.For(j, i, 1, func() {
				prod := b.FMul(b.Lds(smAt(diaOff, i, j), 0), b.Lds(smAt(rowOff, j, idx), 0))
				b.FAddTo(v, v, b.FMul(prod, b.MovF(-1)))
			})
			b.Sts(smAt(rowOff, i, idx), 0, v)
		})
	}, func() {
		// column strip: peri_col[idx][i] = (A - Σ_{j<i} peri_col[idx][j]*dia[j][i]) / dia[i][i]
		b.MovITo(i, 0)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			v := b.Lds(smAt(colOff, idx, i), 0)
			j := b.MovI(0)
			b.For(j, i, 1, func() {
				prod := b.FMul(b.Lds(smAt(colOff, idx, j), 0), b.Lds(smAt(diaOff, j, i), 0))
				b.FAddTo(v, v, b.FMul(prod, b.MovF(-1)))
			})
			b.Sts(smAt(colOff, idx, i), 0, b.FDiv(v, b.Lds(smAt(diaOff, i, i), 0)))
		})
	})
	b.Barrier()

	// write both strips back
	b.IfElse(half, false, func() {
		c0 := b.IAdd(off, b.IMulI(strip, int32(blk)))
		b.MovITo(i, 1)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			g := b.IMad(b.IAdd(off, i), nReg, b.IAdd(c0, idx))
			b.Stg(b.IScAdd(g, mBase, 2), 0, b.Lds(smAt(rowOff, i, idx), 0))
		})
	}, func() {
		r0 := b.IAdd(off, b.IMulI(strip, int32(blk)))
		b.MovITo(i, 0)
		b.For(i, b.MovI(int32(blk)), 1, func() {
			g := b.IMad(b.IAdd(r0, i), nReg, b.IAdd(off, idx))
			b.Stg(b.IScAdd(g, mBase, 2), 0, b.Lds(smAt(colOff, i, idx), 0))
		})
	})
	b.FreeP(half)
	return b.MustBuild()
}

// ludInternal updates the trailing submatrix tile (by+1, bx+1):
// A[r][c] -= Σ_k L[r][k]·U[k][c]. Params: matrix offset.
func ludInternal(n, blk int) *isa.Program {
	b := kasm.New("lud_internal")
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	bx := b.S2R(isa.SRCtaIDX)
	by := b.S2R(isa.SRCtaIDY)
	off := b.Param(1)
	mBase := b.Param(0)
	nReg := b.MovI(int32(n))

	rowOff := int32(0)             // peri_row tile (U rows)
	colOff := int32(4 * blk * blk) // peri_col tile (L columns)
	smAt := func(base int32, row, col isa.Reg) isa.Reg {
		return b.IAddI(b.Shl(b.IMad(row, b.MovI(int32(blk)), col), 2), base)
	}

	r0 := b.IAdd(off, b.IMulI(b.IAddI(by, 1), int32(blk)))
	c0 := b.IAdd(off, b.IMulI(b.IAddI(bx, 1), int32(blk)))

	// peri_row[ty][tx] = m[off+ty][c0+tx]; peri_col[ty][tx] = m[r0+ty][off+tx]
	b.Sts(smAt(rowOff, ty, tx), 0,
		b.Ldg(b.IScAdd(b.IMad(b.IAdd(off, ty), nReg, b.IAdd(c0, tx)), mBase, 2), 0))
	b.Sts(smAt(colOff, ty, tx), 0,
		b.Ldg(b.IScAdd(b.IMad(b.IAdd(r0, ty), nReg, b.IAdd(off, tx)), mBase, 2), 0))
	b.Barrier()

	sum := b.MovF(0)
	k := b.MovI(0)
	b.For(k, b.MovI(int32(blk)), 1, func() {
		b.FFmaTo(sum, b.Lds(smAt(colOff, ty, k), 0), b.Lds(smAt(rowOff, k, tx), 0), sum)
	})
	g := b.IScAdd(b.IMad(b.IAdd(r0, ty), nReg, b.IAdd(c0, tx)), mBase, 2)
	b.Stg(g, 0, b.FSub(b.Ldg(g, 0), sum))
	return b.MustBuild()
}
