// Selective hardening: thread-level TMR applied to a chosen subset of an
// application's kernels, the transform behind the selective-hardening
// advisor (internal/advisor). Where TMR triplicates every launch, Selective
// triplicates only the launches of kernels in a protection set and runs the
// rest unreplicated on copy 0, keeping the three copies consistent at the
// region boundaries:
//
//   - entering a protected region with stale shadow copies broadcasts
//     copy 0 over copies 1 and 2 (host-side, cudaMemcpy analogue);
//   - leaving a protected region with diverged copies majority-votes every
//     word of the image into copy 0 (host-side, raising the DUE flag on
//     three-way disagreement) and marks the shadows stale;
//   - a schedule that ends inside a protected region votes the output
//     buffers with the same generated GPU kernel full TMR uses, so the
//     tail region's protection — including vulnerability of the vote
//     itself — is measured exactly like TMR's.
//
// Host steps with data-dependent schedules (BFS-style loops) may jump to
// any step, so region transitions cannot be placed statically. Instead the
// transform tracks the replica state (stale / diverged) in a dedicated
// device word and guards every original launch with a host step that
// performs the transition exactly when needed. Guards are host steps: they
// cost no simulated cycles and are never injection targets, so the cycle
// overhead of a selective job is the replicated execution of the protected
// kernels plus the final GPU vote — the quantity the advisor's cost model
// prices.
//
// Two boundary cases anchor the semantics: the empty set returns the
// original job unchanged, and a set covering every kernel delegates to TMR
// itself, so full-set selective jobs are bit-identical to harden.TMR — the
// property the advisor's campaigns (and the study's memo/seed sharing)
// rely on.
package harden

import (
	"sort"
	"strings"

	"gpurel/internal/device"
)

// Set is an immutable protection set: the kernel names whose launches get
// TMR. Construct with NewSet; the zero value is the empty set.
type Set struct {
	names []string // sorted, unique
}

// NewSet builds a protection set from kernel names (duplicates collapse,
// order is irrelevant).
func NewSet(names ...string) Set {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, n := range sorted {
		if n == "" || (i > 0 && n == sorted[i-1]) {
			continue
		}
		uniq = append(uniq, n)
	}
	return Set{names: append([]string(nil), uniq...)}
}

// Has reports whether the kernel is protected.
func (s Set) Has(name string) bool {
	i := sort.SearchStrings(s.names, name)
	return i < len(s.names) && s.names[i] == name
}

// Names returns the protected kernel names in sorted order.
func (s Set) Names() []string { return append([]string(nil), s.names...) }

// Size returns the number of protected kernels.
func (s Set) Size() int { return len(s.names) }

// Empty reports whether no kernel is protected.
func (s Set) Empty() bool { return len(s.names) == 0 }

// Canonical renders the set's identity string ("K1+K3"; "" for the empty
// set) — the spelling that feeds point seeds and memo keys upstream.
func (s Set) Canonical() string { return strings.Join(s.names, "+") }

// Covers reports whether every kernel launched by the job is protected.
func (s Set) Covers(job *device.Job) bool {
	for _, k := range job.KernelNames() {
		if !s.Has(k) {
			return false
		}
	}
	return true
}

// Replica-state bits of the selective guard word.
const (
	selStale    = 1 << 0 // copies 1 and 2 are behind copy 0
	selDiverged = 1 << 1 // a protected launch ran since the last merge
)

// Selective transforms a job so that exactly the launches of kernels in the
// protection set run thread-triplicated. The empty set returns the original
// job; a set covering every kernel returns harden.TMR(job) so full-set
// selective hardening is bit-identical to full TMR.
func Selective(job *device.Job, set Set) *device.Job {
	if set.Empty() {
		return job
	}
	if set.Covers(job) {
		return TMR(job)
	}

	for _, st := range job.Steps {
		if st.Launch != nil && st.Launch.Replicas > 1 {
			panic("harden: job is already replicated")
		}
	}

	origUsed := job.Mem.Used()
	mem, stride := job.Mem.Replicate(3, 4096)
	flag := mem.Alloc("tmr_due_flag", 4)
	state := mem.Alloc("sel_state", 4)

	rebase := func(params []uint32, isPtr []bool, off uint32) []uint32 {
		out := append([]uint32(nil), params...)
		for i := range out {
			if i < len(isPtr) && isPtr[i] {
				out[i] += off
			}
		}
		return out
	}

	// broadcast refreshes the shadow copies from copy 0.
	broadcast := func(m *device.Memory) {
		raw := m.Raw()
		copy(raw[stride:stride+origUsed], raw[:origUsed])
		copy(raw[2*stride:2*stride+origUsed], raw[:origUsed])
	}
	// merge majority-votes every word of the image into copy 0 and raises
	// the DUE flag on three-way disagreement — the host-side region-exit
	// analogue of the GPU voter.
	merge := func(m *device.Memory) {
		for a := uint32(device.NullGuard); a+4 <= origUsed; a += 4 {
			x := m.PeekU32(a)
			y := m.PeekU32(a + stride)
			z := m.PeekU32(a + 2*stride)
			if x == y && y == z {
				continue
			}
			m.PokeU32(a, (x&y)|(x&z)|(y&z))
			if x != y && y != z && x != z {
				m.PokeU32(flag, 1)
			}
		}
	}

	// Pass 1: layout. Every original launch becomes [guard, launch]; host
	// steps stay single. newIdx maps original step indices (and the
	// one-past-the-end index) to the new schedule, so host-step jump
	// targets land on the guard of the step they name.
	newIdx := make([]int, len(job.Steps)+1)
	n := 0
	for i, st := range job.Steps {
		newIdx[i] = n
		if st.Launch != nil {
			n += 2
		} else {
			n++
		}
	}
	newIdx[len(job.Steps)] = n // jump-to-end lands on the final guard

	h := &device.Job{
		Name:    job.Name + "+SEL(" + set.Canonical() + ")",
		Mem:     mem,
		Outputs: job.Outputs, // results land in copy 0
		DUEFlag: flag,
		// Guards double the per-iteration step count of host-driven loops;
		// scale the schedule budget accordingly so fault-free loop bounds
		// carry over.
		MaxSteps: 2*job.MaxScheduleSteps() + len(job.Outputs) + 2,
	}

	for _, st := range job.Steps {
		switch {
		case st.Launch != nil && set.Has(st.Launch.Name()):
			// Region entry: refresh stale shadows, note the divergence the
			// replicated launch is about to introduce.
			h.Steps = append(h.Steps, device.Step{Host: func(m *device.Memory, off uint32) int {
				// Writes are skipped when the state is already current so
				// back-to-back protected launches keep the guard read-only
				// (and the GPU caches warm).
				s := m.PeekU32(state + off)
				if s&selStale != 0 {
					broadcast(m)
				}
				if s != selDiverged {
					m.PokeU32(state+off, selDiverged)
				}
				return -1
			}})
			l := *st.Launch
			l.Replicas = 3
			l.ReplicaParams = [][]uint32{
				rebase(l.Params, l.ParamIsPtr, 0),
				rebase(l.Params, l.ParamIsPtr, stride),
				rebase(l.Params, l.ParamIsPtr, 2*stride),
			}
			h.Steps = append(h.Steps, device.Step{Launch: &l})

		case st.Launch != nil:
			// Region exit: fold diverged replicas into copy 0 before the
			// unprotected launch advances it alone; shadows go stale either
			// way.
			h.Steps = append(h.Steps, device.Step{Host: func(m *device.Memory, off uint32) int {
				s := m.PeekU32(state + off)
				if s&selDiverged != 0 {
					merge(m)
				}
				if s != selStale {
					m.PokeU32(state+off, selStale)
				}
				return -1
			}})
			l := *st.Launch
			h.Steps = append(h.Steps, device.Step{Launch: &l})

		case st.Host != nil:
			orig := st.Host
			h.Steps = append(h.Steps, device.Step{Host: func(m *device.Memory, off uint32) int {
				// Inside a protected region the host step runs once per
				// copy, TMR-style; while the shadows are stale only copy 0
				// is live, so running it there alone keeps data-dependent
				// loop decisions consistent. Jump targets are remapped into
				// the guarded schedule.
				next := -1
				copies := uint32(3)
				if m.PeekU32(state+off)&selStale != 0 {
					copies = 1
				}
				for c := uint32(0); c < copies; c++ {
					if r := orig(m, off+c*stride); r >= 0 {
						next = r
					}
				}
				if next >= 0 {
					return newIdx[next]
				}
				return -1
			}})
		}
	}

	// Final guard: a schedule ending inside a protected region votes its
	// output buffers on the GPU, exactly like TMR post-processing; a
	// schedule ending in an unprotected region already has its results in
	// copy 0 and skips the votes.
	endVotes := len(h.Steps) + 1
	h.Steps = append(h.Steps, device.Step{Host: func(m *device.Memory, off uint32) int {
		if m.PeekU32(state+off)&selDiverged == 0 {
			return endVotes + len(job.Outputs) // past the end: done
		}
		m.PokeU32(state+off, 0)
		return -1 // fall into the vote launches
	}})
	prog := voteKernel()
	for _, o := range job.Outputs {
		words := int(o.Size / 4)
		grid := (words + voteBlock - 1) / voteBlock
		h.Steps = append(h.Steps, device.Step{Launch: &device.Launch{
			Kernel:     prog,
			KernelName: VoteKernelName,
			GridX:      grid, GridY: 1, BlockX: voteBlock, BlockY: 1,
			Params:     []uint32{o.Addr, o.Addr + stride, o.Addr + 2*stride, flag, uint32(words)},
			ParamIsPtr: []bool{true, true, true, true, false},
		}})
	}
	return h
}
