// Package harden implements the paper's software-level protection case study
// (§IV): thread-level Triple Modular Redundancy. The transform follows the
// Figure 6 workflow exactly:
//
//  1. Pre-processing — the device image (inputs and all intermediate
//     buffers) is triplicated at a fixed stride.
//  2. Kernel execution — every launch runs with three replicas; replica c's
//     pointer parameters are rebased into copy c, so three identical
//     executions proceed in parallel on the same GPU.
//  3. Post-processing — a generated GPU voting kernel majority-votes each
//     output buffer word-wise into copy 0 and raises the application DUE
//     flag when all three copies disagree.
//
// Because the same hardened job is executed by both the microarchitectural
// and the functional simulator, AVF and SVF evaluate literally the same
// hardened application, as §IV-A requires.
package harden

import (
	"gpurel/internal/device"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
)

// VoteKernelName names the generated voting kernel's launches.
const VoteKernelName = "vote"

// voteBlock is the CTA size of the voting kernel.
const voteBlock = 128

// TMR transforms a job into its thread-triplicated equivalent.
func TMR(job *device.Job) *device.Job {
	mem, stride := job.Mem.Replicate(3, 4096)
	flag := mem.Alloc("tmr_due_flag", 4)

	rebase := func(params []uint32, isPtr []bool, off uint32) []uint32 {
		out := append([]uint32(nil), params...)
		for i := range out {
			if i < len(isPtr) && isPtr[i] {
				out[i] += off
			}
		}
		return out
	}

	h := &device.Job{
		Name:     job.Name + "+TMR",
		Mem:      mem,
		Outputs:  job.Outputs, // voted results land in copy 0
		DUEFlag:  flag,
		MaxSteps: job.MaxSteps,
	}
	if h.MaxSteps == 0 {
		h.MaxSteps = job.MaxScheduleSteps()
	}

	for _, st := range job.Steps {
		switch {
		case st.Launch != nil:
			l := *st.Launch
			if l.Replicas > 1 {
				panic("harden: job is already replicated")
			}
			l.Replicas = 3
			l.ReplicaParams = [][]uint32{
				rebase(l.Params, l.ParamIsPtr, 0),
				rebase(l.Params, l.ParamIsPtr, stride),
				rebase(l.Params, l.ParamIsPtr, 2*stride),
			}
			h.Steps = append(h.Steps, device.Step{Launch: &l})
		case st.Host != nil:
			orig := st.Host
			h.Steps = append(h.Steps, device.Step{Host: func(m *device.Memory, off uint32) int {
				// run the host step once per copy; if any copy asks to loop
				// (data-dependent schedules like BFS), loop the whole group
				next := -1
				for c := uint32(0); c < 3; c++ {
					if r := orig(m, off+c*stride); r >= 0 {
						next = r
					}
				}
				return next
			}})
		}
	}

	// Post-processing: one voting launch per output buffer.
	prog := voteKernel()
	for _, o := range job.Outputs {
		words := int(o.Size / 4)
		grid := (words + voteBlock - 1) / voteBlock
		h.Steps = append(h.Steps, device.Step{Launch: &device.Launch{
			Kernel:     prog,
			KernelName: VoteKernelName,
			GridX:      grid, GridY: 1, BlockX: voteBlock, BlockY: 1,
			Params: []uint32{o.Addr, o.Addr + stride, o.Addr + 2*stride, flag, uint32(words)},
			// pointers must not be rebased again if this job were hardened
			// twice; TMR refuses replicated jobs above anyway
			ParamIsPtr: []bool{true, true, true, true, false},
		}})
	}
	return h
}

// voteKernel builds the word-wise majority voter:
//
//	i = global id; if i < n:
//	  a,b,c = the three copies of word i
//	  out0[i] = (a&b)|(a&c)|(b&c)
//	  if a!=b && b!=c && a!=c: flag = 1   (three-way disagreement → DUE)
func voteKernel() *isa.Program {
	b := kasm.New("tmr_vote")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetp(p, isa.CmpLT, i, b.Param(4))
	b.If(p, false, func() {
		a := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		bb := b.Ldg(b.IScAdd(i, b.Param(1), 2), 0)
		c := b.Ldg(b.IScAdd(i, b.Param(2), 2), 0)
		maj := b.Or(b.Or(b.And(a, bb), b.And(a, c)), b.And(bb, c))
		b.Stg(b.IScAdd(i, b.Param(0), 2), 0, maj)

		q := b.P()
		b.ISetp(q, isa.CmpNE, a, bb)
		b.ISetpAnd(q, isa.CmpNE, bb, c, q, false)
		b.ISetpAnd(q, isa.CmpNE, a, c, q, false)
		b.If(q, false, func() {
			b.Stg(b.Param(3), 0, b.MovI(1))
		})
		b.FreeP(q)
	})
	b.FreeP(p)
	return b.MustBuild()
}
