package harden

import (
	"bytes"
	"testing"

	"gpurel/internal/device"
	"gpurel/internal/funcsim"
	"gpurel/internal/gpu"
	"gpurel/internal/isa"
	"gpurel/internal/kasm"
	"gpurel/internal/sim"
)

// doubler builds out[i] = 2*in[i] with a host post-step that adds one, to
// exercise host rebasing under TMR.
func doublerJob(n int) *device.Job {
	b := kasm.New("double")
	i := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	p := b.P()
	b.ISetpI(p, isa.CmpLT, i, int32(n))
	b.If(p, false, func() {
		v := b.Ldg(b.IScAdd(i, b.Param(0), 2), 0)
		b.Stg(b.IScAdd(i, b.Param(1), 2), 0, b.IAdd(v, v))
	})
	b.FreeP(p)
	prog := b.MustBuild()

	m := device.NewMemory(1 << 18)
	in := m.Alloc("in", 4*n)
	out := m.Alloc("out", 4*n)
	vals := make([]uint32, n)
	for k := range vals {
		vals[k] = uint32(k + 1)
	}
	m.WriteU32s(in, vals)
	return &device.Job{
		Name: "double", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{
				Kernel: prog, KernelName: "K1", GridX: 2, GridY: 1, BlockX: n / 2, BlockY: 1,
				Params: []uint32{in, out}, ParamIsPtr: []bool{true, true},
			}},
			{Host: func(mm *device.Memory, off uint32) int {
				mm.PokeU32(out+off, mm.PeekU32(out+off)+1)
				return -1
			}},
		},
		Outputs: []device.Output{{Name: "out", Addr: out, Size: uint32(4 * n)}},
	}
}

func TestTMRPreservesOutput(t *testing.T) {
	job := doublerJob(64)
	plain := funcsim.Run(job, funcsim.Options{})
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	h := TMR(job)
	hard := funcsim.Run(h, funcsim.Options{})
	if hard.Err != nil {
		t.Fatal(hard.Err)
	}
	if hard.DUEFlag {
		t.Fatal("fault-free TMR run raised the DUE flag")
	}
	if !bytes.Equal(plain.Output, hard.Output) {
		t.Error("TMR must not change fault-free output")
	}
	// and on the microarchitectural simulator too
	hs := sim.Run(h, gpu.Volta(), sim.Options{})
	if hs.Err != nil || !bytes.Equal(hs.Output, plain.Output) {
		t.Errorf("TMR output differs on the cycle simulator: %v", hs.Err)
	}
}

func TestTMRStructure(t *testing.T) {
	job := doublerJob(64)
	h := TMR(job)
	if h.DUEFlag == 0 {
		t.Error("TMR job must carry a DUE flag address")
	}
	var kernelLaunch, voteLaunch *device.Launch
	for _, st := range h.Steps {
		if st.Launch == nil {
			continue
		}
		if st.Launch.KernelName == VoteKernelName {
			voteLaunch = st.Launch
		} else {
			kernelLaunch = st.Launch
		}
	}
	if kernelLaunch == nil || kernelLaunch.Replicas != 3 {
		t.Fatal("kernel launches must be triplicated")
	}
	if len(kernelLaunch.ReplicaParams) != 3 {
		t.Fatal("missing replica parameter banks")
	}
	// pointer params rebase, scalar params do not
	p0, p1 := kernelLaunch.ReplicaParams[0], kernelLaunch.ReplicaParams[1]
	if p0[0] == p1[0] {
		t.Error("pointer parameters must differ across replicas")
	}
	if voteLaunch == nil {
		t.Fatal("missing voting launch")
	}
}

// TestVoteCorrectsSingleCopy: corrupt one replica's output before the vote —
// the voted output must still be correct and no DUE raised.
func TestVoteCorrectsSingleCopy(t *testing.T) {
	job := doublerJob(64)
	h := TMR(job)
	// find the stride from the replica params of the first launch
	var stride uint32
	for _, st := range h.Steps {
		if st.Launch != nil && st.Launch.Replicas == 3 {
			stride = st.Launch.ReplicaParams[1][0] - st.Launch.ReplicaParams[0][0]
			break
		}
	}
	if stride == 0 {
		t.Fatal("could not infer stride")
	}
	out := h.Outputs[0].Addr
	// corrupt copy 1's output between the kernel and the vote
	corrupt := device.Step{Host: func(mm *device.Memory, off uint32) int {
		mm.PokeU32(out+stride, 0xFFFF)
		return -1
	}}
	// insert before the vote launch
	var steps []device.Step
	for _, st := range h.Steps {
		if st.Launch != nil && st.Launch.KernelName == VoteKernelName {
			steps = append(steps, corrupt)
		}
		steps = append(steps, st)
	}
	h2 := *h
	h2.Steps = steps

	plain := funcsim.Run(job, funcsim.Options{})
	r := funcsim.Run(&h2, funcsim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.DUEFlag {
		t.Error("single-copy corruption must be outvoted, not flagged")
	}
	if !bytes.Equal(r.Output, plain.Output) {
		t.Error("vote failed to correct a single corrupted copy")
	}
}

// TestVoteFlagsThreeWayDisagreement: corrupt two copies differently — the
// voter must raise the DUE flag.
func TestVoteFlagsThreeWayDisagreement(t *testing.T) {
	job := doublerJob(64)
	h := TMR(job)
	var stride uint32
	for _, st := range h.Steps {
		if st.Launch != nil && st.Launch.Replicas == 3 {
			stride = st.Launch.ReplicaParams[1][0] - st.Launch.ReplicaParams[0][0]
			break
		}
	}
	out := h.Outputs[0].Addr
	corrupt := device.Step{Host: func(mm *device.Memory, off uint32) int {
		mm.PokeU32(out, 0x1111)
		mm.PokeU32(out+stride, 0x2222)
		return -1
	}}
	var steps []device.Step
	for _, st := range h.Steps {
		if st.Launch != nil && st.Launch.KernelName == VoteKernelName {
			steps = append(steps, corrupt)
		}
		steps = append(steps, st)
	}
	h2 := *h
	h2.Steps = steps
	r := funcsim.Run(&h2, funcsim.Options{})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.DUEFlag {
		t.Error("three-way disagreement must raise the DUE flag")
	}
}

func TestTMRRejectsReplicatedJob(t *testing.T) {
	job := doublerJob(64)
	h := TMR(job)
	defer func() {
		if recover() == nil {
			t.Error("double TMR must panic")
		}
	}()
	TMR(h)
}

// TestHostLoopUnderTMR: a data-dependent host loop must still converge when
// all three copies run.
func TestHostLoopUnderTMR(t *testing.T) {
	m := device.NewMemory(1 << 16)
	cnt := m.Alloc("cnt", 4)
	b := kasm.New("inc")
	p := b.P()
	b.ISetpI(p, isa.CmpEQ, b.S2R(isa.SRTidX), 0)
	b.If(p, false, func() {
		a := b.Param(0)
		b.Stg(a, 0, b.IAddI(b.Ldg(a, 0), 1))
	})
	b.FreeP(p)
	prog := b.MustBuild()
	job := &device.Job{
		Name: "loop", Mem: m,
		Steps: []device.Step{
			{Launch: &device.Launch{Kernel: prog, KernelName: "K1",
				GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
				Params: []uint32{cnt}, ParamIsPtr: []bool{true}}},
			{Host: func(mm *device.Memory, off uint32) int {
				if mm.PeekU32(cnt+off) < 3 {
					return 0
				}
				return -1
			}},
		},
		Outputs: []device.Output{{Name: "cnt", Addr: cnt, Size: 4}},
	}
	h := TMR(job)
	r := funcsim.Run(h, funcsim.Options{})
	if r.Err != nil || r.TimedOut {
		t.Fatalf("hardened loop failed: %v timeout=%v", r.Err, r.TimedOut)
	}
	if r.Output[0] != 3 {
		t.Errorf("hardened loop count = %d, want 3", r.Output[0])
	}
	if r.DUEFlag {
		t.Error("fault-free hardened loop must not flag")
	}
}
